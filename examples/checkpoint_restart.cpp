// Lossy checkpoint/restart (the application-level use case the paper's
// related work cites, e.g. Sasaki et al.): a 2D heat-diffusion solver
// checkpoints its state through waveSZ, "fails", restarts from the lossy
// checkpoint, and we measure how the compression error propagates through
// the remaining simulation compared with an uninterrupted run.
//
// The point to observe: diffusion is dissipative, so the checkpoint error
// (<= eb) decays rather than amplifies — lossy checkpointing at 1e-3..1e-5
// costs far less storage than raw dumps at negligible trajectory cost.
//
//   $ ./examples/checkpoint_restart [--steps N] [--grid N]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace wavesz;

struct Solver {
  std::size_t n;
  std::vector<float> u;

  explicit Solver(std::size_t grid) : n(grid), u(grid * grid, 0.0f) {
    // Hot blob off-centre plus a cold edge — enough structure to diffuse.
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) {
        const double dx = (static_cast<double>(x) / n) - 0.3;
        const double dy = (static_cast<double>(y) / n) - 0.6;
        u[x * n + y] = static_cast<float>(
            100.0 * std::exp(-(dx * dx + dy * dy) * 40.0));
      }
    }
  }

  void step() {
    constexpr double alpha = 0.2;  // stable for the 5-point stencil
    std::vector<float> next(u.size());
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) {
        auto at = [&](std::size_t a, std::size_t b) {
          return static_cast<double>(u[a * n + b]);
        };
        const double c = at(x, y);
        const double lap = at(x > 0 ? x - 1 : 0, y) +
                           at(x + 1 < n ? x + 1 : x, y) +
                           at(x, y > 0 ? y - 1 : 0) +
                           at(x, y + 1 < n ? y + 1 : y) - 4.0 * c;
        next[x * n + y] = static_cast<float>(c + alpha * lap);
      }
    }
    u = std::move(next);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t grid = 192, steps = 200;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--grid") grid = std::stoul(argv[i + 1]);
    if (std::string(argv[i]) == "--steps") steps = std::stoul(argv[i + 1]);
  }
  const std::size_t fail_at = steps / 2;
  const Dims dims = Dims::d2(grid, grid);
  const double raw_bytes = static_cast<double>(grid * grid * sizeof(float));

  std::printf("2D heat diffusion, %zux%zu grid, %zu steps, failure at step "
              "%zu\n\n",
              grid, grid, steps, fail_at);
  std::printf("%-10s %12s %10s | %16s %16s\n", "eb(VRrel)", "ckpt bytes",
              "ratio", "err at restart", "err at end");

  // Ground truth: uninterrupted run, with a snapshot kept at fail_at.
  Solver truth(grid);
  std::vector<float> truth_at_fail;
  for (std::size_t t = 0; t < steps; ++t) {
    if (t == fail_at) truth_at_fail = truth.u;
    truth.step();
  }

  for (double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    // Run to the failure point, checkpoint through waveSZ.
    Solver run(grid);
    for (std::size_t t = 0; t < fail_at; ++t) run.step();
    auto cfg = wave::default_config();
    cfg.error_bound = eb;
    const auto checkpoint = wave::compress(run.u, dims, cfg);

    // "Fail", restart from the lossy checkpoint, finish the simulation.
    Solver restarted(grid);
    restarted.u = wave::decompress(checkpoint.bytes);
    const double err_restart =
        metrics::distortion(truth_at_fail, restarted.u).max_abs_error;
    for (std::size_t t = fail_at; t < steps; ++t) restarted.step();
    const double err_end =
        metrics::distortion(truth.u, restarted.u).max_abs_error;

    std::printf("%-10g %12zu %9.1f:1 | %16.3g %16.3g\n", eb,
                checkpoint.bytes.size(),
                raw_bytes / static_cast<double>(checkpoint.bytes.size()),
                err_restart, err_end);
  }
  std::printf("\nreading: the restart error never exceeds the checkpoint "
              "bound, and diffusion\ndamps it further by the end of the "
              "run — lossy checkpoints trade storage for a\nbounded, "
              "decaying perturbation.\n");
  return 0;
}
