// Quickstart: compress a 2D field with waveSZ, decompress it, verify the
// error bound, and print the numbers you care about.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --trace trace.json --stats   # stage telemetry
//   $ ./examples/quickstart --metrics metrics.prom       # Prometheus text
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "metrics/stats.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;

  std::string trace_path;
  std::string metrics_path;
  bool stats_flag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (a == "--stats") {
      stats_flag = true;
    }
  }
  std::unique_ptr<telemetry::Session> session;
  if (!trace_path.empty() || !metrics_path.empty() || stats_flag) {
    session = std::make_unique<telemetry::Session>();
  }

  // 1. Get a 2D float field (here: a synthetic climate-like field; swap in
  //    data::read_f32("myfield.f32") for your own data).
  const Dims dims = Dims::d2(512, 1024);
  data::FieldRecipe recipe;
  recipe.seed = 2026;
  recipe.base_frequency = 0.8;
  const std::vector<float> field = data::generate(recipe, dims);

  // 2. Configure: value-range-relative 1e-3 bound, base-2 tightening and
  //    gzip back end (the paper's FPGA configuration).
  sz::Config cfg = wave::default_config();
  cfg.error_bound = 1e-3;

  // 3. Compress.
  const sz::Compressed compressed = wave::compress(field, dims, cfg);
  std::printf("input   : %s float32 (%zu bytes)\n", dims.str().c_str(),
              field.size() * sizeof(float));
  std::printf("output  : %zu bytes  (ratio %.1f:1)\n",
              compressed.bytes.size(),
              metrics::compression_ratio(field.size() * sizeof(float),
                                         compressed.bytes.size()));
  std::printf("bound   : requested 1e-3 VR-rel -> absolute %.3g "
              "(power-of-two tightened)\n",
              compressed.header.eb_absolute);

  // 4. Decompress and verify.
  Dims out_dims;
  const std::vector<float> restored =
      wave::decompress(compressed.bytes, &out_dims);
  const auto stats = metrics::distortion(field, restored);
  const bool ok = metrics::within_bound(field, restored,
                                        compressed.header.eb_absolute);
  std::printf("restored: %s, PSNR %.1f dB, max |err| %.3g — bound %s\n",
              out_dims.str().c_str(), stats.psnr_db, stats.max_abs_error,
              ok ? "HOLDS" : "VIOLATED");

  // 5. Optional: where did the time go? (--trace opens in ui.perfetto.dev)
  if (session) {
    const telemetry::Report report = session->stop();
    if (!trace_path.empty()) {
      std::ofstream out(trace_path, std::ios::binary);
      out << telemetry::chrome_trace_json(report);
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
        return 1;
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path, std::ios::binary);
      out << telemetry::prometheus_text(report);
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
        return 1;
      }
    }
    if (stats_flag) std::fputs(telemetry::summary_table(report).c_str(), stdout);
  }
  return ok ? 0 : 1;
}
