// Rate-distortion study: sweep the error bound across decades on a
// Hurricane-like field and print bitrate vs PSNR for SZ-1.4, GhostSZ and
// waveSZ — the standard way lossy scientific compressors are compared
// (paper §2.1: SZ leads prediction-based compressors in rate distortion).
//
//   $ ./examples/rate_distortion [--scale N]
#include <cstdio>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  unsigned scale = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") {
      scale = static_cast<unsigned>(std::stoul(argv[i + 1]));
    }
  }
  const auto f = data::field(data::Persona::Hurricane, "Uf48", scale);
  const auto grid = f.materialize();
  const double raw_bits = static_cast<double>(grid.size()) * 32.0;

  std::printf("rate-distortion on Hurricane/%s (%s, scale 1/%u)\n\n",
              f.name.c_str(), f.dims.str().c_str(), scale);
  std::printf("%-10s | %8s %8s | %8s %8s | %8s %8s\n", "eb (VRrel)",
              "SZ bpp", "SZ dB", "ghost bpp", "ghost dB", "wave bpp",
              "wave dB");

  for (double eb : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    sz::Config cfg;
    cfg.error_bound = eb;
    const auto c_sz = sz::compress(grid, f.dims, cfg);
    const auto p_sz =
        metrics::distortion(grid, sz::decompress(c_sz.bytes)).psnr_db;

    const auto c_ghost = ghost::compress(grid, f.dims, cfg);
    const auto p_ghost =
        metrics::distortion(grid, ghost::decompress(c_ghost.bytes)).psnr_db;

    auto cfg_wave = wave::default_config();
    cfg_wave.error_bound = eb;
    cfg_wave.huffman = true;
    const auto c_wave = wave::compress(grid, f.dims, cfg_wave);
    const auto p_wave =
        metrics::distortion(grid, wave::decompress(c_wave.bytes)).psnr_db;

    auto bpp = [&](std::size_t bytes) {
      return static_cast<double>(bytes) * 8.0 /
             static_cast<double>(grid.size());
    };
    std::printf("%-10g | %8.2f %8.1f | %8.2f %8.1f | %8.2f %8.1f\n", eb,
                bpp(c_sz.bytes.size()), p_sz, bpp(c_ghost.bytes.size()),
                p_ghost, bpp(c_wave.bytes.size()), p_wave);
    (void)raw_bits;
  }
  std::printf("\nreading: lower bits-per-point at equal PSNR is better; "
              "SZ-1.4 and waveSZ\n(H*G*) dominate GhostSZ across the "
              "sweep, most visibly at tight bounds —\nthe regime the paper "
              "targets (§2.1).\n");
  return 0;
}
