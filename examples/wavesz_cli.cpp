// Artifact-style command-line tool for raw float32 files, mirroring the
// paper artifact's `cpurun` interface:
//
//   wavesz_cli compress   <in.f32> <out.wsz> <d0> [d1 [d2]]
//              [--mode wave|ghost|sz] [--eb 1e-3] [--abs] [--base10]
//              [--huffman] [--best] [--f64]
//   wavesz_cli decompress <in.wsz> <out.f32>
//   wavesz_cli info       <in.wsz>
//
// Global flags (any subcommand): --trace <out.json> writes a Chrome
// trace-event file of the run (open in ui.perfetto.dev), --stats prints the
// per-stage breakdown (with p50/p99 and histogram percentiles) and pipeline
// counters to stderr, --metrics <out.prom> writes the run's metrics in
// Prometheus text exposition format, --perf samples hardware counters
// (cycles/instructions/cache/branch misses) on the coarse pipeline stages
// where perf_event_open is available.
//
// Example (artifact equivalent of `cpurun 1800 3600 1 -3 base10 F wave`):
//   wavesz_cli compress F.dat F.wsz 1800 3600 --mode wave --eb 1e-3
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/io.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz/container.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace {

using namespace wavesz;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wavesz_cli compress   <in.f32> <out.wsz> <d0> [d1 [d2]]\n"
               "             [--mode wave|ghost|sz|szx] [--eb 1e-3] [--abs]\n"
               "             [--base10] [--huffman] [--best] [--no-index]\n"
               "             [--ultrafast] [--pipeline <depth>]\n"
               "  wavesz_cli decompress <in.wsz> <out.f32>\n"
               "             [--decode-threads <n>] [--region "
               "lo:hi[,lo:hi[,lo:hi]]]\n"
               "  wavesz_cli info       <in.wsz>\n"
               "global flags: [--trace <out.json>] [--stats]\n"
               "              [--metrics <out.prom>] [--perf]\n"
               "\n"
               "--no-index emits the v1 container (no per-chunk offset\n"
               "table); --decode-threads n decodes v2 containers with n\n"
               "workers (0 = all cores); --region decodes only the given\n"
               "hyperslab (half-open per-axis intervals, raster order);\n"
               "--ultrafast (same as --mode szx) selects the SZx-style\n"
               "block codec: highest throughput, no entropy stage;\n"
               "--pipeline n overlaps the compress stages (PQD / entropy /\n"
               "deflate+frame) with up to n slabs in flight — output bytes\n"
               "are identical to the default barrier execution (n = 0).\n");
  return 2;
}

/// Parse "lo:hi[,lo:hi[,lo:hi]]" into a Region (unlisted axes stay 0:0,
/// which decompress_region widens to the full extent).
sz::Region parse_region(const std::string& spec) {
  sz::Region rg;
  std::size_t axis = 0;
  std::size_t at = 0;
  while (at <= spec.size()) {
    WAVESZ_REQUIRE(axis < 3, "--region takes at most three axes");
    const std::size_t comma = std::min(spec.find(',', at), spec.size());
    const std::size_t colon = spec.find(':', at);
    WAVESZ_REQUIRE(colon != std::string::npos && colon < comma,
                   "--region axis must be lo:hi");
    rg.lo[axis] = std::stoul(spec.substr(at, colon - at));
    rg.hi[axis] = std::stoul(spec.substr(colon + 1, comma - colon - 1));
    ++axis;
    at = comma + 1;
  }
  return rg;
}

int do_compress(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string in = argv[0], out = argv[1];
  std::vector<std::size_t> extents;
  int i = 2;
  for (; i < argc && argv[i][0] != '-'; ++i) {
    extents.push_back(std::stoul(argv[i]));
  }
  std::string mode = "wave";
  sz::Config cfg;
  bool base10 = false, huffman = false, best = false, f64 = false;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--mode" && i + 1 < argc) {
      mode = argv[++i];
    } else if (a == "--eb" && i + 1 < argc) {
      cfg.error_bound = std::stod(argv[++i]);
    } else if (a == "--abs") {
      cfg.mode = sz::EbMode::Absolute;
    } else if (a == "--base10") {
      base10 = true;
    } else if (a == "--huffman") {
      huffman = true;
    } else if (a == "--best") {
      best = true;
    } else if (a == "--f64") {
      f64 = true;
    } else if (a == "--no-index") {
      cfg.chunk_index = false;
    } else if (a == "--ultrafast") {
      mode = "szx";
    } else if (a == "--pipeline" && i + 1 < argc) {
      cfg.pipeline_depth = std::stoi(argv[++i]);
    } else {
      return usage();
    }
  }
  if (extents.empty() || extents.size() > 3) return usage();

  const Dims dims = extents.size() == 1 ? Dims::d1(extents[0])
                    : extents.size() == 2
                        ? Dims::d2(extents[0], extents[1])
                        : Dims::d3(extents[0], extents[1], extents[2]);
  if (best) cfg.gzip_level = deflate::Level::Best;

  std::vector<float> field32;
  std::vector<double> field64;
  std::size_t raw_bytes = 0;
  if (f64) {
    const auto raw = data::read_bytes(in);
    WAVESZ_REQUIRE(raw.size() == dims.count() * sizeof(double),
                   "file size disagrees with float64 dims");
    field64.resize(dims.count());
    std::memcpy(field64.data(), raw.data(), raw.size());
    raw_bytes = raw.size();
  } else {
    field32 = data::read_f32(in);
    WAVESZ_REQUIRE(field32.size() == dims.count(),
                   "file holds " + std::to_string(field32.size()) +
                       " floats but dims need " +
                       std::to_string(dims.count()));
    raw_bytes = field32.size() * sizeof(float);
  }

  Stopwatch sw;
  sz::Compressed c;
  if (mode == "wave") {
    auto wcfg = wave::default_config();
    wcfg.error_bound = cfg.error_bound;
    wcfg.mode = cfg.mode;
    wcfg.gzip_level = cfg.gzip_level;
    wcfg.chunk_index = cfg.chunk_index;
    wcfg.pipeline_depth = cfg.pipeline_depth;
    if (base10) wcfg.base = sz::EbBase::Ten;
    wcfg.huffman = huffman;
    c = f64 ? wave::compress(std::span<const double>(field64), dims, wcfg)
            : wave::compress(std::span<const float>(field32), dims, wcfg);
  } else if (mode == "ghost") {
    WAVESZ_REQUIRE(!f64, "GhostSZ supports float32 only");
    c = ghost::compress(field32, dims, cfg);
  } else if (mode == "sz") {
    cfg.huffman = true;
    c = f64 ? sz::compress(std::span<const double>(field64), dims, cfg)
            : sz::compress(std::span<const float>(field32), dims, cfg);
  } else if (mode == "szx") {
    cfg.codec = sz::Codec::Szx;
    cfg.huffman = false;
    cfg.chunk_index = false;
    c = f64 ? sz::compress(std::span<const double>(field64), dims, cfg)
            : sz::compress(std::span<const float>(field32), dims, cfg);
  } else {
    return usage();
  }
  const double secs = sw.seconds();
  data::write_bytes(out, c.bytes);
  std::printf("%s: %s %zu -> %zu bytes (ratio %.2f:1) in %.3f s "
              "(%.1f MB/s), eb_abs %.4g, %llu unpredictable\n",
              mode.c_str(), dims.str().c_str(), raw_bytes, c.bytes.size(),
              metrics::compression_ratio(raw_bytes, c.bytes.size()), secs,
              static_cast<double>(raw_bytes) / 1e6 / secs,
              c.header.eb_absolute,
              static_cast<unsigned long long>(c.header.unpredictable_count));
  return 0;
}

int do_decompress(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* in = argv[0];
  const char* out = argv[1];
  sz::DecodeOptions opts;
  sz::Region region;
  bool have_region = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--decode-threads" && i + 1 < argc) {
      opts.decode_threads = std::stoi(argv[++i]);
    } else if (a == "--region" && i + 1 < argc) {
      region = parse_region(argv[++i]);
      have_region = true;
    } else {
      return usage();
    }
  }

  const auto bytes = data::read_bytes(in);
  const auto header = sz::inspect(bytes);
  if (have_region) {
    WAVESZ_REQUIRE(header.variant == sz::Variant::Sz14 ||
                       header.variant == sz::Variant::WaveSz ||
                       header.variant == sz::Variant::SzxFast,
                   "--region supports SZ-1.4, waveSZ and SZx containers");
    const bool is_wave = header.variant == sz::Variant::WaveSz;
    std::size_t values = 0;
    std::size_t bytes_read = 0;
    Dims rdims;
    if (header.dtype == 1) {
      const auto res = is_wave ? wave::decompress_region64(bytes, region, opts)
                               : sz::decompress_region64(bytes, region, opts);
      data::write_bytes(
          out, {reinterpret_cast<const std::uint8_t*>(res.data.data()),
                res.data.size() * sizeof(double)});
      values = res.data.size();
      bytes_read = res.compressed_bytes_read;
      rdims = res.region_dims;
    } else {
      const auto res = is_wave ? wave::decompress_region(bytes, region, opts)
                               : sz::decompress_region(bytes, region, opts);
      data::write_f32(out, res.data);
      values = res.data.size();
      bytes_read = res.compressed_bytes_read;
      rdims = res.region_dims;
    }
    std::printf("decompressed region %s of %s -> %s (%zu values, read "
                "%zu of %zu compressed bytes)\n",
                rdims.str().c_str(), header.dims.str().c_str(), out, values,
                bytes_read, bytes.size());
    return 0;
  }
  if (header.dtype == 1) {
    std::vector<double> field;
    switch (header.variant) {
      case sz::Variant::Sz14: field = sz::decompress64(bytes, opts); break;
      case sz::Variant::WaveSz: field = wave::decompress64(bytes, opts); break;
      case sz::Variant::SzxFast: field = sz::decompress64(bytes, opts); break;
      default: throw Error("float64 container with unsupported variant");
    }
    data::write_bytes(
        out, {reinterpret_cast<const std::uint8_t*>(field.data()),
              field.size() * sizeof(double)});
    std::printf("decompressed %s -> %s (%s, %zu doubles)\n", in, out,
                header.dims.str().c_str(), field.size());
    return 0;
  }
  std::vector<float> field;
  switch (header.variant) {
    case sz::Variant::Sz14: field = sz::decompress(bytes, opts); break;
    case sz::Variant::GhostSz: field = ghost::decompress(bytes); break;
    case sz::Variant::WaveSz: field = wave::decompress(bytes, opts); break;
    case sz::Variant::SzxFast: field = sz::decompress(bytes, opts); break;
  }
  data::write_f32(out, field);
  std::printf("decompressed %s -> %s (%s, %zu floats)\n", in, out,
              header.dims.str().c_str(), field.size());
  return 0;
}

int do_info(const char* in) {
  const auto bytes = data::read_bytes(in);
  const auto h = sz::inspect(bytes);
  const char* names[] = {"?", "SZ-1.4", "GhostSZ", "waveSZ", "SZx-fast"};
  std::printf("variant      : %s\n", names[static_cast<int>(h.variant)]);
  std::printf("dims         : %s (%llu points)\n", h.dims.str().c_str(),
              static_cast<unsigned long long>(h.point_count));
  std::printf("bound        : %g (%s%s) -> absolute %g\n", h.eb_requested,
              h.mode == sz::EbMode::Absolute ? "absolute" : "VR-relative",
              h.base == sz::EbBase::Two ? ", base-2 tightened" : "",
              h.eb_absolute);
  std::printf("dtype        : %s\n", h.dtype == 1 ? "float64" : "float32");
  std::printf("quantizer    : %d-bit bins, %s, gzip %s\n", h.quant_bits,
              h.huffman ? "customized Huffman (H*)" : "raw codes",
              h.gzip_level == deflate::Level::Best ? "best" : "fast");
  std::printf("unpredictable: %llu points\n",
              static_cast<unsigned long long>(h.unpredictable_count));
  std::printf("container    : v%d%s\n", h.version,
              h.version >= 2 ? " (chunk-indexed)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Strip the global telemetry flags before subcommand dispatch.
    std::string trace_path;
    std::string metrics_path;
    bool stats = false;
    bool perf = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--trace" && i + 1 < argc) {
        trace_path = argv[++i];
      } else if (a == "--metrics" && i + 1 < argc) {
        metrics_path = argv[++i];
      } else if (a == "--stats") {
        stats = true;
      } else if (a == "--perf") {
        perf = true;
      } else {
        args.push_back(argv[i]);
      }
    }
    const int n = static_cast<int>(args.size());
    if (n < 2) return usage();

    std::unique_ptr<telemetry::Session> session;
    if (!trace_path.empty() || !metrics_path.empty() || stats || perf) {
      session = std::make_unique<telemetry::Session>();
    }
    if (perf) {
      telemetry::set_perf_enabled(true);
      if (!telemetry::perf_available()) {
        std::fprintf(stderr,
                     "perf: hardware counters unavailable "
                     "(perf_event_open denied?); continuing without\n");
      }
    }
    int rc = 2;
    const std::string cmd = args[1];
    if (cmd == "compress") {
      rc = do_compress(n - 2, args.data() + 2);
    } else if (cmd == "decompress" && n >= 4) {
      rc = do_decompress(n - 2, args.data() + 2);
    } else if (cmd == "info" && n == 3) {
      rc = do_info(args[2]);
    } else {
      return usage();
    }

    if (session) {
      const telemetry::Report report = session->stop();
      if (!trace_path.empty()) {
        const std::string json = telemetry::chrome_trace_json(report);
        data::write_bytes(trace_path,
                          {reinterpret_cast<const std::uint8_t*>(json.data()),
                           json.size()});
        std::fprintf(stderr, "trace: %zu spans -> %s\n",
                     report.events.size(), trace_path.c_str());
      }
      if (!metrics_path.empty()) {
        const std::string text = telemetry::prometheus_text(report);
        data::write_bytes(metrics_path,
                          {reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()});
        std::fprintf(stderr, "metrics: -> %s\n", metrics_path.c_str());
      }
      if (stats) {
        std::fputs(telemetry::summary_table(report).c_str(), stderr);
      }
    }
    return rc;
  } catch (const wavesz::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
