// Cosmology I/O accelerator: the paper's deployment scenario. A simulation
// produces NYX-like snapshots faster than the parallel file system accepts
// them; an FPGA on the I/O node compresses the stream. This example runs
// the real waveSZ algorithm chunk by chunk (what the hardware would emit),
// uses the calibrated pipeline model for device timing, and accounts for
// PCIe and file-system budgets to report the effective dump speedup.
//
//   $ ./examples/cosmology_io_accelerator [--scale N]
#include <cstdio>
#include <string>
#include <vector>

#include "core/stream.hpp"
#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "fpga/model.hpp"
#include "metrics/stats.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  unsigned scale = 8;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") {
      scale = static_cast<unsigned>(std::stoul(argv[i + 1]));
    }
  }
  constexpr double pfs_mbps = 300.0;  // one I/O node's file-system share

  std::printf("NYX snapshot dump through a waveSZ-equipped I/O node\n");
  std::printf("(algorithm runs at scale 1/%u; device timing from the "
              "calibrated ZC706 model)\n\n", scale);

  const Dims native = data::persona_dims(data::Persona::Nyx, 1);
  const auto device = fpga::wave_throughput(native, fpga::kWaveSzLanes);

  double raw_total = 0, compressed_total = 0;
  for (const auto& f : data::fields(data::Persona::Nyx, scale)) {
    const auto grid = f.materialize();

    // Stream the field through the bounded-memory compressor in I/O-sized
    // plane chunks, exactly as the device would; each archive chunk stays
    // independently decodable for postanalysis.
    const std::size_t plane = f.dims[1] * f.dims[2];
    const std::size_t chunk_planes = std::max<std::size_t>(8, f.dims[0] / 4);
    wave::StreamCompressor sc(f.dims, wave::default_config(), chunk_planes);
    for (std::size_t z = 0; z < f.dims[0]; ++z) {
      sc.feed(std::span<const float>(grid.data() + z * plane, plane));
    }
    const auto archive = sc.finish();

    double worst_psnr = 1e99;
    for (std::size_t i = 0; i < wave::stream_chunk_count(archive); ++i) {
      const auto chunk = wave::stream_decompress_chunk(archive, i);
      const std::span<const float> orig(
          grid.data() + chunk.first_plane * plane, chunk.data.size());
      worst_psnr =
          std::min(worst_psnr, metrics::distortion(orig, chunk.data).psnr_db);
    }
    const double raw = static_cast<double>(grid.size() * sizeof(float));
    raw_total += raw;
    compressed_total += static_cast<double>(archive.size());
    std::printf("  %-22s %8.1f MB -> %7.2f MB  (%.1f:1, worst chunk PSNR "
                "%.1f dB)\n",
                f.name.c_str(), raw / 1e6,
                static_cast<double>(archive.size()) / 1e6,
                raw / static_cast<double>(archive.size()), worst_psnr);
  }

  const double ratio = raw_total / compressed_total;
  // Scale the byte totals to the paper-native snapshot for the I/O budget.
  const double native_bytes =
      static_cast<double>(native.count() * sizeof(float)) * 6;  // ~6 fields
  const double t_raw = native_bytes / 1e6 / pfs_mbps;
  const double t_compress = native_bytes / 1e6 / device.delivered_mbps;
  const double t_write = native_bytes / ratio / 1e6 / pfs_mbps;
  const double t_dev = std::max(t_compress, t_write);  // pipelined stages

  std::printf("\nsnapshot ratio: %.1f:1\n", ratio);
  std::printf("device path   : compress %.0f MB/s (PCIe-capped), write "
              "%.1f MB/s effective\n",
              device.delivered_mbps, pfs_mbps * ratio);
  std::printf("dump time for a paper-native snapshot (%.1f GB) at %.0f MB/s "
              "PFS share:\n", native_bytes / 1e9, pfs_mbps);
  std::printf("  raw dump        %7.1f s\n", t_raw);
  std::printf("  waveSZ offload  %7.1f s  (%.1fx faster; bound stage: %s)\n",
              t_dev, t_raw / t_dev,
              t_compress > t_write ? "FPGA/PCIe" : "file system");
  return 0;
}
