// Climate post-processing pipeline: compress every field of a CESM-ATM-like
// snapshot with SZ-1.4 (CPU archive path) and waveSZ (FPGA streaming path),
// compare ratio/PSNR per field, and report the snapshot-level totals a
// climate-data manager would look at (the paper's motivating use case: CESM
// needs ~10:1 to be viable).
//
//   $ ./examples/climate_pipeline [--scale N]
#include <cstdio>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  unsigned scale = 8;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") {
      scale = static_cast<unsigned>(std::stoul(argv[i + 1]));
    }
  }

  std::printf("CESM-ATM snapshot compression campaign (scale 1/%u)\n\n",
              scale);
  std::printf("%-10s %10s | %9s %9s | %9s %9s\n", "field", "MB raw",
              "SZ ratio", "SZ PSNR", "wave ratio", "wave PSNR");

  std::size_t raw_total = 0, sz_total = 0, wave_total = 0;
  Stopwatch wall;
  for (const auto& f : data::fields(data::Persona::CesmAtm, scale)) {
    const auto grid = f.materialize();
    const std::size_t raw = grid.size() * sizeof(float);

    const auto c_sz = sz::compress(grid, f.dims, sz::Config{});
    const auto psnr_sz =
        metrics::distortion(grid, sz::decompress(c_sz.bytes)).psnr_db;

    auto cfg = wave::default_config();
    cfg.huffman = true;  // H*G*: the ratio-oriented waveSZ configuration
    const auto c_wave = wave::compress(grid, f.dims, cfg);
    const auto psnr_wave =
        metrics::distortion(grid, wave::decompress(c_wave.bytes)).psnr_db;

    raw_total += raw;
    sz_total += c_sz.bytes.size();
    wave_total += c_wave.bytes.size();
    std::printf("%-10s %10.2f | %8.1f:1 %8.1f | %8.1f:1 %9.1f\n",
                f.name.c_str(), static_cast<double>(raw) / 1e6,
                metrics::compression_ratio(raw, c_sz.bytes.size()), psnr_sz,
                metrics::compression_ratio(raw, c_wave.bytes.size()),
                psnr_wave);
  }
  std::printf("\nsnapshot: %.1f MB raw -> %.1f MB (SZ-1.4), %.1f MB "
              "(waveSZ H*G*) in %.1f s\n",
              static_cast<double>(raw_total) / 1e6,
              static_cast<double>(sz_total) / 1e6,
              static_cast<double>(wave_total) / 1e6, wall.seconds());
  const double ratio =
      metrics::compression_ratio(raw_total, wave_total);
  std::printf("snapshot ratio %.1f:1 — %s the ~10:1 CESM requirement the "
              "paper cites.\n",
              ratio, ratio >= 10.0 ? "meets" : "misses");
  return 0;
}
