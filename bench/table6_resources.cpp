// Table 6: FPGA resource utilization on the ZC706 — three waveSZ PQD lanes
// vs the GhostSZ engine, from the bottom-up resource model, plus the
// base-10 ablation row and the gzip core the paper names as the limit.
#include <cstdio>

#include "fpga/calibration.hpp"
#include "fpga/resources.hpp"

int main() {
  using namespace wavesz::fpga;
  std::printf(
      "\n================================================================\n"
      "Table 6 — resource utilization from synthesis model (ZC706)\n"
      "reproduces: paper Table 6\n"
      "================================================================\n\n");
  const DeviceCapacity dev;
  const auto wave = wave_design(kWaveSzLanes);
  const auto ghost = ghost_design();
  const auto wave10 = wave_pqd_lane_base10() * kWaveSzLanes;
  const auto gzip = gzip_core();

  std::printf("%-10s %8s  %-18s %-18s %-18s %-18s\n", "", "total",
              "waveSZ (3 PQD)", "GhostSZ", "waveSZ base-10*", "gzip core*");
  auto row = [&](const char* name, int total, int w, int g, int w10,
                 int gz) {
    std::printf("%-10s %8d  %-18s %-18s %-18s %-18s\n", name, total,
                utilization_row(w, total).c_str(),
                utilization_row(g, total).c_str(),
                utilization_row(w10, total).c_str(),
                utilization_row(gz, total).c_str());
  };
  row("BRAM_18K", dev.bram_18k, wave.bram_18k, ghost.bram_18k,
      wave10.bram_18k, gzip.bram_18k);
  row("DSP48E", dev.dsp48e, wave.dsp48e, ghost.dsp48e, wave10.dsp48e,
      gzip.dsp48e);
  row("FF", dev.ff, wave.ff, ghost.ff, wave10.ff, gzip.ff);
  row("LUT", dev.lut, wave.lut, ghost.lut, wave10.lut, gzip.lut);

  std::printf("\n(* extra columns beyond the paper: the base-10 ablation "
              "shows the DSPs the\n   base-2 trick removes; the gzip core's "
              "303 BRAM is the paper's stated\n   scalability limit.)\n");
  std::printf("paper values: waveSZ 9/0/4473/8208, GhostSZ "
              "20/51/12615/19718 — matched exactly\nby construction; the "
              "per-operator costs are the calibrated quantities "
              "(EXPERIMENTS.md).\n");
  return 0;
}
