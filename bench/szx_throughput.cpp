// SZx ultra-fast codec throughput vs the entropy pipeline.
//
// For each shape, compresses the same synthetic field with the default
// entropy Config (Huffman + gzip Fast) and with Config::ultrafast()
// (Codec::Szx: fixed blocks, constant-block detection, k-bit packed
// deltas, no entropy stage), reporting compression/decompression
// throughput, ratio, and the SZx speedup over entropy. Every decompressed
// stream is re-checked against the absolute error bound before a row is
// emitted. Writes BENCH_szx.json in the working directory; the acceptance
// row is the 2048x2048 f32 szx compress speedup (>= 3x entropy).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"
#include "util/timer.hpp"

namespace {

using namespace wavesz;

constexpr unsigned kReps = 5;  // best-of to shave scheduler noise

template <typename T>
std::vector<T> make_field(const Dims& dims) {
  data::FieldRecipe r;
  r.seed = 42;
  r.base_frequency = 0.6;
  r.noise_amplitude = 5e-4;
  const auto f32 = data::generate(r, dims);
  if constexpr (std::is_same_v<T, float>) {
    return f32;
  } else {
    return std::vector<double>(f32.begin(), f32.end());
  }
}

template <typename Fn>
double best_seconds(Fn&& fn) {
  double best = 1e300;
  for (unsigned r = 0; r < kReps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

template <typename T>
std::vector<T> roundtrip(const std::vector<std::uint8_t>& bytes);

template <>
std::vector<float> roundtrip<float>(const std::vector<std::uint8_t>& bytes) {
  return sz::decompress(bytes);
}

template <>
std::vector<double> roundtrip<double>(
    const std::vector<std::uint8_t>& bytes) {
  return sz::decompress64(bytes);
}

template <typename T>
double abs_bound(const std::vector<T>& data, const sz::Config& cfg) {
  if (cfg.mode == sz::EbMode::Absolute) return cfg.error_bound;
  double lo = static_cast<double>(data[0]);
  double hi = lo;
  for (const T v : data) {
    const auto d = static_cast<double>(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return cfg.error_bound * (hi - lo);
}

template <typename T>
bool within_bound(const std::vector<T>& orig, const std::vector<T>& dec,
                  double bound) {
  if (orig.size() != dec.size()) return false;
  // Mirror the compressor's contract: non-finite inputs are carried
  // verbatim, so only finite lanes are bound-checked.
  for (std::size_t i = 0; i < orig.size(); ++i) {
    const auto o = static_cast<double>(orig[i]);
    const auto d = static_cast<double>(dec[i]);
    if (!std::isfinite(o)) continue;
    if (!(std::abs(o - d) <= bound * (1.0 + 1e-12))) return false;
  }
  return true;
}

struct CodecRow {
  double compress_mbps = 0;
  double decompress_mbps = 0;
  double ratio = 0;
  bool bound_ok = false;
};

template <typename T>
CodecRow run_codec(const std::vector<T>& field, const Dims& dims,
                   const sz::Config& cfg) {
  CodecRow row;
  const double raw = static_cast<double>(field.size() * sizeof(T));
  sz::Compressed c;
  const double c_secs = best_seconds([&] { c = sz::compress(field, dims, cfg); });
  std::vector<T> dec;
  const double d_secs = best_seconds([&] { dec = roundtrip<T>(c.bytes); });
  row.compress_mbps = raw / 1e6 / c_secs;
  row.decompress_mbps = raw / 1e6 / d_secs;
  row.ratio = raw / static_cast<double>(c.bytes.size());
  row.bound_ok = within_bound(field, dec, abs_bound(field, cfg));
  return row;
}

template <typename T>
void sweep_shape(const Dims& dims, const char* shape, const char* dtype,
                 std::FILE* json, bool* first) {
  const auto field = make_field<T>(dims);
  const CodecRow entropy = run_codec<T>(field, dims, sz::Config{});
  const CodecRow szx = run_codec<T>(field, dims, sz::Config::ultrafast());
  const double c_speedup = szx.compress_mbps / entropy.compress_mbps;
  const double d_speedup = szx.decompress_mbps / entropy.decompress_mbps;
  std::printf("%-12s %-4s entropy %8.1f / %8.1f MB/s ratio %6.2f %s\n",
              shape, dtype, entropy.compress_mbps, entropy.decompress_mbps,
              entropy.ratio, entropy.bound_ok ? "" : "BOUND-VIOLATION");
  std::printf("%-12s %-4s szx     %8.1f / %8.1f MB/s ratio %6.2f "
              "speedup %.2fx / %.2fx %s\n",
              shape, dtype, szx.compress_mbps, szx.decompress_mbps, szx.ratio,
              c_speedup, d_speedup, szx.bound_ok ? "" : "BOUND-VIOLATION");
  const struct {
    const char* codec;
    const CodecRow* row;
  } rows[] = {{"entropy_fast", &entropy}, {"szx", &szx}};
  for (const auto& r : rows) {
    std::fprintf(json,
                 "%s\n    {\"shape\": \"%s\", \"dtype\": \"%s\", "
                 "\"codec\": \"%s\", \"compress_mbps\": %.1f, "
                 "\"decompress_mbps\": %.1f, \"ratio\": %.4f, "
                 "\"bound_ok\": %s",
                 *first ? "" : ",", shape, dtype, r.codec,
                 r.row->compress_mbps, r.row->decompress_mbps, r.row->ratio,
                 r.row->bound_ok ? "true" : "false");
    if (r.row == &szx) {
      std::fprintf(json,
                   ", \"compress_speedup_vs_entropy\": %.3f, "
                   "\"decompress_speedup_vs_entropy\": %.3f",
                   c_speedup, d_speedup);
    }
    std::fputc('}', json);
    *first = false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wavesz;
  (void)bench::Options::parse(argc, argv);
  bench::print_header(
      "SZx ultra-fast codec vs entropy pipeline throughput",
      "SZx-style degraded mode (PAPERS.md); waveSZ throughput target §4.4");
  std::printf("(compress / decompress MB/s, best of %u runs)\n\n", kReps);

  std::FILE* json = std::fopen("BENCH_szx.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_szx.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"szx_throughput\",\n  \"results\": [");
  bool first = true;
  sweep_shape<float>(Dims::d2(512, 512), "512x512", "f32", json, &first);
  sweep_shape<float>(Dims::d2(2048, 2048), "2048x2048", "f32", json, &first);
  sweep_shape<double>(Dims::d2(2048, 2048), "2048x2048", "f64", json, &first);
  sweep_shape<float>(Dims::d3(64, 256, 256), "64x256x256", "f32", json,
                     &first);
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nresults written to BENCH_szx.json\n");
  return 0;
}
