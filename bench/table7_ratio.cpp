// Table 7: compression ratio at the 1e-3 value-range-relative bound —
// GhostSZ, waveSZ with gzip only (G*), waveSZ with customized Huffman then
// gzip (H*G*), and SZ-1.4. Border points count as unpredictable data in
// waveSZ, exactly as the paper's note says.
#include "common.hpp"

namespace {

/// Artifact appendix A.4.2: the "maximal possible compression ratio" leaves
/// the border points out of the compressed size ("verbatim" excluded).
double max_possible_ratio(wavesz::data::Persona p,
                          const wavesz::bench::Options& opts) {
  using namespace wavesz;
  double sum = 0;
  std::size_t n = 0;
  for (const auto& f : data::fields(p, opts.scale_for(p))) {
    const auto grid = f.materialize();
    const double raw = static_cast<double>(grid.size() * sizeof(float));
    const auto c = wave::compress(grid, f.dims, wave::default_config());
    const double without_borders =
        static_cast<double>(c.bytes.size()) -
        static_cast<double>(c.unpred_blob_bytes);
    sum += raw / without_borders;
    ++n;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Table 7 — compression ratio (1e-3 VR-rel bound)",
      "paper Table 7 (CESM 7.9/12.3/29.4/31.2, Hurricane 6.2/13.2/20.3/21.4, "
      "NYX 6.6/18.3/34.8/33.8)");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %10s %12s %12s %10s %12s    %s\n", "dataset",
              "GhostSZ", "waveSZ G*", "waveSZ H*G*", "SZ-1.4",
              "G* max-CR*", "wave/ghost (paper 2.1x avg)");
  double sum_gain = 0;
  std::vector<std::pair<std::string, bench::PersonaSummary>> dump;
  for (auto p : data::all_personas()) {
    auto s = bench::sweep_persona(p, opts, /*want_psnr=*/false);
    const double ghost = s.avg(&bench::FieldRow::ratio_ghost);
    const double wg = s.avg(&bench::FieldRow::ratio_wave_g);
    const double whg = s.avg(&bench::FieldRow::ratio_wave_hg);
    const double sz = s.avg(&bench::FieldRow::ratio_sz);
    sum_gain += wg / ghost;
    std::printf("%-12s %10.1f %12.1f %12.1f %10.1f %12.1f    %10.2fx\n",
                std::string(data::persona_name(p)).c_str(), ghost, wg, whg,
                sz, max_possible_ratio(p, opts), wg / ghost);
    dump.emplace_back(std::string(data::persona_name(p)), std::move(s));
  }
  bench::write_rows_json(opts, "table7_ratio", dump);
  std::printf("\n(* artifact appendix A.4.2: the 'maximal possible "
              "compression ratio' excludes\n   the verbatim border stream "
              "from the compressed size.)\n");
  std::printf("\naverage waveSZ(G*)/GhostSZ ratio gain: %.2fx (paper: 2.1x)\n",
              sum_gain / 3.0);
  std::printf("shape checks: GhostSZ < waveSZ G* < waveSZ H*G* <= SZ-1.4 on "
              "every dataset;\nH*G* recovers most of the customized-Huffman "
              "gap, as in the paper.\n");
  return 0;
}
