// Figure 6: the wavefront temporal-to-spatial mapping — start/end cycles of
// points in head/body/tail columns, the ideal closed form of §3.2, and the
// discrete simulator's agreement with it.
#include <cstdio>

#include "fpga/calibration.hpp"
#include "fpga/schedule.hpp"

int main() {
  using namespace wavesz::fpga;
  std::printf(
      "\n================================================================\n"
      "Figure 6 — wavefront timing: Lambda-to-Delta mapping\n"
      "reproduces: paper Fig. 6 annotations and §3.2 timing analysis\n"
      "================================================================\n");

  const std::uint64_t lambda = 8;
  std::printf("\nideal body schedule with Lambda = %llu (start = c*Lambda+r, "
              "end = (c+1)*Lambda+r-1):\n\n        ",
              static_cast<unsigned long long>(lambda));
  for (std::uint64_t c = 0; c < 5; ++c) std::printf("   col %llu ",
      static_cast<unsigned long long>(c));
  std::printf("\n");
  for (std::uint64_t r = 1; r <= lambda; ++r) {
    std::printf("  row %llu ", static_cast<unsigned long long>(r));
    for (std::uint64_t c = 0; c < 5; ++c) {
      std::printf(" [%3llu,%3llu]",
                  static_cast<unsigned long long>(ideal_start_cycle(r, c, lambda)),
                  static_cast<unsigned long long>(ideal_end_cycle(r, c, lambda)));
    }
    std::printf("\n");
  }
  std::printf("\nnote: start(r, c+1) = end(r, c) + 1 — the Delta cycles of "
              "PQD map exactly onto\nthe Lambda points of a body column, so "
              "the body never stalls.\n");

  std::printf("\ndiscrete simulation across Lambda regimes (Delta = %d "
              "cycles, pII = 1):\n\n", pqd_depth_base2());
  std::printf("  %-22s %12s %12s %12s %10s\n", "grid (d0 x d1)", "points",
              "issue span", "stalls", "occupancy");
  struct Case { std::size_t d0, d1; const char* note; };
  const Case cases[] = {
      {1800, 1200, "CESM lane: Lambda >> Delta"},
      {118, 10000, "Lambda == Delta + 1 (ideal)"},
      {100, 10000, "Hurricane lane: Lambda < Delta"},
      {32, 10000, "Lambda << Delta"},
  };
  ScheduleConfig cfg;
  cfg.depth = pqd_depth_base2();
  cfg.dep_latency = cfg.depth;
  for (const auto& c : cases) {
    const auto s = simulate_wavefront(c.d0, c.d1, cfg);
    std::printf("  %6zu x %-12zu %12llu %12llu %12llu %9.3f   %s\n", c.d0,
                c.d1, static_cast<unsigned long long>(s.points),
                static_cast<unsigned long long>(s.issue_span),
                static_cast<unsigned long long>(s.stall_cycles),
                s.occupancy(), c.note);
  }
  std::printf("\nshape check: occupancy ~1 whenever Lambda >= Delta; "
              "~Lambda/Delta below that\n(this is the Hurricane dip in "
              "Table 5).\n");
  return 0;
}
