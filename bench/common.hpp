// Shared helpers for the per-table/per-figure benchmark harnesses.
//
// Every bench accepts:
//   --scale N   global downscale divisor override (default: per-persona
//               values that preserve the paper-native border fractions)
//   --full      run at the paper-native dimensions (2-3 GB of field data;
//               slow on a laptop, exact geometry)
// and prints the paper's reference numbers next to the reproduced ones.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "util/dims.hpp"
#include "util/timer.hpp"

namespace wavesz::bench {

struct Options {
  unsigned scale_override = 0;  // 0 = per-persona default
  bool full = false;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--full") {
        o.full = true;
      } else if (a == "--scale" && i + 1 < argc) {
        o.scale_override = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (a == "--help" || a == "-h") {
        std::printf("usage: %s [--scale N] [--full]\n", argv[0]);
        std::exit(0);
      }
    }
    return o;
  }

  unsigned scale_for(data::Persona p) const {
    if (full) return 1;
    if (scale_override > 0) return scale_override;
    switch (p) {
      case data::Persona::CesmAtm: return 16;   // 112 x 225
      case data::Persona::Hurricane: return 2;  // 50 x 250 x 250
      case data::Persona::Nyx: return 8;        // 64^3
    }
    return 16;
  }
};

/// Per-field results of running every compressor variant.
struct FieldRow {
  std::string name;
  double ratio_sz = 0, ratio_ghost = 0, ratio_wave_g = 0, ratio_wave_hg = 0;
  double psnr_sz = 0, psnr_ghost = 0, psnr_wave = 0;
  double mbps_sz = 0;  ///< measured single-core SZ-1.4 compression speed
};

/// Averages across a persona's fields.
struct PersonaSummary {
  std::vector<FieldRow> rows;
  double avg(double FieldRow::* member) const {
    double s = 0;
    for (const auto& r : rows) s += r.*member;
    return rows.empty() ? 0.0 : s / static_cast<double>(rows.size());
  }
};

inline PersonaSummary sweep_persona(data::Persona p, const Options& opts,
                                    bool want_psnr = true) {
  PersonaSummary out;
  for (const auto& f : data::fields(p, opts.scale_for(p))) {
    const auto grid = f.materialize();
    const double raw = static_cast<double>(grid.size() * sizeof(float));
    FieldRow row;
    row.name = f.name;

    Stopwatch sw;
    const auto c_sz = sz::compress(grid, f.dims, sz::Config{});
    row.mbps_sz = sw.mbps(grid.size() * sizeof(float));
    row.ratio_sz = raw / static_cast<double>(c_sz.bytes.size());

    const auto c_ghost = ghost::compress(grid, f.dims, sz::Config{});
    row.ratio_ghost = raw / static_cast<double>(c_ghost.bytes.size());

    auto cfg_wave = wave::default_config();
    const auto c_wg = wave::compress(grid, f.dims, cfg_wave);
    row.ratio_wave_g = raw / static_cast<double>(c_wg.bytes.size());

    cfg_wave.huffman = true;
    const auto c_whg = wave::compress(grid, f.dims, cfg_wave);
    row.ratio_wave_hg = raw / static_cast<double>(c_whg.bytes.size());

    if (want_psnr) {
      row.psnr_sz =
          metrics::distortion(grid, sz::decompress(c_sz.bytes)).psnr_db;
      row.psnr_ghost =
          metrics::distortion(grid, ghost::decompress(c_ghost.bytes))
              .psnr_db;
      row.psnr_wave =
          metrics::distortion(grid, wave::decompress(c_wg.bytes)).psnr_db;
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

inline void print_header(const char* title, const char* paper_anchor) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_anchor);
  std::printf("================================================================\n");
}

inline void print_scale_note(const Options& opts) {
  if (opts.full) {
    std::printf("(paper-native dimensions)\n");
  } else {
    std::printf("(synthetic personas at reduced scale; pass --full for "
                "paper-native dims)\n");
  }
}

}  // namespace wavesz::bench
