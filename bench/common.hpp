// Shared helpers for the per-table/per-figure benchmark harnesses.
//
// Every bench accepts:
//   --scale N   global downscale divisor override (default: per-persona
//               values that preserve the paper-native border fractions)
//   --full      run at the paper-native dimensions (2-3 GB of field data;
//               slow on a laptop, exact geometry)
//   --repeat N  time each measured kernel N times and report the median
//               wall time (default 1)
//   --json F    additionally dump every per-field row to F as JSON, so the
//               BENCH_*.json fixtures regenerate without stdout copy-paste
//   --perf      sample hardware counters (perf_event_open) around the timed
//               SZ kernel and report IPC / cache misses per kilo-instruction
//               (silently skipped where counters are unavailable)
// and prints the paper's reference numbers next to the reproduced ones.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "telemetry/perf_counters.hpp"
#include "util/dims.hpp"
#include "util/timer.hpp"

namespace wavesz::bench {

struct Options {
  unsigned scale_override = 0;  // 0 = per-persona default
  bool full = false;
  unsigned repeat = 1;          // median-of-N for reported wall times
  bool perf = false;            // hardware-counter sampling of timed kernels
  std::string json_path;        // empty = no JSON row dump

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--full") {
        o.full = true;
      } else if (a == "--scale" && i + 1 < argc) {
        o.scale_override = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (a == "--repeat" && i + 1 < argc) {
        o.repeat = static_cast<unsigned>(std::stoul(argv[++i]));
        if (o.repeat == 0) o.repeat = 1;
      } else if (a == "--json" && i + 1 < argc) {
        o.json_path = argv[++i];
      } else if (a == "--perf") {
        o.perf = true;
      } else if (a == "--help" || a == "-h") {
        std::printf("usage: %s [--scale N] [--full] [--repeat N] "
                    "[--json <out.json>] [--perf]\n", argv[0]);
        std::exit(0);
      }
    }
    if (o.perf) {
      telemetry::set_perf_enabled(true);
      if (!telemetry::perf_available()) {
        std::fprintf(stderr, "perf: hardware counters unavailable "
                             "(perf_event_open denied?); IPC columns will "
                             "read 0\n");
      }
    }
    return o;
  }

  unsigned scale_for(data::Persona p) const {
    if (full) return 1;
    if (scale_override > 0) return scale_override;
    switch (p) {
      case data::Persona::CesmAtm: return 16;   // 112 x 225
      case data::Persona::Hurricane: return 2;  // 50 x 250 x 250
      case data::Persona::Nyx: return 8;        // 64^3
    }
    return 16;
  }
};

/// Per-field results of running every compressor variant.
struct FieldRow {
  std::string name;
  double ratio_sz = 0, ratio_ghost = 0, ratio_wave_g = 0, ratio_wave_hg = 0;
  double psnr_sz = 0, psnr_ghost = 0, psnr_wave = 0;
  double mbps_sz = 0;  ///< measured single-core SZ-1.4 compression speed
  /// Hardware-counter view of the timed SZ kernel (0 unless --perf sampled
  /// successfully): instructions per cycle and cache misses per kilo-instr.
  double ipc_sz = 0, cache_mpki_sz = 0;
};

/// Averages across a persona's fields.
struct PersonaSummary {
  std::vector<FieldRow> rows;
  double avg(double FieldRow::* member) const {
    double s = 0;
    for (const auto& r : rows) s += r.*member;
    return rows.empty() ? 0.0 : s / static_cast<double>(rows.size());
  }
};

/// Run `fn` `repeat` times and return the median wall time in seconds.
/// Reporting the median (not the first or the mean) makes timed columns
/// stable under cold caches and scheduler noise.
template <typename Fn>
double median_seconds(unsigned repeat, Fn&& fn) {
  std::vector<double> secs;
  secs.reserve(repeat);
  for (unsigned r = 0; r < repeat; ++r) {
    Stopwatch sw;
    fn();
    secs.push_back(sw.seconds());
  }
  std::sort(secs.begin(), secs.end());
  const std::size_t n = secs.size();
  return n % 2 == 1 ? secs[n / 2] : 0.5 * (secs[n / 2 - 1] + secs[n / 2]);
}

inline PersonaSummary sweep_persona(data::Persona p, const Options& opts,
                                    bool want_psnr = true) {
  PersonaSummary out;
  for (const auto& f : data::fields(p, opts.scale_for(p))) {
    const auto grid = f.materialize();
    const double raw = static_cast<double>(grid.size() * sizeof(float));
    FieldRow row;
    row.name = f.name;

    sz::Compressed c_sz;
    const telemetry::PerfReading hw0 = telemetry::perf_now();
    const double sz_secs = median_seconds(opts.repeat, [&] {
      c_sz = sz::compress(grid, f.dims, sz::Config{});
    });
    const telemetry::PerfReading hw =
        telemetry::perf_delta(hw0, telemetry::perf_now());
    if (hw.valid && hw.cycles > 0 && hw.instructions > 0) {
      row.ipc_sz = static_cast<double>(hw.instructions) /
                   static_cast<double>(hw.cycles);
      row.cache_mpki_sz = static_cast<double>(hw.cache_misses) * 1e3 /
                          static_cast<double>(hw.instructions);
    }
    row.mbps_sz =
        static_cast<double>(grid.size() * sizeof(float)) / 1e6 / sz_secs;
    row.ratio_sz = raw / static_cast<double>(c_sz.bytes.size());

    const auto c_ghost = ghost::compress(grid, f.dims, sz::Config{});
    row.ratio_ghost = raw / static_cast<double>(c_ghost.bytes.size());

    auto cfg_wave = wave::default_config();
    const auto c_wg = wave::compress(grid, f.dims, cfg_wave);
    row.ratio_wave_g = raw / static_cast<double>(c_wg.bytes.size());

    cfg_wave.huffman = true;
    const auto c_whg = wave::compress(grid, f.dims, cfg_wave);
    row.ratio_wave_hg = raw / static_cast<double>(c_whg.bytes.size());

    if (want_psnr) {
      row.psnr_sz =
          metrics::distortion(grid, sz::decompress(c_sz.bytes)).psnr_db;
      row.psnr_ghost =
          metrics::distortion(grid, ghost::decompress(c_ghost.bytes))
              .psnr_db;
      row.psnr_wave =
          metrics::distortion(grid, wave::decompress(c_wg.bytes)).psnr_db;
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

inline void print_header(const char* title, const char* paper_anchor) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_anchor);
  std::printf("================================================================\n");
}

inline void print_scale_note(const Options& opts) {
  if (opts.full) {
    std::printf("(paper-native dimensions)\n");
  } else {
    std::printf("(synthetic personas at reduced scale; pass --full for "
                "paper-native dims)\n");
  }
  if (opts.repeat > 1) {
    std::printf("(timings are the median of %u runs)\n", opts.repeat);
  }
}

namespace detail {

inline void json_escape_to(std::FILE* f, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      std::fputc('\\', f);
      std::fputc(ch, f);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      std::fprintf(f, "\\u%04x", static_cast<unsigned>(ch));
    } else {
      std::fputc(ch, f);
    }
  }
}

}  // namespace detail

/// Dump every per-field row gathered by a bench to `opts.json_path` (no-op
/// when --json was not given). The schema is one object per persona with
/// the full FieldRow contents, so BENCH_*.json fixtures regenerate from a
/// single flag instead of copy-pasting stdout.
inline void write_rows_json(
    const Options& opts, const char* bench_name,
    const std::vector<std::pair<std::string, PersonaSummary>>& personas) {
  if (opts.json_path.empty()) return;
  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"full\": %s,\n"
               "  \"scale_override\": %u,\n  \"repeat\": %u,\n"
               "  \"personas\": [",
               bench_name, opts.full ? "true" : "false", opts.scale_override,
               opts.repeat);
  bool first_p = true;
  for (const auto& [name, summary] : personas) {
    std::fprintf(f, "%s\n    {\"name\": \"", first_p ? "" : ",");
    first_p = false;
    detail::json_escape_to(f, name);
    std::fprintf(f, "\", \"rows\": [");
    bool first_r = true;
    for (const auto& r : summary.rows) {
      std::fprintf(f, "%s\n      {\"field\": \"", first_r ? "" : ",");
      first_r = false;
      detail::json_escape_to(f, r.name);
      std::fprintf(f,
                   "\", \"ratio_sz\": %.10g, \"ratio_ghost\": %.10g, "
                   "\"ratio_wave_g\": %.10g, \"ratio_wave_hg\": %.10g, "
                   "\"psnr_sz\": %.10g, \"psnr_ghost\": %.10g, "
                   "\"psnr_wave\": %.10g, \"mbps_sz\": %.10g",
                   r.ratio_sz, r.ratio_ghost, r.ratio_wave_g, r.ratio_wave_hg,
                   r.psnr_sz, r.psnr_ghost, r.psnr_wave, r.mbps_sz);
      // Hardware-counter columns appear only under --perf so the committed
      // fixtures regenerate byte-stable on machines without counter access.
      if (opts.perf) {
        std::fprintf(f, ", \"ipc_sz\": %.10g, \"cache_mpki_sz\": %.10g",
                     r.ipc_sz, r.cache_mpki_sz);
      }
      std::fputc('}', f);
    }
    std::fprintf(f, "\n    ]}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nrows dumped to %s\n", opts.json_path.c_str());
}

}  // namespace wavesz::bench
