// Evaluation of the paper's §2.1 claim about SZ-2.0: "the 2.0 model is more
// effective only in the low-precision compression cases ... SZ-2.0 has very
// similar (or slightly worse) compression quality/performance compared with
// SZ-1.4 when the users set a relatively low error bound." This bench sweeps
// the bound across decades on every persona and prints the SZ-2.0 / SZ-1.4
// ratio relation, plus the regression-block share that drives it.
#include "common.hpp"
#include "data/synthetic.hpp"
#include "sz2/sz2.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header("SZ-2.0 vs SZ-1.4 across precision regimes",
                      "paper §2.1 (why waveSZ builds on SZ-1.4, not 2.0)");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %-10s | %9s %9s %8s | %s\n", "dataset", "eb(VRrel)",
              "SZ-1.4", "SZ-2.0", "2.0/1.4", "regression blocks");
  for (auto p : data::all_personas()) {
    for (double eb : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
      double sum14 = 0, sum20 = 0, regshare = 0;
      std::size_t n = 0;
      for (const auto& f : data::fields(p, opts.scale_for(p))) {
        const auto grid = f.materialize();
        const double raw =
            static_cast<double>(grid.size() * sizeof(float));
        sz::Config c14;
        c14.error_bound = eb;
        sum14 += raw / static_cast<double>(
                           sz::compress(grid, f.dims, c14).bytes.size());
        sz2::Config c20;
        c20.error_bound = eb;
        const auto r20 = sz2::compress(grid, f.dims, c20);
        sum20 += raw / static_cast<double>(r20.bytes.size());
        regshare += static_cast<double>(r20.regression_blocks) /
                    static_cast<double>(r20.block_count);
        ++n;
      }
      const double a14 = sum14 / static_cast<double>(n);
      const double a20 = sum20 / static_cast<double>(n);
      std::printf("%-12s %-10g | %9.1f %9.1f %8.2f | %14.0f%%\n",
                  std::string(data::persona_name(p)).c_str(), eb, a14, a20,
                  a20 / a14,
                  100.0 * regshare / static_cast<double>(n));
    }
  }
  // The smooth personas favour Lorenzo at every bound ("very similar or
  // slightly worse", §2.1). The low-precision advantage of SZ-2.0 needs
  // fields with noise the Lorenzo stencil amplifies — demonstrate it on a
  // measurement-noise-heavy variant.
  std::printf("\n--- noisy-field variant (plane + 1%% white noise):\n");
  data::FieldRecipe noisy;
  noisy.seed = 404;
  noisy.wave_components = 2;
  noisy.base_frequency = 0.3;
  noisy.noise_amplitude = 1e-2;
  const Dims ndims = Dims::d2(256, 256);
  const auto ngrid = data::generate(noisy, ndims);
  const double nraw = static_cast<double>(ngrid.size() * sizeof(float));
  std::printf("%-12s %-10s | %9s %9s %8s\n", "dataset", "eb(VRrel)",
              "SZ-1.4", "SZ-2.0", "2.0/1.4");
  for (double eb : {1e-1, 1e-2, 1e-3, 1e-4}) {
    sz::Config c14;
    c14.error_bound = eb;
    const double a14 =
        nraw /
        static_cast<double>(sz::compress(ngrid, ndims, c14).bytes.size());
    sz2::Config c20;
    c20.error_bound = eb;
    const double a20 =
        nraw / static_cast<double>(
                   sz2::compress(ngrid, ndims, c20).bytes.size());
    std::printf("%-12s %-10g | %9.1f %9.1f %8.2f\n", "noisy-plane", eb, a14,
                a20, a20 / a14);
  }
  std::printf("\nshape check: on smooth fields SZ-2.0 tracks SZ-1.4 within a "
              "few percent at\nevery bound; on noisy fields it wins at "
              "coarse bounds (regression averages the\nnoise away) and "
              "converges at tight bounds — the §2.1 regime argument for\n"
              "basing the FPGA design on SZ-1.4.\n");
  return 0;
}
