// Figure 2: the single-layer 2D and 3D Lorenzo stencils — regenerated from
// the implemented predictors by probing each neighbour with a unit impulse,
// and checked against the paper's signum rule (-1)^(L+1) where L is the
// Manhattan distance from the predicted point.
#include <cstdio>
#include <cstdlib>

#include "sz/predictor.hpp"

int main() {
  using namespace wavesz::sz;
  std::printf(
      "\n================================================================\n"
      "Figure 2 — single-layer Lorenzo stencils (probed from the code)\n"
      "reproduces: paper Fig. 2 and its signum rule (-1)^(L+1)\n"
      "================================================================\n");

  std::printf("\n2D stencil (coefficient at offset (dx, dy)):\n");
  bool ok = true;
  struct P2 { int dx, dy; };
  const P2 probes2[] = {{1, 1}, {1, 0}, {0, 1}};
  for (const auto& p : probes2) {
    // Impulse at this neighbour, zeros elsewhere.
    const double c = lorenzo2d(p.dx == 1 && p.dy == 1 ? 1.0 : 0.0,
                               p.dx == 1 && p.dy == 0 ? 1.0 : 0.0,
                               p.dx == 0 && p.dy == 1 ? 1.0 : 0.0);
    const int manhattan = p.dx + p.dy;
    const double expected = (manhattan % 2 == 1) ? 1.0 : -1.0;
    if (c != expected) ok = false;
    std::printf("  (x-%d, y-%d): %+.0f   (L1 = %d, rule says %+.0f)\n",
                p.dx, p.dy, c, manhattan, expected);
  }

  std::printf("\n3D stencil (coefficient at offset (dx, dy, dz)):\n");
  struct P3 { int dx, dy, dz; };
  const P3 probes3[] = {{1, 1, 1}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1},
                        {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (const auto& p : probes3) {
    auto at = [&](int dx, int dy, int dz) {
      return (p.dx == dx && p.dy == dy && p.dz == dz) ? 1.0 : 0.0;
    };
    const double c = lorenzo3d(at(1, 1, 1), at(1, 1, 0), at(1, 0, 1),
                               at(0, 1, 1), at(1, 0, 0), at(0, 1, 0),
                               at(0, 0, 1));
    const int manhattan = p.dx + p.dy + p.dz;
    const double expected = (manhattan % 2 == 1) ? 1.0 : -1.0;
    if (c != expected) ok = false;
    std::printf("  (x-%d, y-%d, z-%d): %+.0f   (L1 = %d, rule says %+.0f)\n",
                p.dx, p.dy, p.dz, c, manhattan, expected);
  }
  std::printf("\n%s\n", ok ? "PASS — every coefficient obeys (-1)^(L+1)"
                           : "FAIL");
  return ok ? 0 : 1;
}
