// Decompression throughput on the CPU. The paper measures only compression
// on the FPGA because "users mainly use the SZ on CPU to decompress the
// data for postanalysis and visualization" (§4.2) — this bench supplies
// that CPU-side half of the story for every variant in this repository.
#include "common.hpp"
#include "sz2/sz2.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Decompression throughput on this CPU (MB/s of output data)",
      "paper §4.2 deployment note (decompression happens host-side)");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %10s %10s %12s %12s %10s\n", "dataset", "SZ-1.4",
              "GhostSZ", "waveSZ G*", "waveSZ H*G*", "SZ-2.0");
  for (auto p : data::all_personas()) {
    double t_sz = 0, t_ghost = 0, t_wg = 0, t_whg = 0, t_sz2 = 0;
    double bytes = 0;
    for (const auto& f : data::fields(p, opts.scale_for(p))) {
      const auto grid = f.materialize();
      bytes += static_cast<double>(grid.size() * sizeof(float));

      const auto c_sz = sz::compress(grid, f.dims, sz::Config{});
      const auto c_ghost = ghost::compress(grid, f.dims, sz::Config{});
      auto wcfg = wave::default_config();
      const auto c_wg = wave::compress(grid, f.dims, wcfg);
      wcfg.huffman = true;
      const auto c_whg = wave::compress(grid, f.dims, wcfg);
      sz2::Config cfg2;
      const auto c_sz2 = sz2::compress(grid, f.dims, cfg2);

      Stopwatch sw;
      (void)sz::decompress(c_sz.bytes);
      t_sz += sw.seconds();
      sw.reset();
      (void)ghost::decompress(c_ghost.bytes);
      t_ghost += sw.seconds();
      sw.reset();
      (void)wave::decompress(c_wg.bytes);
      t_wg += sw.seconds();
      sw.reset();
      (void)wave::decompress(c_whg.bytes);
      t_whg += sw.seconds();
      sw.reset();
      (void)sz2::decompress(c_sz2.bytes);
      t_sz2 += sw.seconds();
    }
    std::printf("%-12s %10.0f %10.0f %12.0f %12.0f %10.0f\n",
                std::string(data::persona_name(p)).c_str(),
                bytes / 1e6 / t_sz, bytes / 1e6 / t_ghost,
                bytes / 1e6 / t_wg, bytes / 1e6 / t_whg,
                bytes / 1e6 / t_sz2);
  }
  std::printf("\nreading: decompression skips the Huffman-tree build and "
              "the LZ77 match\nsearch, so it runs ~2x the CPU compression "
              "speeds of Table 5 — consistent\nwith the paper's "
              "decompress-on-host deployment.\n");
  return 0;
}
