// Decompression throughput on the CPU. The paper measures only compression
// on the FPGA because "users mainly use the SZ on CPU to decompress the
// data for postanalysis and visualization" (§4.2) — this bench supplies
// that CPU-side half of the story for every variant in this repository.
//
// Two sections:
//   1. per-persona decompression throughput of every compressor variant
//      (timed as the median of --repeat runs);
//   2. the decode fast path vs the bit-at-a-time reference oracle on the
//      512x512 synthetic fixture at deflate Level::Best — gzip member and
//      full SZ container — asserting byte-identical output. This is the
//      table recorded in EXPERIMENTS.md and dumped via --json to
//      BENCH_decode.json.
#include <cmath>
#include <thread>

#include "common.hpp"
#include "deflate/deflate.hpp"
#include "sz2/sz2.hpp"
#include "util/huffman.hpp"

namespace {

using namespace wavesz;

std::vector<float> make_synthetic_512() {
  std::vector<float> out(512 * 512);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto x = static_cast<double>(i % 512);
    const auto y = static_cast<double>(i / 512);
    out[i] = static_cast<float>(std::sin(0.013 * y) + std::cos(0.021 * x) +
                                0.3 * std::sin(0.41 * (x + y)));
  }
  return out;
}

struct DecodeRow {
  const char* fixture;
  std::size_t out_bytes = 0;
  double fast_s = 0, ref_s = 0;
  bool identical = false;

  double speedup() const { return fast_s > 0 ? ref_s / fast_s : 0.0; }
  double fast_mbps() const {
    return static_cast<double>(out_bytes) / 1e6 / fast_s;
  }
  double ref_mbps() const {
    return static_cast<double>(out_bytes) / 1e6 / ref_s;
  }
};

/// Time `decode()` on both paths; `decode` must return the decoded bytes
/// (or any container comparable for byte-identity).
template <typename Decode>
DecodeRow time_both_paths(const char* fixture, unsigned repeat,
                          Decode&& decode) {
  DecodeRow row;
  row.fixture = fixture;
  set_reference_decode(false);
  auto fast = decode();
  row.fast_s = bench::median_seconds(repeat, [&] { fast = decode(); });
  set_reference_decode(true);
  auto ref = decode();
  row.ref_s = bench::median_seconds(repeat, [&] { ref = decode(); });
  set_reference_decode(false);
  row.identical = fast == ref;
  row.out_bytes = fast.size() * sizeof(fast[0]);
  return row;
}

/// One chunk-indexed (container v2) decode timing at a given thread budget.
struct ScaleRow {
  const char* fixture;
  int threads = 1;
  std::size_t out_bytes = 0;
  double seconds = 0, serial_seconds = 0;
  bool identical = false;

  double mbps() const { return static_cast<double>(out_bytes) / 1e6 / seconds; }
  double speedup() const { return seconds > 0 ? serial_seconds / seconds : 0; }
};

/// One hyperslab decode via the v2 chunk index vs the full-field decode.
struct RegionRow {
  const char* fixture;
  std::size_t container_bytes = 0, bytes_read = 0, out_bytes = 0;
  double seconds = 0, full_seconds = 0;
  bool identical = false;

  double read_frac() const {
    return static_cast<double>(bytes_read) /
           static_cast<double>(container_bytes);
  }
};

void write_decode_json(const bench::Options& opts,
                       const std::vector<DecodeRow>& rows,
                       const std::vector<ScaleRow>& scale_rows,
                       const std::vector<RegionRow>& region_rows) {
  if (opts.json_path.empty()) return;
  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"decompression_throughput\",\n"
               "  \"version\": 2,\n"
               "  \"fixture\": \"synthetic 512x512 f32, deflate "
               "Level::Best\",\n  \"repeat\": %u,\n"
               "  \"hardware_threads\": %u,\n  \"rows\": [",
               opts.repeat, std::thread::hardware_concurrency());
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(f, "%s\n    {\"fixture\": \"", first ? "" : ",");
    first = false;
    bench::detail::json_escape_to(f, r.fixture);
    std::fprintf(f,
                 "\", \"out_bytes\": %zu, \"fast_mbps\": %.10g, "
                 "\"reference_mbps\": %.10g, \"speedup\": %.10g, "
                 "\"identical\": %s}",
                 r.out_bytes, r.fast_mbps(), r.ref_mbps(), r.speedup(),
                 r.identical ? "true" : "false");
  }
  std::fprintf(f, "\n  ],\n  \"parallel_rows\": [");
  first = true;
  for (const auto& r : scale_rows) {
    std::fprintf(f, "%s\n    {\"fixture\": \"", first ? "" : ",");
    first = false;
    bench::detail::json_escape_to(f, r.fixture);
    std::fprintf(f,
                 "\", \"threads\": %d, \"out_bytes\": %zu, "
                 "\"mbps\": %.10g, \"speedup_vs_serial\": %.10g, "
                 "\"identical\": %s}",
                 r.threads, r.out_bytes, r.mbps(), r.speedup(),
                 r.identical ? "true" : "false");
  }
  std::fprintf(f, "\n  ],\n  \"region_rows\": [");
  first = true;
  for (const auto& r : region_rows) {
    std::fprintf(f, "%s\n    {\"fixture\": \"", first ? "" : ",");
    first = false;
    bench::detail::json_escape_to(f, r.fixture);
    std::fprintf(f,
                 "\", \"container_bytes\": %zu, \"bytes_read\": %zu, "
                 "\"read_fraction\": %.10g, \"out_bytes\": %zu, "
                 "\"region_seconds\": %.10g, \"full_seconds\": %.10g, "
                 "\"identical\": %s}",
                 r.container_bytes, r.bytes_read, r.read_frac(), r.out_bytes,
                 r.seconds, r.full_seconds, r.identical ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nrows dumped to %s\n", opts.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Decompression throughput on this CPU (MB/s of output data)",
      "paper §4.2 deployment note (decompression happens host-side)");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %10s %10s %12s %12s %10s\n", "dataset", "SZ-1.4",
              "GhostSZ", "waveSZ G*", "waveSZ H*G*", "SZ-2.0");
  for (auto p : data::all_personas()) {
    double t_sz = 0, t_ghost = 0, t_wg = 0, t_whg = 0, t_sz2 = 0;
    double bytes = 0;
    for (const auto& f : data::fields(p, opts.scale_for(p))) {
      const auto grid = f.materialize();
      bytes += static_cast<double>(grid.size() * sizeof(float));

      const auto c_sz = sz::compress(grid, f.dims, sz::Config{});
      const auto c_ghost = ghost::compress(grid, f.dims, sz::Config{});
      auto wcfg = wave::default_config();
      const auto c_wg = wave::compress(grid, f.dims, wcfg);
      wcfg.huffman = true;
      const auto c_whg = wave::compress(grid, f.dims, wcfg);
      sz2::Config cfg2;
      const auto c_sz2 = sz2::compress(grid, f.dims, cfg2);

      t_sz += bench::median_seconds(
          opts.repeat, [&] { (void)sz::decompress(c_sz.bytes); });
      t_ghost += bench::median_seconds(
          opts.repeat, [&] { (void)ghost::decompress(c_ghost.bytes); });
      t_wg += bench::median_seconds(
          opts.repeat, [&] { (void)wave::decompress(c_wg.bytes); });
      t_whg += bench::median_seconds(
          opts.repeat, [&] { (void)wave::decompress(c_whg.bytes); });
      t_sz2 += bench::median_seconds(
          opts.repeat, [&] { (void)sz2::decompress(c_sz2.bytes); });
    }
    std::printf("%-12s %10.0f %10.0f %12.0f %12.0f %10.0f\n",
                std::string(data::persona_name(p)).c_str(),
                bytes / 1e6 / t_sz, bytes / 1e6 / t_ghost,
                bytes / 1e6 / t_wg, bytes / 1e6 / t_whg,
                bytes / 1e6 / t_sz2);
  }

  std::printf("\n----------------------------------------------------------------\n");
  std::printf("decode fast path vs bit-at-a-time reference "
              "(512x512 synthetic, Level::Best)\n");
  std::printf("----------------------------------------------------------------\n");

  const auto grid = make_synthetic_512();
  const Dims dims = Dims::d2(512, 512);
  std::vector<DecodeRow> rows;

  {
    std::vector<std::uint8_t> raw(grid.size() * sizeof(float));
    std::memcpy(raw.data(), grid.data(), raw.size());
    const auto gz = deflate::gzip_compress(raw, deflate::Level::Best);
    rows.push_back(time_both_paths("gzip member (f32 bytes)", opts.repeat,
                                   [&] { return deflate::gzip_decompress(gz); }));
  }
  {
    sz::Config cfg;
    cfg.gzip_level = deflate::Level::Best;
    const auto c = sz::compress(grid, dims, cfg);
    rows.push_back(time_both_paths("SZ-1.4 container", opts.repeat,
                                   [&] { return sz::decompress(c.bytes); }));
  }
  {
    auto wcfg = wave::default_config();
    wcfg.huffman = true;
    wcfg.gzip_level = deflate::Level::Best;
    const auto c = wave::compress(grid, dims, wcfg);
    rows.push_back(time_both_paths("waveSZ H*G* container", opts.repeat,
                                   [&] { return wave::decompress(c.bytes); }));
  }

  std::printf("\n%-24s %12s %12s %10s %10s\n", "fixture", "fast MB/s",
              "ref MB/s", "speedup", "identical");
  bool all_identical = true;
  for (const auto& r : rows) {
    all_identical = all_identical && r.identical;
    std::printf("%-24s %12.0f %12.0f %9.2fx %10s\n", r.fixture, r.fast_mbps(),
                r.ref_mbps(), r.speedup(), r.identical ? "yes" : "NO");
  }

  std::printf("\n----------------------------------------------------------------\n");
  std::printf("chunk-indexed (v2) decode thread scaling + region decode "
              "(512x512)\n");
  std::printf("----------------------------------------------------------------\n");

  std::vector<ScaleRow> scale_rows;
  std::vector<RegionRow> region_rows;
  // Quarter-field hyperslab with full dependency closure inside the read
  // prefix: the top-left corner, so the region decoders stop early.
  sz::Region quarter;
  quarter.hi = {256, 256, 0};

  const auto run_variant = [&](const char* name, const char* region_name,
                               const std::vector<std::uint8_t>& blob,
                               auto&& full_decode, auto&& region_decode) {
    const auto serial = full_decode(sz::DecodeOptions{1, 1});
    double serial_s = 0;
    for (int nt : {1, 2, 4, 8}) {
      ScaleRow r;
      r.fixture = name;
      r.threads = nt;
      const sz::DecodeOptions o{nt, nt};
      auto out = full_decode(o);
      r.seconds = bench::median_seconds(opts.repeat,
                                        [&] { out = full_decode(o); });
      if (nt == 1) serial_s = r.seconds;
      r.serial_seconds = serial_s;
      r.identical = out == serial;
      r.out_bytes = out.size() * sizeof(out[0]);
      scale_rows.push_back(r);
    }
    RegionRow rr;
    rr.fixture = region_name;
    auto res = region_decode(quarter);
    rr.seconds = bench::median_seconds(opts.repeat,
                                       [&] { res = region_decode(quarter); });
    rr.full_seconds = serial_s;
    rr.container_bytes = blob.size();
    rr.bytes_read = res.compressed_bytes_read;
    rr.out_bytes = res.data.size() * sizeof(res.data[0]);
    bool same = res.data.size() == 256u * 256u;
    for (std::size_t y = 0; same && y < 256; ++y) {
      for (std::size_t x = 0; x < 256; ++x) {
        if (res.data[y * 256 + x] != serial[y * 512 + x]) {
          same = false;
          break;
        }
      }
    }
    rr.identical = same;
    region_rows.push_back(rr);
  };

  {
    const auto c = sz::compress(grid, dims, sz::Config{});
    run_variant(
        "SZ-1.4 v2 container", "SZ-1.4 quarter region", c.bytes,
        [&](const sz::DecodeOptions& o) { return sz::decompress(c.bytes, o); },
        [&](const sz::Region& rg) {
          return sz::decompress_region(c.bytes, rg);
        });
  }
  {
    auto wcfg = wave::default_config();
    wcfg.huffman = true;
    const auto c = wave::compress(grid, dims, wcfg);
    run_variant(
        "waveSZ H*G* v2 container", "waveSZ quarter region", c.bytes,
        [&](const sz::DecodeOptions& o) {
          return wave::decompress(c.bytes, o);
        },
        [&](const sz::Region& rg) {
          return wave::decompress_region(c.bytes, rg);
        });
  }

  std::printf("\n%-26s %8s %10s %10s %10s\n", "fixture", "threads", "MB/s",
              "speedup", "identical");
  for (const auto& r : scale_rows) {
    all_identical = all_identical && r.identical;
    std::printf("%-26s %8d %10.0f %9.2fx %10s\n", r.fixture, r.threads,
                r.mbps(), r.speedup(), r.identical ? "yes" : "NO");
  }
  std::printf("\n%-26s %12s %12s %10s %10s\n", "fixture", "read bytes",
              "of total", "vs full", "identical");
  for (const auto& r : region_rows) {
    all_identical = all_identical && r.identical;
    std::printf("%-26s %12zu %11.0f%% %9.2fx %10s\n", r.fixture, r.bytes_read,
                100.0 * r.read_frac(),
                r.seconds > 0 ? r.full_seconds / r.seconds : 0.0,
                r.identical ? "yes" : "NO");
  }
  write_decode_json(opts, rows, scale_rows, region_rows);

  std::printf("\nreading: the flat two-level Huffman tables and 64-bit "
              "bulk-refill bit\nreaders decode several bits per probe where "
              "the reference walks one bit\nper step; output bytes are "
              "identical on every fixture%s.\n",
              all_identical ? "" : " — MISMATCH, decode bug");
  return all_identical ? 0 : 1;
}
