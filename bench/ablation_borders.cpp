// Ablation: unpredictable-data handling. SZ-1.4 truncation-codes its
// unpredictable values (bit analysis, extra hardware); waveSZ ships them
// verbatim to gzip for throughput (§3.2). This bench quantifies the size
// cost of the verbatim shortcut on each persona's border/unpredictable
// stream and the hardware it saves.
#include <vector>

#include "common.hpp"
#include "core/wavefront.hpp"
#include "deflate/deflate.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "util/bytes.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Ablation — unpredictable data: truncation coding vs verbatim",
      "paper §3.2 ('directly passes the unpredictable data to gzip')");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %-14s %10s %12s %12s %9s\n", "dataset", "field",
              "#unpred", "verbatim+gz", "truncated+gz", "overhead");
  for (auto p : data::all_personas()) {
    for (const auto& f : data::fields(p, opts.scale_for(p))) {
      const auto grid = f.materialize();
      const auto c = wave::compress(grid, f.dims, wave::default_config());
      // Recover the verbatim stream by re-running the kernel.
      const Dims flat = f.dims.flatten2d();
      const wave::WavefrontLayout layout(flat[0], flat[1]);
      auto wf = wave::to_wavefront(grid, layout);
      const sz::LinearQuantizer q(c.header.eb_absolute, 16);
      const auto kr = wave::wave_pqd_2d(wf, layout, q);

      ByteWriter vw;
      vw.floats(kr.verbatim);
      const auto verbatim_gz = deflate::gzip_compress(vw.data());
      const auto trunc =
          sz::truncation_encode(kr.verbatim, c.header.eb_absolute);
      const auto trunc_gz = deflate::gzip_compress(trunc);

      std::printf("%-12s %-14s %10zu %12zu %12zu %8.2fx\n",
                  std::string(data::persona_name(p)).c_str(),
                  f.name.c_str(), kr.verbatim.size(), verbatim_gz.size(),
                  trunc_gz.size(),
                  static_cast<double>(verbatim_gz.size()) /
                      static_cast<double>(trunc_gz.size()));
    }
  }
  std::printf("\nverbatim costs ~1.3-4x more bytes on the unpredictable "
              "stream but removes the\nbit-analysis engine from the "
              "datapath; since >99%% of points quantize\n(Figure 1 bench), "
              "the end-to-end ratio cost is small — the paper's trade.\n");
  return 0;
}
