// Table 8: PSNR (dB) at the 1e-3 value-range-relative bound for GhostSZ,
// waveSZ and SZ-1.4.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Table 8 — PSNR (dB) at 1e-3 VR-rel bound",
      "paper Table 8 (GhostSZ 73.9/70.6/74.5, waveSZ 65.1/66.0/66.5, "
      "SZ-1.4 64.9/65.0/65.2)");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %10s %10s %10s\n", "dataset", "GhostSZ", "waveSZ",
              "SZ-1.4");
  std::vector<std::pair<std::string, bench::PersonaSummary>> dump;
  for (auto p : data::all_personas()) {
    auto s = bench::sweep_persona(p, opts, /*want_psnr=*/true);
    std::printf("%-12s %10.1f %10.1f %10.1f\n",
                std::string(data::persona_name(p)).c_str(),
                s.avg(&bench::FieldRow::psnr_ghost),
                s.avg(&bench::FieldRow::psnr_wave),
                s.avg(&bench::FieldRow::psnr_sz));
    dump.emplace_back(std::string(data::persona_name(p)), std::move(s));
  }
  bench::write_rows_json(opts, "table8_psnr", dump);
  std::printf("\nshape checks: all variants clear the bound (PSNR ~60+ dB); "
              "GhostSZ trends\nhighest because its exact plateau hits and "
              "verbatim resyncs concentrate the\nerror distribution "
              "(paper §4.2, Fig. 9); waveSZ ~= SZ-1.4.\n");
  return 0;
}
