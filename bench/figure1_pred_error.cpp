// Figure 1: distribution of prediction errors on CESM-ATM/CLDLOW for
//   LP-SZ-1.4    (2D Lorenzo over decompressed values)
//   CF-SZ-1.0    (Order-{0,1,2} curve fitting over decompressed values)
//   CF-GhostSZ   (curve fitting over *predicted* values, Algorithm 1 line 9)
// plus the §3.2 claim that 16-bit quantization bins cover > 99% of errors.
#include <vector>

#include "common.hpp"
#include "telemetry/fixed_histogram.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"

namespace wavesz {
namespace {

/// Prediction errors of 2D Lorenzo with decompressed-value history.
std::vector<float> lorenzo_errors(const std::vector<float>& grid,
                                  std::size_t d0, std::size_t d1,
                                  const sz::LinearQuantizer& q) {
  std::vector<float> rec(grid);
  std::vector<float> errors;
  for (std::size_t x = 1; x < d0; ++x) {
    for (std::size_t y = 1; y < d1; ++y) {
      const std::size_t i = x * d1 + y;
      const double pred = sz::lorenzo2d(rec[i - d1 - 1], rec[i - d1],
                                        rec[i - 1]);
      errors.push_back(static_cast<float>(grid[i] - pred));
      const auto r = q.quantize(pred, grid[i]);
      if (r.code != 0) rec[i] = r.reconstructed;
    }
  }
  return errors;
}

/// Curve-fitting errors; `corrected` selects decompressed-value history
/// (CF-SZ-1.0) vs raw-prediction history (CF-GhostSZ).
std::vector<float> curvefit_errors(const std::vector<float>& grid,
                                   std::size_t d0, std::size_t d1,
                                   const sz::LinearQuantizer& q,
                                   bool corrected) {
  std::vector<float> errors;
  for (std::size_t x = 0; x < d0; ++x) {
    double p1 = 0, p2 = 0, p3 = 0;
    int filled = 0;
    for (std::size_t y = 0; y < d1; ++y) {
      const double orig = grid[x * d1 + y];
      double history_value = orig;  // row seed: verbatim
      if (filled > 0) {
        const auto fit = sz::curvefit_best(orig, p1, p2, p3, filled);
        errors.push_back(static_cast<float>(orig - fit.prediction));
        const auto r = q.quantize(fit.prediction, orig);
        if (r.code != 0) {
          history_value = corrected ? static_cast<double>(r.reconstructed)
                                    : fit.prediction;
        }
      }
      p3 = p2;
      p2 = p1;
      p1 = history_value;
      if (filled < 3) ++filled;
    }
  }
  return errors;
}

void report(const char* name, const std::vector<float>& errors,
            double range) {
  telemetry::FixedBinHistogram h(-0.02 * range, 0.02 * range, 21);
  for (float e : errors) h.add(e);
  double mean_abs = 0;
  for (float e : errors) mean_abs += std::fabs(static_cast<double>(e));
  mean_abs /= static_cast<double>(errors.size());
  std::printf("\n--- %s  (mean |err| = %.3g, %.2f%% within +-2%% of range)\n",
              name, mean_abs, 100.0 * h.fraction_within(0.02 * range));
  std::printf("%s", h.ascii(48).c_str());
}

}  // namespace
}  // namespace wavesz

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header("Figure 1 — prediction-error distributions on CLDLOW",
                      "paper Fig. 1 (LP-SZ-1.4 sharpest, CF-GhostSZ widest)");
  bench::print_scale_note(opts);

  const auto f = data::field(data::Persona::CesmAtm, "CLDLOW",
                             opts.scale_for(data::Persona::CesmAtm));
  const auto grid = f.materialize();
  const double range = metrics::value_range(grid).span();
  const double eb = 1e-3 * range;
  const sz::LinearQuantizer q16(eb, 16);
  const sz::LinearQuantizer q14(eb, 14);

  const auto lp = lorenzo_errors(grid, f.dims[0], f.dims[1], q16);
  const auto cf10 = curvefit_errors(grid, f.dims[0], f.dims[1], q16, true);
  const auto cfg = curvefit_errors(grid, f.dims[0], f.dims[1], q14, false);

  report("LP-SZ-1.4 (Lorenzo, decompressed history)", lp, range);
  report("CF-SZ-1.0 (curve fit, decompressed history)", cf10, range);
  report("CF-GhostSZ (curve fit, predicted history)", cfg, range);

  // §3.2: 16-bit linear-scaling quantization covers > 99% of the Lorenzo
  // prediction errors, which justifies waveSZ's verbatim border shortcut.
  std::size_t covered = 0;
  for (float e : lp) {
    if (std::fabs(static_cast<double>(e)) / eb + 1 <
        static_cast<double>(q16.capacity() - 1)) {
      ++covered;
    }
  }
  std::printf("\n16-bit bins cover %.3f%% of LP-SZ-1.4 prediction errors "
              "(paper claims > 99%%)\n",
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(lp.size()));
  return 0;
}
