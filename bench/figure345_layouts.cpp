// Figures 3, 4, 5: memory layouts and L1-dependency structure of original
// SZ (raster), GhostSZ (row-decorrelated) and waveSZ (wavefront) on the
// paper's 6 x 10 demonstration grid — rendered textually and verified
// programmatically (all points in one wavefront column are mutually
// dependency-free).
#include <cstdio>

#include "core/wavefront.hpp"

int main() {
  using namespace wavesz;
  constexpr std::size_t d0 = 6, d1 = 10;
  std::printf(
      "\n================================================================\n"
      "Figures 3/4/5 — memory layouts and L1 dependencies (6 x 10 grid)\n"
      "reproduces: paper Figs. 3a/3b, 4a/4b, 5a/5b\n"
      "================================================================\n");

  std::printf("\nFig. 3b — original SZ: L1 distance from pivot (0,0); each "
              "point depends on\nneighbours at L1-1 and L1-2, but raster "
              "order walks against the wavefront:\n");
  for (std::size_t x = 0; x < d0; ++x) {
    std::printf("  ");
    for (std::size_t y = 0; y < d1; ++y) {
      std::printf("%3zu", x + y);
    }
    std::printf("\n");
  }

  std::printf("\nFig. 4b — GhostSZ: per-row pivots (*, 0); points in the "
              "same column share the\nsame distance, at the price of "
              "discarding vertical correlation:\n");
  for (std::size_t x = 0; x < d0; ++x) {
    std::printf("  ");
    for (std::size_t y = 0; y < d1; ++y) {
      std::printf("%3zu", y);
    }
    std::printf("\n");
  }

  const wave::WavefrontLayout layout(d0, d1);
  std::printf("\nFig. 5a — waveSZ wavefront storage: cell (x,y) shown at its "
              "column h = x+y;\ncolumns are contiguous in memory:\n");
  for (std::size_t x = 0; x < d0; ++x) {
    std::printf("  ");
    for (std::size_t h = 0; h < layout.column_count(); ++h) {
      if (x >= layout.column_first_row(h) &&
          x < layout.column_first_row(h) + layout.column_length(h) &&
          h >= x && h - x < d1) {
        std::printf(" %zu,%zu", x, h - x);
      } else {
        std::printf("    ");
      }
    }
    std::printf("\n");
  }

  std::printf("\nverification: every wavefront column is dependency-free "
              "(same Manhattan\ndistance) and Lorenzo dependencies only reach "
              "columns h-1 / h-2:\n");
  bool ok = true;
  for (std::size_t h = 0; h < layout.column_count(); ++h) {
    for (std::size_t k = 0; k < layout.column_length(h); ++k) {
      const auto [x, y] = layout.point_at(layout.column_start(h) + k);
      if (x + y != h) ok = false;
      if (x > 0 && y > 0) {
        if ((x - 1) + y != h - 1 || x + (y - 1) != h - 1 ||
            (x - 1) + (y - 1) != h - 2) {
          ok = false;
        }
      }
    }
  }
  std::printf("  %s\n", ok ? "PASS — columns are parallel-safe (pII = 1)"
                           : "FAIL");
  std::printf("\ncolumn lengths (head 1..%zu, body %zu, tail ..1): ", d0,
              d0);
  for (std::size_t h = 0; h < layout.column_count(); ++h) {
    std::printf("%zu ", layout.column_length(h));
  }
  std::printf("\n");
  return ok ? 0 : 1;
}
