// Future work (paper §6): customized Huffman encoding on the FPGA.
// Combines the measured H*G* ratio gain (Table 7's demonstration rows) with
// the modeled on-chip Huffman stage to project what the full design would
// deliver, and reports its BRAM feasibility next to the gzip core.
#include "common.hpp"
#include "fpga/huffman_model.hpp"
#include "fpga/model.hpp"
#include "fpga/resources.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Future work — on-chip customized Huffman (H*) for waveSZ",
      "paper §6 ('we plan to implement the FPGA version for the customized "
      "Huffman encoding')");
  bench::print_scale_note(opts);

  const auto stage = fpga::huffman_stage();
  std::printf("\nmodeled H* stage: %.0f Msym/s sustained (%d encoders, "
              "efficiency %.2f),\n%d BRAM_18K per encoder (code table + "
              "histogram)\n",
              stage.symbols_per_second / 1e6,
              fpga::HuffmanEncoderConfig{}.encoders, stage.efficiency,
              fpga::huffman_table_bram());

  std::printf("\n%-12s %13s %13s %9s | %11s %11s\n", "dataset",
              "waveSZ G*", "waveSZ+H*", "bound by", "ratio G*",
              "ratio H*G*");
  for (auto p : data::all_personas()) {
    const Dims native = data::persona_dims(p, 1);
    const auto now = fpga::wave_throughput(native, fpga::kWaveSzLanes);
    const auto fut = fpga::future_wave_throughput(native);
    const auto sweep = bench::sweep_persona(p, opts, /*want_psnr=*/false);
    std::printf("%-12s %10.0f MB/s %7.0f MB/s %9s | %11.1f %11.1f\n",
                std::string(data::persona_name(p)).c_str(),
                now.effective_mbps, fut.effective_mbps,
                fut.huffman_bound ? "Huffman" : "PQD",
                sweep.avg(&bench::FieldRow::ratio_wave_g),
                sweep.avg(&bench::FieldRow::ratio_wave_hg));
  }

  const fpga::DeviceCapacity dev;
  const auto wave = fpga::wave_design(fpga::kWaveSzLanes);
  const auto gzip = fpga::gzip_core();
  const auto fut = fpga::future_wave_throughput(
      data::persona_dims(data::Persona::CesmAtm, 1));
  const int total_bram =
      wave.bram_18k + gzip.bram_18k + fut.added_resources.bram_18k;
  std::printf("\nBRAM feasibility on the ZC706: PQD %d + gzip %d + H* %d "
              "= %d of %d (%.0f%%)\n",
              wave.bram_18k, gzip.bram_18k, fut.added_resources.bram_18k,
              total_bram, dev.bram_18k,
              100.0 * total_bram / dev.bram_18k);
  std::printf("conclusion: the H* stage keeps line rate (1 symbol/cycle per "
              "lane) and fits,\nbut triples the non-gzip BRAM budget — "
              "consistent with the paper deferring it.\n");
  return 0;
}
