// Ablation: the base-2 co-optimization (§3.3). Three effects:
//   1. ratio — tightening the bound to a power of two compresses slightly
//      harder (smaller eb) at equal correctness;
//   2. CPU kernel speed — exponent-only quantization vs FP division;
//   3. FPGA datapath — Delta shrinks 152 -> 117 cycles and the DSP
//      divider/multiplier disappear (throughput effect is geometry
//      dependent: it only shows when Lambda < Delta).
#include <vector>

#include "common.hpp"
#include "fpga/model.hpp"
#include "fpga/resources.hpp"
#include "sz/quantizer.hpp"
#include "util/float_bits.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header("Ablation — base-10 vs base-2 quantization",
                      "paper §3.3 (Table 3 motivation, Table 6 DSP column)");
  bench::print_scale_note(opts);

  // 1. Ratio effect on the CESM persona.
  std::printf("\n[1] compression ratio, waveSZ G*:\n");
  std::printf("%-12s %12s %12s\n", "dataset", "base-10", "base-2");
  for (auto p : data::all_personas()) {
    double sum10 = 0, sum2 = 0;
    std::size_t n = 0;
    for (const auto& f : data::fields(p, opts.scale_for(p))) {
      const auto grid = f.materialize();
      const double raw = static_cast<double>(grid.size() * sizeof(float));
      auto cfg = wave::default_config();
      cfg.base = sz::EbBase::Ten;
      sum10 += raw / static_cast<double>(
                         wave::compress(grid, f.dims, cfg).bytes.size());
      cfg.base = sz::EbBase::Two;
      sum2 += raw / static_cast<double>(
                        wave::compress(grid, f.dims, cfg).bytes.size());
      ++n;
    }
    std::printf("%-12s %12.1f %12.1f\n",
                std::string(data::persona_name(p)).c_str(),
                sum10 / static_cast<double>(n), sum2 / static_cast<double>(n));
  }

  // 2. CPU kernel speed: quantize a long stream both ways.
  const std::size_t n = 4'000'000;
  std::vector<float> preds(n), origs(n);
  for (std::size_t i = 0; i < n; ++i) {
    preds[i] = static_cast<float>(i % 97) * 0.125f;
    origs[i] = preds[i] + static_cast<float>((i * 31) % 13) * 0.01f;
  }
  const int e = pow2_tighten_exp(1e-3);
  const sz::LinearQuantizer lin(std::ldexp(1.0, e), 16);
  const sz::Base2Quantizer b2(e, 16);
  std::uint64_t acc = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < n; ++i) {
    acc += lin.quantize(preds[i], origs[i]).code;
  }
  const double t_lin = sw.seconds();
  sw.reset();
  for (std::size_t i = 0; i < n; ++i) {
    acc += b2.quantize(preds[i], origs[i]).code;
  }
  const double t_b2 = sw.seconds();
  std::printf("\n[2] CPU quantizer kernel (%zu points, checksum %llu):\n"
              "    division path  %8.1f Mpts/s\n"
              "    exponent path  %8.1f Mpts/s  (%.2fx)\n",
              n, static_cast<unsigned long long>(acc),
              static_cast<double>(n) / 1e6 / t_lin,
              static_cast<double>(n) / 1e6 / t_b2, t_lin / t_b2);

  // 3. FPGA datapath effect.
  std::printf("\n[3] FPGA datapath (model):\n");
  std::printf("    Delta: base-10 %d cycles -> base-2 %d cycles\n",
              fpga::pqd_depth_base10(), fpga::pqd_depth_base2());
  const auto lane10 = fpga::wave_pqd_lane_base10();
  const auto lane2 = fpga::wave_pqd_lane_base2();
  std::printf("    per-lane DSP48E: %d -> %d; LUT: %d -> %d\n",
              lane10.dsp48e, lane2.dsp48e, lane10.lut, lane2.lut);
  for (auto p : data::all_personas()) {
    const Dims native = data::persona_dims(p, 1);
    const auto t10 =
        fpga::wave_throughput(native, fpga::kWaveSzLanes, sz::EbBase::Ten);
    const auto t2 =
        fpga::wave_throughput(native, fpga::kWaveSzLanes, sz::EbBase::Two);
    std::printf("    %-12s %7.0f -> %7.0f MB/s (%.2fx)\n",
                std::string(data::persona_name(p)).c_str(),
                t10.effective_mbps, t2.effective_mbps,
                t2.effective_mbps / t10.effective_mbps);
  }
  std::printf("\nshape check: Hurricane (Lambda=99 < Delta) gains the most "
              "from the shorter\ndatapath; CESM/NYX bodies already run at "
              "pII=1 either way.\n");
  return 0;
}
