// Table 1: average compression ratio of GhostSZ vs SZ-1.4 on the three
// datasets, 1e-3 value-range-relative bound, gzip back end.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Table 1 — average compression ratio, GhostSZ vs SZ-1.4",
      "paper Table 1 (CESM 7.9/31.2, Hurricane 6.2/21.4, NYX 6.6/33.8)");
  bench::print_scale_note(opts);

  std::printf("\n%-12s %10s %10s %10s  %s\n", "dataset", "GhostSZ", "SZ-1.4",
              "SZ/Ghost", "paper SZ/Ghost");
  const double paper_ratio[3] = {31.2 / 7.9, 21.4 / 6.2, 33.8 / 6.6};
  int i = 0;
  std::vector<std::pair<std::string, bench::PersonaSummary>> dump;
  for (auto p : data::all_personas()) {
    auto s = bench::sweep_persona(p, opts, /*want_psnr=*/false);
    const double ghost = s.avg(&bench::FieldRow::ratio_ghost);
    const double sz = s.avg(&bench::FieldRow::ratio_sz);
    std::printf("%-12s %10.1f %10.1f %10.2f  %14.2f\n",
                std::string(data::persona_name(p)).c_str(), ghost, sz,
                sz / ghost, paper_ratio[i++]);
    dump.emplace_back(std::string(data::persona_name(p)), std::move(s));
  }
  std::printf("\nshape check: SZ-1.4 must lead GhostSZ on every dataset "
              "(paper: 2.7x - 5.1x).\n");
  bench::write_rows_json(opts, "table1_ratio_baseline", dump);
  return 0;
}
