// Table 5: compression throughput (MB/s) — waveSZ and GhostSZ from the
// calibrated FPGA pipeline model at paper-native dimensions, SZ-1.4
// measured on this machine's CPU (single core, as in the paper).
#include "common.hpp"
#include "fpga/model.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Table 5 — compression throughput (MB/s)",
      "paper Table 5 (waveSZ 995/838/986, GhostSZ 185/144/156, "
      "SZ-1.4 114/122/125)");
  std::printf("FPGA columns: cycle-level model at paper-native dims "
              "(ZC706, 156.25 MHz,\n3 PQD lanes, interface efficiency %.2f "
              "— see EXPERIMENTS.md calibration).\nCPU column: measured "
              "single-core on this machine.\n",
              fpga::kInterfaceEfficiency);
  bench::print_scale_note(opts);

  const double paper[3][3] = {
      {995, 185, 114}, {838, 144, 122}, {986, 156, 125}};

  std::printf("\n%-12s %12s %12s %12s   %-22s %s\n", "dataset",
              "waveSZ", "GhostSZ", "SZ-1.4(cpu)", "speedups (w/cpu, w/g)",
              "paper (w, g, cpu)");
  int i = 0;
  double sum_wg = 0, sum_wc = 0;
  std::vector<std::pair<std::string, bench::PersonaSummary>> dump;
  for (auto p : data::all_personas()) {
    const Dims native = data::persona_dims(p, 1);
    const auto wave_t = fpga::wave_throughput(native, fpga::kWaveSzLanes);
    const auto ghost_t = fpga::ghost_throughput(native);

    // Measure SZ-1.4 on a reduced grid (the kernel is O(n); MB/s is
    // scale-invariant up to cache effects).
    auto sweep = bench::sweep_persona(p, opts, /*want_psnr=*/false);
    const double cpu = sweep.avg(&bench::FieldRow::mbps_sz);
    const double ipc = sweep.avg(&bench::FieldRow::ipc_sz);
    const double mpki = sweep.avg(&bench::FieldRow::cache_mpki_sz);
    dump.emplace_back(std::string(data::persona_name(p)), std::move(sweep));

    const double w_over_c = wave_t.effective_mbps / cpu;
    const double w_over_g = wave_t.effective_mbps / ghost_t.effective_mbps;
    sum_wc += w_over_c;
    sum_wg += w_over_g;
    std::printf("%-12s %12.0f %12.0f %12.0f   %8.1fx %8.1fx    "
                "(%0.f, %0.f, %0.f)",
                std::string(data::persona_name(p)).c_str(),
                wave_t.effective_mbps, ghost_t.effective_mbps, cpu, w_over_c,
                w_over_g, paper[i][0], paper[i][1], paper[i][2]);
    if (opts.perf && ipc > 0) {
      std::printf("   IPC %.2f, cm/kI %.2f", ipc, mpki);
    }
    std::printf("\n");
    ++i;
  }
  std::printf("\naverage waveSZ speedup: %.1fx over CPU SZ-1.4 (paper "
              "6.9-8.7x), %.1fx over GhostSZ (paper 5.8x)\n",
              sum_wc / 3.0, sum_wg / 3.0);
  std::printf("note: the CPU column depends on this machine; the paper used "
              "a Xeon Gold 6148.\n");
  bench::write_rows_json(opts, "table5_throughput", dump);
  return 0;
}
