// Figure 8: parallel compression throughput — SZ-1.4 (omp) scaling model
// anchored to this machine's measured single-core speed, waveSZ and GhostSZ
// lane scaling from the FPGA model, with the PCIe gen2 x4 (ZC706) and
// gen3 x4 rooflines. 3D datasets only, as in the paper.
#include "common.hpp"
#include "fpga/model.hpp"
#include "sz/omp.hpp"

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 8 — parallel compression throughput (MB/s)",
      "paper Fig. 8 (Hurricane & NYX; SZ-1.4 omp sublinear, FPGA linear "
      "until PCIe)");
  std::printf("SZ-1.4 (omp): measured single-core speed x the calibrated "
              "efficiency curve\n(59%% at 32 cores, as the paper reports); "
              "this machine has too few cores to\nmeasure 32-way scaling "
              "directly. FPGA series: cycle model, n x 3 PQD lanes.\n");
  bench::print_scale_note(opts);

  const fpga::PcieConfig pcie;
  for (auto p : {data::Persona::Hurricane, data::Persona::Nyx}) {
    const Dims native = data::persona_dims(p, 1);
    const auto sweep = bench::sweep_persona(p, opts, /*want_psnr=*/false);
    const double cpu1 = sweep.avg(&bench::FieldRow::mbps_sz);

    std::printf("\n--- %s (PCIe gen2 x4 roof = %.0f MB/s, gen3 x4 = %.0f "
                "MB/s)\n",
                std::string(data::persona_name(p)).c_str(),
                pcie.gen2_x4_mbps, pcie.gen3_x4_mbps);
    std::printf("%6s %14s %14s %14s\n", "n", "SZ-1.4(omp)", "waveSZ",
                "GhostSZ");
    for (int n : {1, 2, 4, 8, 16, 32}) {
      const double omp = fpga::omp_scaled_mbps(cpu1, n);
      const auto wave_t =
          fpga::wave_throughput(native, fpga::kWaveSzLanes * n);
      const auto ghost_t = fpga::ghost_throughput(native, n);
      std::printf("%6d %14.0f %14.0f %14.0f\n", n, omp,
                  wave_t.delivered_mbps, ghost_t.delivered_mbps);
    }
  }
  std::printf("\nshape checks: the omp series grows sublinearly (context "
              "switching); both FPGA\nseries scale linearly until the PCIe "
              "gen2 x4 roof caps them, exactly the\nFig. 8 structure.\n");
  return 0;
}
