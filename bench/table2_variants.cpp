// Table 2: SZ variants — functionality modules and design goals. This is a
// capability report generated from what the code in this repository
// actually implements, so it doubles as a feature-coverage audit.
#include <cstdio>

int main() {
  std::printf(
      "\n================================================================\n"
      "Table 2 — SZ variants: functionality modules (this repository)\n"
      "reproduces: paper Table 2\n"
      "================================================================\n\n");
  struct Row {
    const char* feature;
    const char* module;
    const char* sz10;
    const char* sz14;
    const char* sz20;
    const char* ghost;
    const char* wave;
  };
  const Row rows[] = {
      {"platform", "-", "CPU", "CPU", "CPU", "FPGA (simulated)",
       "FPGA (simulated)"},
      {"base-10 error bound", "sz::Config{EbBase::Ten}", "x", "x", "x", "x",
       " "},
      {"base-2 bound mapping", "util/float_bits + sz::Base2Quantizer",
       " ", " ", " ", " ", "x"},
      {"logarithmic transform (PW-rel)", "sz2 log_forward/log_inverse",
       " ", " ", "x", " ", " "},
      {"blocking / partition", "sz2 blocks, omp slabs, fpga lane chunks",
       " ", "x", "x", "x", "x"},
      {"memory-layout transform", "core/wavefront", " ", " ", " ", " ",
       "x"},
      {"Order-{0,1,2} curve fit", "sz/predictor curvefit_*", "x", " ", " ",
       "x", " "},
      {"Lorenzo predictor (1/2-layer)", "sz/predictor lorenzo*", " ", "x",
       "x", " ", "x"},
      {"linear regression predictor", "sz2 fit_plane + CoeffQuant", " ",
       " ", "x", " ", " "},
      {"linear-scaling quantization", "sz::LinearQuantizer (Algorithm 1)",
       " ", "x", "x", "x (14-bit)", "x"},
      {"decompression writeback", "Pqd reconstructed / wave_pqd_2d in-place",
       "x", "x", "x", " ", "x"},
      {"prediction writeback", "ghost_pqd (Algorithm 1 line 9)", " ", " ",
       " ", "x", " "},
      {"overbound check", "LinearQuantizer::quantize line 10", "x", "x",
       "x", "x", "x"},
      {"truncation (unpredictable)", "sz/unpredictable (f32 + f64)", "x",
       "x", "x", " ", " "},
      {"verbatim pass-through", "wave verbatim / ghost seeds", " ", " ",
       " ", "x", "x"},
      {"customized Huffman (H*)", "sz/huffman_codec", " ", "x", "x", " ",
       "optional"},
      {"gzip (G*)", "deflate/ (from-scratch RFC 1951/1952)", "x", "x", "x",
       "x", "x"},
      {"float64 data", "sz/wave compress(double) overloads", " ", "x", " ",
       " ", "x"},
      {"OpenMP", "sz/omp", " ", "x", " ", " ", " "},
      {"explicit pipelining (pII=1)", "fpga/schedule simulate_wavefront",
       " ", " ", " ", "x", "x"},
      {"line buffer", "fpga/resources (BRAM per lane)", " ", " ", " ", "x",
       "x"},
  };
  std::printf("%-30s %-42s %-7s %-7s %-7s %-16s %-16s\n", "functionality",
              "module in this repo", "SZ-1.0", "SZ-1.4", "SZ-2.0",
              "GhostSZ", "waveSZ");
  for (const auto& r : rows) {
    std::printf("%-30s %-42s %-7s %-7s %-7s %-16s %-16s\n", r.feature,
                r.module, r.sz10, r.sz14, r.sz20, r.ghost, r.wave);
  }
  std::printf("\nx = implemented & exercised by tests; see DESIGN.md for the "
              "per-experiment index.\n");
  return 0;
}
