// Wavefront-parallel PQD sweep: threads x shape x dtype on the Lorenzo
// prediction-quantization hot path (compress kernel) and the reconstruction
// sweep (decompress kernel), serial raster reference vs the tiled
// anti-diagonal schedule of sz/wavefront_pqd.hpp. Verifies bit-exact parity
// on every configuration and emits machine-readable results to
// BENCH_pqd.json in the working directory (schema in EXPERIMENTS.md).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "sz/wavefront_pqd.hpp"
#include "util/simd.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace wavesz;

int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

constexpr int kReps = 5;  // best-of to shed scheduler noise

struct KernelTimes {
  double pqd_s = 0;
  double rec_s = 0;
  bool exact = true;
};

template <typename T>
std::vector<T> make_field(const Dims& dims) {
  std::vector<T> out(dims.count());
  const std::size_t s1 = dims.rank >= 2 ? dims[1] : 1;
  const std::size_t s2 = dims.rank >= 3 ? dims[2] : 1;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto i2 = static_cast<double>(i % s2);
    const auto i1 = static_cast<double>((i / s2) % s1);
    const auto i0 = static_cast<double>(i / (s1 * s2));
    out[i] = static_cast<T>(std::sin(0.013 * i0) + std::cos(0.021 * i1) +
                            std::sin(0.017 * i2) +
                            0.3 * std::sin(0.41 * (i0 + i1 + i2)));
  }
  return out;
}

template <typename T>
KernelTimes run_one(std::span<const T> data, const Dims& dims,
                    const sz::LinearQuantizer& q, int threads,
                    const std::vector<std::uint16_t>& ref_codes,
                    const std::vector<T>& ref_rec) {
  KernelTimes kt;
  Stopwatch sw;
  typename sz::detail::FpOps<T>::PqdType pqd;
  kt.pqd_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    sw.reset();
    pqd = threads == 1
              ? sz::detail::lorenzo_pqd_t<T>(data, dims, q)
              : sz::detail::lorenzo_pqd_wavefront_t<T>(
                    data, dims, q, sz::PredictorKind::Lorenzo1Layer, threads);
    kt.pqd_s = std::min(kt.pqd_s, sw.seconds());
  }
  kt.exact = pqd.codes == ref_codes &&
             std::memcmp(pqd.reconstructed.data(), ref_rec.data(),
                         ref_rec.size() * sizeof(T)) == 0;

  // The reconstruction kernels expect decompressor-visible (truncated)
  // unpredictable values, exactly what the container's decode path feeds
  // them; the PQD output carries the raw originals.
  std::vector<T> unpred = pqd.unpredictable;
  for (auto& v : unpred) {
    v = sz::detail::FpOps<T>::roundtrip(v, q.precision());
  }
  std::vector<T> rec;
  kt.rec_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    sw.reset();
    rec = threads == 1
              ? sz::detail::lorenzo_reconstruct_t<T>(pqd.codes, unpred, dims,
                                                     q)
              : sz::detail::lorenzo_reconstruct_wavefront_t<T>(
                    pqd.codes, unpred, dims, q,
                    sz::PredictorKind::Lorenzo1Layer, threads);
    kt.rec_s = std::min(kt.rec_s, sw.seconds());
  }
  kt.exact = kt.exact && std::memcmp(rec.data(), ref_rec.data(),
                                     ref_rec.size() * sizeof(T)) == 0;
  return kt;
}

template <typename T>
bool sweep_shape(const Dims& dims, const char* dtype, std::FILE* json,
                 bool* first_row) {
  const auto data = make_field<T>(dims);
  const sz::LinearQuantizer q(1e-3 * 2.6, 16);  // rel 1e-3 of the range
  const double mb = static_cast<double>(dims.count() * sizeof(T)) / 1e6;

  const auto ref = sz::detail::lorenzo_pqd_t<T>(
      std::span<const T>(data), dims, q);
  std::printf("%s %s (%.1f MB, %zu unpredictable)\n", dims.str().c_str(),
              dtype, mb, ref.unpredictable.size());

  bool all_ok = true;
  double serial_pqd = 0, serial_rec = 0;
  for (int threads : {1, 2, 4, 8}) {
    const auto kt = run_one<T>(std::span<const T>(data), dims, q, threads,
                               ref.codes, ref.reconstructed);
    if (threads == 1) {
      serial_pqd = kt.pqd_s;
      serial_rec = kt.rec_s;
    }
    all_ok = all_ok && kt.exact;
    std::printf(
        "  threads=%d  pqd %7.1f MB/s (speedup %4.2fx)  "
        "reconstruct %7.1f MB/s (speedup %4.2fx)  parity %s\n",
        threads, mb / kt.pqd_s, serial_pqd / kt.pqd_s, mb / kt.rec_s,
        serial_rec / kt.rec_s, kt.exact ? "ok" : "FAIL");
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s    {\"shape\": \"%s\", \"dtype\": \"%s\", \"threads\": %d, "
          "\"pqd_mbps\": %.2f, \"pqd_speedup_vs_serial\": %.3f, "
          "\"reconstruct_mbps\": %.2f, \"reconstruct_speedup_vs_serial\": "
          "%.3f, \"bit_exact\": %s}",
          *first_row ? "" : ",\n", dims.str().c_str(), dtype, threads,
          mb / kt.pqd_s, serial_pqd / kt.pqd_s, mb / kt.rec_s,
          serial_rec / kt.rec_s, kt.exact ? "true" : "false");
      *first_row = false;
    }
  }
  return all_ok;
}

// Levels to sweep: scalar always, wider ISAs only where the CPU has them
// (set_level clamps, so asking higher would silently re-run the widest).
std::vector<simd::Level> sweep_levels() {
  std::vector<simd::Level> out{simd::Level::Scalar};
  if (simd::detected() >= simd::Level::Sse2) out.push_back(simd::Level::Sse2);
  if (simd::detected() >= simd::Level::Avx2) out.push_back(simd::Level::Avx2);
  return out;
}

// Per-kernel simd dispatch sweep on the serial entry points (the production
// path: lorenzo_pqd_t / lorenzo_reconstruct_t pick the vectorized tile
// schedule from simd::active()), plus the standalone histogram kernel the
// Huffman encoder leans on. Emits the "simd_levels" rows of BENCH_pqd.json.
template <typename T>
bool sweep_simd_shape(const Dims& dims, const char* dtype, std::FILE* json,
                      bool* first_row) {
  const auto data = make_field<T>(dims);
  const sz::LinearQuantizer q(1e-3 * 2.6, 16);
  const double mb = static_cast<double>(dims.count() * sizeof(T)) / 1e6;
  const std::span<const T> span(data);

  simd::set_level(simd::Level::Scalar);
  const auto ref = sz::detail::lorenzo_pqd_t<T>(span, dims, q);
  std::vector<T> unpred = ref.unpredictable;
  for (auto& v : unpred) {
    v = sz::detail::FpOps<T>::roundtrip(v, q.precision());
  }
  std::vector<std::uint64_t> ref_freq(1u << 16, 0);
  simd::histogram_u16(ref.codes.data(), ref.codes.size(), ref_freq.data());

  std::printf("%s %s (%.1f MB) — simd dispatch sweep (serial kernels)\n",
              dims.str().c_str(), dtype, mb);

  bool all_ok = true;
  double scalar_pqd = 0, scalar_rec = 0, scalar_hist = 0;
  Stopwatch sw;
  for (const simd::Level level : sweep_levels()) {
    simd::set_level(level);
    typename sz::detail::FpOps<T>::PqdType pqd;
    double pqd_s = 1e30;
    for (int r = 0; r < kReps; ++r) {
      sw.reset();
      pqd = sz::detail::lorenzo_pqd_t<T>(span, dims, q);
      pqd_s = std::min(pqd_s, sw.seconds());
    }
    std::vector<T> rec;
    double rec_s = 1e30;
    for (int r = 0; r < kReps; ++r) {
      sw.reset();
      rec = sz::detail::lorenzo_reconstruct_t<T>(pqd.codes, unpred, dims, q);
      rec_s = std::min(rec_s, sw.seconds());
    }
    double hist_s = 1e30;
    std::vector<std::uint64_t> freq(1u << 16);
    for (int r = 0; r < kReps; ++r) {
      std::fill(freq.begin(), freq.end(), 0);
      sw.reset();
      simd::histogram_u16(pqd.codes.data(), pqd.codes.size(), freq.data());
      hist_s = std::min(hist_s, sw.seconds());
    }
    const bool exact =
        pqd.codes == ref.codes &&
        std::memcmp(pqd.reconstructed.data(), ref.reconstructed.data(),
                    ref.reconstructed.size() * sizeof(T)) == 0 &&
        std::memcmp(rec.data(), ref.reconstructed.data(),
                    ref.reconstructed.size() * sizeof(T)) == 0 &&
        freq == ref_freq;
    all_ok = all_ok && exact;
    if (level == simd::Level::Scalar) {
      scalar_pqd = pqd_s;
      scalar_rec = rec_s;
      scalar_hist = hist_s;
    }
    std::printf(
        "  level=%-6s pqd %7.1f MB/s (%.2fx)  reconstruct %7.1f MB/s "
        "(%.2fx)  histogram %7.1f MB/s (%.2fx)  parity %s\n",
        simd::level_name(level), mb / pqd_s, scalar_pqd / pqd_s, mb / rec_s,
        scalar_rec / rec_s,
        static_cast<double>(pqd.codes.size() * 2) / 1e6 / hist_s,
        scalar_hist / hist_s, exact ? "ok" : "FAIL");
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s    {\"shape\": \"%s\", \"dtype\": \"%s\", \"level\": \"%s\", "
          "\"pqd_mbps\": %.2f, \"pqd_speedup_vs_scalar\": %.3f, "
          "\"reconstruct_mbps\": %.2f, "
          "\"reconstruct_speedup_vs_scalar\": %.3f, "
          "\"histogram_mbps\": %.2f, \"histogram_speedup_vs_scalar\": %.3f, "
          "\"bit_exact\": %s}",
          *first_row ? "" : ",\n", dims.str().c_str(), dtype,
          simd::level_name(level), mb / pqd_s, scalar_pqd / pqd_s, mb / rec_s,
          scalar_rec / rec_s,
          static_cast<double>(pqd.codes.size() * 2) / 1e6 / hist_s,
          scalar_hist / hist_s, exact ? "true" : "false");
      *first_row = false;
    }
  }
  simd::set_level(simd::detected());
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::Options::parse(argc, argv);
  bench::print_header(
      "Wavefront-parallel PQD — threads x shape x dtype sweep",
      "the paper's anti-diagonal schedule (SS3.2) on the CPU hot path");
  std::printf("hardware threads available: %d\n", hardware_threads());
  std::printf("simd: detected=%s active=%s\n\n",
              simd::level_name(simd::detected()),
              simd::level_name(simd::active()));

  // The thread rows measure raw scheduler scaling, so the small-field work
  // floor (which would silently serialize the 512x512 rows) is lifted for
  // the sweep; the production crossover it encodes is characterized in
  // EXPERIMENTS.md instead.
  const std::size_t saved_floor = sz::wavefront_min_points_per_thread();
  sz::set_wavefront_min_points_per_thread(0);

  std::FILE* json = std::fopen("BENCH_pqd.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"hardware_threads\": %d,\n"
                 "  \"simd_detected\": \"%s\",\n  \"results\": [\n",
                 hardware_threads(), simd::level_name(simd::detected()));
  }

  bool first_row = true;
  bool all_ok = true;
  all_ok &= sweep_shape<float>(Dims::d2(512, 512), "f32", json, &first_row);
  all_ok &= sweep_shape<double>(Dims::d2(512, 512), "f64", json, &first_row);
  all_ok &= sweep_shape<float>(Dims::d2(2048, 2048), "f32", json, &first_row);
  all_ok &= sweep_shape<float>(Dims::d3(64, 256, 256), "f32", json,
                               &first_row);
  all_ok &= sweep_shape<double>(Dims::d3(64, 256, 256), "f64", json,
                                &first_row);

  if (json != nullptr) {
    std::fprintf(json, "\n  ],\n  \"simd_levels\": [\n");
  }
  std::printf("\n");
  bool first_simd = true;
  all_ok &= sweep_simd_shape<float>(Dims::d2(512, 512), "f32", json,
                                    &first_simd);
  all_ok &= sweep_simd_shape<float>(Dims::d2(2048, 2048), "f32", json,
                                    &first_simd);
  all_ok &= sweep_simd_shape<double>(Dims::d2(2048, 2048), "f64", json,
                                     &first_simd);

  sz::set_wavefront_min_points_per_thread(saved_floor);

  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("\nresults written to BENCH_pqd.json\n");
  }
  std::printf("note: speedups need physical cores; this sweep reports the "
              "machine it ran on\n(hardware_threads above) rather than an "
              "assumed topology.\n");
  return all_ok ? 0 : 1;
}
