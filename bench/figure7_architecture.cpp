// Figure 7 + Table 4: the waveSZ system architecture mapped onto this
// repository's modules, and the evaluation datasets with their paper-native
// geometry as served by the synthetic persona registry.
#include <cstdio>

#include "data/datasets.hpp"
#include "fpga/calibration.hpp"
#include "fpga/model.hpp"

int main() {
  using namespace wavesz;
  std::printf(
      "\n================================================================\n"
      "Figure 7 — system architecture, mapped to this repository\n"
      "reproduces: paper Fig. 7; Table 4 below\n"
      "================================================================\n");

  std::printf(R"(
  Host CPU                         |  FPGA (simulated: src/fpga)
  ---------------------------------+----------------------------------------
  input field                      |
    -> partition / linearization   |
       (Dims::flatten2d,           |
        fpga lane chunks)          |
    -> wavefront preprocessing     |
       (wave::to_wavefront —       |
        "basically memory copy")   |
                                   |  pipelined PQD lanes (x%d, pII=1):
                                   |    Lorenzo prediction  (sz/predictor)
                                   |    linear-scaling quantization
                                   |      base-2 datapath, Delta=%d cycles
                                   |    in-place decompression writeback
                                   |      (wave::wave_pqd_2d)
                                   |  Huffman encoding + gzip
                                   |    (sz/huffman_codec, deflate/;
                                   |     on-chip H* modeled in
                                   |     fpga/huffman_model)
  compressed output <------ PCIe gen2 x4 (%.0f MB/s roof) ------
)",
              fpga::kWaveSzLanes, fpga::pqd_depth_base2(),
              fpga::PcieConfig{}.gen2_x4_mbps);

  std::printf(
      "\nTable 4 — evaluation datasets (synthetic personas, paper-native "
      "dims):\n\n%-12s %8s %8s %14s  %s\n",
      "dataset", "#fields", "type", "dimensions", "example fields");
  for (auto p : data::all_personas()) {
    const auto fs = data::fields(p, 1);
    std::string examples;
    for (std::size_t i = 0; i < 2 && i < fs.size(); ++i) {
      examples += (i ? ", " : "") + fs[i].name;
    }
    std::printf("%-12s %8zu %8s %14s  %s\n",
                std::string(data::persona_name(p)).c_str(), fs.size(),
                "float32", data::persona_dims(p, 1).str().c_str(),
                examples.c_str());
  }
  std::printf("\n(paper Table 4 lists 79/20/6 fields; the personas register "
              "representative\nsubsets with domain-matched statistics — see "
              "DESIGN.md's substitution table.)\n");
  return 0;
}
