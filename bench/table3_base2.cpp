// Table 3: binary representation of decimal error bounds — the motivation
// for the base-2 co-optimization (§3.3). Regenerated from the actual
// IEEE-754 decomposition, plus the tightened power-of-two bound waveSZ uses.
#include <cstdio>

#include "util/float_bits.hpp"

int main() {
  using namespace wavesz;
  std::printf(
      "\n================================================================\n"
      "Table 3 — binary representation of decimal error bounds\n"
      "reproduces: paper Table 3 (+ the tightened bound waveSZ substitutes)\n"
      "================================================================\n\n");
  std::printf("%-14s %-34s %s\n", "decimal base", "binary representation",
              "waveSZ tightened bound");
  const double bases[] = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7};
  for (double b : bases) {
    const auto d = decompose(b);
    const int e = pow2_tighten_exp(b);
    std::printf("%-14g (1.%s...)_2 x 2^%-4d  2^%d = %.10g\n", b,
                d.mantissa_bits.c_str(), d.exponent, e, pow2_tighten(b));
  }
  std::printf("\nEvery decimal bound has 0/1-mixed mantissa bits, so the "
              "quantization divide\nneeds a full FP divider; the tightened "
              "power-of-two bound turns it into an\nexponent add "
              "(see bench/ablation_base2 for the performance effect).\n");
  return 0;
}
