// google-benchmark microbenchmarks of the hot kernels: quantization (both
// datapaths), Lorenzo PQD, wavefront transform, customized Huffman, DEFLATE,
// truncation coding, and the telemetry enabled/disabled overhead pair.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/wavefront.hpp"
#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace wavesz;

std::vector<float> test_field(std::size_t d0, std::size_t d1) {
  data::FieldRecipe r;
  r.seed = 7;
  r.base_frequency = 0.4;
  r.noise_amplitude = 1e-4;
  return data::generate(r, Dims::d2(d0, d1));
}

void BM_QuantizeBase10(benchmark::State& state) {
  const sz::LinearQuantizer q(1e-3, 16);
  std::vector<float> vals(8192);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<float>(i % 131) * 1e-4f;
  }
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      acc += q.quantize(vals[i - 1], vals[i]).code;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8191);
}
BENCHMARK(BM_QuantizeBase10);

void BM_QuantizeBase2(benchmark::State& state) {
  const sz::Base2Quantizer q(-10, 16);
  std::vector<float> vals(8192);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<float>(i % 131) * 1e-4f;
  }
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      acc += q.quantize(vals[i - 1], vals[i]).code;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8191);
}
BENCHMARK(BM_QuantizeBase2);

void BM_LorenzoPqd2D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  const sz::LinearQuantizer q(1e-3, 16);
  for (auto _ : state) {
    auto pqd = sz::lorenzo_pqd(field, Dims::d2(n, n), q);
    benchmark::DoNotOptimize(pqd.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_LorenzoPqd2D)->Arg(64)->Arg(256);

void BM_WavefrontTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  const wave::WavefrontLayout layout(n, n);
  for (auto _ : state) {
    auto wf = wave::to_wavefront(field, layout);
    benchmark::DoNotOptimize(wf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_WavefrontTransform)->Arg(256);

void BM_WaveKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  const wave::WavefrontLayout layout(n, n);
  const auto wf0 = wave::to_wavefront(field, layout);
  const sz::LinearQuantizer q(1e-3, 16);
  for (auto _ : state) {
    auto wf = wf0;
    auto kr = wave::wave_pqd_2d(wf, layout, q);
    benchmark::DoNotOptimize(kr.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_WaveKernel)->Arg(256);

void BM_HuffmanEncode(benchmark::State& state) {
  std::mt19937 rng(3);
  std::vector<std::uint16_t> codes(1 << 16);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(32768 + static_cast<int>(rng() % 9) - 4);
  }
  for (auto _ : state) {
    auto blob = sz::huffman_encode(codes);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HuffmanEncode);

void BM_DeflateFast(benchmark::State& state) {
  std::vector<std::uint8_t> input(1 << 18);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23);
  }
  for (auto _ : state) {
    auto out = deflate::compress(input, deflate::Level::Fast);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateFast);

// Isolates the LZ77 hash-chain matcher (the memory-traffic-bound stage the
// uint32 head/prev shrink targets; run before/after to size the win).
void BM_Lz77TokenizeBest(benchmark::State& state) {
  std::vector<std::uint8_t> input(1 << 18);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23 + (i % 7 == 0));
  }
  for (auto _ : state) {
    auto tokens = deflate::tokenize(input, deflate::Level::Best);
    benchmark::DoNotOptimize(tokens.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Lz77TokenizeBest);

void BM_DeflateParallel(benchmark::State& state) {
  std::vector<std::uint8_t> input(4 << 20);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23);
  }
  const deflate::ParallelOptions opts{
      256 * 1024, static_cast<int>(state.range(0)), true};
  for (auto _ : state) {
    auto out = deflate::compress_parallel(input, deflate::Level::Fast, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_Inflate(benchmark::State& state) {
  std::vector<std::uint8_t> input(1 << 18);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23);
  }
  const auto compressed = deflate::compress(input, deflate::Level::Best);
  for (auto _ : state) {
    auto out = deflate::decompress(compressed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Inflate);

// The telemetry overhead pair: a full sz::compress with collection off
// (the default — one relaxed atomic load per stage) and with a live
// Session. EXPERIMENTS.md quotes the delta; the budget is <= 2%.
void BM_SzCompressTelemetryOff(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  for (auto _ : state) {
    auto c = sz::compress(field, Dims::d2(n, n), sz::Config{});
    benchmark::DoNotOptimize(c.bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_SzCompressTelemetryOff)->Arg(256)->Arg(512);

void BM_SzCompressTelemetryOn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  telemetry::Session session;
  for (auto _ : state) {
    auto c = sz::compress(field, Dims::d2(n, n), sz::Config{});
    benchmark::DoNotOptimize(c.bytes.data());
  }
  (void)session.stop();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_SzCompressTelemetryOn)->Arg(256)->Arg(512);

void BM_TruncationEncode(benchmark::State& state) {
  std::vector<float> values(1 << 15);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i % 977) * 0.37f - 100.0f;
  }
  for (auto _ : state) {
    auto blob = sz::truncation_encode(values, 1e-3);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_TruncationEncode);

}  // namespace

BENCHMARK_MAIN();
