// google-benchmark microbenchmarks of the hot kernels: quantization (both
// datapaths), Lorenzo PQD, wavefront transform, customized Huffman, DEFLATE,
// truncation coding, and the telemetry enabled/disabled overhead pair.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/wavefront.hpp"
#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "telemetry/telemetry.hpp"
#include "util/simd.hpp"

namespace {

using namespace wavesz;

// SIMD-level sweep plumbing: benchmarks below take the level as
// state.range and pin the dispatcher with simd::set_level for the run.
// Levels the host lacks are skipped, not failed, so the same binary
// sweeps cleanly everywhere.
constexpr simd::Level kLevels[] = {simd::Level::Scalar, simd::Level::Sse2,
                                   simd::Level::Avx2};

bool enter_level(benchmark::State& state, std::int64_t arg) {
  const simd::Level lvl = kLevels[arg];
  if (static_cast<int>(lvl) > static_cast<int>(simd::detected())) {
    state.SkipWithError("level not supported on this host");
    return false;
  }
  simd::set_level(lvl);
  state.SetLabel(simd::level_name(lvl));
  return true;
}

void leave_level() { simd::set_level(simd::detected()); }

std::vector<float> test_field(std::size_t d0, std::size_t d1) {
  data::FieldRecipe r;
  r.seed = 7;
  r.base_frequency = 0.4;
  r.noise_amplitude = 1e-4;
  return data::generate(r, Dims::d2(d0, d1));
}

void BM_QuantizeBase10(benchmark::State& state) {
  const sz::LinearQuantizer q(1e-3, 16);
  std::vector<float> vals(8192);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<float>(i % 131) * 1e-4f;
  }
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      acc += q.quantize(vals[i - 1], vals[i]).code;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8191);
}
BENCHMARK(BM_QuantizeBase10);

void BM_QuantizeBase2(benchmark::State& state) {
  const sz::Base2Quantizer q(-10, 16);
  std::vector<float> vals(8192);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<float>(i % 131) * 1e-4f;
  }
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      acc += q.quantize(vals[i - 1], vals[i]).code;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8191);
}
BENCHMARK(BM_QuantizeBase2);

void BM_LorenzoPqd2D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  const sz::LinearQuantizer q(1e-3, 16);
  for (auto _ : state) {
    auto pqd = sz::lorenzo_pqd(field, Dims::d2(n, n), q);
    benchmark::DoNotOptimize(pqd.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_LorenzoPqd2D)->Arg(64)->Arg(256);

void BM_WavefrontTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  const wave::WavefrontLayout layout(n, n);
  for (auto _ : state) {
    auto wf = wave::to_wavefront(field, layout);
    benchmark::DoNotOptimize(wf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_WavefrontTransform)->Arg(256);

void BM_WaveKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  const wave::WavefrontLayout layout(n, n);
  const auto wf0 = wave::to_wavefront(field, layout);
  const sz::LinearQuantizer q(1e-3, 16);
  for (auto _ : state) {
    auto wf = wf0;
    auto kr = wave::wave_pqd_2d(wf, layout, q);
    benchmark::DoNotOptimize(kr.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_WaveKernel)->Arg(256);

void BM_HuffmanEncode(benchmark::State& state) {
  std::mt19937 rng(3);
  std::vector<std::uint16_t> codes(1 << 16);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(32768 + static_cast<int>(rng() % 9) - 4);
  }
  for (auto _ : state) {
    auto blob = sz::huffman_encode(codes);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HuffmanEncode);

void BM_DeflateFast(benchmark::State& state) {
  std::vector<std::uint8_t> input(1 << 18);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23);
  }
  for (auto _ : state) {
    auto out = deflate::compress(input, deflate::Level::Fast);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateFast);

// Isolates the LZ77 hash-chain matcher (the memory-traffic-bound stage the
// uint32 head/prev shrink targets; run before/after to size the win).
void BM_Lz77TokenizeBest(benchmark::State& state) {
  std::vector<std::uint8_t> input(1 << 18);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23 + (i % 7 == 0));
  }
  for (auto _ : state) {
    auto tokens = deflate::tokenize(input, deflate::Level::Best);
    benchmark::DoNotOptimize(tokens.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Lz77TokenizeBest);

void BM_DeflateParallel(benchmark::State& state) {
  std::vector<std::uint8_t> input(4 << 20);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23);
  }
  const deflate::ParallelOptions opts{
      256 * 1024, static_cast<int>(state.range(0)), true};
  for (auto _ : state) {
    auto out = deflate::compress_parallel(input, deflate::Level::Fast, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_Inflate(benchmark::State& state) {
  std::vector<std::uint8_t> input(1 << 18);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 23);
  }
  const auto compressed = deflate::compress(input, deflate::Level::Best);
  for (auto _ : state) {
    auto out = deflate::decompress(compressed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Inflate);

// The telemetry overhead pair: a full sz::compress with collection off
// (the default — one relaxed atomic load per stage) and with a live
// Session, which now also records the duration/ratio histograms.
// EXPERIMENTS.md quotes the delta; the budget is <= 3%.
void BM_SzCompressTelemetryOff(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  for (auto _ : state) {
    auto c = sz::compress(field, Dims::d2(n, n), sz::Config{});
    benchmark::DoNotOptimize(c.bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_SzCompressTelemetryOff)->Arg(256)->Arg(512);

void BM_SzCompressTelemetryOn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  telemetry::Session session;
  for (auto _ : state) {
    auto c = sz::compress(field, Dims::d2(n, n), sz::Config{});
    benchmark::DoNotOptimize(c.bytes.data());
  }
  (void)session.stop();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_SzCompressTelemetryOn)->Arg(256)->Arg(512);

// As above but with hardware-counter sampling requested: adds two
// perf_event_open group reads (syscalls) per coarse stage span. Skipped
// silently where counters are unavailable — the rows then read the same as
// TelemetryOn.
void BM_SzCompressTelemetryPerf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto field = test_field(n, n);
  telemetry::Session session;
  telemetry::set_perf_enabled(true);
  for (auto _ : state) {
    auto c = sz::compress(field, Dims::d2(n, n), sz::Config{});
    benchmark::DoNotOptimize(c.bytes.data());
  }
  telemetry::set_perf_enabled(false);
  (void)session.stop();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
}
BENCHMARK(BM_SzCompressTelemetryPerf)->Arg(256)->Arg(512);

// Raw hot-path cost of one histogram recording (bucket index + relaxed
// shard increments), measured against a live Session.
void BM_HistogramRecord(benchmark::State& state) {
  telemetry::Session session;
  std::uint64_t v = 1;
  for (auto _ : state) {
    telemetry::observe(telemetry::Histo::DeflateChunkBytes, v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG walk
    benchmark::DoNotOptimize(v);
  }
  (void)session.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_TruncationEncode(benchmark::State& state) {
  std::vector<float> values(1 << 15);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i % 977) * 0.37f - 100.0f;
  }
  for (auto _ : state) {
    auto blob = sz::truncation_encode(values, 1e-3);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_TruncationEncode);

// --- SIMD dispatch sweep -------------------------------------------------
// One benchmark per vectorized kernel family, parameterized on the dispatch
// level (0=scalar, 1=sse2, 2=avx2). Compare rows of the same benchmark to
// read the per-ISA speedup; BENCH_pqd.json carries the end-to-end numbers.

void BM_SimdLorenzoPqd2D(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  const std::size_t n = 512;
  const auto field = test_field(n, n);
  const sz::LinearQuantizer q(1e-3, 16);
  for (auto _ : state) {
    auto pqd = sz::lorenzo_pqd(field, Dims::d2(n, n), q);
    benchmark::DoNotOptimize(pqd.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 4));
  leave_level();
}
BENCHMARK(BM_SimdLorenzoPqd2D)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdHistogram(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  std::mt19937 rng(17);
  std::vector<std::uint16_t> codes(1 << 20);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(32768 + static_cast<int>(rng() % 9) - 4);
  }
  std::vector<std::uint64_t> freq(1 << 16);
  for (auto _ : state) {
    std::fill(freq.begin(), freq.end(), 0);
    simd::histogram_u16(codes.data(), codes.size(), freq.data());
    benchmark::DoNotOptimize(freq.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
  leave_level();
}
BENCHMARK(BM_SimdHistogram)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdMinmax(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  const auto field = test_field(1024, 1024);
  for (auto _ : state) {
    double lo = static_cast<double>(field[0]);
    double hi = lo;
    simd::minmax(field.data(), field.size(), &lo, &hi);
    benchmark::DoNotOptimize(lo);
    benchmark::DoNotOptimize(hi);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size() * 4));
  leave_level();
}
BENCHMARK(BM_SimdMinmax)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdBoundScan(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  const auto orig = test_field(1024, 1024);
  auto dec = orig;
  for (std::size_t i = 0; i < dec.size(); ++i) {
    dec[i] += (i % 2 == 0 ? 1.0f : -1.0f) * 5e-4f;
  }
  for (auto _ : state) {
    const auto idx = simd::bound_scan(orig.data(), dec.data(), orig.size(),
                                      1e-3);
    benchmark::DoNotOptimize(idx);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(orig.size() * 8));
  leave_level();
}
BENCHMARK(BM_SimdBoundScan)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
