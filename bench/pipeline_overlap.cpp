// Overlapped slab pipeline vs barrier execution (DESIGN.md "Staged slab
// pipeline").
//
// Streams one synthetic snapshot through wave::StreamCompressor at thread
// budgets {1, 2, 4} and pipeline depths {0 = barrier, 2, 4}, reporting
// compression throughput, the speedup over the barrier run at the same
// budget, and — the hard gate — whether the archive bytes are identical to
// the barrier archive (they must be: the pipeline only reorders work across
// independent chunks). The steady-state arena discipline is also asserted:
// fresh slab allocations must stop at depth + 1 regardless of chunk count.
// Writes BENCH_pipeline.json in the working directory; the acceptance row
// is the 1-thread depth-4 speedup (>= 1.15x barrier on a --full-size
// field, where chunk PQD overlaps the previous chunk's entropy encode and
// the gzip+framing of the one before). Overlap needs >= 3 hardware
// threads to manifest as wall-clock speedup — on smaller machines the
// stage workers time-slice and speedup reads ~1.0; the JSON records
// hardware_threads so baselines stay interpretable.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/stream.hpp"
#include "data/synthetic.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"
#include "util/timer.hpp"

namespace {

using namespace wavesz;

std::vector<float> make_field(const Dims& dims) {
  data::FieldRecipe r;
  r.seed = 42;
  r.base_frequency = 0.6;
  r.noise_amplitude = 5e-4;
  return data::generate(r, dims);
}

struct Row {
  int threads = 1;
  int depth = 0;
  double compress_mbps = 0;
  double speedup_vs_barrier = 1.0;
  bool identical = false;
  bool arena_bounded = false;
};

Row run_one(const std::vector<float>& field, const Dims& dims,
            std::size_t chunk_planes, int threads, int depth, unsigned repeat,
            const std::vector<std::uint8_t>* barrier_archive) {
  Row row;
  row.threads = threads;
  row.depth = depth;
  // The H*G* variant (customized Huffman in front of gzip, paper Table 7):
  // its stage weights are the most balanced of the codec family — roughly
  // 72% DEFLATE+frame / 16% entropy / 12% PQD per chunk — which is exactly
  // where overlapping stages pays.
  auto cfg = wave::default_config();
  cfg.huffman = true;
  cfg.pqd_threads = threads;
  cfg.codec_threads = threads;
  cfg.pipeline_depth = depth;

  std::vector<std::uint8_t> archive;
  util::ArenaStats arena;
  const double secs = bench::median_seconds(repeat, [&] {
    wave::StreamCompressor sc(dims, cfg, chunk_planes);
    sc.feed(std::span<const float>(field));
    archive = sc.finish();
    arena = sc.arena_stats();
  });
  const double raw = static_cast<double>(field.size() * sizeof(float));
  row.compress_mbps = raw / 1e6 / secs;
  row.identical =
      barrier_archive == nullptr || archive == *barrier_archive;
  // depth + 1 live slabs (one filling, depth in flight); barrier mode keeps
  // exactly one staging slab alive.
  const auto bound = static_cast<std::uint64_t>(depth > 0 ? depth + 1 : 1);
  row.arena_bounded = arena.fresh <= bound;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Overlapped slab pipeline vs barrier compression",
      "waveSZ pII=1 datapath (paper §3.3) at chunk granularity on CPU");
  bench::print_scale_note(opts);

  // One snapshot, chunked so the pipeline has enough slabs to reach steady
  // state (16 chunks) but each chunk is large enough to dominate the
  // per-stage handoff cost.
  const Dims dims =
      opts.full ? Dims::d3(256, 512, 512) : Dims::d3(64, 256, 256);
  const std::size_t chunk_planes = dims[0] / 16;
  const auto field = make_field(dims);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("field %s (%.0f MB), %zu planes/chunk, 16 chunks, "
              "%u hardware thread(s)\n\n",
              dims.str().c_str(),
              static_cast<double>(field.size() * sizeof(float)) / 1e6,
              chunk_planes, cores);
  if (cores < 3) {
    std::printf("NOTE: fewer than 3 hardware threads — the stage workers "
                "time-slice one core,\nso speedup_vs_barrier hovers around "
                "1.0 here; byte identity and the arena\nbound are still "
                "fully exercised.\n\n");
  }

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pipeline.json\n");
    return 1;
  }
  // hardware_threads is an environment descriptor (ignored by the
  // bench_compare gate): overlap wins need >= 3 cores, and a baseline
  // produced on fewer must be read accordingly. `depth` is emitted as a
  // string so it joins `threads` in the row identity key.
  std::fprintf(json,
               "{\n  \"bench\": \"pipeline_overlap\",\n"
               "  \"hardware_threads\": %u,\n  \"results\": [",
               cores);
  bool first = true;
  bool all_identical = true;
  for (const int threads : {1, 2, 4}) {
    std::vector<std::uint8_t> barrier_archive;
    {
      auto cfg = wave::default_config();
      cfg.huffman = true;
      cfg.pqd_threads = threads;
      cfg.codec_threads = threads;
      wave::StreamCompressor sc(dims, cfg, chunk_planes);
      sc.feed(std::span<const float>(field));
      barrier_archive = sc.finish();
    }
    double barrier_mbps = 0;
    for (const int depth : {0, 2, 4}) {
      const Row row = run_one(field, dims, chunk_planes, threads, depth,
                              opts.repeat, depth == 0 ? nullptr
                                                      : &barrier_archive);
      if (depth == 0) barrier_mbps = row.compress_mbps;
      const double speedup =
          barrier_mbps > 0 ? row.compress_mbps / barrier_mbps : 1.0;
      all_identical = all_identical && row.identical;
      std::printf("threads %d depth %d  %8.1f MB/s  speedup %5.2fx  %s%s\n",
                  threads, depth, row.compress_mbps, speedup,
                  row.identical ? "" : "BYTES-DIVERGE ",
                  row.arena_bounded ? "" : "ARENA-UNBOUNDED");
      std::fprintf(json,
                   "%s\n    {\"threads\": %d, \"depth\": \"%d\", "
                   "\"compress_mbps\": %.1f, \"speedup_vs_barrier\": %.3f, "
                   "\"identical\": %s, \"arena_bounded\": %s}",
                   first ? "" : ",", threads, depth, row.compress_mbps,
                   speedup, row.identical ? "true" : "false",
                   row.arena_bounded ? "true" : "false");
      first = false;
    }
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nresults written to BENCH_pipeline.json\n");
  return all_identical ? 0 : 1;
}
