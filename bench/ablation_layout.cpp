// Ablation: memory layout / iteration order. The same Lorenzo PQD pipeline
// scheduled three ways — raster (original SZ), row-decorrelated (GhostSZ)
// and wavefront (waveSZ) — at paper-native dimensions. This isolates the
// paper's core claim: the wavefront transform alone removes the stalls.
#include <cstdio>

#include "data/datasets.hpp"
#include "fpga/calibration.hpp"
#include "fpga/model.hpp"

int main() {
  using namespace wavesz;
  std::printf(
      "\n================================================================\n"
      "Ablation — iteration order: raster vs row-decorrelated vs wavefront\n"
      "reproduces: the §3.1/§3.2 argument behind Figs. 3-5\n"
      "================================================================\n");

  for (auto p : data::all_personas()) {
    const Dims native = data::persona_dims(p, 1);
    const Dims flat = native.flatten2d();
    std::printf("\n--- %s (%s, flattened %s)\n",
                std::string(data::persona_name(p)).c_str(),
                native.str().c_str(), flat.str().c_str());

    const auto naive = fpga::naive_raster_throughput(native);
    const auto ghost = fpga::ghost_throughput(native);
    const auto wave = fpga::wave_throughput(native, fpga::kWaveSzLanes);

    auto row = [](const char* name, const fpga::DesignThroughput& t,
                  const char* note) {
      std::printf("  %-26s %10.1f MB/s  occupancy %6.3f  stalls %12llu   %s\n",
                  name, t.effective_mbps, t.schedule.occupancy(),
                  static_cast<unsigned long long>(t.schedule.stall_cycles),
                  note);
    };
    row("raster (original SZ)", naive, "stalls ~Delta per point");
    row("rows (GhostSZ order)", ghost,
        "pipelines, but 1D predictor + pII 2");
    row("wavefront (waveSZ)", wave, "pII 1, dependency-free columns");
    std::printf("  wavefront vs raster: %.0fx\n",
                wave.effective_mbps / naive.effective_mbps);
  }
  std::printf("\nshape check: raster order is catastrophic (the Fig. 3 "
              "dependency wall);\nthe wavefront restores ~1 point/cycle "
              "without giving up the 2D predictor.\n");
  return 0;
}
