// Figure 9: compression-error analysis for waveSZ vs GhostSZ on CLDLOW —
// the error distributions (GhostSZ's more concentrated, §4.2) and coarse
// spatial maps of |error| showing GhostSZ's exact hits on the similar-value
// plateau regions.
#include <algorithm>
#include <vector>

#include "common.hpp"
#include "telemetry/fixed_histogram.hpp"

namespace wavesz {
namespace {

/// Downsample |a - b| onto a character raster: ' ' exact, '.' tiny, '#' at
/// the bound.
void error_map(const char* name, const std::vector<float>& orig,
               const std::vector<float>& dec, std::size_t d0, std::size_t d1,
               double bound) {
  constexpr std::size_t rows = 12, cols = 48;
  std::printf("\n%s — |compression error| map (' '=0, '.', ':', '#'=near "
              "bound):\n",
              name);
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  |");
    for (std::size_t c = 0; c < cols; ++c) {
      // Max |error| over the tile.
      double worst = 0;
      const std::size_t x0 = r * d0 / rows, x1 = (r + 1) * d0 / rows;
      const std::size_t y0 = c * d1 / cols, y1 = (c + 1) * d1 / cols;
      for (std::size_t x = x0; x < x1; ++x) {
        for (std::size_t y = y0; y < y1; ++y) {
          worst = std::max(worst,
                           std::fabs(static_cast<double>(orig[x * d1 + y]) -
                                     static_cast<double>(dec[x * d1 + y])));
        }
      }
      const double frac = worst / bound;
      std::printf("%c", frac == 0.0  ? ' '
                        : frac < 0.3 ? '.'
                        : frac < 0.7 ? ':'
                                     : '#');
    }
    std::printf("|\n");
  }
}

}  // namespace
}  // namespace wavesz

int main(int argc, char** argv) {
  using namespace wavesz;
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 9 — compression errors: waveSZ vs GhostSZ on CLDLOW",
      "paper Fig. 9 (GhostSZ distribution more concentrated; exact hits in "
      "similar-value regions)");
  bench::print_scale_note(opts);

  const auto f = data::field(data::Persona::CesmAtm, "CLDLOW",
                             opts.scale_for(data::Persona::CesmAtm));
  const auto grid = f.materialize();

  const auto c_wave = wave::compress(grid, f.dims, wave::default_config());
  const auto d_wave = wave::decompress(c_wave.bytes);
  const auto c_ghost = ghost::compress(grid, f.dims, sz::Config{});
  const auto d_ghost = ghost::decompress(c_ghost.bytes);
  const double eb = c_ghost.header.eb_absolute;

  auto histo = [&](const char* name, const std::vector<float>& dec,
                   double bound) {
    const auto h =
        telemetry::FixedBinHistogram::of_errors(grid, dec, -bound, bound, 21);
    std::size_t exact = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i] == dec[i]) ++exact;
    }
    std::printf("\n--- %s error distribution (%.1f%% bit-exact points)\n",
                name,
                100.0 * static_cast<double>(exact) /
                    static_cast<double>(grid.size()));
    std::printf("%s", h.ascii(44).c_str());
  };
  histo("waveSZ", d_wave, eb);
  histo("GhostSZ", d_ghost, eb);

  error_map("(2) waveSZ", grid, d_wave, f.dims[0], f.dims[1], eb);
  error_map("(3) GhostSZ", grid, d_ghost, f.dims[0], f.dims[1], eb);

  std::printf("\nshape checks: GhostSZ shows a taller spike at zero (exact "
              "order-0 hits on the\nplateaus) while waveSZ's errors spread "
              "evenly across the quantization cell —\nthe paper's "
              "explanation for GhostSZ's higher PSNR in Table 8.\n");
  return 0;
}
