// Parallel chunked DEFLATE sweep: threads x chunk size x level on the gzip
// stage's real input — the Huffman-coded quantization codes of the Table 5
// throughput personas. Reports MB/s and the compression-ratio delta versus
// the serial stream, verifies every output through the serial inflate, and
// emits machine-readable results to BENCH_deflate.json in the working
// directory (schema described in EXPERIMENTS.md).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "deflate/parallel.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/quantizer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace wavesz;

/// The gzip stage's input for a persona: concatenated H*-coded (customized
/// Huffman) quantization-code sections, exactly what compress_t feeds it.
std::vector<std::uint8_t> gzip_stage_input(data::Persona p,
                                           const bench::Options& opts) {
  std::vector<std::uint8_t> out;
  for (const auto& f : data::fields(p, opts.scale_for(p))) {
    const auto grid = f.materialize();
    const double range = metrics::value_range(grid).span();
    const sz::LinearQuantizer q(1e-3 * (range > 0 ? range : 1.0), 16);
    const auto pqd = sz::lorenzo_pqd(grid, f.dims, q);
    const auto coded = sz::huffman_encode(pqd.codes);
    out.insert(out.end(), coded.begin(), coded.end());
  }
  return out;
}

int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::print_header(
      "Parallel chunked DEFLATE — threads x chunk x level sweep",
      "tentpole for the paper's throughput story (Table 5 gzip stage)");
  bench::print_scale_note(opts);
  std::printf("hardware threads available: %d\n", hardware_threads());

  std::vector<std::uint8_t> input;
  for (auto p : data::all_personas()) {
    const auto piece = gzip_stage_input(p, opts);
    input.insert(input.end(), piece.begin(), piece.end());
  }
  const double in_mb = static_cast<double>(input.size()) / 1e6;
  std::printf("gzip-stage input: %.1f MB of H*-coded quantization codes\n\n",
              in_mb);

  std::FILE* json = std::fopen("BENCH_deflate.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"input_bytes\": %zu,\n  \"hardware_threads\": %d,\n"
                 "  \"results\": [\n",
                 input.size(), hardware_threads());
  }

  bool first_row = true;
  bool all_ok = true;
  for (auto level : {deflate::Level::Fast, deflate::Level::Best}) {
    const char* lvl_name = level == deflate::Level::Fast ? "fast" : "best";
    Stopwatch sw;
    const auto serial = deflate::gzip_compress(input, level);
    const double serial_s = sw.seconds();
    const double serial_mbps = in_mb / serial_s;
    std::printf("level=%s serial: %.1f MB/s, ratio %.3f\n", lvl_name,
                serial_mbps,
                static_cast<double>(input.size()) /
                    static_cast<double>(serial.size()));

    for (std::size_t chunk : {64u * 1024u, 256u * 1024u, 1024u * 1024u}) {
      for (int threads : {1, 2, 4, 8}) {
        deflate::ParallelOptions popts{chunk, threads, true};
        sw.reset();
        const auto par = deflate::gzip_compress_parallel(input, level, popts);
        const double par_s = sw.seconds();
        const bool ok = deflate::gzip_decompress(par) == input;
        all_ok = all_ok && ok;
        const double mbps = in_mb / par_s;
        const double delta =
            100.0 * (static_cast<double>(par.size()) /
                         static_cast<double>(serial.size()) -
                     1.0);
        std::printf(
            "  chunk=%4zuKiB threads=%d  %7.1f MB/s  speedup %4.2fx  "
            "ratio delta %+5.3f%%  roundtrip %s\n",
            chunk / 1024, threads, mbps, par_s > 0 ? serial_s / par_s : 0.0,
            delta, ok ? "ok" : "FAIL");
        if (json != nullptr) {
          std::fprintf(
              json,
              "%s    {\"level\": \"%s\", \"chunk_bytes\": %zu, "
              "\"threads\": %d, \"mbps\": %.2f, \"speedup_vs_serial\": %.3f, "
              "\"compressed_bytes\": %zu, \"ratio_delta_pct\": %.4f, "
              "\"roundtrip_ok\": %s}",
              first_row ? "" : ",\n", lvl_name, chunk, threads, mbps,
              par_s > 0 ? serial_s / par_s : 0.0, par.size(), delta,
              ok ? "true" : "false");
          first_row = false;
        }
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("\nresults written to BENCH_deflate.json\n");
  }
  std::printf("note: speedups need physical cores; this sweep reports the "
              "machine it ran on\n(hardware_threads above) rather than an "
              "assumed topology.\n");
  return all_ok ? 0 : 1;
}
