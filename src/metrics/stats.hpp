// Distortion and ratio metrics used throughout the evaluation (paper §4.1).
//
// PSNR is defined exactly as in the paper:
//   PSNR = 20 * log10((d_max - d_min) / RMSE)
// with RMSE the root mean squared error between original and decompressed
// values. Compression ratio is original bytes over compressed bytes.
#pragma once

#include <cstdint>
#include <span>

namespace wavesz::metrics {

struct Range {
  double min = 0.0;
  double max = 0.0;
  double span() const { return max - min; }
};

Range value_range(std::span<const float> data);

struct DistortionStats {
  double rmse = 0.0;
  double psnr_db = 0.0;
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
};

/// Compare original vs decompressed; spans must have equal length.
DistortionStats distortion(std::span<const float> original,
                           std::span<const float> decompressed);

/// True iff every |original[i] - decompressed[i]| <= bound (with a 1-ulp
/// slack to absorb double->float rounding at the bound edge). Non-finite
/// values must reproduce exactly: NaN pairs with NaN, an infinity only with
/// the same-signed infinity; any other non-finite pairing is a violation.
/// Delegates to first_violation, so both agree by construction.
bool within_bound(std::span<const float> original,
                  std::span<const float> decompressed, double bound);

/// Index of the first element violating the bound, or SIZE_MAX if none.
std::size_t first_violation(std::span<const float> original,
                            std::span<const float> decompressed, double bound);

inline double compression_ratio(std::size_t original_bytes,
                                std::size_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes);
}

}  // namespace wavesz::metrics
