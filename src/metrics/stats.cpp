#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/error.hpp"

namespace wavesz::metrics {

Range value_range(std::span<const float> data) {
  WAVESZ_REQUIRE(!data.empty(), "value_range of empty data");
  Range r{data[0], data[0]};
  for (float v : data) {
    r.min = std::min(r.min, static_cast<double>(v));
    r.max = std::max(r.max, static_cast<double>(v));
  }
  return r;
}

DistortionStats distortion(std::span<const float> original,
                           std::span<const float> decompressed) {
  WAVESZ_REQUIRE(original.size() == decompressed.size(),
                 "distortion: length mismatch");
  WAVESZ_REQUIRE(!original.empty(), "distortion of empty data");
  double sq_sum = 0.0, abs_sum = 0.0, max_abs = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double e = static_cast<double>(original[i]) -
                     static_cast<double>(decompressed[i]);
    sq_sum += e * e;
    abs_sum += std::fabs(e);
    max_abs = std::max(max_abs, std::fabs(e));
  }
  const double n = static_cast<double>(original.size());
  DistortionStats s;
  s.rmse = std::sqrt(sq_sum / n);
  s.mean_abs_error = abs_sum / n;
  s.max_abs_error = max_abs;
  const double span = value_range(original).span();
  s.psnr_db = (s.rmse > 0.0 && span > 0.0)
                  ? 20.0 * std::log10(span / s.rmse)
                  : std::numeric_limits<double>::infinity();
  return s;
}

std::size_t first_violation(std::span<const float> original,
                            std::span<const float> decompressed,
                            double bound) {
  WAVESZ_REQUIRE(original.size() == decompressed.size(),
                 "first_violation: length mismatch");
  // One float ulp of slack at the bound magnitude: reconstruction arithmetic
  // is double but the stored value is float, so the last rounding step can
  // land a hair past an exactly-met bound.
  const double slack =
      static_cast<double>(std::nextafter(static_cast<float>(bound),
                                         std::numeric_limits<float>::max())) -
      bound;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const float o = original[i], d = decompressed[i];
    // Bit-for-bit identical non-finite values (NaN payload aside: any NaN
    // pairs with any NaN) count as reconstructed; everything else involving
    // a NaN or an infinite difference is a violation — `e > bound` alone
    // would let NaN errors pass silently because every NaN compare is false.
    if (std::isnan(o) || std::isnan(d)) {
      if (std::isnan(o) && std::isnan(d)) continue;
      return i;
    }
    if (std::isinf(o) || std::isinf(d)) {
      if (o == d) continue;
      return i;
    }
    const double e = std::fabs(static_cast<double>(o) -
                               static_cast<double>(d));
    if (e > bound + slack) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool within_bound(std::span<const float> original,
                  std::span<const float> decompressed, double bound) {
  return first_violation(original, decompressed, bound) ==
         static_cast<std::size_t>(-1);
}

}  // namespace wavesz::metrics
