#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace wavesz::metrics {

Range value_range(std::span<const float> data) {
  WAVESZ_REQUIRE(!data.empty(), "value_range of empty data");
  // Seeded with data[0] like the serial fold, so NaN-poisoning semantics
  // carry over: NaN elements never become the extremum, a NaN seed sticks.
  double lo = static_cast<double>(data[0]);
  double hi = lo;
  simd::minmax(data.data(), data.size(), &lo, &hi);
  return Range{lo, hi};
}

DistortionStats distortion(std::span<const float> original,
                           std::span<const float> decompressed) {
  WAVESZ_REQUIRE(original.size() == decompressed.size(),
                 "distortion: length mismatch");
  WAVESZ_REQUIRE(!original.empty(), "distortion of empty data");
  double sq_sum = 0.0, abs_sum = 0.0, max_abs = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double e = static_cast<double>(original[i]) -
                     static_cast<double>(decompressed[i]);
    sq_sum += e * e;
    abs_sum += std::fabs(e);
    max_abs = std::max(max_abs, std::fabs(e));
  }
  const double n = static_cast<double>(original.size());
  DistortionStats s;
  s.rmse = std::sqrt(sq_sum / n);
  s.mean_abs_error = abs_sum / n;
  s.max_abs_error = max_abs;
  const double span = value_range(original).span();
  s.psnr_db = (s.rmse > 0.0 && span > 0.0)
                  ? 20.0 * std::log10(span / s.rmse)
                  : std::numeric_limits<double>::infinity();
  return s;
}

std::size_t first_violation(std::span<const float> original,
                            std::span<const float> decompressed,
                            double bound) {
  WAVESZ_REQUIRE(original.size() == decompressed.size(),
                 "first_violation: length mismatch");
  // One float ulp of slack at the bound magnitude: reconstruction arithmetic
  // is double but the stored value is float, so the last rounding step can
  // land a hair past an exactly-met bound.
  const double slack =
      static_cast<double>(std::nextafter(static_cast<float>(bound),
                                         std::numeric_limits<float>::max())) -
      bound;
  const double thr = bound + slack;
  constexpr auto npos = static_cast<std::size_t>(-1);
  // simd::bound_scan is a conservative filter (flags every lane whose
  // |o-d| <= thr test fails in double, which includes all NaN/Inf lanes);
  // the flagged index gets the exact serial semantics below, and benign
  // flags — matching NaNs, equal infinities — resume the scan past them.
  std::size_t i = 0;
  while (i < original.size()) {
    const std::size_t f = simd::bound_scan(
        original.data() + i, decompressed.data() + i, original.size() - i,
        thr);
    if (f == npos) return npos;
    i += f;
    const float o = original[i], d = decompressed[i];
    // Bit-for-bit identical non-finite values (NaN payload aside: any NaN
    // pairs with any NaN) count as reconstructed; everything else involving
    // a NaN or an infinite difference is a violation — `e > bound` alone
    // would let NaN errors pass silently because every NaN compare is false.
    if (std::isnan(o) || std::isnan(d)) {
      if (!(std::isnan(o) && std::isnan(d))) return i;
    } else if (std::isinf(o) || std::isinf(d)) {
      if (o != d) return i;
    } else if (std::fabs(static_cast<double>(o) - static_cast<double>(d)) >
               thr) {
      return i;
    }
    ++i;
  }
  return npos;
}

bool within_bound(std::span<const float> original,
                  std::span<const float> decompressed, double bound) {
  return first_violation(original, decompressed, bound) ==
         static_cast<std::size_t>(-1);
}

}  // namespace wavesz::metrics
