#include "sz2/sz2.hpp"

#include <algorithm>
#include <cmath>

#include "deflate/deflate.hpp"
#include "metrics/stats.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/decode_guard.hpp"
#include "util/error.hpp"

namespace wavesz::sz2 {
namespace {

constexpr std::uint32_t kMagic = 0x325a5357u;  // "WSZ2"

struct Shape {
  std::size_t n0, n1, n2;
  int rank;
};

Shape shape_of(const Dims& dims) {
  return {dims[0], dims.rank >= 2 ? dims[1] : 1,
          dims.rank >= 3 ? dims[2] : 1, dims.rank};
}

std::size_t default_block_side(int rank) { return rank >= 3 ? 8 : 16; }

/// Quantized hyperplane coefficients of one regression block. Slopes are in
/// units of eb/(8*side), the intercept in units of eb/8, so decoder-side
/// prediction shifts stay well inside the quantization cell.
struct RegressionCoeffs {
  std::int32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
};

struct CoeffQuant {
  double q0, qs;

  CoeffQuant(double eb, std::size_t side)
      : q0(eb / 8.0), qs(eb / (8.0 * static_cast<double>(side))) {}

  static std::int32_t round_to(double v, double q) {
    return static_cast<std::int32_t>(std::llround(v / q));
  }
  RegressionCoeffs quantize(double b0, double b1, double b2,
                            double b3) const {
    return {round_to(b0, q0), round_to(b1, qs), round_to(b2, qs),
            round_to(b3, qs)};
  }
  double predict(const RegressionCoeffs& c, std::size_t i0, std::size_t i1,
                 std::size_t i2) const {
    return static_cast<double>(c.c0) * q0 +
           static_cast<double>(c.c1) * qs * static_cast<double>(i0) +
           static_cast<double>(c.c2) * qs * static_cast<double>(i1) +
           static_cast<double>(c.c3) * qs * static_cast<double>(i2);
  }
};

struct Block {
  std::size_t o0, o1, o2;  // origin
  std::size_t l0, l1, l2;  // extents (edge blocks may be short)
};

std::vector<Block> make_blocks(const Shape& s, std::size_t side) {
  std::vector<Block> blocks;
  for (std::size_t b0 = 0; b0 < s.n0; b0 += side) {
    for (std::size_t b1 = 0; b1 < s.n1; b1 += (s.rank >= 2 ? side : s.n1)) {
      for (std::size_t b2 = 0; b2 < s.n2;
           b2 += (s.rank >= 3 ? side : s.n2)) {
        Block b;
        b.o0 = b0;
        b.o1 = b1;
        b.o2 = b2;
        b.l0 = std::min(side, s.n0 - b0);
        b.l1 = s.rank >= 2 ? std::min(side, s.n1 - b1) : s.n1;
        b.l2 = s.rank >= 3 ? std::min(side, s.n2 - b2) : s.n2;
        blocks.push_back(b);
      }
    }
  }
  return blocks;
}

/// Least-squares hyperplane fit over a rectangular block. The coordinate
/// axes of a full tensor grid are orthogonal, so each slope separates.
void fit_plane(std::span<const float> data, const Shape& s, const Block& b,
               double out[4]) {
  const double n = static_cast<double>(b.l0 * b.l1 * b.l2);
  double mean = 0.0;
  for (std::size_t i0 = 0; i0 < b.l0; ++i0) {
    for (std::size_t i1 = 0; i1 < b.l1; ++i1) {
      for (std::size_t i2 = 0; i2 < b.l2; ++i2) {
        mean += data[((b.o0 + i0) * s.n1 + (b.o1 + i1)) * s.n2 + b.o2 + i2];
      }
    }
  }
  mean /= n;
  const double m0 = static_cast<double>(b.l0 - 1) / 2.0;
  const double m1 = static_cast<double>(b.l1 - 1) / 2.0;
  const double m2 = static_cast<double>(b.l2 - 1) / 2.0;
  double num0 = 0, num1 = 0, num2 = 0, den0 = 0, den1 = 0, den2 = 0;
  for (std::size_t i0 = 0; i0 < b.l0; ++i0) {
    for (std::size_t i1 = 0; i1 < b.l1; ++i1) {
      for (std::size_t i2 = 0; i2 < b.l2; ++i2) {
        const double f =
            data[((b.o0 + i0) * s.n1 + (b.o1 + i1)) * s.n2 + b.o2 + i2];
        num0 += (static_cast<double>(i0) - m0) * f;
        num1 += (static_cast<double>(i1) - m1) * f;
        num2 += (static_cast<double>(i2) - m2) * f;
      }
    }
  }
  const double cnt12 = static_cast<double>(b.l1 * b.l2);
  const double cnt02 = static_cast<double>(b.l0 * b.l2);
  const double cnt01 = static_cast<double>(b.l0 * b.l1);
  for (std::size_t i = 0; i < b.l0; ++i) {
    den0 += (static_cast<double>(i) - m0) * (static_cast<double>(i) - m0);
  }
  for (std::size_t i = 0; i < b.l1; ++i) {
    den1 += (static_cast<double>(i) - m1) * (static_cast<double>(i) - m1);
  }
  for (std::size_t i = 0; i < b.l2; ++i) {
    den2 += (static_cast<double>(i) - m2) * (static_cast<double>(i) - m2);
  }
  den0 *= cnt12;
  den1 *= cnt02;
  den2 *= cnt01;
  out[1] = den0 > 0 ? num0 / den0 : 0.0;
  out[2] = den1 > 0 ? num1 / den1 : 0.0;
  out[3] = den2 > 0 ? num2 / den2 : 0.0;
  out[0] = mean - out[1] * m0 - out[2] * m1 - out[3] * m2;
}

std::uint32_t zigzag(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

std::int32_t unzigzag(std::uint32_t v) {
  return static_cast<std::int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Zero-padded accessor over a reconstructed field (Lorenzo borders).
struct Padded {
  const float* rec;
  Shape s;
  double at(std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) const {
    if (i0 < 0 || i1 < 0 || i2 < 0) return 0.0;
    return rec[(static_cast<std::size_t>(i0) * s.n1 +
                static_cast<std::size_t>(i1)) *
                   s.n2 +
               static_cast<std::size_t>(i2)];
  }
};

double lorenzo_predict(const Padded& p, int rank, std::ptrdiff_t i0,
                       std::ptrdiff_t i1, std::ptrdiff_t i2) {
  switch (rank) {
    case 1: return sz::lorenzo1d(p.at(i0 - 1, 0, 0));
    case 2:
      return sz::lorenzo2d(p.at(i0 - 1, i1 - 1, 0), p.at(i0 - 1, i1, 0),
                           p.at(i0, i1 - 1, 0));
    default:
      return sz::lorenzo3d(p.at(i0 - 1, i1 - 1, i2 - 1),
                           p.at(i0 - 1, i1 - 1, i2), p.at(i0 - 1, i1, i2 - 1),
                           p.at(i0, i1 - 1, i2 - 1), p.at(i0 - 1, i1, i2),
                           p.at(i0, i1 - 1, i2), p.at(i0, i1, i2 - 1));
  }
}

/// Logarithmic preprocessing for pointwise-relative bounds: 2-bit class per
/// point (zero/positive/negative) + log2|x| magnitudes.
struct LogTransformed {
  std::vector<float> log_values;   ///< log2|x|, 0 where class == zero
  std::vector<std::uint8_t> classes;  ///< 0 zero, 1 positive, 2 negative
};

LogTransformed log_forward(std::span<const float> data) {
  LogTransformed out;
  out.log_values.resize(data.size());
  out.classes.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float v = data[i];
    WAVESZ_REQUIRE(std::isfinite(v),
                   "pointwise-relative mode requires finite data");
    if (v == 0.0f) {
      out.classes[i] = 0;
      out.log_values[i] = 0.0f;
    } else {
      out.classes[i] = v > 0.0f ? 1 : 2;
      out.log_values[i] =
          static_cast<float>(std::log2(std::fabs(static_cast<double>(v))));
    }
  }
  return out;
}

std::vector<float> log_inverse(std::span<const float> log_values,
                               std::span<const std::uint8_t> classes) {
  std::vector<float> out(log_values.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (classes[i] == 0) {
      out[i] = 0.0f;
    } else {
      const double mag = std::exp2(static_cast<double>(log_values[i]));
      out[i] = static_cast<float>(classes[i] == 1 ? mag : -mag);
    }
  }
  return out;
}

std::vector<std::uint8_t> pack_classes(
    std::span<const std::uint8_t> classes) {
  BitWriterMSB bw;
  for (auto c : classes) bw.bits(c, 2);
  return bw.take();
}

std::vector<std::uint8_t> unpack_classes(std::span<const std::uint8_t> blob,
                                         std::size_t count) {
  BitReaderMSB br(blob);
  std::vector<std::uint8_t> out(count);
  for (auto& c : out) c = static_cast<std::uint8_t>(br.bits(2));
  return out;
}

}  // namespace

double log_domain_bound(double pointwise_eb) {
  WAVESZ_REQUIRE(pointwise_eb > 0.0 && pointwise_eb < 1.0,
                 "pointwise-relative bound must be in (0, 1)");
  // Slightly shrunk so the final double->float rounding of exp2 stays
  // inside the user's bound.
  return std::log2(1.0 + 0.999 * pointwise_eb);
}

Compressed compress(std::span<const float> data, const Dims& dims,
                    const Config& cfg) {
  WAVESZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const Shape s = shape_of(dims);
  const std::size_t side =
      cfg.block_side > 0 ? cfg.block_side : default_block_side(s.rank);
  WAVESZ_REQUIRE(side >= 2, "block side must be at least 2");

  // Resolve the working domain and the absolute bound within it.
  LogTransformed logt;
  std::span<const float> work = data;
  double bound = cfg.error_bound;
  if (cfg.mode == Config::Mode::PointwiseRelative) {
    logt = log_forward(data);
    work = logt.log_values;
    bound = log_domain_bound(cfg.error_bound);
  } else if (cfg.mode == Config::Mode::ValueRangeRelative) {
    const double range = metrics::value_range(data).span();
    bound *= (range > 0.0 ? range : 1.0);
  }
  const sz::LinearQuantizer q(bound, cfg.quant_bits);
  const CoeffQuant cq(bound, side);

  const auto blocks = make_blocks(s, side);
  std::vector<float> rec(work.begin(), work.end());
  std::vector<std::uint16_t> codes(work.size());
  std::vector<float> unpred;
  std::vector<std::uint8_t> modes;
  std::vector<std::uint32_t> coeff_stream;
  std::size_t regression_blocks = 0;

  const Padded padded{rec.data(), s};
  for (const Block& b : blocks) {
    // Fit and quantize the hyperplane.
    double beta[4];
    fit_plane(work, s, b, beta);
    const RegressionCoeffs rc = cq.quantize(beta[0], beta[1], beta[2],
                                            beta[3]);
    // Estimate both predictors on the original values (selection only).
    double err_reg = 0.0, err_lor = 0.0;
    for (std::size_t i0 = 0; i0 < b.l0; ++i0) {
      for (std::size_t i1 = 0; i1 < b.l1; ++i1) {
        for (std::size_t i2 = 0; i2 < b.l2; ++i2) {
          const std::size_t g0 = b.o0 + i0, g1 = b.o1 + i1, g2 = b.o2 + i2;
          const std::size_t gi = (g0 * s.n1 + g1) * s.n2 + g2;
          const double f = work[gi];
          err_reg += std::fabs(f - cq.predict(rc, i0, i1, i2));
          auto orig_at = [&](std::ptrdiff_t a, std::ptrdiff_t bb,
                             std::ptrdiff_t c) {
            if (a < 0 || bb < 0 || c < 0) return 0.0;
            return static_cast<double>(
                work[(static_cast<std::size_t>(a) * s.n1 +
                      static_cast<std::size_t>(bb)) *
                         s.n2 +
                     static_cast<std::size_t>(c)]);
          };
          double pl;
          const auto p0 = static_cast<std::ptrdiff_t>(g0);
          const auto p1 = static_cast<std::ptrdiff_t>(g1);
          const auto p2 = static_cast<std::ptrdiff_t>(g2);
          switch (s.rank) {
            case 1: pl = orig_at(p0 - 1, 0, 0); break;
            case 2:
              pl = sz::lorenzo2d(orig_at(p0 - 1, p1 - 1, 0),
                                 orig_at(p0 - 1, p1, 0),
                                 orig_at(p0, p1 - 1, 0));
              break;
            default:
              pl = sz::lorenzo3d(
                  orig_at(p0 - 1, p1 - 1, p2 - 1), orig_at(p0 - 1, p1 - 1, p2),
                  orig_at(p0 - 1, p1, p2 - 1), orig_at(p0, p1 - 1, p2 - 1),
                  orig_at(p0 - 1, p1, p2), orig_at(p0, p1 - 1, p2),
                  orig_at(p0, p1, p2 - 1));
          }
          err_lor += std::fabs(f - pl);
        }
      }
    }
    const bool use_regression = err_reg < err_lor;
    modes.push_back(use_regression ? 1 : 0);
    if (use_regression) {
      ++regression_blocks;
      coeff_stream.push_back(zigzag(rc.c0));
      coeff_stream.push_back(zigzag(rc.c1));
      if (s.rank >= 2) coeff_stream.push_back(zigzag(rc.c2));
      if (s.rank >= 3) coeff_stream.push_back(zigzag(rc.c3));
    }

    // PQD over the block with the chosen predictor.
    for (std::size_t i0 = 0; i0 < b.l0; ++i0) {
      for (std::size_t i1 = 0; i1 < b.l1; ++i1) {
        for (std::size_t i2 = 0; i2 < b.l2; ++i2) {
          const std::size_t g0 = b.o0 + i0, g1 = b.o1 + i1, g2 = b.o2 + i2;
          const std::size_t gi = (g0 * s.n1 + g1) * s.n2 + g2;
          const double pred =
              use_regression
                  ? cq.predict(rc, i0, i1, i2)
                  : lorenzo_predict(padded, s.rank,
                                    static_cast<std::ptrdiff_t>(g0),
                                    static_cast<std::ptrdiff_t>(g1),
                                    static_cast<std::ptrdiff_t>(g2));
          const auto r = q.quantize(pred, work[gi]);
          codes[gi] = r.code;
          if (r.code != 0) {
            rec[gi] = r.reconstructed;
          } else {
            rec[gi] = sz::truncation_roundtrip(work[gi], bound);
            unpred.push_back(work[gi]);
          }
        }
      }
    }
  }

  // Serialize.
  ByteWriter w;
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(dims.rank));
  for (int i = 0; i < 3; ++i) w.u64(dims.extent[static_cast<std::size_t>(i)]);
  w.u8(static_cast<std::uint8_t>(cfg.mode));
  w.f64(cfg.error_bound);
  w.f64(bound);
  w.u8(static_cast<std::uint8_t>(cfg.quant_bits));
  w.u8(static_cast<std::uint8_t>(cfg.gzip_level));
  w.u64(side);
  w.u64(blocks.size());
  w.u64(unpred.size());

  auto section = [&](std::span<const std::uint8_t> plain) {
    const auto blob = deflate::gzip_compress(plain, cfg.gzip_level);
    w.u64(blob.size());
    w.bytes(blob);
  };
  // Modes bitmap.
  {
    BitWriterMSB bw;
    for (auto m : modes) bw.bits(m, 1);
    const auto bits = bw.take();
    section(bits);
  }
  // Coefficients.
  {
    ByteWriter cw;
    for (auto c : coeff_stream) cw.u32(c);
    section(cw.data());
  }
  // Quantization codes (customized Huffman, as in SZ-1.4).
  section(sz::huffman_encode(codes));
  // Unpredictables (truncation in the working domain).
  section(sz::truncation_encode(unpred, bound));
  // Sign/zero plane for the log transform.
  if (cfg.mode == Config::Mode::PointwiseRelative) {
    section(pack_classes(logt.classes));
  }

  Compressed out;
  out.bytes = w.take();
  out.eb_absolute = bound;
  out.block_count = blocks.size();
  out.regression_blocks = regression_blocks;
  out.unpredictable_count = unpred.size();
  return out;
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out) {
  ByteReader r(bytes);
  WAVESZ_REQUIRE(r.u32() == kMagic, "not an SZ-2.0 container");
  const int rank = r.u8();
  WAVESZ_REQUIRE(rank >= 1 && rank <= 3, "invalid rank");
  std::array<std::size_t, 3> ext{};
  for (auto& e : ext) {
    e = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(e > 0, "zero extent");
  }
  const Dims dims{ext, rank};
  // Forged extents must fail before any geometry-derived allocation.
  const std::size_t total_points = guarded_count(dims, sizeof(float));
  const auto mode = static_cast<Config::Mode>(r.u8());
  WAVESZ_REQUIRE(mode <= Config::Mode::PointwiseRelative, "invalid mode");
  (void)r.f64();  // requested bound (informational)
  const double bound = r.f64();
  WAVESZ_REQUIRE(bound > 0.0, "non-positive bound");
  const int quant_bits = r.u8();
  (void)r.u8();  // gzip level
  const std::size_t side = static_cast<std::size_t>(r.u64());
  WAVESZ_REQUIRE(side >= 2, "invalid block side");
  const std::uint64_t block_count = r.u64();
  const std::uint64_t unpred_count = r.u64();

  auto section = [&]() {
    const std::uint64_t size = r.u64();
    auto view = r.bytes(size);
    return deflate::gzip_decompress({view.begin(), view.end()});
  };
  const auto modes_bits = section();
  const auto coeff_plain = section();
  const auto codes_blob = section();
  const auto unpred_blob = section();

  // Validate the point count against real decoded data before sizing any
  // geometry-derived structure (forged dims must not drive allocations).
  const auto codes = sz::huffman_decode(codes_blob);
  WAVESZ_REQUIRE(codes.size() == total_points, "code count mismatch");

  const Shape s = shape_of(dims);
  const auto blocks = make_blocks(s, side);
  WAVESZ_REQUIRE(blocks.size() == block_count, "block count mismatch");
  WAVESZ_REQUIRE(modes_bits.size() * 8 >= blocks.size(),
                 "modes bitmap too small");

  BitReaderMSB mb(modes_bits);
  std::vector<std::uint8_t> modes(blocks.size());
  for (auto& m : modes) m = static_cast<std::uint8_t>(mb.bit());

  ByteReader cr(coeff_plain);
  const auto unpred = sz::truncation_decode(unpred_blob, unpred_count, bound);

  const sz::LinearQuantizer q(bound, quant_bits);
  const CoeffQuant cq(bound, side);
  std::vector<float> rec(total_points);
  const Padded padded{rec.data(), s};
  std::size_t next_unpred = 0;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const Block& b = blocks[bi];
    RegressionCoeffs rc;
    if (modes[bi] == 1) {
      rc.c0 = unzigzag(cr.u32());
      rc.c1 = unzigzag(cr.u32());
      if (s.rank >= 2) rc.c2 = unzigzag(cr.u32());
      if (s.rank >= 3) rc.c3 = unzigzag(cr.u32());
    }
    for (std::size_t i0 = 0; i0 < b.l0; ++i0) {
      for (std::size_t i1 = 0; i1 < b.l1; ++i1) {
        for (std::size_t i2 = 0; i2 < b.l2; ++i2) {
          const std::size_t g0 = b.o0 + i0, g1 = b.o1 + i1, g2 = b.o2 + i2;
          const std::size_t gi = (g0 * s.n1 + g1) * s.n2 + g2;
          if (codes[gi] == 0) {
            WAVESZ_REQUIRE(next_unpred < unpred.size(),
                           "unpredictable stream exhausted");
            rec[gi] = unpred[next_unpred++];
            continue;
          }
          const double pred =
              modes[bi] == 1
                  ? cq.predict(rc, i0, i1, i2)
                  : lorenzo_predict(padded, s.rank,
                                    static_cast<std::ptrdiff_t>(g0),
                                    static_cast<std::ptrdiff_t>(g1),
                                    static_cast<std::ptrdiff_t>(g2));
          rec[gi] = q.reconstruct(pred, codes[gi]);
        }
      }
    }
  }
  WAVESZ_REQUIRE(next_unpred == unpred.size(),
                 "unpredictable stream has trailing values");
  if (dims_out != nullptr) *dims_out = dims;

  if (mode == Config::Mode::PointwiseRelative) {
    const auto classes_blob = section();
    const auto classes = unpack_classes(classes_blob, total_points);
    return log_inverse(rec, classes);
  }
  return rec;
}

}  // namespace wavesz::sz2
