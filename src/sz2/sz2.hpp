// SZ-2.0-style compressor (paper §2.1 and Table 2's "2.0+" row; Liang et
// al. 2018). Three additions over SZ-1.4, all implemented here:
//
//   * block decomposition — the field is cut into fixed blocks (16x16 in
//     2D, 8x8x8 in 3D);
//   * per-block predictor selection between the single-layer Lorenzo
//     stencil and a linear-regression (hyperplane) predictor whose
//     quantized coefficients ship with the stream — regression needs no
//     neighbour feedback, which is what helps at coarse bounds;
//   * logarithmic preprocessing for *pointwise-relative* error bounds
//     (SZ-2.0's [31]): compress log2|d| under an absolute bound of
//     log2(1 + eb), plus a 2-bit sign/zero plane, so that
//     |d - d*| <= eb * |d| holds pointwise.
//
// The paper's §2.1 claim — SZ-2.0 helps mainly in the low-precision
// regime and is on par with (or slightly behind) SZ-1.4 at tight bounds —
// is evaluated by bench/sz2_vs_sz14.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"

namespace wavesz::sz2 {

enum class Predictor : std::uint8_t { Lorenzo = 0, Regression = 1 };

struct Config {
  double error_bound = 1e-3;
  enum class Mode {
    Absolute,
    ValueRangeRelative,
    PointwiseRelative,  ///< via the logarithmic transform
  } mode = Mode::ValueRangeRelative;
  int quant_bits = 16;
  std::size_t block_side = 0;  ///< 0 = default (16 in 2D, 8 in 3D)
  deflate::Level gzip_level = deflate::Level::Fast;
};

struct Compressed {
  std::vector<std::uint8_t> bytes;
  double eb_absolute = 0.0;       ///< bound in the (possibly log) domain
  std::size_t block_count = 0;
  std::size_t regression_blocks = 0;
  std::size_t unpredictable_count = 0;
};

Compressed compress(std::span<const float> data, const Dims& dims,
                    const Config& cfg);

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out = nullptr);

/// The log-domain absolute bound that guarantees a pointwise-relative
/// bound of eb: log2(1 + eb) / 2 (symmetric two-sided cell).
double log_domain_bound(double pointwise_eb);

}  // namespace wavesz::sz2
