// Exporters for telemetry::Report.
//
//   * chrome_trace_json — Chrome trace-event format ("X" complete events
//     with ts/dur in microseconds, plus thread_name metadata). Loads in
//     Perfetto (ui.perfetto.dev) and chrome://tracing.
//   * stats_json — flat machine-readable report: per-stage aggregates,
//     every counter, wall time. One object, stable keys, for scripts.
//   * summary_table — human-readable per-stage breakdown for terminals.
#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace wavesz::telemetry {

/// Chrome trace-event JSON ({"traceEvents": [...]}). pid is fixed at 1;
/// tid is the dense thread ordinal from SpanEvent.
std::string chrome_trace_json(const Report& report);

/// Flat stats JSON: {"wall_ms": ..., "dropped_events": ...,
/// "stages": [{"name", "count", "total_ms", "mean_us", "threads"}...],
/// "counters": {"code_bytes_in": ..., ...}}.
std::string stats_json(const Report& report);

/// Human-readable stage table (name, calls, total ms, % of wall, threads)
/// followed by the non-zero counters.
std::string summary_table(const Report& report);

}  // namespace wavesz::telemetry
