// Exporters for telemetry::Report.
//
//   * chrome_trace_json — Chrome trace-event format ("X" complete events
//     with ts/dur in microseconds, plus thread_name metadata). Loads in
//     Perfetto (ui.perfetto.dev) and chrome://tracing. kSampleHw spans
//     carry their hardware-counter deltas in args.
//   * stats_json — flat machine-readable report: per-stage aggregates with
//     duration percentiles and hardware-counter sums, every counter, the
//     registry histograms with p50/p90/p99, wall time. One object, stable
//     keys, for scripts.
//   * summary_table — human-readable per-stage breakdown for terminals,
//     with p50/p99 columns, histogram percentiles, per-stage IPC and miss
//     rates when hardware sampling ran, and the dropped-span count.
//   * prometheus_text — Prometheus text exposition format (version 0.0.4):
//     counters as *_total, registry histograms as native histogram series
//     (_bucket{le=...}/_sum/_count), per-stage time/calls/hardware series
//     keyed by a stage label. Ready to serve from a /metrics endpoint.
#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace wavesz::telemetry {

/// Chrome trace-event JSON ({"traceEvents": [...]}). pid is fixed at 1;
/// tid is the dense thread ordinal from SpanEvent.
std::string chrome_trace_json(const Report& report);

/// Flat stats JSON: {"wall_ms": ..., "dropped_events": ...,
/// "stages": [{"name", "count", "total_ms", "mean_us", "p50_us", "p90_us",
/// "p99_us", "max_us", "threads", ...perf keys when sampled}...],
/// "histograms": [{"name", "unit", "count", "sum", "min", "max", "p50",
/// "p90", "p99"}...], "counters": {"code_bytes_in": ..., ...}}.
std::string stats_json(const Report& report);

/// Human-readable stage table (name, calls, total ms, % of wall, p50/p99,
/// threads) followed by histogram percentiles, hardware-counter rates per
/// stage (when sampled), and the counters.
std::string summary_table(const Report& report);

/// Prometheus text exposition (content type text/plain; version=0.0.4).
/// Every series is prefixed with telemetry::kMetricPrefix.
std::string prometheus_text(const Report& report);

}  // namespace wavesz::telemetry
