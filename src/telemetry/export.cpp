#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wavesz::telemetry {
namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string u64s(std::uint64_t v) { return std::to_string(v); }

/// Aggregate view of every span with the same name. Durations are kept so
/// exporters can report exact per-stage percentiles (events, unlike the
/// registry histograms, may drop under ring overflow — the two views are
/// complementary).
struct StageStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::set<std::uint32_t> tids;
  std::uint32_t min_depth = ~0u;
  std::vector<std::uint64_t> durations_ns;
  // Hardware-counter sums over the spans that carried samples.
  std::uint64_t hw_spans = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  /// Exact percentile of the recorded span durations (sorts lazily — call
  /// after aggregation is complete).
  std::uint64_t duration_percentile(double q) {
    if (durations_ns.empty()) return 0;
    if (!std::is_sorted(durations_ns.begin(), durations_ns.end())) {
      std::sort(durations_ns.begin(), durations_ns.end());
    }
    const std::size_t n = durations_ns.size();
    const std::size_t rank = std::min(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
    return durations_ns[rank];
  }
};

std::map<std::string, StageStat> aggregate(const Report& report) {
  std::map<std::string, StageStat> stages;
  for (const SpanEvent& e : report.events) {
    StageStat& s = stages[e.name];
    ++s.count;
    s.total_ns += e.duration_ns;
    s.tids.insert(e.tid);
    s.min_depth = std::min(s.min_depth, e.depth);
    s.durations_ns.push_back(e.duration_ns);
    if (e.has_perf) {
      ++s.hw_spans;
      s.cycles += e.hw.cycles;
      s.instructions += e.hw.instructions;
      s.cache_misses += e.hw.cache_misses;
      s.branch_misses += e.hw.branch_misses;
    }
  }
  return stages;
}

// --- Prometheus helpers ----------------------------------------------------

/// Metric names already match [a-zA-Z_][a-zA-Z0-9_]*; label values need
/// escaping of backslash, double-quote and newline per the text format.
void prom_label_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *s;
    }
  }
}

void prom_header(std::string& out, const std::string& full_name,
                 const char* help, const char* type) {
  out += "# HELP " + full_name + " ";
  out += help;
  out += "\n# TYPE " + full_name + " ";
  out += type;
  out += '\n';
}

void prom_stage_sample(std::string& out, const std::string& full_name,
                       const std::string& stage, const std::string& value) {
  out += full_name + "{stage=\"";
  prom_label_escaped(out, stage.c_str());
  out += "\"} " + value + '\n';
}

}  // namespace

std::string chrome_trace_json(const Report& report) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  std::set<std::uint32_t> tids;
  for (const SpanEvent& e : report.events) tids.insert(e.tid);
  for (std::uint32_t tid : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" +
           (tid == 0 ? std::string("wavesz-main")
                     : "wavesz-worker-" + std::to_string(tid)) +
           "\"}}";
  }
  for (const SpanEvent& e : report.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    // ts/dur are microseconds by spec; keep ns resolution as fractions.
    out += "\",\"cat\":\"wavesz\",\"ph\":\"X\",\"ts\":" +
           fmt("%.3f", static_cast<double>(e.start_ns) / 1e3) +
           ",\"dur\":" +
           fmt("%.3f", static_cast<double>(e.duration_ns) / 1e3) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"args\":{\"depth\":" + std::to_string(e.depth);
    if (e.has_perf) {
      out += ",\"cycles\":" + u64s(e.hw.cycles) +
             ",\"instructions\":" + u64s(e.hw.instructions) +
             ",\"cache_misses\":" + u64s(e.hw.cache_misses) +
             ",\"branch_misses\":" + u64s(e.hw.branch_misses);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string stats_json(const Report& report) {
  auto stages = aggregate(report);
  std::string out = "{\"wall_ms\":" +
                    fmt("%.3f", static_cast<double>(report.wall_ns) / 1e6) +
                    ",\"dropped_events\":" +
                    std::to_string(report.dropped_events) + ",\"stages\":[";
  bool first = true;
  for (auto& [name, s] : stages) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, name.c_str());
    out += "\",\"count\":" + std::to_string(s.count) + ",\"total_ms\":" +
           fmt("%.3f", static_cast<double>(s.total_ns) / 1e6) +
           ",\"mean_us\":" +
           fmt("%.3f", static_cast<double>(s.total_ns) / 1e3 /
                           static_cast<double>(s.count)) +
           ",\"p50_us\":" +
           fmt("%.3f", static_cast<double>(s.duration_percentile(0.50)) / 1e3) +
           ",\"p90_us\":" +
           fmt("%.3f", static_cast<double>(s.duration_percentile(0.90)) / 1e3) +
           ",\"p99_us\":" +
           fmt("%.3f", static_cast<double>(s.duration_percentile(0.99)) / 1e3) +
           ",\"max_us\":" +
           fmt("%.3f", static_cast<double>(s.duration_percentile(1.0)) / 1e3) +
           ",\"threads\":" + std::to_string(s.tids.size());
    if (s.hw_spans > 0) {
      out += ",\"hw_spans\":" + u64s(s.hw_spans) +
             ",\"cycles\":" + u64s(s.cycles) +
             ",\"instructions\":" + u64s(s.instructions) +
             ",\"cache_misses\":" + u64s(s.cache_misses) +
             ",\"branch_misses\":" + u64s(s.branch_misses) + ",\"ipc\":" +
             fmt("%.3f", s.cycles > 0
                             ? static_cast<double>(s.instructions) /
                                   static_cast<double>(s.cycles)
                             : 0.0);
    }
    out += "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramSnapshot& h : report.histograms) {
    if (h.count == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, h.name);
    out += "\",\"unit\":\"";
    append_escaped(out, h.unit);
    out += "\",\"count\":" + u64s(h.count) + ",\"sum\":" + u64s(h.sum) +
           ",\"min\":" + u64s(h.min) + ",\"max\":" + u64s(h.max) +
           ",\"p50\":" + u64s(h.percentile(0.50)) +
           ",\"p90\":" + u64s(h.percentile(0.90)) +
           ",\"p99\":" + u64s(h.percentile(0.99)) + "}";
  }
  out += "],\"counters\":{";
  first = true;
  for (const CounterValue& c : report.counters) {
    if (!first) out += ',';
    first = false;
    out += "\"";
    append_escaped(out, c.name);
    out += "\":" + std::to_string(c.value);
  }
  out += "}}";
  return out;
}

std::string summary_table(const Report& report) {
  auto stages = aggregate(report);
  // Sort top-level stages before nested ones, then by total time.
  std::vector<std::pair<std::string, StageStat>> rows(stages.begin(),
                                                      stages.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.min_depth != b.second.min_depth) {
      return a.second.min_depth < b.second.min_depth;
    }
    return a.second.total_ns > b.second.total_ns;
  });
  const double wall_ms = static_cast<double>(report.wall_ns) / 1e6;
  char line[200];
  std::string out;
  std::snprintf(line, sizeof(line), "telemetry: %.3f ms wall, %zu spans\n",
                wall_ms, report.events.size());
  out += line;
  std::snprintf(line, sizeof(line),
                "  %-24s %8s %12s %8s %10s %10s %8s\n", "stage", "calls",
                "total ms", "% wall", "p50 us", "p99 us", "threads");
  out += line;
  for (auto& [name, s] : rows) {
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    std::snprintf(line, sizeof(line),
                  "  %-24s %8llu %12.3f %7.1f%% %10.1f %10.1f %8zu\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  total_ms, wall_ms > 0.0 ? 100.0 * total_ms / wall_ms : 0.0,
                  static_cast<double>(s.duration_percentile(0.50)) / 1e3,
                  static_cast<double>(s.duration_percentile(0.99)) / 1e3,
                  s.tids.size());
    out += line;
  }
  bool any_histo = false;
  for (const HistogramSnapshot& h : report.histograms) {
    if (h.count == 0) continue;
    if (!any_histo) {
      std::snprintf(line, sizeof(line), "  %-24s %8s %12s %12s %12s %12s\n",
                    "histogram", "count", "p50", "p90", "p99", "max");
      out += line;
      any_histo = true;
    }
    std::snprintf(line, sizeof(line),
                  "    %-22s %8llu %12llu %12llu %12llu %12llu\n", h.name,
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.percentile(0.50)),
                  static_cast<unsigned long long>(h.percentile(0.90)),
                  static_cast<unsigned long long>(h.percentile(0.99)),
                  static_cast<unsigned long long>(h.max));
    out += line;
  }
  bool any_hw = false;
  for (auto& [name, s] : rows) {
    if (s.hw_spans == 0 || s.instructions == 0) continue;
    if (!any_hw) {
      std::snprintf(line, sizeof(line), "  %-24s %8s %12s %12s %12s\n",
                    "hw counters", "IPC", "Mcycles", "cm/kI", "bm/kI");
      out += line;
      any_hw = true;
    }
    const double kilo_instr = static_cast<double>(s.instructions) / 1e3;
    std::snprintf(line, sizeof(line),
                  "    %-22s %8.2f %12.1f %12.3f %12.3f\n", name.c_str(),
                  static_cast<double>(s.instructions) /
                      static_cast<double>(s.cycles),
                  static_cast<double>(s.cycles) / 1e6,
                  static_cast<double>(s.cache_misses) / kilo_instr,
                  static_cast<double>(s.branch_misses) / kilo_instr);
    out += line;
  }
  bool any = false;
  for (const CounterValue& c : report.counters) {
    if (c.value == 0) continue;
    if (!any) {
      out += "  counters:\n";
      any = true;
    }
    std::snprintf(line, sizeof(line), "    %-24s %llu\n", c.name,
                  static_cast<unsigned long long>(c.value));
    out += line;
  }
  if (report.dropped_events > 0) {
    std::snprintf(line, sizeof(line),
                  "  (%llu spans dropped: ring buffer full)\n",
                  static_cast<unsigned long long>(report.dropped_events));
    out += line;
  }
  return out;
}

std::string prometheus_text(const Report& report) {
  const std::string prefix = kMetricPrefix;
  std::string out;
  out.reserve(4096);

  prom_header(out, prefix + "wall_seconds",
              "telemetry session duration", "gauge");
  out += prefix + "wall_seconds " +
         fmt("%.9g", static_cast<double>(report.wall_ns) / 1e9) + '\n';

  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    const MetricInfo& info = counter_info(static_cast<Counter>(i));
    const std::string full = prefix + info.name + "_total";
    prom_header(out, full, info.help, "counter");
    out += full + ' ' + u64s(report.counters[i].value) + '\n';
  }

  auto stages = aggregate(report);
  if (!stages.empty()) {
    const std::string secs = prefix + "stage_seconds_total";
    prom_header(out, secs, "wall time spent in each pipeline stage",
                "counter");
    for (auto& [name, s] : stages) {
      prom_stage_sample(out, secs, name,
                        fmt("%.9g", static_cast<double>(s.total_ns) / 1e9));
    }
    const std::string calls = prefix + "stage_calls_total";
    prom_header(out, calls, "span count per pipeline stage", "counter");
    for (auto& [name, s] : stages) {
      prom_stage_sample(out, calls, name, u64s(s.count));
    }
    bool any_hw = false;
    for (auto& [name, s] : stages) any_hw = any_hw || s.hw_spans > 0;
    if (any_hw) {
      struct HwSeries {
        const char* suffix;
        const char* help;
        std::uint64_t StageStat::* member;
      };
      static constexpr HwSeries kHwSeries[] = {
          {"stage_cycles_total", "CPU cycles per stage (sampled spans)",
           &StageStat::cycles},
          {"stage_instructions_total",
           "retired instructions per stage (sampled spans)",
           &StageStat::instructions},
          {"stage_cache_misses_total",
           "cache misses per stage (sampled spans)",
           &StageStat::cache_misses},
          {"stage_branch_misses_total",
           "branch misses per stage (sampled spans)",
           &StageStat::branch_misses},
      };
      for (const HwSeries& series : kHwSeries) {
        const std::string full = prefix + series.suffix;
        prom_header(out, full, series.help, "counter");
        for (auto& [name, s] : stages) {
          if (s.hw_spans == 0) continue;
          prom_stage_sample(out, full, name, u64s(s.*(series.member)));
        }
      }
    }
  }

  for (const HistogramSnapshot& h : report.histograms) {
    if (h.name == nullptr) continue;
    const std::string full = prefix + h.name;
    prom_header(out, full, h.help, "histogram");
    // Cumulative buckets over the non-empty histogram buckets: `le` values
    // are the log-linear bucket upper bounds, strictly increasing, and the
    // +Inf bucket always equals _count as the format requires.
    std::uint64_t cumulative = 0;
    for (std::uint32_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += full + "_bucket{le=\"" + u64s(histo_bucket_upper(b)) + "\"} " +
             u64s(cumulative) + '\n';
    }
    out += full + "_bucket{le=\"+Inf\"} " + u64s(h.count) + '\n';
    out += full + "_sum " + u64s(h.sum) + '\n';
    out += full + "_count " + u64s(h.count) + '\n';
  }
  return out;
}

}  // namespace wavesz::telemetry
