#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wavesz::telemetry {
namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

/// Aggregate view of every span with the same name.
struct StageStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::set<std::uint32_t> tids;
  std::uint32_t min_depth = ~0u;
};

std::map<std::string, StageStat> aggregate(const Report& report) {
  std::map<std::string, StageStat> stages;
  for (const SpanEvent& e : report.events) {
    StageStat& s = stages[e.name];
    ++s.count;
    s.total_ns += e.duration_ns;
    s.tids.insert(e.tid);
    s.min_depth = std::min(s.min_depth, e.depth);
  }
  return stages;
}

}  // namespace

std::string chrome_trace_json(const Report& report) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  std::set<std::uint32_t> tids;
  for (const SpanEvent& e : report.events) tids.insert(e.tid);
  for (std::uint32_t tid : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" +
           (tid == 0 ? std::string("wavesz-main")
                     : "wavesz-worker-" + std::to_string(tid)) +
           "\"}}";
  }
  for (const SpanEvent& e : report.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    // ts/dur are microseconds by spec; keep ns resolution as fractions.
    out += "\",\"cat\":\"wavesz\",\"ph\":\"X\",\"ts\":" +
           fmt("%.3f", static_cast<double>(e.start_ns) / 1e3) +
           ",\"dur\":" +
           fmt("%.3f", static_cast<double>(e.duration_ns) / 1e3) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"args\":{\"depth\":" + std::to_string(e.depth) + "}}";
  }
  out += "]}";
  return out;
}

std::string stats_json(const Report& report) {
  const auto stages = aggregate(report);
  std::string out = "{\"wall_ms\":" +
                    fmt("%.3f", static_cast<double>(report.wall_ns) / 1e6) +
                    ",\"dropped_events\":" +
                    std::to_string(report.dropped_events) + ",\"stages\":[";
  bool first = true;
  for (const auto& [name, s] : stages) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, name.c_str());
    out += "\",\"count\":" + std::to_string(s.count) + ",\"total_ms\":" +
           fmt("%.3f", static_cast<double>(s.total_ns) / 1e6) +
           ",\"mean_us\":" +
           fmt("%.3f", static_cast<double>(s.total_ns) / 1e3 /
                           static_cast<double>(s.count)) +
           ",\"threads\":" + std::to_string(s.tids.size()) + "}";
  }
  out += "],\"counters\":{";
  first = true;
  for (const CounterValue& c : report.counters) {
    if (!first) out += ',';
    first = false;
    out += "\"";
    append_escaped(out, c.name);
    out += "\":" + std::to_string(c.value);
  }
  out += "}}";
  return out;
}

std::string summary_table(const Report& report) {
  const auto stages = aggregate(report);
  // Sort top-level stages before nested ones, then by total time.
  std::vector<std::pair<std::string, StageStat>> rows(stages.begin(),
                                                      stages.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.min_depth != b.second.min_depth) {
      return a.second.min_depth < b.second.min_depth;
    }
    return a.second.total_ns > b.second.total_ns;
  });
  const double wall_ms = static_cast<double>(report.wall_ns) / 1e6;
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "telemetry: %.3f ms wall, %zu spans\n",
                wall_ms, report.events.size());
  out += line;
  std::snprintf(line, sizeof(line), "  %-24s %8s %12s %8s %8s\n", "stage",
                "calls", "total ms", "% wall", "threads");
  out += line;
  for (const auto& [name, s] : rows) {
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    std::snprintf(line, sizeof(line), "  %-24s %8llu %12.3f %7.1f%% %8zu\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  total_ms, wall_ms > 0.0 ? 100.0 * total_ms / wall_ms : 0.0,
                  s.tids.size());
    out += line;
  }
  bool any = false;
  for (const CounterValue& c : report.counters) {
    if (c.value == 0) continue;
    if (!any) {
      out += "  counters:\n";
      any = true;
    }
    std::snprintf(line, sizeof(line), "    %-24s %llu\n", c.name,
                  static_cast<unsigned long long>(c.value));
    out += line;
  }
  if (report.dropped_events > 0) {
    std::snprintf(line, sizeof(line),
                  "  (%llu spans dropped: ring buffer full)\n",
                  static_cast<unsigned long long>(report.dropped_events));
    out += line;
  }
  return out;
}

}  // namespace wavesz::telemetry
