// Central registry of telemetry metrics: counters and histograms.
//
// This is the metric-side twin of span_names.hpp. Every counter and
// histogram the pipeline records is declared here, keyed by enum (so a
// typo does not compile) and carrying its machine name, unit, and help
// string in one place. The exporters — stats JSON, terminal summary, and
// the Prometheus text exposition — read their metric names and metadata
// exclusively from these tables; tools/wavesz_lint.py rule `metric-names`
// rejects metric name literals anywhere else in src/.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wavesz::telemetry {

/// Prefix for every exposed Prometheus series ("wavesz_" + metric name).
/// Lives here so the exposition namespace is part of the registry, not an
/// exporter implementation detail.
inline constexpr const char* kMetricPrefix = "wavesz_";

/// Name, unit and help text for one metric. `name` is the stable
/// machine-readable identifier (snake_case, no prefix); `unit` is
/// free-form ("bytes", "ns", "points", ...); `help` becomes the
/// Prometheus # HELP line.
struct MetricInfo {
  const char* name;
  const char* unit;
  const char* help;
};

/// Fixed counter registry: adds are single relaxed atomic increments, so
/// the set is an enum rather than a string-keyed map.
enum class Counter : std::uint32_t {
  CodeBytesIn = 0,     ///< plain (pre-DEFLATE) bytes of the code section
  CodeBytesOut,        ///< gzip bytes of the code section
  UnpredBytesIn,       ///< plain bytes of the unpredictable/verbatim section
  UnpredBytesOut,      ///< gzip bytes of the unpredictable/verbatim section
  QuantPredictable,    ///< points whose quantization hit (code != 0)
  QuantUnpredictable,  ///< points falling back to the unpredictable stream
  HuffmanTableBuildNs, ///< wall time spent building Huffman code tables
  DeflateChunks,       ///< DEFLATE chunks encoded (1 per input when serial)
  PqdDiagonalBatches,  ///< anti-diagonal hyperplane batches swept
  OmpSlabs,            ///< slabs processed by compress_omp/decompress_omp
  StreamChunks,        ///< chunks emitted/decoded by the streaming API
  InflateBlocks,       ///< DEFLATE blocks inflated (fast or reference path)
  CrcBytes,            ///< bytes checksummed while verifying gzip members
  IndexChunksDecoded,  ///< v2 chunk-index chunks decoded (parallel or serial)
  RegionBytesRead,     ///< compressed bytes consumed by decode_region()
  SpansDropped,        ///< spans lost to full ring buffers (set at drain)
  PipelineSlabs,       ///< slabs retired by the staged pipeline executor
  PipelineStallNs,     ///< wall ns pipeline stages spent stalled (bubbles)
  kCount
};

inline constexpr MetricInfo kCounterInfo[] = {
    {"code_bytes_in", "bytes",
     "plain (pre-DEFLATE) bytes of the code section"},
    {"code_bytes_out", "bytes", "gzip bytes of the code section"},
    {"unpred_bytes_in", "bytes",
     "plain bytes of the unpredictable/verbatim section"},
    {"unpred_bytes_out", "bytes",
     "gzip bytes of the unpredictable/verbatim section"},
    {"quant_predictable", "points",
     "points whose quantization hit (code != 0)"},
    {"quant_unpredictable", "points",
     "points falling back to the unpredictable stream"},
    {"huffman_table_ns", "ns",
     "wall time spent building Huffman code tables"},
    {"deflate_chunks", "chunks", "DEFLATE chunks encoded"},
    {"pqd_diagonal_batches", "batches",
     "anti-diagonal hyperplane batches swept"},
    {"omp_slabs", "slabs",
     "slabs processed by compress_omp/decompress_omp"},
    {"stream_chunks", "chunks",
     "chunks emitted/decoded by the streaming API"},
    {"inflate_blocks", "blocks",
     "DEFLATE blocks inflated (fast or reference path)"},
    {"crc_bytes", "bytes",
     "bytes checksummed while verifying gzip members"},
    {"index_chunks_decoded", "chunks",
     "v2 chunk-index chunks decoded (parallel or serial)"},
    {"region_bytes_read", "bytes",
     "compressed bytes consumed by decode_region()"},
    {"spans_dropped", "spans",
     "telemetry spans lost to full per-thread ring buffers"},
    {"pipeline_slabs", "slabs",
     "slabs retired by the staged pipeline executor"},
    {"pipeline_stall_ns", "ns",
     "wall time pipeline stages spent stalled waiting for work or slots"},
};
static_assert(sizeof(kCounterInfo) / sizeof(kCounterInfo[0]) ==
                  static_cast<std::size_t>(Counter::kCount),
              "kCounterInfo out of sync with Counter");

inline constexpr const MetricInfo& counter_info(Counter c) {
  return kCounterInfo[static_cast<std::size_t>(c)];
}

/// Distribution metrics: each is a lock-free log-linear histogram sharded
/// per thread (telemetry/histogram.hpp) and merged when a Session stops.
/// Values are unsigned integers in the metric's unit; non-integer
/// quantities are recorded pre-scaled (see CompressRatioMilli).
enum class Histo : std::uint32_t {
  CompressNs = 0,      ///< wall ns per top-level compress call (any codec)
  DecompressNs,        ///< wall ns per top-level decompress call
  DeflateChunkBytes,   ///< plain input bytes per DEFLATE chunk task
  StreamChunkBytes,    ///< raw field bytes per streaming-API chunk
  CompressRatioMilli,  ///< per-call compression ratio x 1000
  StreamChunkNs,       ///< wall ns per streaming-API chunk (dispatch→emit)
  kCount
};

inline constexpr MetricInfo kHistoInfo[] = {
    {"compress_ns", "ns", "wall time per top-level compress call"},
    {"decompress_ns", "ns", "wall time per top-level decompress call"},
    {"deflate_chunk_bytes", "bytes",
     "plain input bytes per DEFLATE chunk task"},
    {"stream_chunk_bytes", "bytes",
     "raw field bytes per streaming-API chunk"},
    {"compress_ratio_milli", "ratio_x1000",
     "per-call compression ratio, scaled by 1000"},
    {"stream_chunk_ns", "ns",
     "wall time per streaming-API chunk from dispatch to emitted bytes"},
};
static_assert(sizeof(kHistoInfo) / sizeof(kHistoInfo[0]) ==
                  static_cast<std::size_t>(Histo::kCount),
              "kHistoInfo out of sync with Histo");

inline constexpr const MetricInfo& histo_info(Histo h) {
  return kHistoInfo[static_cast<std::size_t>(h)];
}

}  // namespace wavesz::telemetry
