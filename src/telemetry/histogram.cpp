#include "telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace wavesz::telemetry {

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kHistoBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::clamp(histo_bucket_upper(i), min, max);
    }
  }
  return max;
}

void HistogramSnapshot::merge_shard(const HistoShard& shard) {
  const std::uint64_t shard_count =
      shard.count.load(std::memory_order_relaxed);
  if (shard_count == 0) return;
  if (buckets.empty()) buckets.assign(kHistoBuckets, 0);
  for (std::uint32_t i = 0; i < kHistoBuckets; ++i) {
    buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
  }
  const std::uint64_t shard_min = shard.min.load(std::memory_order_relaxed);
  const std::uint64_t shard_max = shard.max.load(std::memory_order_relaxed);
  min = count == 0 ? shard_min : std::min(min, shard_min);
  max = std::max(max, shard_max);
  count += shard_count;
  sum += shard.sum.load(std::memory_order_relaxed);
}

}  // namespace wavesz::telemetry
