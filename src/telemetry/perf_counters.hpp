// Hardware performance-counter sampling via perf_event_open.
//
// On Linux each sampling thread lazily opens one counter group (cycles as
// leader; instructions, cache-misses, branch-misses as siblings, read with
// a single PERF_FORMAT_GROUP read() so the four values are mutually
// consistent). Everywhere else — and on Linux hosts where
// perf_event_paranoid or a container seccomp policy denies the syscall —
// the subsystem degrades to a guaranteed no-op: perf_available() is false,
// perf_now() returns an invalid reading, and spans simply carry no
// hardware data. Nothing throws and no diagnostic is required to proceed.
//
// Sampling is opt-in (set_perf_enabled) because each reading is a syscall
// (~1 us): it is attached only to the coarse pipeline-stage spans, never
// to per-chunk or per-block ones, and only when a caller asked for it
// (CLI --perf, bench --perf).
#pragma once

#include <cstdint>

namespace wavesz::telemetry {

/// One snapshot of the calling thread's counter group. `valid` is false
/// when sampling is disabled or the counters could not be opened.
struct PerfReading {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;
};

/// Component-wise delta (b - a) of two readings from the same thread.
/// Saturates at zero instead of wrapping: under counter multiplexing the
/// kernel can report a later scaled estimate below an earlier one, and a
/// wrapped 2^64-ish delta would poison every aggregate downstream.
inline PerfReading perf_delta(const PerfReading& a, const PerfReading& b) {
  PerfReading d;
  d.valid = a.valid && b.valid;
  if (d.valid) {
    const auto sat = [](std::uint64_t lo, std::uint64_t hi) {
      return hi >= lo ? hi - lo : 0;
    };
    d.cycles = sat(a.cycles, b.cycles);
    d.instructions = sat(a.instructions, b.instructions);
    d.cache_misses = sat(a.cache_misses, b.cache_misses);
    d.branch_misses = sat(a.branch_misses, b.branch_misses);
  }
  return d;
}

/// True iff this process can open hardware counters (probed once, cached).
bool perf_available() noexcept;

/// Request (or drop) hardware sampling. Takes effect only where counters
/// are available; calling it is always safe.
void set_perf_enabled(bool on) noexcept;

/// True iff sampling was requested AND counters are available: the single
/// cheap gate every sampling site checks.
bool perf_enabled() noexcept;

/// Read the calling thread's counter group now. Invalid (all zeros,
/// valid == false) unless perf_enabled().
PerfReading perf_now() noexcept;

namespace detail {

/// Test hook: force perf_available() to report false (and perf_enabled()
/// with it), regardless of the host, so the fallback path is exercisable
/// on machines where counters do work.
void force_perf_unavailable_for_test(bool forced) noexcept;

}  // namespace detail

}  // namespace wavesz::telemetry
