// Fixed-bin histograms for the error-distribution figures (paper Figs. 1, 9).
//
// The benches render these as ASCII bar charts and as CSV series so the
// distributions can be compared against the paper's plots.
//
// Lives in telemetry/ (not metrics/) since PR 10: the tree keeps one
// histogram subsystem, and the log-linear production histogram already
// owns the `telemetry/histogram.hpp` basename. The `header-shadow` lint
// rule now rejects a header basename reused across src/ subsystems, which
// is exactly the metrics/histogram.hpp vs telemetry/histogram.hpp
// collision this move resolved.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace wavesz::telemetry {

class FixedBinHistogram {
 public:
  /// Bins cover [lo, hi) uniformly; values outside are counted in
  /// underflow/overflow.
  FixedBinHistogram(double lo, double hi, std::size_t bins);

  void add(double v);
  void add(std::span<const float> values);

  /// Histogram of pairwise differences a[i] - b[i].
  static FixedBinHistogram of_errors(std::span<const float> a,
                             std::span<const float> b, double lo, double hi,
                             std::size_t bins);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const;
  double bin_center(std::size_t bin) const;
  double bin_width() const { return width_; }

  /// Fraction of samples inside [-x, x] (for "codes cover >99%" style claims).
  double fraction_within(double x) const;

  /// Simple ASCII rendering: one row per bin, bar scaled to `max_width`.
  std::string ascii(int max_width = 60) const;

  /// CSV rows "center,count".
  std::string csv() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace wavesz::telemetry
