// Central registry of telemetry span names.
//
// Span names are recorded by pointer (telemetry::Span keeps no copy), feed
// the Chrome-trace and stats exporters verbatim, and are matched by name in
// tests and dashboards — a typo in one call site silently forks a stage into
// two trace rows. Every `telemetry::Span` construction site in src/ must
// therefore name its stage through one of these constants; stray string
// literals are rejected by tools/wavesz_lint.py rule `span-names`. Counters
// are already enum-keyed (telemetry::Counter); this file is the equivalent
// single source of truth for spans.
#pragma once

namespace wavesz::telemetry::spans {

// SZ-1.4 pipeline (src/sz/compressor.cpp).
inline constexpr const char* kSzCompress = "sz::compress";
inline constexpr const char* kSzDecompress = "sz::decompress";
inline constexpr const char* kValueRange = "value_range";
inline constexpr const char* kPqdWavefront = "pqd.wavefront";
inline constexpr const char* kPqdRaster = "pqd.raster";
inline constexpr const char* kEncodeCodes = "encode.codes";
inline constexpr const char* kEncodeUnpred = "encode.unpred";
inline constexpr const char* kDecodeCodes = "decode.codes";
inline constexpr const char* kDecodeUnpred = "decode.unpred";
inline constexpr const char* kDeflateSerialize = "deflate+serialize";
inline constexpr const char* kReconstructWavefront = "reconstruct.wavefront";
inline constexpr const char* kReconstructRaster = "reconstruct.raster";

// Customized Huffman coder (src/sz/huffman_codec.cpp).
inline constexpr const char* kHuffmanTable = "huffman.table";
inline constexpr const char* kHuffmanPack = "huffman.pack";
inline constexpr const char* kHuffmanDecode = "huffman.decode";
inline constexpr const char* kHuffmanDecodeIndexed = "huffman.decode_indexed";

// Container v2 chunk-index decode paths (src/sz/compressor.cpp,
// src/core/wavesz.cpp, src/core/stream.cpp).
inline constexpr const char* kDecodeParallel = "decode.parallel";
inline constexpr const char* kDecodeRegion = "decode.region";
inline constexpr const char* kInflatePrefix = "inflate.prefix";
inline constexpr const char* kStreamDecodeParallel = "stream.decode_parallel";

// OpenMP slab engine (src/sz/omp.cpp).
inline constexpr const char* kSzCompressOmp = "sz::compress_omp";
inline constexpr const char* kSzDecompressOmp = "sz::decompress_omp";
inline constexpr const char* kSlabCompress = "slab.compress";
inline constexpr const char* kSlabDecompress = "slab.decompress";

// DEFLATE back end (src/deflate/).
inline constexpr const char* kDeflateChunk = "deflate.chunk";
inline constexpr const char* kDeflateStitch = "deflate.stitch";
inline constexpr const char* kInflateBlock = "inflate.block";
inline constexpr const char* kCrc32 = "crc32";

// waveSZ pipeline + streaming API (src/core/).
inline constexpr const char* kWaveCompress = "wave::compress";
inline constexpr const char* kWaveDecompress = "wave::decompress";
inline constexpr const char* kWavePqd = "wave.pqd";
inline constexpr const char* kWavePqd3d = "wave.pqd3d";
inline constexpr const char* kWaveReconstruct = "wave.reconstruct";
inline constexpr const char* kStreamChunk = "stream.chunk";
inline constexpr const char* kStreamDecodeChunk = "stream.decode_chunk";

// Staged slab pipeline (src/core/pipeline.cpp and its users). The three
// slab spans name the stages of the head/body/tail schedule; kPipelineStall
// wraps only the waits where a stage ran dry (ring empty) or acquire()
// found every slot in flight — the bubbles the overlap is meant to hide.
inline constexpr const char* kPipelineSlabPqd = "pipeline.slab.pqd";
inline constexpr const char* kPipelineSlabEntropy = "pipeline.slab.entropy";
inline constexpr const char* kPipelineSlabFrame = "pipeline.slab.frame";
inline constexpr const char* kPipelineStall = "pipeline.stall";

}  // namespace wavesz::telemetry::spans
