// Lock-free log-linear histograms (HDR-style bucketing).
//
// Bucketing: values below 2^kHistoSubBits land in exact unit buckets; every
// larger power-of-two octave is split into kHistoSub linear sub-buckets, so
// the relative bucket width — and therefore the worst-case quantile error —
// is bounded by 1/kHistoSub (3.125% at the default 32 sub-buckets) across
// the full uint64 range. Bucket index math is branch-light (one bit_width)
// and shared verbatim between the recorder and the test oracles.
//
// Concurrency model (the same one the span ring buffers use): each thread
// records into its own HistoShard — plain relaxed atomic increments with a
// single writer, so there is no contention and no locking on the hot path —
// and Session::stop() merges every shard into a HistogramSnapshot under the
// registry mutex. Relaxed atomics (not plain loads) keep the concurrent
// drain TSan-clean.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wavesz::telemetry {

inline constexpr std::uint32_t kHistoSubBits = 5;
inline constexpr std::uint32_t kHistoSub = 1u << kHistoSubBits;  // 32

/// Exact buckets for [0, kHistoSub), then kHistoSub sub-buckets for each of
/// the remaining 64 - kHistoSubBits octaves: 60 * 32 = 1920 buckets total.
inline constexpr std::uint32_t kHistoBuckets =
    (64 - kHistoSubBits + 1) * kHistoSub;

/// Bucket index of a value. Monotone in `v`; exact below kHistoSub.
constexpr std::uint32_t histo_bucket(std::uint64_t v) noexcept {
  if (v < kHistoSub) return static_cast<std::uint32_t>(v);
  // Normalize the top kHistoSubBits+1 bits into [kHistoSub, 2*kHistoSub):
  // the shift count doubles per octave, the mantissa picks the sub-bucket.
  const int shift =
      static_cast<int>(std::bit_width(v)) - static_cast<int>(kHistoSubBits) - 1;
  const std::uint64_t mantissa = v >> shift;
  return kHistoSub * static_cast<std::uint32_t>(shift) +
         static_cast<std::uint32_t>(mantissa);
}

/// Smallest value mapping to bucket `idx`.
constexpr std::uint64_t histo_bucket_lower(std::uint32_t idx) noexcept {
  if (idx < kHistoSub) return idx;
  const std::uint32_t shift = idx / kHistoSub - 1;
  const std::uint64_t mantissa = idx - shift * kHistoSub;
  return mantissa << shift;
}

/// Largest value mapping to bucket `idx` (wraps to uint64 max on the last
/// bucket, where (mantissa+1) << shift overflows to exactly 2^64).
constexpr std::uint64_t histo_bucket_upper(std::uint32_t idx) noexcept {
  if (idx < kHistoSub) return idx;
  const std::uint32_t shift = idx / kHistoSub - 1;
  const std::uint64_t mantissa = idx - shift * kHistoSub;
  return ((mantissa + 1) << shift) - 1;
}

/// One thread's shard of one histogram. Single writer; merged concurrently
/// by the session drain, hence the relaxed atomics. record() is the hot
/// path: one bucket increment plus count/sum/min/max bookkeeping, no loops,
/// no locks, no allocation.
struct HistoShard {
  std::array<std::atomic<std::uint64_t>, kHistoBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t v) noexcept {
    buckets[histo_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    // Single writer: load+store is race-free for this thread; the drain
    // only ever reads, so relaxed visibility is all it needs.
    if (v < min.load(std::memory_order_relaxed)) {
      min.store(v, std::memory_order_relaxed);
    }
    if (v > max.load(std::memory_order_relaxed)) {
      max.store(v, std::memory_order_relaxed);
    }
    count.fetch_add(1, std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    min.store(std::numeric_limits<std::uint64_t>::max(),
              std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
  }
};

/// Merged, immutable view of one histogram across every thread shard.
/// Bucket counts are bit-exact sums of the shard counts; only the quantile
/// *values* carry the 1/kHistoSub bucketing error.
struct HistogramSnapshot {
  const char* name = nullptr;
  const char* unit = nullptr;
  const char* help = nullptr;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< size kHistoBuckets (empty if unused)

  /// Value at quantile q in [0, 1]: upper bound of the bucket holding the
  /// ceil(q * count)-th recording, clamped to [min, max]. Returns 0 when
  /// the histogram is empty.
  std::uint64_t percentile(double q) const;

  /// Sum the shard counts of `shard` into this snapshot.
  void merge_shard(const HistoShard& shard);
};

}  // namespace wavesz::telemetry
