// Stage-level telemetry: RAII tracing spans and named pipeline counters.
//
// Design constraints (the same ones the paper's stage-budget argument puts
// on any measurement of it):
//   * The *disabled* state is a guaranteed no-op: one relaxed atomic load
//     and a predictable branch per span or counter touch, zero allocations,
//     zero locks. Compression results are bit-identical either way.
//   * The *enabled* hot path takes no locks: every thread appends complete
//     spans to its own fixed-capacity ring buffer (single-writer, published
//     with a release store); the only mutex is taken once per thread, at
//     ring registration, and once per session at drain time.
//   * Span granularity is the pipeline stage (PQD sweep, Huffman table
//     build, DEFLATE chunk, slab, ...), never the point loop, so enabling
//     telemetry costs well under 1% of a compress call.
//
// Configure with -DWAVESZ_TELEMETRY=OFF to compile the subsystem out
// entirely (WAVESZ_TELEMETRY_DISABLED): Span/counter_add become empty
// inline functions and Session collects nothing, but the API keeps
// compiling so call sites need no #ifdefs.
//
// Usage:
//   telemetry::Session session;              // enables collection
//   ... sz::compress(...) ...                // instrumented internally
//   telemetry::Report r = session.stop();
//   write(out, telemetry::chrome_trace_json(r));   // Perfetto / about:tracing
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wavesz::telemetry {

/// Fixed counter registry: adds are single relaxed atomic increments, so
/// the set is an enum rather than a string-keyed map. Keep counter_name()
/// in telemetry.cpp in sync.
enum class Counter : std::uint32_t {
  CodeBytesIn = 0,     ///< plain (pre-DEFLATE) bytes of the code section
  CodeBytesOut,        ///< gzip bytes of the code section
  UnpredBytesIn,       ///< plain bytes of the unpredictable/verbatim section
  UnpredBytesOut,      ///< gzip bytes of the unpredictable/verbatim section
  QuantPredictable,    ///< points whose quantization hit (code != 0)
  QuantUnpredictable,  ///< points falling back to the unpredictable stream
  HuffmanTableBuildNs, ///< wall time spent building Huffman code tables
  DeflateChunks,       ///< DEFLATE chunks encoded (1 per input when serial)
  PqdDiagonalBatches,  ///< anti-diagonal hyperplane batches swept
  OmpSlabs,            ///< slabs processed by compress_omp/decompress_omp
  StreamChunks,        ///< chunks emitted/decoded by the streaming API
  InflateBlocks,       ///< DEFLATE blocks inflated (fast or reference path)
  CrcBytes,            ///< bytes checksummed while verifying gzip members
  IndexChunksDecoded,  ///< v2 chunk-index chunks decoded (parallel or serial)
  RegionBytesRead,     ///< compressed bytes consumed by decode_region()
  kCount
};

/// Stable machine-readable name of a counter ("code_bytes_in", ...).
const char* counter_name(Counter c);

namespace detail {

extern std::atomic<bool> g_enabled;

std::uint64_t now_ns() noexcept;

/// Note an opened span: bumps the calling thread's live nesting depth.
void span_open() noexcept;

/// Commit one complete span to the calling thread's ring buffer.
void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) noexcept;

void counter_add_enabled(Counter c, std::uint64_t delta) noexcept;

}  // namespace detail

/// True iff a Session is live (always false when compiled out). This is the
/// single branch every instrumentation site pays when telemetry is off.
inline bool enabled() noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Add `delta` to a counter; no-op unless a Session is live.
inline void counter_add(Counter c, std::uint64_t delta) noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
  (void)c;
  (void)delta;
#else
  if (enabled()) detail::counter_add_enabled(c, delta);
#endif
}

/// RAII scoped span. `name` must have static storage duration (use string
/// literals): only the pointer is recorded, never a copy.
class Span {
 public:
  explicit Span(const char* name) noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
    (void)name;
#else
    if (enabled()) {
      name_ = name;
      detail::span_open();
      t0_ = detail::now_ns();
    }
#endif
  }
  ~Span() {
#ifndef WAVESZ_TELEMETRY_DISABLED
    if (name_ != nullptr) detail::record_span(name_, t0_, detail::now_ns());
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef WAVESZ_TELEMETRY_DISABLED
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
#endif
};

/// One completed span, normalized to nanoseconds since the session started.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;    ///< dense per-process thread ordinal (0 = first)
  std::uint32_t depth = 0;  ///< nesting depth within its thread at open time
};

struct CounterValue {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

/// Everything a stopped Session collected. Feed to the exporters in
/// telemetry/export.hpp, or walk events/counters directly in tests.
struct Report {
  std::vector<SpanEvent> events;      ///< all threads, sorted by start_ns
  std::vector<CounterValue> counters; ///< every counter, zero or not
  std::uint64_t dropped_events = 0;   ///< spans lost to full ring buffers
  std::uint64_t wall_ns = 0;          ///< session duration

  std::uint64_t counter(Counter c) const;
};

/// Enables collection for its lifetime. Only one Session may be live at a
/// time (construction throws std::logic_error otherwise); counters and any
/// stale ring-buffer contents are reset on construction. When the subsystem
/// is compiled out the Session is inert and stop() returns an empty Report.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Disable collection and drain every thread's ring buffer. Idempotent;
  /// also called by the destructor (discarding the report) if needed.
  Report stop();

 private:
  bool active_ = false;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace wavesz::telemetry
