// Stage-level telemetry: RAII tracing spans and named pipeline counters.
//
// Design constraints (the same ones the paper's stage-budget argument puts
// on any measurement of it):
//   * The *disabled* state is a guaranteed no-op: one relaxed atomic load
//     and a predictable branch per span or counter touch, zero allocations,
//     zero locks. Compression results are bit-identical either way.
//   * The *enabled* hot path takes no locks: every thread appends complete
//     spans to its own fixed-capacity ring buffer (single-writer, published
//     with a release store); the only mutex is taken once per thread, at
//     ring registration, and once per session at drain time.
//   * Span granularity is the pipeline stage (PQD sweep, Huffman table
//     build, DEFLATE chunk, slab, ...), never the point loop, so enabling
//     telemetry costs well under 1% of a compress call.
//
// Configure with -DWAVESZ_TELEMETRY=OFF to compile the subsystem out
// entirely (WAVESZ_TELEMETRY_DISABLED): Span/counter_add become empty
// inline functions and Session collects nothing, but the API keeps
// compiling so call sites need no #ifdefs.
//
// Usage:
//   telemetry::Session session;              // enables collection
//   ... sz::compress(...) ...                // instrumented internally
//   telemetry::Report r = session.stop();
//   write(out, telemetry::chrome_trace_json(r));   // Perfetto / about:tracing
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/histogram.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/perf_counters.hpp"

namespace wavesz::telemetry {

/// Stable machine-readable name of a counter ("code_bytes_in", ...).
inline const char* counter_name(Counter c) { return counter_info(c).name; }

namespace detail {

extern std::atomic<bool> g_enabled;

std::uint64_t now_ns() noexcept;

/// Note an opened span: bumps the calling thread's live nesting depth.
void span_open() noexcept;

/// Commit one complete span to the calling thread's ring buffer.
void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) noexcept;

/// As record_span, additionally attaching hardware-counter deltas (may be
/// null) — selected coarse-stage spans only.
void record_span_hw(const char* name, std::uint64_t t0_ns,
                    std::uint64_t t1_ns, const PerfReading* hw) noexcept;

void counter_add_enabled(Counter c, std::uint64_t delta) noexcept;

/// Record one value into the calling thread's shard of histogram `h`.
void observe_enabled(Histo h, std::uint64_t value) noexcept;

}  // namespace detail

/// True iff a Session is live (always false when compiled out). This is the
/// single branch every instrumentation site pays when telemetry is off.
inline bool enabled() noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Add `delta` to a counter; no-op unless a Session is live.
inline void counter_add(Counter c, std::uint64_t delta) noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
  (void)c;
  (void)delta;
#else
  if (enabled()) detail::counter_add_enabled(c, delta);
#endif
}

/// Record one value into distribution metric `h`; no-op unless a Session
/// is live. Hot-path cost when on: one bucket index + a handful of relaxed
/// atomic adds into the calling thread's shard.
inline void observe(Histo h, std::uint64_t value) noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
  (void)h;
  (void)value;
#else
  if (enabled()) detail::observe_enabled(h, value);
#endif
}

/// Span construction option: also sample the hardware-counter group at
/// open/close and attach the deltas to the recorded span. Only meaningful
/// on coarse pipeline-stage spans (each sample is a syscall) and only
/// active when set_perf_enabled(true) and counters are available.
struct SampleHw {};
inline constexpr SampleHw kSampleHw{};

/// RAII scoped span. `name` must have static storage duration (use the
/// constants in span_names.hpp): only the pointer is recorded, never a
/// copy. The optional Histo also feeds the span's duration into that
/// distribution metric; the optional kSampleHw tag attaches hardware
/// counter deltas (see SampleHw).
class Span {
 public:
  explicit Span(const char* name) noexcept { open(name); }
  Span(const char* name, Histo duration_histo) noexcept {
    open(name);
#ifndef WAVESZ_TELEMETRY_DISABLED
    histo_ = duration_histo;
#else
    (void)duration_histo;
#endif
  }
  Span(const char* name, SampleHw) noexcept {
    open(name);
    sample_hw();
  }
  Span(const char* name, Histo duration_histo, SampleHw) noexcept {
    open(name);
#ifndef WAVESZ_TELEMETRY_DISABLED
    histo_ = duration_histo;
#else
    (void)duration_histo;
#endif
    sample_hw();
  }
  ~Span() {
#ifndef WAVESZ_TELEMETRY_DISABLED
    if (name_ != nullptr) {
      const std::uint64_t t1 = detail::now_ns();
      if (hw0_.valid) {
        const PerfReading d = perf_delta(hw0_, perf_now());
        detail::record_span_hw(name_, t0_, t1, d.valid ? &d : nullptr);
      } else {
        detail::record_span(name_, t0_, t1);
      }
      if (histo_ != Histo::kCount) {
        detail::observe_enabled(histo_, t1 - t0_);
      }
    }
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name) noexcept {
#ifdef WAVESZ_TELEMETRY_DISABLED
    (void)name;
#else
    if (enabled()) {
      name_ = name;
      detail::span_open();
      t0_ = detail::now_ns();
    }
#endif
  }
  void sample_hw() noexcept {
#ifndef WAVESZ_TELEMETRY_DISABLED
    if (name_ != nullptr && perf_enabled()) hw0_ = perf_now();
#endif
  }

#ifndef WAVESZ_TELEMETRY_DISABLED
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  Histo histo_ = Histo::kCount;
  PerfReading hw0_;
#endif
};

/// One completed span, normalized to nanoseconds since the session started.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;    ///< dense per-process thread ordinal (0 = first)
  std::uint32_t depth = 0;  ///< nesting depth within its thread at open time
  /// Hardware-counter deltas over the span (valid == has_perf); present
  /// only on kSampleHw spans when sampling is enabled and available.
  PerfReading hw;
  bool has_perf = false;
};

struct CounterValue {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

/// Everything a stopped Session collected. Feed to the exporters in
/// telemetry/export.hpp, or walk events/counters directly in tests.
struct Report {
  std::vector<SpanEvent> events;      ///< all threads, sorted by start_ns
  std::vector<CounterValue> counters; ///< every counter, zero or not
  /// Merged distribution metrics, indexed by Histo; always Histo::kCount
  /// entries with registry metadata filled in, empty buckets when unused.
  std::vector<HistogramSnapshot> histograms;
  std::uint64_t dropped_events = 0;   ///< spans lost to full ring buffers
  std::uint64_t wall_ns = 0;          ///< session duration

  std::uint64_t counter(Counter c) const;
  const HistogramSnapshot& histogram(Histo h) const;
};

/// Enables collection for its lifetime. Only one Session may be live at a
/// time (construction throws std::logic_error otherwise); counters and any
/// stale ring-buffer contents are reset on construction. When the subsystem
/// is compiled out the Session is inert and stop() returns an empty Report.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Disable collection and drain every thread's ring buffer. Idempotent;
  /// also called by the destructor (discarding the report) if needed.
  Report stop();

 private:
  bool active_ = false;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace wavesz::telemetry
