#include "telemetry/fixed_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/error.hpp"

namespace wavesz::telemetry {

FixedBinHistogram::FixedBinHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  WAVESZ_REQUIRE(hi > lo, "histogram range must be non-empty");
  WAVESZ_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void FixedBinHistogram::add(double v) {
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((v - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
    ++counts_[bin];
  }
}

void FixedBinHistogram::add(std::span<const float> values) {
  for (float v : values) add(static_cast<double>(v));
}

FixedBinHistogram FixedBinHistogram::of_errors(std::span<const float> a,
                               std::span<const float> b, double lo, double hi,
                               std::size_t bins) {
  WAVESZ_REQUIRE(a.size() == b.size(), "of_errors: length mismatch");
  FixedBinHistogram h(lo, hi, bins);
  for (std::size_t i = 0; i < a.size(); ++i) {
    h.add(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return h;
}

std::uint64_t FixedBinHistogram::total() const {
  std::uint64_t t = underflow_ + overflow_;
  for (auto c : counts_) t += c;
  return t;
}

double FixedBinHistogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double FixedBinHistogram::fraction_within(double x) const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  std::uint64_t inside = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = lo_ + static_cast<double>(i) * width_;
    const double hi = lo + width_;
    if (lo >= -x && hi <= x) inside += counts_[i];
  }
  return static_cast<double>(inside) / static_cast<double>(t);
}

std::string FixedBinHistogram::ascii(int max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int w = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        max_width);
    os << ' ';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+11.4g", bin_center(i));
    os << buf << " |" << std::string(static_cast<std::size_t>(w), '#')
       << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "  underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "  overflow:  " << overflow_ << '\n';
  return os.str();
}

std::string FixedBinHistogram::csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << bin_center(i) << ',' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace wavesz::telemetry
