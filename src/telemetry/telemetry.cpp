#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace wavesz::telemetry {
namespace {

/// Per-thread span capacity. Stages are coarse (a compress call emits tens
/// of spans plus one per DEFLATE chunk / slab), so 16 Ki spans cover ~4 GB
/// of input per thread between drains; overflow drops the newest span and
/// counts it in Report::dropped_events rather than tearing older ones.
constexpr std::size_t kRingCapacity = 1u << 14;

struct RawSpan {
  const char* name;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
  std::uint32_t depth;
  bool has_perf;
  std::uint64_t hw[4];  ///< cycles, instructions, cache-misses, branch-misses
};

/// Single-writer ring: the owning thread stores the slot then publishes the
/// new count with a release store; the draining thread acquires the count
/// and reads only committed slots. `drained` moves only under g_registry's
/// mutex, and the writer reads it relaxed just to detect a full ring.
struct ThreadLog {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< live nesting, touched only by the owner
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::uint64_t> dropped{0};
  std::array<RawSpan, kRingCapacity> slots;
  /// This thread's histogram shards, one per distribution metric: written
  /// only by the owner (relaxed atomics), merged and reset by the session
  /// drain under g_registry's mutex.
  std::array<HistoShard, static_cast<std::size_t>(Histo::kCount)> histos;
};

/// Registry of every thread that ever recorded a span. Logs are never
/// removed: OpenMP workers outlive sessions and keep their ring across
/// them, and a log whose thread has exited is simply never written again.
struct Registry {
  util::Mutex mutex;
  /// Registration and drain both walk this vector under `mutex`; the logs
  /// themselves are single-writer rings published with atomics (see the
  /// concurrency manifest), so only the vector — not the ring contents —
  /// is lock-guarded.
  std::vector<std::unique_ptr<ThreadLog>> logs GUARDED_BY(mutex);
  std::atomic<bool> session_active{false};
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

ThreadLog& local_log() {
  thread_local ThreadLog* log = [] {
    auto& reg = registry();
    util::MutexLock lock(reg.mutex);
    auto owned = std::make_unique<ThreadLog>();
    owned->tid = static_cast<std::uint32_t>(reg.logs.size());
    reg.logs.push_back(std::move(owned));
    return reg.logs.back().get();
  }();
  return *log;
}

std::array<std::atomic<std::uint64_t>,
           static_cast<std::size_t>(Counter::kCount)>
    g_counters{};

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void span_open() noexcept { ++local_log().depth; }

void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) noexcept {
  record_span_hw(name, t0_ns, t1_ns, nullptr);
}

void record_span_hw(const char* name, std::uint64_t t0_ns,
                    std::uint64_t t1_ns, const PerfReading* hw) noexcept {
  ThreadLog& log = local_log();
  // Depth counts *enclosing* spans still open on this thread. Spans commit
  // at close, children before parents; depth is captured here so exporters
  // need no reconstruction. The span being closed is itself part of the
  // live nesting, hence the decrement first.
  if (log.depth > 0) --log.depth;
  const std::uint64_t n = log.count.load(std::memory_order_relaxed);
  if (n - log.drained.load(std::memory_order_relaxed) >= kRingCapacity) {
    log.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawSpan raw{name, t0_ns, t1_ns, log.depth, false, {0, 0, 0, 0}};
  if (hw != nullptr) {
    raw.has_perf = true;
    raw.hw[0] = hw->cycles;
    raw.hw[1] = hw->instructions;
    raw.hw[2] = hw->cache_misses;
    raw.hw[3] = hw->branch_misses;
  }
  log.slots[n % kRingCapacity] = raw;
  log.count.store(n + 1, std::memory_order_release);
}

void counter_add_enabled(Counter c, std::uint64_t delta) noexcept {
  g_counters[static_cast<std::size_t>(c)].fetch_add(
      delta, std::memory_order_relaxed);
}

void observe_enabled(Histo h, std::uint64_t value) noexcept {
  local_log().histos[static_cast<std::size_t>(h)].record(value);
}

}  // namespace detail

std::uint64_t Report::counter(Counter c) const {
  return counters[static_cast<std::size_t>(c)].value;
}

const HistogramSnapshot& Report::histogram(Histo h) const {
  return histograms[static_cast<std::size_t>(h)];
}

Session::Session() {
#ifndef WAVESZ_TELEMETRY_DISABLED
  auto& reg = registry();
  if (reg.session_active.exchange(true)) {
    throw std::logic_error("telemetry: a Session is already active");
  }
  for (auto& c : g_counters) c.store(0, std::memory_order_relaxed);
  {
    // Discard spans recorded after the previous session stopped draining
    // (e.g. a worker closing a span mid-stop): fast-forward every cursor.
    util::MutexLock lock(reg.mutex);
    for (auto& log : reg.logs) {
      log->drained.store(log->count.load(std::memory_order_acquire),
                         std::memory_order_relaxed);
      log->dropped.store(0, std::memory_order_relaxed);
      for (auto& shard : log->histos) shard.reset();
    }
  }
  t0_ns_ = detail::now_ns();
  active_ = true;
  detail::g_enabled.store(true, std::memory_order_relaxed);
#endif
}

Session::~Session() {
  if (active_) stop();
}

Report Session::stop() {
  Report report;
#ifndef WAVESZ_TELEMETRY_DISABLED
  if (!active_) return report;
  active_ = false;
  detail::g_enabled.store(false, std::memory_order_relaxed);
  report.wall_ns = detail::now_ns() - t0_ns_;

  report.histograms.resize(static_cast<std::size_t>(Histo::kCount));
  auto& reg = registry();
  {
    util::MutexLock lock(reg.mutex);
    for (auto& log : reg.logs) {
      const std::uint64_t end = log->count.load(std::memory_order_acquire);
      for (std::uint64_t i = log->drained.load(std::memory_order_relaxed);
           i < end; ++i) {
        const RawSpan& raw = log->slots[i % kRingCapacity];
        SpanEvent e;
        e.name = raw.name;
        // Clamp to the session window: a span opened before start() (or
        // carrying a stale t0) must not produce a negative offset.
        e.start_ns = raw.t0_ns >= t0_ns_ ? raw.t0_ns - t0_ns_ : 0;
        e.duration_ns = raw.t1_ns - std::max(raw.t0_ns, t0_ns_);
        e.tid = log->tid;
        e.depth = raw.depth;
        if (raw.has_perf) {
          e.has_perf = true;
          e.hw.valid = true;
          e.hw.cycles = raw.hw[0];
          e.hw.instructions = raw.hw[1];
          e.hw.cache_misses = raw.hw[2];
          e.hw.branch_misses = raw.hw[3];
        }
        report.events.push_back(e);
      }
      log->drained.store(end, std::memory_order_relaxed);
      report.dropped_events +=
          log->dropped.exchange(0, std::memory_order_relaxed);
      for (std::size_t h = 0; h < report.histograms.size(); ++h) {
        report.histograms[h].merge_shard(log->histos[h]);
      }
    }
  }
  std::sort(report.events.begin(), report.events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.duration_ns > b.duration_ns;
            });
  reg.session_active.store(false);
#else
  report.histograms.resize(static_cast<std::size_t>(Histo::kCount));
#endif
  for (std::size_t i = 0; i < report.histograms.size(); ++i) {
    const MetricInfo& info = histo_info(static_cast<Histo>(i));
    report.histograms[i].name = info.name;
    report.histograms[i].unit = info.unit;
    report.histograms[i].help = info.help;
  }
  report.counters.resize(static_cast<std::size_t>(Counter::kCount));
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    report.counters[i].name = kCounterInfo[i].name;
#ifndef WAVESZ_TELEMETRY_DISABLED
    report.counters[i].value =
        g_counters[i].load(std::memory_order_relaxed);
#endif
  }
  // Ring overflow is data loss; surface it as a first-class counter so the
  // stats JSON, terminal summary, and Prometheus exposition all carry it
  // without special-casing (Report::dropped_events stays for direct use).
  report.counters[static_cast<std::size_t>(Counter::SpansDropped)].value =
      report.dropped_events;
  return report;
}

}  // namespace wavesz::telemetry
