#include "telemetry/perf_counters.hpp"

#include <atomic>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace wavesz::telemetry {
namespace {

std::atomic<bool> g_perf_requested{false};
std::atomic<bool> g_perf_forced_off{false};
// -1 unknown, 0 unavailable, 1 available. Probed on first query.
std::atomic<int> g_perf_probe{-1};

#if defined(__linux__)

long open_event(std::uint64_t config, int group_fd) noexcept {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // exclude_kernel/hv keeps the group openable at perf_event_paranoid <= 2
  // (the common unprivileged default); stricter hosts fail the open and we
  // fall back to the no-op path.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return syscall(SYS_perf_event_open, &attr, 0, -1, group_fd,
                 PERF_FLAG_FD_CLOEXEC);
}

/// Per-thread counter group: cycles leads, the siblings are read with the
/// leader in one syscall so the four values describe the same interval.
/// All-or-nothing: a host that grants cycles but not cache-misses would
/// otherwise report deltas that silently mean different things per field.
struct PerfGroup {
  int leader = -1;
  int siblings[3] = {-1, -1, -1};
  bool ok = false;

  PerfGroup() noexcept {
    const long fd = open_event(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd < 0) return;
    leader = static_cast<int>(fd);
    static constexpr std::uint64_t kSiblingConfigs[3] = {
        PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CACHE_MISSES,
        PERF_COUNT_HW_BRANCH_MISSES};
    ok = true;
    for (int i = 0; i < 3; ++i) {
      const long sib = open_event(kSiblingConfigs[i], leader);
      if (sib < 0) {
        ok = false;
        break;
      }
      siblings[i] = static_cast<int>(sib);
    }
    if (!ok) close_all();
  }

  ~PerfGroup() { close_all(); }
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  void close_all() noexcept {
    for (int i = 0; i < 3; ++i) {
      if (siblings[i] >= 0) close(siblings[i]);
      siblings[i] = -1;
    }
    if (leader >= 0) close(leader);
    leader = -1;
    ok = false;
  }

  bool read_group(std::uint64_t out[4]) const noexcept {
    if (!ok) return false;
    // PERF_FORMAT_GROUP layout: u64 nr, then one u64 value per event.
    std::uint64_t buf[5] = {};
    const ssize_t want = static_cast<ssize_t>(sizeof(buf));
    if (read(leader, buf, sizeof(buf)) != want || buf[0] != 4) return false;
    for (int i = 0; i < 4; ++i) out[i] = buf[1 + i];
    return true;
  }
};

PerfGroup& local_group() noexcept {
  thread_local PerfGroup group;
  return group;
}

#endif  // __linux__

}  // namespace

bool perf_available() noexcept {
  if (g_perf_forced_off.load(std::memory_order_relaxed)) return false;
#if defined(__linux__)
  int probe = g_perf_probe.load(std::memory_order_relaxed);
  if (probe < 0) {
    probe = local_group().ok ? 1 : 0;
    g_perf_probe.store(probe, std::memory_order_relaxed);
  }
  return probe == 1;
#else
  return false;
#endif
}

void set_perf_enabled(bool on) noexcept {
  g_perf_requested.store(on, std::memory_order_relaxed);
}

bool perf_enabled() noexcept {
  return g_perf_requested.load(std::memory_order_relaxed) &&
         perf_available();
}

PerfReading perf_now() noexcept {
  PerfReading r;
  if (!perf_enabled()) return r;
#if defined(__linux__)
  std::uint64_t values[4];
  if (local_group().read_group(values)) {
    r.cycles = values[0];
    r.instructions = values[1];
    r.cache_misses = values[2];
    r.branch_misses = values[3];
    r.valid = true;
  }
#endif
  return r;
}

namespace detail {

void force_perf_unavailable_for_test(bool forced) noexcept {
  g_perf_forced_off.store(forced, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace wavesz::telemetry
