// GhostSZ baseline (Xiong et al., FCCM'19), reimplemented per the paper's
// §2.2 and Algorithm 1.
//
// GhostSZ decorrelates the dataset into independent rows (Fig. 4) so each
// row pipelines on the FPGA, at the cost of 1D-only prediction:
//   * predictor: Order-{0,1,2} curve fitting along the row (CF-GhostSZ),
//     fed by *predicted* values written back to history (Algorithm 1 line 9)
//     rather than decompressed values — no error correction in the history;
//   * unpredictable points write the *original* value back (line 12), which
//     re-anchors the drifting prediction chain;
//   * the 16-bit symbol budget loses 2 bits to the bestfit-order selector,
//     leaving 16,384 quantization bins (14-bit), which raises the
//     unpredictable count and thus lowers the ratio (paper §4.1);
//   * the back end is gzip only (the Xilinx gzip core), no customized
//     Huffman.
//
// 3D inputs are interpreted as d0 x (d1*d2) rows, exactly like the artifact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/quantizer.hpp"
#include "util/dims.hpp"

namespace wavesz::ghost {

/// Quantization-bin width in bits after reserving 2 selector bits.
inline constexpr int kGhostQuantBits = 14;

/// Stored symbol layout: [15:14] bestfit order, [13:0] quantization code
/// (0 = unpredictable; the selector bits of an unpredictable symbol are 0).
std::uint16_t pack_symbol(std::uint8_t order, std::uint16_t code);
std::uint8_t symbol_order(std::uint16_t symbol);
std::uint16_t symbol_code(std::uint16_t symbol);

/// Row-decorrelated CF-GhostSZ PQD pass over the flattened-2D view.
/// Unpredictable originals are stored verbatim (4 bytes each).
sz::Pqd ghost_pqd(std::span<const float> data, const Dims& dims,
                  const sz::LinearQuantizer& q);

/// Reference reconstruction from symbols + verbatim unpredictables.
std::vector<float> ghost_reconstruct(std::span<const std::uint16_t> symbols,
                                     std::span<const float> unpredictable,
                                     const Dims& dims,
                                     const sz::LinearQuantizer& q);

/// Full GhostSZ compression (gzip back end, G* only).
sz::Compressed compress(std::span<const float> data, const Dims& dims,
                        const sz::Config& cfg);

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out = nullptr);

}  // namespace wavesz::ghost
