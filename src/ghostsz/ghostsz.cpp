#include "ghostsz/ghostsz.hpp"

#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "metrics/stats.hpp"
#include "sz/predictor.hpp"
#include "util/error.hpp"

namespace wavesz::ghost {
namespace {

/// Rolling 3-deep history of a row's writeback values (pred for quantizable
/// points, original for unpredictable ones — Algorithm 1 lines 9/12).
struct RowHistory {
  double p1 = 0.0, p2 = 0.0, p3 = 0.0;
  int filled = 0;

  void push(double v) {
    p3 = p2;
    p2 = p1;
    p1 = v;
    if (filled < 3) ++filled;
  }
};

double predict_with_order(const RowHistory& h, std::uint8_t order) {
  switch (order) {
    case 0: return sz::curvefit_order0(h.p1);
    case 1: return sz::curvefit_order1(h.p1, h.p2);
    default: return sz::curvefit_order2(h.p1, h.p2, h.p3);
  }
}

}  // namespace

std::uint16_t pack_symbol(std::uint8_t order, std::uint16_t code) {
  WAVESZ_ASSERT(order < 4, "order must fit in 2 bits");
  WAVESZ_ASSERT(code < (1u << kGhostQuantBits), "code must fit in 14 bits");
  return static_cast<std::uint16_t>((static_cast<unsigned>(order) << 14) |
                                    code);
}

std::uint8_t symbol_order(std::uint16_t symbol) {
  return static_cast<std::uint8_t>(symbol >> 14);
}

std::uint16_t symbol_code(std::uint16_t symbol) {
  return static_cast<std::uint16_t>(symbol & ((1u << kGhostQuantBits) - 1));
}

sz::Pqd ghost_pqd(std::span<const float> data, const Dims& dims,
                  const sz::LinearQuantizer& q) {
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  WAVESZ_REQUIRE(q.capacity() == (1u << kGhostQuantBits),
                 "GhostSZ requires a 14-bit quantizer");
  const Dims flat = dims.flatten2d();
  const std::size_t rows = flat.rank == 1 ? 1 : flat[0];
  const std::size_t width = flat.rank == 1 ? flat[0] : flat[1];

  sz::Pqd out;
  out.codes.resize(data.size());
  out.reconstructed.resize(data.size());
  for (std::size_t r = 0; r < rows; ++r) {
    RowHistory hist;
    const std::size_t base = r * width;
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t i = base + c;
      const double orig = static_cast<double>(data[i]);
      if (hist.filled == 0) {
        // Row seed: always verbatim.
        out.codes[i] = pack_symbol(0, 0);
        out.reconstructed[i] = data[i];
        out.unpredictable.push_back(data[i]);
        hist.push(orig);
        continue;
      }
      const sz::BestFit fit =
          sz::curvefit_best(orig, hist.p1, hist.p2, hist.p3, hist.filled);
      const sz::QuantResult qr = q.quantize(fit.prediction, orig);
      if (qr.code != 0) {
        out.codes[i] = pack_symbol(fit.order, qr.code);
        out.reconstructed[i] = qr.reconstructed;
        hist.push(fit.prediction);  // line 9: pred, not d_re
      } else {
        out.codes[i] = pack_symbol(0, 0);
        out.reconstructed[i] = data[i];
        out.unpredictable.push_back(data[i]);
        hist.push(orig);  // line 12: original re-anchors the chain
      }
    }
  }
  return out;
}

std::vector<float> ghost_reconstruct(std::span<const std::uint16_t> symbols,
                                     std::span<const float> unpredictable,
                                     const Dims& dims,
                                     const sz::LinearQuantizer& q) {
  WAVESZ_REQUIRE(symbols.size() == dims.count(),
                 "symbol count disagrees with dims");
  const Dims flat = dims.flatten2d();
  const std::size_t rows = flat.rank == 1 ? 1 : flat[0];
  const std::size_t width = flat.rank == 1 ? flat[0] : flat[1];

  std::vector<float> rec(symbols.size());
  std::size_t next_unpred = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    RowHistory hist;
    const std::size_t base = r * width;
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t i = base + c;
      const std::uint16_t code = symbol_code(symbols[i]);
      if (code == 0) {
        WAVESZ_REQUIRE(next_unpred < unpredictable.size(),
                       "unpredictable stream exhausted");
        const float v = unpredictable[next_unpred++];
        rec[i] = v;
        hist.push(static_cast<double>(v));
      } else {
        const double pred = predict_with_order(hist, symbol_order(symbols[i]));
        rec[i] = q.reconstruct(pred, code);
        hist.push(pred);
      }
    }
  }
  WAVESZ_REQUIRE(next_unpred == unpredictable.size(),
                 "unpredictable stream has trailing values");
  return rec;
}

sz::Compressed compress(std::span<const float> data, const Dims& dims,
                        const sz::Config& cfg) {
  WAVESZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  const double range = metrics::value_range(data).span();
  const double bound = resolve_bound(cfg, range);
  const sz::LinearQuantizer q(bound, kGhostQuantBits);

  sz::Pqd pqd = ghost_pqd(data, dims, q);

  ByteWriter cw;
  cw.u16s(pqd.codes);
  ByteWriter uw;
  uw.floats(pqd.unpredictable);
  // Both sections through one chunked-DEFLATE task pool (serial and
  // bit-identical at the default codec_threads == 1).
  const std::span<const std::uint8_t> sections[] = {cw.data(), uw.data()};
  auto blobs = deflate::gzip_compress_batch(sections, cfg.gzip_level,
                                            cfg.deflate_options());
  const auto code_blob = std::move(blobs[0]);
  const auto unpred_blob = std::move(blobs[1]);

  sz::Compressed out;
  out.header.variant = sz::Variant::GhostSz;
  out.header.dims = dims;
  out.header.mode = cfg.mode;
  out.header.base = cfg.base;
  out.header.eb_requested = cfg.error_bound;
  out.header.eb_absolute = bound;
  out.header.quant_bits = kGhostQuantBits;
  out.header.huffman = false;  // no customized Huffman on GhostSZ
  out.header.gzip_level = cfg.gzip_level;
  out.header.point_count = data.size();
  out.header.unpredictable_count = pqd.unpredictable.size();
  out.code_blob_bytes = code_blob.size();
  out.unpred_blob_bytes = unpred_blob.size();

  ByteWriter w;
  sz::write_header(w, out.header);
  sz::write_section(w, code_blob);
  sz::write_section(w, unpred_blob);
  out.bytes = w.take();
  return out;
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out) {
  ByteReader r(bytes);
  const sz::ContainerHeader h = sz::read_header(r);
  WAVESZ_REQUIRE(h.variant == sz::Variant::GhostSz,
                 "container is not a GhostSZ stream");
  const auto code_blob = sz::read_section(r);
  const auto unpred_blob = sz::read_section(r);

  const auto code_plain = deflate::gzip_decompress(code_blob);
  ByteReader cr(code_plain);
  const auto symbols = cr.u16s(h.point_count);

  const auto unpred_plain = deflate::gzip_decompress(unpred_blob);
  ByteReader ur(unpred_plain);
  const auto unpred = ur.floats(h.unpredictable_count);

  const sz::LinearQuantizer q(h.eb_absolute, h.quant_bits);
  if (dims_out != nullptr) *dims_out = h.dims;
  return ghost_reconstruct(symbols, unpred, h.dims, q);
}

}  // namespace wavesz::ghost
