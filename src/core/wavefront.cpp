#include "core/wavefront.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavesz::wave {

WavefrontLayout::WavefrontLayout(std::size_t d0, std::size_t d1)
    : d0_(d0), d1_(d1) {
  WAVESZ_REQUIRE(d0 > 0 && d1 > 0, "wavefront layout needs positive extents");
  const std::size_t cols = column_count();
  col_start_.resize(cols + 1);
  col_start_[0] = 0;
  for (std::size_t h = 0; h < cols; ++h) {
    col_start_[h + 1] = col_start_[h] + column_length(h);
  }
  WAVESZ_ASSERT(col_start_[cols] == d0_ * d1_,
                "column lengths must cover the grid exactly");
}

std::size_t WavefrontLayout::column_length(std::size_t h) const {
  const std::size_t x_hi = std::min(d0_ - 1, h);
  const std::size_t x_lo = column_first_row(h);
  return x_hi - x_lo + 1;
}

std::size_t WavefrontLayout::column_first_row(std::size_t h) const {
  return h >= d1_ ? h - (d1_ - 1) : 0;
}

std::size_t WavefrontLayout::offset(std::size_t x, std::size_t y) const {
  WAVESZ_ASSERT(x < d0_ && y < d1_, "point outside the grid");
  const std::size_t h = x + y;
  return col_start_[h] + (x - column_first_row(h));
}

std::pair<std::size_t, std::size_t> WavefrontLayout::point_at(
    std::size_t off) const {
  WAVESZ_ASSERT(off < count(), "offset outside the layout");
  // Binary search the column whose range contains `off`.
  const auto it =
      std::upper_bound(col_start_.begin(), col_start_.end(), off);
  const auto h = static_cast<std::size_t>(it - col_start_.begin()) - 1;
  const std::size_t x = column_first_row(h) + (off - col_start_[h]);
  return {x, h - x};
}

}  // namespace wavesz::wave
