// Staged slab pipeline executor — the software form of the paper's pII=1
// datapath at slab granularity.
//
// An Executor owns one worker thread per stage and a bounded SPSC ring
// between consecutive stages. The caller plays producer: acquire() blocks
// until fewer than `depth` slabs are in flight (this is the only
// backpressure point — ring pushes never block because in-flight <= depth =
// ring capacity), submit() hands the slab to stage 0, and drain() waits for
// everything submitted to retire. With depth d and stages s0..sN, slab k+1
// runs s0 while slab k runs s1 and slab k-1 runs s2 — the fpga simulator's
// head/body/tail schedule: a head where rings fill, a steady body with every
// stage busy, and a tail where drain() lets them empty.
//
// Determinism: each stage is a single worker consuming ring order, so slabs
// pass through every stage in submission order. Callers that write output in
// the final stage therefore emit in order with no re-sequencing buffer, and
// the bytes match the barrier path (stages run back-to-back per slab) by
// construction.
//
// Errors: the first exception a stage throws is captured; later stages skip
// their work but keep forwarding slab tokens so drain() terminates, and the
// error rethrows from the next acquire() or drain().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace wavesz::pipeline {

/// One pipeline stage: a span name (must be a span_names.hpp constant — the
/// worker wraps every invocation in a telemetry::Span of this name) and the
/// work function, called with the 0-based slab sequence number.
struct Stage {
  const char* span_name;
  std::function<void(std::size_t slab)> fn;
};

/// Lifetime statistics of an Executor, for tests and benches; the same
/// numbers also feed the PipelineSlabs / PipelineStallNs counters.
struct Stats {
  std::uint64_t slabs = 0;     ///< slabs fully retired
  std::uint64_t stall_ns = 0;  ///< summed wall ns of stage + acquire stalls
};

class Executor {
 public:
  /// Stages must be non-empty and depth >= 1; each stage gets a dedicated
  /// worker thread that lives until drain-and-destroy.
  Executor(std::vector<Stage> stages, std::size_t depth);

  /// Closes the intake ring and joins all workers; slabs already submitted
  /// still flow to retirement (errors, if any, are swallowed — call drain()
  /// first to observe them).
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Block until a slab slot is free, then reserve it. Returns the slab's
  /// sequence number (0-based, == slot index modulo depth, so callers can
  /// address a fixed slot array). Rethrows a captured stage error.
  std::size_t acquire();

  /// Hand the slab reserved by the last acquire() to stage 0. The caller
  /// must have fully staged the slab's input before calling.
  void submit();

  /// Block until every submitted slab has retired, then rethrow the first
  /// captured stage error, if any. The executor stays usable afterwards.
  void drain();

  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavesz::pipeline
