#include "core/wavesz.hpp"

#include <algorithm>

#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/predictor.hpp"
#include "sz/szx.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wavesz::wave {
namespace {

/// Width-generic glue between the kernels and the float32/float64 entry
/// points of the quantizer and serializers.
template <typename T>
struct FpOps;

template <>
struct FpOps<float> {
  using Kernel = KernelResult;
  static constexpr std::uint8_t kDtype = 0;
  static auto quantize(const sz::LinearQuantizer& q, double pred,
                       float orig) {
    return q.quantize(pred, orig);
  }
  static float reconstruct(const sz::LinearQuantizer& q, double pred,
                           std::uint16_t code) {
    return q.reconstruct(pred, code);
  }
  static void write_values(ByteWriter& w, std::span<const float> v) {
    w.floats(v);
  }
  static std::vector<float> read_values(ByteReader& r, std::size_t n) {
    return r.floats(n);
  }
};

template <>
struct FpOps<double> {
  using Kernel = KernelResult64;
  static constexpr std::uint8_t kDtype = 1;
  static auto quantize(const sz::LinearQuantizer& q, double pred,
                       double orig) {
    return q.quantize64(pred, orig);
  }
  static double reconstruct(const sz::LinearQuantizer& q, double pred,
                            std::uint16_t code) {
    return q.reconstruct64(pred, code);
  }
  static void write_values(ByteWriter& w, std::span<const double> v) {
    w.doubles(v);
  }
  static std::vector<double> read_values(ByteReader& r, std::size_t n) {
    return r.doubles(n);
  }
};

/// The fully pipelined 2D kernel (Listing 1 semantics: column-major walk of
/// the wavefront layout, in-place decompression writeback).
template <typename T>
typename FpOps<T>::Kernel wave_pqd_2d_t(std::span<T> wavefront,
                                        const WavefrontLayout& layout,
                                        const sz::LinearQuantizer& q) {
  WAVESZ_REQUIRE(wavefront.size() == layout.count(),
                 "wavefront size disagrees with layout");
  typename FpOps<T>::Kernel out;
  out.codes.reserve(wavefront.size());
  const std::size_t cols = layout.column_count();
  for (std::size_t h = 0; h < cols; ++h) {
    const std::size_t x_lo = layout.column_first_row(h);
    const std::size_t len = layout.column_length(h);
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t x = x_lo + k;
      const std::size_t y = h - x;
      const std::size_t off = layout.column_start(h) + k;
      if (x == 0 || y == 0) {
        // Border: passed to the lossless compressor verbatim (§3.2); the
        // exact original stays in place as downstream history.
        out.codes.push_back(0);
        out.verbatim.push_back(wavefront[off]);
        continue;
      }
      const double pred = sz::lorenzo2d(wavefront[layout.offset(x - 1, y - 1)],
                                        wavefront[layout.offset(x - 1, y)],
                                        wavefront[layout.offset(x, y - 1)]);
      const auto r = FpOps<T>::quantize(q, pred, wavefront[off]);
      if (r.code != 0) {
        out.codes.push_back(r.code);
        wavefront[off] = r.reconstructed;  // in-place decompression writeback
      } else {
        out.codes.push_back(0);
        out.verbatim.push_back(wavefront[off]);
      }
    }
  }
  return out;
}

// Tiled anti-diagonal schedule over the (x, y) grid, mirroring the sz::
// wavefront kernels: the 2D Lorenzo taps reach only coordinate-wise smaller
// points, so a tile's dependencies live in coordinate-wise <= tiles — all on
// strictly earlier diagonals t0 + t1. Each diagonal is one parallel batch;
// the implicit barrier of the omp-for is the hyperplane boundary.
constexpr std::size_t kTile0 = 64;
constexpr std::size_t kTile1 = 64;

/// Wavefront-parallel twin of wave_pqd_2d_t. Codes are written by storage
/// offset (the serial kernel's push order *is* storage order), the verbatim
/// stream is rebuilt by a post-scan: code-0 points never get a writeback, so
/// `wavefront` still holds their exact originals.
template <typename T>
typename FpOps<T>::Kernel wave_pqd_2d_par_t(std::span<T> wavefront,
                                            const WavefrontLayout& layout,
                                            const sz::LinearQuantizer& q,
                                            [[maybe_unused]] int nt) {
  WAVESZ_REQUIRE(wavefront.size() == layout.count(),
                 "wavefront size disagrees with layout");
  typename FpOps<T>::Kernel out;
  out.codes.assign(wavefront.size(), 0);
  std::uint16_t* const codes = out.codes.data();
  T* const wf = wavefront.data();
  const std::size_t e0 = (layout.rows() + kTile0 - 1) / kTile0;
  const std::size_t e1 = (layout.cols() + kTile1 - 1) / kTile1;
  telemetry::counter_add(telemetry::Counter::PqdDiagonalBatches,
                         e0 + e1 - 1);
#ifdef _OPENMP
#pragma omp parallel num_threads(nt)
#endif
  for (std::size_t d = 0; d < e0 + e1 - 1; ++d) {
    const std::size_t t0_lo = d >= e1 ? d - e1 + 1 : 0;
    const std::size_t t0_hi = std::min(e0 - 1, d);
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (std::size_t t0 = t0_lo; t0 <= t0_hi; ++t0) {
      const std::size_t t1 = d - t0;
      const std::size_t x_hi = std::min(layout.rows(), (t0 + 1) * kTile0);
      const std::size_t y_hi = std::min(layout.cols(), (t1 + 1) * kTile1);
      for (std::size_t x = t0 * kTile0; x < x_hi; ++x) {
        for (std::size_t y = t1 * kTile1; y < y_hi; ++y) {
          if (x == 0 || y == 0) continue;  // border: code 0, original stays
          const std::size_t off = layout.offset(x, y);
          const double pred =
              sz::lorenzo2d(wf[layout.offset(x - 1, y - 1)],
                            wf[layout.offset(x - 1, y)],
                            wf[layout.offset(x, y - 1)]);
          const auto r = FpOps<T>::quantize(q, pred, wf[off]);
          if (r.code != 0) {
            codes[off] = r.code;
            wf[off] = r.reconstructed;
          }
        }
      }
    }
    // implicit omp-for barrier: diagonal d is complete before d + 1 starts
  }
  for (std::size_t i = 0; i < out.codes.size(); ++i) {
    if (codes[i] == 0) out.verbatim.push_back(wavefront[i]);
  }
  return out;
}

template <typename T>
std::vector<T> wave_reconstruct_2d_t(std::span<const std::uint16_t> codes,
                                     std::span<const T> verbatim,
                                     std::size_t* next_verbatim,
                                     const WavefrontLayout& layout,
                                     const sz::LinearQuantizer& q) {
  WAVESZ_REQUIRE(codes.size() == layout.count(),
                 "code count disagrees with layout");
  std::vector<T> rec(codes.size());
  const std::size_t cols = layout.column_count();
  std::size_t i = 0;
  for (std::size_t h = 0; h < cols; ++h) {
    const std::size_t x_lo = layout.column_first_row(h);
    const std::size_t len = layout.column_length(h);
    for (std::size_t k = 0; k < len; ++k, ++i) {
      const std::size_t x = x_lo + k;
      const std::size_t y = h - x;
      const std::size_t off = layout.column_start(h) + k;
      if (codes[i] == 0) {
        WAVESZ_REQUIRE(*next_verbatim < verbatim.size(),
                       "verbatim stream exhausted");
        rec[off] = verbatim[(*next_verbatim)++];
      } else {
        const double pred =
            sz::lorenzo2d(rec[layout.offset(x - 1, y - 1)],
                          rec[layout.offset(x - 1, y)],
                          rec[layout.offset(x, y - 1)]);
        rec[off] = FpOps<T>::reconstruct(q, pred, codes[i]);
      }
    }
  }
  return rec;
}

/// Wavefront-parallel twin of wave_reconstruct_2d_t. Verbatim points are
/// prefilled serially (they consume the stream in storage order and depend
/// on nothing); the tiled sweep then reads them like any completed history.
template <typename T>
std::vector<T> wave_reconstruct_2d_par_t(std::span<const std::uint16_t> codes,
                                         std::span<const T> verbatim,
                                         std::size_t* next_verbatim,
                                         const WavefrontLayout& layout,
                                         const sz::LinearQuantizer& q,
                                         [[maybe_unused]] int nt) {
  WAVESZ_REQUIRE(codes.size() == layout.count(),
                 "code count disagrees with layout");
  std::vector<T> rec(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] == 0) {
      WAVESZ_REQUIRE(*next_verbatim < verbatim.size(),
                     "verbatim stream exhausted");
      rec[i] = verbatim[(*next_verbatim)++];
    }
  }
  T* const r = rec.data();
  const std::size_t e0 = (layout.rows() + kTile0 - 1) / kTile0;
  const std::size_t e1 = (layout.cols() + kTile1 - 1) / kTile1;
  telemetry::counter_add(telemetry::Counter::PqdDiagonalBatches,
                         e0 + e1 - 1);
#ifdef _OPENMP
#pragma omp parallel num_threads(nt)
#endif
  for (std::size_t d = 0; d < e0 + e1 - 1; ++d) {
    const std::size_t t0_lo = d >= e1 ? d - e1 + 1 : 0;
    const std::size_t t0_hi = std::min(e0 - 1, d);
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (std::size_t t0 = t0_lo; t0 <= t0_hi; ++t0) {
      const std::size_t t1 = d - t0;
      const std::size_t x_hi = std::min(layout.rows(), (t0 + 1) * kTile0);
      const std::size_t y_hi = std::min(layout.cols(), (t1 + 1) * kTile1);
      for (std::size_t x = t0 * kTile0; x < x_hi; ++x) {
        for (std::size_t y = t1 * kTile1; y < y_hi; ++y) {
          const std::size_t off = layout.offset(x, y);
          if (codes[off] == 0) continue;  // prefilled verbatim point
          const double pred =
              sz::lorenzo2d(r[layout.offset(x - 1, y - 1)],
                            r[layout.offset(x - 1, y)],
                            r[layout.offset(x, y - 1)]);
          r[off] = FpOps<T>::reconstruct(q, pred, codes[off]);
        }
      }
    }
  }
  return rec;
}

/// Budget-dispatched entry points shared by the kernels' public wrappers and
/// the compress/decompress drivers.
template <typename T>
typename FpOps<T>::Kernel wave_pqd_2d_auto(std::span<T> wavefront,
                                           const WavefrontLayout& layout,
                                           const sz::LinearQuantizer& q,
                                           int nt) {
  return nt > 1 ? wave_pqd_2d_par_t<T>(wavefront, layout, q, nt)
                : wave_pqd_2d_t<T>(wavefront, layout, q);
}

template <typename T>
std::vector<T> wave_reconstruct_2d_auto(std::span<const std::uint16_t> codes,
                                        std::span<const T> verbatim,
                                        std::size_t* next_verbatim,
                                        const WavefrontLayout& layout,
                                        const sz::LinearQuantizer& q,
                                        int nt) {
  return nt > 1 ? wave_reconstruct_2d_par_t<T>(codes, verbatim, next_verbatim,
                                               layout, q, nt)
                : wave_reconstruct_2d_t<T>(codes, verbatim, next_verbatim,
                                           layout, q);
}

/// 3D-Lorenzo PQD for one slice, the previous slice already reconstructed
/// (both in wavefront layout). Used by LayoutMode::True3D.
template <typename T>
void wave_pqd_slice3d(std::span<T> cur, std::span<const T> prev,
                      const WavefrontLayout& layout,
                      const sz::LinearQuantizer& q,
                      typename FpOps<T>::Kernel& out) {
  const std::size_t cols = layout.column_count();
  for (std::size_t h = 0; h < cols; ++h) {
    const std::size_t x_lo = layout.column_first_row(h);
    const std::size_t len = layout.column_length(h);
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t x = x_lo + k;
      const std::size_t y = h - x;
      const std::size_t off = layout.column_start(h) + k;
      if (x == 0 || y == 0) {
        out.codes.push_back(0);
        out.verbatim.push_back(cur[off]);
        continue;  // cur[off] keeps the exact original as history
      }
      const std::size_t o_nw = layout.offset(x - 1, y - 1);
      const std::size_t o_n = layout.offset(x - 1, y);
      const std::size_t o_w = layout.offset(x, y - 1);
      const double pred = sz::lorenzo3d(
          prev[o_nw], cur[o_nw], prev[o_n], prev[o_w], cur[o_n], cur[o_w],
          prev[off]);
      const auto r = FpOps<T>::quantize(q, pred, cur[off]);
      if (r.code != 0) {
        out.codes.push_back(r.code);
        cur[off] = r.reconstructed;
      } else {
        out.codes.push_back(0);
        out.verbatim.push_back(cur[off]);
      }
    }
  }
}

/// Inverse of wave_pqd_slice3d.
template <typename T>
void wave_reconstruct_slice3d(std::span<const std::uint16_t> codes,
                              std::span<const T> verbatim,
                              std::size_t* next_verbatim,
                              std::span<const T> prev, std::span<T> cur,
                              const WavefrontLayout& layout,
                              const sz::LinearQuantizer& q) {
  const std::size_t cols = layout.column_count();
  std::size_t i = 0;
  for (std::size_t h = 0; h < cols; ++h) {
    const std::size_t x_lo = layout.column_first_row(h);
    const std::size_t len = layout.column_length(h);
    for (std::size_t k = 0; k < len; ++k, ++i) {
      const std::size_t x = x_lo + k;
      const std::size_t y = h - x;
      const std::size_t off = layout.column_start(h) + k;
      if (codes[i] == 0) {
        WAVESZ_REQUIRE(*next_verbatim < verbatim.size(),
                       "verbatim stream exhausted");
        cur[off] = verbatim[(*next_verbatim)++];
        continue;
      }
      const std::size_t o_nw = layout.offset(x - 1, y - 1);
      const std::size_t o_n = layout.offset(x - 1, y);
      const std::size_t o_w = layout.offset(x, y - 1);
      const double pred = sz::lorenzo3d(
          prev[o_nw], cur[o_nw], prev[o_n], prev[o_w], cur[o_n], cur[o_w],
          prev[off]);
      cur[off] = FpOps<T>::reconstruct(q, pred, codes[i]);
    }
  }
}

/// Serialize the code stream, building the v2 chunk index alongside when
/// cfg.chunk_index is set (idx stays empty otherwise).
std::vector<std::uint8_t> plain_codes(std::span<const std::uint16_t> codes,
                                      const sz::Config& cfg, int threads,
                                      sz::CodeChunkIndex& idx) {
  if (cfg.huffman) {
    return cfg.chunk_index
               ? sz::huffman_encode_indexed(codes, threads,
                                            cfg.index_chunk_symbols, idx)
               : sz::huffman_encode(codes, threads);
  }
  if (cfg.chunk_index) {
    idx = sz::build_raw_code_index(codes, cfg.index_chunk_symbols);
  }
  ByteWriter cw;
  cw.u16s(codes);
  return cw.take();
}

/// The waveSZ compress phases, split for the staged pipeline exactly like
/// sz::Sz14Staged: the bodies are the former compress_t monolith relocated
/// verbatim per phase, so run() is the historical barrier path byte-for-byte
/// and the pipelined interleavings cannot change the output.
template <typename T>
class WaveStaged final : public sz::StagedCompressor {
 public:
  WaveStaged(std::span<const T> data, const Dims& dims, const sz::Config& cfg,
             LayoutMode mode)
      : data_(data), dims_(dims), cfg_(cfg), mode_(mode) {}

  std::size_t sections() const override { return 2; }

  void pqd() override {
    WAVESZ_REQUIRE(data_.size() == dims_.count(),
                   "data size disagrees with dims");
    WAVESZ_REQUIRE(
        dims_.rank >= 2,
        "waveSZ targets 2D+ datasets (1D degenerates to all-border)");
    WAVESZ_REQUIRE(!cfg_.chunk_index || cfg_.index_chunk_symbols > 0,
                   "index_chunk_symbols must be positive");
    pqd_nt_ = sz::resolve_thread_budget(cfg_.pqd_threads);
    double range = 0.0;
    {
      telemetry::Span span(telemetry::spans::kValueRange);
      range = sz::value_range(data_, pqd_nt_);
    }
    bound_ = resolve_bound(cfg_, range);
    const sz::LinearQuantizer q(bound_, cfg_.quant_bits);
    if (mode_ == LayoutMode::True3D) {
      WAVESZ_REQUIRE(dims_.rank == 3, "True3D layout requires a 3D dataset");
    }

    if (mode_ == LayoutMode::Flatten2D || dims_.rank <= 2) {
      telemetry::Span span_pqd(telemetry::spans::kWavePqd);
      const Dims flat = dims_.flatten2d();
      const WavefrontLayout layout(flat[0], flat[1]);
      auto wf = to_wavefront(data_, layout);
      kr_ = wave_pqd_2d_auto<T>(std::span<T>(wf), layout, q, pqd_nt_);
    } else {
      telemetry::Span span_pqd(telemetry::spans::kWavePqd3d);
      const std::size_t planes = dims_[0];
      const WavefrontLayout layout(dims_[1], dims_[2]);
      const std::size_t slice_points = layout.count();
      kr_.codes.reserve(data_.size());
      std::vector<T> prev;
      for (std::size_t z = 0; z < planes; ++z) {
        auto cur = to_wavefront(data_.subspan(z * slice_points, slice_points),
                                layout);
        if (z == 0) {
          auto first = wave_pqd_2d_auto<T>(std::span<T>(cur), layout, q,
                                           pqd_nt_);
          kr_.codes.insert(kr_.codes.end(), first.codes.begin(),
                           first.codes.end());
          kr_.verbatim.insert(kr_.verbatim.end(), first.verbatim.begin(),
                              first.verbatim.end());
        } else {
          wave_pqd_slice3d<T>(cur, prev, layout, q, kr_);
        }
        prev = std::move(cur);
      }
    }

    telemetry::counter_add(telemetry::Counter::QuantUnpredictable,
                           kr_.verbatim.size());
    telemetry::counter_add(telemetry::Counter::QuantPredictable,
                           kr_.codes.size() - kr_.verbatim.size());
  }

  void encode_section(std::size_t s) override {
    if (s == 0) {
      telemetry::Span span(telemetry::spans::kEncodeCodes);
      code_plain_ = plain_codes(kr_.codes, cfg_, pqd_nt_, idx_);
    } else {
      ByteWriter vw;
      FpOps<T>::write_values(vw, kr_.verbatim);
      verbatim_plain_ = vw.take();
    }
  }

  void deflate_section(std::size_t s) override {
    // Per-section gzip: bit-identical to the section's slot in the former
    // gzip_compress_batch call (chunking, priming and stitching are
    // per-input), so barrier and pipelined schedules emit the same bytes.
    telemetry::Span span(telemetry::spans::kDeflateSerialize);
    const auto& plain = s == 0 ? code_plain_ : verbatim_plain_;
    blobs_[s] = deflate::gzip_compress_parallel(
        plain, cfg_.gzip_level,
        cfg_.chunk_index ? cfg_.indexed_deflate_options()
                         : cfg_.deflate_options());
    if (s == 0) {
      telemetry::counter_add(telemetry::Counter::CodeBytesIn, plain.size());
      telemetry::counter_add(telemetry::Counter::CodeBytesOut,
                             blobs_[0].size());
    } else {
      telemetry::counter_add(telemetry::Counter::UnpredBytesIn, plain.size());
      telemetry::counter_add(telemetry::Counter::UnpredBytesOut,
                             blobs_[1].size());
    }
  }

  sz::Compressed assemble() override {
    sz::Compressed out;
    out.header.variant = sz::Variant::WaveSz;
    out.header.dims = dims_;
    out.header.mode = cfg_.mode;
    out.header.base = cfg_.base;
    out.header.eb_requested = cfg_.error_bound;
    out.header.eb_absolute = bound_;
    out.header.quant_bits = cfg_.quant_bits;
    out.header.huffman = cfg_.huffman;
    out.header.gzip_level = cfg_.gzip_level;
    out.header.aux = static_cast<std::uint8_t>(mode_);
    out.header.dtype = FpOps<T>::kDtype;
    out.header.point_count = data_.size();
    out.header.unpredictable_count = kr_.verbatim.size();
    out.header.version = cfg_.chunk_index ? 2 : 1;
    out.code_blob_bytes = blobs_[0].size();
    out.unpred_blob_bytes = blobs_[1].size();

    ByteWriter w;
    sz::write_header(w, out.header);
    if (cfg_.chunk_index) sz::write_code_index(w, idx_);
    sz::write_section(w, blobs_[0]);
    sz::write_section(w, blobs_[1]);
    out.bytes = w.take();
    if (!out.bytes.empty()) {
      telemetry::observe(telemetry::Histo::CompressRatioMilli,
                         data_.size_bytes() * 1000 / out.bytes.size());
    }
    return out;
  }

 private:
  std::span<const T> data_;
  Dims dims_;
  sz::Config cfg_;
  LayoutMode mode_;
  int pqd_nt_ = 1;
  double bound_ = 0.0;
  typename FpOps<T>::Kernel kr_;
  sz::CodeChunkIndex idx_;
  std::vector<std::uint8_t> code_plain_;
  std::vector<std::uint8_t> verbatim_plain_;
  std::vector<std::uint8_t> blobs_[2];
};

template <typename T>
sz::Compressed compress_t(std::span<const T> data, const Dims& dims,
                          const sz::Config& cfg, LayoutMode mode) {
  telemetry::Span span_all(telemetry::spans::kWaveCompress,
                           telemetry::Histo::CompressNs, telemetry::kSampleHw);
  WaveStaged<T> job(data, dims, cfg, mode);
  return sz::run_staged(job, cfg.pipeline_depth);
}

template <typename T>
std::vector<T> decompress_t(std::span<const std::uint8_t> bytes,
                            Dims* dims_out, const sz::DecodeOptions& opts) {
  telemetry::Span span_all(telemetry::spans::kWaveDecompress,
                           telemetry::Histo::DecompressNs,
                           telemetry::kSampleHw);
  ByteReader r(bytes);
  const sz::ContainerHeader h = sz::read_header(r);
  // A stream archive may carry SZx chunks (StreamCompressor with
  // Codec::Szx); delegate so chunk decode works through this entry point.
  if (h.variant == sz::Variant::SzxFast) {
    return sz::detail::szx_decompress_t<T>(bytes, dims_out);
  }
  WAVESZ_REQUIRE(h.variant == sz::Variant::WaveSz,
                 "container is not a waveSZ stream");
  WAVESZ_REQUIRE(h.dtype == FpOps<T>::kDtype,
                 "container value type mismatch (float32 vs float64)");
  WAVESZ_REQUIRE(h.aux <= 1, "unknown waveSZ layout mode");
  const auto mode = static_cast<LayoutMode>(h.aux);
  const sz::CodeChunkIndex idx = sz::read_code_index(r, h);
  const auto code_blob = sz::read_section(r);
  const auto verbatim_blob = sz::read_section(r);

  // decode_threads only has purchase with a chunk index: v1 streams and
  // stripped-index v2 streams take the serial section-by-section path.
  const int nt =
      idx.present() ? sz::resolve_thread_budget(opts.decode_threads) : 1;

  std::vector<std::uint8_t> code_plain;
  std::vector<std::uint8_t> verbatim_plain;
  if (nt > 1) {
    telemetry::Span span(telemetry::spans::kDecodeParallel);
    const std::span<const std::uint8_t> sections[] = {code_blob,
                                                      verbatim_blob};
    auto plains = deflate::gzip_decompress_batch(sections, nt);
    code_plain = std::move(plains[0]);
    verbatim_plain = std::move(plains[1]);
  } else {
    code_plain = deflate::gzip_decompress(code_blob);
    verbatim_plain = deflate::gzip_decompress(verbatim_blob);
  }

  std::vector<std::uint16_t> codes;
  {
    telemetry::Span span(telemetry::spans::kDecodeCodes);
    if (h.huffman) {
      codes = idx.present() ? sz::huffman_decode_indexed(code_plain, idx, nt)
                            : sz::huffman_decode(code_plain);
    } else {
      ByteReader cr(code_plain);
      codes = cr.u16s(h.point_count);
      if (idx.present()) {
        sz::verify_code_index_crcs(codes, idx, codes.size());
      }
    }
  }
  WAVESZ_REQUIRE(codes.size() == h.point_count, "code count mismatch");

  telemetry::Span span_body(telemetry::spans::kWaveReconstruct);
  ByteReader ur(verbatim_plain);
  const auto verbatim = FpOps<T>::read_values(ur, h.unpredictable_count);

  const sz::LinearQuantizer q(h.eb_absolute, h.quant_bits);
  if (dims_out != nullptr) *dims_out = h.dims;

  // The wavefront reconstruction is value-identical at every budget, so the
  // decode pool may as well drive it when it is the larger of the two.
  const int pqd_nt =
      std::max(sz::resolve_thread_budget(opts.pqd_threads), nt);
  std::size_t next_verbatim = 0;
  if (mode == LayoutMode::Flatten2D || h.dims.rank <= 2) {
    const Dims flat = h.dims.flatten2d();
    const WavefrontLayout layout(flat[0], flat.rank >= 2 ? flat[1] : 1);
    auto rec_wf = wave_reconstruct_2d_auto<T>(codes, verbatim, &next_verbatim,
                                              layout, q, pqd_nt);
    WAVESZ_REQUIRE(next_verbatim == verbatim.size(),
                   "verbatim stream has trailing values");
    return from_wavefront(std::span<const T>(rec_wf), layout);
  }

  const std::size_t planes = h.dims[0];
  const WavefrontLayout layout(h.dims[1], h.dims[2]);
  const std::size_t slice_points = layout.count();
  std::vector<T> out;
  out.reserve(h.dims.count());
  std::vector<T> prev;
  for (std::size_t z = 0; z < planes; ++z) {
    const auto slice_codes =
        std::span<const std::uint16_t>(codes).subspan(z * slice_points,
                                                      slice_points);
    std::vector<T> cur;
    if (z == 0) {
      cur = wave_reconstruct_2d_auto<T>(slice_codes, verbatim, &next_verbatim,
                                        layout, q, pqd_nt);
    } else {
      cur.resize(slice_points);
      wave_reconstruct_slice3d<T>(slice_codes, verbatim, &next_verbatim,
                                  prev, cur, layout, q);
    }
    const auto raster = from_wavefront(std::span<const T>(cur), layout);
    out.insert(out.end(), raster.begin(), raster.end());
    prev = std::move(cur);
  }
  WAVESZ_REQUIRE(next_verbatim == verbatim.size(),
                 "verbatim stream has trailing values");
  return out;
}

/// Reconstruct the first `h_end` wavefront columns from a code-stream
/// prefix. The stream is ordered column-major by h = x + y and the Lorenzo
/// taps reach only into columns < h, so {points with x + y < h_end} is
/// dependency-closed and this reproduces exactly the first
/// layout.column_start(h_end) values of the full reconstruction.
template <typename T>
std::vector<T> wave_reconstruct_2d_prefix(
    std::span<const std::uint16_t> codes, std::span<const T> verbatim,
    std::size_t* next_verbatim, const WavefrontLayout& layout,
    std::size_t h_end, const sz::LinearQuantizer& q) {
  WAVESZ_REQUIRE(h_end <= layout.column_count(),
                 "column prefix exceeds layout");
  const std::size_t points = layout.column_start(h_end);
  WAVESZ_REQUIRE(codes.size() >= points,
                 "code prefix shorter than the column prefix");
  std::vector<T> rec(points);
  std::size_t i = 0;
  for (std::size_t h = 0; h < h_end; ++h) {
    const std::size_t x_lo = layout.column_first_row(h);
    const std::size_t len = layout.column_length(h);
    for (std::size_t k = 0; k < len; ++k, ++i) {
      const std::size_t x = x_lo + k;
      const std::size_t y = h - x;
      const std::size_t off = layout.column_start(h) + k;
      if (codes[i] == 0) {
        WAVESZ_REQUIRE(*next_verbatim < verbatim.size(),
                       "verbatim stream exhausted");
        rec[off] = verbatim[(*next_verbatim)++];
      } else {
        const double pred =
            sz::lorenzo2d(rec[layout.offset(x - 1, y - 1)],
                          rec[layout.offset(x - 1, y)],
                          rec[layout.offset(x, y - 1)]);
        rec[off] = FpOps<T>::reconstruct(q, pred, codes[i]);
      }
    }
  }
  return rec;
}

template <typename T>
sz::RegionResultT<T> decompress_region_t(std::span<const std::uint8_t> bytes,
                                         const sz::Region& region,
                                         const sz::DecodeOptions& opts) {
  telemetry::Span span_all(telemetry::spans::kDecodeRegion);
  ByteReader r(bytes);
  const sz::ContainerHeader h = sz::read_header(r);
  WAVESZ_REQUIRE(h.variant == sz::Variant::WaveSz,
                 "container is not a waveSZ stream");
  WAVESZ_REQUIRE(h.dtype == FpOps<T>::kDtype,
                 "container value type mismatch (float32 vs float64)");
  WAVESZ_REQUIRE(h.aux <= 1, "unknown waveSZ layout mode");
  WAVESZ_REQUIRE(h.dims.rank >= 2, "waveSZ containers are 2D+");
  const auto mode = static_cast<LayoutMode>(h.aux);
  const sz::CodeChunkIndex idx = sz::read_code_index(r, h);
  const std::size_t meta_bytes = r.position();

  sz::Region rg = region;
  const Dims rdims = sz::normalize_region(rg, h.dims);
  sz::RegionResultT<T> res;
  res.field_dims = h.dims;
  res.region_dims = rdims;

  const bool flat2d = mode == LayoutMode::Flatten2D || h.dims.rank <= 2;
  const Dims flat = h.dims.flatten2d();
  // Flatten2D: the last flat column the region touches decides the column
  // prefix; rank-3 raster (y, z) maps to flat column y * d2 + z.
  const std::size_t hi_col =
      h.dims.rank == 3 ? (rg.hi[1] - 1) * h.dims[2] + (rg.hi[2] - 1) + 1
                       : rg.hi[1];
  const WavefrontLayout layout(flat2d ? flat[0] : h.dims[1],
                               flat2d ? flat[1] : h.dims[2]);
  const std::size_t h_end = flat2d ? rg.hi[0] + hi_col - 1 : 0;
  const std::uint64_t prefix_symbols =
      flat2d ? layout.column_start(h_end)
             : static_cast<std::uint64_t>(rg.hi[0]) * layout.count();

  if (!idx.present() || prefix_symbols == h.point_count) {
    // Index-less stream, or the prefix is the whole stream anyway.
    Dims fd;
    const auto field = decompress_t<T>(bytes, &fd, opts);
    const std::size_t s0 = h.dims.extent[1] * h.dims.extent[2];
    const std::size_t s1 = h.dims.extent[2];
    res.data.reserve(rdims.count());
    for (std::size_t x = rg.lo[0]; x < rg.hi[0]; ++x) {
      for (std::size_t y = rg.lo[1]; y < rg.hi[1]; ++y) {
        for (std::size_t z = rg.lo[2]; z < rg.hi[2]; ++z) {
          res.data.push_back(field[x * s0 + y * s1 + z]);
        }
      }
    }
    res.compressed_bytes_read = bytes.size();
    telemetry::counter_add(telemetry::Counter::RegionBytesRead,
                           res.compressed_bytes_read);
    return res;
  }

  const int nt = sz::resolve_thread_budget(opts.decode_threads);
  const std::size_t chunks = sz::chunks_covering(idx, prefix_symbols);
  const sz::ChunkEntry& last = idx.entries[chunks - 1];

  const std::uint64_t code_plain_need =
      h.huffman ? idx.payload_byte_offset + (last.end_bit + 7) / 8
                : 2 * last.end_element;
  const std::uint64_t code_size = r.u64();
  const auto code_blob = r.bytes(code_size);
  std::vector<std::uint16_t> codes;
  std::size_t code_consumed = 0;
  {
    telemetry::Span span(telemetry::spans::kDecodeCodes);
    auto run = deflate::gzip_decompress_prefix(code_blob, code_plain_need);
    WAVESZ_REQUIRE(run.bytes.size() >= code_plain_need,
                   "code stream shorter than its chunk index claims");
    code_consumed = run.compressed_consumed;
    if (h.huffman) {
      codes = sz::huffman_decode_prefix(run.bytes, idx, last.end_element, nt);
    } else {
      ByteReader cr(run.bytes);
      codes = cr.u16s(last.end_element);
      sz::verify_code_index_crcs(codes, idx, codes.size());
    }
  }

  // Verbatim values consumed by the prefix, in stream order; they are
  // stored raw, so the plain prefix is exactly n * sizeof(T) bytes.
  std::uint64_t n_verbatim = 0;
  for (std::uint64_t i = 0; i < prefix_symbols; ++i) {
    n_verbatim += codes[i] == 0 ? 1u : 0u;
  }
  const std::uint64_t verbatim_size = r.u64();
  const auto verbatim_blob = r.bytes(verbatim_size);
  std::vector<T> verbatim;
  std::size_t verbatim_consumed = 0;
  if (n_verbatim > 0) {
    auto run =
        deflate::gzip_decompress_prefix(verbatim_blob,
                                        n_verbatim * sizeof(T));
    ByteReader ur(run.bytes);
    verbatim = FpOps<T>::read_values(ur, n_verbatim);
    verbatim_consumed = run.compressed_consumed;
  }

  telemetry::Span span_body(telemetry::spans::kWaveReconstruct);
  const sz::LinearQuantizer q(h.eb_absolute, h.quant_bits);
  codes.resize(prefix_symbols);
  std::size_t next_verbatim = 0;
  res.data.reserve(rdims.count());
  if (flat2d) {
    const auto rec = wave_reconstruct_2d_prefix<T>(
        codes, verbatim, &next_verbatim, layout, h_end, q);
    for (std::size_t x = rg.lo[0]; x < rg.hi[0]; ++x) {
      for (std::size_t y = rg.lo[1]; y < rg.hi[1]; ++y) {
        for (std::size_t z = rg.lo[2]; z < rg.hi[2]; ++z) {
          const std::size_t col =
              h.dims.rank == 3 ? y * h.dims[2] + z : y;
          res.data.push_back(rec[layout.offset(x, col)]);
        }
      }
    }
  } else {
    // True3D: reconstruct the complete planes [0, hi[0]) slice by slice,
    // exactly as the full decoder would, then gather.
    const std::size_t slice_points = layout.count();
    std::vector<T> prev;
    std::vector<std::vector<T>> rasters;
    rasters.reserve(rg.hi[0]);
    for (std::size_t z = 0; z < rg.hi[0]; ++z) {
      const auto slice_codes = std::span<const std::uint16_t>(codes).subspan(
          z * slice_points, slice_points);
      std::vector<T> cur;
      if (z == 0) {
        cur = wave_reconstruct_2d_t<T>(slice_codes, verbatim, &next_verbatim,
                                       layout, q);
      } else {
        cur.resize(slice_points);
        wave_reconstruct_slice3d<T>(slice_codes, verbatim, &next_verbatim,
                                    prev, cur, layout, q);
      }
      rasters.push_back(from_wavefront(std::span<const T>(cur), layout));
      prev = std::move(cur);
    }
    const std::size_t s1 = h.dims.extent[2];
    for (std::size_t x = rg.lo[0]; x < rg.hi[0]; ++x) {
      for (std::size_t y = rg.lo[1]; y < rg.hi[1]; ++y) {
        for (std::size_t z = rg.lo[2]; z < rg.hi[2]; ++z) {
          res.data.push_back(rasters[x][y * s1 + z]);
        }
      }
    }
  }
  res.compressed_bytes_read =
      meta_bytes + 8 + code_consumed + 8 + verbatim_consumed;
  telemetry::counter_add(telemetry::Counter::RegionBytesRead,
                         res.compressed_bytes_read);
  return res;
}

}  // namespace

sz::Config default_config() {
  sz::Config cfg;
  cfg.base = sz::EbBase::Two;  // exponent-only quantization (§3.3)
  cfg.huffman = false;         // the FPGA design ships G* only (Table 7)
  return cfg;
}

KernelResult wave_pqd_2d(std::span<float> wavefront,
                         const WavefrontLayout& layout,
                         const sz::LinearQuantizer& q, int threads) {
  return wave_pqd_2d_auto<float>(wavefront, layout, q,
                                 sz::resolve_thread_budget(threads));
}

KernelResult64 wave_pqd_2d_64(std::span<double> wavefront,
                              const WavefrontLayout& layout,
                              const sz::LinearQuantizer& q, int threads) {
  return wave_pqd_2d_auto<double>(wavefront, layout, q,
                                  sz::resolve_thread_budget(threads));
}

std::vector<float> wave_reconstruct_2d(std::span<const std::uint16_t> codes,
                                       std::span<const float> verbatim,
                                       std::size_t* next_verbatim,
                                       const WavefrontLayout& layout,
                                       const sz::LinearQuantizer& q,
                                       int threads) {
  return wave_reconstruct_2d_auto<float>(codes, verbatim, next_verbatim,
                                         layout, q,
                                         sz::resolve_thread_budget(threads));
}

sz::Compressed compress(std::span<const float> data, const Dims& dims,
                        const sz::Config& cfg, LayoutMode mode) {
  return compress_t<float>(data, dims, cfg, mode);
}

sz::Compressed compress(std::span<const double> data, const Dims& dims,
                        const sz::Config& cfg, LayoutMode mode) {
  return compress_t<double>(data, dims, cfg, mode);
}

std::unique_ptr<sz::StagedCompressor> make_staged(std::span<const float> data,
                                                  const Dims& dims,
                                                  const sz::Config& cfg,
                                                  LayoutMode mode) {
  if (cfg.codec == sz::Codec::Szx) return sz::make_staged(data, dims, cfg);
  return std::make_unique<WaveStaged<float>>(data, dims, cfg, mode);
}

std::unique_ptr<sz::StagedCompressor> make_staged(std::span<const double> data,
                                                  const Dims& dims,
                                                  const sz::Config& cfg,
                                                  LayoutMode mode) {
  if (cfg.codec == sz::Codec::Szx) return sz::make_staged(data, dims, cfg);
  return std::make_unique<WaveStaged<double>>(data, dims, cfg, mode);
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out, int pqd_threads) {
  return decompress_t<float>(bytes, dims_out,
                             sz::DecodeOptions{1, pqd_threads});
}

std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 Dims* dims_out, int pqd_threads) {
  return decompress_t<double>(bytes, dims_out,
                              sz::DecodeOptions{1, pqd_threads});
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              const sz::DecodeOptions& opts, Dims* dims_out) {
  return decompress_t<float>(bytes, dims_out, opts);
}

std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 const sz::DecodeOptions& opts,
                                 Dims* dims_out) {
  return decompress_t<double>(bytes, dims_out, opts);
}

sz::RegionResult decompress_region(std::span<const std::uint8_t> bytes,
                                   const sz::Region& region,
                                   const sz::DecodeOptions& opts) {
  return decompress_region_t<float>(bytes, region, opts);
}

sz::RegionResult64 decompress_region64(std::span<const std::uint8_t> bytes,
                                       const sz::Region& region,
                                       const sz::DecodeOptions& opts) {
  return decompress_region_t<double>(bytes, region, opts);
}

}  // namespace wavesz::wave
