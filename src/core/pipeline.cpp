#include "core/pipeline.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wavesz::pipeline {

namespace {

/// Bounded slab-token queue between two stages. Mutex + condvar rather than
/// atomics: the lock is taken once per *slab*, not per element, so the cost
/// is noise at pipeline granularity and the code is trivially TSan-clean.
/// Pushes never block in the Executor because the producer's acquire() bounds
/// in-flight slabs to the ring capacity; pop() is where stalls happen, and
/// where they get measured.
class TokenRing {
 public:
  void push(std::size_t seq) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(seq);
    }
    cv_.notify_one();
  }

  /// Blocks until an item or close; returns false when closed and empty.
  /// A wait that actually happens is a pipeline bubble: it is wrapped in a
  /// kPipelineStall span and its duration added to `stall_ns` and the
  /// PipelineStallNs counter.
  bool pop(std::size_t& out, std::atomic<std::uint64_t>& stall_ns) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      const telemetry::Span stall(telemetry::spans::kPipelineStall);
      const Stopwatch sw;
      cv_.wait(lock, [&] { return !items_.empty() || closed_; });
      const auto ns = static_cast<std::uint64_t>(sw.seconds() * 1e9);
      stall_ns.fetch_add(ns, std::memory_order_relaxed);
      telemetry::counter_add(telemetry::Counter::PipelineStallNs, ns);
    }
    if (items_.empty()) return false;
    out = items_.front();
    items_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::size_t> items_;
  bool closed_ = false;
};

}  // namespace

struct Executor::Impl {
  std::vector<Stage> stages;
  std::size_t depth = 0;

  /// rings[i] feeds stage i; stage i pushes to rings[i+1] (the last stage
  /// retires instead).
  std::vector<std::unique_ptr<TokenRing>> rings;
  std::vector<std::thread> workers;

  // Producer-side flow control: submitted_ - retired_ slabs are in flight,
  // bounded by depth. retire_cv_ wakes acquire()/drain().
  mutable std::mutex mu;
  std::condition_variable retire_cv;
  std::size_t submitted = 0;
  std::size_t retired = 0;
  bool reserved = false;  ///< acquire() called without a matching submit()

  std::atomic<std::uint64_t> stall_ns{0};

  // First stage error wins; later slabs skip work but keep flowing so
  // drain() terminates.
  std::atomic<bool> has_error{false};
  std::mutex err_mu;
  std::exception_ptr error;

  void capture(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!error) {
      error = std::move(e);
      has_error.store(true, std::memory_order_release);
    }
  }

  void rethrow_if_error() {
    if (!has_error.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(err_mu);
    std::rethrow_exception(error);
  }

  void retire_one() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++retired;
    }
    retire_cv.notify_all();
    telemetry::counter_add(telemetry::Counter::PipelineSlabs, 1);
  }

  void run_worker(std::size_t stage_idx) {
    TokenRing& in = *rings[stage_idx];
    TokenRing* next =
        stage_idx + 1 < rings.size() ? rings[stage_idx + 1].get() : nullptr;
    const Stage& stage = stages[stage_idx];
    std::size_t seq = 0;
    while (in.pop(seq, stall_ns)) {
      if (!has_error.load(std::memory_order_acquire)) {
        try {
          const telemetry::Span span(stage.span_name);
          stage.fn(seq);
        } catch (...) {
          capture(std::current_exception());
        }
      }
      if (next != nullptr) {
        next->push(seq);
      } else {
        retire_one();
      }
    }
    // Intake closed and drained: cascade the close downstream so the next
    // worker exits once it finishes what is already in its ring.
    if (next != nullptr) next->close();
  }
};

Executor::Executor(std::vector<Stage> stages, std::size_t depth)
    : impl_(std::make_unique<Impl>()) {
  WAVESZ_REQUIRE(!stages.empty(), "pipeline executor needs at least 1 stage");
  WAVESZ_REQUIRE(depth >= 1, "pipeline depth must be >= 1");
  impl_->stages = std::move(stages);
  impl_->depth = depth;
  impl_->rings.reserve(impl_->stages.size());
  for (std::size_t i = 0; i < impl_->stages.size(); ++i) {
    impl_->rings.push_back(std::make_unique<TokenRing>());
  }
  impl_->workers.reserve(impl_->stages.size());
  for (std::size_t i = 0; i < impl_->stages.size(); ++i) {
    impl_->workers.emplace_back([impl = impl_.get(), i] { impl->run_worker(i); });
  }
}

Executor::~Executor() {
  if (!impl_) return;
  impl_->rings.front()->close();
  for (std::thread& w : impl_->workers) w.join();
}

std::size_t Executor::acquire() {
  Impl& im = *impl_;
  im.rethrow_if_error();
  std::unique_lock<std::mutex> lock(im.mu);
  WAVESZ_REQUIRE(!im.reserved, "pipeline acquire() without submit()");
  if (im.submitted - im.retired >= im.depth) {
    // Every slot is in flight: the producer itself is the stalled stage.
    const telemetry::Span stall(telemetry::spans::kPipelineStall);
    const Stopwatch sw;
    im.retire_cv.wait(lock,
                      [&] { return im.submitted - im.retired < im.depth; });
    const auto ns = static_cast<std::uint64_t>(sw.seconds() * 1e9);
    im.stall_ns.fetch_add(ns, std::memory_order_relaxed);
    telemetry::counter_add(telemetry::Counter::PipelineStallNs, ns);
  }
  im.reserved = true;
  return im.submitted;
}

void Executor::submit() {
  Impl& im = *impl_;
  std::size_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    WAVESZ_REQUIRE(im.reserved, "pipeline submit() without acquire()");
    im.reserved = false;
    seq = im.submitted++;
  }
  im.rings.front()->push(seq);
}

void Executor::drain() {
  Impl& im = *impl_;
  {
    std::unique_lock<std::mutex> lock(im.mu);
    im.retire_cv.wait(lock, [&] { return im.retired == im.submitted; });
  }
  im.rethrow_if_error();
}

Stats Executor::stats() const {
  const Impl& im = *impl_;
  Stats s;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    s.slabs = im.retired;
  }
  s.stall_ns = im.stall_ns.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wavesz::pipeline
