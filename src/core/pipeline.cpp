#include "core/pipeline.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace wavesz::pipeline {

namespace {

/// Bounded slab-token queue between two stages. Mutex + condvar rather than
/// atomics: the lock is taken once per *slab*, not per element, so the cost
/// is noise at pipeline granularity and the code is trivially TSan-clean —
/// and, since PR 10, statically checked: every access to the queue state is
/// proven to hold `mu_` by clang's -Wthread-safety.
/// Pushes never block in the Executor because the producer's acquire() bounds
/// in-flight slabs to the ring capacity; pop() is where stalls happen, and
/// where they get measured.
class TokenRing {
 public:
  void push(std::size_t seq) {
    {
      util::MutexLock lock(mu_);
      items_.push_back(seq);
    }
    cv_.notify_one();
  }

  /// Blocks until an item or close; returns false when closed and empty.
  /// A wait that actually happens is a pipeline bubble: it is wrapped in a
  /// kPipelineStall span and its duration added to `stall_ns` and the
  /// PipelineStallNs counter.
  bool pop(std::size_t& out, std::atomic<std::uint64_t>& stall_ns) {
    util::MutexLock lock(mu_);
    if (items_.empty() && !closed_) {
      const telemetry::Span stall(telemetry::spans::kPipelineStall);
      const Stopwatch sw;
      while (items_.empty() && !closed_) cv_.wait(mu_);
      const auto ns = static_cast<std::uint64_t>(sw.seconds() * 1e9);
      stall_ns.fetch_add(ns, std::memory_order_relaxed);
      telemetry::counter_add(telemetry::Counter::PipelineStallNs, ns);
    }
    if (items_.empty()) return false;
    out = items_.front();
    items_.pop_front();
    return true;
  }

  void close() {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::size_t> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace

struct Executor::Impl {
  std::vector<Stage> stages;
  std::size_t depth = 0;

  /// rings[i] feeds stage i; stage i pushes to rings[i+1] (the last stage
  /// retires instead).
  std::vector<std::unique_ptr<TokenRing>> rings;
  std::vector<std::thread> workers;

  // Producer-side flow control: submitted_ - retired_ slabs are in flight,
  // bounded by depth. retire_cv_ wakes acquire()/drain().
  mutable util::Mutex mu;
  util::CondVar retire_cv;
  std::size_t submitted GUARDED_BY(mu) = 0;
  std::size_t retired GUARDED_BY(mu) = 0;
  /// acquire() called without a matching submit()
  bool reserved GUARDED_BY(mu) = false;

  std::atomic<std::uint64_t> stall_ns{0};

  // First stage error wins; later slabs skip work but keep flowing so
  // drain() terminates. has_error is the lock-free fast-path gate (release
  // store pairs with the workers' acquire loads); the exception_ptr itself
  // only moves under err_mu.
  std::atomic<bool> has_error{false};
  util::Mutex err_mu;
  std::exception_ptr error GUARDED_BY(err_mu);

  void capture(std::exception_ptr e) {
    util::MutexLock lock(err_mu);
    if (!error) {
      error = std::move(e);
      has_error.store(true, std::memory_order_release);
    }
  }

  void rethrow_if_error() {
    if (!has_error.load(std::memory_order_acquire)) return;
    util::MutexLock lock(err_mu);
    std::rethrow_exception(error);
  }

  void retire_one() {
    {
      util::MutexLock lock(mu);
      ++retired;
    }
    retire_cv.notify_all();
    telemetry::counter_add(telemetry::Counter::PipelineSlabs, 1);
  }

  void run_worker(std::size_t stage_idx) {
    TokenRing& in = *rings[stage_idx];
    TokenRing* next =
        stage_idx + 1 < rings.size() ? rings[stage_idx + 1].get() : nullptr;
    const Stage& stage = stages[stage_idx];
    std::size_t seq = 0;
    while (in.pop(seq, stall_ns)) {
      if (!has_error.load(std::memory_order_acquire)) {
        try {
          const telemetry::Span span(stage.span_name);
          stage.fn(seq);
        } catch (...) {
          capture(std::current_exception());
        }
      }
      if (next != nullptr) {
        next->push(seq);
      } else {
        retire_one();
      }
    }
    // Intake closed and drained: cascade the close downstream so the next
    // worker exits once it finishes what is already in its ring.
    if (next != nullptr) next->close();
  }
};

Executor::Executor(std::vector<Stage> stages, std::size_t depth)
    : impl_(std::make_unique<Impl>()) {
  WAVESZ_REQUIRE(!stages.empty(), "pipeline executor needs at least 1 stage");
  WAVESZ_REQUIRE(depth >= 1, "pipeline depth must be >= 1");
  impl_->stages = std::move(stages);
  impl_->depth = depth;
  impl_->rings.reserve(impl_->stages.size());
  for (std::size_t i = 0; i < impl_->stages.size(); ++i) {
    impl_->rings.push_back(std::make_unique<TokenRing>());
  }
  impl_->workers.reserve(impl_->stages.size());
  for (std::size_t i = 0; i < impl_->stages.size(); ++i) {
    impl_->workers.emplace_back([impl = impl_.get(), i] { impl->run_worker(i); });
  }
}

Executor::~Executor() {
  if (!impl_) return;
  impl_->rings.front()->close();
  for (std::thread& w : impl_->workers) w.join();
}

std::size_t Executor::acquire() {
  Impl& im = *impl_;
  im.rethrow_if_error();
  util::MutexLock lock(im.mu);
  WAVESZ_REQUIRE(!im.reserved, "pipeline acquire() without submit()");
  if (im.submitted - im.retired >= im.depth) {
    // Every slot is in flight: the producer itself is the stalled stage.
    const telemetry::Span stall(telemetry::spans::kPipelineStall);
    const Stopwatch sw;
    while (im.submitted - im.retired >= im.depth) im.retire_cv.wait(im.mu);
    const auto ns = static_cast<std::uint64_t>(sw.seconds() * 1e9);
    im.stall_ns.fetch_add(ns, std::memory_order_relaxed);
    telemetry::counter_add(telemetry::Counter::PipelineStallNs, ns);
  }
  im.reserved = true;
  return im.submitted;
}

void Executor::submit() {
  Impl& im = *impl_;
  std::size_t seq = 0;
  {
    util::MutexLock lock(im.mu);
    WAVESZ_REQUIRE(im.reserved, "pipeline submit() without acquire()");
    im.reserved = false;
    seq = im.submitted++;
  }
  im.rings.front()->push(seq);
}

void Executor::drain() {
  Impl& im = *impl_;
  {
    util::MutexLock lock(im.mu);
    while (im.retired != im.submitted) im.retire_cv.wait(im.mu);
  }
  im.rethrow_if_error();
}

Stats Executor::stats() const {
  const Impl& im = *impl_;
  Stats s;
  {
    util::MutexLock lock(im.mu);
    s.slabs = im.retired;
  }
  s.stall_ns = im.stall_ns.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wavesz::pipeline
