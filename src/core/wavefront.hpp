// Wavefront memory layout (paper §3.1, Fig. 5).
//
// A d0 x d1 raster grid is re-laid so that all points with the same
// Manhattan distance h = x + y from the pivot (0,0) — an anti-diagonal —
// become one contiguous "column", columns stored in increasing h, points
// within a column ordered by row index x. Because single-layer Lorenzo
// dependencies only reach columns h-1 and h-2, every point within a column
// is dependency-free with respect to its column mates: iterating column-
// major over this layout gives the FPGA pipeline a new input every cycle
// (pII = 1) with no stalls in the body (paper §3.2).
//
// The preprocessing is "basically memory copy" (paper §3.3): to_wavefront /
// from_wavefront are exact bijections, tested as such over many shapes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/dims.hpp"
#include "util/error.hpp"

namespace wavesz::wave {

/// Index math for the wavefront layout of a d0 x d1 grid.
class WavefrontLayout {
 public:
  WavefrontLayout(std::size_t d0, std::size_t d1);

  std::size_t rows() const { return d0_; }
  std::size_t cols() const { return d1_; }

  /// Number of anti-diagonal columns: d0 + d1 - 1.
  std::size_t column_count() const { return d0_ + d1_ - 1; }

  /// Points in column h (the paper's Lambda for body columns).
  std::size_t column_length(std::size_t h) const;

  /// Smallest row index x present in column h.
  std::size_t column_first_row(std::size_t h) const;

  /// Storage offset of column h's first point.
  std::size_t column_start(std::size_t h) const { return col_start_[h]; }

  /// Storage offset of grid point (x, y) in the wavefront layout.
  std::size_t offset(std::size_t x, std::size_t y) const;

  /// Inverse map: (x, y) of the point at a wavefront storage offset.
  std::pair<std::size_t, std::size_t> point_at(std::size_t offset) const;

  std::size_t count() const { return d0_ * d1_; }

 private:
  std::size_t d0_, d1_;
  std::vector<std::size_t> col_start_;  // prefix sums, size column_count()+1
};

/// Reorder a raster-major grid into the wavefront layout ("basically a
/// memory copy", §3.3). Works for float32 and float64 fields.
template <typename T>
std::vector<T> to_wavefront(std::span<const T> raster,
                            const WavefrontLayout& layout) {
  WAVESZ_REQUIRE(raster.size() == layout.count(),
                 "raster size disagrees with layout");
  std::vector<T> out(raster.size());
  const std::size_t d1 = layout.cols();
  for (std::size_t x = 0; x < layout.rows(); ++x) {
    for (std::size_t y = 0; y < d1; ++y) {
      out[layout.offset(x, y)] = raster[x * d1 + y];
    }
  }
  return out;
}

/// Inverse of to_wavefront.
template <typename T>
std::vector<T> from_wavefront(std::span<const T> wavefront,
                              const WavefrontLayout& layout) {
  WAVESZ_REQUIRE(wavefront.size() == layout.count(),
                 "wavefront size disagrees with layout");
  std::vector<T> out(wavefront.size());
  const std::size_t d1 = layout.cols();
  for (std::size_t x = 0; x < layout.rows(); ++x) {
    for (std::size_t y = 0; y < d1; ++y) {
      out[x * d1 + y] = wavefront[layout.offset(x, y)];
    }
  }
  return out;
}

/// Convenience overloads so containers convert without explicit template
/// arguments at call sites taking vectors.
inline std::vector<float> to_wavefront(const std::vector<float>& raster,
                                       const WavefrontLayout& layout) {
  return to_wavefront(std::span<const float>(raster), layout);
}
inline std::vector<float> from_wavefront(const std::vector<float>& wf,
                                         const WavefrontLayout& layout) {
  return from_wavefront(std::span<const float>(wf), layout);
}

}  // namespace wavesz::wave
