// Bounded-memory streaming compression — the shape a waveSZ deployment on
// an I/O node actually takes (paper §3.3 / Fig. 7): the host feeds plane
// chunks, each chunk is compressed independently (its own wavefront, its
// own gzip member) and flushed, so memory stays O(chunk) regardless of the
// snapshot size and any chunk can later be decoded on its own.
//
//   StreamCompressor sc(Dims::d3(512, 512, 512), wave::default_config());
//   while (more data) sc.feed(plane_span);     // multiples of one plane
//   auto archive = sc.finish();                // self-describing container
//   auto field = stream_decompress(archive);   // or decode chunk by chunk
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/wavesz.hpp"
#include "sz/config.hpp"
#include "util/arena.hpp"
#include "util/dims.hpp"

namespace wavesz::wave {

class StreamCompressor {
 public:
  /// `chunk_planes` planes (slowest axis) per emitted chunk; 0 picks a
  /// default targeting ~32 MB of input per chunk.
  ///
  /// With cfg.pipeline_depth >= 1 the compressor runs the staged chunk
  /// pipeline: feed() stages input into an arena-pooled slab and hands full
  /// slabs to a three-stage executor (PQD / entropy / DEFLATE+frame), so
  /// chunk k+1's prediction overlaps chunk k's Huffman encode and chunk
  /// k-1's gzip+framing, with at most `pipeline_depth` chunks in flight.
  /// The archive bytes are identical to the barrier path (depth 0).
  StreamCompressor(const Dims& dims, const sz::Config& cfg,
                   std::size_t chunk_planes = 0);
  ~StreamCompressor();

  /// Append data; must be a whole number of planes. Compressed chunks are
  /// emitted internally as soon as they fill. A stream is either float32 or
  /// float64: the first feed() fixes the type, mixing throws.
  void feed(std::span<const float> planes);
  void feed(std::span<const double> planes);

  /// Total planes fed so far.
  std::size_t planes_fed() const { return planes_fed_; }

  /// Bytes already committed to finished chunks. In pipelined mode a chunk
  /// counts once its frame stage completes.
  std::size_t compressed_bytes() const;

  /// Flush the tail (a short final chunk is fine), drain the pipeline, and
  /// return the archive. The stream must have received exactly dims[0]
  /// planes.
  std::vector<std::uint8_t> finish();

  /// Allocation statistics of the slab arena — the zero-steady-state-
  /// allocation test hook: after the pipeline warms up (depth + 1 staging
  /// buffers in rotation), `fresh` stops growing while `reuses` climbs.
  util::ArenaStats arena_stats() const { return arena_.stats(); }

 private:
  struct Pipe;

  template <typename T>
  void feed_t(std::span<const T> planes);
  void emit_chunk();
  void check_dtype(bool is_f64);

  Dims dims_;
  sz::Config cfg_;
  std::size_t plane_points_;
  std::size_t chunk_planes_;
  std::size_t planes_fed_ = 0;
  int dtype_ = -1;  // -1 undecided, 0 float32, 1 float64
  // Staging slab for the chunk being accumulated, acquired from the arena
  // and recycled through it once the chunk is compressed.
  util::SlabArena arena_;
  std::vector<float> stage32_;
  std::vector<double> stage64_;
  std::size_t stage_fill_ = 0;
  // Finished chunk payloads; the frame stage worker appends concurrently
  // with caller-side compressed_bytes() in pipelined mode.
  mutable std::mutex chunks_mu_;
  std::vector<std::vector<std::uint8_t>> chunks_;
  bool finished_ = false;
  std::unique_ptr<Pipe> pipe_;  ///< null when cfg.pipeline_depth <= 0
};

/// Decode a whole streamed archive back into the full field. `pqd_threads`
/// is a budget (Config::pqd_threads semantics) for each chunk's Lorenzo
/// reconstruction sweep; results are value-identical for every budget.
std::vector<float> stream_decompress(std::span<const std::uint8_t> bytes,
                                     Dims* dims_out = nullptr,
                                     int pqd_threads = 1);

/// float64 counterpart (archives written from double feeds).
std::vector<double> stream_decompress64(std::span<const std::uint8_t> bytes,
                                        Dims* dims_out = nullptr,
                                        int pqd_threads = 1);

/// stream_decompress() with decode-side control: the archive's chunks are
/// independent wave containers, so `opts.decode_threads > 1` assigns whole
/// chunks to a worker pool (each decoded serially into its own slot of the
/// output — no inner nesting). The output is bit-identical to the serial
/// decode at every setting.
std::vector<float> stream_decompress(std::span<const std::uint8_t> bytes,
                                     const sz::DecodeOptions& opts,
                                     Dims* dims_out = nullptr);
std::vector<double> stream_decompress64(std::span<const std::uint8_t> bytes,
                                        const sz::DecodeOptions& opts,
                                        Dims* dims_out = nullptr);

/// Number of independently decodable chunks in a streamed archive.
std::size_t stream_chunk_count(std::span<const std::uint8_t> bytes);

/// Decode only chunk `index` (planes [first_plane, first_plane+planes)).
struct StreamChunk {
  std::size_t first_plane = 0;
  std::size_t plane_count = 0;
  std::vector<float> data;
};
StreamChunk stream_decompress_chunk(std::span<const std::uint8_t> bytes,
                                    std::size_t index, int pqd_threads = 1);

}  // namespace wavesz::wave
