#include "core/stream.hpp"

#include <algorithm>
#include <exception>
#include <type_traits>

#include "sz/compressor.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/decode_guard.hpp"
#include "util/error.hpp"

namespace wavesz::wave {
namespace {

constexpr std::uint32_t kStreamMagic = 0x53535a57u;  // "WZSS"

struct ArchiveIndex {
  Dims dims = Dims::d1(1);
  std::size_t chunk_planes = 0;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;  // offset, size
  std::size_t payload_base = 0;
};

ArchiveIndex parse_index(std::span<const std::uint8_t> bytes,
                         ByteReader& r) {
  WAVESZ_REQUIRE(r.u32() == kStreamMagic, "not a waveSZ stream archive");
  const int rank = r.u8();
  WAVESZ_REQUIRE(rank >= 1 && rank <= 3, "invalid rank");
  ArchiveIndex idx;
  std::array<std::size_t, 3> ext{};
  for (auto& e : ext) {
    e = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(e > 0, "zero extent in archive");
  }
  idx.dims = Dims{ext, rank};
  // Forged extents must not drive chunk-count arithmetic or downstream
  // per-chunk decodes; the per-chunk wave containers re-validate their own
  // geometry against the same guard.
  (void)guarded_count(idx.dims, sizeof(float));
  idx.chunk_planes = static_cast<std::size_t>(r.u64());
  WAVESZ_REQUIRE(idx.chunk_planes > 0, "invalid chunk size");
  const std::uint64_t count = r.u64();
  const std::uint64_t expected =
      (idx.dims[0] - 1) / idx.chunk_planes + 1;
  WAVESZ_REQUIRE(count == expected, "chunk count disagrees with geometry");
  std::size_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t size = r.u64();
    // Checked accumulation: the claimed sizes must stay inside the archive
    // at every step, so `offset` can never wrap and the final subspan
    // arithmetic below stays in bounds.
    WAVESZ_REQUIRE(size <= bytes.size() && offset <= bytes.size() - size,
                   "archive truncated");
    idx.chunks.emplace_back(offset, size);
    offset += size;
  }
  idx.payload_base = r.position();
  WAVESZ_REQUIRE(offset <= bytes.size() - idx.payload_base,
                 "archive truncated");
  return idx;
}

Dims chunk_dims(const Dims& dims, std::size_t planes) {
  if (dims.rank == 1) return Dims::d1(planes);
  if (dims.rank == 2) return Dims::d2(planes, dims[1]);
  return Dims::d3(planes, dims[1], dims[2]);
}

/// Chunk-parallel archive decode: every chunk is an independent wave
/// container with a known plane placement (index i covers planes starting
/// at i * chunk_planes), so whole chunks go to a worker pool and each is
/// decoded serially into its own slice of the preallocated output. Plane
/// counts are validated against the archive geometry chunk by chunk, which
/// subsumes the serial path's contiguity check.
template <typename T>
std::vector<T> stream_decompress_par_t(std::span<const std::uint8_t> bytes,
                                       Dims* dims_out,
                                       const sz::DecodeOptions& opts) {
  telemetry::Span span_all(telemetry::spans::kStreamDecodeParallel);
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  const std::size_t nchunks = idx.chunks.size();
  const std::size_t total = idx.dims.count();
  const std::size_t plane_points = total / idx.dims[0];
  std::vector<T> out(total);
  const int nt = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(
          sz::resolve_thread_budget(opts.decode_threads)),
      nchunks));
  // Workers decode their chunk serially — parallelism comes from chunk
  // assignment, so parallel regions never nest.
  const sz::DecodeOptions chunk_opts{1, opts.pqd_threads};
  auto decode_one = [&](std::size_t i) {
    telemetry::Span span(telemetry::spans::kStreamDecodeChunk);
    const auto [offset, size] = idx.chunks[i];
    const std::size_t first = i * idx.chunk_planes;
    WAVESZ_REQUIRE(first < idx.dims[0], "chunk exceeds archive geometry");
    Dims cdims;
    std::vector<T> data;
    if constexpr (std::is_same_v<T, double>) {
      data = wave::decompress64(
          bytes.subspan(idx.payload_base + offset, size), chunk_opts, &cdims);
    } else {
      data = wave::decompress(
          bytes.subspan(idx.payload_base + offset, size), chunk_opts, &cdims);
    }
    const std::size_t expect =
        std::min(idx.chunk_planes, idx.dims[0] - first);
    WAVESZ_REQUIRE(cdims[0] == expect,
                   "chunk geometry disagrees with archive index");
    WAVESZ_REQUIRE(data.size() == expect * plane_points,
                   "chunk payload disagrees with archive geometry");
    std::copy(data.begin(), data.end(),
              out.begin() +
                  static_cast<std::ptrdiff_t>(first * plane_points));
  };
  if (nt <= 1) {
    for (std::size_t i = 0; i < nchunks; ++i) decode_one(i);
  } else {
    // Exceptions must not escape an OpenMP region (that terminates the
    // process); capture the first one and rethrow after the barrier.
    std::exception_ptr failure;
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(dynamic)
#endif
    for (std::size_t i = 0; i < nchunks; ++i) {
      try {
        decode_one(i);
      } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
        if (!failure) failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
  }
  telemetry::counter_add(telemetry::Counter::StreamChunks, nchunks);
  if (dims_out != nullptr) *dims_out = idx.dims;
  return out;
}

}  // namespace

StreamCompressor::StreamCompressor(const Dims& dims, const sz::Config& cfg,
                                   std::size_t chunk_planes)
    : dims_(dims), cfg_(cfg),
      plane_points_(dims.rank >= 2
                        ? dims[1] * (dims.rank >= 3 ? dims[2] : 1)
                        : 1),
      chunk_planes_(chunk_planes) {
  WAVESZ_REQUIRE(dims.rank >= 2, "streaming needs a 2D+ dataset");
  if (chunk_planes_ == 0) {
    const std::size_t target_points = 8u << 20;  // ~32 MB of float input
    chunk_planes_ = std::max<std::size_t>(2, target_points / plane_points_);
  }
  // A single-plane chunk would make every point a border in the 2D view.
  WAVESZ_REQUIRE(chunk_planes_ >= 2, "chunk must hold at least two planes");
}

void StreamCompressor::check_dtype(bool is_f64) {
  const int want = is_f64 ? 1 : 0;
  if (dtype_ == -1) {
    dtype_ = want;
  } else {
    WAVESZ_REQUIRE(dtype_ == want,
                   "cannot mix float32 and float64 feeds in one stream");
  }
}

void StreamCompressor::feed(std::span<const float> planes) {
  WAVESZ_REQUIRE(!finished_, "stream already finished");
  check_dtype(false);
  WAVESZ_REQUIRE(planes.size() % plane_points_ == 0,
                 "feed() needs whole planes");
  const std::size_t n = planes.size() / plane_points_;
  WAVESZ_REQUIRE(planes_fed_ + n <= dims_[0], "more planes than dims allow");
  pending_.insert(pending_.end(), planes.begin(), planes.end());
  planes_fed_ += n;
  while (pending_.size() >= chunk_planes_ * plane_points_) {
    emit_chunk();
  }
}

void StreamCompressor::feed(std::span<const double> planes) {
  WAVESZ_REQUIRE(!finished_, "stream already finished");
  check_dtype(true);
  WAVESZ_REQUIRE(planes.size() % plane_points_ == 0,
                 "feed() needs whole planes");
  const std::size_t n = planes.size() / plane_points_;
  WAVESZ_REQUIRE(planes_fed_ + n <= dims_[0], "more planes than dims allow");
  pending64_.insert(pending64_.end(), planes.begin(), planes.end());
  planes_fed_ += n;
  while (pending64_.size() >= chunk_planes_ * plane_points_) {
    emit_chunk();
  }
}

void StreamCompressor::emit_chunk() {
  telemetry::Span span(telemetry::spans::kStreamChunk);
  telemetry::counter_add(telemetry::Counter::StreamChunks, 1);
  const bool f64 = dtype_ == 1;
  const std::size_t buffered =
      f64 ? pending64_.size() : pending_.size();
  const std::size_t planes =
      std::min(chunk_planes_, buffered / plane_points_);
  WAVESZ_ASSERT(planes >= 1, "emit_chunk with no pending data");
  const std::size_t points = planes * plane_points_;
  const Dims cdims = chunk_dims(dims_, planes);
  // Codec::Szx chunks bypass the wave transform entirely — each chunk is an
  // SZx container, and the archive decoders delegate on its variant tag.
  const bool szx = cfg_.codec == sz::Codec::Szx;
  sz::Compressed compressed;
  if (f64) {
    const std::span<const double> chunk(pending64_.data(), points);
    compressed = szx ? sz::compress(chunk, cdims, cfg_)
                     : wave::compress(chunk, cdims, cfg_);
    pending64_.erase(pending64_.begin(),
                     pending64_.begin() +
                         static_cast<std::ptrdiff_t>(points));
  } else {
    const std::span<const float> chunk(pending_.data(), points);
    compressed = szx ? sz::compress(chunk, cdims, cfg_)
                     : wave::compress(chunk, cdims, cfg_);
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(points));
  }
  telemetry::observe(telemetry::Histo::StreamChunkBytes,
                     compressed.bytes.size());
  chunks_.push_back(std::move(compressed.bytes));
}

std::size_t StreamCompressor::compressed_bytes() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.size();
  return total;
}

std::vector<std::uint8_t> StreamCompressor::finish() {
  WAVESZ_REQUIRE(!finished_, "stream already finished");
  WAVESZ_REQUIRE(planes_fed_ == dims_[0],
                 "stream received " + std::to_string(planes_fed_) +
                     " of " + std::to_string(dims_[0]) + " planes");
  // The tail holds fewer than chunk_planes planes; emit it as one short
  // chunk (a single-plane tail degenerates to all-verbatim, which is
  // correct, merely dense).
  if (!pending_.empty() || !pending64_.empty()) emit_chunk();
  WAVESZ_ASSERT(pending_.empty() && pending64_.empty(),
                "tail not fully flushed");
  finished_ = true;

  ByteWriter w;
  w.u32(kStreamMagic);
  w.u8(static_cast<std::uint8_t>(dims_.rank));
  for (int i = 0; i < 3; ++i) {
    w.u64(dims_.extent[static_cast<std::size_t>(i)]);
  }
  w.u64(chunk_planes_);
  w.u64(chunks_.size());
  for (const auto& c : chunks_) w.u64(c.size());
  for (const auto& c : chunks_) w.bytes(c);
  return w.take();
}

std::size_t stream_chunk_count(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return parse_index(bytes, r).chunks.size();
}

StreamChunk stream_decompress_chunk(std::span<const std::uint8_t> bytes,
                                    std::size_t index, int pqd_threads) {
  telemetry::Span span(telemetry::spans::kStreamDecodeChunk);
  telemetry::counter_add(telemetry::Counter::StreamChunks, 1);
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  WAVESZ_REQUIRE(index < idx.chunks.size(), "chunk index out of range");
  const auto [offset, size] = idx.chunks[index];
  StreamChunk out;
  out.first_plane = index * idx.chunk_planes;
  Dims cdims;
  out.data = wave::decompress(bytes.subspan(idx.payload_base + offset, size),
                              &cdims, pqd_threads);
  out.plane_count = cdims[0];
  WAVESZ_REQUIRE(out.first_plane + out.plane_count <= idx.dims[0],
                 "chunk exceeds archive geometry");
  return out;
}

std::vector<float> stream_decompress(std::span<const std::uint8_t> bytes,
                                     Dims* dims_out, int pqd_threads) {
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  std::vector<float> out;
  std::size_t planes_seen = 0;
  for (std::size_t i = 0; i < idx.chunks.size(); ++i) {
    const auto chunk = stream_decompress_chunk(bytes, i, pqd_threads);
    WAVESZ_REQUIRE(chunk.first_plane == planes_seen,
                   "chunk sequence is not contiguous");
    planes_seen += chunk.plane_count;
    out.insert(out.end(), chunk.data.begin(), chunk.data.end());
  }
  WAVESZ_REQUIRE(planes_seen == idx.dims[0], "archive is missing planes");
  if (dims_out != nullptr) *dims_out = idx.dims;
  return out;
}

std::vector<double> stream_decompress64(std::span<const std::uint8_t> bytes,
                                        Dims* dims_out, int pqd_threads) {
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  std::vector<double> out;
  std::size_t planes_seen = 0, col = 0;
  for (const auto& [offset, size] : idx.chunks) {
    Dims cdims;
    const auto chunk = wave::decompress64(
        bytes.subspan(idx.payload_base + offset, size), &cdims, pqd_threads);
    planes_seen += cdims[0];
    out.insert(out.end(), chunk.begin(), chunk.end());
    (void)col;
  }
  WAVESZ_REQUIRE(planes_seen == idx.dims[0], "archive is missing planes");
  if (dims_out != nullptr) *dims_out = idx.dims;
  return out;
}

std::vector<float> stream_decompress(std::span<const std::uint8_t> bytes,
                                     const sz::DecodeOptions& opts,
                                     Dims* dims_out) {
  return stream_decompress_par_t<float>(bytes, dims_out, opts);
}

std::vector<double> stream_decompress64(std::span<const std::uint8_t> bytes,
                                        const sz::DecodeOptions& opts,
                                        Dims* dims_out) {
  return stream_decompress_par_t<double>(bytes, dims_out, opts);
}

}  // namespace wavesz::wave
