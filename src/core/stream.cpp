#include "core/stream.hpp"

#include <algorithm>
#include <exception>
#include <type_traits>
#include <utility>

#include "core/pipeline.hpp"
#include "sz/compressor.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/decode_guard.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wavesz::wave {
namespace {

constexpr std::uint32_t kStreamMagic = 0x53535a57u;  // "WZSS"

struct ArchiveIndex {
  Dims dims = Dims::d1(1);
  std::size_t chunk_planes = 0;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;  // offset, size
  std::size_t payload_base = 0;
};

ArchiveIndex parse_index(std::span<const std::uint8_t> bytes,
                         ByteReader& r) {
  WAVESZ_REQUIRE(r.u32() == kStreamMagic, "not a waveSZ stream archive");
  const int rank = r.u8();
  WAVESZ_REQUIRE(rank >= 1 && rank <= 3, "invalid rank");
  ArchiveIndex idx;
  std::array<std::size_t, 3> ext{};
  for (auto& e : ext) {
    e = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(e > 0, "zero extent in archive");
  }
  idx.dims = Dims{ext, rank};
  // Forged extents must not drive chunk-count arithmetic or downstream
  // per-chunk decodes; the per-chunk wave containers re-validate their own
  // geometry against the same guard.
  (void)guarded_count(idx.dims, sizeof(float));
  idx.chunk_planes = static_cast<std::size_t>(r.u64());
  WAVESZ_REQUIRE(idx.chunk_planes > 0, "invalid chunk size");
  const std::uint64_t count = r.u64();
  const std::uint64_t expected =
      (idx.dims[0] - 1) / idx.chunk_planes + 1;
  WAVESZ_REQUIRE(count == expected, "chunk count disagrees with geometry");
  std::size_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t size = r.u64();
    // Checked accumulation: the claimed sizes must stay inside the archive
    // at every step, so `offset` can never wrap and the final subspan
    // arithmetic below stays in bounds.
    WAVESZ_REQUIRE(size <= bytes.size() && offset <= bytes.size() - size,
                   "archive truncated");
    idx.chunks.emplace_back(offset, size);
    offset += size;
  }
  idx.payload_base = r.position();
  WAVESZ_REQUIRE(offset <= bytes.size() - idx.payload_base,
                 "archive truncated");
  return idx;
}

Dims chunk_dims(const Dims& dims, std::size_t planes) {
  if (dims.rank == 1) return Dims::d1(planes);
  if (dims.rank == 2) return Dims::d2(planes, dims[1]);
  return Dims::d3(planes, dims[1], dims[2]);
}

/// Chunk-parallel archive decode: every chunk is an independent wave
/// container with a known plane placement (index i covers planes starting
/// at i * chunk_planes), so whole chunks go to a worker pool and each is
/// decoded serially into its own slice of the preallocated output. Plane
/// counts are validated against the archive geometry chunk by chunk, which
/// subsumes the serial path's contiguity check.
template <typename T>
std::vector<T> stream_decompress_par_t(std::span<const std::uint8_t> bytes,
                                       Dims* dims_out,
                                       const sz::DecodeOptions& opts) {
  telemetry::Span span_all(telemetry::spans::kStreamDecodeParallel);
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  const std::size_t nchunks = idx.chunks.size();
  const std::size_t total = idx.dims.count();
  const std::size_t plane_points = total / idx.dims[0];
  std::vector<T> out(total);
  const int nt = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(
          sz::resolve_thread_budget(opts.decode_threads)),
      nchunks));
  // Workers decode their chunk serially — parallelism comes from chunk
  // assignment, so parallel regions never nest.
  const sz::DecodeOptions chunk_opts{1, opts.pqd_threads};
  auto decode_one = [&](std::size_t i) {
    telemetry::Span span(telemetry::spans::kStreamDecodeChunk);
    const auto [offset, size] = idx.chunks[i];
    const std::size_t first = i * idx.chunk_planes;
    WAVESZ_REQUIRE(first < idx.dims[0], "chunk exceeds archive geometry");
    Dims cdims;
    std::vector<T> data;
    if constexpr (std::is_same_v<T, double>) {
      data = wave::decompress64(
          bytes.subspan(idx.payload_base + offset, size), chunk_opts, &cdims);
    } else {
      data = wave::decompress(
          bytes.subspan(idx.payload_base + offset, size), chunk_opts, &cdims);
    }
    const std::size_t expect =
        std::min(idx.chunk_planes, idx.dims[0] - first);
    WAVESZ_REQUIRE(cdims[0] == expect,
                   "chunk geometry disagrees with archive index");
    WAVESZ_REQUIRE(data.size() == expect * plane_points,
                   "chunk payload disagrees with archive geometry");
    std::copy(data.begin(), data.end(),
              out.begin() +
                  static_cast<std::ptrdiff_t>(first * plane_points));
  };
  if (nt <= 1) {
    for (std::size_t i = 0; i < nchunks; ++i) decode_one(i);
  } else {
    // Exceptions must not escape an OpenMP region (that terminates the
    // process); capture the first one and rethrow after the barrier.
    std::exception_ptr failure;
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(dynamic)
#endif
    for (std::size_t i = 0; i < nchunks; ++i) {
      try {
        decode_one(i);
      } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
        if (!failure) failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
  }
  telemetry::counter_add(telemetry::Counter::StreamChunks, nchunks);
  if (dims_out != nullptr) *dims_out = idx.dims;
  return out;
}

}  // namespace

/// The chunk-granular pipeline: per-slot staging buffers + staged jobs and
/// the three-stage executor. Member order matters — `ex`'s destructor joins
/// the stage workers, so it must run before `slots` is torn down; keeping
/// `slots` first makes that automatic.
struct StreamCompressor::Pipe {
  struct Slot {
    std::vector<float> f32;
    std::vector<double> f64;
    std::size_t points = 0;
    std::unique_ptr<sz::StagedCompressor> job;
    Stopwatch started;  ///< reset at dispatch; read at frame completion
  };
  std::vector<Slot> slots;
  pipeline::Executor ex;

  Pipe(std::vector<pipeline::Stage> stages, std::size_t depth)
      : slots(depth), ex(std::move(stages), depth) {}

  Slot& slot(std::size_t seq) { return slots[seq % slots.size()]; }
};

StreamCompressor::StreamCompressor(const Dims& dims, const sz::Config& cfg,
                                   std::size_t chunk_planes)
    : dims_(dims), cfg_(cfg),
      plane_points_(dims.rank >= 2
                        ? dims[1] * (dims.rank >= 3 ? dims[2] : 1)
                        : 1),
      chunk_planes_(chunk_planes) {
  WAVESZ_REQUIRE(dims.rank >= 2, "streaming needs a 2D+ dataset");
  if (chunk_planes_ == 0) {
    const std::size_t target_points = 8u << 20;  // ~32 MB of float input
    chunk_planes_ = std::max<std::size_t>(2, target_points / plane_points_);
  }
  // A single-plane chunk would make every point a border in the 2D view.
  WAVESZ_REQUIRE(chunk_planes_ >= 2, "chunk must hold at least two planes");
  if (cfg_.pipeline_depth >= 1) {
    // Head/body/tail schedule over whole chunks: each chunk is an
    // independent container (its own wavefront, Huffman table and gzip
    // members), so chunk k+1's PQD may run while chunk k entropy-encodes
    // and chunk k-1 deflates + frames. The frame stage is the single
    // consumer of ring order, so chunks_ keeps submission order and the
    // archive is byte-identical to the barrier path.
    pipe_ = std::make_unique<Pipe>(
        std::vector<pipeline::Stage>{
            {telemetry::spans::kPipelineSlabPqd,
             [this](std::size_t seq) { pipe_->slot(seq).job->pqd(); }},
            {telemetry::spans::kPipelineSlabEntropy,
             [this](std::size_t seq) { pipe_->slot(seq).job->entropy(); }},
            {telemetry::spans::kPipelineSlabFrame,
             [this](std::size_t seq) {
               Pipe::Slot& slot = pipe_->slot(seq);
               sz::Compressed compressed = slot.job->frame();
               telemetry::counter_add(telemetry::Counter::StreamChunks, 1);
               telemetry::observe(telemetry::Histo::StreamChunkBytes,
                                  compressed.bytes.size());
               telemetry::observe(
                   telemetry::Histo::StreamChunkNs,
                   static_cast<std::uint64_t>(slot.started.seconds() * 1e9));
               {
                 std::lock_guard<std::mutex> lock(chunks_mu_);
                 chunks_.push_back(std::move(compressed.bytes));
               }
               slot.job.reset();
               if (!slot.f32.empty()) arena_.f32.release(std::move(slot.f32));
               if (!slot.f64.empty()) arena_.f64.release(std::move(slot.f64));
               slot.f32 = {};
               slot.f64 = {};
             }}},
        static_cast<std::size_t>(cfg_.pipeline_depth));
  }
}

StreamCompressor::~StreamCompressor() = default;

void StreamCompressor::check_dtype(bool is_f64) {
  const int want = is_f64 ? 1 : 0;
  if (dtype_ == -1) {
    dtype_ = want;
  } else {
    WAVESZ_REQUIRE(dtype_ == want,
                   "cannot mix float32 and float64 feeds in one stream");
  }
}

template <typename T>
void StreamCompressor::feed_t(std::span<const T> planes) {
  constexpr bool kF64 = std::is_same_v<T, double>;
  WAVESZ_REQUIRE(!finished_, "stream already finished");
  check_dtype(kF64);
  WAVESZ_REQUIRE(planes.size() % plane_points_ == 0,
                 "feed() needs whole planes");
  const std::size_t n = planes.size() / plane_points_;
  WAVESZ_REQUIRE(planes_fed_ + n <= dims_[0], "more planes than dims allow");
  planes_fed_ += n;
  // Copy into the arena-backed staging slab and dispatch every time it
  // fills; the slab bounds buffering at one chunk regardless of how much a
  // single feed() delivers (the old pending_ vector grew with the feed and
  // paid an erase-from-front memmove per chunk).
  const std::size_t cap = chunk_planes_ * plane_points_;
  auto& stage = [this]() -> std::vector<T>& {
    if constexpr (kF64) return stage64_;
    else return stage32_;
  }();
  auto& pool = [this]() -> util::VecPool<T>& {
    if constexpr (kF64) return arena_.f64;
    else return arena_.f32;
  }();
  std::size_t consumed = 0;
  while (consumed < planes.size()) {
    if (stage.empty()) {
      stage = pool.acquire(cap);
      stage_fill_ = 0;
    }
    const std::size_t take =
        std::min(cap - stage_fill_, planes.size() - consumed);
    std::copy_n(planes.data() + consumed, take, stage.data() + stage_fill_);
    stage_fill_ += take;
    consumed += take;
    if (stage_fill_ == cap) emit_chunk();
  }
}

void StreamCompressor::feed(std::span<const float> planes) {
  feed_t<float>(planes);
}

void StreamCompressor::feed(std::span<const double> planes) {
  feed_t<double>(planes);
}

void StreamCompressor::emit_chunk() {
  const bool f64 = dtype_ == 1;
  const std::size_t points = stage_fill_;
  WAVESZ_ASSERT(points >= 1 && points % plane_points_ == 0,
                "emit_chunk with no pending data");
  const Dims cdims = chunk_dims(dims_, points / plane_points_);
  // Codec::Szx chunks bypass the wave transform entirely — each chunk is an
  // SZx container, and the archive decoders delegate on its variant tag.
  const bool szx = cfg_.codec == sz::Codec::Szx;

  if (!pipe_) {
    telemetry::Span span(telemetry::spans::kStreamChunk,
                         telemetry::Histo::StreamChunkNs);
    telemetry::counter_add(telemetry::Counter::StreamChunks, 1);
    sz::Compressed compressed;
    if (f64) {
      const std::span<const double> chunk(stage64_.data(), points);
      compressed = szx ? sz::compress(chunk, cdims, cfg_)
                       : wave::compress(chunk, cdims, cfg_);
      arena_.f64.release(std::move(stage64_));
      stage64_ = {};
    } else {
      const std::span<const float> chunk(stage32_.data(), points);
      compressed = szx ? sz::compress(chunk, cdims, cfg_)
                       : wave::compress(chunk, cdims, cfg_);
      arena_.f32.release(std::move(stage32_));
      stage32_ = {};
    }
    stage_fill_ = 0;
    telemetry::observe(telemetry::Histo::StreamChunkBytes,
                       compressed.bytes.size());
    std::lock_guard<std::mutex> lock(chunks_mu_);
    chunks_.push_back(std::move(compressed.bytes));
    return;
  }

  // Pipelined dispatch: acquire() blocks until the target slot's previous
  // occupant has fully retired (that wait is the backpressure — and the
  // kPipelineStall span), so moving the staging slab in is race-free.
  const std::size_t seq = pipe_->ex.acquire();
  Pipe::Slot& slot = pipe_->slot(seq);
  slot.started.reset();
  slot.points = points;
  if (f64) {
    slot.f64 = std::move(stage64_);
    stage64_ = {};
    const std::span<const double> chunk(slot.f64.data(), points);
    slot.job = szx ? sz::make_staged(chunk, cdims, cfg_)
                   : wave::make_staged(chunk, cdims, cfg_);
  } else {
    slot.f32 = std::move(stage32_);
    stage32_ = {};
    const std::span<const float> chunk(slot.f32.data(), points);
    slot.job = szx ? sz::make_staged(chunk, cdims, cfg_)
                   : wave::make_staged(chunk, cdims, cfg_);
  }
  stage_fill_ = 0;
  pipe_->ex.submit();
}

std::size_t StreamCompressor::compressed_bytes() const {
  std::lock_guard<std::mutex> lock(chunks_mu_);
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.size();
  return total;
}

std::vector<std::uint8_t> StreamCompressor::finish() {
  WAVESZ_REQUIRE(!finished_, "stream already finished");
  WAVESZ_REQUIRE(planes_fed_ == dims_[0],
                 "stream received " + std::to_string(planes_fed_) +
                     " of " + std::to_string(dims_[0]) + " planes");
  // The tail holds fewer than chunk_planes planes; emit it as one short
  // chunk (a single-plane tail degenerates to all-verbatim, which is
  // correct, merely dense).
  if (stage_fill_ > 0) emit_chunk();
  WAVESZ_ASSERT(stage_fill_ == 0, "tail not fully flushed");
  if (pipe_) pipe_->ex.drain();
  finished_ = true;

  std::lock_guard<std::mutex> lock(chunks_mu_);
  ByteWriter w;
  w.u32(kStreamMagic);
  w.u8(static_cast<std::uint8_t>(dims_.rank));
  for (int i = 0; i < 3; ++i) {
    w.u64(dims_.extent[static_cast<std::size_t>(i)]);
  }
  w.u64(chunk_planes_);
  w.u64(chunks_.size());
  for (const auto& c : chunks_) w.u64(c.size());
  for (const auto& c : chunks_) w.bytes(c);
  return w.take();
}

std::size_t stream_chunk_count(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return parse_index(bytes, r).chunks.size();
}

StreamChunk stream_decompress_chunk(std::span<const std::uint8_t> bytes,
                                    std::size_t index, int pqd_threads) {
  telemetry::Span span(telemetry::spans::kStreamDecodeChunk);
  telemetry::counter_add(telemetry::Counter::StreamChunks, 1);
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  WAVESZ_REQUIRE(index < idx.chunks.size(), "chunk index out of range");
  const auto [offset, size] = idx.chunks[index];
  StreamChunk out;
  out.first_plane = index * idx.chunk_planes;
  Dims cdims;
  out.data = wave::decompress(bytes.subspan(idx.payload_base + offset, size),
                              &cdims, pqd_threads);
  out.plane_count = cdims[0];
  WAVESZ_REQUIRE(out.first_plane + out.plane_count <= idx.dims[0],
                 "chunk exceeds archive geometry");
  return out;
}

std::vector<float> stream_decompress(std::span<const std::uint8_t> bytes,
                                     Dims* dims_out, int pqd_threads) {
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  std::vector<float> out;
  std::size_t planes_seen = 0;
  for (std::size_t i = 0; i < idx.chunks.size(); ++i) {
    const auto chunk = stream_decompress_chunk(bytes, i, pqd_threads);
    WAVESZ_REQUIRE(chunk.first_plane == planes_seen,
                   "chunk sequence is not contiguous");
    planes_seen += chunk.plane_count;
    out.insert(out.end(), chunk.data.begin(), chunk.data.end());
  }
  WAVESZ_REQUIRE(planes_seen == idx.dims[0], "archive is missing planes");
  if (dims_out != nullptr) *dims_out = idx.dims;
  return out;
}

std::vector<double> stream_decompress64(std::span<const std::uint8_t> bytes,
                                        Dims* dims_out, int pqd_threads) {
  ByteReader r(bytes);
  const auto idx = parse_index(bytes, r);
  std::vector<double> out;
  std::size_t planes_seen = 0, col = 0;
  for (const auto& [offset, size] : idx.chunks) {
    Dims cdims;
    const auto chunk = wave::decompress64(
        bytes.subspan(idx.payload_base + offset, size), &cdims, pqd_threads);
    planes_seen += cdims[0];
    out.insert(out.end(), chunk.begin(), chunk.end());
    (void)col;
  }
  WAVESZ_REQUIRE(planes_seen == idx.dims[0], "archive is missing planes");
  if (dims_out != nullptr) *dims_out = idx.dims;
  return out;
}

std::vector<float> stream_decompress(std::span<const std::uint8_t> bytes,
                                     const sz::DecodeOptions& opts,
                                     Dims* dims_out) {
  return stream_decompress_par_t<float>(bytes, dims_out, opts);
}

std::vector<double> stream_decompress64(std::span<const std::uint8_t> bytes,
                                        const sz::DecodeOptions& opts,
                                        Dims* dims_out) {
  return stream_decompress_par_t<double>(bytes, dims_out, opts);
}

}  // namespace wavesz::wave
