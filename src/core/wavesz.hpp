// waveSZ — the paper's primary contribution (§3).
//
// Pipeline: wavefront preprocessing -> single-layer Lorenzo prediction ->
// linear-scaling quantization (base-2 tightened bound by default) -> gzip,
// with the customized Huffman stage (H*) available in front of gzip to
// reproduce paper Table 7's H*G* rows. Unlike SZ-1.4, border points (first
// row / first column of the 2D view) and non-quantizable points are passed
// to the lossless back end verbatim instead of truncation-coded (§3.2).
//
// Layout modes:
//   Flatten2D — 3D datasets are processed as d0 x (d1*d2), exactly as the
//               paper's artifact runs Hurricane (100x250000) and NYX
//               (512x262144);
//   True3D    — extension: per-slice 2D wavefront with the 3D Lorenzo
//               stencil reaching into the previous reconstructed slice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/wavefront.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/quantizer.hpp"
#include "util/dims.hpp"

namespace wavesz::wave {

enum class LayoutMode : std::uint8_t { Flatten2D = 0, True3D = 1 };

/// Default waveSZ configuration: base-2 tightened bound, gzip only (the
/// FPGA design), 16-bit bins — paper §4.1.
sz::Config default_config();

/// Output of the fully pipelined PQD kernel over one wavefront-layout grid.
struct KernelResult {
  std::vector<std::uint16_t> codes;  ///< wavefront visit order, 0 = verbatim
  std::vector<float> verbatim;       ///< border + non-quantizable originals
};

/// Run prediction-quantization-decompression over `wavefront` (mutated in
/// place to hold decompressor-visible values, as the HLS kernel writes back
/// d_re — Listing 1). 2D Lorenzo only; borders x==0 / y==0 go verbatim.
/// `threads` is a budget with Config::pqd_threads semantics; budgets > 1
/// run the grid as a tiled anti-diagonal wavefront (paper §3.2 on CPU) with
/// bit-identical codes, writeback and verbatim stream.
KernelResult wave_pqd_2d(std::span<float> wavefront,
                         const WavefrontLayout& layout,
                         const sz::LinearQuantizer& q, int threads = 1);

/// Inverse kernel: rebuild the wavefront-layout reconstruction. Same
/// `threads` semantics (and the same bit-exactness guarantee) as
/// wave_pqd_2d().
std::vector<float> wave_reconstruct_2d(std::span<const std::uint16_t> codes,
                                       std::span<const float> verbatim,
                                       std::size_t* next_verbatim,
                                       const WavefrontLayout& layout,
                                       const sz::LinearQuantizer& q,
                                       int threads = 1);

/// float64 counterpart of KernelResult.
struct KernelResult64 {
  std::vector<std::uint16_t> codes;
  std::vector<double> verbatim;
};

KernelResult64 wave_pqd_2d_64(std::span<double> wavefront,
                              const WavefrontLayout& layout,
                              const sz::LinearQuantizer& q, int threads = 1);

/// Full waveSZ compression (float32).
sz::Compressed compress(std::span<const float> data, const Dims& dims,
                        const sz::Config& cfg,
                        LayoutMode mode = LayoutMode::Flatten2D);

/// Full waveSZ compression (float64).
sz::Compressed compress(std::span<const double> data, const Dims& dims,
                        const sz::Config& cfg,
                        LayoutMode mode = LayoutMode::Flatten2D);

/// Build the staged job equivalent to wave::compress(data, dims, cfg, mode)
/// (delegating to the SZx codec when cfg.codec says so), for the slab
/// pipeline (core/pipeline.hpp). The data span must outlive the job.
std::unique_ptr<sz::StagedCompressor> make_staged(
    std::span<const float> data, const Dims& dims, const sz::Config& cfg,
    LayoutMode mode = LayoutMode::Flatten2D);
std::unique_ptr<sz::StagedCompressor> make_staged(
    std::span<const double> data, const Dims& dims, const sz::Config& cfg,
    LayoutMode mode = LayoutMode::Flatten2D);

/// Inverse for float32 containers; throws on a float64 container.
/// `pqd_threads` parallelizes the Lorenzo reconstruction sweep
/// (Config::pqd_threads semantics); the result is value-identical for every
/// budget. True3D containers reconstruct slice-serially regardless.
std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out = nullptr, int pqd_threads = 1);

/// Inverse for float64 containers.
std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 Dims* dims_out = nullptr,
                                 int pqd_threads = 1);

/// decompress() with decode-side control: `opts.decode_threads > 1` runs
/// the v2 chunk-index parallel path (concurrent section inflates +
/// chunk-parallel Huffman decode with per-chunk CRC verification), falling
/// back to the serial decode for v1 streams or a stripped index. The output
/// is bit-identical to the serial path at every setting.
std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              const sz::DecodeOptions& opts,
                              Dims* dims_out = nullptr);
std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 const sz::DecodeOptions& opts,
                                 Dims* dims_out = nullptr);

/// Decode only the stream prefix needed for a hyperslab of the field.
/// Flatten2D streams are ordered by wavefront column h = x + y, and the
/// Lorenzo taps reach only coordinate-wise backward, so the columns
/// [0, (hi_row-1) + (hi_col-1)] are a closed prefix containing the region;
/// True3D streams need the complete planes [0, hi[0]). With a v2 chunk
/// index only the chunks covering that prefix are inflated and decoded;
/// v1 / stripped-index streams fall back to a full decode. Region values
/// are identical to the same slice of a full decompress().
sz::RegionResult decompress_region(std::span<const std::uint8_t> bytes,
                                   const sz::Region& region,
                                   const sz::DecodeOptions& opts = {});
sz::RegionResult64 decompress_region64(std::span<const std::uint8_t> bytes,
                                       const sz::Region& region,
                                       const sz::DecodeOptions& opts = {});

}  // namespace wavesz::wave
