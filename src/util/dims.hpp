// Dataset dimensionality descriptor used across all compressors.
//
// Conventions follow the waveSZ artifact: dims are listed from the slowest-
// varying (outer loop) to the fastest-varying (inner loop) axis, so a
// CESM-ATM field is Dims::d2(1800, 3600) and Hurricane is
// Dims::d3(100, 500, 500). `flatten2d()` reproduces the artifact's practice
// of interpreting a 3D dataset as d0 x (d1*d2) for the FPGA designs.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace wavesz {

struct Dims {
  std::array<std::size_t, 3> extent{1, 1, 1};
  int rank = 1;

  static Dims d1(std::size_t n) {
    WAVESZ_REQUIRE(n > 0, "1D extent must be positive");
    return Dims{{n, 1, 1}, 1};
  }
  static Dims d2(std::size_t rows, std::size_t cols) {
    WAVESZ_REQUIRE(rows > 0 && cols > 0, "2D extents must be positive");
    return Dims{{rows, cols, 1}, 2};
  }
  static Dims d3(std::size_t planes, std::size_t rows, std::size_t cols) {
    WAVESZ_REQUIRE(planes > 0 && rows > 0 && cols > 0,
                   "3D extents must be positive");
    return Dims{{planes, rows, cols}, 3};
  }

  std::size_t count() const { return extent[0] * extent[1] * extent[2]; }

  std::size_t operator[](int axis) const {
    return extent[static_cast<std::size_t>(axis)];
  }

  /// Interpret a 3D dataset as a 2D one of shape d0 x (d1*d2), exactly as the
  /// waveSZ/GhostSZ artifact does (e.g. Hurricane 100x500x500 -> 100x250000).
  Dims flatten2d() const {
    if (rank <= 2) return *this;
    return Dims::d2(extent[0], extent[1] * extent[2]);
  }

  bool operator==(const Dims& o) const {
    return rank == o.rank && extent == o.extent;
  }

  std::string str() const {
    std::string s = std::to_string(extent[0]);
    for (int i = 1; i < rank; ++i) {
      s += 'x';
      s += std::to_string(extent[static_cast<std::size_t>(i)]);
    }
    return s;
  }
};

}  // namespace wavesz
