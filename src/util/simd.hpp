// Runtime-dispatched SIMD kernel layer (vecSZ-style, PAPERS.md).
//
// Every kernel here has three implementations — scalar, SSE2 and AVX2 —
// selected once per call from a process-wide level. The level defaults to
// the widest ISA the CPU reports (probed once via cpuid), can be capped
// with the WAVESZ_SIMD environment variable (`scalar`, `sse2` or `avx2`)
// and overridden from code with set_level(); requests above the detected
// ISA are clamped, so asking for avx2 on an SSE2-only machine silently
// runs the SSE2 path. On non-x86 targets every level resolves to scalar.
//
// Contract: every vectorized path is BIT-IDENTICAL to its scalar
// implementation, which in turn mirrors the arithmetic of the serial
// kernels it accelerates (LinearQuantizer + predict_interior for the PQD
// runs, the std::min/std::max fold for minmax). The scalar paths stay as
// runtime-selectable oracles — tests/simd_parity_test.cpp diffs every
// kernel at every level. Two deliberate exceptions to bit-identity:
//   - minmax: among equal extrema (-0.0 vs 0.0) the sign of the reported
//     zero may differ from the serial fold's first-seen zero; the values
//     compare == either way.
//   - bound_scan is a conservative *filter*: it returns the first lane
//     whose |o-d| <= thr test fails in double (NaN/Inf always flagged);
//     callers re-check the flagged index with exact scalar semantics.
//
// The intrinsics themselves live only in simd.cpp (enforced by
// tools/wavesz_lint.py's simd-containment rule); this header is plain C++.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wavesz::simd {

enum class Level : int { Scalar = 0, Sse2 = 1, Avx2 = 2 };

/// Widest level the CPU supports (cpuid, probed once).
Level detected();

/// Level used by the kernels below: detected(), capped by WAVESZ_SIMD and
/// by the most recent set_level() call.
Level active();

/// Override the active level (clamped to detected()). Intended for tests
/// and benchmarks sweeping the dispatch; thread-safe.
void set_level(Level level);

const char* level_name(Level level);

/// Parse "scalar" / "sse2" / "avx2" (case-sensitive); false on anything
/// else, leaving *out untouched.
bool parse_level(std::string_view text, Level* out);

/// Linear-scaling quantizer parameters in POD form (mirrors
/// sz::LinearQuantizer so the kernels below need no sz-layer dependency).
struct QuantSpec {
  double precision = 0.0;
  double inv_precision = 0.0;
  std::int64_t capacity = 0;
  std::int64_t radius = 0;
};

/// Lane cap of one pqd/reconstruct diagonal run (the unpredictable-lane
/// bitmask is 64 bits wide).
inline constexpr std::size_t kMaxDiagLanes = 64;

/// Lorenzo-2D prediction + linear-scaling quantization over one interior
/// anti-diagonal run: lane j sits at raster index base + j*(s0-1) of a
/// row-major grid with row stride s0, and all its stencil taps (i-s0, i-1,
/// i-s0-1) must be in bounds (the caller peels grid-border lanes). Lanes of
/// one anti-diagonal are dependency-free (vecSZ), so the run vectorizes.
/// Per lane: codes[i] receives the quantizer symbol (0 = unpredictable) and
/// rec[i] the reconstructed history for quantized lanes; unpredictable
/// lanes leave rec[i] untouched and set bit j of the returned mask — the
/// caller must patch their history (truncation roundtrip) before the next
/// diagonal. n <= kMaxDiagLanes. Bit-identical to pqd_step() lane by lane.
std::uint64_t pqd2d_diag(const float* data, float* rec, std::uint16_t* codes,
                         std::size_t base, std::size_t s0, std::size_t n,
                         const QuantSpec& q);
std::uint64_t pqd2d_diag(const double* data, double* rec,
                         std::uint16_t* codes, std::size_t base,
                         std::size_t s0, std::size_t n, const QuantSpec& q);

/// Decode-side counterpart: reconstruct the interior anti-diagonal run from
/// codes[], skipping code-0 lanes (their values are pre-placed in rec[] by
/// the caller). Same geometry and lane cap as pqd2d_diag.
void reconstruct2d_diag(const std::uint16_t* codes, float* rec,
                        std::size_t base, std::size_t s0, std::size_t n,
                        const QuantSpec& q);
void reconstruct2d_diag(const std::uint16_t* codes, double* rec,
                        std::size_t base, std::size_t s0, std::size_t n,
                        const QuantSpec& q);

/// freq[c] += count of c in codes[0, n) for every 16-bit symbol. The
/// vectorized paths count into interleaved sub-tables (dodging
/// store-forward stalls on skewed symbol distributions) and reduce them
/// with wide adds; counts are integers, so the result is exact.
void histogram_u16(const std::uint16_t* codes, std::size_t n,
                   std::uint64_t* freq);

/// Fold min/max over data[0, n) into *lo / *hi (callers seed both, usually
/// with data[0], matching the serial scan's NaN-poisoning semantics): NaN
/// elements never become the extremum, a NaN seed sticks.
void minmax(const float* data, std::size_t n, double* lo, double* hi);
void minmax(const double* data, std::size_t n, double* lo, double* hi);

/// First index i where !(|(double)o[i] - (double)d[i]| <= thr) — a
/// conservative violation filter (any NaN/Inf lane is flagged, including
/// benign equal-infinity pairs, whose difference is NaN/Inf). SIZE_MAX when
/// every lane passes; callers apply exact NaN/Inf semantics at the flagged
/// index and may resume the scan past it.
std::size_t bound_scan(const float* o, const float* d, std::size_t n,
                       double thr);

}  // namespace wavesz::simd
