// Wall-clock stopwatch for throughput measurements.
//
// Matches the paper's measurement convention: latency is the span from the
// moment the compressor receives the in-memory data until the compressed
// bytes are produced (file I/O excluded).
#pragma once

#include <chrono>

namespace wavesz {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// MB/s given the number of uncompressed input bytes processed.
  double mbps(std::size_t bytes) const {
    const double s = seconds();
    return s > 0.0 ? static_cast<double>(bytes) / 1e6 / s : 0.0;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace wavesz
