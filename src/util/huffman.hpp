// Canonical, length-limited Huffman code machinery.
//
// Shared by the DEFLATE substrate (lit/len, distance and code-length
// alphabets, limits 15/15/7) and by SZ's customized Huffman coder over
// 16-bit quantization symbols (limit 24). Lengths are produced by a heap
// Huffman build followed by the classic zlib-style overflow fix, which keeps
// the Kraft sum exactly 1; codes are assigned canonically per RFC 1951.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace wavesz {

/// Code lengths (0 = symbol unused) for the given frequencies, with every
/// used symbol's length in [1, max_length]. A single used symbol gets
/// length 1. Deterministic for fixed input.
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs, int max_length);

/// Canonical code values per RFC 1951 (shorter codes numerically first;
/// ties broken by symbol order). codes[i] is meaningful iff lengths[i] > 0.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths);

/// Verify sum over used symbols of 2^-length == 1 (complete code) or the
/// degenerate single-symbol case. Returns false for over-subscribed sets.
bool kraft_complete(std::span<const std::uint8_t> lengths);

/// Process-wide decode-path selection shared by the DEFLATE inflater and
/// SZ's Huffman codec: when true, the bit-at-a-time reference decoders run
/// instead of the table-driven fast paths. Latched from the
/// WAVESZ_REFERENCE_DECODE environment variable on first query (any value
/// other than "0" enables it); set_reference_decode() overrides it at
/// runtime (benches time both paths, tests pin one). Outputs are identical
/// either way — the knob exists for debugging and differential testing.
bool reference_decode_enabled();
void set_reference_decode(bool on);

/// Orientation of the bits fed to a decoder. Canonical codes are defined
/// MSB-of-code first; DEFLATE packs them into an LSB-first bit stream, so
/// its readers surface the next code bit in bit 0 rather than on top.
/// The flat lookup table must be indexed in the same orientation.
enum class BitOrder : std::uint8_t {
  MsbFirst,  ///< peek(n) has the first stream bit as the MSB (BitReaderMSB)
  LsbFirst,  ///< peek(n) has the first stream bit as the LSB (BitReaderLSB)
};

/// Canonical decoder with two decode paths:
///  * decode(next_bit)        — O(length) per symbol via first-code tables;
///                              the reference oracle, kept bit-for-bit.
///  * decode_fast(peek, consume) — one or two flat table lookups per symbol
///                              (zlib-style two-level scheme: a root table
///                              over the next kRootBits bits, subtables for
///                              longer codes).
class CanonicalDecoder {
 public:
  explicit CanonicalDecoder(std::span<const std::uint8_t> lengths,
                            BitOrder order = BitOrder::MsbFirst);

  /// Decode one symbol; `next_bit` is a callable returning 0/1.
  template <typename NextBit>
  std::uint32_t decode(NextBit&& next_bit) const {
    std::uint32_t acc = 0;
    for (std::size_t len = 1; len <= static_cast<std::size_t>(max_len_);
         ++len) {
      acc = (acc << 1) | (next_bit() & 1u);
      const std::uint32_t offset = acc - first_code_[len];
      if (acc >= first_code_[len] && offset < count_[len]) {
        return sorted_symbols_[first_index_[len] + offset];
      }
    }
    throw_bad_code();
  }

  /// True when the flat table was built. It is skipped for empty codes, for
  /// over-subscribed length sets (whose canonical "codes" overflow their
  /// own bit width), and for forged tables whose subtables would exceed
  /// kMaxTableEntries — callers fall back to decode() in those cases.
  bool has_fast_table() const { return !table_.empty(); }

  /// Decode one symbol via the flat table. `peek(n)` must return the next
  /// `n` stream bits in this decoder's BitOrder, zero-padded past the end
  /// of the stream; `consume(n)` advances by `n` bits and is where a
  /// truncated stream must raise wavesz::Error. Requires has_fast_table().
  template <typename Peek, typename Consume>
  std::uint32_t decode_fast(Peek&& peek, Consume&& consume) const {
    std::uint32_t e = table_[peek(root_bits_)];
    if ((e & 0xffu) >= kLinkControl) {
      consume(root_bits_);
      e = table_[(e >> 8) + peek(static_cast<int>((e & 0xffu) - kLinkControl))];
    }
    if (e == 0) throw_bad_code();
    consume(static_cast<int>(e & 0xffu));
    return e >> 8;
  }

  int max_length() const { return max_len_; }
  int root_bits() const { return root_bits_; }
  bool empty() const { return sorted_symbols_.empty(); }

 private:
  // Flat table entry layout (std::uint32_t): `(payload << 8) | control`.
  // The control byte disambiguates — code lengths never exceed 31, so
  // values >= kLinkControl cannot be lengths:
  //   control 0                — invalid (no code reaches this slot)
  //   control 1..31            — direct: consume `control` bits, emit the
  //                              symbol in `payload`; in a subtable
  //                              `control` excludes the root_bits_ already
  //                              consumed by the link hop
  //   control kLinkControl+b   — root slot shared by codes longer than
  //                              root_bits_: consume the root bits, then
  //                              index the subtable at offset `payload`
  //                              with the next `b` bits
  static constexpr std::uint32_t kLinkControl = 32;

  [[noreturn]] static void throw_bad_code();

  void build_fast_table(std::span<const std::uint8_t> lengths,
                        BitOrder order);

  int max_len_ = 0;
  int root_bits_ = 0;
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint32_t> sorted_symbols_;
  std::vector<std::uint32_t> table_;
};

}  // namespace wavesz
