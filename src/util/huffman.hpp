// Canonical, length-limited Huffman code machinery.
//
// Shared by the DEFLATE substrate (lit/len, distance and code-length
// alphabets, limits 15/15/7) and by SZ's customized Huffman coder over
// 16-bit quantization symbols (limit 24). Lengths are produced by a heap
// Huffman build followed by the classic zlib-style overflow fix, which keeps
// the Kraft sum exactly 1; codes are assigned canonically per RFC 1951.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wavesz {

/// Code lengths (0 = symbol unused) for the given frequencies, with every
/// used symbol's length in [1, max_length]. A single used symbol gets
/// length 1. Deterministic for fixed input.
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs, int max_length);

/// Canonical code values per RFC 1951 (shorter codes numerically first;
/// ties broken by symbol order). codes[i] is meaningful iff lengths[i] > 0.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths);

/// Verify sum over used symbols of 2^-length == 1 (complete code) or the
/// degenerate single-symbol case. Returns false for over-subscribed sets.
bool kraft_complete(std::span<const std::uint8_t> lengths);

/// Canonical decoder: O(length) per symbol via first-code/first-index
/// tables; bits must be fed MSB-of-code first.
class CanonicalDecoder {
 public:
  explicit CanonicalDecoder(std::span<const std::uint8_t> lengths);

  /// Decode one symbol; `next_bit` is a callable returning 0/1.
  template <typename NextBit>
  std::uint32_t decode(NextBit&& next_bit) const {
    std::uint32_t acc = 0;
    for (int len = 1; len <= max_len_; ++len) {
      acc = (acc << 1) | (next_bit() & 1u);
      const std::uint32_t offset = acc - first_code_[len];
      if (acc >= first_code_[len] && offset < count_[len]) {
        return sorted_symbols_[first_index_[len] + offset];
      }
    }
    throw_bad_code();
  }

  int max_length() const { return max_len_; }
  bool empty() const { return sorted_symbols_.empty(); }

 private:
  [[noreturn]] static void throw_bad_code();

  int max_len_ = 0;
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint32_t> sorted_symbols_;
};

}  // namespace wavesz
