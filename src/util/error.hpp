// Error handling primitives shared by every waveSZ module.
//
// All recoverable failures (corrupt containers, bad arguments from callers
// that cross the public API boundary) are reported via wavesz::Error so that
// downstream tools can catch a single type. Internal invariants use
// WAVESZ_ASSERT, which is active in all build types: a violated invariant in
// a compressor is a data-corruption bug, never something to optimize away.
#pragma once

#include <stdexcept>
#include <string>

namespace wavesz {

/// Exception type for all recoverable waveSZ failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Shared message formatter for the check macros below. `file` is the full
/// __FILE__ spelling; only its basename is kept so messages are stable
/// across build directories. Out of line of the macro expansion so every
/// check site costs one call, not a string-building sequence.
inline std::string check_message(const char* prefix, const char* file,
                                 long line, const char* func,
                                 const std::string& msg) {
  std::string path(file);
  const auto slash = path.find_last_of("/\\");
  if (slash != std::string::npos) path.erase(0, slash + 1);
  return std::string(prefix) + path + ":" + std::to_string(line) + " (" +
         func + "): " + msg;
}

}  // namespace detail

/// Throw wavesz::Error with a file:line (function) location prefix when
/// `cond` is false. Used to validate user-facing inputs and serialized
/// containers; the location makes fuzz/CI failures locatable without a
/// debugger.
#define WAVESZ_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::wavesz::Error(::wavesz::detail::check_message(               \
          "", __FILE__, __LINE__, __func__, (msg)));                       \
    }                                                                      \
  } while (0)

/// Internal invariant check, active in every build type.
#define WAVESZ_ASSERT(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::wavesz::Error(::wavesz::detail::check_message(               \
          "internal invariant failed at ", __FILE__, __LINE__, __func__,   \
          (msg)));                                                         \
    }                                                                      \
  } while (0)

}  // namespace wavesz
