// Error handling primitives shared by every waveSZ module.
//
// All recoverable failures (corrupt containers, bad arguments from callers
// that cross the public API boundary) are reported via wavesz::Error so that
// downstream tools can catch a single type. Internal invariants use
// WAVESZ_ASSERT, which is active in all build types: a violated invariant in
// a compressor is a data-corruption bug, never something to optimize away.
#pragma once

#include <stdexcept>
#include <string>

namespace wavesz {

/// Exception type for all recoverable waveSZ failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw wavesz::Error with a formatted location prefix when `cond` is false.
/// Used to validate user-facing inputs and serialized containers.
#define WAVESZ_REQUIRE(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      throw ::wavesz::Error(std::string(__func__) + ": " + (msg));       \
    }                                                                    \
  } while (0)

/// Internal invariant check, active in every build type.
#define WAVESZ_ASSERT(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      throw ::wavesz::Error(std::string("internal invariant failed in ") \
                            + __func__ + ": " + (msg));                  \
    }                                                                    \
  } while (0)

}  // namespace wavesz
