#include "util/checksum.hpp"

#include <array>

namespace wavesz {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
  const auto& t = table();
  std::uint32_t c = state_;
  for (std::uint8_t b : data) {
    c = t[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace wavesz
