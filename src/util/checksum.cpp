#include "util/checksum.hpp"

#include <array>

#include "util/bytes.hpp"

namespace wavesz {
namespace {

/// Slicing tables: t[0] is the classic byte-at-a-time table; t[k][i] is the
/// CRC of byte i followed by k zero bytes, so eight bytes can be folded into
/// the state with eight independent lookups per iteration instead of a
/// serial chain of eight table walks.
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

const std::array<std::array<std::uint32_t, 256>, 8>& tables() {
  static const auto t = make_tables();
  return t;
}

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
  const auto& t = tables();
  std::uint32_t c = state_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = load_le32(p) ^ c;
    const std::uint32_t hi = load_le32(p + 4);
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
        t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ *p) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace wavesz
