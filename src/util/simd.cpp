// SIMD kernel implementations: scalar oracles plus SSE2/AVX2 paths behind
// the runtime dispatch of simd.hpp. This is the only translation unit in
// the tree allowed to include intrinsics headers or touch __builtin_cpu_*
// (tools/wavesz_lint.py, rule simd-containment).
//
// Bit-identity notes, load-bearing for the parity contract:
//   - All PQD arithmetic is double precision; vector add/sub/mul/min/max
//     and the float<->double conversions are IEEE-exact, so lane math
//     matches the scalar kernels operation for operation. The whole tree
//     builds with -ffp-contract=off, so the compiler cannot fuse the
//     scalar kernels' mul+add chains into FMAs the vector code doesn't use.
//   - truncation toward zero: _mm*_cvttpd_epi32 matches the scalar
//     (int64)scaled cast for every lane that passed the capacity test
//     (scaled < capacity-1 <= 65535, comfortably in int32 range).
//   - signed0 / 2 with signed0 = +/-code0 and code0 >= 1 equals
//     sign * (code0 >> 1), implemented as xor/sub with the sign mask.
//   - 2.0 * q is exact, so computing it as q + q is bit-identical.
#include "util/simd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <type_traits>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define WAVESZ_SIMD_X86 1
#include <immintrin.h>
#else
#define WAVESZ_SIMD_X86 0
#endif

namespace wavesz::simd {
namespace {

Level probe() {
#if WAVESZ_SIMD_X86 && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::Avx2;
  if (__builtin_cpu_supports("sse2")) return Level::Sse2;
#endif
  return Level::Scalar;
}

Level clamp_to_detected(Level requested) {
  return static_cast<Level>(
      std::min(static_cast<int>(requested), static_cast<int>(detected())));
}

Level startup_level() {
  Level lv = detected();
  if (const char* e = std::getenv("WAVESZ_SIMD")) {
    Level req = Level::Scalar;
    if (parse_level(e, &req)) lv = clamp_to_detected(req);
  }
  return lv;
}

std::atomic<int>& level_slot() {
  static std::atomic<int> slot{static_cast<int>(startup_level())};
  return slot;
}

// ---------------------------------------------------------------------------
// Scalar kernels — the oracles. Arithmetic mirrors LinearQuantizer::
// quantize{,64}/reconstruct{,64} and predict_interior() term for term.
// ---------------------------------------------------------------------------

template <typename T>
std::uint64_t pqd2d_diag_scalar(const T* data, T* rec, std::uint16_t* codes,
                                std::size_t base, std::size_t s0,
                                std::size_t n, const QuantSpec& qs) {
  std::uint64_t miss = 0;
  const std::size_t st = s0 - 1;
  std::size_t i = base;
  for (std::size_t j = 0; j < n; ++j, i += st) {
    const double pred = static_cast<double>(rec[i - s0]) +
                        static_cast<double>(rec[i - 1]) -
                        static_cast<double>(rec[i - s0 - 1]);
    const double orig = static_cast<double>(data[i]);
    const double diff = orig - pred;
    const double scaled = std::fabs(diff) * qs.inv_precision;
    std::uint16_t code = 0;
    if (scaled < static_cast<double>(qs.capacity - 1)) {
      const std::int64_t code0 = static_cast<std::int64_t>(scaled) + 1;
      const std::int64_t signed0 = diff >= 0.0 ? code0 : -code0;
      const std::int64_t q = signed0 / 2;
      const std::int64_t c = q + qs.radius;
      if (c > 0 && c < qs.capacity) {
        const double recd =
            pred + 2.0 * static_cast<double>(q) * qs.precision;
        if constexpr (std::is_same_v<T, float>) {
          const auto recf = static_cast<float>(recd);
          if (std::fabs(static_cast<double>(recf) - orig) <= qs.precision) {
            code = static_cast<std::uint16_t>(c);
            rec[i] = recf;
          }
        } else {
          if (std::fabs(recd - orig) <= qs.precision) {
            code = static_cast<std::uint16_t>(c);
            rec[i] = recd;
          }
        }
      }
    }
    codes[i] = code;
    if (code == 0) miss |= std::uint64_t{1} << j;
  }
  return miss;
}

template <typename T>
void reconstruct2d_diag_scalar(const std::uint16_t* codes, T* rec,
                               std::size_t base, std::size_t s0,
                               std::size_t n, const QuantSpec& qs) {
  const std::size_t st = s0 - 1;
  std::size_t i = base;
  for (std::size_t j = 0; j < n; ++j, i += st) {
    const std::uint16_t c = codes[i];
    if (c == 0) continue;  // pre-placed unpredictable value
    const double pred = static_cast<double>(rec[i - s0]) +
                        static_cast<double>(rec[i - 1]) -
                        static_cast<double>(rec[i - s0 - 1]);
    const std::int64_t q = static_cast<std::int64_t>(c) - qs.radius;
    rec[i] =
        static_cast<T>(pred + 2.0 * static_cast<double>(q) * qs.precision);
  }
}

void histogram_scalar(const std::uint16_t* codes, std::size_t n,
                      std::uint64_t* freq) {
  for (std::size_t i = 0; i < n; ++i) ++freq[codes[i]];
}

template <typename T>
void minmax_scalar(const T* data, std::size_t n, double* lo, double* hi) {
  double l = *lo, h = *hi;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    l = std::min(l, v);
    h = std::max(h, v);
  }
  *lo = l;
  *hi = h;
}

std::size_t bound_scan_scalar(const float* o, const float* d, std::size_t n,
                              double thr) {
  for (std::size_t i = 0; i < n; ++i) {
    const double e = std::fabs(static_cast<double>(o[i]) -
                               static_cast<double>(d[i]));
    if (!(e <= thr)) return i;
  }
  return static_cast<std::size_t>(-1);
}

// Interleaved sub-table counting shared by the SSE2/AVX2 histogram paths;
// the vector part is the table reduction, the counting itself is scalar but
// striped four ways so consecutive equal symbols don't serialize on one
// store-forwarded counter. Below the cutoff the plain loop wins.
constexpr std::size_t kHistAlphabet = 65536;
constexpr std::size_t kHistCutoff = std::size_t{1} << 14;

std::vector<std::uint64_t> histogram_striped(const std::uint16_t* codes,
                                             std::size_t n) {
  std::vector<std::uint64_t> tables(4 * kHistAlphabet, 0);
  std::uint64_t* t0 = tables.data();
  std::uint64_t* t1 = t0 + kHistAlphabet;
  std::uint64_t* t2 = t1 + kHistAlphabet;
  std::uint64_t* t3 = t2 + kHistAlphabet;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++t0[codes[i]];
    ++t1[codes[i + 1]];
    ++t2[codes[i + 2]];
    ++t3[codes[i + 3]];
  }
  for (; i < n; ++i) ++t0[codes[i]];
  return tables;
}

#if WAVESZ_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 paths (baseline on x86-64; two double lanes). Neighbour loads are
// scalar (no gather before AVX2) — the win is the two-lane double math and
// the broken loop-carried dependency, not the loads.
// ---------------------------------------------------------------------------

/// Narrow a 2x64-bit compare mask to the 2-bit movemask form.
inline int qmask2(__m128d m) { return _mm_movemask_pd(m); }

/// Two-lane pair pipeline shared by the SSE2 and AVX2 PQD paths. Marked
/// always_inline so each wrapper below compiles it under its own ISA: the
/// SSE2 wrapper emits legacy encodings, the AVX2 wrapper VEX three-operand
/// forms. 128 bits per pair is a deliberate width choice, not a fallback:
/// the diagonal taps are strided loads, and a 4-lane 256-bit variant (both
/// vgather- and scalar-pack-based) measured 25-35% slower than this
/// pipeline — the lane-crossing packs and int<->double conversions on the
/// critical path eat the wider math's win (EXPERIMENTS.md, simd sweep).
template <typename T>
[[gnu::always_inline]] inline std::uint64_t pqd2d_diag_pairs(
    const T* data, T* rec, std::uint16_t* codes, std::size_t base,
    std::size_t s0, std::size_t n, const QuantSpec& qs) {
  if (n < 2) return pqd2d_diag_scalar<T>(data, rec, codes, base, s0, n, qs);
  std::uint64_t miss = 0;
  const std::size_t st = s0 - 1;
  const __m128d vinvp = _mm_set1_pd(qs.inv_precision);
  const __m128d vp = _mm_set1_pd(qs.precision);
  const __m128d vcapm1 =
      _mm_set1_pd(static_cast<double>(qs.capacity - 1));
  const __m128d absmask = _mm_castsi128_pd(
      _mm_set1_epi64x(static_cast<long long>(0x7fffffffffffffffULL)));
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const std::size_t i0 = base + j * st;
    const std::size_t i1 = i0 + st;
    const __m128d N = _mm_set_pd(static_cast<double>(rec[i1 - s0]),
                                 static_cast<double>(rec[i0 - s0]));
    const __m128d W = _mm_set_pd(static_cast<double>(rec[i1 - 1]),
                                 static_cast<double>(rec[i0 - 1]));
    const __m128d NW = _mm_set_pd(static_cast<double>(rec[i1 - s0 - 1]),
                                  static_cast<double>(rec[i0 - s0 - 1]));
    const __m128d O = _mm_set_pd(static_cast<double>(data[i1]),
                                 static_cast<double>(data[i0]));
    const __m128d pred = _mm_sub_pd(_mm_add_pd(N, W), NW);
    const __m128d diff = _mm_sub_pd(O, pred);
    const __m128d scaled = _mm_mul_pd(_mm_and_pd(diff, absmask), vinvp);
    const int m1 = qmask2(_mm_cmplt_pd(scaled, vcapm1));
    // trunc(scaled) in lanes 0..1 of the int vector; +1 = code0.
    const __m128i c0 =
        _mm_add_epi32(_mm_cvttpd_epi32(scaled), _mm_set1_epi32(1));
    const int negm = qmask2(_mm_cmplt_pd(diff, _mm_setzero_pd()));
    const __m128i qmag = _mm_srli_epi32(c0, 1);
    alignas(16) std::int32_t qarr[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(qarr), qmag);
    // Apply sign, radius and the range test per lane (two lanes only — the
    // scalar epilogue is cheaper than widening the masks).
    std::int64_t qlane[2];
    std::int64_t clane[2];
    bool okc[2];
    for (int l = 0; l < 2; ++l) {
      const std::int64_t mag = qarr[l];
      const std::int64_t q = ((negm >> l) & 1) != 0 ? -mag : mag;
      qlane[l] = q;
      clane[l] = q + qs.radius;
      okc[l] = clane[l] > 0 && clane[l] < qs.capacity;
    }
    const __m128d qd = _mm_set_pd(static_cast<double>(qlane[1]),
                                  static_cast<double>(qlane[0]));
    const __m128d recd =
        _mm_add_pd(pred, _mm_mul_pd(_mm_add_pd(qd, qd), vp));
    alignas(16) double recarr[2];
    int m3;
    float recf32[2] = {0.0f, 0.0f};
    if constexpr (std::is_same_v<T, float>) {
      const __m128 recf = _mm_cvtpd_ps(recd);
      alignas(16) float f4[4];
      _mm_store_ps(f4, recf);
      recf32[0] = f4[0];
      recf32[1] = f4[1];
      const __m128d recchk = _mm_cvtps_pd(recf);
      const __m128d err = _mm_and_pd(_mm_sub_pd(recchk, O), absmask);
      m3 = qmask2(_mm_cmple_pd(err, vp));
      recarr[0] = recarr[1] = 0.0;
    } else {
      _mm_store_pd(recarr, recd);
      const __m128d err = _mm_and_pd(_mm_sub_pd(recd, O), absmask);
      m3 = qmask2(_mm_cmple_pd(err, vp));
    }
    const std::size_t idx[2] = {i0, i1};
    for (int l = 0; l < 2; ++l) {
      const bool ok =
          ((m1 >> l) & 1) != 0 && okc[l] && ((m3 >> l) & 1) != 0;
      if (ok) {
        codes[idx[l]] = static_cast<std::uint16_t>(clane[l]);
        if constexpr (std::is_same_v<T, float>) {
          rec[idx[l]] = recf32[l];
        } else {
          rec[idx[l]] = static_cast<T>(recarr[l]);
        }
      } else {
        codes[idx[l]] = 0;
        miss |= std::uint64_t{1} << (j + static_cast<std::size_t>(l));
      }
    }
  }
  if (j < n) {
    miss |= pqd2d_diag_scalar<T>(data, rec, codes, base + j * st, s0, n - j,
                                 qs)
            << j;
  }
  return miss;
}

template <typename T>
std::uint64_t pqd2d_diag_sse2(const T* data, T* rec, std::uint16_t* codes,
                              std::size_t base, std::size_t s0, std::size_t n,
                              const QuantSpec& qs) {
  return pqd2d_diag_pairs<T>(data, rec, codes, base, s0, n, qs);
}

template <typename T>
[[gnu::always_inline]] inline void reconstruct2d_diag_pairs(
    const std::uint16_t* codes, T* rec, std::size_t base, std::size_t s0,
    std::size_t n, const QuantSpec& qs) {
  if (n < 2) {
    reconstruct2d_diag_scalar<T>(codes, rec, base, s0, n, qs);
    return;
  }
  const std::size_t st = s0 - 1;
  const __m128d vp = _mm_set1_pd(qs.precision);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const std::size_t i0 = base + j * st;
    const std::size_t i1 = i0 + st;
    const std::uint16_t c0 = codes[i0], c1 = codes[i1];
    if (c0 == 0 && c1 == 0) continue;
    const __m128d N = _mm_set_pd(static_cast<double>(rec[i1 - s0]),
                                 static_cast<double>(rec[i0 - s0]));
    const __m128d W = _mm_set_pd(static_cast<double>(rec[i1 - 1]),
                                 static_cast<double>(rec[i0 - 1]));
    const __m128d NW = _mm_set_pd(static_cast<double>(rec[i1 - s0 - 1]),
                                  static_cast<double>(rec[i0 - s0 - 1]));
    const __m128d pred = _mm_sub_pd(_mm_add_pd(N, W), NW);
    const __m128d qd = _mm_set_pd(
        static_cast<double>(static_cast<std::int64_t>(c1) - qs.radius),
        static_cast<double>(static_cast<std::int64_t>(c0) - qs.radius));
    const __m128d recd =
        _mm_add_pd(pred, _mm_mul_pd(_mm_add_pd(qd, qd), vp));
    if constexpr (std::is_same_v<T, float>) {
      const __m128 recf = _mm_cvtpd_ps(recd);
      alignas(16) float f4[4];
      _mm_store_ps(f4, recf);
      if (c0 != 0) rec[i0] = f4[0];
      if (c1 != 0) rec[i1] = f4[1];
    } else {
      alignas(16) double d2[2];
      _mm_store_pd(d2, recd);
      if (c0 != 0) rec[i0] = static_cast<T>(d2[0]);
      if (c1 != 0) rec[i1] = static_cast<T>(d2[1]);
    }
  }
  if (j < n) {
    reconstruct2d_diag_scalar<T>(codes, rec, base + j * st, s0, n - j, qs);
  }
}

template <typename T>
void reconstruct2d_diag_sse2(const std::uint16_t* codes, T* rec,
                             std::size_t base, std::size_t s0, std::size_t n,
                             const QuantSpec& qs) {
  reconstruct2d_diag_pairs<T>(codes, rec, base, s0, n, qs);
}

void histogram_sse2(const std::uint16_t* codes, std::size_t n,
                    std::uint64_t* freq) {
  if (n < kHistCutoff) {
    histogram_scalar(codes, n, freq);
    return;
  }
  const auto tables = histogram_striped(codes, n);
  const std::uint64_t* t0 = tables.data();
  const std::uint64_t* t1 = t0 + kHistAlphabet;
  const std::uint64_t* t2 = t1 + kHistAlphabet;
  const std::uint64_t* t3 = t2 + kHistAlphabet;
  for (std::size_t s = 0; s < kHistAlphabet; s += 2) {
    const __m128i a = _mm_add_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t0 + s)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t1 + s)));
    const __m128i b = _mm_add_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t2 + s)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t3 + s)));
    const __m128i f =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(freq + s));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(freq + s),
                     _mm_add_epi64(f, _mm_add_epi64(a, b)));
  }
}

template <typename T>
void minmax_sse2(const T* data, std::size_t n, double* lo, double* hi) {
  __m128d vlo = _mm_set1_pd(*lo);
  __m128d vhi = _mm_set1_pd(*hi);
  __m128d vlo2 = vlo, vhi2 = vhi;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128d a, b;
    if constexpr (std::is_same_v<T, float>) {
      const __m128 f = _mm_loadu_ps(data + i);
      a = _mm_cvtps_pd(f);
      b = _mm_cvtps_pd(_mm_movehl_ps(f, f));
    } else {
      a = _mm_loadu_pd(data + i);
      b = _mm_loadu_pd(data + i + 2);
    }
    // min_pd(v, acc) keeps acc when v is NaN (unordered returns the second
    // operand) — the same skip-NaN fold as std::min(acc, v).
    vlo = _mm_min_pd(a, vlo);
    vhi = _mm_max_pd(a, vhi);
    vlo2 = _mm_min_pd(b, vlo2);
    vhi2 = _mm_max_pd(b, vhi2);
  }
  alignas(16) double larr[4], harr[4];
  _mm_store_pd(larr, vlo);
  _mm_store_pd(larr + 2, vlo2);
  _mm_store_pd(harr, vhi);
  _mm_store_pd(harr + 2, vhi2);
  double l = *lo, h = *hi;
  for (int k = 0; k < 4; ++k) {
    l = std::min(l, larr[k]);
    h = std::max(h, harr[k]);
  }
  for (; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    l = std::min(l, v);
    h = std::max(h, v);
  }
  *lo = l;
  *hi = h;
}

std::size_t bound_scan_sse2(const float* o, const float* d, std::size_t n,
                            double thr) {
  const __m128d vthr = _mm_set1_pd(thr);
  const __m128d absmask = _mm_castsi128_pd(
      _mm_set1_epi64x(static_cast<long long>(0x7fffffffffffffffULL)));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d ov = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(o + i))));
    const __m128d dv = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(d + i))));
    const __m128d e = _mm_and_pd(_mm_sub_pd(ov, dv), absmask);
    // NLE is true for NaN lanes too — exactly the conservative filter the
    // header promises.
    const int bad = _mm_movemask_pd(_mm_cmpnle_pd(e, vthr));
    if (bad != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(
                     static_cast<unsigned>(bad)));
    }
  }
  const std::size_t tail = bound_scan_scalar(o + i, d + i, n - i, thr);
  return tail == static_cast<std::size_t>(-1) ? tail : i + tail;
}

// ---------------------------------------------------------------------------
// AVX2 paths. Compiled with a function-level target so the default build
// stays runnable on SSE2-only machines.
//
// The diagonal PQD kernels re-instantiate the two-lane pair pipeline under
// the AVX2 target rather than widening to four double lanes: GCC inlines a
// baseline always_inline callee into a higher-target caller, so these
// wrappers get full VEX three-operand codegen of the shared body. The
// contiguous-access kernels (histogram reduction, minmax, bound_scan) do
// use 256-bit vectors — sequential loads are where the width pays.
// ---------------------------------------------------------------------------

template <typename T>
__attribute__((target("avx2"))) std::uint64_t pqd2d_diag_avx2(
    const T* data, T* rec, std::uint16_t* codes, std::size_t base,
    std::size_t s0, std::size_t n, const QuantSpec& qs) {
  return pqd2d_diag_pairs<T>(data, rec, codes, base, s0, n, qs);
}

template <typename T>
__attribute__((target("avx2"))) void reconstruct2d_diag_avx2(
    const std::uint16_t* codes, T* rec, std::size_t base, std::size_t s0,
    std::size_t n, const QuantSpec& qs) {
  reconstruct2d_diag_pairs<T>(codes, rec, base, s0, n, qs);
}

__attribute__((target("avx2"))) void histogram_avx2(
    const std::uint16_t* codes, std::size_t n, std::uint64_t* freq) {
  if (n < kHistCutoff) {
    histogram_scalar(codes, n, freq);
    return;
  }
  const auto tables = histogram_striped(codes, n);
  const std::uint64_t* t0 = tables.data();
  const std::uint64_t* t1 = t0 + kHistAlphabet;
  const std::uint64_t* t2 = t1 + kHistAlphabet;
  const std::uint64_t* t3 = t2 + kHistAlphabet;
  for (std::size_t s = 0; s < kHistAlphabet; s += 4) {
    const __m256i a = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t0 + s)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t1 + s)));
    const __m256i b = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t2 + s)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t3 + s)));
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(freq + s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(freq + s),
                        _mm256_add_epi64(f, _mm256_add_epi64(a, b)));
  }
}

template <typename T>
__attribute__((target("avx2"))) void minmax_avx2(const T* data,
                                                 std::size_t n, double* lo,
                                                 double* hi) {
  __m256d vlo = _mm256_set1_pd(*lo);
  __m256d vhi = _mm256_set1_pd(*hi);
  __m256d vlo2 = vlo, vhi2 = vhi;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d a, b;
    if constexpr (std::is_same_v<T, float>) {
      a = _mm256_cvtps_pd(_mm_loadu_ps(data + i));
      b = _mm256_cvtps_pd(_mm_loadu_ps(data + i + 4));
    } else {
      a = _mm256_loadu_pd(data + i);
      b = _mm256_loadu_pd(data + i + 4);
    }
    vlo = _mm256_min_pd(a, vlo);
    vhi = _mm256_max_pd(a, vhi);
    vlo2 = _mm256_min_pd(b, vlo2);
    vhi2 = _mm256_max_pd(b, vhi2);
  }
  alignas(32) double larr[8], harr[8];
  _mm256_store_pd(larr, vlo);
  _mm256_store_pd(larr + 4, vlo2);
  _mm256_store_pd(harr, vhi);
  _mm256_store_pd(harr + 4, vhi2);
  double l = *lo, h = *hi;
  for (int k = 0; k < 8; ++k) {
    l = std::min(l, larr[k]);
    h = std::max(h, harr[k]);
  }
  for (; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    l = std::min(l, v);
    h = std::max(h, v);
  }
  *lo = l;
  *hi = h;
}

__attribute__((target("avx2"))) std::size_t bound_scan_avx2(
    const float* o, const float* d, std::size_t n, double thr) {
  const __m256d vthr = _mm256_set1_pd(thr);
  const __m256d absmask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(0x7fffffffffffffffULL)));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ov = _mm256_cvtps_pd(_mm_loadu_ps(o + i));
    const __m256d dv = _mm256_cvtps_pd(_mm_loadu_ps(d + i));
    const __m256d e = _mm256_and_pd(_mm256_sub_pd(ov, dv), absmask);
    const int bad =
        _mm256_movemask_pd(_mm256_cmp_pd(e, vthr, _CMP_NLE_UQ));
    if (bad != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(
                     static_cast<unsigned>(bad)));
    }
  }
  const std::size_t tail = bound_scan_scalar(o + i, d + i, n - i, thr);
  return tail == static_cast<std::size_t>(-1) ? tail : i + tail;
}

#endif  // WAVESZ_SIMD_X86

template <typename T>
std::uint64_t pqd2d_diag_t(const T* data, T* rec, std::uint16_t* codes,
                           std::size_t base, std::size_t s0, std::size_t n,
                           const QuantSpec& q) {
  switch (active()) {
#if WAVESZ_SIMD_X86
    case Level::Avx2:
      return pqd2d_diag_avx2<T>(data, rec, codes, base, s0, n, q);
    case Level::Sse2:
      return pqd2d_diag_sse2<T>(data, rec, codes, base, s0, n, q);
#endif
    default:
      return pqd2d_diag_scalar<T>(data, rec, codes, base, s0, n, q);
  }
}

template <typename T>
void reconstruct2d_diag_t(const std::uint16_t* codes, T* rec,
                          std::size_t base, std::size_t s0, std::size_t n,
                          const QuantSpec& q) {
  switch (active()) {
#if WAVESZ_SIMD_X86
    case Level::Avx2:
      reconstruct2d_diag_avx2<T>(codes, rec, base, s0, n, q);
      return;
    case Level::Sse2:
      reconstruct2d_diag_sse2<T>(codes, rec, base, s0, n, q);
      return;
#endif
    default:
      reconstruct2d_diag_scalar<T>(codes, rec, base, s0, n, q);
      return;
  }
}

template <typename T>
void minmax_t(const T* data, std::size_t n, double* lo, double* hi) {
  switch (active()) {
#if WAVESZ_SIMD_X86
    case Level::Avx2:
      minmax_avx2<T>(data, n, lo, hi);
      return;
    case Level::Sse2:
      minmax_sse2<T>(data, n, lo, hi);
      return;
#endif
    default:
      minmax_scalar<T>(data, n, lo, hi);
      return;
  }
}

}  // namespace

Level detected() {
  static const Level probed = probe();
  return probed;
}

Level active() {
  return static_cast<Level>(level_slot().load(std::memory_order_relaxed));
}

void set_level(Level level) {
  level_slot().store(static_cast<int>(clamp_to_detected(level)),
                     std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::Avx2:
      return "avx2";
    case Level::Sse2:
      return "sse2";
    default:
      return "scalar";
  }
}

bool parse_level(std::string_view text, Level* out) {
  if (text == "scalar") {
    *out = Level::Scalar;
  } else if (text == "sse2") {
    *out = Level::Sse2;
  } else if (text == "avx2") {
    *out = Level::Avx2;
  } else {
    return false;
  }
  return true;
}

std::uint64_t pqd2d_diag(const float* data, float* rec, std::uint16_t* codes,
                         std::size_t base, std::size_t s0, std::size_t n,
                         const QuantSpec& q) {
  return pqd2d_diag_t<float>(data, rec, codes, base, s0, n, q);
}

std::uint64_t pqd2d_diag(const double* data, double* rec,
                         std::uint16_t* codes, std::size_t base,
                         std::size_t s0, std::size_t n, const QuantSpec& q) {
  return pqd2d_diag_t<double>(data, rec, codes, base, s0, n, q);
}

void reconstruct2d_diag(const std::uint16_t* codes, float* rec,
                        std::size_t base, std::size_t s0, std::size_t n,
                        const QuantSpec& q) {
  reconstruct2d_diag_t<float>(codes, rec, base, s0, n, q);
}

void reconstruct2d_diag(const std::uint16_t* codes, double* rec,
                        std::size_t base, std::size_t s0, std::size_t n,
                        const QuantSpec& q) {
  reconstruct2d_diag_t<double>(codes, rec, base, s0, n, q);
}

void histogram_u16(const std::uint16_t* codes, std::size_t n,
                   std::uint64_t* freq) {
  switch (active()) {
#if WAVESZ_SIMD_X86
    case Level::Avx2:
      histogram_avx2(codes, n, freq);
      return;
    case Level::Sse2:
      histogram_sse2(codes, n, freq);
      return;
#endif
    default:
      histogram_scalar(codes, n, freq);
      return;
  }
}

void minmax(const float* data, std::size_t n, double* lo, double* hi) {
  minmax_t<float>(data, n, lo, hi);
}

void minmax(const double* data, std::size_t n, double* lo, double* hi) {
  minmax_t<double>(data, n, lo, hi);
}

std::size_t bound_scan(const float* o, const float* d, std::size_t n,
                       double thr) {
  switch (active()) {
#if WAVESZ_SIMD_X86
    case Level::Avx2:
      return bound_scan_avx2(o, d, n, thr);
    case Level::Sse2:
      return bound_scan_sse2(o, d, n, thr);
#endif
    default:
      return bound_scan_scalar(o, d, n, thr);
  }
}

}  // namespace wavesz::simd
