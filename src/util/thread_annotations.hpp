// Clang Thread Safety Analysis annotation macros.
//
// These expand to clang's capability attributes when the compiler supports
// them and to nothing everywhere else, so annotated code compiles
// identically under gcc. The `wavesz_thread_safety` CMake target turns on
// `-Wthread-safety` for every src/ library under clang, and CI's
// thread-safety leg builds that configuration with -Werror: an access to a
// GUARDED_BY member without its mutex is a build break, not a TSan roll of
// the dice.
//
// Vocabulary (mirrors the clang documentation and Abseil's usage):
//   CAPABILITY("mutex")   class is a lockable capability (util::Mutex).
//   SCOPED_CAPABILITY     RAII class that acquires at ctor / releases at
//                         dtor (util::MutexLock).
//   GUARDED_BY(mu)        member may only be touched while holding mu.
//   PT_GUARDED_BY(mu)     pointee (not the pointer) is guarded by mu.
//   REQUIRES(mu)          caller must hold mu across the call.
//   ACQUIRE(mu)/RELEASE(mu)  function takes / drops the capability.
//   TRY_ACQUIRE(ok, mu)   conditional acquire, `ok` is the success value.
//   EXCLUDES(mu)          caller must NOT hold mu (non-reentrant locks).
//   ASSERT_CAPABILITY(mu) runtime-checked "I already hold mu".
//   RETURN_CAPABILITY(mu) function returns a reference to mu.
//   NO_THREAD_SAFETY_ANALYSIS  opt a function out (ctor/dtor edge cases).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define WAVESZ_TSA_ATTR(x) __attribute__((x))
#else
#define WAVESZ_TSA_ATTR(x)  // no-op on gcc/msvc: annotations vanish
#endif

#define CAPABILITY(x) WAVESZ_TSA_ATTR(capability(x))

#define SCOPED_CAPABILITY WAVESZ_TSA_ATTR(scoped_lockable)

#define GUARDED_BY(x) WAVESZ_TSA_ATTR(guarded_by(x))

#define PT_GUARDED_BY(x) WAVESZ_TSA_ATTR(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) WAVESZ_TSA_ATTR(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) WAVESZ_TSA_ATTR(acquired_after(__VA_ARGS__))

#define REQUIRES(...) WAVESZ_TSA_ATTR(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  WAVESZ_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) WAVESZ_TSA_ATTR(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  WAVESZ_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) WAVESZ_TSA_ATTR(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  WAVESZ_TSA_ATTR(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) WAVESZ_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) WAVESZ_TSA_ATTR(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) WAVESZ_TSA_ATTR(assert_capability(x))

#define RETURN_CAPABILITY(x) WAVESZ_TSA_ATTR(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS WAVESZ_TSA_ATTR(no_thread_safety_analysis)
