// Bit-level I/O in both bit orders.
//
// DEFLATE (RFC 1951) packs bits LSB-first within each byte, while the
// customized Huffman coder of SZ (and most textbook canonical coders) is most
// naturally expressed MSB-first. Both flavours are provided; each reader
// raises wavesz::Error on overrun so corrupted streams fail loudly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace wavesz {

/// LSB-first bit writer (RFC 1951 convention).
class BitWriterLSB {
 public:
  void bits(std::uint32_t value, int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    acc_ |= static_cast<std::uint64_t>(value & mask(n)) << fill_;
    fill_ += n;
    while (fill_ >= 8) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Pad to a byte boundary with zero bits (DEFLATE stored-block alignment).
  void align_byte() {
    if (fill_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ = 0;
      fill_ = 0;
    }
  }

  void byte(std::uint8_t b) {
    WAVESZ_ASSERT(fill_ == 0, "byte() requires byte alignment");
    buf_.push_back(b);
  }

  /// Append the first `nbits` bits of `src` (LSB-first within each byte),
  /// regardless of this writer's current bit phase. This is the primitive
  /// behind stitching independently produced DEFLATE chunk streams into one
  /// member; when both sides are byte-aligned it degenerates to a memcpy.
  void append(std::span<const std::uint8_t> src, std::size_t nbits) {
    WAVESZ_ASSERT(nbits <= src.size() * 8, "append past end of source");
    const std::size_t full = nbits / 8;
    if (fill_ == 0) {
      buf_.insert(buf_.end(), src.begin(),
                  src.begin() + static_cast<std::ptrdiff_t>(full));
    } else {
      std::size_t i = 0;
      for (; i + 4 <= full; i += 4) {
        bits(static_cast<std::uint32_t>(src[i]) |
                 (static_cast<std::uint32_t>(src[i + 1]) << 8) |
                 (static_cast<std::uint32_t>(src[i + 2]) << 16) |
                 (static_cast<std::uint32_t>(src[i + 3]) << 24),
             32);
      }
      for (; i < full; ++i) bits(src[i], 8);
    }
    const int rem = static_cast<int>(nbits % 8);
    if (rem > 0) bits(src[full], rem);
  }

  std::size_t bit_count() const { return buf_.size() * 8 + fill_; }
  std::vector<std::uint8_t> take() {
    align_byte();
    return std::move(buf_);
  }

 private:
  static std::uint32_t mask(int n) {
    return n >= 32 ? 0xffffffffu : ((1u << n) - 1u);
  }
  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// LSB-first bit reader (RFC 1951 convention).
class BitReaderLSB {
 public:
  explicit BitReaderLSB(std::span<const std::uint8_t> s) : s_(s) {}

  std::uint32_t bits(int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    while (fill_ < n) {
      WAVESZ_REQUIRE(pos_ < s_.size(), "bitstream truncated");
      acc_ |= static_cast<std::uint64_t>(s_[pos_++]) << fill_;
      fill_ += 8;
    }
    auto v = static_cast<std::uint32_t>(acc_ & ((n >= 32) ? ~0ull
                                                          : ((1ull << n) - 1)));
    acc_ >>= n;
    fill_ -= n;
    return v;
  }

  std::uint32_t bit() { return bits(1); }

  /// Drop buffered bits up to the next byte boundary.
  void align_byte() {
    const int drop = fill_ % 8;
    acc_ >>= drop;
    fill_ -= drop;
  }

  std::uint8_t byte() {
    if (fill_ >= 8) {
      auto v = static_cast<std::uint8_t>(acc_ & 0xff);
      acc_ >>= 8;
      fill_ -= 8;
      return v;
    }
    WAVESZ_ASSERT(fill_ == 0, "byte() requires byte alignment");
    WAVESZ_REQUIRE(pos_ < s_.size(), "bitstream truncated");
    return s_[pos_++];
  }

  /// Bytes consumed from the underlying span (buffered bits count as read).
  std::size_t consumed() const { return pos_ - fill_ / 8; }

 private:
  std::span<const std::uint8_t> s_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// MSB-first bit writer (customized Huffman convention).
class BitWriterMSB {
 public:
  void bits(std::uint32_t value, int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    for (int i = n - 1; i >= 0; --i) {
      cur_ = static_cast<std::uint8_t>((cur_ << 1) | ((value >> i) & 1u));
      if (++fill_ == 8) {
        buf_.push_back(cur_);
        cur_ = 0;
        fill_ = 0;
      }
    }
    nbits_ += static_cast<std::size_t>(n);
  }

  std::size_t bit_count() const { return nbits_; }

  std::vector<std::uint8_t> take() {
    if (fill_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(cur_ << (8 - fill_)));
      cur_ = 0;
      fill_ = 0;
    }
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint8_t cur_ = 0;
  int fill_ = 0;
  std::size_t nbits_ = 0;
};

/// MSB-first bit reader (customized Huffman convention).
class BitReaderMSB {
 public:
  explicit BitReaderMSB(std::span<const std::uint8_t> s) : s_(s) {}

  std::uint32_t bit() {
    const std::size_t byte_idx = pos_ >> 3;
    WAVESZ_REQUIRE(byte_idx < s_.size(), "bitstream truncated");
    const int shift = 7 - static_cast<int>(pos_ & 7);
    ++pos_;
    return (s_[byte_idx] >> shift) & 1u;
  }

  std::uint32_t bits(int n) {
    std::uint32_t v = 0;
    for (int i = 0; i < n; ++i) v = (v << 1) | bit();
    return v;
  }

  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> s_;
  std::size_t pos_ = 0;
};

}  // namespace wavesz
