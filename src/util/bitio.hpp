// Bit-level I/O in both bit orders.
//
// DEFLATE (RFC 1951) packs bits LSB-first within each byte, while the
// customized Huffman coder of SZ (and most textbook canonical coders) is most
// naturally expressed MSB-first. Both flavours are provided; each reader
// raises wavesz::Error on overrun so corrupted streams fail loudly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace wavesz {

/// LSB-first bit writer (RFC 1951 convention).
class BitWriterLSB {
 public:
  void bits(std::uint32_t value, int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    acc_ |= static_cast<std::uint64_t>(value & mask(n)) << fill_;
    fill_ += n;
    while (fill_ >= 8) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Pad to a byte boundary with zero bits (DEFLATE stored-block alignment).
  void align_byte() {
    if (fill_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ = 0;
      fill_ = 0;
    }
  }

  void byte(std::uint8_t b) {
    WAVESZ_ASSERT(fill_ == 0, "byte() requires byte alignment");
    buf_.push_back(b);
  }

  /// Append the first `nbits` bits of `src` (LSB-first within each byte),
  /// regardless of this writer's current bit phase. This is the primitive
  /// behind stitching independently produced DEFLATE chunk streams into one
  /// member; when both sides are byte-aligned it degenerates to a memcpy.
  void append(std::span<const std::uint8_t> src, std::size_t nbits) {
    WAVESZ_ASSERT(nbits <= src.size() * 8, "append past end of source");
    const std::size_t full = nbits / 8;
    if (fill_ == 0) {
      buf_.insert(buf_.end(), src.begin(),
                  src.begin() + static_cast<std::ptrdiff_t>(full));
    } else {
      std::size_t i = 0;
      for (; i + 4 <= full; i += 4) {
        bits(static_cast<std::uint32_t>(src[i]) |
                 (static_cast<std::uint32_t>(src[i + 1]) << 8) |
                 (static_cast<std::uint32_t>(src[i + 2]) << 16) |
                 (static_cast<std::uint32_t>(src[i + 3]) << 24),
             32);
      }
      for (; i < full; ++i) bits(src[i], 8);
    }
    const int rem = static_cast<int>(nbits % 8);
    if (rem > 0) bits(src[full], rem);
  }

  std::size_t bit_count() const {
    return buf_.size() * 8 + static_cast<std::size_t>(fill_);
  }
  std::vector<std::uint8_t> take() {
    align_byte();
    return std::move(buf_);
  }

 private:
  static std::uint32_t mask(int n) {
    return n >= 32 ? 0xffffffffu : ((1u << n) - 1u);
  }
  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// LSB-first bit reader (RFC 1951 convention) over a 64-bit accumulator.
///
/// The accumulator is topped up eight bytes at a time while the cursor is at
/// least a word away from the tail, then byte-at-a-time over the final
/// stretch. Invariant throughout: `pos_ * 8 - fill_` equals the number of
/// bits consumed, so a refill's word load always ORs either fresh bits or
/// bit-identical copies of bits already sitting above `fill_` — reloads are
/// idempotent and the reader never rewinds `pos_`.
class BitReaderLSB {
 public:
  explicit BitReaderLSB(std::span<const std::uint8_t> s) : s_(s) {}

  /// Next `n` bits (first stream bit in bit 0) without consuming them,
  /// zero-padded when fewer than `n` bits remain. n <= 32.
  std::uint32_t peek(int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    if (fill_ < n) refill();
    return static_cast<std::uint32_t>(
        acc_ & ((n >= 32) ? 0xffffffffull : ((1ull << n) - 1)));
  }

  /// Advance by `n` bits; raises wavesz::Error("bitstream truncated") when
  /// the stream holds fewer than `n` more bits.
  void consume(int n) {
    if (fill_ < n) {
      refill();
      WAVESZ_REQUIRE(fill_ >= n, "bitstream truncated");
    }
    acc_ >>= n;
    fill_ -= n;
  }

  std::uint32_t bits(int n) {
    const std::uint32_t v = peek(n);
    consume(n);
    return v;
  }

  std::uint32_t bit() { return bits(1); }

  /// Drop buffered bits up to the next byte boundary.
  void align_byte() {
    const int drop = fill_ % 8;
    acc_ >>= drop;
    fill_ -= drop;
  }

  std::uint8_t byte() {
    if (fill_ >= 8) {
      auto v = static_cast<std::uint8_t>(acc_ & 0xff);
      acc_ >>= 8;
      fill_ -= 8;
      return v;
    }
    WAVESZ_ASSERT(fill_ == 0, "byte() requires byte alignment");
    WAVESZ_REQUIRE(pos_ < s_.size(), "bitstream truncated");
    // Bypassing the accumulator invalidates any unclaimed lookahead bits a
    // bulk refill left above fill_; drop them so the next refill re-reads.
    acc_ = 0;
    return s_[pos_++];
  }

  /// Copy `n` bytes out in bulk (stored DEFLATE blocks). Requires byte
  /// alignment; drains buffered whole bytes, then block-copies the rest.
  void read_bytes(std::uint8_t* dst, std::size_t n) {
    WAVESZ_ASSERT(fill_ % 8 == 0, "read_bytes() requires byte alignment");
    while (n > 0 && fill_ >= 8) {
      *dst++ = static_cast<std::uint8_t>(acc_ & 0xff);
      acc_ >>= 8;
      fill_ -= 8;
      --n;
    }
    WAVESZ_REQUIRE(n <= s_.size() - pos_, "bitstream truncated");
    if (n > 0) {
      acc_ = 0;  // see byte(): direct span reads invalidate the lookahead
      copy_bytes(dst, s_.data() + pos_, n);
      pos_ += n;
    }
  }

  /// Bytes consumed from the underlying span (buffered bits count as read).
  std::size_t consumed() const { return pos_ - static_cast<std::size_t>(fill_) / 8; }

 private:
  void refill() {
    if (pos_ + 8 <= s_.size()) {
      // GCC 12's VRP warns -Warray-bounds on the guarded dead path when
      // this inlines against a buffer it knows is smaller than 8 bytes
      // (e.g. a constant test vector); the branch condition makes the
      // 8-byte load unreachable there.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
      acc_ |= load_le64(s_.data() + pos_) << fill_;
#pragma GCC diagnostic pop
      pos_ += static_cast<std::size_t>((63 - fill_) >> 3);
      fill_ |= 56;
    } else {
      while (fill_ <= 56 && pos_ < s_.size()) {
        acc_ |= static_cast<std::uint64_t>(s_[pos_++]) << fill_;
        fill_ += 8;
      }
    }
  }

  std::span<const std::uint8_t> s_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// MSB-first bit writer (customized Huffman convention).
class BitWriterMSB {
 public:
  void bits(std::uint32_t value, int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    for (int i = n - 1; i >= 0; --i) {
      cur_ = static_cast<std::uint8_t>((static_cast<std::uint32_t>(cur_) << 1) |
                                       ((value >> i) & 1u));
      if (++fill_ == 8) {
        buf_.push_back(cur_);
        cur_ = 0;
        fill_ = 0;
      }
    }
    nbits_ += static_cast<std::size_t>(n);
  }

  std::size_t bit_count() const { return nbits_; }

  std::vector<std::uint8_t> take() {
    if (fill_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(cur_ << (8 - fill_)));
      cur_ = 0;
      fill_ = 0;
    }
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint8_t cur_ = 0;
  int fill_ = 0;
  std::size_t nbits_ = 0;
};

/// MSB-first bit reader (customized Huffman convention) over a 64-bit
/// accumulator with the next stream bit in bit 63. Same refill scheme and
/// `pos_ * 8 - fill_` consumed-bits invariant as BitReaderLSB, mirrored for
/// big-endian bit order, so position() stays bit-exact for the trailing
/// `payload_bits` checks in the SZ Huffman container.
class BitReaderMSB {
 public:
  explicit BitReaderMSB(std::span<const std::uint8_t> s) : s_(s) {}

  /// Seek-to-bit-offset construction: start reading at absolute `start_bit`
  /// of `s`. position() keeps reporting absolute stream bits, so a chunked
  /// decoder can seek to a recorded offset and still run the same trailing
  /// `payload_bits` checks as a from-the-top decode.
  BitReaderMSB(std::span<const std::uint8_t> s, std::size_t start_bit) {
    WAVESZ_REQUIRE(start_bit <= s.size() * 8, "bit seek past end of stream");
    s_ = s.subspan(start_bit / 8);
    base_bits_ = (start_bit / 8) * 8;
    const int phase = static_cast<int>(start_bit % 8);
    if (phase > 0) consume(phase);
  }

  /// Next `n` bits (first stream bit as the MSB of the result) without
  /// consuming them, zero-padded when fewer than `n` bits remain. n <= 32.
  std::uint32_t peek(int n) {
    WAVESZ_ASSERT(n >= 0 && n <= 32, "bit count out of range");
    if (fill_ < n) refill();
    return n == 0 ? 0u : static_cast<std::uint32_t>(acc_ >> (64 - n));
  }

  /// Advance by `n` bits; raises wavesz::Error("bitstream truncated") when
  /// the stream holds fewer than `n` more bits.
  void consume(int n) {
    if (fill_ < n) {
      refill();
      WAVESZ_REQUIRE(fill_ >= n, "bitstream truncated");
    }
    acc_ <<= n;
    fill_ -= n;
  }

  std::uint32_t bits(int n) {
    const std::uint32_t v = peek(n);
    consume(n);
    return v;
  }

  std::uint32_t bit() { return bits(1); }

  /// Exact number of bits consumed so far, absolute within the stream the
  /// reader was constructed over (seek offsets included).
  std::size_t position() const {
    return base_bits_ + pos_ * 8 - static_cast<std::size_t>(fill_);
  }

 private:
  void refill() {
    if (pos_ + 8 <= s_.size()) {
      // Same GCC 12 -Warray-bounds false positive as BitReaderLSB::refill.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
      acc_ |= load_be64(s_.data() + pos_) >> fill_;
#pragma GCC diagnostic pop
      pos_ += static_cast<std::size_t>((63 - fill_) >> 3);
      fill_ |= 56;
    } else {
      while (fill_ <= 56 && pos_ < s_.size()) {
        acc_ |= static_cast<std::uint64_t>(s_[pos_++]) << (56 - fill_);
        fill_ += 8;
      }
    }
  }

  std::span<const std::uint8_t> s_;
  std::size_t pos_ = 0;
  std::size_t base_bits_ = 0;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

}  // namespace wavesz
