// IEEE-754 bit-level helpers backing the base-2 co-optimization (paper §3.3).
//
// The original SZ accepts an arbitrary decimal error bound, whose binary
// mantissa is a 0/1 mix (paper Table 3); dividing by it needs a full FP
// divider. waveSZ tightens the bound to the nearest *smaller* power of two so
// the quantization division becomes an exponent add/subtract. These helpers
// implement that tightening, expose the mantissa decomposition used to print
// Table 3, and provide the exponent-only scaling primitive.
#pragma once

#include <cstdint>
#include <string>

namespace wavesz {

/// Largest power of two that is <= x (x must be positive and finite).
/// E.g. pow2_tighten(1e-3) == 2^-10 == 1/1024.
double pow2_tighten(double x);

/// Exponent k of the tightened bound: pow2_tighten(x) == 2^k.
int pow2_tighten_exp(double x);

/// True when x is exactly a (possibly subnormal) power of two.
bool is_pow2(double x);

/// x * 2^e computed by exponent manipulation; the base-2 quantization path
/// uses this in place of division by the error bound.
double scale_pow2(double x, int e);

/// Decomposition of a double into normalized significand bits and exponent,
/// for reproducing paper Table 3: value == (1.<mantissa bits>)_2 x 2^exp.
struct MantissaDecomposition {
  std::string mantissa_bits;  ///< leading significand bits after "1."
  int exponent = 0;
  bool mantissa_is_zero = true;  ///< true iff the value is a power of two
};

MantissaDecomposition decompose(double value, int bits_to_show = 13);

}  // namespace wavesz
