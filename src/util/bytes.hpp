// Little-endian byte-oriented serialization used by every container format.
//
// ByteWriter grows an owned std::vector<std::uint8_t>; ByteReader walks a
// borrowed span with hard bounds checks so that a truncated or corrupted
// container raises wavesz::Error instead of reading out of bounds.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace wavesz {

// ---------------------------------------------------------------------------
// Centralized raw-memory primitives.
//
// Every unaligned load and raw byte copy in the codebase routes through the
// helpers below (together with util/float_bits.* for IEEE-754 punning); the
// containment is machine-enforced by tools/wavesz_lint.py rule `raw-memory`.
// Keeping the entire type-punning surface in one reviewed file is what lets
// the sanitizer, fuzz and tidy jobs reason about out-of-bounds behaviour.
// ---------------------------------------------------------------------------

/// Unaligned 32-bit little-endian load. Compiles to a single mov on every
/// mainstream target; the swap is constant-folded away on matching-endian
/// hosts.
inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t w;
  std::memcpy(&w, p, sizeof w);
  if constexpr (std::endian::native == std::endian::big) {
    w = __builtin_bswap32(w);
  }
  return w;
}

/// Unaligned 64-bit little-endian load (first memory byte in bit 0).
inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);
  if constexpr (std::endian::native == std::endian::big) {
    w = __builtin_bswap64(w);
  }
  return w;
}

/// Unaligned 64-bit big-endian load (first memory byte in bits 63..56).
inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);
  if constexpr (std::endian::native == std::endian::little) {
    w = __builtin_bswap64(w);
  }
  return w;
}

/// Raw copy of `n` bytes between non-overlapping buffers.
inline void copy_bytes(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
}

/// Fixed 8-byte copy (the word-at-a-time step of back-reference expansion;
/// caller guarantees src/dst are at least 8 bytes apart).
inline void copy8(std::uint8_t* dst, const std::uint8_t* src) {
  std::memcpy(dst, src, 8);
}

/// View a span of trivially copyable elements as its raw byte image (the
/// host's little-endian layout, asserted by ByteWriter::raw). Checksums over
/// typed arrays route through here so the reinterpretation stays inside the
/// reviewed raw-memory surface.
template <typename T>
inline std::span<const std::uint8_t> bytes_of(std::span<const T> s) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const std::uint8_t*>(s.data()),
          s.size() * sizeof(T)};
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void bytes(std::span<const std::uint8_t> s) { raw(s.data(), s.size()); }

  void floats(std::span<const float> s) {
    raw(s.data(), s.size() * sizeof(float));
  }

  void doubles(std::span<const double> s) {
    raw(s.data(), s.size() * sizeof(double));
  }

  void u16s(std::span<const std::uint16_t> s) {
    raw(s.data(), s.size() * sizeof(std::uint16_t));
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    static_assert(std::endian::native == std::endian::little,
                  "serialization assumes a little-endian host");
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> s) : s_(s) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  float f32() { return read<float>(); }
  double f64() { return read<double>(); }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto out = s_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::vector<float> floats(std::size_t n) { return array<float>(n); }

  std::vector<double> doubles(std::size_t n) { return array<double>(n); }

  std::vector<std::uint16_t> u16s(std::size_t n) {
    return array<std::uint16_t>(n);
  }

  std::size_t remaining() const { return s_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == s_.size(); }

 private:
  template <typename T>
  T read() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, s_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Bulk element read with an overflow-safe length check: the element
  /// count is validated against the remaining bytes *by division*, so a
  /// forged count near 2^64 cannot wrap `n * sizeof(T)` into a small
  /// number and slip past the bounds check.
  template <typename T>
  std::vector<T> array(std::size_t n) {
    WAVESZ_REQUIRE(n <= remaining() / sizeof(T),
                   "container truncated: claimed " + std::to_string(n) +
                       " elements at offset " + std::to_string(pos_) +
                       " but only " + std::to_string(remaining()) +
                       " bytes remain");
    std::vector<T> out(n);
    std::memcpy(out.data(), s_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  /// Overflow-safe: compares `n` against the remaining byte count instead
  /// of forming `pos_ + n`, which a huge claimed length could wrap.
  void require(std::size_t n) const {
    WAVESZ_REQUIRE(n <= s_.size() - pos_,
                   "container truncated: need " + std::to_string(n) +
                       " bytes at offset " + std::to_string(pos_) +
                       " but only " + std::to_string(s_.size() - pos_) +
                       " remain");
  }

  std::span<const std::uint8_t> s_;
  std::size_t pos_ = 0;
};

}  // namespace wavesz
