// Little-endian byte-oriented serialization used by every container format.
//
// ByteWriter grows an owned std::vector<std::uint8_t>; ByteReader walks a
// borrowed span with hard bounds checks so that a truncated or corrupted
// container raises wavesz::Error instead of reading out of bounds.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wavesz {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void bytes(std::span<const std::uint8_t> s) { raw(s.data(), s.size()); }

  void floats(std::span<const float> s) {
    raw(s.data(), s.size() * sizeof(float));
  }

  void doubles(std::span<const double> s) {
    raw(s.data(), s.size() * sizeof(double));
  }

  void u16s(std::span<const std::uint16_t> s) {
    raw(s.data(), s.size() * sizeof(std::uint16_t));
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    static_assert(std::endian::native == std::endian::little,
                  "serialization assumes a little-endian host");
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> s) : s_(s) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  float f32() { return read<float>(); }
  double f64() { return read<double>(); }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto out = s_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::vector<float> floats(std::size_t n) {
    require(n * sizeof(float));
    std::vector<float> out(n);
    std::memcpy(out.data(), s_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return out;
  }

  std::vector<double> doubles(std::size_t n) {
    require(n * sizeof(double));
    std::vector<double> out(n);
    std::memcpy(out.data(), s_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return out;
  }

  std::vector<std::uint16_t> u16s(std::size_t n) {
    require(n * sizeof(std::uint16_t));
    std::vector<std::uint16_t> out(n);
    std::memcpy(out.data(), s_.data() + pos_, n * sizeof(std::uint16_t));
    pos_ += n * sizeof(std::uint16_t);
    return out;
  }

  std::size_t remaining() const { return s_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == s_.size(); }

 private:
  template <typename T>
  T read() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, s_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    WAVESZ_REQUIRE(pos_ + n <= s_.size(),
                   "container truncated: need " + std::to_string(n) +
                       " bytes at offset " + std::to_string(pos_) +
                       " but only " + std::to_string(s_.size() - pos_) +
                       " remain");
  }

  std::span<const std::uint8_t> s_;
  std::size_t pos_ = 0;
};

}  // namespace wavesz
