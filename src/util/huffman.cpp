#include "util/huffman.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/error.hpp"

namespace wavesz {
namespace {

/// Entry in a package-merge list: either a leaf (symbol index) or a package
/// of two entries from the previous level.
struct PmNode {
  std::uint64_t weight;
  std::int32_t symbol;         // >= 0 for leaves
  std::int32_t left = -1;      // package children: indices into prev level
  std::int32_t right = -1;
};

/// Width of the root lookup table: codes this short resolve in one probe.
/// 10 covers every hot symbol of both alphabets (DEFLATE codes cap at 15;
/// SZ's quantization codes are sharply peaked, so the frequent ones are
/// short) while keeping the root table at 4 KiB.
constexpr int kRootBits = 10;

/// Hard cap on root + subtable entries (4 MiB of std::uint32_t). Real
/// tables stay far below this — a uniform 65,536-symbol code needs ~66K
/// entries — but a forged (symbol, length) header can demand a deep
/// subtable under every root prefix; refusing to build simply drops that
/// blob onto the reference decoder, which is O(length) and allocates
/// nothing per symbol.
constexpr std::size_t kMaxTableEntries = 1u << 20;

std::uint32_t reverse_code_bits(std::uint32_t code, int len) {
  std::uint32_t out = 0;
  for (int i = 0; i < len; ++i) out = (out << 1) | ((code >> i) & 1u);
  return out;
}

std::atomic<int> g_reference_decode{-1};  // -1 = env not read yet

}  // namespace

bool reference_decode_enabled() {
  int v = g_reference_decode.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("WAVESZ_REFERENCE_DECODE");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    g_reference_decode.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_reference_decode(bool on) {
  g_reference_decode.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs, int max_length) {
  WAVESZ_REQUIRE(max_length >= 1 && max_length <= 31,
                 "max code length out of range");
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  // Leaves sorted by (weight, symbol) — deterministic.
  std::vector<PmNode> leaves;
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] > 0) {
      leaves.push_back(PmNode{freqs[s], static_cast<std::int32_t>(s)});
    }
  }
  if (leaves.empty()) return lengths;
  if (leaves.size() == 1) {
    lengths[static_cast<std::size_t>(leaves[0].symbol)] = 1;
    return lengths;
  }
  WAVESZ_REQUIRE(static_cast<std::uint64_t>(leaves.size()) <=
                     (1ull << max_length),
                 "alphabet too large for requested code-length limit");
  std::sort(leaves.begin(), leaves.end(), [](const PmNode& a,
                                             const PmNode& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.symbol < b.symbol;
  });

  // Package-merge (Larmore & Hirschberg): build L levels of sorted lists,
  // each level = leaves merged with pairwise packages of the previous level.
  // Selecting the cheapest 2n-2 entries of the last level yields optimal,
  // Kraft-complete code lengths bounded by max_length.
  std::vector<std::vector<PmNode>> levels;
  levels.reserve(static_cast<std::size_t>(max_length));
  levels.push_back(leaves);
  for (int level = 1; level < max_length; ++level) {
    const auto& prev = levels.back();
    std::vector<PmNode> packages;
    packages.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      packages.push_back(PmNode{prev[i].weight + prev[i + 1].weight, -1,
                                static_cast<std::int32_t>(i),
                                static_cast<std::int32_t>(i + 1)});
    }
    std::vector<PmNode> merged;
    merged.reserve(leaves.size() + packages.size());
    std::merge(leaves.begin(), leaves.end(), packages.begin(), packages.end(),
               std::back_inserter(merged),
               [](const PmNode& a, const PmNode& b) {
                 // Leaves before packages on weight ties keeps the tree flat.
                 if (a.weight != b.weight) return a.weight < b.weight;
                 return (a.symbol >= 0) > (b.symbol >= 0);
               });
    levels.push_back(std::move(merged));
  }

  // Count, per symbol, in how many selected entries it participates.
  // Iterative expansion: a work item is (level, index).
  std::vector<std::pair<int, std::int32_t>> stack;
  const std::size_t take = 2 * leaves.size() - 2;
  WAVESZ_ASSERT(levels.back().size() >= take,
                "package-merge produced too few entries");
  for (std::size_t i = 0; i < take; ++i) {
    stack.emplace_back(static_cast<int>(levels.size()) - 1,
                       static_cast<std::int32_t>(i));
  }
  while (!stack.empty()) {
    const auto [level, idx] = stack.back();
    stack.pop_back();
    const PmNode& node =
        levels[static_cast<std::size_t>(level)][static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      ++lengths[static_cast<std::size_t>(node.symbol)];
    } else {
      stack.emplace_back(level - 1, node.left);
      stack.emplace_back(level - 1, node.right);
    }
  }
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  int max_len = 0;
  for (auto l : lengths) max_len = std::max(max_len, static_cast<int>(l));
  std::vector<std::uint32_t> bl_count(static_cast<std::size_t>(max_len) + 1,
                                      0);
  for (auto l : lengths) {
    if (l > 0) ++bl_count[l];
  }
  std::vector<std::uint32_t> next_code(static_cast<std::size_t>(max_len) + 1,
                                       0);
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_len; ++bits) {
    code = (code + bl_count[static_cast<std::size_t>(bits) - 1]) << 1;
    next_code[static_cast<std::size_t>(bits)] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

bool kraft_complete(std::span<const std::uint8_t> lengths) {
  // Sum of 2^(32-len) over used symbols must equal 2^32 exactly.
  std::uint64_t sum = 0;
  std::size_t used = 0;
  for (auto l : lengths) {
    if (l == 0) continue;
    ++used;
    sum += 1ull << (32 - l);
  }
  if (used == 0) return true;
  if (used == 1) return true;  // degenerate 1-bit code
  return sum == (1ull << 32);
}

CanonicalDecoder::CanonicalDecoder(std::span<const std::uint8_t> lengths,
                                   BitOrder order) {
  for (auto l : lengths) max_len_ = std::max(max_len_, static_cast<int>(l));
  first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  count_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  first_index_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  for (auto l : lengths) {
    if (l > 0) ++count_[l];
  }
  std::uint32_t code = 0, index = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code = (code + (len > 1 ? count_[static_cast<std::size_t>(len) - 1] : 0))
           << 1;
    first_code_[static_cast<std::size_t>(len)] = code;
    first_index_[static_cast<std::size_t>(len)] = index;
    index += count_[static_cast<std::size_t>(len)];
  }
  sorted_symbols_.resize(index);
  std::vector<std::uint32_t> next(first_index_);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      sorted_symbols_[next[lengths[s]]++] = static_cast<std::uint32_t>(s);
    }
  }
  build_fast_table(lengths, order);
}

void CanonicalDecoder::build_fast_table(std::span<const std::uint8_t> lengths,
                                        BitOrder order) {
  if (max_len_ == 0 || max_len_ > 31) return;
  root_bits_ = std::min(max_len_, kRootBits);
  const std::size_t root_size = std::size_t{1} << root_bits_;
  const auto codes = canonical_codes(lengths);

  // Pass 1: per-root-prefix subtable width (the longest tail under that
  // prefix), plus the over-subscription guard — an over-full length set
  // makes canonical_codes() overflow some code past its own width, which
  // would index out of the table. Such streams stay on the reference
  // decoder, which walks them memory-safely and throws on the first gap.
  std::vector<std::uint8_t> sub_bits(root_size, 0);
  std::size_t total = root_size;
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    if ((codes[s] >> len) != 0) return;  // over-subscribed
    if (len > root_bits_) {
      const std::uint32_t c = order == BitOrder::MsbFirst
                                  ? codes[s]
                                  : reverse_code_bits(codes[s], len);
      const std::uint32_t prefix =
          order == BitOrder::MsbFirst
              ? c >> (len - root_bits_)
              : c & static_cast<std::uint32_t>(root_size - 1);
      const auto rem = static_cast<std::uint8_t>(len - root_bits_);
      if (rem > sub_bits[prefix]) {
        total += (std::size_t{1} << rem) -
                 (sub_bits[prefix] ? std::size_t{1} << sub_bits[prefix] : 0);
        sub_bits[prefix] = rem;
      }
      if (total > kMaxTableEntries) return;  // forged header: fall back
    }
  }

  // Pass 2: lay out the subtables and drop a link into each root slot.
  table_.assign(total, 0);
  std::vector<std::uint32_t> sub_base(root_size, 0);
  std::uint32_t next = static_cast<std::uint32_t>(root_size);
  for (std::size_t p = 0; p < root_size; ++p) {
    if (sub_bits[p] == 0) continue;
    sub_base[p] = next;
    table_[p] = (next << 8) | (kLinkControl + sub_bits[p]);
    next += 1u << sub_bits[p];
  }

  // Pass 3: fill. A code of length len <= root_bits_ owns every root slot
  // that starts with it: in MSB orientation those are the 2^(root-len)
  // consecutive slots after padding the code on the right; in LSB
  // orientation (DEFLATE) the code occupies the *low* bits of the index,
  // so its slots stride by 2^len. Longer codes fill their subtable the
  // same way with the tail bits.
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    const std::uint32_t c = order == BitOrder::MsbFirst
                                ? codes[s]
                                : reverse_code_bits(codes[s], len);
    if (len <= root_bits_) {
      const std::uint32_t e =
          (static_cast<std::uint32_t>(s) << 8) | static_cast<std::uint32_t>(len);
      if (order == BitOrder::MsbFirst) {
        const int pad = root_bits_ - len;
        const std::uint32_t base = c << pad;
        for (std::uint32_t j = 0; j < (1u << pad); ++j) table_[base + j] = e;
      } else {
        for (std::uint32_t idx = c; idx < root_size; idx += 1u << len) {
          table_[idx] = e;
        }
      }
    } else {
      const int rem = len - root_bits_;
      std::uint32_t prefix, tail;
      if (order == BitOrder::MsbFirst) {
        prefix = c >> rem;
        tail = c & ((1u << rem) - 1u);
      } else {
        prefix = c & static_cast<std::uint32_t>(root_size - 1);
        tail = c >> root_bits_;
      }
      const int sb = sub_bits[prefix];
      const std::uint32_t e =
          (static_cast<std::uint32_t>(s) << 8) | static_cast<std::uint32_t>(rem);
      if (order == BitOrder::MsbFirst) {
        const int pad = sb - rem;
        const std::uint32_t base = sub_base[prefix] + (tail << pad);
        for (std::uint32_t j = 0; j < (1u << pad); ++j) table_[base + j] = e;
      } else {
        for (std::uint32_t idx = tail; idx < (1u << sb); idx += 1u << rem) {
          table_[sub_base[prefix] + idx] = e;
        }
      }
    }
  }
}

void CanonicalDecoder::throw_bad_code() {
  throw Error("invalid Huffman code in bitstream");
}

}  // namespace wavesz
