#include "util/huffman.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavesz {
namespace {

/// Entry in a package-merge list: either a leaf (symbol index) or a package
/// of two entries from the previous level.
struct PmNode {
  std::uint64_t weight;
  std::int32_t symbol;         // >= 0 for leaves
  std::int32_t left = -1;      // package children: indices into prev level
  std::int32_t right = -1;
};

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs, int max_length) {
  WAVESZ_REQUIRE(max_length >= 1 && max_length <= 31,
                 "max code length out of range");
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  // Leaves sorted by (weight, symbol) — deterministic.
  std::vector<PmNode> leaves;
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] > 0) {
      leaves.push_back(PmNode{freqs[s], static_cast<std::int32_t>(s)});
    }
  }
  if (leaves.empty()) return lengths;
  if (leaves.size() == 1) {
    lengths[static_cast<std::size_t>(leaves[0].symbol)] = 1;
    return lengths;
  }
  WAVESZ_REQUIRE(static_cast<std::uint64_t>(leaves.size()) <=
                     (1ull << max_length),
                 "alphabet too large for requested code-length limit");
  std::sort(leaves.begin(), leaves.end(), [](const PmNode& a,
                                             const PmNode& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.symbol < b.symbol;
  });

  // Package-merge (Larmore & Hirschberg): build L levels of sorted lists,
  // each level = leaves merged with pairwise packages of the previous level.
  // Selecting the cheapest 2n-2 entries of the last level yields optimal,
  // Kraft-complete code lengths bounded by max_length.
  std::vector<std::vector<PmNode>> levels;
  levels.reserve(static_cast<std::size_t>(max_length));
  levels.push_back(leaves);
  for (int level = 1; level < max_length; ++level) {
    const auto& prev = levels.back();
    std::vector<PmNode> packages;
    packages.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      packages.push_back(PmNode{prev[i].weight + prev[i + 1].weight, -1,
                                static_cast<std::int32_t>(i),
                                static_cast<std::int32_t>(i + 1)});
    }
    std::vector<PmNode> merged;
    merged.reserve(leaves.size() + packages.size());
    std::merge(leaves.begin(), leaves.end(), packages.begin(), packages.end(),
               std::back_inserter(merged),
               [](const PmNode& a, const PmNode& b) {
                 // Leaves before packages on weight ties keeps the tree flat.
                 if (a.weight != b.weight) return a.weight < b.weight;
                 return (a.symbol >= 0) > (b.symbol >= 0);
               });
    levels.push_back(std::move(merged));
  }

  // Count, per symbol, in how many selected entries it participates.
  // Iterative expansion: a work item is (level, index).
  std::vector<std::pair<int, std::int32_t>> stack;
  const std::size_t take = 2 * leaves.size() - 2;
  WAVESZ_ASSERT(levels.back().size() >= take,
                "package-merge produced too few entries");
  for (std::size_t i = 0; i < take; ++i) {
    stack.emplace_back(static_cast<int>(levels.size()) - 1,
                       static_cast<std::int32_t>(i));
  }
  while (!stack.empty()) {
    const auto [level, idx] = stack.back();
    stack.pop_back();
    const PmNode& node =
        levels[static_cast<std::size_t>(level)][static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      ++lengths[static_cast<std::size_t>(node.symbol)];
    } else {
      stack.emplace_back(level - 1, node.left);
      stack.emplace_back(level - 1, node.right);
    }
  }
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  int max_len = 0;
  for (auto l : lengths) max_len = std::max(max_len, static_cast<int>(l));
  std::vector<std::uint32_t> bl_count(static_cast<std::size_t>(max_len) + 1,
                                      0);
  for (auto l : lengths) {
    if (l > 0) ++bl_count[l];
  }
  std::vector<std::uint32_t> next_code(static_cast<std::size_t>(max_len) + 1,
                                       0);
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_len; ++bits) {
    code = (code + bl_count[static_cast<std::size_t>(bits) - 1]) << 1;
    next_code[static_cast<std::size_t>(bits)] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

bool kraft_complete(std::span<const std::uint8_t> lengths) {
  // Sum of 2^(32-len) over used symbols must equal 2^32 exactly.
  std::uint64_t sum = 0;
  std::size_t used = 0;
  for (auto l : lengths) {
    if (l == 0) continue;
    ++used;
    sum += 1ull << (32 - l);
  }
  if (used == 0) return true;
  if (used == 1) return true;  // degenerate 1-bit code
  return sum == (1ull << 32);
}

CanonicalDecoder::CanonicalDecoder(std::span<const std::uint8_t> lengths) {
  for (auto l : lengths) max_len_ = std::max(max_len_, static_cast<int>(l));
  first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  count_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  first_index_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  for (auto l : lengths) {
    if (l > 0) ++count_[l];
  }
  std::uint32_t code = 0, index = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code = (code + (len > 1 ? count_[static_cast<std::size_t>(len) - 1] : 0))
           << 1;
    first_code_[static_cast<std::size_t>(len)] = code;
    first_index_[static_cast<std::size_t>(len)] = index;
    index += count_[static_cast<std::size_t>(len)];
  }
  sorted_symbols_.resize(index);
  std::vector<std::uint32_t> next(first_index_);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      sorted_symbols_[next[lengths[s]]++] = static_cast<std::uint32_t>(s);
    }
  }
}

void CanonicalDecoder::throw_bad_code() {
  throw Error("invalid Huffman code in bitstream");
}

}  // namespace wavesz
