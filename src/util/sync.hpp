// Annotated synchronization primitives.
//
// std::mutex in libstdc++ carries no thread-safety attributes, so clang's
// -Wthread-safety cannot see through it: GUARDED_BY(some_std_mutex) members
// would never be checked. These thin wrappers re-export the standard
// primitives as annotated capabilities, which is the whole point — every
// mutex-protected structure in the tree declares its invariants with
// GUARDED_BY/REQUIRES against a util::Mutex, and the wavesz_thread_safety
// build leg proves them at compile time.
//
// Costs nothing at runtime: Mutex is a std::mutex, MutexLock is a
// lock_guard, CondVar is a condition_variable_any waiting on the Mutex
// directly (slab/session granularity — never a per-element hot path; see
// DESIGN.md "Concurrency contracts").
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace wavesz::util {

/// Annotated exclusive lock. Deliberately minimal: no try_lock, no timed
/// waits — nothing in the tree needs them, and every additional entry point
/// is another annotation to get wrong.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (the annotated lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. wait() REQUIRES the mutex, so
/// the analysis checks that every wait happens under the lock its predicate
/// reads. Callers loop on the predicate themselves (plain while-loops keep
/// the guarded reads inside the analyzed function body; a predicate lambda
/// would be analyzed without the caller's lock context).
class CondVar {
 public:
  /// Atomically release `mu`, sleep, reacquire before returning. Spurious
  /// wakeups happen; always re-check the condition in a loop.
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wavesz::util
