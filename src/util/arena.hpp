// Pooled slab buffers for the staged pipeline (core/pipeline.hpp) and the
// streaming compressor's chunk staging.
//
// A VecPool hands out std::vector buffers from a freelist so steady-state
// users stop touching the allocator: once the pool has seen as many
// concurrent buffers as the pipeline keeps in flight, every further
// acquire() is a freelist pop plus a capacity-preserving resize. The stats
// make that claim testable — `fresh` counts exactly the acquires that had
// to grow heap storage, so "zero steady-state hot-path allocations" is
// asserted as `fresh` staying flat while `reuses` climbs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace wavesz::util {

/// Allocation statistics of a pool (monotonic; read via stats()).
struct ArenaStats {
  std::uint64_t acquires = 0;  ///< total acquire() calls
  std::uint64_t reuses = 0;    ///< served entirely from pooled capacity
  std::uint64_t fresh = 0;     ///< had to allocate or grow heap storage

  ArenaStats& operator+=(const ArenaStats& o) {
    acquires += o.acquires;
    reuses += o.reuses;
    fresh += o.fresh;
    return *this;
  }
};

/// Mutex-guarded freelist of std::vector<T> buffers. The lock is taken
/// once per slab handoff (never per element), so contention is irrelevant
/// at pipeline granularity; the guarded form is trivially TSan-clean when
/// producer and consumer stages recycle buffers from different threads,
/// and the GUARDED_BY annotations make clang's -Wthread-safety prove every
/// freelist/stats access holds the lock.
template <typename T>
class VecPool {
 public:
  /// Pop a pooled buffer (or default-construct one) and resize it to
  /// `size`. The acquire counts as `fresh` unless the pooled capacity
  /// already covers the request — i.e. unless it performs no allocation.
  std::vector<T> acquire(std::size_t size) {
    std::vector<T> v;
    {
      MutexLock lock(mu_);
      ++stats_.acquires;
      if (!free_.empty()) {
        v = std::move(free_.back());
        free_.pop_back();
      }
      if (v.capacity() >= size) {
        ++stats_.reuses;
      } else {
        ++stats_.fresh;
      }
    }
    v.resize(size);
    return v;
  }

  /// Return a buffer to the freelist; its capacity is what gets reused.
  void release(std::vector<T>&& v) {
    MutexLock lock(mu_);
    free_.push_back(std::move(v));
  }

  ArenaStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::vector<T>> free_ GUARDED_BY(mu_);
  ArenaStats stats_ GUARDED_BY(mu_);
};

/// The pools a slab engine needs: one per staged value type.
struct SlabArena {
  VecPool<float> f32;
  VecPool<double> f64;

  /// Combined allocation statistics across the typed pools.
  ArenaStats stats() const {
    ArenaStats s = f32.stats();
    s += f64.stats();
    return s;
  }
};

}  // namespace wavesz::util
