// Process-wide allocation guard for untrusted container decodes.
//
// A serialized container carries claimed extents and element counts as
// u64 fields; a corrupt or hostile archive can claim a field of 2^60
// points and drive the decoder into a giant allocation (or, worse, wrap a
// size computation and under-allocate). Every container parser validates
// its claimed geometry through checked_count()/guarded_output_bytes()
// before sizing any output buffer, so a forged header is rejected with
// wavesz::Error instead of reaching operator new.
//
// The cap is process-wide and settable: services decoding untrusted input
// (and the fuzz harnesses, which run under ASan where a huge throwing
// allocation aborts instead of raising bad_alloc) lower it; offline tools
// decompressing genuinely enormous fields may raise it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/dims.hpp"
#include "util/error.hpp"

namespace wavesz {

namespace detail {

/// Default cap: 1 TiB of decoded payload. Far above any dataset in the
/// paper's suite, far below the forged-extent claims a fuzzer produces.
inline constexpr std::size_t kDefaultMaxDecodeBytes =
    std::size_t{1} << 40;

inline std::atomic<std::size_t>& max_decode_bytes_slot() {
  static std::atomic<std::size_t> v{kDefaultMaxDecodeBytes};
  return v;
}

}  // namespace detail

/// Current cap on the bytes a single container decode may claim to need.
inline std::size_t max_decode_bytes() {
  return detail::max_decode_bytes_slot().load(std::memory_order_relaxed);
}

/// Set the cap (0 restores the default). Affects subsequent decodes
/// process-wide; intended for service initialization, tests and fuzzing.
inline void set_max_decode_bytes(std::size_t bytes) {
  detail::max_decode_bytes_slot().store(
      bytes == 0 ? detail::kDefaultMaxDecodeBytes : bytes,
      std::memory_order_relaxed);
}

/// Overflow-checked product of the extents of `dims`. A container whose
/// extents wrap std::size_t would otherwise pass `count == dims.count()`
/// style consistency checks with a wrapped (small) value while its slab
/// offsets address the unwrapped geometry.
inline std::size_t checked_count(const Dims& dims) {
  std::size_t n = 1;
  for (int i = 0; i < dims.rank; ++i) {
    const std::size_t e = dims.extent[static_cast<std::size_t>(i)];
    WAVESZ_REQUIRE(e > 0, "zero extent in container");
    WAVESZ_REQUIRE(n <= SIZE_MAX / e,
                   "container extents overflow the address space");
    n *= e;
  }
  return n;
}

/// checked_count() additionally validated against max_decode_bytes() for
/// `elem_bytes`-sized output elements. Returns the point count.
inline std::size_t guarded_count(const Dims& dims, std::size_t elem_bytes) {
  const std::size_t n = checked_count(dims);
  WAVESZ_REQUIRE(elem_bytes > 0 && n <= max_decode_bytes() / elem_bytes,
                 "container claims " + std::to_string(n) +
                     " points, above the decode allocation cap (see "
                     "wavesz::set_max_decode_bytes)");
  return n;
}

}  // namespace wavesz
