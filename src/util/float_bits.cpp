#include "util/float_bits.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace wavesz {

int pow2_tighten_exp(double x) {
  WAVESZ_REQUIRE(std::isfinite(x) && x > 0.0,
                 "power-of-two tightening needs a positive finite bound");
  int e = 0;
  const double frac = std::frexp(x, &e);  // x == frac * 2^e, frac in [0.5, 1)
  // frexp returns frac == 0.5 exactly when x is a power of two; then
  // 2^(e-1) == x and the tightened bound equals x itself.
  (void)frac;
  return e - 1;
}

double pow2_tighten(double x) { return std::ldexp(1.0, pow2_tighten_exp(x)); }

bool is_pow2(double x) {
  if (!(x > 0.0) || !std::isfinite(x)) return false;
  int e = 0;
  return std::frexp(x, &e) == 0.5;
}

double scale_pow2(double x, int e) { return std::ldexp(x, e); }

MantissaDecomposition decompose(double value, int bits_to_show) {
  WAVESZ_REQUIRE(std::isfinite(value) && value > 0.0,
                 "decompose needs a positive finite value");
  MantissaDecomposition out;
  int e = 0;
  double frac = std::frexp(value, &e);  // frac in [0.5, 1)
  frac *= 2.0;                          // now in [1, 2): the 1.xxx form
  out.exponent = e - 1;
  frac -= 1.0;
  out.mantissa_bits.reserve(static_cast<std::size_t>(bits_to_show));
  for (int i = 0; i < bits_to_show; ++i) {
    frac *= 2.0;
    if (frac >= 1.0) {
      out.mantissa_bits.push_back('1');
      out.mantissa_is_zero = false;
      frac -= 1.0;
    } else {
      out.mantissa_bits.push_back('0');
    }
  }
  if (frac != 0.0) out.mantissa_is_zero = false;
  return out;
}

}  // namespace wavesz
