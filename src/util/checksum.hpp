// CRC-32 (ISO 3309 / RFC 1952 polynomial 0xEDB88320), table-driven.
//
// Used by the gzip framing layer and by container integrity checks. The
// update loop folds eight bytes per iteration through eight derived tables
// (slice-by-8); the remainder runs through the classic one-byte table, so
// streaming updates of any split produce the same value as one shot.
#pragma once

#include <cstdint>
#include <span>

namespace wavesz {

class Crc32 {
 public:
  /// Feed a chunk; can be called repeatedly for streaming updates.
  void update(std::span<const std::uint8_t> data);

  /// Finalized CRC value of everything fed so far.
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

  static std::uint32_t of(std::span<const std::uint8_t> data) {
    Crc32 c;
    c.update(data);
    return c.value();
  }

  /// Continue a streaming CRC from a previously finalized value(): feeding
  /// the remainder of a message to the resumed instance yields the same
  /// digest as one shot over the whole message. This is what lets chunked
  /// container decoders verify a running CRC per chunk without rehashing
  /// the prefix each time.
  static Crc32 resume(std::uint32_t finalized) {
    Crc32 c;
    c.state_ = finalized ^ 0xffffffffu;
    return c;
  }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace wavesz
