// Functional + timing co-simulation of the waveSZ device — the software
// equivalent of running the HLS testbench: the input field is partitioned
// into per-lane column chunks exactly as the throughput model assumes, each
// lane runs the *real* waveSZ kernel over its chunk (producing real
// compressed bytes), and the schedule simulator attaches the cycle count
// that chunk would take on the ZC706. The result is an archive whose bytes
// are genuine and whose latency/throughput figures come from the same
// partitioning — keeping the functional library and the performance model
// honest against each other (tested property: the co-sim throughput equals
// wave_throughput() for the same geometry).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fpga/model.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"

namespace wavesz::fpga {

struct LaneRun {
  std::size_t first_column = 0;   ///< of the flattened 2D view
  std::size_t column_count = 0;
  ScheduleStats schedule;         ///< modeled cycles for this lane's chunk
  std::size_t compressed_bytes = 0;
};

struct CoSimResult {
  std::vector<std::uint8_t> archive;  ///< self-describing multi-lane bundle
  std::vector<LaneRun> lanes;
  double modeled_seconds = 0.0;       ///< slowest lane at the model clock
  double modeled_raw_mbps = 0.0;      ///< schedule-only device throughput
  double modeled_effective_mbps = 0.0;///< x interface efficiency
  double ratio = 0.0;                 ///< real compression ratio achieved
};

/// Compress `data` as the device would: `lanes` parallel waveSZ pipelines
/// over column-partitioned chunks of the flattened 2D view.
CoSimResult compress_on_device(std::span<const float> data, const Dims& dims,
                               const sz::Config& cfg, int lanes,
                               const ModelConfig& model = {});

/// Reassemble the full field from a co-sim archive.
std::vector<float> device_decompress(std::span<const std::uint8_t> archive,
                                     Dims* dims_out = nullptr);

}  // namespace wavesz::fpga
