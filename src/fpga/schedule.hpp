// Cycle-level schedule simulator for the HLS pipeline designs (paper §3.2).
//
// Each grid point is one loop iteration of the synthesized PQD pipeline.
// The simulator issues iterations in a design's program order, delaying an
// issue until (a) one initiation interval after the previous issue and
// (b) every data dependency is available. It therefore reproduces, cycle
// by cycle, the stall structure that distinguishes:
//
//   * waveSZ      — wavefront column order, dependencies point to the two
//                   previous anti-diagonal columns, dependents must wait the
//                   full PQD depth (the in-loop decompression writeback);
//   * original SZ — same dependencies walked in raster order: the west
//                   neighbour finished only Delta cycles ago, so nearly
//                   every iteration stalls (the Fig. 3 problem);
//   * GhostSZ     — row-decorrelated, column-staged order (Fig. 4);
//                   dependents wait only for the *prediction* (no error
//                   correction), a much shorter chain.
//
// Memory is O(pipeline window), not O(points), so paper-scale grids
// (512 x 262144) simulate in milliseconds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wavesz::fpga {

struct ScheduleConfig {
  int pii = 1;            ///< initiation interval of the pipeline
  int depth = 117;        ///< iteration latency (the paper's Delta)
  int dep_latency = 117;  ///< cycles until a dependent may consume the result
  int border_depth = 2;   ///< pass-through latency of border points
};

struct ScheduleStats {
  std::uint64_t points = 0;
  std::uint64_t issue_span = 0;   ///< last issue cycle + pII
  std::uint64_t makespan = 0;     ///< last finish cycle
  std::uint64_t stall_cycles = 0; ///< issue delay beyond pII, summed
  /// Average iterations issued per cycle (1.0 = fully pipelined at pII 1).
  double occupancy() const {
    return issue_span == 0
               ? 0.0
               : static_cast<double>(points) * 1.0 /
                     static_cast<double>(issue_span);
  }
};

/// waveSZ order: anti-diagonal columns left to right, rows top down.
ScheduleStats simulate_wavefront(std::size_t d0, std::size_t d1,
                                 const ScheduleConfig& cfg);

/// Original SZ order: raster (row-major) with the same Lorenzo deps.
ScheduleStats simulate_raster(std::size_t d0, std::size_t d1,
                              const ScheduleConfig& cfg);

/// GhostSZ order: rectangular columns staged across independent rows;
/// dependency is the same-row west neighbour at dep_latency (prediction
/// feedback only).
ScheduleStats simulate_ghost(std::size_t d0, std::size_t d1,
                             const ScheduleConfig& cfg);

/// Paper §3.2 closed form for the ideal body schedule (Lambda == Delta):
/// point (r, c), 1-based row r within a body column c, starts at c*Lambda+r
/// and ends Lambda cycles later.
std::uint64_t ideal_start_cycle(std::uint64_t r, std::uint64_t c,
                                std::uint64_t lambda);
std::uint64_t ideal_end_cycle(std::uint64_t r, std::uint64_t c,
                              std::uint64_t lambda);

}  // namespace wavesz::fpga
