#include "fpga/calibration.hpp"

namespace wavesz::fpga {

int pqd_depth_base2(const OpLatencies& ops) {
  return 2 * ops.fp_add       // Lorenzo: n + w - nw
         + ops.fp_add         // diff = d - pred
         + ops.exp_adjust     // |diff| / 2^e
         + ops.float_to_int   // code0 cast
         + ops.int_alu        // signum / halve / radius offset
         + ops.int_to_float   // q back to float
         + ops.exp_adjust     // * 2^(e+1)
         + ops.fp_add         // reconstruct: pred + ...
         + ops.fp_add         // overbound: d_re - d
         + ops.fp_cmp         // <= p
         + ops.output_mux + ops.axi_registers;
}

int pqd_depth_base10(const OpLatencies& ops) {
  // exp_adjust pair replaced by a full divider and multiplier.
  return pqd_depth_base2(ops) - 2 * ops.exp_adjust + ops.fp_div + ops.fp_mul;
}

int ghost_pred_depth(const OpLatencies& ops) {
  // Quadratic unit dominates: 3*p1 - 3*p2 + p3 = mul, mul, add, add; the
  // three units run in parallel, then a compare/select picks the bestfit.
  return ops.fp_mul + 2 * ops.fp_add + ops.fp_cmp + ops.output_mux;
}

}  // namespace wavesz::fpga
