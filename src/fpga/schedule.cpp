#include "fpga/schedule.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace wavesz::fpga {
namespace {

/// Issue bookkeeping shared by all three simulators.
class Issuer {
 public:
  explicit Issuer(const ScheduleConfig& cfg) : cfg_(cfg) {}

  /// Issue one iteration whose dependencies are ready at `deps_ready`;
  /// returns the cycle at which its *result* becomes consumable.
  std::uint64_t issue(std::uint64_t deps_ready, bool border) {
    std::uint64_t t = first_ ? 0 : last_issue_ + static_cast<std::uint64_t>(
                                                     cfg_.pii);
    if (deps_ready > t) {
      stats_.stall_cycles += deps_ready - t;
      t = deps_ready;
    }
    first_ = false;
    last_issue_ = t;
    const auto depth = static_cast<std::uint64_t>(
        border ? cfg_.border_depth : cfg_.depth);
    const auto dep_lat = static_cast<std::uint64_t>(
        border ? cfg_.border_depth : cfg_.dep_latency);
    stats_.makespan = std::max(stats_.makespan, t + depth);
    ++stats_.points;
    stats_.issue_span = t + static_cast<std::uint64_t>(cfg_.pii);
    return t + dep_lat;
  }

  ScheduleStats stats() const { return stats_; }

 private:
  ScheduleConfig cfg_;
  ScheduleStats stats_;
  std::uint64_t last_issue_ = 0;
  bool first_ = true;
};

}  // namespace

ScheduleStats simulate_wavefront(std::size_t d0, std::size_t d1,
                                 const ScheduleConfig& cfg) {
  WAVESZ_REQUIRE(d0 > 0 && d1 > 0, "grid extents must be positive");
  Issuer issuer(cfg);
  // ready[x] = result-availability of the point in row x of a given column.
  std::vector<std::uint64_t> prev1(d0, 0), prev2(d0, 0), cur(d0, 0);
  const std::size_t cols = d0 + d1 - 1;
  for (std::size_t h = 0; h < cols; ++h) {
    const std::size_t x_lo = h >= d1 ? h - (d1 - 1) : 0;
    const std::size_t x_hi = std::min(d0 - 1, h);
    for (std::size_t x = x_lo; x <= x_hi; ++x) {
      const std::size_t y = h - x;
      const bool border = (x == 0 || y == 0);
      std::uint64_t deps = 0;
      if (!border) {
        deps = std::max({prev1[x - 1],   // N  = (x-1, y),  column h-1
                         prev1[x],       // W  = (x, y-1),  column h-1
                         prev2[x - 1]}); // NW = (x-1,y-1), column h-2
      }
      cur[x] = issuer.issue(deps, border);
    }
    std::swap(prev2, prev1);
    std::swap(prev1, cur);
  }
  return issuer.stats();
}

ScheduleStats simulate_raster(std::size_t d0, std::size_t d1,
                              const ScheduleConfig& cfg) {
  WAVESZ_REQUIRE(d0 > 0 && d1 > 0, "grid extents must be positive");
  Issuer issuer(cfg);
  std::vector<std::uint64_t> prev_row(d1, 0), cur_row(d1, 0);
  for (std::size_t x = 0; x < d0; ++x) {
    for (std::size_t y = 0; y < d1; ++y) {
      const bool border = (x == 0 || y == 0);
      std::uint64_t deps = 0;
      if (!border) {
        deps = std::max({prev_row[y],       // N
                         cur_row[y - 1],    // W — finished one iteration ago!
                         prev_row[y - 1]}); // NW
      }
      cur_row[y] = issuer.issue(deps, border);
    }
    std::swap(prev_row, cur_row);
  }
  return issuer.stats();
}

ScheduleStats simulate_ghost(std::size_t d0, std::size_t d1,
                             const ScheduleConfig& cfg) {
  WAVESZ_REQUIRE(d0 > 0 && d1 > 0, "grid extents must be positive");
  Issuer issuer(cfg);
  // Column-staged order across the d0 independent rows (Fig. 4b): the only
  // timing-critical dependency is each row's previous point, whose
  // *prediction* becomes available dep_latency after issue.
  std::vector<std::uint64_t> west(d0, 0);
  for (std::size_t c = 0; c < d1; ++c) {
    for (std::size_t r = 0; r < d0; ++r) {
      const bool border = (c == 0);  // row seeds are verbatim
      const std::uint64_t deps = border ? 0 : west[r];
      west[r] = issuer.issue(deps, border);
    }
  }
  return issuer.stats();
}

std::uint64_t ideal_start_cycle(std::uint64_t r, std::uint64_t c,
                                std::uint64_t lambda) {
  return c * lambda + r;
}

std::uint64_t ideal_end_cycle(std::uint64_t r, std::uint64_t c,
                              std::uint64_t lambda) {
  return (c + 1) * lambda + r - 1;
}

}  // namespace wavesz::fpga
