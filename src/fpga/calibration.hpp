// Calibration constants of the FPGA performance model.
//
// The paper evaluates on a Xilinx Zynq-7000 ZC706 with Vivado HLS 2019.1,
// Xilinx Floating-Point Operator IPs at 156.25 MHz default clock, and a
// PCIe gen2 x4 host link. Without that hardware, this module models the
// synthesized pipeline: every constant below is either taken directly from
// the paper (+ the ZC706 datasheet) or calibrated once against the paper's
// Table 5/6 and then frozen. EXPERIMENTS.md records which is which.
//
// Calibrated values:
//  * op latencies sum to a PQD depth Delta = 117 cycles for the base-2
//    datapath. This reproduces the paper's Hurricane anomaly: the Hurricane
//    pipeline depth Lambda = d0-1 = 99 < Delta, so every wavefront column
//    stalls (Delta - Lambda) cycles, while CESM (Lambda=1799) and NYX
//    (Lambda=511) run stall-free — exactly the ~15% throughput dip Table 5
//    shows for Hurricane.
//  * interface_efficiency = 0.53 folds AXI/DDR arbitration and the gzip
//    core's backpressure into one factor, calibrated on waveSZ/CESM
//    (995 MB/s measured vs 1875 MB/s raw for 3 lanes at 1 pt/cycle).
//  * GhostSZ runs 1 logical lane whose initiation interval is 2 (the
//    Order-{0,1,2} units are load-imbalanced, §2.2) — its three predictor
//    units consume the resources waveSZ spends on 3 clean PQD lanes.
#pragma once

namespace wavesz::fpga {

/// Cycle latencies of the synthesized operators (Xilinx FP Operator IPs in
/// max-frequency configuration, plus pipeline registers).
struct OpLatencies {
  int fp_add = 14;        ///< also subtract
  int fp_mul = 11;
  int fp_div = 28;
  int fp_cmp = 4;
  int float_to_int = 8;
  int int_to_float = 8;
  int int_alu = 3;        ///< integer add/sub/saturate
  int exp_adjust = 2;     ///< base-2 scale: exponent-field add (§3.3)
  int output_mux = 2;
  int axi_registers = 18; ///< interface/staging registers per lane
};

/// PQD pipeline depth (the paper's Delta) for the base-2 datapath:
/// 2 adds (Lorenzo) + sub (diff) + exp adjust + float->int + int ALU +
/// int->float + exp adjust + add (reconstruct) + sub + cmp (overbound) +
/// mux + AXI registers.
int pqd_depth_base2(const OpLatencies& ops = {});

/// Same datapath with decimal bounds: the exponent adjusts become a full
/// divide and a multiply (paper Table 3 motivation).
int pqd_depth_base10(const OpLatencies& ops = {});

/// Curve-fitting prediction chain latency for GhostSZ's feedback loop.
int ghost_pred_depth(const OpLatencies& ops = {});

struct ClockConfig {
  double freq_mhz = 156.25;  ///< default Floating-Point IP configuration
};

/// Calibrated end-to-end derating: AXI/DDR arbitration + gzip backpressure.
inline constexpr double kInterfaceEfficiency = 0.53;

/// waveSZ instantiates 3 parallel PQD procedures (paper Table 6 note).
inline constexpr int kWaveSzLanes = 3;

/// GhostSZ: one logical lane, initiation interval 2 (imbalanced units).
inline constexpr int kGhostPii = 2;

/// PCIe roofline (paper Fig. 8): ZC706 runs gen2 x4; gen3 x4 shown as the
/// reference peak.
struct PcieConfig {
  double gen2_x4_mbps = 2000.0;  ///< 5 GT/s * 4 lanes * 8b/10b
  double gen3_x4_mbps = 3938.0;  ///< 8 GT/s * 4 lanes * 128b/130b
};

/// OpenMP scaling model for the SZ-1.4 (omp) series of Fig. 8: parallel
/// efficiency 1/(1 + alpha*(n-1)), alpha fixed by the paper's "59% at 32
/// cores" observation.
inline constexpr double kOmpEfficiencyAlpha = 0.0224;

}  // namespace wavesz::fpga
