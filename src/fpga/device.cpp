#include "fpga/device.hpp"

#include <algorithm>

#include "core/wavesz.hpp"
#include "util/bytes.hpp"
#include "util/decode_guard.hpp"
#include "util/error.hpp"

namespace wavesz::fpga {
namespace {

constexpr std::uint32_t kDeviceMagic = 0x44535a57u;  // "WZSD"

struct Partition {
  std::size_t first_column;
  std::size_t column_count;
};

/// Column partition of the flattened view, matching model.cpp's
/// widest_chunk() so the co-sim and the analytic model agree by design.
std::vector<Partition> partition_columns(std::size_t d1, int lanes) {
  const auto n = static_cast<std::size_t>(std::max(1, lanes));
  const std::size_t chunk = (d1 + n - 1) / n;
  std::vector<Partition> parts;
  for (std::size_t c = 0; c < d1; c += chunk) {
    parts.push_back({c, std::min(chunk, d1 - c)});
  }
  return parts;
}

/// Gather a column range of a row-major d0 x d1 grid into its own buffer.
std::vector<float> gather_columns(std::span<const float> data,
                                  std::size_t d0, std::size_t d1,
                                  const Partition& p) {
  std::vector<float> out(d0 * p.column_count);
  for (std::size_t r = 0; r < d0; ++r) {
    const float* src = data.data() + r * d1 + p.first_column;
    std::copy(src, src + p.column_count,
              out.data() + r * p.column_count);
  }
  return out;
}

}  // namespace

CoSimResult compress_on_device(std::span<const float> data, const Dims& dims,
                               const sz::Config& cfg, int lanes,
                               const ModelConfig& model) {
  WAVESZ_REQUIRE(lanes >= 1, "need at least one lane");
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const Dims flat = dims.flatten2d();
  WAVESZ_REQUIRE(flat.rank == 2, "device path needs a 2D+ dataset");
  const std::size_t d0 = flat[0];
  const std::size_t d1 = flat[1];

  ScheduleConfig sc;
  sc.pii = 1;
  sc.depth = (cfg.base == sz::EbBase::Two) ? pqd_depth_base2(model.ops)
                                           : pqd_depth_base10(model.ops);
  sc.dep_latency = sc.depth;

  CoSimResult out;
  ByteWriter w;
  w.u32(kDeviceMagic);
  w.u8(static_cast<std::uint8_t>(dims.rank));
  for (int i = 0; i < 3; ++i) w.u64(dims.extent[static_cast<std::size_t>(i)]);
  const auto parts = partition_columns(d1, lanes);
  w.u32(static_cast<std::uint32_t>(parts.size()));

  std::vector<std::vector<std::uint8_t>> blobs;
  std::uint64_t worst_makespan = 0;
  std::size_t compressed_total = 0;
  for (const auto& p : parts) {
    const auto chunk = gather_columns(data, d0, d1, p);
    const Dims cdims = Dims::d2(d0, p.column_count);
    const auto compressed = wave::compress(chunk, cdims, cfg);

    LaneRun lane;
    lane.first_column = p.first_column;
    lane.column_count = p.column_count;
    lane.schedule = simulate_wavefront(d0, p.column_count, sc);
    lane.compressed_bytes = compressed.bytes.size();
    worst_makespan = std::max(worst_makespan, lane.schedule.makespan);
    compressed_total += compressed.bytes.size();
    out.lanes.push_back(lane);
    blobs.push_back(compressed.bytes);
  }
  for (const auto& b : blobs) w.u64(b.size());
  for (const auto& b : blobs) w.bytes(b);
  out.archive = w.take();

  out.modeled_seconds =
      static_cast<double>(worst_makespan) / (model.clock.freq_mhz * 1e6);
  const double bytes = static_cast<double>(data.size()) * sizeof(float);
  out.modeled_raw_mbps = bytes / 1e6 / out.modeled_seconds;
  out.modeled_effective_mbps =
      out.modeled_raw_mbps * model.interface_efficiency;
  out.ratio = bytes / static_cast<double>(compressed_total);
  return out;
}

std::vector<float> device_decompress(std::span<const std::uint8_t> archive,
                                     Dims* dims_out) {
  ByteReader r(archive);
  WAVESZ_REQUIRE(r.u32() == kDeviceMagic, "not a device co-sim archive");
  const int rank = r.u8();
  WAVESZ_REQUIRE(rank >= 2 && rank <= 3, "invalid rank");
  std::array<std::size_t, 3> ext{};
  for (auto& e : ext) {
    e = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(e > 0, "zero extent");
  }
  const Dims dims{ext, rank};
  // Reject forged extents before flatten2d() multiplies them or the output
  // allocation is sized from them.
  const std::size_t total_points = guarded_count(dims, sizeof(float));
  const Dims flat = dims.flatten2d();
  const std::size_t d0 = flat[0];
  const std::size_t d1 = flat[1];
  const std::uint32_t count = r.u32();
  WAVESZ_REQUIRE(count >= 1 && count <= d1, "implausible lane count");

  std::vector<std::uint64_t> sizes(count);
  for (auto& s : sizes) s = r.u64();

  std::vector<float> out(total_points);
  std::size_t col = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto view = r.bytes(sizes[i]);
    Dims cdims;
    const auto chunk =
        wave::decompress({view.begin(), view.end()}, &cdims);
    WAVESZ_REQUIRE(cdims.rank == 2 && cdims[0] == d0,
                   "lane chunk geometry mismatch");
    const std::size_t width = cdims[1];
    WAVESZ_REQUIRE(col + width <= d1, "lane chunks exceed the grid");
    for (std::size_t row = 0; row < d0; ++row) {
      std::copy(chunk.data() + row * width, chunk.data() + (row + 1) * width,
                out.data() + row * d1 + col);
    }
    col += width;
  }
  WAVESZ_REQUIRE(col == d1, "lane chunks do not cover the grid");
  if (dims_out != nullptr) *dims_out = dims;
  return out;
}

}  // namespace wavesz::fpga
