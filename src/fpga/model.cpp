#include "fpga/model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavesz::fpga {
namespace {

DesignThroughput finish(const ScheduleStats& lane_schedule,
                        std::uint64_t total_points, double freq_mhz,
                        const ModelConfig& cfg) {
  DesignThroughput out;
  out.schedule = lane_schedule;
  out.seconds =
      static_cast<double>(lane_schedule.makespan) / (freq_mhz * 1e6);
  const double bytes = static_cast<double>(total_points) * sizeof(float);
  out.raw_mbps = bytes / 1e6 / out.seconds;
  out.effective_mbps = out.raw_mbps * cfg.interface_efficiency;
  out.delivered_mbps = std::min(out.effective_mbps, cfg.pcie.gen2_x4_mbps);
  return out;
}

/// Column-partition the flattened grid across lanes; the slowest lane (the
/// one with the most columns) bounds the wall time.
std::size_t widest_chunk(std::size_t d1, int lanes) {
  const auto n = static_cast<std::size_t>(std::max(1, lanes));
  return (d1 + n - 1) / n;
}

}  // namespace

DesignThroughput wave_throughput(const Dims& dims, int lanes,
                                 sz::EbBase base, const ModelConfig& cfg) {
  WAVESZ_REQUIRE(lanes >= 1, "need at least one lane");
  const Dims flat = dims.flatten2d();
  const std::size_t d0 = flat[0];
  const std::size_t d1 = flat.rank >= 2 ? flat[1] : 1;
  ScheduleConfig sc;
  sc.pii = 1;
  sc.depth = (base == sz::EbBase::Two) ? pqd_depth_base2(cfg.ops)
                                       : pqd_depth_base10(cfg.ops);
  sc.dep_latency = sc.depth;  // dependents need the decompressed writeback
  const auto lane = simulate_wavefront(d0, widest_chunk(d1, lanes), sc);
  return finish(lane, dims.count(), cfg.clock.freq_mhz, cfg);
}

DesignThroughput ghost_throughput(const Dims& dims, int replicas,
                                  const ModelConfig& cfg) {
  WAVESZ_REQUIRE(replicas >= 1, "need at least one replica");
  const Dims flat = dims.flatten2d();
  const std::size_t d0 = flat[0];
  const std::size_t d1 = flat.rank >= 2 ? flat[1] : 1;
  ScheduleConfig sc;
  sc.pii = kGhostPii;  // load-imbalanced Order-{0,1,2} units
  sc.depth = pqd_depth_base10(cfg.ops);
  sc.dep_latency = ghost_pred_depth(cfg.ops);  // prediction feedback only
  const auto lane = simulate_ghost(d0, widest_chunk(d1, replicas), sc);
  return finish(lane, dims.count(), cfg.clock.freq_mhz, cfg);
}

DesignThroughput naive_raster_throughput(const Dims& dims, sz::EbBase base,
                                         const ModelConfig& cfg) {
  const Dims flat = dims.flatten2d();
  const std::size_t d0 = flat[0];
  const std::size_t d1 = flat.rank >= 2 ? flat[1] : 1;
  ScheduleConfig sc;
  sc.pii = 1;
  sc.depth = (base == sz::EbBase::Two) ? pqd_depth_base2(cfg.ops)
                                       : pqd_depth_base10(cfg.ops);
  sc.dep_latency = sc.depth;
  const auto lane = simulate_raster(d0, d1, sc);
  return finish(lane, dims.count(), cfg.clock.freq_mhz, cfg);
}

double omp_scaled_mbps(double single_core_mbps, int cores, double alpha) {
  WAVESZ_REQUIRE(cores >= 1, "need at least one core");
  const double n = static_cast<double>(cores);
  const double efficiency = 1.0 / (1.0 + alpha * (n - 1.0));
  return single_core_mbps * n * efficiency;
}

}  // namespace wavesz::fpga
