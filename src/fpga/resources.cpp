#include "fpga/resources.hpp"

#include <cstdio>

namespace wavesz::fpga {
namespace {

// Block-level costs of the synthesized operators (Xilinx 7-series FP
// Operator IPs; logic-maximal configuration where the design allows it).
// Values are calibrated so that the design totals reproduce the paper's
// Table 6 synthesis report exactly; see EXPERIMENTS.md.
constexpr ResourceUsage kFpAdd{0, 0, 220, 430};
constexpr ResourceUsage kFpMul{0, 3, 150, 90};
constexpr ResourceUsage kFpDiv{0, 30, 850, 760};
constexpr ResourceUsage kFpCmp{0, 0, 26, 52};
constexpr ResourceUsage kFloatToInt{0, 0, 90, 140};
constexpr ResourceUsage kIntToFloat{0, 0, 95, 160};
constexpr ResourceUsage kExpAdjust{0, 0, 28, 38};
constexpr ResourceUsage kIntControl{0, 0, 74, 98};
constexpr ResourceUsage kStaging{0, 0, 50, 60};

// GhostSZ-only macro blocks (replicated predictor muxing, row-decorrelation
// scheduling, and the SZ-1.0 truncation-based binary-analysis encoder).
constexpr ResourceUsage kGhostBinaryAnalysis{0, 0, 3500, 6000};
constexpr ResourceUsage kGhostRowScheduler{0, 0, 2500, 4000};
constexpr ResourceUsage kGhostStaging{0, 0, 2224, 3656};

}  // namespace

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& o) {
  bram_18k += o.bram_18k;
  dsp48e += o.dsp48e;
  ff += o.ff;
  lut += o.lut;
  return *this;
}

ResourceUsage ResourceUsage::operator*(int n) const {
  return {bram_18k * n, dsp48e * n, ff * n, lut * n};
}

ResourceUsage wave_pqd_lane_base2() {
  ResourceUsage r{3, 0, 0, 0};  // anti-diagonal line buffer
  r += kFpAdd * 5;     // Lorenzo (2), diff, reconstruct, overbound
  r += kExpAdjust * 2; // the base-2 trick: no divider, no multiplier
  r += kFloatToInt;
  r += kIntToFloat;
  r += kFpCmp;
  r += kIntControl;
  r += kStaging;
  return r;
}

ResourceUsage wave_pqd_lane_base10() {
  ResourceUsage r = wave_pqd_lane_base2();
  // Remove the exponent adjusts, add the divider and multiplier back.
  ResourceUsage minus = kExpAdjust * 2;
  r.ff -= minus.ff;
  r.lut -= minus.lut;
  r += kFpDiv;
  r += kFpMul;
  return r;
}

ResourceUsage ghost_engine() {
  ResourceUsage r{20, 0, 0, 0};  // row-decorrelation buffers
  r += kFpMul * 6;   // order-1 (x1 per unit set) and order-2 (x2) multipliers
  r += kFpDiv;       // base-10 quantization divide
  r += kFpMul;       // reconstruction multiply
  r += kFpAdd * 9;   // CF arithmetic, bestfit errors, quantizer adds
  r += kFpCmp * 4;   // bestfit selection + overbound
  r += kFloatToInt;
  r += kIntToFloat;
  r += kIntControl * 3;
  r += kGhostBinaryAnalysis;
  r += kGhostRowScheduler;
  r += kGhostStaging;
  return r;
}

ResourceUsage gzip_core() {
  // Xilinx GZip reference design the paper cites: BRAM-dominated; the paper
  // names its 303 BRAM_18K as the scalability limit.
  return {303, 0, 16000, 21000};
}

ResourceUsage wave_design(int lanes) { return wave_pqd_lane_base2() * lanes; }

ResourceUsage ghost_design() { return ghost_engine(); }

std::string utilization_row(int used, int total) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%6d (%5.2f%%)", used,
                100.0 * static_cast<double>(used) /
                    static_cast<double>(total));
  return buf;
}

}  // namespace wavesz::fpga
