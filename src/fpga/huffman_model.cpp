#include "fpga/huffman_model.hpp"

#include <algorithm>

#include "fpga/model.hpp"
#include "util/error.hpp"

namespace wavesz::fpga {

int huffman_table_bram() {
  // Code table: 65,536 entries x (24-bit code + 5-bit length) = 1,900,544
  // bits; histogram: 65,536 x 32-bit counters = 2,097,152 bits. BRAM_18K
  // holds 18,432 bits.
  constexpr std::uint64_t table_bits = 65536ull * (24 + 5);
  constexpr std::uint64_t hist_bits = 65536ull * 32;
  constexpr std::uint64_t bram_bits = 18 * 1024;
  return static_cast<int>((table_bits + bram_bits - 1) / bram_bits +
                          (hist_bits + bram_bits - 1) / bram_bits);
}

HuffmanStageModel huffman_stage(const HuffmanEncoderConfig& cfg,
                                const ClockConfig& clock) {
  WAVESZ_REQUIRE(cfg.encoders >= 1, "need at least one encoder");
  WAVESZ_REQUIRE(cfg.chunk_symbols >= 1024, "chunk too small to amortize");
  const double cycles_per_chunk =
      2.0 * static_cast<double>(cfg.chunk_symbols);  // histogram + encode
  const double chunk_seconds =
      cycles_per_chunk / (clock.freq_mhz * 1e6);
  // Double buffering overlaps the two passes of consecutive chunks, so the
  // steady-state cost per chunk is one pass plus any host latency the DMA
  // cannot hide behind the other buffer's pass.
  const double pass_seconds = chunk_seconds / 2.0;
  const double host_seconds = cfg.host_tree_build_us * 1e-6;
  const double exposed_host = std::max(0.0, host_seconds - pass_seconds);
  const double sustained_per_encoder =
      static_cast<double>(cfg.chunk_symbols) /
      (pass_seconds + exposed_host);

  HuffmanStageModel out;
  out.symbols_per_second =
      sustained_per_encoder * static_cast<double>(cfg.encoders);
  out.efficiency =
      sustained_per_encoder / (clock.freq_mhz * 1e6);
  // Per encoder: the tables plus a bit packer and control.
  ResourceUsage per{huffman_table_bram(), 0, 2100, 3400};
  out.resources = per * cfg.encoders;
  return out;
}

FutureWaveSz future_wave_throughput(const Dims& dims,
                                    const HuffmanEncoderConfig& cfg) {
  const ModelConfig mc;
  const auto pqd = wave_throughput(dims, cfg.encoders);
  const auto huff = huffman_stage(cfg);
  // Symbols are 1 per point; bytes are 4 per point.
  const double huff_mbps = huff.symbols_per_second * 4.0 / 1e6 *
                           mc.interface_efficiency;
  FutureWaveSz out;
  out.effective_mbps = std::min(pqd.effective_mbps, huff_mbps);
  out.delivered_mbps = std::min(out.effective_mbps, mc.pcie.gen2_x4_mbps);
  out.huffman_bound = huff_mbps < pqd.effective_mbps;
  out.added_resources = huff.resources;
  return out;
}

}  // namespace wavesz::fpga
