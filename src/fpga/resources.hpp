// FPGA resource-utilization model (paper Table 6).
//
// Bottom-up: each design is an inventory of synthesized operators; each
// operator has a BRAM/DSP/FF/LUT cost typical of Xilinx 7-series IPs in
// logic-heavy (DSP-free where possible) configuration. The headline
// structural facts the model must reproduce:
//   * waveSZ's base-2 datapath uses NO DSP48E slices — exponent adjusts
//     replace the divider and multiplier (paper Table 6 shows 0 DSPs);
//   * GhostSZ burns DSPs in its curve-fitting multipliers and divider, and
//     roughly 2.4x the logic of waveSZ's three PQD lanes;
//   * the shared gzip core dominates BRAM (303 BRAM_18K per the Xilinx
//     reference design the paper cites).
#pragma once

#include <string>

namespace wavesz::fpga {

struct ResourceUsage {
  int bram_18k = 0;
  int dsp48e = 0;
  int ff = 0;
  int lut = 0;

  ResourceUsage& operator+=(const ResourceUsage& o);
  ResourceUsage operator*(int n) const;
};

/// ZC706 (XC7Z045) totals, paper Table 6.
struct DeviceCapacity {
  int bram_18k = 1090;
  int dsp48e = 900;
  int ff = 437200;
  int lut = 218600;
};

/// One waveSZ PQD lane (base-2 datapath, pII = 1).
ResourceUsage wave_pqd_lane_base2();

/// One waveSZ PQD lane if the base-10 datapath were kept (ablation).
ResourceUsage wave_pqd_lane_base10();

/// GhostSZ's prediction/quantization engine: three Order-{0,1,2}
/// curve-fitting units plus bestfit select and a base-10 quantizer.
ResourceUsage ghost_engine();

/// The Xilinx gzip core shared by both designs.
ResourceUsage gzip_core();

/// Whole-design totals as reported in Table 6 (compute kernels only; the
/// paper's utilization excludes the gzip core, which it discusses as the
/// scalability limit).
ResourceUsage wave_design(int lanes);
ResourceUsage ghost_design();

/// Percent-of-device table row, e.g. "9 (0.83%)".
std::string utilization_row(int used, int total);

}  // namespace wavesz::fpga
