// Model of the paper's FUTURE WORK (§6): a customized Huffman encoder on
// the FPGA, which would lift waveSZ's ratio from the G* column of Table 7
// to the H*G* column without routing codes through the host.
//
// Architecture modeled (standard two-pass canonical encoder):
//   pass 1 — histogram the chunk's 16-bit symbols at 1 symbol/cycle into
//            BRAM counters;
//   host    — build the length-limited canonical table (the tree build is
//            a poor fit for FPGA, as the paper's GPU discussion notes) and
//            DMA the 65,536-entry code table back;
//   pass 2 — table-lookup encode at 1 symbol/cycle into a bit packer.
// Chunks are double-buffered, so at steady state the encoder sustains
// 1 symbol/cycle and the end-to-end rate is min(PQD, Huffman) per lane
// group, with the host tree build amortized per chunk.
#pragma once

#include <cstdint>

#include "fpga/calibration.hpp"
#include "fpga/resources.hpp"
#include "util/dims.hpp"

namespace wavesz::fpga {

struct HuffmanEncoderConfig {
  std::size_t chunk_symbols = 1u << 20;  ///< symbols per double-buffered chunk
  double host_tree_build_us = 900.0;     ///< measured-class host latency
  int encoders = kWaveSzLanes;           ///< one per PQD lane to keep rate
};

struct HuffmanStageModel {
  double symbols_per_second = 0.0;   ///< sustained, all encoders
  double efficiency = 0.0;           ///< fraction of peak after tree builds
  ResourceUsage resources;           ///< all encoders
};

/// Sustained rate and cost of the Huffman stage itself.
HuffmanStageModel huffman_stage(const HuffmanEncoderConfig& cfg = {},
                                const ClockConfig& clock = {});

/// End-to-end waveSZ with the on-chip H* stage: min(PQD, Huffman) pipeline,
/// same interface derating and PCIe cap as wave_throughput().
struct FutureWaveSz {
  double effective_mbps = 0.0;
  double delivered_mbps = 0.0;
  bool huffman_bound = false;  ///< true when H*, not PQD, limits the rate
  ResourceUsage added_resources;
};

FutureWaveSz future_wave_throughput(const Dims& dims,
                                    const HuffmanEncoderConfig& cfg = {});

/// BRAM_18K blocks needed for one 65,536-entry code table (24-bit code +
/// 5-bit length per symbol) plus the histogram counters.
int huffman_table_bram();

}  // namespace wavesz::fpga
