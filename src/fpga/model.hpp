// End-to-end FPGA throughput model: schedule simulation x clock x lanes,
// derated by the calibrated interface efficiency and capped by PCIe
// (paper Table 5 and Fig. 8).
#pragma once

#include <cstdint>

#include "fpga/calibration.hpp"
#include "fpga/schedule.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"

namespace wavesz::fpga {

struct DesignThroughput {
  ScheduleStats schedule;      ///< one lane's schedule over its partition
  double seconds = 0.0;        ///< wall time of the slowest lane
  double raw_mbps = 0.0;       ///< schedule-only (no interface derating)
  double effective_mbps = 0.0; ///< x interface efficiency
  double delivered_mbps = 0.0; ///< min(effective, PCIe gen2 x4)
};

struct ModelConfig {
  ClockConfig clock{};
  OpLatencies ops{};
  PcieConfig pcie{};
  double interface_efficiency = kInterfaceEfficiency;
};

/// waveSZ: `lanes` parallel PQD pipelines over column-partitioned chunks of
/// the flattened 2D view; pipeline depth Lambda = d0 - 1.
DesignThroughput wave_throughput(const Dims& dims, int lanes,
                                 sz::EbBase base = sz::EbBase::Two,
                                 const ModelConfig& cfg = {});

/// GhostSZ: one logical lane (three curve-fitting units), pII = 2, over the
/// flattened 2D view. `replicas` scales the whole design for Fig. 8.
DesignThroughput ghost_throughput(const Dims& dims, int replicas = 1,
                                  const ModelConfig& cfg = {});

/// Hypothetical raster-order SZ pipeline on the FPGA (the layout ablation:
/// what waveSZ would cost without the wavefront transform).
DesignThroughput naive_raster_throughput(const Dims& dims,
                                         sz::EbBase base = sz::EbBase::Two,
                                         const ModelConfig& cfg = {});

/// SZ-1.4 (omp) series of Fig. 8: scale a measured single-core throughput
/// by the calibrated sublinear efficiency curve.
double omp_scaled_mbps(double single_core_mbps, int cores,
                       double alpha = kOmpEfficiencyAlpha);

}  // namespace wavesz::fpga
