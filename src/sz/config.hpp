// Shared compression configuration for the SZ family (SZ-1.4, GhostSZ,
// waveSZ). Mirrors the paper's experimental setup (§4.1): value-range-based
// relative error bound of 1e-3, 16-bit linear-scaling quantization (65,536
// bins), customized Huffman (H*) optionally followed by gzip (G*).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "deflate/lz77.hpp"
#include "deflate/parallel.hpp"

namespace wavesz::sz {

enum class EbMode {
  Absolute,           ///< bound applied as-is
  ValueRangeRelative, ///< bound * (max - min) of the input field
};

enum class PredictorKind : std::uint8_t {
  Lorenzo1Layer = 0,  ///< the paper's default (Fig. 2)
  Lorenzo2Layer = 1,  ///< wider stencil; helps on very smooth 1D/2D data
};

enum class EbBase {
  Ten,  ///< arbitrary decimal bound, full FP division in quantization
  Two,  ///< bound tightened to the nearest smaller power of two (waveSZ §3.3)
};

enum class Codec : std::uint8_t {
  /// The SZ-class pipeline: Lorenzo PQD, Huffman, DEFLATE (the default).
  Entropy = 0,
  /// SZx-inspired ultra-fast mode: fixed-size blocks, constant-block
  /// detection, per-block bit-plane truncation of error-bound quantized
  /// values, no entropy stage. ~3-5x the compression throughput at a
  /// modest ratio cost — the degraded-mode profile for latency-critical
  /// traffic. Wire format in DESIGN.md ("SZx fast section").
  Szx = 1,
};

struct Config {
  double error_bound = 1e-3;
  EbMode mode = EbMode::ValueRangeRelative;
  EbBase base = EbBase::Ten;
  int quant_bits = 16;        ///< 65,536 bins; GhostSZ effectively uses 14
  PredictorKind predictor = PredictorKind::Lorenzo1Layer;  ///< SZ-1.4 only
  bool huffman = true;        ///< customized Huffman (H*) before gzip
  deflate::Level gzip_level = deflate::Level::Fast;  ///< gzip best_speed

  /// Thread budget for the entropy back-end (chunked DEFLATE over the code
  /// and unpredictable sections): 1 = serial reference stream (the default;
  /// bit-identical to the historical output), 0 = all OpenMP threads, n =
  /// at most n. This is a *budget*, shared with slab-level parallelism:
  /// compress_omp() owns the threads and pins the per-slab back-end to 1 so
  /// the two levels never multiply. Not recorded in the container — the
  /// emitted stream is plain gzip either way.
  int codec_threads = 1;
  /// Worker granularity of the chunked DEFLATE engine.
  std::size_t deflate_chunk_bytes = deflate::kDefaultChunkBytes;

  /// Thread budget for the prediction-quantization hot path (Lorenzo PQD on
  /// compress, Lorenzo reconstruction on decompress) plus its serial
  /// stragglers (the Huffman encode histogram/bitpack and the value-range
  /// scan). Same semantics as codec_threads: 1 = serial raster reference
  /// (the default), 0 = all OpenMP threads, n = at most n. Budgets > 1
  /// switch the kernels to the tiled anti-diagonal wavefront schedule
  /// (paper §3.2 on CPU); the output container is bit-identical either way
  /// — only the visit order moves — so the knob is not recorded in the
  /// header. compress_omp() owns the threads at slab level and pins the
  /// per-slab PQD to 1 so the two levels never multiply.
  int pqd_threads = 1;

  /// Emit the container v2 per-chunk offset table (end bit offset into the
  /// code payload, end element offset, running CRC-32 per fixed-size chunk
  /// of quantization codes). Costs 28 bytes per chunk and unlocks the
  /// thread-parallel and region decoders; turn off to emit the v1 layout
  /// byte-identically to historical streams.
  bool chunk_index = true;
  /// Output elements per indexed chunk. 32 Ki symbols keeps the table under
  /// a couple hundred bytes for the paper's fields while still giving a
  /// 4-8-way decode split on a 512^2 slice.
  std::uint32_t index_chunk_symbols = 1u << 15;

  /// Thread budget for the container *decoder* (chunk-parallel Huffman
  /// decode from the v2 index plus concurrent section inflates). Same
  /// semantics as codec_threads: 1 = serial (the default), 0 = all OpenMP
  /// threads, n = at most n. Ignored — with a silent serial fallback — for
  /// v1 streams and v2 streams whose index was stripped. Decode output is
  /// bit-identical at every setting.
  int decode_threads = 1;

  /// Slabs in flight for the staged producer-consumer pipeline
  /// (core/pipeline.hpp): 0 = barrier execution (the default; phases run
  /// back-to-back on the calling thread), n >= 1 = overlapped execution
  /// with at most n slabs between the PQD, entropy and DEFLATE/frame
  /// stages — the software form of the paper's pII=1 datapath at slab
  /// granularity. StreamCompressor pipelines whole chunks; single-shot
  /// compress() overlaps the two independent container sections. Output
  /// bytes are identical to the barrier path at every depth and thread
  /// budget, so the knob is not recorded in the container.
  int pipeline_depth = 0;

  /// Codec selection: the entropy pipeline above, or the SZx-style
  /// ultra-fast block codec (which ignores the huffman/gzip/chunk-index
  /// knobs — it has no entropy stage and no chunk index).
  Codec codec = Codec::Entropy;
  /// Elements per SZx block. 256 keeps the per-block header cost under 1%
  /// while constant-block detection still fires on real fields.
  std::uint32_t szx_block_elems = 256;

  /// The ultra-fast profile: SZx block codec, everything else default.
  static Config ultrafast() {
    Config cfg;
    cfg.codec = Codec::Szx;
    cfg.huffman = false;
    cfg.chunk_index = false;
    return cfg;
  }

  deflate::ParallelOptions deflate_options() const {
    return {deflate_chunk_bytes, codec_threads, /*prime_dictionary=*/true};
  }

  /// Section-encode options for v2 chunk-indexed containers: chunking is
  /// forced even at one thread so every ~chunk of plain section bytes ends
  /// on a sync-flush marker, letting the region decoder's prefix inflate
  /// stop within one chunk of the bytes it needs. The cadence tracks the
  /// index granularity (two plain bytes per raw code symbol), floored so
  /// tiny test chunks don't degrade the ratio.
  deflate::ParallelOptions indexed_deflate_options() const {
    deflate::ParallelOptions o = deflate_options();
    o.force_chunking = true;
    const std::size_t cadence =
        std::size_t{2} * std::size_t{index_chunk_symbols};
    o.chunk_bytes = std::min(o.chunk_bytes,
                             std::max<std::size_t>(cadence, 4096));
    return o;
  }
};

/// Decode-side knobs, decoupled from Config so pure consumers don't have to
/// fabricate compression settings to pick a thread budget.
struct DecodeOptions {
  /// Chunk-parallel entropy decode + concurrent section inflates (see
  /// Config::decode_threads for semantics).
  int decode_threads = 1;
  /// Reconstruction (Lorenzo / wavefront) budget, as Config::pqd_threads.
  int pqd_threads = 1;
};

/// Resolve the absolute bound for a field with the given value range,
/// applying power-of-two tightening when base == Two.
double resolve_bound(const Config& cfg, double value_range);

/// Resolve a thread budget (codec_threads / pqd_threads semantics) to a
/// concrete thread count: 0 or negative = all OpenMP threads, otherwise the
/// budget itself; always 1 in builds without OpenMP.
int resolve_thread_budget(int budget);

}  // namespace wavesz::sz
