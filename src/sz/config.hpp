// Shared compression configuration for the SZ family (SZ-1.4, GhostSZ,
// waveSZ). Mirrors the paper's experimental setup (§4.1): value-range-based
// relative error bound of 1e-3, 16-bit linear-scaling quantization (65,536
// bins), customized Huffman (H*) optionally followed by gzip (G*).
#pragma once

#include <cstddef>
#include <cstdint>

#include "deflate/lz77.hpp"
#include "deflate/parallel.hpp"

namespace wavesz::sz {

enum class EbMode {
  Absolute,           ///< bound applied as-is
  ValueRangeRelative, ///< bound * (max - min) of the input field
};

enum class PredictorKind : std::uint8_t {
  Lorenzo1Layer = 0,  ///< the paper's default (Fig. 2)
  Lorenzo2Layer = 1,  ///< wider stencil; helps on very smooth 1D/2D data
};

enum class EbBase {
  Ten,  ///< arbitrary decimal bound, full FP division in quantization
  Two,  ///< bound tightened to the nearest smaller power of two (waveSZ §3.3)
};

struct Config {
  double error_bound = 1e-3;
  EbMode mode = EbMode::ValueRangeRelative;
  EbBase base = EbBase::Ten;
  int quant_bits = 16;        ///< 65,536 bins; GhostSZ effectively uses 14
  PredictorKind predictor = PredictorKind::Lorenzo1Layer;  ///< SZ-1.4 only
  bool huffman = true;        ///< customized Huffman (H*) before gzip
  deflate::Level gzip_level = deflate::Level::Fast;  ///< gzip best_speed

  /// Thread budget for the entropy back-end (chunked DEFLATE over the code
  /// and unpredictable sections): 1 = serial reference stream (the default;
  /// bit-identical to the historical output), 0 = all OpenMP threads, n =
  /// at most n. This is a *budget*, shared with slab-level parallelism:
  /// compress_omp() owns the threads and pins the per-slab back-end to 1 so
  /// the two levels never multiply. Not recorded in the container — the
  /// emitted stream is plain gzip either way.
  int codec_threads = 1;
  /// Worker granularity of the chunked DEFLATE engine.
  std::size_t deflate_chunk_bytes = deflate::kDefaultChunkBytes;

  /// Thread budget for the prediction-quantization hot path (Lorenzo PQD on
  /// compress, Lorenzo reconstruction on decompress) plus its serial
  /// stragglers (the Huffman encode histogram/bitpack and the value-range
  /// scan). Same semantics as codec_threads: 1 = serial raster reference
  /// (the default), 0 = all OpenMP threads, n = at most n. Budgets > 1
  /// switch the kernels to the tiled anti-diagonal wavefront schedule
  /// (paper §3.2 on CPU); the output container is bit-identical either way
  /// — only the visit order moves — so the knob is not recorded in the
  /// header. compress_omp() owns the threads at slab level and pins the
  /// per-slab PQD to 1 so the two levels never multiply.
  int pqd_threads = 1;

  deflate::ParallelOptions deflate_options() const {
    return {deflate_chunk_bytes, codec_threads, /*prime_dictionary=*/true};
  }
};

/// Resolve the absolute bound for a field with the given value range,
/// applying power-of-two tightening when base == Two.
double resolve_bound(const Config& cfg, double value_range);

/// Resolve a thread budget (codec_threads / pqd_threads semantics) to a
/// concrete thread count: 0 or negative = all OpenMP threads, otherwise the
/// budget itself; always 1 in builds without OpenMP.
int resolve_thread_budget(int budget);

}  // namespace wavesz::sz
