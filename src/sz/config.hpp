// Shared compression configuration for the SZ family (SZ-1.4, GhostSZ,
// waveSZ). Mirrors the paper's experimental setup (§4.1): value-range-based
// relative error bound of 1e-3, 16-bit linear-scaling quantization (65,536
// bins), customized Huffman (H*) optionally followed by gzip (G*).
#pragma once

#include <cstdint>

#include "deflate/lz77.hpp"

namespace wavesz::sz {

enum class EbMode {
  Absolute,           ///< bound applied as-is
  ValueRangeRelative, ///< bound * (max - min) of the input field
};

enum class PredictorKind : std::uint8_t {
  Lorenzo1Layer = 0,  ///< the paper's default (Fig. 2)
  Lorenzo2Layer = 1,  ///< wider stencil; helps on very smooth 1D/2D data
};

enum class EbBase {
  Ten,  ///< arbitrary decimal bound, full FP division in quantization
  Two,  ///< bound tightened to the nearest smaller power of two (waveSZ §3.3)
};

struct Config {
  double error_bound = 1e-3;
  EbMode mode = EbMode::ValueRangeRelative;
  EbBase base = EbBase::Ten;
  int quant_bits = 16;        ///< 65,536 bins; GhostSZ effectively uses 14
  PredictorKind predictor = PredictorKind::Lorenzo1Layer;  ///< SZ-1.4 only
  bool huffman = true;        ///< customized Huffman (H*) before gzip
  deflate::Level gzip_level = deflate::Level::Fast;  ///< gzip best_speed
};

/// Resolve the absolute bound for a field with the given value range,
/// applying power-of-two tightening when base == Two.
double resolve_bound(const Config& cfg, double value_range);

}  // namespace wavesz::sz
