#include "sz/unpredictable.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/bitio.hpp"
#include "util/error.hpp"

namespace wavesz::sz {
namespace {

/// floor(log2(bound)) for a positive finite bound.
int bound_exponent(double bound) {
  WAVESZ_REQUIRE(bound > 0.0 && std::isfinite(bound),
                 "truncation bound must be positive and finite");
  int e = 0;
  (void)std::frexp(bound, &e);  // bound == f * 2^e, f in [0.5, 1)
  return e - 1;
}

/// Number of leading mantissa bits to keep so the truncation error of a
/// normal float with unbiased exponent e_v stays <= 2^e_p <= bound.
int mantissa_bits_needed(int e_v, int e_p) {
  return std::clamp(e_v - e_p, 0, 23);
}

}  // namespace

int truncation_bits(float value, double bound) {
  if (std::fabs(static_cast<double>(value)) <= bound) return 1;
  const auto bits = std::bit_cast<std::uint32_t>(value);
  const int biased = static_cast<int>((bits >> 23) & 0xff);
  const int k = (biased == 0)
                    ? 23  // subnormal: keep everything (exact)
                    : mantissa_bits_needed(biased - 127,
                                           bound_exponent(bound));
  return 1 + 5 + 1 + 8 + k;
}

float truncation_roundtrip(float value, double bound) {
  if (std::fabs(static_cast<double>(value)) <= bound) return 0.0f;
  const auto bits = std::bit_cast<std::uint32_t>(value);
  const int biased = static_cast<int>((bits >> 23) & 0xff);
  const int k = (biased == 0)
                    ? 23
                    : mantissa_bits_needed(biased - 127,
                                           bound_exponent(bound));
  const std::uint32_t keep_mask =
      k == 0 ? 0u : (0x7fffffu >> (23 - k)) << (23 - k);
  return std::bit_cast<float>(bits & (0xff800000u | keep_mask));
}

std::vector<std::uint8_t> truncation_encode(std::span<const float> values,
                                            double bound) {
  const int e_p = bound_exponent(bound);
  BitWriterMSB bw;
  for (float v : values) {
    WAVESZ_REQUIRE(std::isfinite(v), "cannot truncation-encode non-finite");
    if (std::fabs(static_cast<double>(v)) <= bound) {
      bw.bits(0, 1);
      continue;
    }
    bw.bits(1, 1);
    const auto bits = std::bit_cast<std::uint32_t>(v);
    const int biased = static_cast<int>((bits >> 23) & 0xff);
    const int k =
        (biased == 0) ? 23 : mantissa_bits_needed(biased - 127, e_p);
    bw.bits(static_cast<std::uint32_t>(k), 5);
    bw.bits(bits >> 31, 1);                           // sign
    bw.bits(static_cast<std::uint32_t>(biased), 8);   // exponent
    if (k > 0) {
      bw.bits((bits & 0x7fffffu) >> (23 - k), k);     // top mantissa bits
    }
  }
  return bw.take();
}

std::vector<float> truncation_decode(std::span<const std::uint8_t> blob,
                                     std::size_t count, double bound) {
  (void)bound;  // symmetric format: bound only affects how many bits exist
  // Every value costs at least one bit; a larger count is a forged header.
  WAVESZ_REQUIRE(count <= blob.size() * 8,
                 "value count exceeds payload capacity");
  BitReaderMSB br(blob);
  std::vector<float> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (br.bit() == 0) {
      out.push_back(0.0f);
      continue;
    }
    const int k = static_cast<int>(br.bits(5));
    WAVESZ_REQUIRE(k <= 23, "corrupt truncation stream");
    const std::uint32_t sign = br.bit();
    const std::uint32_t exp = br.bits(8);
    std::uint32_t mant = 0;
    if (k > 0) mant = br.bits(k) << (23 - k);
    out.push_back(std::bit_cast<float>((sign << 31) | (exp << 23) | mant));
  }
  return out;
}

namespace {

/// Mantissa bits to keep for a float64 with unbiased exponent e_v.
int mantissa_bits_needed64(int e_v, int e_p) {
  return std::clamp(e_v - e_p, 0, 52);
}

}  // namespace

double truncation_roundtrip64(double value, double bound) {
  if (std::fabs(value) <= bound) return 0.0;
  const auto bits = std::bit_cast<std::uint64_t>(value);
  const int biased = static_cast<int>((bits >> 52) & 0x7ff);
  const int k = (biased == 0)
                    ? 52
                    : mantissa_bits_needed64(biased - 1023,
                                             bound_exponent(bound));
  const std::uint64_t mantissa_mask = 0xfffffffffffffull;
  const std::uint64_t keep_mask =
      k == 0 ? 0ull : (mantissa_mask >> (52 - k)) << (52 - k);
  return std::bit_cast<double>(bits & (0xfff0000000000000ull | keep_mask));
}

std::vector<std::uint8_t> truncation_encode64(std::span<const double> values,
                                              double bound) {
  const int e_p = bound_exponent(bound);
  BitWriterMSB bw;
  for (double v : values) {
    WAVESZ_REQUIRE(std::isfinite(v), "cannot truncation-encode non-finite");
    if (std::fabs(v) <= bound) {
      bw.bits(0, 1);
      continue;
    }
    bw.bits(1, 1);
    const auto bits = std::bit_cast<std::uint64_t>(v);
    const int biased = static_cast<int>((bits >> 52) & 0x7ff);
    const int k =
        (biased == 0) ? 52 : mantissa_bits_needed64(biased - 1023, e_p);
    bw.bits(static_cast<std::uint32_t>(k), 6);
    bw.bits(static_cast<std::uint32_t>(bits >> 63), 1);          // sign
    bw.bits(static_cast<std::uint32_t>(biased), 11);             // exponent
    const std::uint64_t mant = bits & 0xfffffffffffffull;
    if (k > 32) {
      bw.bits(static_cast<std::uint32_t>(mant >> (52 - k + 32)), k - 32);
      bw.bits(static_cast<std::uint32_t>((mant >> (52 - k)) & 0xffffffffull),
              32);
    } else if (k > 0) {
      bw.bits(static_cast<std::uint32_t>(mant >> (52 - k)), k);
    }
  }
  return bw.take();
}

std::vector<double> truncation_decode64(std::span<const std::uint8_t> blob,
                                        std::size_t count, double bound) {
  (void)bound;
  WAVESZ_REQUIRE(count <= blob.size() * 8,
                 "value count exceeds payload capacity");
  BitReaderMSB br(blob);
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (br.bit() == 0) {
      out.push_back(0.0);
      continue;
    }
    const int k = static_cast<int>(br.bits(6));
    WAVESZ_REQUIRE(k <= 52, "corrupt truncation stream");
    const std::uint64_t sign = br.bit();
    const std::uint64_t exp = br.bits(11);
    std::uint64_t mant = 0;
    if (k > 32) {
      mant = static_cast<std::uint64_t>(br.bits(k - 32)) << 32;
      mant |= br.bits(32);
      mant <<= (52 - k);
    } else if (k > 0) {
      mant = static_cast<std::uint64_t>(br.bits(k)) << (52 - k);
    }
    out.push_back(std::bit_cast<double>((sign << 63) | (exp << 52) | mant));
  }
  return out;
}

}  // namespace wavesz::sz
