#include "sz/config.hpp"

#include "util/error.hpp"
#include "util/float_bits.hpp"

namespace wavesz::sz {

double resolve_bound(const Config& cfg, double value_range) {
  WAVESZ_REQUIRE(cfg.error_bound > 0.0, "error bound must be positive");
  double bound = cfg.error_bound;
  if (cfg.mode == EbMode::ValueRangeRelative) {
    WAVESZ_REQUIRE(value_range >= 0.0, "negative value range");
    // A constant field has zero range; any positive bound is vacuously met,
    // so fall back to the relative bound itself to keep the math finite.
    bound *= (value_range > 0.0 ? value_range : 1.0);
  }
  if (cfg.base == EbBase::Two) {
    bound = pow2_tighten(bound);
  }
  return bound;
}

}  // namespace wavesz::sz
