// SZ-1.4 reference compressor (paper §2.1): Lorenzo prediction over
// previously *decompressed* neighbours, linear-scaling quantization,
// customized Huffman (H*), gzip, and truncation-coded unpredictable values.
//
// Border points are predicted with the reduced-dimension Lorenzo stencil
// (implemented uniformly as zero-padding of the reconstructed field), which
// is why SZ-1.4's ratio slightly exceeds waveSZ+H*G* in paper Table 7 —
// waveSZ ships its border points verbatim instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sz/config.hpp"
#include "sz/container.hpp"
#include "sz/quantizer.hpp"
#include "util/dims.hpp"

namespace wavesz::sz {

/// Raw prediction-quantization-decompression pass, exposed for the benches
/// (Fig. 1 prediction errors, ablations) and for cross-implementation tests.
struct Pqd {
  std::vector<std::uint16_t> codes;    ///< one per point, 0 = unpredictable
  std::vector<float> reconstructed;    ///< decompressor-visible values
  std::vector<float> unpredictable;    ///< originals of code-0 points, in order
};

/// Lorenzo PQD in raster order with zero-padded borders (rank 1/2/3).
Pqd lorenzo_pqd(std::span<const float> data, const Dims& dims,
                const LinearQuantizer& q,
                PredictorKind kind = PredictorKind::Lorenzo1Layer);

/// Rebuild the reconstructed field from codes + unpredictable values; the
/// unpredictable values must already be decompressor-visible (truncated).
std::vector<float> lorenzo_reconstruct(
    std::span<const std::uint16_t> codes, std::span<const float> unpredictable,
    const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer);

/// float64 counterpart of Pqd.
struct Pqd64 {
  std::vector<std::uint16_t> codes;
  std::vector<double> reconstructed;
  std::vector<double> unpredictable;
};

Pqd64 lorenzo_pqd64(std::span<const double> data, const Dims& dims,
                    const LinearQuantizer& q,
                    PredictorKind kind = PredictorKind::Lorenzo1Layer);

std::vector<double> lorenzo_reconstruct64(
    std::span<const std::uint16_t> codes,
    std::span<const double> unpredictable, const Dims& dims,
    const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer);

/// Value range (max - min) of a field, computed with up to `threads` OpenMP
/// threads (budget semantics of Config::pqd_threads). Deterministic and
/// identical to the serial scan for every budget: per-chunk min/max combine
/// order-independently, and NaN handling matches the serial loop (NaNs are
/// skipped unless data[0] itself is NaN, which poisons the result).
double value_range(std::span<const float> data, int threads = 1);
double value_range(std::span<const double> data, int threads = 1);

struct Compressed {
  std::vector<std::uint8_t> bytes;
  ContainerHeader header;
  std::size_t code_blob_bytes = 0;
  std::size_t unpred_blob_bytes = 0;
};

/// One compress call split into the phases the staged pipeline
/// (core/pipeline.hpp) schedules: prediction-quantization, per-section
/// entropy encode, per-section DEFLATE, final container assembly. The
/// barrier path is run() — every phase back-to-back on the calling thread —
/// and the pipelined paths call the same phase bodies in a different
/// interleaving, so the output bytes are identical by construction. Sections
/// (the code stream and the unpredictable/verbatim stream) are mutually
/// independent after pqd(); phases of *different* sections may overlap,
/// phases of one section must run in encode -> deflate order, and assemble()
/// requires every deflate to have finished.
class StagedCompressor {
 public:
  virtual ~StagedCompressor() = default;

  /// Independent output sections (2 for entropy containers, 1 for SZx).
  virtual std::size_t sections() const = 0;
  /// Phase 1: value range, bound resolution, Lorenzo/wavefront PQD.
  virtual void pqd() = 0;
  /// Phase 2 for section `s`: Huffman/raw code pack or verbatim serialize.
  virtual void encode_section(std::size_t s) = 0;
  /// Phase 3 for section `s`: gzip the plain section bytes.
  virtual void deflate_section(std::size_t s) = 0;
  /// Final phase: header + index + section framing into the container.
  virtual Compressed assemble() = 0;

  /// All entropy encodes — the middle-stage body when a whole chunk is the
  /// pipeline slab (StreamCompressor).
  void entropy() {
    for (std::size_t s = 0; s < sections(); ++s) encode_section(s);
  }
  /// All section deflates plus assembly — the last-stage body.
  Compressed frame() {
    for (std::size_t s = 0; s < sections(); ++s) deflate_section(s);
    return assemble();
  }
  /// The barrier reference path.
  Compressed run() {
    pqd();
    entropy();
    return frame();
  }
};

/// Build the staged job equivalent to compress(data, dims, cfg) (including
/// Codec::Szx dispatch). The data span must outlive the job.
std::unique_ptr<StagedCompressor> make_staged(std::span<const float> data,
                                              const Dims& dims,
                                              const Config& cfg);
std::unique_ptr<StagedCompressor> make_staged(std::span<const double> data,
                                              const Dims& dims,
                                              const Config& cfg);

/// Execute a staged job under Config::pipeline_depth semantics: depth <= 0
/// runs the barrier path; otherwise pqd() runs on the calling thread and the
/// independent sections stream through a two-stage entropy/frame executor so
/// the DEFLATE of section s overlaps the entropy encode of section s+1.
/// Output bytes are identical either way.
Compressed run_staged(StagedCompressor& job, int pipeline_depth);

/// Full SZ-1.4 compression of a float32 field.
Compressed compress(std::span<const float> data, const Dims& dims,
                    const Config& cfg);

/// Full SZ-1.4 compression of a float64 field (SZ's `-d` mode).
Compressed compress(std::span<const double> data, const Dims& dims,
                    const Config& cfg);

/// Inverse of compress() for float32 containers; optionally reports dims.
/// Throws wavesz::Error when applied to a float64 container. `pqd_threads`
/// is a thread budget for the Lorenzo reconstruction (Config::pqd_threads
/// semantics); the result is value-identical for every budget.
std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out = nullptr, int pqd_threads = 1);

/// Inverse of compress() for float64 containers.
std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 Dims* dims_out = nullptr,
                                 int pqd_threads = 1);

/// decompress() with full decode-side control: `opts.decode_threads > 1`
/// runs the v2 chunk-index parallel path (concurrent section inflates +
/// chunk-parallel Huffman decode with per-chunk CRC verification), falling
/// back to the serial full decode for v1 streams or a stripped index. The
/// output is bit-identical to the serial path at every setting.
std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              const DecodeOptions& opts,
                              Dims* dims_out = nullptr);
std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 const DecodeOptions& opts,
                                 Dims* dims_out = nullptr);

/// Decode only the part of the stream needed for a hyperslab of the field.
/// The Lorenzo stencil only ever reaches backward in raster order, so the
/// dependency closure of any hyperslab is the prefix of complete outer
/// slabs [0, hi[0]); with a v2 chunk index the decoder inflates and decodes
/// just the chunks covering that prefix (partial gzip inflate included) and
/// gathers the requested region out of it. The region values are identical
/// to the same slice of a full decompress(). v1 / stripped-index streams
/// fall back to a full decode (compressed_bytes_read then reports the whole
/// container).
RegionResult decompress_region(std::span<const std::uint8_t> bytes,
                               const Region& region,
                               const DecodeOptions& opts = {});
RegionResult64 decompress_region64(std::span<const std::uint8_t> bytes,
                                   const Region& region,
                                   const DecodeOptions& opts = {});

}  // namespace wavesz::sz
