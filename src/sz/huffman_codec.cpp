#include "sz/huffman_codec.hpp"

#include <algorithm>
#include <array>

#include "sz/config.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace wavesz::sz {
namespace {

constexpr int kMaxCodeLength = 24;
constexpr std::size_t kAlphabet = 65536;
/// Below this many symbols per worker the table/merge overhead wins.
constexpr std::size_t kMinSymbolsPerThread = 1u << 15;

int clamp_threads(int budget, std::size_t symbols) {
  const auto cap = std::max<std::size_t>(1, symbols / kMinSymbolsPerThread);
  return static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_thread_budget(budget)), cap));
}

/// Contiguous chunk boundaries for splitting `n` symbols over `parts`.
std::vector<std::size_t> chunk_bounds(std::size_t n, int parts) {
  std::vector<std::size_t> b(static_cast<std::size_t>(parts) + 1, 0);
  for (int k = 0; k < parts; ++k) {
    b[static_cast<std::size_t>(k) + 1] =
        n * (static_cast<std::size_t>(k) + 1) /
        static_cast<std::size_t>(parts);
  }
  return b;
}

std::vector<std::uint64_t> frequencies(std::span<const std::uint16_t> codes,
                                       int nt) {
  std::vector<std::uint64_t> freq(kAlphabet, 0);
  if (nt <= 1) {
    for (std::uint16_t c : codes) ++freq[c];
    return freq;
  }
  // Per-thread histograms, reduced serially: 65536 * nt adds, trivial next
  // to the counting pass itself.
  const auto bounds = chunk_bounds(codes.size(), nt);
  std::vector<std::vector<std::uint64_t>> local(
      static_cast<std::size_t>(nt));
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
#endif
  for (int t = 0; t < nt; ++t) {
    auto& mine = local[static_cast<std::size_t>(t)];
    mine.assign(kAlphabet, 0);
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = lo; i < hi; ++i) ++mine[codes[i]];
  }
  for (const auto& mine : local) {
    for (std::size_t s = 0; s < kAlphabet; ++s) freq[s] += mine[s];
  }
  return freq;
}

/// MSB-first bit-pack of the payload in `nt` independent chunks. Each chunk
/// is packed locally with its global bit phase (start % 8) as leading zero
/// bits, then spliced at byte granularity: OR for the boundary byte shared
/// with the previous chunk, copy for the rest. The concatenated bit
/// sequence — hence the byte stream — is identical to one serial
/// BitWriterMSB pass.
std::vector<std::uint8_t> pack_payload(std::span<const std::uint16_t> codes,
                                       std::span<const std::uint32_t> canon,
                                       std::span<const std::uint8_t> lengths,
                                       int nt, std::uint64_t* payload_bits) {
  if (nt <= 1) {
    BitWriterMSB bw;
    for (std::uint16_t c : codes) bw.bits(canon[c], lengths[c]);
    *payload_bits = bw.bit_count();
    return bw.take();
  }
  const auto bounds = chunk_bounds(codes.size(), nt);
  // Exclusive prefix of per-chunk bit counts gives every chunk's start bit.
  std::vector<std::uint64_t> start(static_cast<std::size_t>(nt) + 1, 0);
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
#endif
  for (int t = 0; t < nt; ++t) {
    std::uint64_t bits = 0;
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = lo; i < hi; ++i) bits += lengths[codes[i]];
    start[static_cast<std::size_t>(t) + 1] = bits;
  }
  for (int t = 0; t < nt; ++t) {
    start[static_cast<std::size_t>(t) + 1] +=
        start[static_cast<std::size_t>(t)];
  }
  const std::uint64_t total = start[static_cast<std::size_t>(nt)];

  std::vector<std::vector<std::uint8_t>> local(
      static_cast<std::size_t>(nt));
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
#endif
  for (int t = 0; t < nt; ++t) {
    BitWriterMSB bw;
    bw.bits(0, static_cast<int>(start[static_cast<std::size_t>(t)] % 8));
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = lo; i < hi; ++i) {
      bw.bits(canon[codes[i]], lengths[codes[i]]);
    }
    local[static_cast<std::size_t>(t)] = bw.take();
  }

  std::vector<std::uint8_t> out((total + 7) / 8, 0);
  for (int t = 0; t < nt; ++t) {
    const auto& piece = local[static_cast<std::size_t>(t)];
    if (piece.empty()) continue;
    const std::size_t byte0 =
        static_cast<std::size_t>(start[static_cast<std::size_t>(t)] / 8);
    out[byte0] |= piece[0];  // shared boundary byte with the previous chunk
    std::copy(piece.begin() + 1, piece.end(),
              out.begin() + static_cast<std::ptrdiff_t>(byte0) + 1);
  }
  *payload_bits = total;
  return out;
}

}  // namespace

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint16_t> codes,
                                         int threads) {
  ByteWriter w;
  if (codes.empty()) {
    // Bit-identical to the general path on an empty stream (no table
    // entries, zero counts) without ever allocating the frequency table.
    w.u32(0);
    w.u64(0);
    w.u64(0);
    return w.take();
  }
  const int nt = clamp_threads(threads, codes.size());
  std::vector<std::uint64_t> freq;
  std::vector<std::uint8_t> lengths;
  std::vector<std::uint32_t> canon;
  {
    telemetry::Span span(telemetry::spans::kHuffmanTable);
    const std::uint64_t t0 =
        telemetry::enabled() ? telemetry::detail::now_ns() : 0;
    freq = frequencies(codes, nt);
    lengths = huffman_code_lengths(freq, kMaxCodeLength);
    canon = canonical_codes(lengths);
    if (telemetry::enabled()) {
      telemetry::counter_add(telemetry::Counter::HuffmanTableBuildNs,
                             telemetry::detail::now_ns() - t0);
    }
  }

  std::uint32_t distinct = 0;
  for (auto l : lengths) {
    if (l > 0) ++distinct;
  }
  w.u32(distinct);
  w.u64(codes.size());
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] > 0) {
      w.u16(static_cast<std::uint16_t>(s));
      w.u8(lengths[s]);
    }
  }
  telemetry::Span span_pack(telemetry::spans::kHuffmanPack);
  std::uint64_t payload_bits = 0;
  const auto payload = pack_payload(codes, canon, lengths, nt, &payload_bits);
  w.u64(payload_bits);
  w.bytes(payload);
  return w.take();
}

namespace {

std::vector<std::uint16_t> huffman_decode_impl(
    std::span<const std::uint8_t> blob, bool reference) {
  telemetry::Span span(telemetry::spans::kHuffmanDecode);
  ByteReader r(blob);
  const std::uint32_t distinct = r.u32();
  const std::uint64_t count = r.u64();
  std::vector<std::uint8_t> lengths(kAlphabet, 0);
  for (std::uint32_t i = 0; i < distinct; ++i) {
    const std::uint16_t sym = r.u16();
    const std::uint8_t len = r.u8();
    WAVESZ_REQUIRE(len >= 1 && len <= kMaxCodeLength,
                   "Huffman table entry with invalid length");
    WAVESZ_REQUIRE(lengths[sym] == 0, "duplicate Huffman table entry");
    lengths[sym] = len;
  }
  WAVESZ_REQUIRE(kraft_complete(lengths),
                 "Huffman table is not a complete prefix code");
  const std::uint64_t payload_bits = r.u64();
  // Checked before the byte-count division: a claimed bit count near 2^64
  // would wrap (payload_bits + 7) / 8 into a tiny read.
  WAVESZ_REQUIRE(payload_bits / 8 <= r.remaining(),
                 "Huffman payload exceeds the container");
  const auto payload = r.bytes((payload_bits + 7) / 8);
  // Every symbol costs at least one bit; anything else is a forged header
  // trying to force a huge allocation.
  WAVESZ_REQUIRE(count <= payload_bits || count == 0,
                 "symbol count exceeds payload capacity");

  std::vector<std::uint16_t> out;
  out.reserve(count);
  if (count == 0) return out;
  if (distinct == 1) {
    // Degenerate single-symbol stream: each symbol is one bit.
    std::uint16_t only = 0;
    for (std::size_t s = 0; s < kAlphabet; ++s) {
      if (lengths[s] > 0) only = static_cast<std::uint16_t>(s);
    }
    WAVESZ_REQUIRE(payload_bits == count, "payload size mismatch");
    out.assign(count, only);
    return out;
  }
  const CanonicalDecoder dec(lengths);
  BitReaderMSB br(payload);
  // The decode stays serial even though the encoder packs in parallel
  // chunks: the container carries no chunk index, and recovering the chunk
  // boundaries takes a serial table walk that costs as much as the decode
  // itself, so a two-pass parallel scheme is strictly slower than one pass
  // through the flat table. If a forged header defeats the table build
  // (over-subscribed or absurdly deep), the oracle decodes it instead.
  if (reference || !dec.has_fast_table()) {
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(static_cast<std::uint16_t>(
          dec.decode([&] { return br.bit(); })));
    }
  } else {
    out.resize(count);
    const auto peek = [&](int n) { return br.peek(n); };
    const auto consume = [&](int n) { br.consume(n); };
    for (std::uint64_t i = 0; i < count; ++i) {
      out[i] = static_cast<std::uint16_t>(dec.decode_fast(peek, consume));
    }
  }
  WAVESZ_REQUIRE(br.position() == payload_bits,
                 "Huffman payload has trailing data");
  return out;
}

}  // namespace

std::vector<std::uint16_t> huffman_decode(std::span<const std::uint8_t> blob) {
  return huffman_decode_impl(blob, reference_decode_enabled());
}

std::vector<std::uint16_t> huffman_decode_reference(
    std::span<const std::uint8_t> blob) {
  return huffman_decode_impl(blob, /*reference=*/true);
}

double huffman_mean_bits(std::span<const std::uint16_t> codes) {
  if (codes.empty()) return 0.0;
  const auto freq = frequencies(codes, 1);
  const auto lengths = huffman_code_lengths(freq, kMaxCodeLength);
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    bits += freq[s] * lengths[s];
  }
  return static_cast<double>(bits) / static_cast<double>(codes.size());
}

}  // namespace wavesz::sz
