#include "sz/huffman_codec.hpp"

#include <array>

#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"

namespace wavesz::sz {
namespace {

constexpr int kMaxCodeLength = 24;
constexpr std::size_t kAlphabet = 65536;

std::vector<std::uint64_t> frequencies(std::span<const std::uint16_t> codes) {
  std::vector<std::uint64_t> freq(kAlphabet, 0);
  for (std::uint16_t c : codes) ++freq[c];
  return freq;
}

}  // namespace

std::vector<std::uint8_t> huffman_encode(
    std::span<const std::uint16_t> codes) {
  const auto freq = frequencies(codes);
  const auto lengths = huffman_code_lengths(freq, kMaxCodeLength);
  const auto canon = canonical_codes(lengths);

  ByteWriter w;
  std::uint32_t distinct = 0;
  for (auto l : lengths) {
    if (l > 0) ++distinct;
  }
  w.u32(distinct);
  w.u64(codes.size());
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] > 0) {
      w.u16(static_cast<std::uint16_t>(s));
      w.u8(lengths[s]);
    }
  }
  BitWriterMSB bw;
  for (std::uint16_t c : codes) {
    bw.bits(canon[c], lengths[c]);
  }
  const std::uint64_t payload_bits = bw.bit_count();
  const auto payload = bw.take();
  w.u64(payload_bits);
  w.bytes(payload);
  return w.take();
}

std::vector<std::uint16_t> huffman_decode(std::span<const std::uint8_t> blob) {
  ByteReader r(blob);
  const std::uint32_t distinct = r.u32();
  const std::uint64_t count = r.u64();
  std::vector<std::uint8_t> lengths(kAlphabet, 0);
  for (std::uint32_t i = 0; i < distinct; ++i) {
    const std::uint16_t sym = r.u16();
    const std::uint8_t len = r.u8();
    WAVESZ_REQUIRE(len >= 1 && len <= kMaxCodeLength,
                   "Huffman table entry with invalid length");
    WAVESZ_REQUIRE(lengths[sym] == 0, "duplicate Huffman table entry");
    lengths[sym] = len;
  }
  WAVESZ_REQUIRE(kraft_complete(lengths),
                 "Huffman table is not a complete prefix code");
  const std::uint64_t payload_bits = r.u64();
  const auto payload = r.bytes((payload_bits + 7) / 8);
  // Every symbol costs at least one bit; anything else is a forged header
  // trying to force a huge allocation.
  WAVESZ_REQUIRE(count <= payload_bits || count == 0,
                 "symbol count exceeds payload capacity");

  std::vector<std::uint16_t> out;
  out.reserve(count);
  if (count == 0) return out;
  if (distinct == 1) {
    // Degenerate single-symbol stream: each symbol is one bit.
    std::uint16_t only = 0;
    for (std::size_t s = 0; s < kAlphabet; ++s) {
      if (lengths[s] > 0) only = static_cast<std::uint16_t>(s);
    }
    WAVESZ_REQUIRE(payload_bits == count, "payload size mismatch");
    out.assign(count, only);
    return out;
  }
  const CanonicalDecoder dec(lengths);
  BitReaderMSB br(payload);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(static_cast<std::uint16_t>(
        dec.decode([&] { return br.bit(); })));
  }
  WAVESZ_REQUIRE(br.position() == payload_bits,
                 "Huffman payload has trailing data");
  return out;
}

double huffman_mean_bits(std::span<const std::uint16_t> codes) {
  if (codes.empty()) return 0.0;
  const auto freq = frequencies(codes);
  const auto lengths = huffman_code_lengths(freq, kMaxCodeLength);
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    bits += freq[s] * lengths[s];
  }
  return static_cast<double>(bits) / static_cast<double>(codes.size());
}

}  // namespace wavesz::sz
