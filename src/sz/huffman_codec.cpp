#include "sz/huffman_codec.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <exception>

#include "sz/config.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"
#include "util/simd.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace wavesz::sz {
namespace {

constexpr int kMaxCodeLength = 24;
constexpr std::size_t kAlphabet = 65536;
/// Below this many symbols per worker the table/merge overhead wins.
constexpr std::size_t kMinSymbolsPerThread = 1u << 15;

int clamp_threads(int budget, std::size_t symbols) {
  const auto cap = std::max<std::size_t>(1, symbols / kMinSymbolsPerThread);
  return static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_thread_budget(budget)), cap));
}

/// Contiguous chunk boundaries for splitting `n` symbols over `parts`.
std::vector<std::size_t> chunk_bounds(std::size_t n, int parts) {
  std::vector<std::size_t> b(static_cast<std::size_t>(parts) + 1, 0);
  for (int k = 0; k < parts; ++k) {
    b[static_cast<std::size_t>(k) + 1] =
        n * (static_cast<std::size_t>(k) + 1) /
        static_cast<std::size_t>(parts);
  }
  return b;
}

std::vector<std::uint64_t> frequencies(std::span<const std::uint16_t> codes,
                                       int nt) {
  std::vector<std::uint64_t> freq(kAlphabet, 0);
  if (nt <= 1) {
    simd::histogram_u16(codes.data(), codes.size(), freq.data());
    return freq;
  }
  // Per-thread histograms, reduced serially: 65536 * nt adds, trivial next
  // to the counting pass itself.
  const auto bounds = chunk_bounds(codes.size(), nt);
  std::vector<std::vector<std::uint64_t>> local(
      static_cast<std::size_t>(nt));
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
#endif
  for (int t = 0; t < nt; ++t) {
    auto& mine = local[static_cast<std::size_t>(t)];
    mine.assign(kAlphabet, 0);
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    simd::histogram_u16(codes.data() + lo, hi - lo, mine.data());
  }
  for (const auto& mine : local) {
    for (std::size_t s = 0; s < kAlphabet; ++s) freq[s] += mine[s];
  }
  return freq;
}

/// MSB-first bit-pack of the payload in `nt` independent chunks. Each chunk
/// is packed locally with its global bit phase (start % 8) as leading zero
/// bits, then spliced at byte granularity: OR for the boundary byte shared
/// with the previous chunk, copy for the rest. The concatenated bit
/// sequence — hence the byte stream — is identical to one serial
/// BitWriterMSB pass.
std::vector<std::uint8_t> pack_payload(std::span<const std::uint16_t> codes,
                                       std::span<const std::uint32_t> canon,
                                       std::span<const std::uint8_t> lengths,
                                       int nt, std::uint64_t* payload_bits) {
  if (nt <= 1) {
    BitWriterMSB bw;
    for (std::uint16_t c : codes) bw.bits(canon[c], lengths[c]);
    *payload_bits = bw.bit_count();
    return bw.take();
  }
  const auto bounds = chunk_bounds(codes.size(), nt);
  // Exclusive prefix of per-chunk bit counts gives every chunk's start bit.
  std::vector<std::uint64_t> start(static_cast<std::size_t>(nt) + 1, 0);
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
#endif
  for (int t = 0; t < nt; ++t) {
    std::uint64_t bits = 0;
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = lo; i < hi; ++i) bits += lengths[codes[i]];
    start[static_cast<std::size_t>(t) + 1] = bits;
  }
  for (int t = 0; t < nt; ++t) {
    start[static_cast<std::size_t>(t) + 1] +=
        start[static_cast<std::size_t>(t)];
  }
  const std::uint64_t total = start[static_cast<std::size_t>(nt)];

  std::vector<std::vector<std::uint8_t>> local(
      static_cast<std::size_t>(nt));
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
#endif
  for (int t = 0; t < nt; ++t) {
    BitWriterMSB bw;
    bw.bits(0, static_cast<int>(start[static_cast<std::size_t>(t)] % 8));
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = lo; i < hi; ++i) {
      bw.bits(canon[codes[i]], lengths[codes[i]]);
    }
    local[static_cast<std::size_t>(t)] = bw.take();
  }

  std::vector<std::uint8_t> out((total + 7) / 8, 0);
  for (int t = 0; t < nt; ++t) {
    const auto& piece = local[static_cast<std::size_t>(t)];
    if (piece.empty()) continue;
    const std::size_t byte0 =
        static_cast<std::size_t>(start[static_cast<std::size_t>(t)] / 8);
    out[byte0] |= piece[0];  // shared boundary byte with the previous chunk
    std::copy(piece.begin() + 1, piece.end(),
              out.begin() + static_cast<std::ptrdiff_t>(byte0) + 1);
  }
  *payload_bits = total;
  return out;
}

/// Byte offset of the payload within a serialized blob with `distinct`
/// table entries: u32 distinct + u64 count + (u16, u8) pairs + u64 bits.
std::uint64_t payload_offset_for(std::uint32_t distinct) {
  return 4 + 8 + 3ull * distinct + 8;
}

std::vector<std::uint8_t> huffman_encode_impl(
    std::span<const std::uint16_t> codes, int threads,
    std::uint32_t chunk_symbols, CodeChunkIndex* idx) {
  ByteWriter w;
  if (codes.empty()) {
    // Bit-identical to the general path on an empty stream (no table
    // entries, zero counts) without ever allocating the frequency table.
    w.u32(0);
    w.u64(0);
    w.u64(0);
    return w.take();
  }
  const int nt = clamp_threads(threads, codes.size());
  std::vector<std::uint64_t> freq;
  std::vector<std::uint8_t> lengths;
  std::vector<std::uint32_t> canon;
  {
    telemetry::Span span(telemetry::spans::kHuffmanTable);
    const std::uint64_t t0 =
        telemetry::enabled() ? telemetry::detail::now_ns() : 0;
    freq = frequencies(codes, nt);
    lengths = huffman_code_lengths(freq, kMaxCodeLength);
    canon = canonical_codes(lengths);
    if (telemetry::enabled()) {
      telemetry::counter_add(telemetry::Counter::HuffmanTableBuildNs,
                             telemetry::detail::now_ns() - t0);
    }
  }

  std::uint32_t distinct = 0;
  for (auto l : lengths) {
    if (l > 0) ++distinct;
  }
  w.u32(distinct);
  w.u64(codes.size());
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] > 0) {
      w.u16(static_cast<std::uint16_t>(s));
      w.u8(lengths[s]);
    }
  }
  if (idx != nullptr) {
    // One streaming pass records the chunk-aligned encode flush points:
    // cumulative payload bits, unpredictable (symbol 0) count and running
    // CRC-32 at every chunk_symbols boundary of the output element stream.
    idx->chunk_symbols = chunk_symbols;
    idx->payload_byte_offset = payload_offset_for(distinct);
    idx->entries.clear();
    Crc32 crc;
    std::uint64_t bits = 0;
    std::uint64_t unpred = 0;
    for (std::size_t at = 0; at < codes.size(); at += chunk_symbols) {
      const std::size_t n =
          std::min<std::size_t>(chunk_symbols, codes.size() - at);
      const auto chunk = codes.subspan(at, n);
      for (const std::uint16_t c : chunk) {
        bits += lengths[c];
        unpred += c == 0 ? 1 : 0;
      }
      crc.update(bytes_of(chunk));
      ChunkEntry e;
      e.end_bit = bits;
      e.end_element = at + n;
      e.end_unpred = unpred;
      e.running_crc = crc.value();
      idx->entries.push_back(e);
    }
  }
  telemetry::Span span_pack(telemetry::spans::kHuffmanPack);
  std::uint64_t payload_bits = 0;
  const auto payload = pack_payload(codes, canon, lengths, nt, &payload_bits);
  w.u64(payload_bits);
  w.bytes(payload);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint16_t> codes,
                                         int threads) {
  return huffman_encode_impl(codes, threads, 0, nullptr);
}

std::vector<std::uint8_t> huffman_encode_indexed(
    std::span<const std::uint16_t> codes, int threads,
    std::uint32_t chunk_symbols, CodeChunkIndex& idx) {
  WAVESZ_ASSERT(chunk_symbols > 0, "chunk size must be positive");
  return huffman_encode_impl(codes, threads, chunk_symbols, &idx);
}

namespace {

/// Parsed blob framing: code lengths, symbol count and the payload view.
struct ParsedBlob {
  std::vector<std::uint8_t> lengths;
  std::uint64_t count = 0;
  std::uint64_t payload_bits = 0;
  std::span<const std::uint8_t> payload;
  std::uint32_t distinct = 0;
};

/// Parse everything ahead of the payload and take the payload view. With
/// `allow_truncated_payload` (prefix decode over a partially inflated plain
/// stream) the payload may be shorter than `payload_bits`; callers must then
/// bound their reads by the index's recorded bit offsets.
ParsedBlob parse_blob(std::span<const std::uint8_t> blob,
                      bool allow_truncated_payload) {
  ByteReader r(blob);
  ParsedBlob p;
  p.distinct = r.u32();
  p.count = r.u64();
  p.lengths.assign(kAlphabet, 0);
  for (std::uint32_t i = 0; i < p.distinct; ++i) {
    const std::uint16_t sym = r.u16();
    const std::uint8_t len = r.u8();
    WAVESZ_REQUIRE(len >= 1 && len <= kMaxCodeLength,
                   "Huffman table entry with invalid length");
    WAVESZ_REQUIRE(p.lengths[sym] == 0, "duplicate Huffman table entry");
    p.lengths[sym] = len;
  }
  WAVESZ_REQUIRE(kraft_complete(p.lengths),
                 "Huffman table is not a complete prefix code");
  p.payload_bits = r.u64();
  if (allow_truncated_payload) {
    p.payload = r.bytes(std::min<std::uint64_t>((p.payload_bits + 7) / 8,
                                                r.remaining()));
  } else {
    // Checked before the byte-count division: a claimed bit count near 2^64
    // would wrap (payload_bits + 7) / 8 into a tiny read.
    WAVESZ_REQUIRE(p.payload_bits / 8 <= r.remaining(),
                   "Huffman payload exceeds the container");
    p.payload = r.bytes((p.payload_bits + 7) / 8);
  }
  // Every symbol costs at least one bit; anything else is a forged header
  // trying to force a huge allocation.
  WAVESZ_REQUIRE(p.count <= p.payload_bits || p.count == 0,
                 "symbol count exceeds payload capacity");
  return p;
}

std::uint16_t degenerate_symbol(const std::vector<std::uint8_t>& lengths) {
  std::uint16_t only = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] > 0) only = static_cast<std::uint16_t>(s);
  }
  return only;
}

std::vector<std::uint16_t> huffman_decode_impl(
    std::span<const std::uint8_t> blob, bool reference) {
  telemetry::Span span(telemetry::spans::kHuffmanDecode);
  const ParsedBlob p = parse_blob(blob, /*allow_truncated_payload=*/false);

  std::vector<std::uint16_t> out;
  out.reserve(p.count);
  if (p.count == 0) return out;
  if (p.distinct == 1) {
    // Degenerate single-symbol stream: each symbol is one bit.
    WAVESZ_REQUIRE(p.payload_bits == p.count, "payload size mismatch");
    out.assign(p.count, degenerate_symbol(p.lengths));
    return out;
  }
  const CanonicalDecoder dec(p.lengths);
  BitReaderMSB br(p.payload);
  // This entry point stays serial even though the encoder packs in parallel
  // chunks: without an index, recovering the chunk boundaries takes a
  // serial table walk that costs as much as the decode itself. Containers
  // carrying the v2 offset table go through huffman_decode_indexed(), whose
  // workers seek straight to their recorded start bits. If a forged header
  // defeats the table build (over-subscribed or absurdly deep), the oracle
  // decodes it instead.
  if (reference || !dec.has_fast_table()) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      out.push_back(static_cast<std::uint16_t>(
          dec.decode([&] { return br.bit(); })));
    }
  } else {
    out.resize(p.count);
    const auto peek = [&](int n) { return br.peek(n); };
    const auto consume = [&](int n) { br.consume(n); };
    for (std::uint64_t i = 0; i < p.count; ++i) {
      out[i] = static_cast<std::uint16_t>(dec.decode_fast(peek, consume));
    }
  }
  WAVESZ_REQUIRE(br.position() == p.payload_bits,
                 "Huffman payload has trailing data");
  return out;
}

/// Decode the first `chunk_count` index chunks of a parsed blob into `out`
/// (pre-sized by the caller), chunk-parallel when `threads > 1`. Each chunk
/// seeks to its recorded start bit, decodes to its recorded element range,
/// and is verified against both the recorded end bit and the running
/// CRC-32 resumed from the previous entry's digest.
void decode_index_chunks(const ParsedBlob& p, const CodeChunkIndex& idx,
                         std::size_t chunk_count, bool reference, int threads,
                         std::vector<std::uint16_t>& out) {
  WAVESZ_ASSERT(chunk_count <= idx.entries.size(), "chunk range overflow");
  const auto& entries = idx.entries;
  if (p.distinct == 1) {
    // Degenerate single-symbol stream: one bit per symbol. The index adds
    // the constraint that every chunk boundary lands exactly on its element
    // offset; the payload bits themselves carry no information to check.
    const std::uint16_t only = degenerate_symbol(p.lengths);
    for (std::size_t k = 0; k < chunk_count; ++k) {
      WAVESZ_REQUIRE(entries[k].end_bit == entries[k].end_element,
                     "chunk bit offset mismatch");
    }
    std::fill(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                entries[chunk_count - 1].end_element),
              only);
    verify_code_index_crcs(out, idx, entries[chunk_count - 1].end_element);
    return;
  }

  const CanonicalDecoder dec(p.lengths);
  const bool fast = !reference && dec.has_fast_table();
  const auto decode_chunk = [&](std::size_t k) {
    const std::uint64_t start_bit = k == 0 ? 0 : entries[k - 1].end_bit;
    const std::uint64_t start_elem = k == 0 ? 0 : entries[k - 1].end_element;
    const std::uint64_t n = entries[k].end_element - start_elem;
    BitReaderMSB br(p.payload, start_bit);
    std::uint16_t* dst = out.data() + start_elem;
    if (fast) {
      const auto peek = [&](int b) { return br.peek(b); };
      const auto consume = [&](int b) { br.consume(b); };
      for (std::uint64_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint16_t>(dec.decode_fast(peek, consume));
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint16_t>(
            dec.decode([&] { return br.bit(); }));
      }
    }
    WAVESZ_REQUIRE(br.position() == entries[k].end_bit,
                   "chunk bit offset mismatch");
    Crc32 crc = k == 0 ? Crc32{} : Crc32::resume(entries[k - 1].running_crc);
    crc.update(bytes_of(std::span<const std::uint16_t>(dst, n)));
    WAVESZ_REQUIRE(crc.value() == entries[k].running_crc,
                   "chunk CRC mismatch");
  };

  const int nt = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_thread_budget(threads)), chunk_count));
  if (nt <= 1) {
    for (std::size_t k = 0; k < chunk_count; ++k) decode_chunk(k);
    return;
  }
#ifdef _OPENMP
  // Exceptions must not escape the parallel region: the first failure wins,
  // later chunks bail out early, and the winner rethrows after the barrier.
  std::atomic<bool> failed{false};
  std::exception_ptr err;
#pragma omp parallel for num_threads(nt) schedule(dynamic)
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(chunk_count); ++k) {
    if (failed.load(std::memory_order_relaxed)) continue;
    try {
      decode_chunk(static_cast<std::size_t>(k));
    } catch (...) {
      if (!failed.exchange(true)) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
#else
  for (std::size_t k = 0; k < chunk_count; ++k) decode_chunk(k);
#endif
}

}  // namespace

std::vector<std::uint16_t> huffman_decode(std::span<const std::uint8_t> blob) {
  return huffman_decode_impl(blob, reference_decode_enabled());
}

std::vector<std::uint16_t> huffman_decode_reference(
    std::span<const std::uint8_t> blob) {
  return huffman_decode_impl(blob, /*reference=*/true);
}

std::vector<std::uint16_t> huffman_decode_indexed(
    std::span<const std::uint8_t> blob, const CodeChunkIndex& idx,
    int threads) {
  if (!idx.present()) return huffman_decode(blob);
  telemetry::Span span(telemetry::spans::kHuffmanDecodeIndexed);
  const ParsedBlob p = parse_blob(blob, /*allow_truncated_payload=*/false);
  // The structurally validated index must still agree with the stream it
  // claims to describe; any mismatch means one of the two was forged.
  WAVESZ_REQUIRE(idx.entries.back().end_element == p.count &&
                     idx.entries.back().end_bit == p.payload_bits,
                 "chunk index disagrees with Huffman stream");
  WAVESZ_REQUIRE(idx.payload_byte_offset == payload_offset_for(p.distinct),
                 "chunk index payload offset mismatch");
  std::vector<std::uint16_t> out(p.count);
  decode_index_chunks(p, idx, idx.entries.size(), reference_decode_enabled(),
                      threads, out);
  if (telemetry::enabled()) {
    telemetry::counter_add(telemetry::Counter::IndexChunksDecoded,
                           idx.entries.size());
  }
  return out;
}

std::vector<std::uint16_t> huffman_decode_prefix(
    std::span<const std::uint8_t> blob, const CodeChunkIndex& idx,
    std::uint64_t symbols, int threads) {
  WAVESZ_REQUIRE(idx.present(), "prefix decode requires a chunk index");
  telemetry::Span span(telemetry::spans::kHuffmanDecodeIndexed);
  const ParsedBlob p = parse_blob(blob, /*allow_truncated_payload=*/true);
  WAVESZ_REQUIRE(idx.payload_byte_offset == payload_offset_for(p.distinct),
                 "chunk index payload offset mismatch");
  WAVESZ_REQUIRE(symbols <= p.count && idx.entries.back().end_element ==
                                           p.count,
                 "prefix extends past the code stream");
  if (symbols == 0) return {};
  const std::size_t chunks = chunks_covering(idx, symbols);
  const std::uint64_t end_bit = idx.entries[chunks - 1].end_bit;
  WAVESZ_REQUIRE((end_bit + 7) / 8 <= p.payload.size(),
                 "inflated payload prefix too short for requested chunks");
  std::vector<std::uint16_t> out(idx.entries[chunks - 1].end_element);
  decode_index_chunks(p, idx, chunks, reference_decode_enabled(), threads,
                      out);
  if (telemetry::enabled()) {
    telemetry::counter_add(telemetry::Counter::IndexChunksDecoded, chunks);
  }
  out.resize(symbols);
  return out;
}

double huffman_mean_bits(std::span<const std::uint16_t> codes) {
  if (codes.empty()) return 0.0;
  const auto freq = frequencies(codes, 1);
  const auto lengths = huffman_code_lengths(freq, kMaxCodeLength);
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    bits += freq[s] * lengths[s];
  }
  return static_cast<double>(bits) / static_cast<double>(codes.size());
}

}  // namespace wavesz::sz
