#include "sz/compressor.hpp"

#include <algorithm>

#include "core/pipeline.hpp"
#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "metrics/stats.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/pqd_detail.hpp"
#include "sz/szx.hpp"
#include "sz/unpredictable.hpp"
#include "sz/wavefront_pqd.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace wavesz::sz {
namespace {

using detail::FpOps;

/// Serial-identical min/max scan, split across up to `threads` OpenMP
/// workers. Every accumulator is seeded with data[0] and folded with the
/// same std::min/std::max calls as the serial loop, so the result (including
/// the NaN-poisoning behaviour of a NaN first element) does not depend on
/// the chunking.
template <typename T>
double range_of(std::span<const T> data, int threads) {
  WAVESZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  const double seed = static_cast<double>(data[0]);
  double lo = seed;
  double hi = seed;
  // Below ~1 MiB the scan is memory-latency bound on one core anyway.
  constexpr std::size_t kMinPerThread = 1u << 18;
  const int nt = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_thread_budget(threads)),
      std::max<std::size_t>(1, data.size() / kMinPerThread)));
  if (nt > 1) {
#ifdef _OPENMP
#pragma omp parallel num_threads(nt)
#endif
    {
#ifdef _OPENMP
      const auto t = static_cast<std::size_t>(omp_get_thread_num());
      const auto parts = static_cast<std::size_t>(omp_get_num_threads());
#else
      const std::size_t t = 0, parts = 1;
#endif
      const std::size_t b0 = data.size() * t / parts;
      const std::size_t b1 = data.size() * (t + 1) / parts;
      double llo = seed, lhi = seed;
      simd::minmax(data.data() + b0, b1 - b0, &llo, &lhi);
#ifdef _OPENMP
#pragma omp critical
#endif
      {
        lo = std::min(lo, llo);
        hi = std::max(hi, lhi);
      }
    }
  } else {
    simd::minmax(data.data(), data.size(), &lo, &hi);
  }
  return hi - lo;
}

/// The SZ-1.4 compress phases, split for the staged pipeline. The bodies
/// are the former compress_t monolith, relocated verbatim per phase (same
/// spans, same counters, same operation order within a phase), so run() is
/// the historical barrier path byte-for-byte.
template <typename T>
class Sz14Staged final : public StagedCompressor {
 public:
  Sz14Staged(std::span<const T> data, const Dims& dims, const Config& cfg)
      : data_(data), dims_(dims), cfg_(cfg) {}

  std::size_t sections() const override { return 2; }

  void pqd() override {
    pqd_nt_ = resolve_thread_budget(cfg_.pqd_threads);
    double range = 0.0;
    {
      telemetry::Span span(telemetry::spans::kValueRange);
      range = range_of<T>(data_, pqd_nt_);
    }
    bound_ = resolve_bound(cfg_, range);
    const LinearQuantizer q(bound_, cfg_.quant_bits);
    WAVESZ_REQUIRE(cfg_.predictor == PredictorKind::Lorenzo1Layer ||
                       dims_.rank <= 2,
                   "2-layer Lorenzo is implemented for 1D/2D data");
    WAVESZ_REQUIRE(!cfg_.chunk_index || cfg_.index_chunk_symbols > 0,
                   "index_chunk_symbols must be positive");

    // pqd_threads > 1 switches to the tiled anti-diagonal wavefront
    // schedule; the two kernels share per-point arithmetic
    // (pqd_detail.hpp), so the codes, history and unpredictable stream are
    // bit-identical either way.
    const bool wavefront = pqd_nt_ > 1 && dims_.rank >= 2;
    {
      telemetry::Span span(wavefront ? telemetry::spans::kPqdWavefront
                                     : telemetry::spans::kPqdRaster);
      pqd_ = wavefront
                 ? detail::lorenzo_pqd_wavefront_t<T>(data_, dims_, q,
                                                      cfg_.predictor, pqd_nt_)
                 : detail::lorenzo_pqd_t<T>(data_, dims_, q, cfg_.predictor);
    }
    telemetry::counter_add(telemetry::Counter::QuantUnpredictable,
                           pqd_.unpredictable.size());
    telemetry::counter_add(telemetry::Counter::QuantPredictable,
                           pqd_.codes.size() - pqd_.unpredictable.size());
  }

  void encode_section(std::size_t s) override {
    if (s == 0) {
      // Code section: H* (customized Huffman) then G* (gzip), or raw codes
      // straight into gzip when Huffman is disabled. With cfg.chunk_index
      // the encoder also records the v2 offset table at its flush points.
      telemetry::Span span(telemetry::spans::kEncodeCodes);
      if (cfg_.huffman) {
        code_plain_ =
            cfg_.chunk_index
                ? huffman_encode_indexed(pqd_.codes, pqd_nt_,
                                         cfg_.index_chunk_symbols, idx_)
                : huffman_encode(pqd_.codes, pqd_nt_);
      } else {
        if (cfg_.chunk_index) {
          idx_ = build_raw_code_index(pqd_.codes, cfg_.index_chunk_symbols);
        }
        ByteWriter cw;
        cw.u16s(pqd_.codes);
        code_plain_ = cw.take();
      }
    } else {
      telemetry::Span span(telemetry::spans::kEncodeUnpred);
      unpred_plain_ = FpOps<T>::encode(pqd_.unpredictable, bound_);
    }
  }

  void deflate_section(std::size_t s) override {
    // Per-section gzip through the chunked engine: each section's chunking,
    // dictionary priming and stitching depend only on that section's plain
    // bytes, so the member here is bit-identical to its slot in the former
    // gzip_compress_batch call — the sections merely lose the shared task
    // pool (a wash at the default codec_threads == 1, and the pipelined
    // mode overlaps them across stages instead).
    telemetry::Span span(telemetry::spans::kDeflateSerialize);
    const auto& plain = s == 0 ? code_plain_ : unpred_plain_;
    blobs_[s] = deflate::gzip_compress_parallel(
        plain, cfg_.gzip_level,
        cfg_.chunk_index ? cfg_.indexed_deflate_options()
                         : cfg_.deflate_options());
    if (s == 0) {
      telemetry::counter_add(telemetry::Counter::CodeBytesIn, plain.size());
      telemetry::counter_add(telemetry::Counter::CodeBytesOut,
                             blobs_[0].size());
    } else {
      telemetry::counter_add(telemetry::Counter::UnpredBytesIn, plain.size());
      telemetry::counter_add(telemetry::Counter::UnpredBytesOut,
                             blobs_[1].size());
    }
  }

  Compressed assemble() override {
    Compressed out;
    out.header.variant = Variant::Sz14;
    out.header.dims = dims_;
    out.header.mode = cfg_.mode;
    out.header.base = cfg_.base;
    out.header.eb_requested = cfg_.error_bound;
    out.header.eb_absolute = bound_;
    out.header.quant_bits = cfg_.quant_bits;
    out.header.huffman = cfg_.huffman;
    out.header.gzip_level = cfg_.gzip_level;
    out.header.aux = static_cast<std::uint8_t>(cfg_.predictor);
    out.header.dtype = FpOps<T>::kDtype;
    out.header.point_count = data_.size();
    out.header.unpredictable_count = pqd_.unpredictable.size();
    out.header.version = cfg_.chunk_index ? 2 : 1;
    out.code_blob_bytes = blobs_[0].size();
    out.unpred_blob_bytes = blobs_[1].size();

    ByteWriter w;
    write_header(w, out.header);
    if (cfg_.chunk_index) write_code_index(w, idx_);
    write_section(w, blobs_[0]);
    write_section(w, blobs_[1]);
    out.bytes = w.take();
    // Ratio is dimensionless; the histogram stores milli-ratio so a 4.2x
    // call lands in bucket ~4200 with the usual 3% bucketing error.
    if (!out.bytes.empty()) {
      telemetry::observe(telemetry::Histo::CompressRatioMilli,
                         data_.size_bytes() * 1000 / out.bytes.size());
    }
    return out;
  }

 private:
  std::span<const T> data_;
  Dims dims_;
  Config cfg_;
  int pqd_nt_ = 1;
  double bound_ = 0.0;
  typename FpOps<T>::PqdType pqd_;
  CodeChunkIndex idx_;
  std::vector<std::uint8_t> code_plain_;
  std::vector<std::uint8_t> unpred_plain_;
  std::vector<std::uint8_t> blobs_[2];
};

/// Staged facade over the SZx block codec. The codec has no separable
/// phases — quantization, block classification and bit-packing are fused in
/// one pass with no entropy or DEFLATE stage — so the whole compression runs
/// as the single section's encode and the other phases are no-ops. A chunk
/// pipeline still overlaps *across* chunks (chunk k+1 encodes while chunk
/// k frames); there is simply no intra-chunk overlap to expose.
template <typename T>
class SzxStaged final : public StagedCompressor {
 public:
  SzxStaged(std::span<const T> data, const Dims& dims, const Config& cfg)
      : data_(data), dims_(dims), cfg_(cfg) {}

  std::size_t sections() const override { return 1; }
  void pqd() override {}
  void encode_section(std::size_t) override {
    out_ = detail::szx_compress_t<T>(data_, dims_, cfg_);
  }
  void deflate_section(std::size_t) override {}
  Compressed assemble() override { return std::move(out_); }

 private:
  std::span<const T> data_;
  Dims dims_;
  Config cfg_;
  Compressed out_;
};

template <typename T>
std::unique_ptr<StagedCompressor> make_staged_t(std::span<const T> data,
                                                const Dims& dims,
                                                const Config& cfg) {
  if (cfg.codec == Codec::Szx) {
    return std::make_unique<SzxStaged<T>>(data, dims, cfg);
  }
  return std::make_unique<Sz14Staged<T>>(data, dims, cfg);
}

template <typename T>
Compressed compress_t(std::span<const T> data, const Dims& dims,
                      const Config& cfg) {
  if (cfg.codec == Codec::Szx) {
    return detail::szx_compress_t<T>(data, dims, cfg);
  }
  telemetry::Span span_all(telemetry::spans::kSzCompress,
                           telemetry::Histo::CompressNs, telemetry::kSampleHw);
  Sz14Staged<T> job(data, dims, cfg);
  return run_staged(job, cfg.pipeline_depth);
}

template <typename T>
std::vector<T> decompress_t(std::span<const std::uint8_t> bytes,
                            Dims* dims_out, const DecodeOptions& opts) {
  telemetry::Span span_all(telemetry::spans::kSzDecompress,
                           telemetry::Histo::DecompressNs,
                           telemetry::kSampleHw);
  ByteReader r(bytes);
  const ContainerHeader h = read_header(r);
  if (h.variant == Variant::SzxFast) {
    return detail::szx_decompress_t<T>(bytes, dims_out);
  }
  WAVESZ_REQUIRE(h.variant == Variant::Sz14,
                 "container is not an SZ-1.4 stream");
  WAVESZ_REQUIRE(h.dtype == FpOps<T>::kDtype,
                 "container value type mismatch (float32 vs float64)");
  const CodeChunkIndex idx = read_code_index(r, h);
  const auto code_blob = read_section(r);
  const auto unpred_blob = read_section(r);

  // v1 streams and stripped-index v2 streams silently fall back to the
  // serial section-by-section decode; decode_threads only has purchase when
  // the index is present (concurrent inflates + chunk-parallel Huffman).
  const int nt = idx.present() ? resolve_thread_budget(opts.decode_threads)
                               : 1;

  std::vector<std::uint8_t> code_plain;
  std::vector<std::uint8_t> unpred_plain;
  if (nt > 1) {
    telemetry::Span span(telemetry::spans::kDecodeParallel);
    const std::span<const std::uint8_t> sections[] = {code_blob, unpred_blob};
    auto plains = deflate::gzip_decompress_batch(sections, nt);
    code_plain = std::move(plains[0]);
    unpred_plain = std::move(plains[1]);
  } else {
    {
      telemetry::Span span(telemetry::spans::kDecodeCodes);
      code_plain = deflate::gzip_decompress(code_blob);
    }
    telemetry::Span span(telemetry::spans::kDecodeUnpred);
    unpred_plain = deflate::gzip_decompress(unpred_blob);
  }

  std::vector<std::uint16_t> codes;
  {
    telemetry::Span span(telemetry::spans::kDecodeCodes);
    if (h.huffman) {
      codes = idx.present() ? huffman_decode_indexed(code_plain, idx, nt)
                            : huffman_decode(code_plain);
    } else {
      ByteReader cr(code_plain);
      codes = cr.u16s(h.point_count);
      if (idx.present()) verify_code_index_crcs(codes, idx, codes.size());
    }
  }
  WAVESZ_REQUIRE(codes.size() == h.point_count, "code count mismatch");

  std::vector<T> unpred;
  {
    telemetry::Span span(telemetry::spans::kDecodeUnpred);
    unpred = FpOps<T>::decode(unpred_plain, h.unpredictable_count,
                              h.eb_absolute);
  }

  WAVESZ_REQUIRE(h.aux <= 1, "unknown SZ-1.4 predictor kind");
  const auto kind = static_cast<PredictorKind>(h.aux);
  const LinearQuantizer q(h.eb_absolute, h.quant_bits);
  if (dims_out != nullptr) *dims_out = h.dims;
  // Reconstruction is value-identical for every budget, so the decode pool
  // may as well drive it when it is the larger of the two.
  const int pqd_nt = std::max(resolve_thread_budget(opts.pqd_threads), nt);
  if (pqd_nt > 1 && h.dims.rank >= 2) {
    telemetry::Span span(telemetry::spans::kReconstructWavefront);
    return detail::lorenzo_reconstruct_wavefront_t<T>(codes, unpred, h.dims,
                                                      q, kind, pqd_nt);
  }
  telemetry::Span span(telemetry::spans::kReconstructRaster);
  return detail::lorenzo_reconstruct_t<T>(codes, unpred, h.dims, q, kind);
}

/// Copy the hyperslab out of a row-major (partial or full) field whose
/// axis-1/axis-2 extents match the container's.
template <typename T>
std::vector<T> gather_region(const std::vector<T>& field, const Dims& fdims,
                             const Region& rg, const Dims& rdims) {
  std::vector<T> out;
  out.reserve(rdims.count());
  const std::size_t s0 = fdims.extent[1] * fdims.extent[2];
  const std::size_t s1 = fdims.extent[2];
  for (std::size_t x = rg.lo[0]; x < rg.hi[0]; ++x) {
    for (std::size_t y = rg.lo[1]; y < rg.hi[1]; ++y) {
      for (std::size_t z = rg.lo[2]; z < rg.hi[2]; ++z) {
        out.push_back(field[x * s0 + y * s1 + z]);
      }
    }
  }
  return out;
}

template <typename T>
RegionResultT<T> decompress_region_t(std::span<const std::uint8_t> bytes,
                                     const Region& region,
                                     const DecodeOptions& opts) {
  telemetry::Span span_all(telemetry::spans::kDecodeRegion);
  ByteReader r(bytes);
  const ContainerHeader h = read_header(r);
  if (h.variant == Variant::SzxFast) {
    // SZx containers carry no chunk index; a region request is served from
    // a full decode (the codec is fast enough that this is still cheap).
    Dims fd;
    const auto field = detail::szx_decompress_t<T>(bytes, &fd);
    Region rg = region;
    const Dims rdims = normalize_region(rg, fd);
    RegionResultT<T> res;
    res.field_dims = fd;
    res.region_dims = rdims;
    res.data = gather_region(field, fd, rg, rdims);
    res.compressed_bytes_read = bytes.size();
    telemetry::counter_add(telemetry::Counter::RegionBytesRead,
                           res.compressed_bytes_read);
    return res;
  }
  WAVESZ_REQUIRE(h.variant == Variant::Sz14,
                 "container is not an SZ-1.4 stream");
  WAVESZ_REQUIRE(h.dtype == FpOps<T>::kDtype,
                 "container value type mismatch (float32 vs float64)");
  const CodeChunkIndex idx = read_code_index(r, h);
  const std::size_t meta_bytes = r.position();

  Region rg = region;
  const Dims rdims = normalize_region(rg, h.dims);
  RegionResultT<T> res;
  res.field_dims = h.dims;
  res.region_dims = rdims;

  // The Lorenzo stencil reaches only backward in raster order, so the
  // dependency closure of the hyperslab is the prefix of complete outer
  // slabs [0, hi[0]) — reconstructing a (hi0, d1, d2) field from the code
  // prefix yields values identical to the same rows of a full decode.
  const std::size_t slab = h.dims.extent[1] * h.dims.extent[2];
  const std::uint64_t need_symbols = rg.hi[0] * slab;

  if (!idx.present() || need_symbols == h.point_count) {
    // Index-less stream, or the slab prefix is the whole field anyway.
    Dims fd;
    const auto field = decompress_t<T>(bytes, &fd, opts);
    res.data = gather_region(field, fd, rg, rdims);
    res.compressed_bytes_read = bytes.size();
    telemetry::counter_add(telemetry::Counter::RegionBytesRead,
                           res.compressed_bytes_read);
    return res;
  }

  const int nt = resolve_thread_budget(opts.decode_threads);
  const std::size_t chunks = chunks_covering(idx, need_symbols);
  const ChunkEntry& last = idx.entries[chunks - 1];

  // Inflate the code section only until the needed chunks' payload exists.
  const std::uint64_t code_plain_need =
      h.huffman ? idx.payload_byte_offset + (last.end_bit + 7) / 8
                : 2 * last.end_element;
  const std::uint64_t code_size = r.u64();
  const auto code_blob = r.bytes(code_size);
  std::vector<std::uint16_t> codes;
  std::size_t code_consumed = 0;
  {
    telemetry::Span span(telemetry::spans::kDecodeCodes);
    auto run = deflate::gzip_decompress_prefix(code_blob, code_plain_need);
    WAVESZ_REQUIRE(run.bytes.size() >= code_plain_need,
                   "code stream shorter than its chunk index claims");
    code_consumed = run.compressed_consumed;
    if (h.huffman) {
      codes = huffman_decode_prefix(run.bytes, idx, last.end_element, nt);
    } else {
      ByteReader cr(run.bytes);
      codes = cr.u16s(last.end_element);
      verify_code_index_crcs(codes, idx, codes.size());
    }
  }

  // Unpredictable values consumed by the slab prefix, in stream order.
  std::uint64_t n_unpred = 0;
  for (std::uint64_t i = 0; i < need_symbols; ++i) {
    n_unpred += codes[i] == 0 ? 1u : 0u;
  }
  const std::uint64_t unpred_size = r.u64();
  const auto unpred_blob = r.bytes(unpred_size);
  std::vector<T> unpred;
  std::size_t unpred_consumed = 0;
  if (n_unpred > 0) {
    telemetry::Span span(telemetry::spans::kDecodeUnpred);
    // Truncation coding spends at most 1+5+1+8+23 = 38 bits per float32
    // value (1+6+1+11+52 = 71 for float64); a plain prefix of that many
    // bits is guaranteed to contain the first n values.
    const std::uint64_t max_bits = FpOps<T>::kDtype == 1 ? 71 : 38;
    auto run = deflate::gzip_decompress_prefix(
        unpred_blob, (max_bits * n_unpred + 7) / 8);
    unpred = FpOps<T>::decode(run.bytes, n_unpred, h.eb_absolute);
    unpred_consumed = run.compressed_consumed;
  }

  WAVESZ_REQUIRE(h.aux <= 1, "unknown SZ-1.4 predictor kind");
  const auto kind = static_cast<PredictorKind>(h.aux);
  const LinearQuantizer q(h.eb_absolute, h.quant_bits);
  Dims pdims = h.dims;
  pdims.extent[0] = rg.hi[0];
  codes.resize(need_symbols);
  std::vector<T> field;
  const int recon_nt = std::max(resolve_thread_budget(opts.pqd_threads), nt);
  if (recon_nt > 1 && pdims.rank >= 2) {
    telemetry::Span span(telemetry::spans::kReconstructWavefront);
    field = detail::lorenzo_reconstruct_wavefront_t<T>(codes, unpred, pdims,
                                                       q, kind, recon_nt);
  } else {
    telemetry::Span span(telemetry::spans::kReconstructRaster);
    field = detail::lorenzo_reconstruct_t<T>(codes, unpred, pdims, q, kind);
  }
  res.data = gather_region(field, pdims, rg, rdims);
  res.compressed_bytes_read =
      meta_bytes + 8 + code_consumed + 8 + unpred_consumed;
  telemetry::counter_add(telemetry::Counter::RegionBytesRead,
                         res.compressed_bytes_read);
  return res;
}

}  // namespace

double value_range(std::span<const float> data, int threads) {
  return range_of<float>(data, threads);
}

double value_range(std::span<const double> data, int threads) {
  return range_of<double>(data, threads);
}

Pqd lorenzo_pqd(std::span<const float> data, const Dims& dims,
                const LinearQuantizer& q, PredictorKind kind) {
  return detail::lorenzo_pqd_t<float>(data, dims, q, kind);
}

Pqd64 lorenzo_pqd64(std::span<const double> data, const Dims& dims,
                    const LinearQuantizer& q, PredictorKind kind) {
  return detail::lorenzo_pqd_t<double>(data, dims, q, kind);
}

std::vector<float> lorenzo_reconstruct(std::span<const std::uint16_t> codes,
                                       std::span<const float> unpredictable,
                                       const Dims& dims,
                                       const LinearQuantizer& q,
                                       PredictorKind kind) {
  return detail::lorenzo_reconstruct_t<float>(codes, unpredictable, dims, q,
                                              kind);
}

std::vector<double> lorenzo_reconstruct64(
    std::span<const std::uint16_t> codes,
    std::span<const double> unpredictable, const Dims& dims,
    const LinearQuantizer& q, PredictorKind kind) {
  return detail::lorenzo_reconstruct_t<double>(codes, unpredictable, dims, q,
                                               kind);
}

std::unique_ptr<StagedCompressor> make_staged(std::span<const float> data,
                                              const Dims& dims,
                                              const Config& cfg) {
  return make_staged_t<float>(data, dims, cfg);
}

std::unique_ptr<StagedCompressor> make_staged(std::span<const double> data,
                                              const Dims& dims,
                                              const Config& cfg) {
  return make_staged_t<double>(data, dims, cfg);
}

Compressed run_staged(StagedCompressor& job, int pipeline_depth) {
  if (pipeline_depth <= 0) return job.run();
  // Overlapped single-shot schedule: PQD on the calling thread (everything
  // downstream depends on all of it), then the independent sections stream
  // through a two-stage executor — the DEFLATE of section s runs while
  // section s+1 is still entropy-encoding. Sections are the finest
  // independent units of one container, so depth beyond their count buys
  // nothing.
  {
    telemetry::Span span(telemetry::spans::kPipelineSlabPqd);
    job.pqd();
  }
  const std::size_t depth = std::min<std::size_t>(
      static_cast<std::size_t>(pipeline_depth), job.sections());
  pipeline::Executor ex(
      {{telemetry::spans::kPipelineSlabEntropy,
        [&job](std::size_t s) { job.encode_section(s); }},
       {telemetry::spans::kPipelineSlabFrame,
        [&job](std::size_t s) { job.deflate_section(s); }}},
      depth);
  for (std::size_t s = 0; s < job.sections(); ++s) {
    ex.acquire();
    ex.submit();
  }
  ex.drain();
  return job.assemble();
}

Compressed compress(std::span<const float> data, const Dims& dims,
                    const Config& cfg) {
  return compress_t<float>(data, dims, cfg);
}

Compressed compress(std::span<const double> data, const Dims& dims,
                    const Config& cfg) {
  return compress_t<double>(data, dims, cfg);
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out, int pqd_threads) {
  return decompress_t<float>(bytes, dims_out,
                             DecodeOptions{1, pqd_threads});
}

std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 Dims* dims_out, int pqd_threads) {
  return decompress_t<double>(bytes, dims_out,
                              DecodeOptions{1, pqd_threads});
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              const DecodeOptions& opts, Dims* dims_out) {
  return decompress_t<float>(bytes, dims_out, opts);
}

std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 const DecodeOptions& opts, Dims* dims_out) {
  return decompress_t<double>(bytes, dims_out, opts);
}

RegionResult decompress_region(std::span<const std::uint8_t> bytes,
                               const Region& region,
                               const DecodeOptions& opts) {
  return decompress_region_t<float>(bytes, region, opts);
}

RegionResult64 decompress_region64(std::span<const std::uint8_t> bytes,
                                   const Region& region,
                                   const DecodeOptions& opts) {
  return decompress_region_t<double>(bytes, region, opts);
}

}  // namespace wavesz::sz
