#include "sz/compressor.hpp"

#include <algorithm>

#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "metrics/stats.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/pqd_detail.hpp"
#include "sz/unpredictable.hpp"
#include "sz/wavefront_pqd.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wavesz::sz {
namespace {

using detail::FpOps;

/// Serial-identical min/max scan, split across up to `threads` OpenMP
/// workers. Every accumulator is seeded with data[0] and folded with the
/// same std::min/std::max calls as the serial loop, so the result (including
/// the NaN-poisoning behaviour of a NaN first element) does not depend on
/// the chunking.
template <typename T>
double range_of(std::span<const T> data, int threads) {
  WAVESZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  const double seed = static_cast<double>(data[0]);
  double lo = seed;
  double hi = seed;
  // Below ~1 MiB the scan is memory-latency bound on one core anyway.
  constexpr std::size_t kMinPerThread = 1u << 18;
  const int nt = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_thread_budget(threads)),
      std::max<std::size_t>(1, data.size() / kMinPerThread)));
  if (nt > 1) {
#ifdef _OPENMP
#pragma omp parallel num_threads(nt)
#endif
    {
      double llo = seed, lhi = seed;
#ifdef _OPENMP
#pragma omp for schedule(static) nowait
#endif
      for (std::size_t i = 0; i < data.size(); ++i) {
        const double v = static_cast<double>(data[i]);
        llo = std::min(llo, v);
        lhi = std::max(lhi, v);
      }
#ifdef _OPENMP
#pragma omp critical
#endif
      {
        lo = std::min(lo, llo);
        hi = std::max(hi, lhi);
      }
    }
  } else {
    for (T v : data) {
      const double d = static_cast<double>(v);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  return hi - lo;
}

template <typename T>
Compressed compress_t(std::span<const T> data, const Dims& dims,
                      const Config& cfg) {
  telemetry::Span span_all(telemetry::spans::kSzCompress);
  const int pqd_nt = resolve_thread_budget(cfg.pqd_threads);
  double range = 0.0;
  {
    telemetry::Span span(telemetry::spans::kValueRange);
    range = range_of<T>(data, pqd_nt);
  }
  const double bound = resolve_bound(cfg, range);
  const LinearQuantizer q(bound, cfg.quant_bits);
  WAVESZ_REQUIRE(cfg.predictor == PredictorKind::Lorenzo1Layer ||
                     dims.rank <= 2,
                 "2-layer Lorenzo is implemented for 1D/2D data");

  // pqd_threads > 1 switches to the tiled anti-diagonal wavefront schedule;
  // the two kernels share per-point arithmetic (pqd_detail.hpp), so the
  // codes, history and unpredictable stream are bit-identical either way.
  const bool wavefront = pqd_nt > 1 && dims.rank >= 2;
  typename FpOps<T>::PqdType pqd;
  {
    telemetry::Span span(wavefront ? telemetry::spans::kPqdWavefront : telemetry::spans::kPqdRaster);
    pqd = wavefront ? detail::lorenzo_pqd_wavefront_t<T>(data, dims, q,
                                                         cfg.predictor,
                                                         pqd_nt)
                    : detail::lorenzo_pqd_t<T>(data, dims, q, cfg.predictor);
  }
  telemetry::counter_add(telemetry::Counter::QuantUnpredictable,
                         pqd.unpredictable.size());
  telemetry::counter_add(telemetry::Counter::QuantPredictable,
                         pqd.codes.size() - pqd.unpredictable.size());

  // Code section: H* (customized Huffman) then G* (gzip), or raw codes
  // straight into gzip when Huffman is disabled.
  std::vector<std::uint8_t> code_plain;
  {
    telemetry::Span span(telemetry::spans::kEncodeCodes);
    if (cfg.huffman) {
      code_plain = huffman_encode(pqd.codes, pqd_nt);
    } else {
      ByteWriter cw;
      cw.u16s(pqd.codes);
      code_plain = cw.take();
    }
  }
  std::vector<std::uint8_t> unpred_plain;
  {
    telemetry::Span span(telemetry::spans::kEncodeUnpred);
    unpred_plain = FpOps<T>::encode(pqd.unpredictable, bound);
  }

  // Both sections go through one chunked-DEFLATE task pool, so the code and
  // unpredictable encodes run concurrently under cfg.codec_threads (the
  // serial budget of 1 reproduces the historical streams bit-for-bit).
  telemetry::Span span_tail(telemetry::spans::kDeflateSerialize);
  const std::span<const std::uint8_t> sections[] = {code_plain, unpred_plain};
  auto blobs = deflate::gzip_compress_batch(sections, cfg.gzip_level,
                                            cfg.deflate_options());
  telemetry::counter_add(telemetry::Counter::CodeBytesIn, code_plain.size());
  telemetry::counter_add(telemetry::Counter::CodeBytesOut, blobs[0].size());
  telemetry::counter_add(telemetry::Counter::UnpredBytesIn,
                         unpred_plain.size());
  telemetry::counter_add(telemetry::Counter::UnpredBytesOut,
                         blobs[1].size());

  Compressed out;
  out.header.variant = Variant::Sz14;
  out.header.dims = dims;
  out.header.mode = cfg.mode;
  out.header.base = cfg.base;
  out.header.eb_requested = cfg.error_bound;
  out.header.eb_absolute = bound;
  out.header.quant_bits = cfg.quant_bits;
  out.header.huffman = cfg.huffman;
  out.header.gzip_level = cfg.gzip_level;
  out.header.aux = static_cast<std::uint8_t>(cfg.predictor);
  out.header.dtype = FpOps<T>::kDtype;
  out.header.point_count = data.size();
  out.header.unpredictable_count = pqd.unpredictable.size();
  out.code_blob_bytes = blobs[0].size();
  out.unpred_blob_bytes = blobs[1].size();

  // Serialize the sections straight from the batch output — no named copies
  // of the (potentially large) blobs survive past this point.
  ByteWriter w;
  write_header(w, out.header);
  write_section(w, blobs[0]);
  write_section(w, blobs[1]);
  out.bytes = w.take();
  return out;
}

template <typename T>
std::vector<T> decompress_t(std::span<const std::uint8_t> bytes,
                            Dims* dims_out, int pqd_threads) {
  telemetry::Span span_all(telemetry::spans::kSzDecompress);
  ByteReader r(bytes);
  const ContainerHeader h = read_header(r);
  WAVESZ_REQUIRE(h.variant == Variant::Sz14,
                 "container is not an SZ-1.4 stream");
  WAVESZ_REQUIRE(h.dtype == FpOps<T>::kDtype,
                 "container value type mismatch (float32 vs float64)");
  const auto code_blob = read_section(r);
  const auto unpred_blob = read_section(r);

  std::vector<std::uint16_t> codes;
  {
    telemetry::Span span(telemetry::spans::kDecodeCodes);
    const auto code_plain = deflate::gzip_decompress(code_blob);
    if (h.huffman) {
      codes = huffman_decode(code_plain);
    } else {
      ByteReader cr(code_plain);
      codes = cr.u16s(h.point_count);
    }
  }
  WAVESZ_REQUIRE(codes.size() == h.point_count, "code count mismatch");

  std::vector<T> unpred;
  {
    telemetry::Span span(telemetry::spans::kDecodeUnpred);
    const auto unpred_plain = deflate::gzip_decompress(unpred_blob);
    unpred = FpOps<T>::decode(unpred_plain, h.unpredictable_count,
                              h.eb_absolute);
  }

  WAVESZ_REQUIRE(h.aux <= 1, "unknown SZ-1.4 predictor kind");
  const auto kind = static_cast<PredictorKind>(h.aux);
  const LinearQuantizer q(h.eb_absolute, h.quant_bits);
  if (dims_out != nullptr) *dims_out = h.dims;
  const int pqd_nt = resolve_thread_budget(pqd_threads);
  if (pqd_nt > 1 && h.dims.rank >= 2) {
    telemetry::Span span(telemetry::spans::kReconstructWavefront);
    return detail::lorenzo_reconstruct_wavefront_t<T>(codes, unpred, h.dims,
                                                      q, kind, pqd_nt);
  }
  telemetry::Span span(telemetry::spans::kReconstructRaster);
  return detail::lorenzo_reconstruct_t<T>(codes, unpred, h.dims, q, kind);
}

}  // namespace

double value_range(std::span<const float> data, int threads) {
  return range_of<float>(data, threads);
}

double value_range(std::span<const double> data, int threads) {
  return range_of<double>(data, threads);
}

Pqd lorenzo_pqd(std::span<const float> data, const Dims& dims,
                const LinearQuantizer& q, PredictorKind kind) {
  return detail::lorenzo_pqd_t<float>(data, dims, q, kind);
}

Pqd64 lorenzo_pqd64(std::span<const double> data, const Dims& dims,
                    const LinearQuantizer& q, PredictorKind kind) {
  return detail::lorenzo_pqd_t<double>(data, dims, q, kind);
}

std::vector<float> lorenzo_reconstruct(std::span<const std::uint16_t> codes,
                                       std::span<const float> unpredictable,
                                       const Dims& dims,
                                       const LinearQuantizer& q,
                                       PredictorKind kind) {
  return detail::lorenzo_reconstruct_t<float>(codes, unpredictable, dims, q,
                                              kind);
}

std::vector<double> lorenzo_reconstruct64(
    std::span<const std::uint16_t> codes,
    std::span<const double> unpredictable, const Dims& dims,
    const LinearQuantizer& q, PredictorKind kind) {
  return detail::lorenzo_reconstruct_t<double>(codes, unpredictable, dims, q,
                                               kind);
}

Compressed compress(std::span<const float> data, const Dims& dims,
                    const Config& cfg) {
  return compress_t<float>(data, dims, cfg);
}

Compressed compress(std::span<const double> data, const Dims& dims,
                    const Config& cfg) {
  return compress_t<double>(data, dims, cfg);
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out, int pqd_threads) {
  return decompress_t<float>(bytes, dims_out, pqd_threads);
}

std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 Dims* dims_out, int pqd_threads) {
  return decompress_t<double>(bytes, dims_out, pqd_threads);
}

}  // namespace wavesz::sz
