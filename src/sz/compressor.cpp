#include "sz/compressor.hpp"

#include <algorithm>
#include <type_traits>

#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "metrics/stats.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/predictor.hpp"
#include "sz/unpredictable.hpp"
#include "util/error.hpp"

namespace wavesz::sz {
namespace {

/// Zero-padded accessor over the reconstructed field: any index off the grid
/// reads as 0.0, which collapses the Lorenzo stencil to its reduced-dimension
/// form on borders.
template <typename T>
struct Padded {
  const T* rec;
  std::size_t d0, d1, d2;

  double at(std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) const {
    if (i0 < 0 || i1 < 0 || i2 < 0) return 0.0;
    return rec[(static_cast<std::size_t>(i0) * d1 +
                static_cast<std::size_t>(i1)) *
                   d2 +
               static_cast<std::size_t>(i2)];
  }
};

template <typename T>
double predict(const Padded<T>& p, int rank, PredictorKind kind,
               std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) {
  if (kind == PredictorKind::Lorenzo2Layer) {
    // Supported for 1D/2D (the 3D 2-layer stencil has 26 taps and is not
    // part of this reproduction); enforced at compress() time.
    if (rank == 1) {
      return lorenzo1d_2layer(p.at(i0 - 1, 0, 0), p.at(i0 - 2, 0, 0));
    }
    return lorenzo2d_2layer(p.at(i0, i1 - 1, 0), p.at(i0, i1 - 2, 0),
                            p.at(i0 - 1, i1, 0), p.at(i0 - 1, i1 - 1, 0),
                            p.at(i0 - 1, i1 - 2, 0), p.at(i0 - 2, i1, 0),
                            p.at(i0 - 2, i1 - 1, 0), p.at(i0 - 2, i1 - 2, 0));
  }
  switch (rank) {
    case 1:
      return lorenzo1d(p.at(i0 - 1, 0, 0));
    case 2:
      return lorenzo2d(p.at(i0 - 1, i1 - 1, 0), p.at(i0 - 1, i1, 0),
                       p.at(i0, i1 - 1, 0));
    default:
      return lorenzo3d(p.at(i0 - 1, i1 - 1, i2 - 1), p.at(i0 - 1, i1 - 1, i2),
                       p.at(i0 - 1, i1, i2 - 1), p.at(i0, i1 - 1, i2 - 1),
                       p.at(i0 - 1, i1, i2), p.at(i0, i1 - 1, i2),
                       p.at(i0, i1, i2 - 1));
  }
}

struct Shape {
  std::size_t n0, n1, n2;
};

/// Branch-free Lorenzo prediction for interior points (every coordinate
/// > 0): direct strided loads, term order identical to lorenzo{1,2,3}d so
/// the result is bit-equal to the generic Padded path.
template <typename T>
double predict_interior(const T* rec, int rank, std::size_t s0,
                        std::size_t s1, std::size_t i) {
  switch (rank) {
    case 1:
      return static_cast<double>(rec[i - 1]);
    case 2:
      // Row stride of a rank-2 grid is s0 (= n1, since n2 == 1).
      return static_cast<double>(rec[i - s0]) +
             static_cast<double>(rec[i - 1]) -
             static_cast<double>(rec[i - s0 - 1]);
    default:
      return static_cast<double>(rec[i - s0]) +
             static_cast<double>(rec[i - s1]) +
             static_cast<double>(rec[i - 1]) -
             static_cast<double>(rec[i - s0 - s1]) -
             static_cast<double>(rec[i - s0 - 1]) -
             static_cast<double>(rec[i - s1 - 1]) +
             static_cast<double>(rec[i - s0 - s1 - 1]);
  }
}

Shape shape_of(const Dims& dims) {
  return {dims[0], dims.rank >= 2 ? dims[1] : 1,
          dims.rank >= 3 ? dims[2] : 1};
}

/// Width-generic glue: the quantizer/truncation entry points differ between
/// float32 and float64 but the PQD structure does not.
template <typename T>
struct FpOps;

template <>
struct FpOps<float> {
  using PqdType = Pqd;
  static constexpr std::uint8_t kDtype = 0;
  static auto quantize(const LinearQuantizer& q, double pred, float orig) {
    return q.quantize(pred, orig);
  }
  static float reconstruct(const LinearQuantizer& q, double pred,
                           std::uint16_t code) {
    return q.reconstruct(pred, code);
  }
  static float roundtrip(float v, double bound) {
    return truncation_roundtrip(v, bound);
  }
  static std::vector<std::uint8_t> encode(std::span<const float> v,
                                          double bound) {
    return truncation_encode(v, bound);
  }
  static std::vector<float> decode(std::span<const std::uint8_t> blob,
                                   std::size_t count, double bound) {
    return truncation_decode(blob, count, bound);
  }
};

template <>
struct FpOps<double> {
  using PqdType = Pqd64;
  static constexpr std::uint8_t kDtype = 1;
  static auto quantize(const LinearQuantizer& q, double pred, double orig) {
    return q.quantize64(pred, orig);
  }
  static double reconstruct(const LinearQuantizer& q, double pred,
                            std::uint16_t code) {
    return q.reconstruct64(pred, code);
  }
  static double roundtrip(double v, double bound) {
    return truncation_roundtrip64(v, bound);
  }
  static std::vector<std::uint8_t> encode(std::span<const double> v,
                                          double bound) {
    return truncation_encode64(v, bound);
  }
  static std::vector<double> decode(std::span<const std::uint8_t> blob,
                                    std::size_t count, double bound) {
    return truncation_decode64(blob, count, bound);
  }
};

template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_t(
    std::span<const T> data, const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  typename FpOps<T>::PqdType out;
  out.codes.resize(data.size());
  out.reconstructed.resize(data.size());
  const Padded<T> padded{out.reconstructed.data(), n0, n1, n2};
  const std::size_t s1 = n2, s0 = n1 * n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  std::size_t i = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      for (std::size_t i2 = 0; i2 < n2; ++i2, ++i) {
        const bool interior =
            one_layer && i0 > 0 && (dims.rank < 2 || i1 > 0) &&
            (dims.rank < 3 || i2 > 0);
        const double pred =
            interior
                ? predict_interior(out.reconstructed.data(), dims.rank, s0,
                                   s1, i)
                : predict(padded, dims.rank, kind,
                          static_cast<std::ptrdiff_t>(i0),
                          static_cast<std::ptrdiff_t>(i1),
                          static_cast<std::ptrdiff_t>(i2));
        const auto r = FpOps<T>::quantize(q, pred, data[i]);
        out.codes[i] = r.code;
        if (r.code != 0) {
          out.reconstructed[i] = r.reconstructed;
        } else {
          // History must hold what the decompressor will see: the
          // truncation-decoded value, not the original.
          out.reconstructed[i] = FpOps<T>::roundtrip(data[i], q.precision());
          out.unpredictable.push_back(data[i]);
        }
      }
    }
  }
  return out;
}

template <typename T>
std::vector<T> lorenzo_reconstruct_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  WAVESZ_REQUIRE(codes.size() == dims.count(),
                 "code count disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  std::vector<T> rec(codes.size());
  const Padded<T> padded{rec.data(), n0, n1, n2};
  const std::size_t s1 = n2, s0 = n1 * n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  std::size_t next_unpred = 0;
  std::size_t i = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      for (std::size_t i2 = 0; i2 < n2; ++i2, ++i) {
        if (codes[i] == 0) {
          WAVESZ_REQUIRE(next_unpred < unpredictable.size(),
                         "unpredictable stream exhausted");
          rec[i] = unpredictable[next_unpred++];
        } else {
          const bool interior =
              one_layer && i0 > 0 && (dims.rank < 2 || i1 > 0) &&
              (dims.rank < 3 || i2 > 0);
          const double pred =
              interior
                  ? predict_interior(rec.data(), dims.rank, s0, s1, i)
                  : predict(padded, dims.rank, kind,
                            static_cast<std::ptrdiff_t>(i0),
                            static_cast<std::ptrdiff_t>(i1),
                            static_cast<std::ptrdiff_t>(i2));
          rec[i] = FpOps<T>::reconstruct(q, pred, codes[i]);
        }
      }
    }
  }
  WAVESZ_REQUIRE(next_unpred == unpredictable.size(),
                 "unpredictable stream has trailing values");
  return rec;
}

template <typename T>
double range_of(std::span<const T> data) {
  WAVESZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  double lo = static_cast<double>(data[0]);
  double hi = lo;
  for (T v : data) {
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  return hi - lo;
}

template <typename T>
Compressed compress_t(std::span<const T> data, const Dims& dims,
                      const Config& cfg) {
  const double bound = resolve_bound(cfg, range_of(data));
  const LinearQuantizer q(bound, cfg.quant_bits);
  WAVESZ_REQUIRE(cfg.predictor == PredictorKind::Lorenzo1Layer ||
                     dims.rank <= 2,
                 "2-layer Lorenzo is implemented for 1D/2D data");

  auto pqd = lorenzo_pqd_t<T>(data, dims, q, cfg.predictor);

  // Code section: H* (customized Huffman) then G* (gzip), or raw codes
  // straight into gzip when Huffman is disabled.
  std::vector<std::uint8_t> code_plain;
  if (cfg.huffman) {
    code_plain = huffman_encode(pqd.codes);
  } else {
    ByteWriter cw;
    cw.u16s(pqd.codes);
    code_plain = cw.take();
  }
  const auto unpred_plain = FpOps<T>::encode(pqd.unpredictable, bound);

  // Both sections go through one chunked-DEFLATE task pool, so the code and
  // unpredictable encodes run concurrently under cfg.codec_threads (the
  // serial budget of 1 reproduces the historical streams bit-for-bit).
  const std::span<const std::uint8_t> sections[] = {code_plain, unpred_plain};
  auto blobs = deflate::gzip_compress_batch(sections, cfg.gzip_level,
                                            cfg.deflate_options());
  const auto code_blob = std::move(blobs[0]);
  const auto unpred_blob = std::move(blobs[1]);

  Compressed out;
  out.header.variant = Variant::Sz14;
  out.header.dims = dims;
  out.header.mode = cfg.mode;
  out.header.base = cfg.base;
  out.header.eb_requested = cfg.error_bound;
  out.header.eb_absolute = bound;
  out.header.quant_bits = cfg.quant_bits;
  out.header.huffman = cfg.huffman;
  out.header.gzip_level = cfg.gzip_level;
  out.header.aux = static_cast<std::uint8_t>(cfg.predictor);
  out.header.dtype = FpOps<T>::kDtype;
  out.header.point_count = data.size();
  out.header.unpredictable_count = pqd.unpredictable.size();
  out.code_blob_bytes = code_blob.size();
  out.unpred_blob_bytes = unpred_blob.size();

  ByteWriter w;
  write_header(w, out.header);
  write_section(w, code_blob);
  write_section(w, unpred_blob);
  out.bytes = w.take();
  return out;
}

template <typename T>
std::vector<T> decompress_t(std::span<const std::uint8_t> bytes,
                            Dims* dims_out) {
  ByteReader r(bytes);
  const ContainerHeader h = read_header(r);
  WAVESZ_REQUIRE(h.variant == Variant::Sz14,
                 "container is not an SZ-1.4 stream");
  WAVESZ_REQUIRE(h.dtype == FpOps<T>::kDtype,
                 "container value type mismatch (float32 vs float64)");
  const auto code_blob = read_section(r);
  const auto unpred_blob = read_section(r);

  const auto code_plain = deflate::gzip_decompress(code_blob);
  std::vector<std::uint16_t> codes;
  if (h.huffman) {
    codes = huffman_decode(code_plain);
  } else {
    ByteReader cr(code_plain);
    codes = cr.u16s(h.point_count);
  }
  WAVESZ_REQUIRE(codes.size() == h.point_count, "code count mismatch");

  const auto unpred_plain = deflate::gzip_decompress(unpred_blob);
  const auto unpred = FpOps<T>::decode(
      unpred_plain, h.unpredictable_count, h.eb_absolute);

  WAVESZ_REQUIRE(h.aux <= 1, "unknown SZ-1.4 predictor kind");
  const LinearQuantizer q(h.eb_absolute, h.quant_bits);
  if (dims_out != nullptr) *dims_out = h.dims;
  return lorenzo_reconstruct_t<T>(codes, unpred, h.dims, q,
                                  static_cast<PredictorKind>(h.aux));
}

}  // namespace

Pqd lorenzo_pqd(std::span<const float> data, const Dims& dims,
                const LinearQuantizer& q) {
  return lorenzo_pqd_t<float>(data, dims, q);
}

Pqd64 lorenzo_pqd64(std::span<const double> data, const Dims& dims,
                    const LinearQuantizer& q) {
  return lorenzo_pqd_t<double>(data, dims, q);
}

std::vector<float> lorenzo_reconstruct(std::span<const std::uint16_t> codes,
                                       std::span<const float> unpredictable,
                                       const Dims& dims,
                                       const LinearQuantizer& q) {
  return lorenzo_reconstruct_t<float>(codes, unpredictable, dims, q);
}

std::vector<double> lorenzo_reconstruct64(
    std::span<const std::uint16_t> codes,
    std::span<const double> unpredictable, const Dims& dims,
    const LinearQuantizer& q) {
  return lorenzo_reconstruct_t<double>(codes, unpredictable, dims, q);
}

Compressed compress(std::span<const float> data, const Dims& dims,
                    const Config& cfg) {
  return compress_t<float>(data, dims, cfg);
}

Compressed compress(std::span<const double> data, const Dims& dims,
                    const Config& cfg) {
  return compress_t<double>(data, dims, cfg);
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes,
                              Dims* dims_out) {
  return decompress_t<float>(bytes, dims_out);
}

std::vector<double> decompress64(std::span<const std::uint8_t> bytes,
                                 Dims* dims_out) {
  return decompress_t<double>(bytes, dims_out);
}

}  // namespace wavesz::sz
