// Blocked multi-core SZ-1.4 (the paper's "SZ-1.4 (omp)" baseline, Fig. 8).
//
// The field is split into independent slabs along the slowest-varying axis;
// each slab is compressed as a standalone SZ-1.4 stream (its own borders,
// its own Huffman table), so threads never share prediction state. This is
// the same strategy as SZ's OpenMP implementation, whose scaling is
// sublinear because slab compression is memory-bound and the final
// concatenation is serial.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"

namespace wavesz::sz {

struct OmpCompressed {
  std::vector<std::uint8_t> bytes;
  std::size_t block_count = 0;
};

/// Compress with `threads` OpenMP threads (0 = library default). Falls back
/// to sequential slab processing when built without OpenMP.
OmpCompressed compress_omp(std::span<const float> data, const Dims& dims,
                           const Config& cfg, int threads = 0);

std::vector<float> decompress_omp(std::span<const std::uint8_t> bytes,
                                  Dims* dims_out = nullptr);

}  // namespace wavesz::sz
