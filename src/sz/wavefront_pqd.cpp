#include "sz/wavefront_pqd.hpp"

#include <algorithm>
#include <atomic>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace wavesz::sz {
namespace {

using detail::FpOps;
using detail::Padded;
using detail::shape_of;

// Tile extents. The inner (fastest-varying) axis gets the widest tile so a
// tile row stays a contiguous, vectorizable run; the outer axes stay square
// enough that a 512x512 grid still yields 8 tiles per diagonal for the
// threads to share. Dependencies are correct for any extent >= 1 (every
// stencil tap lands on a coordinate-wise <= tile, i.e. an earlier tile
// diagonal), so these are pure performance knobs.
constexpr std::size_t kTile2d0 = 64, kTile2d1 = 64;
constexpr std::size_t kTile3d0 = 16, kTile3d1 = 16, kTile3d2 = 64;

struct Tile {
  std::uint32_t t0, t1, t2;
};

/// Tiles bucketed by anti-diagonal d = t0 + t1 + t2, the wavefront schedule
/// at tile granularity: all tiles of diagonal d may run concurrently once
/// diagonals < d are complete.
struct TileSchedule {
  std::size_t e0, e1, e2;  // tile extents
  std::vector<std::vector<Tile>> diagonals;
};

TileSchedule make_schedule(const detail::Shape& s, int rank) {
  TileSchedule g;
  if (rank >= 3) {
    g.e0 = kTile3d0;
    g.e1 = kTile3d1;
    g.e2 = kTile3d2;
  } else {
    g.e0 = kTile2d0;
    g.e1 = kTile2d1;
    g.e2 = 1;
  }
  const std::size_t b0 = (s.n0 + g.e0 - 1) / g.e0;
  const std::size_t b1 = (s.n1 + g.e1 - 1) / g.e1;
  const std::size_t b2 = (s.n2 + g.e2 - 1) / g.e2;
  g.diagonals.resize(b0 + b1 + b2 - 2);
  for (std::size_t t0 = 0; t0 < b0; ++t0) {
    for (std::size_t t1 = 0; t1 < b1; ++t1) {
      for (std::size_t t2 = 0; t2 < b2; ++t2) {
        g.diagonals[t0 + t1 + t2].push_back(
            Tile{static_cast<std::uint32_t>(t0),
                 static_cast<std::uint32_t>(t1),
                 static_cast<std::uint32_t>(t2)});
      }
    }
  }
  return g;
}

/// Runs `body(i0, i1, i2, i)` over every point of `tile` in raster order.
template <typename Body>
void for_tile_points(const Tile& tile, const TileSchedule& g,
                     const detail::Shape& s, Body&& body) {
  const std::size_t lo0 = tile.t0 * g.e0;
  const std::size_t hi0 = std::min(s.n0, lo0 + g.e0);
  const std::size_t lo1 = tile.t1 * g.e1;
  const std::size_t hi1 = std::min(s.n1, lo1 + g.e1);
  const std::size_t lo2 = tile.t2 * g.e2;
  const std::size_t hi2 = std::min(s.n2, lo2 + g.e2);
  for (std::size_t i0 = lo0; i0 < hi0; ++i0) {
    for (std::size_t i1 = lo1; i1 < hi1; ++i1) {
      std::size_t i = (i0 * s.n1 + i1) * s.n2 + lo2;
      for (std::size_t i2 = lo2; i2 < hi2; ++i2, ++i) {
        body(i0, i1, i2, i);
      }
    }
  }
}

// Default floor: matches range_of's per-thread minimum — at 2^18 points per
// worker a 512x512 field (2^18 points) stays serial, a 1024x1024 field gets
// up to 4 workers, which is where BENCH_pqd.json shows the wavefront barrier
// amortized.
std::atomic<std::size_t> g_min_points_per_thread{std::size_t{1} << 18};

/// Cap a resolved thread budget so every worker gets at least the configured
/// minimum number of points; a cap of 1 falls through to the serial kernel.
int apply_work_floor(int nt, std::size_t count) {
  const std::size_t floor = wavefront_min_points_per_thread();
  if (floor == 0 || nt <= 1) return nt;
  const std::size_t cap = std::max<std::size_t>(1, count / floor);
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(nt), cap));
}

}  // namespace

std::size_t wavefront_min_points_per_thread() {
  return g_min_points_per_thread.load(std::memory_order_relaxed);
}

void set_wavefront_min_points_per_thread(std::size_t points) {
  g_min_points_per_thread.store(points, std::memory_order_relaxed);
}

int resolve_thread_budget(int budget) {
#ifdef _OPENMP
  if (budget <= 0) return omp_get_max_threads();
  return budget;
#else
  (void)budget;
  return 1;
#endif
}

namespace detail {

template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_wavefront_t(std::span<const T> data,
                                                   const Dims& dims,
                                                   const LinearQuantizer& q,
                                                   PredictorKind kind,
                                                   int threads) {
  const int nt = apply_work_floor(resolve_thread_budget(threads), dims.count());
  if (nt <= 1 || dims.rank < 2) {
    return lorenzo_pqd_t<T>(data, dims, q, kind);
  }
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const auto shape = shape_of(dims);
  typename FpOps<T>::PqdType out;
  out.codes.resize(data.size());
  out.reconstructed.resize(data.size());
  T* rec = out.reconstructed.data();
  std::uint16_t* codes = out.codes.data();
  const Padded<T> padded{rec, shape.n0, shape.n1, shape.n2};
  const std::size_t s1 = shape.n2, s0 = shape.n1 * shape.n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  const TileSchedule g = make_schedule(shape, dims.rank);
  telemetry::counter_add(telemetry::Counter::PqdDiagonalBatches,
                         g.diagonals.size());
  const T* src = data.data();
  const bool use_simd = simd_pqd_eligible(dims, kind);
  const simd::QuantSpec spec = quant_spec(q);

#ifdef _OPENMP
#pragma omp parallel num_threads(nt)
#endif
  {
    for (const auto& diag : g.diagonals) {
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
      for (std::size_t t = 0; t < diag.size(); ++t) {
        if (use_simd) {
          const Tile& tile = diag[t];
          const std::size_t lo0 = tile.t0 * g.e0;
          const std::size_t lo1 = tile.t1 * g.e1;
          pqd_tile_simd(src, rec, codes, padded, q, dims, kind, spec, s0,
                        lo0, std::min(shape.n0, lo0 + g.e0), lo1,
                        std::min(shape.n1, lo1 + g.e1));
        } else {
          for_tile_points(diag[t], g, shape,
                          [&](std::size_t i0, std::size_t i1, std::size_t i2,
                              std::size_t i) {
                            pqd_step(src, rec, codes, padded, q, dims, kind,
                                     one_layer, s0, s1, i0, i1, i2, i);
                          });
        }
      }
      // The omp-for barrier is the hyperplane boundary: diagonal d+1 only
      // starts once every tile of diagonal d is written.
    }
  }

  // Splice the unpredictable originals back into the exact raster-order
  // stream the container format requires; the code array already marks them.
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (codes[i] == 0) out.unpredictable.push_back(data[i]);
  }
  return out;
}

template <typename T>
std::vector<T> lorenzo_reconstruct_wavefront_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q, PredictorKind kind,
    int threads) {
  const int nt = apply_work_floor(resolve_thread_budget(threads), dims.count());
  if (nt <= 1 || dims.rank < 2) {
    return lorenzo_reconstruct_t<T>(codes, unpredictable, dims, q, kind);
  }
  WAVESZ_REQUIRE(codes.size() == dims.count(),
                 "code count disagrees with dims");
  const auto shape = shape_of(dims);
  std::vector<T> rec(codes.size());
  const Padded<T> padded{rec.data(), shape.n0, shape.n1, shape.n2};
  const std::size_t s1 = shape.n2, s0 = shape.n1 * shape.n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;

  // Unpredictable values are consumed in raster order in the serial kernel;
  // here their slots are known up front (code 0), so place them all before
  // the wavefront sweep — they depend on nothing, and neighbours read them
  // from rec[] like any other history.
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] == 0) {
      WAVESZ_REQUIRE(zeros < unpredictable.size(),
                     "unpredictable stream exhausted");
      rec[i] = unpredictable[zeros++];
    }
  }
  WAVESZ_REQUIRE(zeros == unpredictable.size(),
                 "unpredictable stream has trailing values");

  const TileSchedule g = make_schedule(shape, dims.rank);
  telemetry::counter_add(telemetry::Counter::PqdDiagonalBatches,
                         g.diagonals.size());
  const bool use_simd = simd_pqd_eligible(dims, kind);
  const simd::QuantSpec spec = quant_spec(q);
#ifdef _OPENMP
#pragma omp parallel num_threads(nt)
#endif
  {
    for (const auto& diag : g.diagonals) {
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
      for (std::size_t t = 0; t < diag.size(); ++t) {
        if (use_simd) {
          const Tile& tile = diag[t];
          const std::size_t lo0 = tile.t0 * g.e0;
          const std::size_t lo1 = tile.t1 * g.e1;
          reconstruct_tile_simd(codes.data(), rec.data(), padded, q, dims,
                                kind, spec, s0, lo0,
                                std::min(shape.n0, lo0 + g.e0), lo1,
                                std::min(shape.n1, lo1 + g.e1));
        } else {
          for_tile_points(diag[t], g, shape,
                          [&](std::size_t i0, std::size_t i1, std::size_t i2,
                              std::size_t i) {
                            if (codes[i] == 0) return;  // placed above
                            rec[i] = reconstruct_step(
                                codes.data(), rec.data(), padded, q, dims,
                                kind, one_layer, s0, s1, i0, i1, i2, i);
                          });
        }
      }
    }
  }
  return rec;
}

template Pqd lorenzo_pqd_wavefront_t<float>(std::span<const float>,
                                            const Dims&,
                                            const LinearQuantizer&,
                                            PredictorKind, int);
template Pqd64 lorenzo_pqd_wavefront_t<double>(std::span<const double>,
                                               const Dims&,
                                               const LinearQuantizer&,
                                               PredictorKind, int);
template std::vector<float> lorenzo_reconstruct_wavefront_t<float>(
    std::span<const std::uint16_t>, std::span<const float>, const Dims&,
    const LinearQuantizer&, PredictorKind, int);
template std::vector<double> lorenzo_reconstruct_wavefront_t<double>(
    std::span<const std::uint16_t>, std::span<const double>, const Dims&,
    const LinearQuantizer&, PredictorKind, int);

}  // namespace detail

Pqd lorenzo_pqd_wavefront(std::span<const float> data, const Dims& dims,
                          const LinearQuantizer& q, PredictorKind kind,
                          int threads) {
  return detail::lorenzo_pqd_wavefront_t<float>(data, dims, q, kind, threads);
}

Pqd64 lorenzo_pqd64_wavefront(std::span<const double> data, const Dims& dims,
                              const LinearQuantizer& q, PredictorKind kind,
                              int threads) {
  return detail::lorenzo_pqd_wavefront_t<double>(data, dims, q, kind,
                                                 threads);
}

std::vector<float> lorenzo_reconstruct_wavefront(
    std::span<const std::uint16_t> codes, std::span<const float> unpredictable,
    const Dims& dims, const LinearQuantizer& q, PredictorKind kind,
    int threads) {
  return detail::lorenzo_reconstruct_wavefront_t<float>(codes, unpredictable,
                                                        dims, q, kind,
                                                        threads);
}

std::vector<double> lorenzo_reconstruct64_wavefront(
    std::span<const std::uint16_t> codes,
    std::span<const double> unpredictable, const Dims& dims,
    const LinearQuantizer& q, PredictorKind kind, int threads) {
  return detail::lorenzo_reconstruct_wavefront_t<double>(codes, unpredictable,
                                                         dims, q, kind,
                                                         threads);
}

}  // namespace wavesz::sz
