// Customized variable-length encoding of quantization codes (H*, paper
// §2.1 step 4): a canonical Huffman code built over the 16-bit symbol
// alphabet, serialized as (symbol, length) pairs plus an MSB-first payload.
//
// This is the coder whose absence on the FPGA limits waveSZ's ratio in
// Table 7; applying it (H* followed by G*) recovers SZ-1.4-level ratios.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/container.hpp"

namespace wavesz::sz {

/// Self-contained encoding: [u32 distinct][u64 count][(u16 sym, u8 len)...]
/// [u64 payload bits][payload bytes]. `threads` is a budget with
/// Config::pqd_threads semantics (0 = all OpenMP threads, 1 = serial): the
/// symbol histogram is built as a per-thread reduction and the payload is
/// bit-packed in independent chunks spliced at byte granularity, producing
/// the serial byte stream bit-for-bit at every budget. Empty inputs skip
/// the 512 KiB frequency table entirely.
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint16_t> codes,
                                         int threads = 1);

/// huffman_encode() that additionally records the container-v2 offset table:
/// after every `chunk_symbols` output elements, `idx` gets the cumulative
/// payload bit offset, element offset, unpredictable (symbol 0) count and
/// running CRC-32 of the code stream's little-endian bytes. The returned
/// blob is byte-identical to huffman_encode() on the same input.
std::vector<std::uint8_t> huffman_encode_indexed(
    std::span<const std::uint16_t> codes, int threads,
    std::uint32_t chunk_symbols, CodeChunkIndex& idx);

/// Inverse of huffman_encode(); throws wavesz::Error on malformed input.
/// Decodes through a flat two-level lookup table (multiple bits per probe)
/// unless WAVESZ_REFERENCE_DECODE / set_reference_decode() selects the
/// bit-at-a-time oracle; outputs are identical. This entry point is serial:
/// without a chunk index, recovering the encoder's chunk boundaries costs a
/// full serial table walk, which makes any two-pass parallel scheme slower
/// than one pass through the table. Containers that do carry the v2 index
/// decode through huffman_decode_indexed() instead.
std::vector<std::uint16_t> huffman_decode(std::span<const std::uint8_t> blob);

/// Index-driven decode: every chunk is checked against its recorded end bit
/// offset and running CRC-32; with `threads > 1` (Config::decode_threads
/// semantics) chunks decode on an OpenMP worker pool, each seeking the
/// table-driven fast path to its recorded start bit. The output is
/// bit-identical to huffman_decode() — any divergence trips the per-chunk
/// checks and throws wavesz::Error.
std::vector<std::uint16_t> huffman_decode_indexed(
    std::span<const std::uint8_t> blob, const CodeChunkIndex& idx,
    int threads);

/// Decode only the first `symbols` codes by running the leading index
/// chunks. `blob` may be a truncated plain code stream (the product of a
/// prefix inflate) as long as it covers those chunks' payload bits; the
/// chunks decoded in full are CRC-verified before the result is trimmed.
std::vector<std::uint16_t> huffman_decode_prefix(
    std::span<const std::uint8_t> blob, const CodeChunkIndex& idx,
    std::uint64_t symbols, int threads);

/// huffman_decode() pinned to the bit-at-a-time reference decoder; the
/// oracle side of the differential tests.
std::vector<std::uint16_t> huffman_decode_reference(
    std::span<const std::uint8_t> blob);

/// Mean code length in bits for the given stream (diagnostics/benches).
double huffman_mean_bits(std::span<const std::uint16_t> codes);

}  // namespace wavesz::sz
