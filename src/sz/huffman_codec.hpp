// Customized variable-length encoding of quantization codes (H*, paper
// §2.1 step 4): a canonical Huffman code built over the 16-bit symbol
// alphabet, serialized as (symbol, length) pairs plus an MSB-first payload.
//
// This is the coder whose absence on the FPGA limits waveSZ's ratio in
// Table 7; applying it (H* followed by G*) recovers SZ-1.4-level ratios.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wavesz::sz {

/// Self-contained encoding: [u32 distinct][u64 count][(u16 sym, u8 len)...]
/// [u64 payload bits][payload bytes].
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint16_t> codes);

/// Inverse of huffman_encode(); throws wavesz::Error on malformed input.
std::vector<std::uint16_t> huffman_decode(std::span<const std::uint8_t> blob);

/// Mean code length in bits for the given stream (diagnostics/benches).
double huffman_mean_bits(std::span<const std::uint16_t> codes);

}  // namespace wavesz::sz
