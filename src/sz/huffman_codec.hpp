// Customized variable-length encoding of quantization codes (H*, paper
// §2.1 step 4): a canonical Huffman code built over the 16-bit symbol
// alphabet, serialized as (symbol, length) pairs plus an MSB-first payload.
//
// This is the coder whose absence on the FPGA limits waveSZ's ratio in
// Table 7; applying it (H* followed by G*) recovers SZ-1.4-level ratios.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wavesz::sz {

/// Self-contained encoding: [u32 distinct][u64 count][(u16 sym, u8 len)...]
/// [u64 payload bits][payload bytes]. `threads` is a budget with
/// Config::pqd_threads semantics (0 = all OpenMP threads, 1 = serial): the
/// symbol histogram is built as a per-thread reduction and the payload is
/// bit-packed in independent chunks spliced at byte granularity, producing
/// the serial byte stream bit-for-bit at every budget. Empty inputs skip
/// the 512 KiB frequency table entirely.
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint16_t> codes,
                                         int threads = 1);

/// Inverse of huffman_encode(); throws wavesz::Error on malformed input.
/// Decodes through a flat two-level lookup table (multiple bits per probe)
/// unless WAVESZ_REFERENCE_DECODE / set_reference_decode() selects the
/// bit-at-a-time oracle; outputs are identical. The decode is serial by
/// design: the container has no chunk index, and recovering the encoder's
/// chunk boundaries costs a full serial table walk, which makes any
/// two-pass parallel scheme slower than one pass through the table.
std::vector<std::uint16_t> huffman_decode(std::span<const std::uint8_t> blob);

/// huffman_decode() pinned to the bit-at-a-time reference decoder; the
/// oracle side of the differential tests.
std::vector<std::uint16_t> huffman_decode_reference(
    std::span<const std::uint8_t> blob);

/// Mean code length in bits for the given stream (diagnostics/benches).
double huffman_mean_bits(std::span<const std::uint16_t> codes);

}  // namespace wavesz::sz
