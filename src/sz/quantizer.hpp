// Linear-scaling quantization, a faithful implementation of the paper's
// Algorithm 1 ("Computation of prediction, quantization, and decompression").
//
// Given precision p (the absolute error bound), radius r and the maximum
// quantizable magnitude `capacity`:
//
//   diff   = d - pred
//   code0  = floor(|diff| / p) + 1          (integer bin index, 1-based)
//   if code0 < capacity:
//     code0 = signum(diff) * code0
//     code  = trunc(code0 / 2) + r          (stored 16-bit symbol)
//     d_re  = pred + 2 * (code - r) * p     (in-loop decompressed value)
//     accept iff |d_re - d| <= p            (overbound check, line 10)
//   else: unpredictable (code 0)
//
// code 0 is reserved for unpredictable points in every SZ variant. Both
// quantizers scale by a precomputed reciprocal (the overbound check keeps
// the contract exact either way); for Base2Quantizer the reciprocal is an
// exact power of two, so the multiply is the hardware exponent-add of §3.3
// and bit-identical to division (tested property).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace wavesz::sz {

struct QuantResult {
  std::uint16_t code = 0;      ///< 0 => unpredictable
  float reconstructed = 0.0f;  ///< valid when code != 0
};

struct QuantResult64 {
  std::uint16_t code = 0;
  double reconstructed = 0.0;
};

class LinearQuantizer {
 public:
  LinearQuantizer(double precision, int quant_bits)
      : p_(precision), inv_p_(1.0 / precision),
        capacity_(1u << quant_bits), radius_(capacity_ / 2) {
    WAVESZ_REQUIRE(precision > 0.0, "precision must be positive");
    WAVESZ_REQUIRE(quant_bits >= 2 && quant_bits <= 16,
                   "quantization symbols are stored as 16-bit codes");
  }

  double precision() const { return p_; }
  double inv_precision() const { return inv_p_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t radius() const { return radius_; }

  QuantResult quantize(double pred, double orig) const {
    const double diff = orig - pred;
    // Reciprocal multiply: cheaper than division on the loop-carried
    // dependency chain; the explicit overbound check below keeps the error
    // contract exact regardless of the rounding of inv_p_.
    const double scaled = std::fabs(diff) * inv_p_;
    if (!(scaled < static_cast<double>(capacity_ - 1))) {
      return {};  // too far from the prediction (or NaN): unpredictable
    }
    const auto code0 = static_cast<std::int64_t>(scaled) + 1;
    const std::int64_t signed0 = diff >= 0.0 ? code0 : -code0;
    const std::int64_t q = signed0 / 2;  // trunc toward zero, as cast does
    const std::int64_t code = q + static_cast<std::int64_t>(radius_);
    if (code <= 0 || code >= static_cast<std::int64_t>(capacity_)) {
      return {};
    }
    const auto rec = static_cast<float>(
        pred + 2.0 * static_cast<double>(q) * p_);
    if (!(std::fabs(static_cast<double>(rec) - orig) <= p_)) {
      return {};  // overbound check (float rounding at the cell edge)
    }
    return {static_cast<std::uint16_t>(code), rec};
  }

  /// Reconstruction used by the decompressor; code must be nonzero.
  float reconstruct(double pred, std::uint16_t code) const {
    const std::int64_t q =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
    return static_cast<float>(pred + 2.0 * static_cast<double>(q) * p_);
  }

  /// float64 data path: identical algorithm, no narrowing to float.
  QuantResult64 quantize64(double pred, double orig) const {
    const double diff = orig - pred;
    const double scaled = std::fabs(diff) * inv_p_;
    if (!(scaled < static_cast<double>(capacity_ - 1))) {
      return {};
    }
    const auto code0 = static_cast<std::int64_t>(scaled) + 1;
    const std::int64_t signed0 = diff >= 0.0 ? code0 : -code0;
    const std::int64_t q = signed0 / 2;
    const std::int64_t code = q + static_cast<std::int64_t>(radius_);
    if (code <= 0 || code >= static_cast<std::int64_t>(capacity_)) {
      return {};
    }
    const double rec = pred + 2.0 * static_cast<double>(q) * p_;
    if (!(std::fabs(rec - orig) <= p_)) {
      return {};
    }
    return {static_cast<std::uint16_t>(code), rec};
  }

  double reconstruct64(double pred, std::uint16_t code) const {
    const std::int64_t q =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
    return pred + 2.0 * static_cast<double>(q) * p_;
  }

 private:
  double p_;
  double inv_p_;
  std::uint32_t capacity_;
  std::uint32_t radius_;
};

/// Exponent-only variant of the same algorithm (paper §3.3, "Base-2
/// Operation"): division by p == 2^e and multiplication by 2p become exact
/// power-of-two multiplies — integer adds on the exponent field in
/// hardware. Requires a power-of-two precision.
class Base2Quantizer {
 public:
  Base2Quantizer(int exponent, int quant_bits)
      : p_(std::ldexp(1.0, exponent)),
        inv_p_(std::ldexp(1.0, -exponent)),      // exact: 2^-e
        two_p_(std::ldexp(1.0, exponent + 1)),   // exact: 2^(e+1)
        capacity_(1u << quant_bits), radius_(capacity_ / 2) {
    WAVESZ_REQUIRE(quant_bits >= 2 && quant_bits <= 16,
                   "quantization symbols are stored as 16-bit codes");
  }

  double precision() const { return p_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t radius() const { return radius_; }

  QuantResult quantize(double pred, double orig) const {
    const double diff = orig - pred;
    // Multiplying by an exact power of two only touches the exponent field:
    // this is precisely the hardware exponent-add of §3.3 (and bit-identical
    // to division by p, since p is a power of two).
    const double scaled = std::fabs(diff) * inv_p_;
    if (!(scaled < static_cast<double>(capacity_ - 1))) {
      return {};
    }
    const auto code0 = static_cast<std::int64_t>(scaled) + 1;
    const std::int64_t signed0 = diff >= 0.0 ? code0 : -code0;
    const std::int64_t q = signed0 / 2;
    const std::int64_t code = q + static_cast<std::int64_t>(radius_);
    if (code <= 0 || code >= static_cast<std::int64_t>(capacity_)) {
      return {};
    }
    const auto rec =
        static_cast<float>(pred + static_cast<double>(q) * two_p_);
    if (!(std::fabs(static_cast<double>(rec) - orig) <= p_)) {
      return {};
    }
    return {static_cast<std::uint16_t>(code), rec};
  }

  float reconstruct(double pred, std::uint16_t code) const {
    const std::int64_t q =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
    return static_cast<float>(pred + static_cast<double>(q) * two_p_);
  }

 private:
  double p_;
  double inv_p_;
  double two_p_;
  std::uint32_t capacity_;
  std::uint32_t radius_;
};

}  // namespace wavesz::sz
