// Data predictors of the SZ family (paper §2.1, Fig. 2).
//
// Lorenzo predictors (SZ-1.4+): the single-layer stencil whose coefficient
// for each neighbour at Manhattan distance L from the current point is
// (-1)^(L+1). Curve-fitting predictors (SZ-1.0 / GhostSZ): Order-{0,1,2}
// extrapolation along the fastest-varying dimension only.
//
// All predictors consume *previously reconstructed* values; which history
// the caller passes in (decompressed values for SZ/waveSZ, raw predictions
// for CF-GhostSZ) is exactly what distinguishes the variants.
#pragma once

#include <cmath>
#include <cstdint>

namespace wavesz::sz {

/// 1D Lorenzo (order-0 / previous value).
inline double lorenzo1d(double w) { return w; }

/// 2D single-layer Lorenzo: P(x,y) = d(x,y-1) + d(x-1,y) - d(x-1,y-1).
inline double lorenzo2d(double nw, double n, double w) { return n + w - nw; }

/// 3D single-layer Lorenzo over the 7 preceding corner neighbours.
/// Arguments named by offset: dXYZ has offsets (x-X, y-Y, z-Z).
inline double lorenzo3d(double d111, double d110, double d101, double d011,
                        double d100, double d010, double d001) {
  return d100 + d010 + d001 - d110 - d101 - d011 + d111;
}

/// 2-layer Lorenzo predictors (Ibarria et al.; SZ's layer-2 option). The
/// k-layer coefficient of the neighbour at offset (i, j) is
/// (-1)^(i+j+1) * C(k,i) * C(k,j); the residual is the mixed backward
/// difference Dx^2 Dy^2 f, so any term of degree <= 1 in x or in y is
/// predicted exactly (e.g. x^2, x*y, y^3 — but not x^2*y^2).
inline double lorenzo1d_2layer(double w1, double w2) {
  return 2.0 * w1 - w2;  // identical to order-1 extrapolation
}

/// dIJ holds the value at offset (x-I, y-J).
inline double lorenzo2d_2layer(double d01, double d02, double d10,
                               double d11, double d12, double d20,
                               double d21, double d22) {
  return 2.0 * d01 - d02 + 2.0 * d10 - 4.0 * d11 + 2.0 * d12 - d20 +
         2.0 * d21 - d22;
}

/// Order-{0,1,2} 1D curve fitting (SZ-1.0). p1 is the nearest preceding
/// value, p2/p3 further back along the same row.
inline double curvefit_order0(double p1) { return p1; }
inline double curvefit_order1(double p1, double p2) { return 2.0 * p1 - p2; }
inline double curvefit_order2(double p1, double p2, double p3) {
  return 3.0 * p1 - 3.0 * p2 + p3;
}

struct BestFit {
  double prediction = 0.0;
  std::uint8_t order = 0;  ///< 0, 1 or 2 — GhostSZ encodes this in 2 bits
};

/// Choose the candidate closest to the original value among the orders that
/// have enough history (`available` = number of usable preceding values).
inline BestFit curvefit_best(double orig, double p1, double p2, double p3,
                             int available) {
  BestFit best{curvefit_order0(p1), 0};
  double err = std::fabs(orig - best.prediction);
  if (available >= 2) {
    const double c1 = curvefit_order1(p1, p2);
    const double e1 = std::fabs(orig - c1);
    if (e1 < err) {
      best = {c1, 1};
      err = e1;
    }
  }
  if (available >= 3) {
    const double c2 = curvefit_order2(p1, p2, p3);
    const double e2 = std::fabs(orig - c2);
    if (e2 < err) {
      best = {c2, 2};
    }
  }
  return best;
}

}  // namespace wavesz::sz
