// Wavefront-scheduled (tiled anti-diagonal hyperplane) PQD kernels — the
// paper's dependency-breaking insight (§3.2–3.3) applied to the CPU hot
// path.
//
// Points on the same anti-diagonal hyperplane h = i0 + i1 (+ i2) have no
// mutual Lorenzo dependency: every stencil tap has strictly smaller
// coordinates, hence lands on an earlier hyperplane. The same holds one
// level up for fixed-size tiles (a tile's taps reach only tiles with
// coordinate-wise smaller-or-equal indices, i.e. strictly earlier tile
// diagonals), so the schedule here sweeps *tile* diagonals — the paper's
// head/body/tail pipeline at memory-hierarchy granularity — and hands every
// tile of a diagonal to a different OpenMP thread, with raster order inside
// a tile. Each point's arithmetic is shared with the raster kernels via
// pqd_detail.hpp, so results are bit-identical to the serial reference; the
// unpredictable stream is spliced back into exact raster order afterwards
// (the container format's contract).
//
// 1D grids degenerate to a serial dependency chain and always take the
// raster path, as does a thread budget of 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/pqd_detail.hpp"
#include "sz/quantizer.hpp"
#include "util/dims.hpp"

namespace wavesz::sz {

/// Minimum points per worker before the wavefront kernels honour a parallel
/// thread budget: budgets are capped at count / floor, so fields too small
/// to amortize the per-diagonal barrier fall back to the serial kernel
/// (BENCH_pqd.json showed 512x512 f32 *losing* 40% at 4 threads). 0 disables
/// the floor (tests/benches forcing the parallel path). Thread-safe.
std::size_t wavefront_min_points_per_thread();
void set_wavefront_min_points_per_thread(std::size_t points);

/// Wavefront-scheduled lorenzo_pqd. `threads` is a budget with the same
/// semantics as Config::pqd_threads (0 = all OpenMP threads, 1 = serial
/// raster reference, n = at most n). Output is bit-identical to
/// lorenzo_pqd() for every budget.
Pqd lorenzo_pqd_wavefront(std::span<const float> data, const Dims& dims,
                          const LinearQuantizer& q,
                          PredictorKind kind = PredictorKind::Lorenzo1Layer,
                          int threads = 0);

Pqd64 lorenzo_pqd64_wavefront(
    std::span<const double> data, const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer, int threads = 0);

/// Wavefront-scheduled lorenzo_reconstruct; value-identical to the raster
/// kernel for every thread budget.
std::vector<float> lorenzo_reconstruct_wavefront(
    std::span<const std::uint16_t> codes, std::span<const float> unpredictable,
    const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer, int threads = 0);

std::vector<double> lorenzo_reconstruct64_wavefront(
    std::span<const std::uint16_t> codes,
    std::span<const double> unpredictable, const Dims& dims,
    const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer, int threads = 0);

namespace detail {

/// Width-generic entry points used by compress_t/decompress_t; instantiated
/// for float and double in wavefront_pqd.cpp.
template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_wavefront_t(std::span<const T> data,
                                                   const Dims& dims,
                                                   const LinearQuantizer& q,
                                                   PredictorKind kind,
                                                   int threads);

template <typename T>
std::vector<T> lorenzo_reconstruct_wavefront_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q, PredictorKind kind,
    int threads);

}  // namespace detail

}  // namespace wavesz::sz
