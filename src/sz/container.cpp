#include "sz/container.hpp"

#include "util/decode_guard.hpp"
#include "util/error.hpp"

namespace wavesz::sz {
namespace {

constexpr std::uint32_t kMagic = 0x315a5357u;  // "WSZ1"

}  // namespace

void write_header(ByteWriter& w, const ContainerHeader& h) {
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(h.variant));
  w.u8(static_cast<std::uint8_t>(h.dims.rank));
  w.u8(static_cast<std::uint8_t>(h.mode));
  w.u8(static_cast<std::uint8_t>(h.base));
  for (int i = 0; i < 3; ++i) w.u64(h.dims.extent[static_cast<std::size_t>(i)]);
  w.f64(h.eb_requested);
  w.f64(h.eb_absolute);
  w.u8(static_cast<std::uint8_t>(h.quant_bits));
  w.u8(h.huffman ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(h.gzip_level));
  w.u8(h.aux);
  w.u8(h.dtype);
  w.u64(h.point_count);
  w.u64(h.unpredictable_count);
}

ContainerHeader read_header(ByteReader& r) {
  WAVESZ_REQUIRE(r.u32() == kMagic, "not a waveSZ container (bad magic)");
  ContainerHeader h;
  const std::uint8_t variant = r.u8();
  WAVESZ_REQUIRE(variant >= 1 && variant <= 3, "unknown container variant");
  h.variant = static_cast<Variant>(variant);
  const std::uint8_t rank = r.u8();
  WAVESZ_REQUIRE(rank >= 1 && rank <= 3, "invalid rank");
  const std::uint8_t mode = r.u8();
  WAVESZ_REQUIRE(mode <= 1, "invalid error-bound mode");
  h.mode = static_cast<EbMode>(mode);
  const std::uint8_t base = r.u8();
  WAVESZ_REQUIRE(base <= 1, "invalid error-bound base");
  h.base = static_cast<EbBase>(base);
  std::array<std::size_t, 3> ext{};
  for (std::size_t i = 0; i < ext.size(); ++i) {
    ext[i] = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(ext[i] > 0, "zero extent in container");
    // Writers pad unused axes with 1; anything else is a forged header
    // whose count()/slab arithmetic would disagree with its rank.
    WAVESZ_REQUIRE(i < static_cast<std::size_t>(rank) || ext[i] == 1,
                   "nontrivial extent beyond container rank");
  }
  h.dims = Dims{ext, rank};
  h.eb_requested = r.f64();
  h.eb_absolute = r.f64();
  WAVESZ_REQUIRE(h.eb_absolute > 0.0, "non-positive absolute bound");
  h.quant_bits = r.u8();
  WAVESZ_REQUIRE(h.quant_bits >= 2 && h.quant_bits <= 16,
                 "invalid quantization width");
  h.huffman = r.u8() != 0;
  const std::uint8_t level = r.u8();
  WAVESZ_REQUIRE(level <= 1, "invalid gzip level");
  h.gzip_level = static_cast<deflate::Level>(level);
  h.aux = r.u8();
  h.dtype = r.u8();
  WAVESZ_REQUIRE(h.dtype <= 1, "unknown value dtype");
  h.point_count = r.u64();
  h.unpredictable_count = r.u64();
  // Overflow-checked product, capped by the process decode guard: forged
  // extents must be rejected here, before any decoder sizes an output
  // buffer from them (see util/decode_guard.hpp).
  const std::size_t elem = h.dtype == 1 ? sizeof(double) : sizeof(float);
  WAVESZ_REQUIRE(h.point_count == guarded_count(h.dims, elem),
                 "point count disagrees with dims");
  WAVESZ_REQUIRE(h.unpredictable_count <= h.point_count,
                 "unpredictable count exceeds point count");
  return h;
}

void write_section(ByteWriter& w, std::span<const std::uint8_t> blob) {
  w.u64(blob.size());
  w.bytes(blob);
}

std::vector<std::uint8_t> read_section(ByteReader& r) {
  const std::uint64_t size = r.u64();
  auto view = r.bytes(size);
  return {view.begin(), view.end()};
}

ContainerHeader inspect(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_header(r);
}

}  // namespace wavesz::sz
