#include "sz/container.hpp"

#include <algorithm>

#include "util/checksum.hpp"
#include "util/decode_guard.hpp"
#include "util/error.hpp"

namespace wavesz::sz {
namespace {

constexpr std::uint32_t kMagic = 0x315a5357u;    // "WSZ1"
constexpr std::uint32_t kMagicV2 = 0x495a5357u;  // "WSZI" (indexed)
constexpr std::size_t kEntryBytes = 8 + 8 + 8 + 4;

}  // namespace

void write_header(ByteWriter& w, const ContainerHeader& h) {
  WAVESZ_ASSERT(h.version == 1 || h.version == 2, "unknown container version");
  w.u32(h.version == 2 ? kMagicV2 : kMagic);
  w.u8(static_cast<std::uint8_t>(h.variant));
  w.u8(static_cast<std::uint8_t>(h.dims.rank));
  w.u8(static_cast<std::uint8_t>(h.mode));
  w.u8(static_cast<std::uint8_t>(h.base));
  for (int i = 0; i < 3; ++i) w.u64(h.dims.extent[static_cast<std::size_t>(i)]);
  w.f64(h.eb_requested);
  w.f64(h.eb_absolute);
  w.u8(static_cast<std::uint8_t>(h.quant_bits));
  w.u8(h.huffman ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(h.gzip_level));
  w.u8(h.aux);
  w.u8(h.dtype);
  w.u64(h.point_count);
  w.u64(h.unpredictable_count);
}

ContainerHeader read_header(ByteReader& r) {
  const std::uint32_t magic = r.u32();
  WAVESZ_REQUIRE(magic == kMagic || magic == kMagicV2,
                 "not a waveSZ container (bad magic)");
  ContainerHeader h;
  h.version = magic == kMagicV2 ? 2 : 1;
  const std::uint8_t variant = r.u8();
  WAVESZ_REQUIRE(variant >= 1 && variant <= 4, "unknown container variant");
  h.variant = static_cast<Variant>(variant);
  const std::uint8_t rank = r.u8();
  WAVESZ_REQUIRE(rank >= 1 && rank <= 3, "invalid rank");
  const std::uint8_t mode = r.u8();
  WAVESZ_REQUIRE(mode <= 1, "invalid error-bound mode");
  h.mode = static_cast<EbMode>(mode);
  const std::uint8_t base = r.u8();
  WAVESZ_REQUIRE(base <= 1, "invalid error-bound base");
  h.base = static_cast<EbBase>(base);
  std::array<std::size_t, 3> ext{};
  for (std::size_t i = 0; i < ext.size(); ++i) {
    ext[i] = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(ext[i] > 0, "zero extent in container");
    // Writers pad unused axes with 1; anything else is a forged header
    // whose count()/slab arithmetic would disagree with its rank.
    WAVESZ_REQUIRE(i < static_cast<std::size_t>(rank) || ext[i] == 1,
                   "nontrivial extent beyond container rank");
  }
  h.dims = Dims{ext, rank};
  h.eb_requested = r.f64();
  h.eb_absolute = r.f64();
  WAVESZ_REQUIRE(h.eb_absolute > 0.0, "non-positive absolute bound");
  h.quant_bits = r.u8();
  WAVESZ_REQUIRE(h.quant_bits >= 2 && h.quant_bits <= 16,
                 "invalid quantization width");
  h.huffman = r.u8() != 0;
  const std::uint8_t level = r.u8();
  WAVESZ_REQUIRE(level <= 1, "invalid gzip level");
  h.gzip_level = static_cast<deflate::Level>(level);
  h.aux = r.u8();
  h.dtype = r.u8();
  WAVESZ_REQUIRE(h.dtype <= 1, "unknown value dtype");
  h.point_count = r.u64();
  h.unpredictable_count = r.u64();
  // Overflow-checked product, capped by the process decode guard: forged
  // extents must be rejected here, before any decoder sizes an output
  // buffer from them (see util/decode_guard.hpp).
  const std::size_t elem = h.dtype == 1 ? sizeof(double) : sizeof(float);
  WAVESZ_REQUIRE(h.point_count == guarded_count(h.dims, elem),
                 "point count disagrees with dims");
  WAVESZ_REQUIRE(h.unpredictable_count <= h.point_count,
                 "unpredictable count exceeds point count");
  return h;
}

void write_code_index(ByteWriter& w, const CodeChunkIndex& idx) {
  if (!idx.present()) {
    // Stripped-index marker: three zero fields, decoders fall back to the
    // serial full decode.
    w.u32(0);
    w.u64(0);
    w.u64(0);
    return;
  }
  w.u32(idx.chunk_symbols);
  w.u64(idx.entries.size());
  w.u64(idx.payload_byte_offset);
  for (const ChunkEntry& e : idx.entries) {
    w.u64(e.end_bit);
    w.u64(e.end_element);
    w.u64(e.end_unpred);
    w.u32(e.running_crc);
  }
}

CodeChunkIndex read_code_index(ByteReader& r, const ContainerHeader& h) {
  CodeChunkIndex idx;
  if (h.version < 2) return idx;
  idx.chunk_symbols = r.u32();
  const std::uint64_t count = r.u64();
  idx.payload_byte_offset = r.u64();
  if (count == 0) {
    WAVESZ_REQUIRE(idx.chunk_symbols == 0 && idx.payload_byte_offset == 0,
                   "stripped chunk index has nonzero fields");
    return idx;
  }
  // Every structural invariant is enforced here, before any decoder sizes a
  // buffer or spawns a worker from the table: forged counts, overlapping or
  // non-monotonic offsets, and truncated tables all die as wavesz::Error.
  WAVESZ_REQUIRE(idx.chunk_symbols > 0, "chunk index with zero chunk size");
  const std::uint64_t expected =
      (h.point_count + idx.chunk_symbols - 1) / idx.chunk_symbols;
  WAVESZ_REQUIRE(count == expected, "chunk count disagrees with point count");
  WAVESZ_REQUIRE(count <= r.remaining() / kEntryBytes,
                 "chunk index truncated");
  WAVESZ_REQUIRE(h.huffman || idx.payload_byte_offset == 0,
                 "payload offset on a raw code stream");
  const std::uint64_t min_bits = h.huffman ? 1 : 16;  // degenerate H* vs u16
  const std::uint64_t max_bits = h.huffman ? 24 : 16;  // kMaxCodeLength
  idx.entries.reserve(count);
  std::uint64_t prev_bit = 0;
  std::uint64_t prev_elem = 0;
  std::uint64_t prev_unpred = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    ChunkEntry e;
    e.end_bit = r.u64();
    e.end_element = r.u64();
    e.end_unpred = r.u64();
    e.running_crc = r.u32();
    const std::uint64_t want_elem = std::min<std::uint64_t>(
        (k + 1) * idx.chunk_symbols, h.point_count);
    WAVESZ_REQUIRE(e.end_element == want_elem,
                   "chunk element offsets break the fixed stride");
    const std::uint64_t syms = want_elem - prev_elem;
    WAVESZ_REQUIRE(e.end_bit > prev_bit &&
                       e.end_bit - prev_bit >= syms * min_bits &&
                       e.end_bit - prev_bit <= syms * max_bits,
                   "chunk bit offsets out of range");
    WAVESZ_REQUIRE(e.end_unpred >= prev_unpred &&
                       e.end_unpred - prev_unpred <= syms,
                   "chunk unpredictable counts not monotonic");
    prev_bit = e.end_bit;
    prev_elem = e.end_element;
    prev_unpred = e.end_unpred;
    idx.entries.push_back(e);
  }
  WAVESZ_REQUIRE(prev_unpred == h.unpredictable_count,
                 "chunk unpredictable total disagrees with header");
  return idx;
}

CodeChunkIndex build_raw_code_index(std::span<const std::uint16_t> codes,
                                    std::uint32_t chunk_symbols) {
  WAVESZ_ASSERT(chunk_symbols > 0, "chunk size must be positive");
  CodeChunkIndex idx;
  idx.chunk_symbols = chunk_symbols;
  idx.payload_byte_offset = 0;
  Crc32 crc;
  std::uint64_t unpred = 0;
  for (std::size_t at = 0; at < codes.size(); at += chunk_symbols) {
    const std::size_t n = std::min<std::size_t>(chunk_symbols,
                                                codes.size() - at);
    const auto chunk = codes.subspan(at, n);
    for (const std::uint16_t c : chunk) unpred += c == 0 ? 1 : 0;
    crc.update(bytes_of(chunk));
    ChunkEntry e;
    e.end_element = at + n;
    e.end_bit = e.end_element * 16;
    e.end_unpred = unpred;
    e.running_crc = crc.value();
    idx.entries.push_back(e);
  }
  return idx;
}

void verify_code_index_crcs(std::span<const std::uint16_t> codes,
                            const CodeChunkIndex& idx,
                            std::uint64_t element_count) {
  std::uint64_t prev_elem = 0;
  std::uint32_t prev_crc = 0;
  for (const ChunkEntry& e : idx.entries) {
    if (e.end_element > element_count) break;
    Crc32 crc = prev_elem == 0 ? Crc32{} : Crc32::resume(prev_crc);
    crc.update(bytes_of(codes.subspan(prev_elem, e.end_element - prev_elem)));
    WAVESZ_REQUIRE(crc.value() == e.running_crc, "chunk CRC mismatch");
    prev_elem = e.end_element;
    prev_crc = e.running_crc;
  }
}

std::size_t chunks_covering(const CodeChunkIndex& idx, std::uint64_t symbols) {
  std::size_t k = 0;
  while (k < idx.entries.size() && idx.entries[k].end_element < symbols) ++k;
  return symbols == 0 ? 0 : std::min(k + 1, idx.entries.size());
}

Dims normalize_region(Region& rg, const Dims& dims) {
  std::array<std::size_t, 3> ext{1, 1, 1};
  for (std::size_t i = 0; i < 3; ++i) {
    if (rg.lo[i] == 0 && rg.hi[i] == 0) rg.hi[i] = dims.extent[i];
    WAVESZ_REQUIRE(i < static_cast<std::size_t>(dims.rank) ||
                       (rg.lo[i] == 0 && rg.hi[i] == 1),
                   "region axis beyond field rank");
    WAVESZ_REQUIRE(rg.lo[i] < rg.hi[i] && rg.hi[i] <= dims.extent[i],
                   "region outside field bounds");
    ext[i] = rg.hi[i] - rg.lo[i];
  }
  return Dims{ext, dims.rank};
}

void write_section(ByteWriter& w, std::span<const std::uint8_t> blob) {
  w.u64(blob.size());
  w.bytes(blob);
}

std::vector<std::uint8_t> read_section(ByteReader& r) {
  const std::uint64_t size = r.u64();
  auto view = r.bytes(size);
  return {view.begin(), view.end()};
}

ContainerHeader inspect(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_header(r);
}

}  // namespace wavesz::sz
