// Truncation-based binary analysis for unpredictable values (SZ-1.4; paper
// §3.2 contrasts it with waveSZ's verbatim pass-through).
//
// Each float is stored as sign + exponent + only as many leading mantissa
// bits as the absolute error bound requires; dropped low bits introduce an
// error strictly below the bound. Values with |v| <= bound collapse to a
// single "zero" bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wavesz::sz {

/// Encode values so each decodes within `bound` of the original.
std::vector<std::uint8_t> truncation_encode(std::span<const float> values,
                                            double bound);

/// Decode `count` values produced by truncation_encode with the same bound.
std::vector<float> truncation_decode(std::span<const std::uint8_t> blob,
                                     std::size_t count, double bound);

/// Bits needed to represent one value at the given bound (for cost models).
int truncation_bits(float value, double bound);

/// The value the decoder will reconstruct for `value` at this bound. The
/// compressor writes this back into its history so that prediction stays
/// closed over decompressor-visible values.
float truncation_roundtrip(float value, double bound);

/// float64 variants: sign + 11-bit exponent + up to 52 kept mantissa bits.
std::vector<std::uint8_t> truncation_encode64(std::span<const double> values,
                                              double bound);
std::vector<double> truncation_decode64(std::span<const std::uint8_t> blob,
                                        std::size_t count, double bound);
double truncation_roundtrip64(double value, double bound);

}  // namespace wavesz::sz
