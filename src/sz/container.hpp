// Self-describing compressed container shared by SZ-1.4, GhostSZ and waveSZ.
//
// Layout (little-endian):
//   u32 magic 'WSZ1' | u8 variant | u8 rank | u8 mode | u8 base
//   u64 dims[3]
//   f64 eb_requested | f64 eb_absolute
//   u8 quant_bits | u8 huffman | u8 gzip_level | u8 aux | u8 dtype
//   u64 point_count | u64 unpredictable_count
//   u64 code_blob_size   | bytes  (gzip of Huffman bits or of raw u16 codes)
//   u64 unpred_blob_size | bytes  (gzip of truncation bits or raw floats)
//
// The code stream marks unpredictable positions with symbol 0; their values
// are consumed from the unpredictable section in stream order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/config.hpp"
#include "util/bytes.hpp"
#include "util/dims.hpp"

namespace wavesz::sz {

enum class Variant : std::uint8_t { Sz14 = 1, GhostSz = 2, WaveSz = 3 };

struct ContainerHeader {
  Variant variant = Variant::Sz14;
  Dims dims = Dims::d1(1);
  EbMode mode = EbMode::ValueRangeRelative;
  EbBase base = EbBase::Ten;
  double eb_requested = 1e-3;
  double eb_absolute = 0.0;
  int quant_bits = 16;
  bool huffman = true;
  deflate::Level gzip_level = deflate::Level::Fast;
  std::uint8_t aux = 0;  ///< variant-specific (waveSZ: layout mode)
  std::uint8_t dtype = 0;  ///< 0 = float32, 1 = float64
  std::uint64_t point_count = 0;
  std::uint64_t unpredictable_count = 0;
};

void write_header(ByteWriter& w, const ContainerHeader& h);
ContainerHeader read_header(ByteReader& r);

void write_section(ByteWriter& w, std::span<const std::uint8_t> blob);
std::vector<std::uint8_t> read_section(ByteReader& r);

/// Peek at the variant/dims of a serialized container without decoding it.
ContainerHeader inspect(std::span<const std::uint8_t> bytes);

}  // namespace wavesz::sz
