// Self-describing compressed container shared by SZ-1.4, GhostSZ and waveSZ.
//
// v1 layout (little-endian):
//   u32 magic 'WSZ1' | u8 variant | u8 rank | u8 mode | u8 base
//   u64 dims[3]
//   f64 eb_requested | f64 eb_absolute
//   u8 quant_bits | u8 huffman | u8 gzip_level | u8 aux | u8 dtype
//   u64 point_count | u64 unpredictable_count
//   u64 code_blob_size   | bytes  (gzip of Huffman bits or of raw u16 codes)
//   u64 unpred_blob_size | bytes  (gzip of truncation bits or raw floats)
//
// v2 ('WSZI') keeps the header and sections byte-identical and inserts a
// per-chunk offset table between them, so independent workers can seek into
// the code payload and a region decoder can stop inflating early:
//   u32 chunk_symbols | u64 chunk_count | u64 payload_byte_offset
//   chunk_count x { u64 end_bit | u64 end_element | u64 end_unpred
//                 | u32 running_crc }
// Entries record cumulative END-of-chunk state: end_bit is the absolute bit
// offset consumed from the (Huffman or raw-u16) code payload, end_element
// the number of quantization codes produced, end_unpred the number of
// unpredictable values consumed, running_crc the CRC-32 of the little-endian
// bytes of codes [0, end_element). chunk_count == 0 (with the other two
// fields zero) marks a v2 stream whose index was stripped; decoders must
// fall back to the serial path. v1 streams parse byte-identically.
//
// The code stream marks unpredictable positions with symbol 0; their values
// are consumed from the unpredictable section in stream order.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sz/config.hpp"
#include "util/bytes.hpp"
#include "util/dims.hpp"

namespace wavesz::sz {

enum class Variant : std::uint8_t {
  Sz14 = 1,
  GhostSz = 2,
  WaveSz = 3,
  /// SZx-style ultra-fast block codec (src/sz/szx.hpp): a single 'SZXB'
  /// section follows the header instead of the code/unpredictable pair.
  /// Always written as a v1 (index-less) container.
  SzxFast = 4,
};

struct ContainerHeader {
  Variant variant = Variant::Sz14;
  Dims dims = Dims::d1(1);
  EbMode mode = EbMode::ValueRangeRelative;
  EbBase base = EbBase::Ten;
  double eb_requested = 1e-3;
  double eb_absolute = 0.0;
  int quant_bits = 16;
  bool huffman = true;
  deflate::Level gzip_level = deflate::Level::Fast;
  std::uint8_t aux = 0;  ///< variant-specific (waveSZ: layout mode)
  std::uint8_t dtype = 0;  ///< 0 = float32, 1 = float64
  std::uint64_t point_count = 0;
  std::uint64_t unpredictable_count = 0;
  int version = 1;  ///< 1 = index-less, 2 = per-chunk offset table follows
};

/// Cumulative end-of-chunk record of the v2 offset table.
struct ChunkEntry {
  std::uint64_t end_bit = 0;      ///< code payload bits consumed
  std::uint64_t end_element = 0;  ///< quantization codes produced
  std::uint64_t end_unpred = 0;   ///< unpredictable values consumed
  std::uint32_t running_crc = 0;  ///< CRC-32 of LE bytes of codes [0, end)
};

struct CodeChunkIndex {
  std::uint32_t chunk_symbols = 0;
  /// Byte offset of the Huffman payload inside the plain code stream (0 for
  /// raw-u16 code streams, where end_bit counts from the stream start).
  std::uint64_t payload_byte_offset = 0;
  std::vector<ChunkEntry> entries;

  bool present() const { return !entries.empty(); }
};

void write_header(ByteWriter& w, const ContainerHeader& h);
ContainerHeader read_header(ByteReader& r);

/// Serialize the offset table (or the three-zero "stripped" marker when
/// `idx.present()` is false). Only called for version-2 headers.
void write_code_index(ByteWriter& w, const CodeChunkIndex& idx);

/// Parse the offset table of a v2 container; returns an absent index for v1
/// headers without consuming bytes. Every structural invariant is validated
/// here — exact chunk stride, strictly increasing bit offsets, per-chunk bit
/// widths within the code-length bounds, monotonic unpredictable counts —
/// before any decoder allocates output from the table.
CodeChunkIndex read_code_index(ByteReader& r, const ContainerHeader& h);

/// Build the offset table for a raw-u16 code stream (huffman == false):
/// every symbol occupies exactly 16 payload bits.
CodeChunkIndex build_raw_code_index(std::span<const std::uint16_t> codes,
                                    std::uint32_t chunk_symbols);

/// Verify the running CRC of every complete chunk among the first
/// `element_count` decoded codes. Throws wavesz::Error on mismatch.
void verify_code_index_crcs(std::span<const std::uint16_t> codes,
                            const CodeChunkIndex& idx,
                            std::uint64_t element_count);

/// Number of leading chunks needed to produce the first `symbols` codes.
std::size_t chunks_covering(const CodeChunkIndex& idx, std::uint64_t symbols);

void write_section(ByteWriter& w, std::span<const std::uint8_t> blob);
std::vector<std::uint8_t> read_section(ByteReader& r);

/// Peek at the variant/dims of a serialized container without decoding it.
ContainerHeader inspect(std::span<const std::uint8_t> bytes);

/// Hyperslab request for the region decoders: half-open [lo, hi) per axis in
/// the field's row-major coordinates. Axes beyond the container's rank must
/// be left at {0, 1} (or 0/0, which normalize() widens to the full axis).
struct Region {
  std::array<std::size_t, 3> lo{0, 0, 0};
  std::array<std::size_t, 3> hi{0, 0, 0};
};

/// Partial-field decode result: `data` holds the region in row-major order
/// over `region_dims`; `compressed_bytes_read` counts the container bytes
/// actually parsed or inflated (header + index + consumed section prefixes),
/// the quantity the seekable format exists to shrink.
template <typename T>
struct RegionResultT {
  std::vector<T> data;
  Dims region_dims = Dims::d1(1);
  Dims field_dims = Dims::d1(1);
  std::size_t compressed_bytes_read = 0;
};
using RegionResult = RegionResultT<float>;
using RegionResult64 = RegionResultT<double>;

/// Validate `rg` against `dims`, widening all-zero axes to the full extent
/// and pinning axes beyond the rank to {0, 1}. Returns the region extents.
Dims normalize_region(Region& rg, const Dims& dims);

}  // namespace wavesz::sz
