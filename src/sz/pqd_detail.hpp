// Internal building blocks of the SZ-1.4 Lorenzo PQD kernels, shared by the
// raster-order reference loop (compressor.cpp) and the tiled anti-diagonal
// wavefront schedule (wavefront_pqd.cpp).
//
// The two schedules must produce bit-identical results — the wavefront mode
// only changes the visit order, never a point's arithmetic — so everything a
// point computes (prediction path selection, stencil term order, quantizer
// entry, history writeback) lives here exactly once and both kernels inline
// the same code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

namespace wavesz::sz::detail {

/// Zero-padded accessor over the reconstructed field: any index off the grid
/// reads as 0.0, which collapses the Lorenzo stencil to its reduced-dimension
/// form on borders.
template <typename T>
struct Padded {
  const T* rec;
  std::size_t d0, d1, d2;

  double at(std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) const {
    if (i0 < 0 || i1 < 0 || i2 < 0) return 0.0;
    return rec[(static_cast<std::size_t>(i0) * d1 +
                static_cast<std::size_t>(i1)) *
                   d2 +
               static_cast<std::size_t>(i2)];
  }
};

template <typename T>
double predict(const Padded<T>& p, int rank, PredictorKind kind,
               std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) {
  if (kind == PredictorKind::Lorenzo2Layer) {
    // Supported for 1D/2D (the 3D 2-layer stencil has 26 taps and is not
    // part of this reproduction); enforced at compress() time.
    if (rank == 1) {
      return lorenzo1d_2layer(p.at(i0 - 1, 0, 0), p.at(i0 - 2, 0, 0));
    }
    return lorenzo2d_2layer(p.at(i0, i1 - 1, 0), p.at(i0, i1 - 2, 0),
                            p.at(i0 - 1, i1, 0), p.at(i0 - 1, i1 - 1, 0),
                            p.at(i0 - 1, i1 - 2, 0), p.at(i0 - 2, i1, 0),
                            p.at(i0 - 2, i1 - 1, 0), p.at(i0 - 2, i1 - 2, 0));
  }
  switch (rank) {
    case 1:
      return lorenzo1d(p.at(i0 - 1, 0, 0));
    case 2:
      return lorenzo2d(p.at(i0 - 1, i1 - 1, 0), p.at(i0 - 1, i1, 0),
                       p.at(i0, i1 - 1, 0));
    default:
      return lorenzo3d(p.at(i0 - 1, i1 - 1, i2 - 1), p.at(i0 - 1, i1 - 1, i2),
                       p.at(i0 - 1, i1, i2 - 1), p.at(i0, i1 - 1, i2 - 1),
                       p.at(i0 - 1, i1, i2), p.at(i0, i1 - 1, i2),
                       p.at(i0, i1, i2 - 1));
  }
}

struct Shape {
  std::size_t n0, n1, n2;
};

inline Shape shape_of(const Dims& dims) {
  return {dims[0], dims.rank >= 2 ? dims[1] : 1,
          dims.rank >= 3 ? dims[2] : 1};
}

/// Branch-free Lorenzo prediction for interior points (every coordinate
/// > 0): direct strided loads, term order identical to lorenzo{1,2,3}d so
/// the result is bit-equal to the generic Padded path.
template <typename T>
double predict_interior(const T* rec, int rank, std::size_t s0,
                        std::size_t s1, std::size_t i) {
  switch (rank) {
    case 1:
      return static_cast<double>(rec[i - 1]);
    case 2:
      // Row stride of a rank-2 grid is s0 (= n1, since n2 == 1).
      return static_cast<double>(rec[i - s0]) +
             static_cast<double>(rec[i - 1]) -
             static_cast<double>(rec[i - s0 - 1]);
    default:
      return static_cast<double>(rec[i - s0]) +
             static_cast<double>(rec[i - s1]) +
             static_cast<double>(rec[i - 1]) -
             static_cast<double>(rec[i - s0 - s1]) -
             static_cast<double>(rec[i - s0 - 1]) -
             static_cast<double>(rec[i - s1 - 1]) +
             static_cast<double>(rec[i - s0 - s1 - 1]);
  }
}

/// Width-generic glue: the quantizer/truncation entry points differ between
/// float32 and float64 but the PQD structure does not.
template <typename T>
struct FpOps;

template <>
struct FpOps<float> {
  using PqdType = Pqd;
  static constexpr std::uint8_t kDtype = 0;
  static auto quantize(const LinearQuantizer& q, double pred, float orig) {
    return q.quantize(pred, orig);
  }
  static float reconstruct(const LinearQuantizer& q, double pred,
                           std::uint16_t code) {
    return q.reconstruct(pred, code);
  }
  static float roundtrip(float v, double bound) {
    return truncation_roundtrip(v, bound);
  }
  static std::vector<std::uint8_t> encode(std::span<const float> v,
                                          double bound) {
    return truncation_encode(v, bound);
  }
  static std::vector<float> decode(std::span<const std::uint8_t> blob,
                                   std::size_t count, double bound) {
    return truncation_decode(blob, count, bound);
  }
};

template <>
struct FpOps<double> {
  using PqdType = Pqd64;
  static constexpr std::uint8_t kDtype = 1;
  static auto quantize(const LinearQuantizer& q, double pred, double orig) {
    return q.quantize64(pred, orig);
  }
  static double reconstruct(const LinearQuantizer& q, double pred,
                            std::uint16_t code) {
    return q.reconstruct64(pred, code);
  }
  static double roundtrip(double v, double bound) {
    return truncation_roundtrip64(v, bound);
  }
  static std::vector<std::uint8_t> encode(std::span<const double> v,
                                          double bound) {
    return truncation_encode64(v, bound);
  }
  static std::vector<double> decode(std::span<const std::uint8_t> blob,
                                    std::size_t count, double bound) {
    return truncation_decode64(blob, count, bound);
  }
};

/// One compress-side PQD step at point (i0, i1, i2) / raster index i:
/// predict, quantize, write the code and the decompressor-visible history.
/// Returns false when the point is unpredictable (code 0) — the caller owns
/// collecting data[i] into the raster-order unpredictable stream.
template <typename T>
inline bool pqd_step(const T* data, T* rec, std::uint16_t* codes,
                     const Padded<T>& padded, const LinearQuantizer& q,
                     const Dims& dims, PredictorKind kind, bool one_layer,
                     std::size_t s0, std::size_t s1, std::size_t i0,
                     std::size_t i1, std::size_t i2, std::size_t i) {
  const bool interior = one_layer && i0 > 0 && (dims.rank < 2 || i1 > 0) &&
                        (dims.rank < 3 || i2 > 0);
  const double pred =
      interior ? predict_interior(rec, dims.rank, s0, s1, i)
               : predict(padded, dims.rank, kind,
                         static_cast<std::ptrdiff_t>(i0),
                         static_cast<std::ptrdiff_t>(i1),
                         static_cast<std::ptrdiff_t>(i2));
  const auto r = FpOps<T>::quantize(q, pred, data[i]);
  codes[i] = r.code;
  if (r.code != 0) {
    rec[i] = r.reconstructed;
    return true;
  }
  // History must hold what the decompressor will see: the truncation-decoded
  // value, not the original.
  rec[i] = FpOps<T>::roundtrip(data[i], q.precision());
  return false;
}

/// One decompress-side step for a quantized point (codes[i] != 0).
template <typename T>
inline T reconstruct_step(const std::uint16_t* codes, const T* rec,
                          const Padded<T>& padded, const LinearQuantizer& q,
                          const Dims& dims, PredictorKind kind,
                          bool one_layer, std::size_t s0, std::size_t s1,
                          std::size_t i0, std::size_t i1, std::size_t i2,
                          std::size_t i) {
  const bool interior = one_layer && i0 > 0 && (dims.rank < 2 || i1 > 0) &&
                        (dims.rank < 3 || i2 > 0);
  const double pred =
      interior ? predict_interior(rec, dims.rank, s0, s1, i)
               : predict(padded, dims.rank, kind,
                         static_cast<std::ptrdiff_t>(i0),
                         static_cast<std::ptrdiff_t>(i1),
                         static_cast<std::ptrdiff_t>(i2));
  return FpOps<T>::reconstruct(q, pred, codes[i]);
}

/// Raster-order reference PQD (the historical serial kernel).
template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_t(
    std::span<const T> data, const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  typename FpOps<T>::PqdType out;
  out.codes.resize(data.size());
  out.reconstructed.resize(data.size());
  T* rec = out.reconstructed.data();
  const Padded<T> padded{rec, n0, n1, n2};
  const std::size_t s1 = n2, s0 = n1 * n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  std::size_t i = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      for (std::size_t i2 = 0; i2 < n2; ++i2, ++i) {
        if (!pqd_step(data.data(), rec, out.codes.data(), padded, q, dims,
                      kind, one_layer, s0, s1, i0, i1, i2, i)) {
          out.unpredictable.push_back(data[i]);
        }
      }
    }
  }
  return out;
}

/// Raster-order reference reconstruction.
template <typename T>
std::vector<T> lorenzo_reconstruct_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  WAVESZ_REQUIRE(codes.size() == dims.count(),
                 "code count disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  std::vector<T> rec(codes.size());
  const Padded<T> padded{rec.data(), n0, n1, n2};
  const std::size_t s1 = n2, s0 = n1 * n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  std::size_t next_unpred = 0;
  std::size_t i = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      for (std::size_t i2 = 0; i2 < n2; ++i2, ++i) {
        if (codes[i] == 0) {
          WAVESZ_REQUIRE(next_unpred < unpredictable.size(),
                         "unpredictable stream exhausted");
          rec[i] = unpredictable[next_unpred++];
        } else {
          rec[i] = reconstruct_step(codes.data(), rec.data(), padded, q,
                                    dims, kind, one_layer, s0, s1, i0, i1,
                                    i2, i);
        }
      }
    }
  }
  WAVESZ_REQUIRE(next_unpred == unpredictable.size(),
                 "unpredictable stream has trailing values");
  return rec;
}

}  // namespace wavesz::sz::detail
