// Internal building blocks of the SZ-1.4 Lorenzo PQD kernels, shared by the
// raster-order reference loop (compressor.cpp) and the tiled anti-diagonal
// wavefront schedule (wavefront_pqd.cpp).
//
// The two schedules must produce bit-identical results — the wavefront mode
// only changes the visit order, never a point's arithmetic — so everything a
// point computes (prediction path selection, stencil term order, quantizer
// entry, history writeback) lives here exactly once and both kernels inline
// the same code.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace wavesz::sz::detail {

/// Zero-padded accessor over the reconstructed field: any index off the grid
/// reads as 0.0, which collapses the Lorenzo stencil to its reduced-dimension
/// form on borders.
template <typename T>
struct Padded {
  const T* rec;
  std::size_t d0, d1, d2;

  double at(std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) const {
    if (i0 < 0 || i1 < 0 || i2 < 0) return 0.0;
    return rec[(static_cast<std::size_t>(i0) * d1 +
                static_cast<std::size_t>(i1)) *
                   d2 +
               static_cast<std::size_t>(i2)];
  }
};

template <typename T>
double predict(const Padded<T>& p, int rank, PredictorKind kind,
               std::ptrdiff_t i0, std::ptrdiff_t i1, std::ptrdiff_t i2) {
  if (kind == PredictorKind::Lorenzo2Layer) {
    // Supported for 1D/2D (the 3D 2-layer stencil has 26 taps and is not
    // part of this reproduction); enforced at compress() time.
    if (rank == 1) {
      return lorenzo1d_2layer(p.at(i0 - 1, 0, 0), p.at(i0 - 2, 0, 0));
    }
    return lorenzo2d_2layer(p.at(i0, i1 - 1, 0), p.at(i0, i1 - 2, 0),
                            p.at(i0 - 1, i1, 0), p.at(i0 - 1, i1 - 1, 0),
                            p.at(i0 - 1, i1 - 2, 0), p.at(i0 - 2, i1, 0),
                            p.at(i0 - 2, i1 - 1, 0), p.at(i0 - 2, i1 - 2, 0));
  }
  switch (rank) {
    case 1:
      return lorenzo1d(p.at(i0 - 1, 0, 0));
    case 2:
      return lorenzo2d(p.at(i0 - 1, i1 - 1, 0), p.at(i0 - 1, i1, 0),
                       p.at(i0, i1 - 1, 0));
    default:
      return lorenzo3d(p.at(i0 - 1, i1 - 1, i2 - 1), p.at(i0 - 1, i1 - 1, i2),
                       p.at(i0 - 1, i1, i2 - 1), p.at(i0, i1 - 1, i2 - 1),
                       p.at(i0 - 1, i1, i2), p.at(i0, i1 - 1, i2),
                       p.at(i0, i1, i2 - 1));
  }
}

struct Shape {
  std::size_t n0, n1, n2;
};

inline Shape shape_of(const Dims& dims) {
  return {dims[0], dims.rank >= 2 ? dims[1] : 1,
          dims.rank >= 3 ? dims[2] : 1};
}

/// Branch-free Lorenzo prediction for interior points (every coordinate
/// > 0): direct strided loads, term order identical to lorenzo{1,2,3}d so
/// the result is bit-equal to the generic Padded path.
template <typename T>
double predict_interior(const T* rec, int rank, std::size_t s0,
                        std::size_t s1, std::size_t i) {
  switch (rank) {
    case 1:
      return static_cast<double>(rec[i - 1]);
    case 2:
      // Row stride of a rank-2 grid is s0 (= n1, since n2 == 1).
      return static_cast<double>(rec[i - s0]) +
             static_cast<double>(rec[i - 1]) -
             static_cast<double>(rec[i - s0 - 1]);
    default:
      return static_cast<double>(rec[i - s0]) +
             static_cast<double>(rec[i - s1]) +
             static_cast<double>(rec[i - 1]) -
             static_cast<double>(rec[i - s0 - s1]) -
             static_cast<double>(rec[i - s0 - 1]) -
             static_cast<double>(rec[i - s1 - 1]) +
             static_cast<double>(rec[i - s0 - s1 - 1]);
  }
}

/// Width-generic glue: the quantizer/truncation entry points differ between
/// float32 and float64 but the PQD structure does not.
template <typename T>
struct FpOps;

template <>
struct FpOps<float> {
  using PqdType = Pqd;
  static constexpr std::uint8_t kDtype = 0;
  static auto quantize(const LinearQuantizer& q, double pred, float orig) {
    return q.quantize(pred, orig);
  }
  static float reconstruct(const LinearQuantizer& q, double pred,
                           std::uint16_t code) {
    return q.reconstruct(pred, code);
  }
  static float roundtrip(float v, double bound) {
    return truncation_roundtrip(v, bound);
  }
  static std::vector<std::uint8_t> encode(std::span<const float> v,
                                          double bound) {
    return truncation_encode(v, bound);
  }
  static std::vector<float> decode(std::span<const std::uint8_t> blob,
                                   std::size_t count, double bound) {
    return truncation_decode(blob, count, bound);
  }
};

template <>
struct FpOps<double> {
  using PqdType = Pqd64;
  static constexpr std::uint8_t kDtype = 1;
  static auto quantize(const LinearQuantizer& q, double pred, double orig) {
    return q.quantize64(pred, orig);
  }
  static double reconstruct(const LinearQuantizer& q, double pred,
                            std::uint16_t code) {
    return q.reconstruct64(pred, code);
  }
  static double roundtrip(double v, double bound) {
    return truncation_roundtrip64(v, bound);
  }
  static std::vector<std::uint8_t> encode(std::span<const double> v,
                                          double bound) {
    return truncation_encode64(v, bound);
  }
  static std::vector<double> decode(std::span<const std::uint8_t> blob,
                                    std::size_t count, double bound) {
    return truncation_decode64(blob, count, bound);
  }
};

/// One compress-side PQD step at point (i0, i1, i2) / raster index i:
/// predict, quantize, write the code and the decompressor-visible history.
/// Returns false when the point is unpredictable (code 0) — the caller owns
/// collecting data[i] into the raster-order unpredictable stream.
template <typename T>
inline bool pqd_step(const T* data, T* rec, std::uint16_t* codes,
                     const Padded<T>& padded, const LinearQuantizer& q,
                     const Dims& dims, PredictorKind kind, bool one_layer,
                     std::size_t s0, std::size_t s1, std::size_t i0,
                     std::size_t i1, std::size_t i2, std::size_t i) {
  const bool interior = one_layer && i0 > 0 && (dims.rank < 2 || i1 > 0) &&
                        (dims.rank < 3 || i2 > 0);
  const double pred =
      interior ? predict_interior(rec, dims.rank, s0, s1, i)
               : predict(padded, dims.rank, kind,
                         static_cast<std::ptrdiff_t>(i0),
                         static_cast<std::ptrdiff_t>(i1),
                         static_cast<std::ptrdiff_t>(i2));
  const auto r = FpOps<T>::quantize(q, pred, data[i]);
  codes[i] = r.code;
  if (r.code != 0) {
    rec[i] = r.reconstructed;
    return true;
  }
  // History must hold what the decompressor will see: the truncation-decoded
  // value, not the original.
  rec[i] = FpOps<T>::roundtrip(data[i], q.precision());
  return false;
}

/// One decompress-side step for a quantized point (codes[i] != 0).
template <typename T>
inline T reconstruct_step(const std::uint16_t* codes, const T* rec,
                          const Padded<T>& padded, const LinearQuantizer& q,
                          const Dims& dims, PredictorKind kind,
                          bool one_layer, std::size_t s0, std::size_t s1,
                          std::size_t i0, std::size_t i1, std::size_t i2,
                          std::size_t i) {
  const bool interior = one_layer && i0 > 0 && (dims.rank < 2 || i1 > 0) &&
                        (dims.rank < 3 || i2 > 0);
  const double pred =
      interior ? predict_interior(rec, dims.rank, s0, s1, i)
               : predict(padded, dims.rank, kind,
                         static_cast<std::ptrdiff_t>(i0),
                         static_cast<std::ptrdiff_t>(i1),
                         static_cast<std::ptrdiff_t>(i2));
  return FpOps<T>::reconstruct(q, pred, codes[i]);
}

/// POD view of the quantizer for the simd kernels (which must not depend on
/// the sz layer).
inline simd::QuantSpec quant_spec(const LinearQuantizer& q) {
  return {q.precision(), q.inv_precision(),
          static_cast<std::int64_t>(q.capacity()),
          static_cast<std::int64_t>(q.radius())};
}

/// The vectorized PQD path covers the 1-layer Lorenzo rank-2 stencil (the
/// shape the wavefront schedule and vecSZ target); everything else runs the
/// scalar kernels regardless of the dispatch level.
inline bool simd_pqd_eligible(const Dims& dims, PredictorKind kind) {
  return kind == PredictorKind::Lorenzo1Layer && dims.rank == 2 &&
         simd::active() != simd::Level::Scalar;
}

/// Tile edge of the serial SIMD schedule: big enough that interior
/// anti-diagonal runs fill whole vector chunks, small enough that a tile's
/// working set (4 arrays x 64 rows) stays cache-resident. Matches the
/// wavefront tile edge, so both schedules cut identical diagonals.
inline constexpr std::size_t kSimdTile = 64;

/// Compress-side PQD of one rank-2 tile [lo0,hi0) x [lo1,hi1) in tile-local
/// anti-diagonal order: grid-border lanes (i0 == 0 or i1 == 0, reduced
/// stencil) are peeled to scalar pqd_step, interior lanes run through
/// simd::pqd2d_diag in kMaxDiagLanes chunks, and unpredictable lanes get
/// their history patched (truncation roundtrip) before the next diagonal —
/// the exact writeback order of the raster kernel, just revisited.
/// Requires every tile above and left of this one to be complete.
template <typename T>
void pqd_tile_simd(const T* data, T* rec, std::uint16_t* codes,
                   const Padded<T>& padded, const LinearQuantizer& q,
                   const Dims& dims, PredictorKind kind,
                   const simd::QuantSpec& spec, std::size_t s0,
                   std::size_t lo0, std::size_t hi0, std::size_t lo1,
                   std::size_t hi1) {
  const std::size_t h = hi0 - lo0, w = hi1 - lo1;
  const std::size_t st = s0 - 1;
  for (std::size_t ld = 0; ld + 1 < h + w; ++ld) {
    std::size_t l0 = ld >= w ? ld - w + 1 : 0;
    std::size_t l0end = std::min(h, ld + 1);
    if (lo0 == 0 && l0 == 0) {
      // Lane (0, lo1 + ld): top grid row, reduced stencil.
      const std::size_t i1 = lo1 + ld;
      pqd_step(data, rec, codes, padded, q, dims, kind, true, s0,
               std::size_t{1}, std::size_t{0}, i1, std::size_t{0}, i1);
      ++l0;
    }
    const bool tail = lo1 == 0 && ld < h && l0end > l0;
    if (tail) --l0end;  // lane (lo0 + ld, 0): left grid column
    std::size_t run = l0end > l0 ? l0end - l0 : 0;
    std::size_t base = (lo0 + l0) * s0 + (lo1 + ld - l0);
    while (run > 0) {
      const std::size_t chunk = std::min(run, simd::kMaxDiagLanes);
      std::uint64_t miss =
          simd::pqd2d_diag(data, rec, codes, base, s0, chunk, spec);
      while (miss != 0) {
        const auto j = static_cast<std::size_t>(std::countr_zero(miss));
        miss &= miss - 1;
        const std::size_t u = base + j * st;
        rec[u] = FpOps<T>::roundtrip(data[u], q.precision());
      }
      base += chunk * st;
      run -= chunk;
    }
    if (tail) {
      const std::size_t i0 = lo0 + ld;
      pqd_step(data, rec, codes, padded, q, dims, kind, true, s0,
               std::size_t{1}, i0, std::size_t{0}, std::size_t{0}, i0 * s0);
    }
  }
}

/// Decode-side counterpart of pqd_tile_simd: same lane geometry, code-0
/// lanes skipped (the caller pre-places their unpredictable values in rec).
template <typename T>
void reconstruct_tile_simd(const std::uint16_t* codes, T* rec,
                           const Padded<T>& padded, const LinearQuantizer& q,
                           const Dims& dims, PredictorKind kind,
                           const simd::QuantSpec& spec, std::size_t s0,
                           std::size_t lo0, std::size_t hi0, std::size_t lo1,
                           std::size_t hi1) {
  const std::size_t h = hi0 - lo0, w = hi1 - lo1;
  for (std::size_t ld = 0; ld + 1 < h + w; ++ld) {
    std::size_t l0 = ld >= w ? ld - w + 1 : 0;
    std::size_t l0end = std::min(h, ld + 1);
    if (lo0 == 0 && l0 == 0) {
      const std::size_t i1 = lo1 + ld;
      if (codes[i1] != 0) {
        rec[i1] = reconstruct_step(codes, rec, padded, q, dims, kind, true,
                                   s0, std::size_t{1}, std::size_t{0}, i1,
                                   std::size_t{0}, i1);
      }
      ++l0;
    }
    const bool tail = lo1 == 0 && ld < h && l0end > l0;
    if (tail) --l0end;
    std::size_t run = l0end > l0 ? l0end - l0 : 0;
    std::size_t base = (lo0 + l0) * s0 + (lo1 + ld - l0);
    while (run > 0) {
      const std::size_t chunk = std::min(run, simd::kMaxDiagLanes);
      simd::reconstruct2d_diag(codes, rec, base, s0, chunk, spec);
      base += chunk * (s0 - 1);
      run -= chunk;
    }
    if (tail) {
      const std::size_t i0 = lo0 + ld;
      const std::size_t i = i0 * s0;
      if (codes[i] != 0) {
        rec[i] = reconstruct_step(codes, rec, padded, q, dims, kind, true,
                                  s0, std::size_t{1}, i0, std::size_t{0},
                                  std::size_t{0}, i);
      }
    }
  }
}

/// Raster-order reference PQD (the historical serial kernel; stays as the
/// runtime-selectable oracle for the vectorized schedule).
template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_scalar_t(
    std::span<const T> data, const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  typename FpOps<T>::PqdType out;
  out.codes.resize(data.size());
  out.reconstructed.resize(data.size());
  T* rec = out.reconstructed.data();
  const Padded<T> padded{rec, n0, n1, n2};
  const std::size_t s1 = n2, s0 = n1 * n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  std::size_t i = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      for (std::size_t i2 = 0; i2 < n2; ++i2, ++i) {
        if (!pqd_step(data.data(), rec, out.codes.data(), padded, q, dims,
                      kind, one_layer, s0, s1, i0, i1, i2, i)) {
          out.unpredictable.push_back(data[i]);
        }
      }
    }
  }
  return out;
}

/// Raster-order reference reconstruction (scalar oracle).
template <typename T>
std::vector<T> lorenzo_reconstruct_scalar_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  WAVESZ_REQUIRE(codes.size() == dims.count(),
                 "code count disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  std::vector<T> rec(codes.size());
  const Padded<T> padded{rec.data(), n0, n1, n2};
  const std::size_t s1 = n2, s0 = n1 * n2;
  const bool one_layer = kind == PredictorKind::Lorenzo1Layer;
  std::size_t next_unpred = 0;
  std::size_t i = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      for (std::size_t i2 = 0; i2 < n2; ++i2, ++i) {
        if (codes[i] == 0) {
          WAVESZ_REQUIRE(next_unpred < unpredictable.size(),
                         "unpredictable stream exhausted");
          rec[i] = unpredictable[next_unpred++];
        } else {
          rec[i] = reconstruct_step(codes.data(), rec.data(), padded, q,
                                    dims, kind, one_layer, s0, s1, i0, i1,
                                    i2, i);
        }
      }
    }
  }
  WAVESZ_REQUIRE(next_unpred == unpredictable.size(),
                 "unpredictable stream has trailing values");
  return rec;
}

/// Serial rank-2 PQD over cache-sized tiles in tile-raster order (each
/// tile's up/left dependencies complete before it runs), with the tile
/// interior vectorized along anti-diagonals. Bit-identical to the raster
/// reference: only the visit order changes, never a point's arithmetic.
template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_simd2d_t(
    std::span<const T> data, const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind) {
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  typename FpOps<T>::PqdType out;
  out.codes.resize(data.size());
  out.reconstructed.resize(data.size());
  T* rec = out.reconstructed.data();
  const Padded<T> padded{rec, n0, n1, n2};
  const std::size_t s0 = n1 * n2;  // n2 == 1 at rank 2
  const simd::QuantSpec spec = quant_spec(q);
  for (std::size_t t0 = 0; t0 < n0; t0 += kSimdTile) {
    for (std::size_t t1 = 0; t1 < n1; t1 += kSimdTile) {
      pqd_tile_simd(data.data(), rec, out.codes.data(), padded, q, dims,
                    kind, spec, s0, t0, std::min(n0, t0 + kSimdTile), t1,
                    std::min(n1, t1 + kSimdTile));
    }
  }
  // The unpredictable stream is defined in raster order; splice it from the
  // code plane after the tile sweep.
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (out.codes[i] == 0) out.unpredictable.push_back(data[i]);
  }
  return out;
}

template <typename T>
std::vector<T> lorenzo_reconstruct_simd2d_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q, PredictorKind kind) {
  WAVESZ_REQUIRE(codes.size() == dims.count(),
                 "code count disagrees with dims");
  const auto [n0, n1, n2] = shape_of(dims);
  std::vector<T> rec(codes.size());
  const Padded<T> padded{rec.data(), n0, n1, n2};
  const std::size_t s0 = n1 * n2;
  const simd::QuantSpec spec = quant_spec(q);
  // Pre-place the raster-order unpredictable stream into its code-0 slots so
  // tiles only ever read finished history.
  std::size_t next_unpred = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] == 0) {
      WAVESZ_REQUIRE(next_unpred < unpredictable.size(),
                     "unpredictable stream exhausted");
      rec[i] = unpredictable[next_unpred++];
    }
  }
  WAVESZ_REQUIRE(next_unpred == unpredictable.size(),
                 "unpredictable stream has trailing values");
  for (std::size_t t0 = 0; t0 < n0; t0 += kSimdTile) {
    for (std::size_t t1 = 0; t1 < n1; t1 += kSimdTile) {
      reconstruct_tile_simd(codes.data(), rec.data(), padded, q, dims, kind,
                            spec, s0, t0, std::min(n0, t0 + kSimdTile), t1,
                            std::min(n1, t1 + kSimdTile));
    }
  }
  return rec;
}

/// Serial PQD entry point: the vectorized schedule when the shape and the
/// active simd level allow it, the raster reference otherwise.
template <typename T>
typename FpOps<T>::PqdType lorenzo_pqd_t(
    std::span<const T> data, const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  if (simd_pqd_eligible(dims, kind)) {
    return lorenzo_pqd_simd2d_t<T>(data, dims, q, kind);
  }
  return lorenzo_pqd_scalar_t<T>(data, dims, q, kind);
}

template <typename T>
std::vector<T> lorenzo_reconstruct_t(
    std::span<const std::uint16_t> codes, std::span<const T> unpredictable,
    const Dims& dims, const LinearQuantizer& q,
    PredictorKind kind = PredictorKind::Lorenzo1Layer) {
  if (simd_pqd_eligible(dims, kind)) {
    return lorenzo_reconstruct_simd2d_t<T>(codes, unpredictable, dims, q,
                                           kind);
  }
  return lorenzo_reconstruct_scalar_t<T>(codes, unpredictable, dims, q,
                                         kind);
}

}  // namespace wavesz::sz::detail
