#include "sz/omp.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/decode_guard.hpp"
#include "util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace wavesz::sz {
namespace {

constexpr std::uint32_t kOmpMagic = 0x4f5a5357u;  // "WSZO"

struct Slab {
  std::size_t offset_points = 0;
  Dims dims = Dims::d1(1);
};

std::vector<Slab> partition(const Dims& dims, int blocks) {
  const std::size_t n0 = dims[0];
  const auto want = static_cast<std::size_t>(std::max(1, blocks));
  const std::size_t count = std::min(want, n0);
  const std::size_t stride =
      dims.rank >= 2 ? dims[1] * (dims.rank >= 3 ? dims[2] : 1) : 1;
  std::vector<Slab> slabs;
  std::size_t start = 0;
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t rows = n0 / count + (b < n0 % count ? 1 : 0);
    Slab s;
    s.offset_points = start * stride;
    if (dims.rank == 1) {
      s.dims = Dims::d1(rows);
    } else if (dims.rank == 2) {
      s.dims = Dims::d2(rows, dims[1]);
    } else {
      s.dims = Dims::d3(rows, dims[1], dims[2]);
    }
    slabs.push_back(s);
    start += rows;
  }
  return slabs;
}

}  // namespace

OmpCompressed compress_omp(std::span<const float> data, const Dims& dims,
                           const Config& cfg, int threads) {
  // Hardware sampling only — per-slab sz::compress calls already feed the
  // CompressNs/ratio histograms; binding them here too would double-count.
  telemetry::Span span_all(telemetry::spans::kSzCompressOmp,
                           telemetry::kSampleHw);
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  int nthreads = threads;
#ifdef _OPENMP
  if (nthreads <= 0) nthreads = omp_get_max_threads();
#else
  if (nthreads <= 0) nthreads = 1;
#endif
  const auto slabs = partition(dims, nthreads);
  std::vector<std::vector<std::uint8_t>> pieces(slabs.size());

  // Slab-level parallelism owns the thread budget here: pin the per-slab
  // entropy back-end and PQD kernels to the serial path so the two levels
  // never multiply (slab-level × chunk-level oversubscription). A degenerate
  // single-slab partition keeps the caller's codec_threads/pqd_threads and
  // parallelizes inside the slab instead.
  Config slab_cfg = cfg;
  if (slabs.size() > 1) {
    slab_cfg.codec_threads = 1;
    slab_cfg.pqd_threads = 1;
  }

  std::exception_ptr compress_failure;
#ifdef _OPENMP
#pragma omp parallel for num_threads(nthreads) schedule(dynamic)
#endif
  for (std::size_t b = 0; b < slabs.size(); ++b) {
    try {
      telemetry::Span span(telemetry::spans::kSlabCompress);
      const Slab& s = slabs[b];
      pieces[b] = compress(data.subspan(s.offset_points, s.dims.count()),
                           s.dims, slab_cfg)
                      .bytes;
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (!compress_failure) compress_failure = std::current_exception();
    }
  }
  if (compress_failure) std::rethrow_exception(compress_failure);
  telemetry::counter_add(telemetry::Counter::OmpSlabs, slabs.size());

  ByteWriter w;
  w.u32(kOmpMagic);
  w.u8(static_cast<std::uint8_t>(dims.rank));
  for (int i = 0; i < 3; ++i) w.u64(dims.extent[static_cast<std::size_t>(i)]);
  w.u32(static_cast<std::uint32_t>(pieces.size()));
  for (const auto& p : pieces) {
    w.u64(p.size());
    w.bytes(p);
  }
  OmpCompressed out;
  out.bytes = w.take();
  out.block_count = pieces.size();
  return out;
}

std::vector<float> decompress_omp(std::span<const std::uint8_t> bytes,
                                  Dims* dims_out) {
  telemetry::Span span_all(telemetry::spans::kSzDecompressOmp,
                           telemetry::kSampleHw);
  ByteReader r(bytes);
  WAVESZ_REQUIRE(r.u32() == kOmpMagic, "not an OpenMP SZ container");
  const int rank = r.u8();
  WAVESZ_REQUIRE(rank >= 1 && rank <= 3, "invalid rank");
  std::array<std::size_t, 3> ext{};
  for (auto& e : ext) {
    e = static_cast<std::size_t>(r.u64());
    WAVESZ_REQUIRE(e > 0, "zero extent in container");
  }
  const Dims dims{ext, rank};
  // Reject forged extents (overflowing or above the decode cap) before the
  // slab layout or the output allocation is derived from them.
  const std::size_t total_points = guarded_count(dims, sizeof(float));
  const std::uint32_t blocks = r.u32();
  WAVESZ_REQUIRE(blocks > 0 && blocks <= dims[0],
                 "implausible block count");

  std::vector<std::vector<std::uint8_t>> pieces(blocks);
  for (auto& p : pieces) {
    const std::uint64_t size = r.u64();
    auto view = r.bytes(size);
    p.assign(view.begin(), view.end());
  }

  // The compressor partitioned deterministically, so re-deriving the slab
  // layout gives every block's final offset up front: allocate the output
  // once and let each thread decode straight into its slot — no per-part
  // buffers surviving the loop, no serial insert-per-part reassembly.
  // guarded_count() above rejected overflowing/above-cap extents, so the
  // allocation here is bounded by the decode cap; the catch stays as a
  // belt for hosts without even cap-sized memory.
  WAVESZ_REQUIRE(blocks <= 0x7fffffffu, "implausible block count");
  std::vector<Slab> slabs;
  std::vector<float> out;
  try {
    slabs = partition(dims, static_cast<int>(blocks));
    out.resize(total_points);
  } catch (const std::bad_alloc&) {
    throw Error("container claims an implausible field size");
  } catch (const std::length_error&) {
    throw Error("container claims an implausible field size");
  }
  WAVESZ_REQUIRE(slabs.size() == blocks, "slab layout disagrees with count");
  // Exceptions must not escape an OpenMP region (that terminates the
  // process); capture the first one and rethrow it afterwards.
  std::exception_ptr failure;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t b = 0; b < pieces.size(); ++b) {
    try {
      telemetry::Span span(telemetry::spans::kSlabDecompress);
      const auto part = decompress(pieces[b]);
      WAVESZ_REQUIRE(part.size() == slabs[b].dims.count(),
                     "slab payload size disagrees with layout");
      // Overflow-safe bound: extents this large wrap count(), so the slab
      // offsets cannot be trusted against the allocated size.
      WAVESZ_REQUIRE(slabs[b].offset_points <= out.size() &&
                         part.size() <= out.size() - slabs[b].offset_points,
                     "slab offset outside the reassembled field");
      std::copy(part.begin(), part.end(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  slabs[b].offset_points));
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);
  telemetry::counter_add(telemetry::Counter::OmpSlabs, pieces.size());

  if (dims_out != nullptr) *dims_out = dims;
  return out;
}

}  // namespace wavesz::sz
