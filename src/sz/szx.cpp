#include "sz/szx.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <type_traits>

#include "sz/container.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace wavesz::sz::detail {
namespace {

constexpr std::uint32_t kSzxTag = 0x42585a53u;  // "SZXB"
constexpr std::uint8_t kTagConst = 0x00;
constexpr std::uint8_t kTagRaw = 0xFF;
/// Widest packed delta: quantized magnitudes are capped at 2^45 (below), so
/// a block's q-span fits 46 bits; anything wider in a stream is forged.
constexpr int kMaxDeltaBits = 52;
/// Quantized values are kept well inside int64 so llrint never overflows
/// and block spans stay packable.
constexpr double kMaxQuantMag = 0x1p45;

/// Double -> T with the out-of-range float cast (UB) replaced by the
/// saturating-to-infinity behaviour every decoder of this format must
/// share. Only reachable from forged streams — encode-side verification
/// never lets an out-of-range value survive quantization.
template <typename T>
T value_from_double(double dv) {
  if constexpr (std::is_same_v<T, float>) {
    constexpr double lim =
        static_cast<double>(std::numeric_limits<float>::max());
    if (dv > lim) return std::numeric_limits<float>::infinity();
    if (dv < -lim) return -std::numeric_limits<float>::infinity();
    return static_cast<float>(dv);  // NaN and in-range fall through
  } else {
    return dv;
  }
}

template <typename T>
void write_value(ByteWriter& w, T v) {
  if constexpr (std::is_same_v<T, float>) {
    w.f32(v);
  } else {
    w.f64(v);
  }
}

template <typename T>
T read_value(ByteReader& r) {
  if constexpr (std::is_same_v<T, float>) {
    return r.f32();
  } else {
    return r.f64();
  }
}

}  // namespace

template <typename T>
Compressed szx_compress_t(std::span<const T> data, const Dims& dims,
                          const Config& cfg) {
  telemetry::Span span_all(telemetry::spans::kSzCompress,
                           telemetry::Histo::CompressNs, telemetry::kSampleHw);
  WAVESZ_REQUIRE(data.size() == dims.count(), "data size disagrees with dims");
  WAVESZ_REQUIRE(cfg.szx_block_elems > 0, "szx_block_elems must be positive");
  double range = 0.0;
  if (cfg.mode == EbMode::ValueRangeRelative) {
    telemetry::Span span(telemetry::spans::kValueRange);
    range = value_range(data, resolve_thread_budget(cfg.pqd_threads));
  }
  const double bound = resolve_bound(cfg, range);
  // A NaN-poisoned range (NaN first element in relative mode) surfaces here
  // instead of as llrint UB deep in the block loop; NaN *values* are fine —
  // their blocks demote to the raw fallback.
  WAVESZ_REQUIRE(std::isfinite(bound) && bound > 0.0,
                 "szx requires a positive finite absolute bound "
                 "(NaN-poisoned value range?)");
  const double two_eb = 2.0 * bound;
  const double inv_two_eb = 1.0 / two_eb;

  const std::size_t be = cfg.szx_block_elems;
  const std::size_t n = data.size();
  ByteWriter pw;
  pw.u32(kSzxTag);
  pw.u32(cfg.szx_block_elems);
  pw.u64((n + be - 1) / be);

  std::vector<std::int64_t> q(be);
  std::vector<std::uint8_t> packed;
  std::uint64_t raw_values = 0;
  for (std::size_t at = 0; at < n; at += be) {
    const std::size_t m = std::min(be, n - at);
    bool quantizable = true;
    std::int64_t qmin = 0, qmax = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const double v = static_cast<double>(data[at + i]);
      const double scaled = v * inv_two_eb;
      // The fabs test is false for NaN, so non-finite values (and values
      // whose quantized magnitude would overflow the packer) demote the
      // block without ever reaching llrint.
      if (!(std::fabs(scaled) < kMaxQuantMag)) {
        quantizable = false;
        break;
      }
      const std::int64_t qi = std::llrint(scaled);
      const T dec =
          value_from_double<T>(static_cast<double>(qi) * two_eb);
      if (!(std::fabs(static_cast<double>(dec) - v) <= bound)) {
        quantizable = false;
        break;
      }
      q[i] = qi;
      qmin = i == 0 ? qi : std::min(qmin, qi);
      qmax = i == 0 ? qi : std::max(qmax, qi);
    }
    if (!quantizable) {
      pw.u8(kTagRaw);
      for (std::size_t i = 0; i < m; ++i) write_value(pw, data[at + i]);
      raw_values += m;
      continue;
    }
    if (qmin == qmax) {
      pw.u8(kTagConst);
      pw.u64(static_cast<std::uint64_t>(qmin));
      continue;
    }
    const std::uint64_t span_u = static_cast<std::uint64_t>(qmax) -
                                 static_cast<std::uint64_t>(qmin);
    const int k = static_cast<int>(std::bit_width(span_u));
    pw.u8(static_cast<std::uint8_t>(k));
    pw.u64(static_cast<std::uint64_t>(qmin));
    packed.clear();
    std::uint64_t acc = 0;
    int nbits = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t d = static_cast<std::uint64_t>(q[i]) -
                              static_cast<std::uint64_t>(qmin);
      acc |= d << nbits;  // nbits < 8 and k <= 46: no overflow
      nbits += k;
      while (nbits >= 8) {
        packed.push_back(static_cast<std::uint8_t>(acc & 0xff));
        acc >>= 8;
        nbits -= 8;
      }
    }
    if (nbits > 0) packed.push_back(static_cast<std::uint8_t>(acc & 0xff));
    pw.bytes(packed);
  }

  telemetry::counter_add(telemetry::Counter::QuantUnpredictable, raw_values);
  telemetry::counter_add(telemetry::Counter::QuantPredictable,
                         n - raw_values);
  Compressed out;
  out.header.variant = Variant::SzxFast;
  out.header.dims = dims;
  out.header.mode = cfg.mode;
  out.header.base = cfg.base;
  out.header.eb_requested = cfg.error_bound;
  out.header.eb_absolute = bound;
  out.header.quant_bits = cfg.quant_bits;
  out.header.huffman = false;
  out.header.gzip_level = cfg.gzip_level;
  out.header.aux = 0;
  out.header.dtype = std::is_same_v<T, double> ? 1 : 0;
  out.header.point_count = n;
  out.header.unpredictable_count = raw_values;
  out.header.version = 1;

  auto payload = pw.take();
  telemetry::counter_add(telemetry::Counter::CodeBytesIn, n * sizeof(T));
  telemetry::counter_add(telemetry::Counter::CodeBytesOut, payload.size());
  out.code_blob_bytes = payload.size();
  out.unpred_blob_bytes = 0;
  ByteWriter w;
  write_header(w, out.header);
  write_section(w, payload);
  out.bytes = w.take();
  if (!out.bytes.empty()) {
    telemetry::observe(telemetry::Histo::CompressRatioMilli,
                       data.size_bytes() * 1000 / out.bytes.size());
  }
  return out;
}

template <typename T>
// No histogram/hw binding here: every caller (sz decompress_t, the wave
// container dispatch, region decode) already holds an instrumented span, and
// nesting two would double-count DecompressNs.
std::vector<T> szx_decompress_t(std::span<const std::uint8_t> bytes,
                                Dims* dims_out) {
  telemetry::Span span_all(telemetry::spans::kSzDecompress);
  ByteReader r(bytes);
  const ContainerHeader h = read_header(r);
  WAVESZ_REQUIRE(h.variant == Variant::SzxFast,
                 "container is not an SZx fast stream");
  WAVESZ_REQUIRE(h.version == 1, "SZx containers are index-less (v1)");
  WAVESZ_REQUIRE(h.dtype == (std::is_same_v<T, double> ? 1 : 0),
                 "container value type mismatch (float32 vs float64)");
  const auto payload = read_section(r);
  ByteReader pr(payload);
  WAVESZ_REQUIRE(pr.u32() == kSzxTag, "bad SZx section tag");
  const std::uint32_t be = pr.u32();
  WAVESZ_REQUIRE(be > 0, "SZx block size must be positive");
  const std::uint64_t nblocks = pr.u64();
  const std::uint64_t n = h.point_count;  // guarded by read_header
  WAVESZ_REQUIRE(nblocks == (n + be - 1) / be,
                 "SZx block count disagrees with header");
  const double two_eb = 2.0 * h.eb_absolute;

  std::vector<T> out;
  out.reserve(n);
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const auto m = static_cast<std::size_t>(
        std::min<std::uint64_t>(be, n - out.size()));
    const std::uint8_t tag = pr.u8();
    if (tag == kTagRaw) {
      for (std::size_t i = 0; i < m; ++i) out.push_back(read_value<T>(pr));
    } else if (tag == kTagConst) {
      const auto qb = static_cast<std::int64_t>(pr.u64());
      const T dec =
          value_from_double<T>(static_cast<double>(qb) * two_eb);
      out.insert(out.end(), m, dec);
    } else {
      const int k = tag;
      WAVESZ_REQUIRE(k <= kMaxDeltaBits, "SZx delta width out of range");
      const std::uint64_t q_min = pr.u64();
      // m <= 2^32 and k <= 52, so the byte count fits comfortably.
      const auto packed = pr.bytes((static_cast<std::uint64_t>(m) *
                                        static_cast<std::uint64_t>(k) +
                                    7) /
                                   8);
      const std::uint64_t mask = (std::uint64_t{1} << k) - 1;
      std::uint64_t acc = 0;
      int nbits = 0;
      std::size_t p = 0;
      for (std::size_t i = 0; i < m; ++i) {
        while (nbits < k) {
          acc |= static_cast<std::uint64_t>(packed[p++]) << nbits;
          nbits += 8;
        }
        // q_min + delta in uint64 (wraps, never UB) — forged q_min/delta
        // pairs produce a garbage value, not undefined behaviour.
        const auto qv = static_cast<std::int64_t>(q_min + (acc & mask));
        acc >>= k;
        nbits -= k;
        out.push_back(
            value_from_double<T>(static_cast<double>(qv) * two_eb));
      }
    }
  }
  WAVESZ_REQUIRE(pr.remaining() == 0, "trailing bytes in SZx section");
  if (dims_out != nullptr) *dims_out = h.dims;
  return out;
}

template Compressed szx_compress_t<float>(std::span<const float>, const Dims&,
                                          const Config&);
template Compressed szx_compress_t<double>(std::span<const double>,
                                           const Dims&, const Config&);
template std::vector<float> szx_decompress_t<float>(
    std::span<const std::uint8_t>, Dims*);
template std::vector<double> szx_decompress_t<double>(
    std::span<const std::uint8_t>, Dims*);

}  // namespace wavesz::sz::detail
