// SZx-inspired ultra-fast block codec (PAPERS.md: "SZx: an Ultra-fast Error-
// bounded Lossy Compressor"): fixed-size blocks of error-bound quantized
// values with constant-block detection and per-block bit-plane truncation of
// the quantized integers — no prediction, no Huffman, no DEFLATE. Roughly
// 3-5x the compression throughput of the SZ-1.4 pipeline at a modest ratio
// cost; selected with Config::codec = Codec::Szx (the Config::ultrafast()
// profile) and dispatched through sz::compress/decompress on the container
// variant.
//
// Wire format (container variant SzxFast, always a v1 index-less container;
// one section follows the header, laid out little-endian):
//   u32 tag 'SZXB' | u32 block_elems | u64 block_count
//   then per block (m = elements in this block, <= block_elems):
//     u8 0x00: constant block — i64 q; every value decodes to q * 2eb
//     u8 0xFF: raw block — m IEEE values verbatim (lossless fallback for
//              NaN/Inf values and blocks whose quantization misses the
//              bound)
//     u8 k (1..52): i64 q_min, then ceil(m*k/8) bytes of LSB-first packed
//              k-bit deltas; value i decodes to (q_min + delta_i) * 2eb
// where 2eb = 2 * eb_absolute from the header. Every quantized value is
// verified against the bound at encode time (|decoded - v| <= eb_absolute);
// any miss demotes the whole block to raw, so the error bound holds for
// every input, NaN/Inf payloads included (raw blocks are bit-exact).
// header.unpredictable_count records the number of raw-block values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"

namespace wavesz::sz::detail {

/// SZx-mode compress/decompress, instantiated for float and double in
/// szx.cpp. Reached through sz::compress (cfg.codec == Codec::Szx) and
/// sz::decompress (container variant SzxFast) rather than called directly.
template <typename T>
Compressed szx_compress_t(std::span<const T> data, const Dims& dims,
                          const Config& cfg);

template <typename T>
std::vector<T> szx_decompress_t(std::span<const std::uint8_t> bytes,
                                Dims* dims_out);

}  // namespace wavesz::sz::detail
