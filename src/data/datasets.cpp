#include "data/datasets.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavesz::data {
namespace {

std::size_t scaled(std::size_t extent, unsigned scale) {
  return std::max<std::size_t>(8, extent / std::max(1u, scale));
}

Dims scale_dims(const Dims& d, unsigned s) {
  if (d.rank == 2) return Dims::d2(scaled(d[0], s), scaled(d[1], s));
  return Dims::d3(scaled(d[0], s), scaled(d[1], s), scaled(d[2], s));
}

FieldRecipe cloud_fraction(std::uint64_t seed, double gain,
                           double freq = 3.5) {
  FieldRecipe r;
  r.seed = seed;
  r.wave_components = 7;
  r.base_frequency = freq;
  r.octave_decay = 0.62;   // keep fine structure: cloud edges are rough
  r.gaussian_bumps = 10;
  r.plateau_gain = gain;   // saturated 0/1 plateaus like CLDLOW/CLDHGH
  r.noise_amplitude = 1e-3;  // pre-saturation: plateaus stay exactly flat
  return r;
}

FieldRecipe smooth_scalar(std::uint64_t seed, double freq, double amp,
                          double offset, double noise) {
  FieldRecipe r;
  r.seed = seed;
  r.wave_components = 5;
  r.base_frequency = freq;
  r.octave_decay = 0.45;  // smooth bulk, like the physical fields
  r.gaussian_bumps = 4;
  r.amplitude = amp;
  r.offset = offset;
  r.noise_amplitude = noise;
  return r;
}

FieldRecipe density(std::uint64_t seed) {
  FieldRecipe r;
  r.seed = seed;
  r.wave_components = 7;
  r.base_frequency = 4.0;
  r.octave_decay = 0.62;
  r.gaussian_bumps = 8;
  r.lognormal = true;  // log-normal high-dynamic-range density
  r.amplitude = 1e9;   // baryon-density-like magnitudes
  r.noise_amplitude = 1e-4;
  return r;
}

}  // namespace

std::string_view persona_name(Persona p) {
  switch (p) {
    case Persona::CesmAtm: return "CESM-ATM";
    case Persona::Hurricane: return "Hurricane";
    case Persona::Nyx: return "NYX";
  }
  return "?";
}

Dims persona_dims(Persona p, unsigned scale) {
  switch (p) {
    case Persona::CesmAtm: return scale_dims(Dims::d2(1800, 3600), scale);
    case Persona::Hurricane:
      return scale_dims(Dims::d3(100, 500, 500), scale);
    case Persona::Nyx: return scale_dims(Dims::d3(512, 512, 512), scale);
  }
  throw Error("unknown persona");
}

std::vector<Field> fields(Persona p, unsigned scale) {
  const Dims dims = persona_dims(p, scale);
  std::vector<Field> out;
  auto add = [&](std::string name, FieldRecipe r) {
    // Frequencies are authored for the paper-native grids; dividing by the
    // downscale factor keeps the cells-per-wavelength statistics — and thus
    // compressor behaviour — invariant across scales.
    r.base_frequency =
        std::max(0.3, r.base_frequency / std::max(1u, scale));
    out.push_back(Field{p, std::move(name), dims, r});
  };
  switch (p) {
    case Persona::CesmAtm:
      add("CLDLOW", cloud_fraction(101, 2.2));
      add("CLDHGH", cloud_fraction(102, 1.8));
      add("CLDMED", cloud_fraction(103, 2.0));
      add("FLDS", smooth_scalar(104, 2.0, 160.0, 320.0, 5e-5));
      add("FSNS", smooth_scalar(105, 2.8, 220.0, 180.0, 1e-4));
      add("PS", smooth_scalar(106, 1.6, 4.5e3, 9.8e4, 2e-5));
      add("TS", smooth_scalar(107, 1.8, 45.0, 270.0, 5e-5));
      add("U10", smooth_scalar(108, 3.4, 8.0, 2.0, 3e-4));
      break;
    case Persona::Hurricane:
      // Hurricane fields are turbulent: markedly more high-frequency
      // energy per cell than the climate persona.
      add("CLOUDf48", cloud_fraction(201, 1.5, 7.0));
      add("Uf48", smooth_scalar(202, 8.0, 32.0, -5.0, 4e-4));
      add("Vf48", smooth_scalar(203, 8.0, 28.0, 3.0, 4e-4));
      add("Wf48", smooth_scalar(204, 10.0, 6.0, 0.0, 8e-4));
      add("Pf48", smooth_scalar(205, 4.0, 900.0, 5e4, 4e-5));
      add("TCf48", smooth_scalar(206, 6.0, 35.0, 250.0, 1.6e-4));
      break;
    case Persona::Nyx:
      add("baryon_density", density(301));
      add("dark_matter_density", density(302));
      add("temperature", smooth_scalar(303, 3.2, 2.5e4, 4e4, 1e-4));
      add("velocity_x", smooth_scalar(304, 2.6, 3.5e5, 0.0, 2e-4));
      break;
  }
  return out;
}

Field field(Persona p, std::string_view name, unsigned scale) {
  for (auto& f : fields(p, scale)) {
    if (f.name == name) return f;
  }
  throw Error("unknown field '" + std::string(name) + "' in persona " +
              std::string(persona_name(p)));
}

std::vector<Persona> all_personas() {
  return {Persona::CesmAtm, Persona::Hurricane, Persona::Nyx};
}

}  // namespace wavesz::data
