#include "data/io.hpp"

#include <cstdint>
#include <fstream>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace wavesz::data {
namespace {

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  WAVESZ_REQUIRE(in.good(), "cannot open '" + path.string() + "' for reading");
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> buf(size);
  // wavesz-lint: allow(raw-memory) iostream's read() contract is char*;
  // uint8_t* -> char* is the one cast the standard blesses for byte I/O.
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(size));
  WAVESZ_REQUIRE(in.good(), "short read from '" + path.string() + "'");
  return buf;
}

void dump(const std::filesystem::path& path, const void* data,
          std::size_t bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WAVESZ_REQUIRE(out.good(), "cannot open '" + path.string() + "' for writing");
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  WAVESZ_REQUIRE(out.good(), "short write to '" + path.string() + "'");
}

}  // namespace

std::vector<float> read_f32(const std::filesystem::path& path) {
  auto bytes = slurp(path);
  WAVESZ_REQUIRE(bytes.size() % sizeof(float) == 0,
                 "'" + path.string() + "' is not a float32 array");
  std::vector<float> out(bytes.size() / sizeof(float));
  copy_bytes(out.data(), bytes.data(), bytes.size());
  return out;
}

void write_f32(const std::filesystem::path& path,
               std::span<const float> data) {
  dump(path, data.data(), data.size() * sizeof(float));
}

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  return slurp(path);
}

void write_bytes(const std::filesystem::path& path,
                 std::span<const std::uint8_t> data) {
  dump(path, data.data(), data.size());
}

}  // namespace wavesz::data
