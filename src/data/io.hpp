// Raw float32 file I/O matching the SDRB on-disk convention (plain
// little-endian float arrays, dimensions supplied out of band).
#pragma once

#include <filesystem>
#include <span>
#include <vector>

namespace wavesz::data {

/// Read a whole raw float32 file; throws wavesz::Error on I/O failure or if
/// the file size is not a multiple of sizeof(float).
std::vector<float> read_f32(const std::filesystem::path& path);

/// Write a raw float32 file; throws wavesz::Error on I/O failure.
void write_f32(const std::filesystem::path& path, std::span<const float> data);

/// Read/write arbitrary bytes (for compressed containers).
std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path);
void write_bytes(const std::filesystem::path& path,
                 std::span<const std::uint8_t> data);

}  // namespace wavesz::data
