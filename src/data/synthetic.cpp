#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>

namespace wavesz::data {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a 64-bit state.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Deterministic per-component parameter stream.
class ParamStream {
 public:
  explicit ParamStream(std::uint64_t seed) : state_(splitmix64(seed)) {}
  double unit() {
    state_ = splitmix64(state_);
    return to_unit(state_);
  }
  double range(double lo, double hi) { return lo + (hi - lo) * unit(); }

 private:
  std::uint64_t state_;
};

double smoothstep01(double t) {
  if (t <= 0.0) return 0.0;
  if (t >= 1.0) return 1.0;
  return t * t * (3.0 - 2.0 * t);
}

struct Wave {
  double ax, ay, az, phase, amp;
};

struct Bump {
  double cx, cy, cz, inv_two_sigma2, height;
};

/// Parameters of one recipe, derived deterministically from its seed once
/// and then evaluated at millions of grid points.
struct CompiledRecipe {
  std::vector<Wave> waves;
  std::vector<Bump> bumps;
  double plateau_gain;
  bool lognormal;
  double offset;
  double amplitude;

  explicit CompiledRecipe(const FieldRecipe& r)
      : plateau_gain(r.plateau_gain), lognormal(r.lognormal),
        offset(r.offset), amplitude(r.amplitude) {
    constexpr double tau = 2.0 * std::numbers::pi;
    ParamStream params(r.seed);
    double amp = 1.0;
    waves.reserve(static_cast<std::size_t>(r.wave_components));
    for (int k = 0; k < r.wave_components; ++k) {
      const double freq = r.base_frequency * (1.0 + static_cast<double>(k));
      Wave w;
      w.ax = params.range(-1.0, 1.0) * freq * tau;
      w.ay = params.range(-1.0, 1.0) * freq * tau;
      w.az = params.range(-1.0, 1.0) * freq * tau;
      w.phase = params.range(0.0, tau);
      w.amp = amp;
      waves.push_back(w);
      amp *= r.octave_decay;
    }
    bumps.reserve(static_cast<std::size_t>(r.gaussian_bumps));
    for (int b = 0; b < r.gaussian_bumps; ++b) {
      Bump g;
      g.cx = params.unit();
      g.cy = params.unit();
      g.cz = params.unit();
      const double sigma = params.range(0.04, 0.22);
      g.inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
      g.height = params.range(-1.5, 1.5);
      bumps.push_back(g);
    }
  }

  /// `noise` is injected before the saturating transforms, so cloud
  /// plateaus stay exactly flat and density noise acts multiplicatively —
  /// matching how the real fields behave.
  double at(double x, double y, double z, double noise = 0.0) const {
    double v = noise;
    for (const Wave& w : waves) {
      v += w.amp * std::sin(w.ax * x + w.ay * y + w.az * z + w.phase);
    }
    for (const Bump& g : bumps) {
      const double dx = x - g.cx, dy = y - g.cy, dz = z - g.cz;
      v += g.height *
           std::exp(-(dx * dx + dy * dy + dz * dz) * g.inv_two_sigma2);
    }
    if (plateau_gain > 0.0) {
      // Soft-saturate into [0,1]: reproduces cloud-fraction fields whose top
      // and bottom regions sit at constant values (paper Fig. 9 discussion).
      v = smoothstep01(0.5 + plateau_gain * v);
    }
    if (lognormal) {
      v = std::exp(v);  // high-dynamic-range density field
    }
    return offset + amplitude * v;
  }
};

}  // namespace

double hash_noise(std::uint64_t seed, std::uint64_t x, std::uint64_t y,
                  std::uint64_t z) {
  std::uint64_t h = splitmix64(seed ^ 0xabcdef1234567890ull);
  h = splitmix64(h ^ x);
  h = splitmix64(h ^ (y << 20));
  h = splitmix64(h ^ (z << 40));
  return 2.0 * to_unit(h) - 1.0;
}

double evaluate(const FieldRecipe& r, double x, double y, double z) {
  return CompiledRecipe(r).at(x, y, z);
}

std::vector<float> generate(const FieldRecipe& r, const Dims& dims) {
  const CompiledRecipe compiled(r);
  const std::size_t n0 = dims[0];
  const std::size_t n1 = dims.rank >= 2 ? dims[1] : 1;
  const std::size_t n2 = dims.rank >= 3 ? dims[2] : 1;
  std::vector<float> out;
  out.reserve(dims.count());
  const double inv0 = 1.0 / static_cast<double>(n0);
  const double inv1 = 1.0 / static_cast<double>(n1);
  const double inv2 = 1.0 / static_cast<double>(n2);
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    const double z = static_cast<double>(i0) * inv0;
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      const double y = static_cast<double>(i1) * inv1;
      for (std::size_t i2 = 0; i2 < n2; ++i2) {
        const double x = static_cast<double>(i2) * inv2;
        const double noise =
            r.noise_amplitude > 0.0
                ? r.noise_amplitude * hash_noise(r.seed, i2, i1, i0)
                : 0.0;
        out.push_back(static_cast<float>(compiled.at(x, y, z, noise)));
      }
    }
  }
  return out;
}

}  // namespace wavesz::data
