// Registry of the three evaluation dataset personas (paper Table 4).
//
//   CESM-ATM   2D  1800x3600   climate (cloud fractions, winds, fluxes)
//   Hurricane  3D  100x500x500 ISABEL simulation (cloud, wind, pressure)
//   NYX        3D  512x512x512 cosmology (baryon density, velocities)
//
// Each persona registers a handful of representative named fields with
// recipes tuned to that domain. `scale` shrinks every extent by the given
// divisor (>=1) so tests and default bench runs stay laptop-sized; the paper
// dimensions are scale == 1.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "data/synthetic.hpp"
#include "util/dims.hpp"

namespace wavesz::data {

enum class Persona { CesmAtm, Hurricane, Nyx };

std::string_view persona_name(Persona p);

struct Field {
  Persona persona;
  std::string name;
  Dims dims;
  FieldRecipe recipe;

  std::vector<float> materialize() const { return generate(recipe, dims); }
};

/// All registered fields of a persona at the given downscale divisor.
std::vector<Field> fields(Persona p, unsigned scale = 1);

/// One named field (throws wavesz::Error if unknown).
Field field(Persona p, std::string_view name, unsigned scale = 1);

/// The three personas, in paper order.
std::vector<Persona> all_personas();

/// Paper-native dims of the persona at the given downscale divisor.
Dims persona_dims(Persona p, unsigned scale = 1);

}  // namespace wavesz::data
