// Deterministic synthetic scientific-field generators.
//
// The paper evaluates on three SDRB datasets (CESM-ATM 1800x3600 climate,
// Hurricane ISABEL 100x500x500, NYX 512x512x512 cosmology) that are not
// available offline. These generators produce fields with the same
// dimensions and the statistical properties that drive SZ-class compressor
// behaviour: multi-scale spatial smoothness, saturated plateau regions
// (clouds pinned at 0/1 fraction, which favour order-0 fitting), vortex
// structure, and log-normal high-dynamic-range density. Every field is a
// pure function of (seed, x, y, z), so generation is reproducible and
// trivially parallel. DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/dims.hpp"

namespace wavesz::data {

/// Structural knobs for one synthetic field.
struct FieldRecipe {
  std::uint64_t seed = 1;
  int wave_components = 6;     ///< number of superposed plane waves
  double base_frequency = 3.0; ///< cycles across the domain for octave 0
  double octave_decay = 0.55;  ///< amplitude decay per octave
  int gaussian_bumps = 4;      ///< localized features
  double noise_amplitude = 0.0;///< white-noise roughness (relative)
  double plateau_gain = 0.0;   ///< >0: soft-clamp to [0,1] plateaus (clouds)
  bool lognormal = false;      ///< exponentiate (cosmology density)
  double offset = 0.0;         ///< additive offset of the final value
  double amplitude = 1.0;      ///< multiplicative scale of the final value
};

/// Evaluate the recipe at normalized coordinates in [0,1)^3.
double evaluate(const FieldRecipe& recipe, double x, double y, double z);

/// Materialize the field over a grid. dims axes map to (z, y, x) from
/// slowest to fastest varying, matching the dataset conventions.
std::vector<float> generate(const FieldRecipe& recipe, const Dims& dims);

/// SplitMix64-based white noise in [-1, 1], pure in its arguments.
double hash_noise(std::uint64_t seed, std::uint64_t x, std::uint64_t y,
                  std::uint64_t z);

}  // namespace wavesz::data
