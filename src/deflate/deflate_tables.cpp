#include "deflate/deflate_tables.hpp"

#include "util/error.hpp"

namespace wavesz::deflate {

int length_code(int length) {
  WAVESZ_ASSERT(length >= 3 && length <= 258, "match length out of range");
  // Linear scan is fine: 29 entries, and the encoder caches frequencies.
  for (int c = 28; c >= 0; --c) {
    if (length >= kLengthBase[static_cast<std::size_t>(c)]) return c;
  }
  return 0;
}

int distance_code(int distance) {
  WAVESZ_ASSERT(distance >= 1 && distance <= 32768,
                "match distance out of range");
  for (int c = 29; c >= 0; --c) {
    if (distance >= kDistBase[static_cast<std::size_t>(c)]) return c;
  }
  return 0;
}

std::array<std::uint8_t, kNumLitLen> fixed_litlen_lengths() {
  std::array<std::uint8_t, kNumLitLen> lengths{};
  for (int s = 0; s <= 143; ++s) lengths[static_cast<std::size_t>(s)] = 8;
  for (int s = 144; s <= 255; ++s) lengths[static_cast<std::size_t>(s)] = 9;
  for (int s = 256; s <= 279; ++s) lengths[static_cast<std::size_t>(s)] = 7;
  for (int s = 280; s <= 287; ++s) lengths[static_cast<std::size_t>(s)] = 8;
  return lengths;
}

std::array<std::uint8_t, kNumDist> fixed_dist_lengths() {
  std::array<std::uint8_t, kNumDist> lengths{};
  lengths.fill(5);
  return lengths;
}

}  // namespace wavesz::deflate
