// LZ77 match finder for the DEFLATE substrate (RFC 1951 semantics).
//
// Hash-chain matcher over a 32 KiB window producing a token stream of
// literals and (length, distance) matches with length in [3, 258] and
// distance in [1, 32768]. Two effort levels mirror gzip's --fast/--best,
// which the paper's artifact uses for the SZ-1.4 baseline (best_speed) and
// the ratio study.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wavesz::deflate {

inline constexpr int kMinMatch = 3;
inline constexpr int kMaxMatch = 258;
inline constexpr std::size_t kWindowSize = 32768;

enum class Level {
  Fast,  ///< short hash chains, greedy parse (gzip --fast flavour)
  Best,  ///< long chains, lazy one-step parse (gzip --best flavour)
};

struct Token {
  std::uint16_t length = 0;    ///< 0 => literal
  std::uint16_t distance = 0;  ///< valid when length >= kMinMatch
  std::uint8_t literal = 0;    ///< valid when length == 0
};

/// Tokenize `input[dict_len..]`. The first `dict_len` bytes (at most
/// kWindowSize is useful) act as a priming dictionary: they emit no tokens
/// but seed the match window, so matches may reach back into them — exactly
/// the cross-chunk history a later chunk of one DEFLATE stream sees. With
/// dict_len == 0 the token stream, expanded, reproduces the input
/// byte-for-byte (tested property).
///
/// Chain indices are 32-bit to halve matcher memory traffic; inputs at or
/// beyond 4 GiB transparently fall back to windowed segments (matches still
/// cross segment seams up to kWindowSize).
std::vector<Token> tokenize(std::span<const std::uint8_t> input, Level level,
                            std::size_t dict_len = 0);

/// Expand a token stream back into bytes (reference decoder for tests).
std::vector<std::uint8_t> expand(std::span<const Token> tokens);

}  // namespace wavesz::deflate
