// Parallel chunked DEFLATE engine (pigz-style).
//
// The input is split into fixed-size chunks; each chunk is tokenized with
// its own hash-chain matcher on a worker thread (OpenMP) and emitted as one
// or more complete DEFLATE blocks, optionally priming the matcher with the
// previous kWindowSize bytes so cross-chunk matches survive and the ratio
// stays within noise of the serial stream. The per-chunk bit strings are
// then stitched into a single valid DEFLATE stream / gzip member: every
// non-final chunk ends with a Z_SYNC_FLUSH marker (an empty stored block,
// byte-aligning the stream), and a bit-level concatenator joins the pieces.
// The output inflates with the ordinary decompress()/gzip_decompress() —
// no side channel, no framing change.
//
// threads == 1 (or a single chunk) is the serial reference path and emits
// the exact byte stream of compress()/gzip_compress().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/deflate.hpp"

namespace wavesz::deflate {

/// Default worker granularity: big enough that the per-chunk sync marker
/// (~5 bytes) and the 32 KiB re-primed window are noise, small enough that
/// a handful of chunks keeps 4-16 threads busy on MB-sized sections.
inline constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

struct ParallelOptions {
  std::size_t chunk_bytes = kDefaultChunkBytes;
  /// 0 = all OpenMP threads, 1 = serial reference path, n = at most n.
  int threads = 0;
  /// Prime each chunk's matcher with the previous kWindowSize bytes.
  /// Costs a little tokenization time, buys back nearly all of the ratio
  /// loss from independent chunks; disable only for benchmarking.
  bool prime_dictionary = true;
  /// Take the chunked path even at threads == 1, so every chunk_bytes of
  /// input ends on a sync-flush marker (a byte-aligned block boundary).
  /// The markers cost ~5 bytes each and let a prefix inflate stop within
  /// one chunk of the bytes it needs — the v2 chunk-indexed containers
  /// encode their sections this way. Off: threads == 1 emits the serial
  /// reference stream, bit-identical to compress().
  bool force_chunking = false;
};

/// Raw DEFLATE stream (no framing), chunk-parallel.
std::vector<std::uint8_t> compress_parallel(
    std::span<const std::uint8_t> input, Level level,
    const ParallelOptions& opts = {});

/// gzip member (RFC 1952), chunk-parallel body.
std::vector<std::uint8_t> gzip_compress_parallel(
    std::span<const std::uint8_t> input, Level level,
    const ParallelOptions& opts = {});

/// Compress several independent buffers into gzip members over ONE thread
/// pool: all (buffer, chunk) pairs become a single task list, so a large
/// section keeps the threads that finished a small section busy. This is
/// how the SZ compressors run their code-section and unpredictable-section
/// encodes concurrently without nesting parallel regions.
std::vector<std::vector<std::uint8_t>> gzip_compress_batch(
    std::span<const std::span<const std::uint8_t>> inputs, Level level,
    const ParallelOptions& opts = {});

/// Inflate several independent gzip members concurrently, one worker per
/// member (a single DEFLATE stream inflates serially — cross-block history
/// forbids splitting it without an index). `threads` follows the usual
/// budget semantics; every output is byte-identical to gzip_decompress().
/// This is how the parallel container decoders overlap their code-section
/// and unpredictable-section inflates.
std::vector<std::vector<std::uint8_t>> gzip_decompress_batch(
    std::span<const std::span<const std::uint8_t>> inputs, int threads);

}  // namespace wavesz::deflate
