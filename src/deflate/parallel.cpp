#include "deflate/parallel.hpp"

#include <algorithm>
#include <exception>

#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace wavesz::deflate {
namespace {

int resolve_threads(int requested) {
#ifdef _OPENMP
  return requested <= 0 ? omp_get_max_threads() : requested;
#else
  (void)requested;
  return 1;
#endif
}

/// One chunk of one input buffer, scheduled as an independent task.
struct ChunkTask {
  std::size_t input_index = 0;
  std::size_t chunk_index = 0;
  std::size_t offset = 0;  ///< chunk start within its input
  std::size_t length = 0;
  bool final_chunk = false;
};

/// A chunk's emitted bit string. Non-final chunks end with a sync-flush
/// marker, so nbits is a multiple of 8 for them and the stitcher's append
/// stays on its memcpy fast path; the machinery handles any phase.
struct ChunkBits {
  std::vector<std::uint8_t> bytes;
  std::size_t nbits = 0;
};

ChunkBits compress_chunk(std::span<const std::uint8_t> whole,
                         const ChunkTask& t, Level level,
                         bool prime_dictionary) {
  const std::size_t dict =
      prime_dictionary ? std::min(kWindowSize, t.offset) : 0;
  const auto window = whole.subspan(t.offset - dict, dict + t.length);
  const auto tokens = tokenize(window, level, dict);
  BitWriterLSB bw;
  detail::deflate_blocks(bw, window.subspan(dict), tokens, t.final_chunk);
  if (!t.final_chunk) detail::sync_flush(bw);
  ChunkBits out;
  out.nbits = bw.bit_count();
  out.bytes = bw.take();
  return out;
}

/// Raw DEFLATE streams for every input, all chunks through one task list.
std::vector<std::vector<std::uint8_t>> deflate_batch(
    std::span<const std::span<const std::uint8_t>> inputs, Level level,
    const ParallelOptions& opts) {
  WAVESZ_REQUIRE(opts.chunk_bytes > 0, "chunk size must be positive");
  const int threads = resolve_threads(opts.threads);
  std::vector<std::vector<std::uint8_t>> out(inputs.size());

  if (threads == 1 && !opts.force_chunking) {
    // Serial reference path: bit-identical to compress().
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      telemetry::Span span(telemetry::spans::kDeflateChunk);
      telemetry::counter_add(telemetry::Counter::DeflateChunks, 1);
      out[i] = compress(inputs[i], level);
      telemetry::observe(telemetry::Histo::DeflateChunkBytes, out[i].size());
    }
    return out;
  }

  std::vector<ChunkTask> tasks;
  std::vector<std::vector<ChunkBits>> pieces(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::size_t n = inputs[i].size();
    const std::size_t chunks =
        std::max<std::size_t>(1, (n + opts.chunk_bytes - 1) / opts.chunk_bytes);
    pieces[i].resize(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      ChunkTask t;
      t.input_index = i;
      t.chunk_index = c;
      t.offset = c * opts.chunk_bytes;
      t.length = std::min(opts.chunk_bytes, n - t.offset);
      t.final_chunk = (c + 1 == chunks);
      tasks.push_back(t);
    }
  }

  // Exceptions must not escape an OpenMP region (that terminates the
  // process); capture the first one and rethrow it afterwards.
  std::exception_ptr failure;
#ifdef _OPENMP
#pragma omp parallel for num_threads(threads) schedule(dynamic)
#endif
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    try {
      telemetry::Span span(telemetry::spans::kDeflateChunk);
      const ChunkTask& task = tasks[t];
      ChunkBits& piece = pieces[task.input_index][task.chunk_index];
      piece = compress_chunk(inputs[task.input_index], task, level,
                             opts.prime_dictionary);
      telemetry::observe(telemetry::Histo::DeflateChunkBytes,
                         piece.bytes.size());
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);
  telemetry::counter_add(telemetry::Counter::DeflateChunks, tasks.size());

  // Stitch: bit-level concatenation of the chunk streams. Chunk k+1 was
  // emitted assuming it starts byte-aligned, which the sync-flush tail of
  // chunk k guarantees.
  telemetry::Span span_stitch(telemetry::spans::kDeflateStitch);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    BitWriterLSB bw;
    for (const ChunkBits& p : pieces[i]) bw.append(p.bytes, p.nbits);
    out[i] = bw.take();
  }
  return out;
}

std::vector<std::uint8_t> gzip_wrap(std::span<const std::uint8_t> input,
                                    Level level,
                                    std::vector<std::uint8_t> body) {
  ByteWriter w;
  w.u8(0x1f);
  w.u8(0x8b);
  w.u8(8);  // CM = deflate
  w.u8(0);  // FLG
  w.u32(0); // MTIME
  w.u8(level == Level::Best ? 2 : 4);  // XFL: 2 = best, 4 = fastest
  w.u8(255);                           // OS unknown
  w.bytes(body);
  w.u32(Crc32::of(input));
  w.u32(static_cast<std::uint32_t>(input.size()));
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> compress_parallel(
    std::span<const std::uint8_t> input, Level level,
    const ParallelOptions& opts) {
  const std::span<const std::uint8_t> one[] = {input};
  return std::move(deflate_batch(one, level, opts)[0]);
}

std::vector<std::uint8_t> gzip_compress_parallel(
    std::span<const std::uint8_t> input, Level level,
    const ParallelOptions& opts) {
  return gzip_wrap(input, level, compress_parallel(input, level, opts));
}

std::vector<std::vector<std::uint8_t>> gzip_compress_batch(
    std::span<const std::span<const std::uint8_t>> inputs, Level level,
    const ParallelOptions& opts) {
  auto bodies = deflate_batch(inputs, level, opts);
  std::vector<std::vector<std::uint8_t>> out(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out[i] = gzip_wrap(inputs[i], level, std::move(bodies[i]));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> gzip_decompress_batch(
    std::span<const std::span<const std::uint8_t>> inputs, int threads) {
  std::vector<std::vector<std::uint8_t>> out(inputs.size());
  const int nt = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_threads(threads)),
      std::max<std::size_t>(1, inputs.size())));
  if (nt <= 1) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      out[i] = gzip_decompress(inputs[i]);
    }
    return out;
  }
  // Same containment contract as deflate_batch: an exception escaping an
  // OpenMP region terminates the process, so the first failure is captured
  // and rethrown after the barrier.
  std::exception_ptr failure;
#ifdef _OPENMP
#pragma omp parallel for num_threads(nt) schedule(dynamic)
#endif
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    try {
      out[i] = gzip_decompress(inputs[i]);
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);
  return out;
}

}  // namespace wavesz::deflate
