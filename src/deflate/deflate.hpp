// DEFLATE (RFC 1951) and gzip (RFC 1952) implemented from scratch.
//
// This is the lossless back end of every compressor in this repository: the
// paper's FPGA designs (waveSZ, GhostSZ) push their quantization codes
// through the Xilinx gzip core, and the SZ-1.4 CPU baseline runs gzip in
// best_speed mode. Block types stored/fixed/dynamic are all implemented and
// chosen per block by estimated cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/lz77.hpp"

namespace wavesz::deflate {

/// Raw DEFLATE stream (no framing).
std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input,
                                   Level level = Level::Fast);

/// Inverse of compress(); throws wavesz::Error on malformed input.
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> input);

/// gzip member (RFC 1952): 10-byte header + DEFLATE + CRC-32 + ISIZE.
std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> input,
                                        Level level = Level::Fast);

/// Inverse of gzip_compress(); validates magic, CRC-32 and ISIZE.
std::vector<std::uint8_t> gzip_decompress(std::span<const std::uint8_t> input);

}  // namespace wavesz::deflate
