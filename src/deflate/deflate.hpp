// DEFLATE (RFC 1951) and gzip (RFC 1952) implemented from scratch.
//
// This is the lossless back end of every compressor in this repository: the
// paper's FPGA designs (waveSZ, GhostSZ) push their quantization codes
// through the Xilinx gzip core, and the SZ-1.4 CPU baseline runs gzip in
// best_speed mode. Block types stored/fixed/dynamic are all implemented and
// chosen per block by estimated cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/lz77.hpp"
#include "util/bitio.hpp"

namespace wavesz::deflate {

/// Raw DEFLATE stream (no framing).
std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input,
                                   Level level = Level::Fast);

/// Inverse of compress(); throws wavesz::Error on malformed input. Uses the
/// table-driven fast inflate loop unless reference_decode_enabled() — or a
/// block whose codes defeat the table build — routes it to the bit-at-a-time
/// oracle. Both paths produce identical bytes.
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> input);

/// decompress() pinned to the bit-at-a-time reference path regardless of the
/// WAVESZ_REFERENCE_DECODE setting; the oracle side of differential tests.
std::vector<std::uint8_t> decompress_reference(
    std::span<const std::uint8_t> input);

/// gzip member (RFC 1952): 10-byte header + DEFLATE + CRC-32 + ISIZE.
std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> input,
                                        Level level = Level::Fast);

/// Inverse of gzip_compress(); validates magic, CRC-32 and ISIZE.
std::vector<std::uint8_t> gzip_decompress(std::span<const std::uint8_t> input);

/// Result of a bounded inflate: the decoded prefix, how many compressed
/// input bytes were consumed producing it (the partial-read figure region
/// decoders report), and whether the stream actually ended.
struct PrefixResult {
  std::vector<std::uint8_t> bytes;
  std::size_t compressed_consumed = 0;
  bool complete = false;
};

/// Inflate only until at least `min_output_bytes` of output exist (checked
/// at DEFLATE block granularity, so the result may overshoot) or the stream
/// ends, whichever is first. The decoded prefix is bit-identical to the
/// leading bytes of a full decompress().
PrefixResult decompress_prefix(std::span<const std::uint8_t> input,
                               std::size_t min_output_bytes);

/// gzip framing over decompress_prefix(). When the stop condition fires
/// before the final block, the member's CRC-32/ISIZE trailer is NOT
/// verified — it covers the whole stream, which was deliberately not
/// decoded; callers (the container region decoders) carry their own
/// per-chunk CRCs. A run that does reach the end verifies the trailer
/// exactly like gzip_decompress().
PrefixResult gzip_decompress_prefix(std::span<const std::uint8_t> input,
                                    std::size_t min_output_bytes);

namespace detail {

/// Emit the DEFLATE blocks encoding `tokens`, which must expand exactly to
/// `covered` (needed for the stored-block fallback). Blocks are split every
/// 64 Ki tokens and each picks stored/fixed/dynamic by estimated cost. When
/// `mark_final` is set the last block carries BFINAL=1 (empty token streams
/// then emit one empty fixed block); otherwise the stream is left open for
/// further blocks. Shared by the serial compress() and the parallel chunked
/// engine (parallel.hpp).
void deflate_blocks(BitWriterLSB& bw, std::span<const std::uint8_t> covered,
                    std::span<const Token> tokens, bool mark_final);

/// Z_SYNC_FLUSH marker: a non-final empty stored block. Pads the stream to
/// a byte boundary, so whatever is appended next starts byte-aligned — the
/// property the chunk stitcher relies on for interior stored blocks.
void sync_flush(BitWriterLSB& bw);

}  // namespace detail

}  // namespace wavesz::deflate
