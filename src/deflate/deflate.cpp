#include "deflate/deflate.hpp"

#include <algorithm>
#include <cstring>

#include "deflate/deflate_tables.hpp"
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"

namespace wavesz::deflate {
namespace {

constexpr std::size_t kTokensPerBlock = 65536;

std::uint32_t reverse_bits(std::uint32_t code, int len) {
  std::uint32_t out = 0;
  for (int i = 0; i < len; ++i) {
    out = (out << 1) | ((code >> i) & 1u);
  }
  return out;
}

/// Huffman codes pre-reversed for the LSB-first DEFLATE bit order.
struct EmitTable {
  std::vector<std::uint32_t> codes;
  std::vector<std::uint8_t> lengths;

  explicit EmitTable(std::span<const std::uint8_t> lens)
      : lengths(lens.begin(), lens.end()) {
    auto canon = canonical_codes(lens);
    codes.resize(canon.size());
    for (std::size_t s = 0; s < canon.size(); ++s) {
      codes[s] = reverse_bits(canon[s], lengths[s]);
    }
  }

  void emit(BitWriterLSB& bw, int symbol) const {
    const auto s = static_cast<std::size_t>(symbol);
    WAVESZ_ASSERT(lengths[s] > 0, "emitting symbol with no code");
    bw.bits(codes[s], lengths[s]);
  }
};

struct BlockFreqs {
  std::array<std::uint64_t, kNumLitLen> litlen{};
  std::array<std::uint64_t, kNumDist> dist{};
};

BlockFreqs count_freqs(std::span<const Token> tokens) {
  BlockFreqs f;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++f.litlen[t.literal];
    } else {
      ++f.litlen[static_cast<std::size_t>(257 + length_code(t.length))];
      ++f.dist[static_cast<std::size_t>(distance_code(t.distance))];
    }
  }
  ++f.litlen[kEndOfBlock];
  return f;
}

std::uint64_t token_cost_bits(std::span<const Token> tokens,
                              std::span<const std::uint8_t> litlen_lens,
                              std::span<const std::uint8_t> dist_lens) {
  std::uint64_t bits = 0;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      bits += litlen_lens[t.literal];
    } else {
      const int lc = length_code(t.length);
      const int dc = distance_code(t.distance);
      bits += static_cast<std::uint64_t>(
          litlen_lens[static_cast<std::size_t>(257 + lc)] +
          kLengthExtra[static_cast<std::size_t>(lc)] +
          dist_lens[static_cast<std::size_t>(dc)] +
          kDistExtra[static_cast<std::size_t>(dc)]);
    }
  }
  bits += litlen_lens[kEndOfBlock];
  return bits;
}

void emit_tokens(BitWriterLSB& bw, std::span<const Token> tokens,
                 const EmitTable& litlen, const EmitTable& dist) {
  for (const Token& t : tokens) {
    if (t.length == 0) {
      litlen.emit(bw, t.literal);
    } else {
      const int lc = length_code(t.length);
      litlen.emit(bw, 257 + lc);
      const int lx = kLengthExtra[static_cast<std::size_t>(lc)];
      if (lx > 0) {
        bw.bits(static_cast<std::uint32_t>(
                    t.length - kLengthBase[static_cast<std::size_t>(lc)]),
                lx);
      }
      const int dc = distance_code(t.distance);
      dist.emit(bw, dc);
      const int dx = kDistExtra[static_cast<std::size_t>(dc)];
      if (dx > 0) {
        bw.bits(static_cast<std::uint32_t>(
                    t.distance - kDistBase[static_cast<std::size_t>(dc)]),
                dx);
      }
    }
  }
  litlen.emit(bw, kEndOfBlock);
}

/// RLE of concatenated lit/len+dist code lengths using symbols 0-18 per
/// RFC 1951 §3.2.7. Returns (symbol, extra_value) pairs; extra_value is
/// meaningful for symbols 16/17/18.
std::vector<std::pair<std::uint8_t, std::uint8_t>> rle_code_lengths(
    std::span<const std::uint8_t> lens) {
  std::vector<std::pair<std::uint8_t, std::uint8_t>> out;
  std::size_t i = 0;
  while (i < lens.size()) {
    const std::uint8_t v = lens[i];
    std::size_t run = 1;
    while (i + run < lens.size() && lens[i + run] == v) ++run;
    if (v == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.emplace_back(18, static_cast<std::uint8_t>(take - 11));
        left -= take;
      }
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 10);
        out.emplace_back(17, static_cast<std::uint8_t>(take - 3));
        left -= take;
      }
      while (left-- > 0) out.emplace_back(0, 0);
    } else {
      out.emplace_back(v, 0);
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.emplace_back(16, static_cast<std::uint8_t>(take - 3));
        left -= take;
      }
      while (left-- > 0) out.emplace_back(v, 0);
    }
    i += run;
  }
  return out;
}

struct DynamicHeader {
  std::vector<std::uint8_t> litlen_lens;  // trimmed to hlit
  std::vector<std::uint8_t> dist_lens;    // trimmed to hdist
  std::vector<std::pair<std::uint8_t, std::uint8_t>> rle;
  std::vector<std::uint8_t> clc_lens;  // 19 entries
  int hclen = 0;
  std::uint64_t header_bits = 0;
};

DynamicHeader build_dynamic_header(std::span<const std::uint8_t> litlen_full,
                                   std::span<const std::uint8_t> dist_full) {
  DynamicHeader h;
  int hlit = kNumLitLen;
  while (hlit > 257 &&
         litlen_full[static_cast<std::size_t>(hlit) - 1] == 0) {
    --hlit;
  }
  int hdist = kNumDist;
  while (hdist > 1 && dist_full[static_cast<std::size_t>(hdist) - 1] == 0) {
    --hdist;
  }
  h.litlen_lens.assign(litlen_full.begin(),
                       litlen_full.begin() + hlit);
  h.dist_lens.assign(dist_full.begin(), dist_full.begin() + hdist);

  std::vector<std::uint8_t> all(h.litlen_lens);
  all.insert(all.end(), h.dist_lens.begin(), h.dist_lens.end());
  h.rle = rle_code_lengths(all);

  std::array<std::uint64_t, kNumClc> clc_freq{};
  for (auto [sym, extra] : h.rle) ++clc_freq[sym];
  h.clc_lens = huffman_code_lengths(clc_freq, 7);

  h.hclen = kNumClc;
  while (h.hclen > 4 &&
         h.clc_lens[kClcOrder[static_cast<std::size_t>(h.hclen) - 1]] == 0) {
    --h.hclen;
  }

  h.header_bits = 5u + 5u + 4u + 3u * static_cast<std::uint64_t>(h.hclen);
  for (auto [sym, extra] : h.rle) {
    h.header_bits += h.clc_lens[sym];
    if (sym == 16) h.header_bits += 2;
    if (sym == 17) h.header_bits += 3;
    if (sym == 18) h.header_bits += 7;
  }
  return h;
}

void emit_dynamic_block(BitWriterLSB& bw, std::span<const Token> tokens,
                        const DynamicHeader& h, bool final_block) {
  bw.bits(final_block ? 1u : 0u, 1);
  bw.bits(0b10, 2);  // dynamic
  bw.bits(static_cast<std::uint32_t>(h.litlen_lens.size() - 257), 5);
  bw.bits(static_cast<std::uint32_t>(h.dist_lens.size() - 1), 5);
  bw.bits(static_cast<std::uint32_t>(h.hclen - 4), 4);
  for (int i = 0; i < h.hclen; ++i) {
    bw.bits(h.clc_lens[kClcOrder[static_cast<std::size_t>(i)]], 3);
  }
  const EmitTable clc(h.clc_lens);
  for (auto [sym, extra] : h.rle) {
    clc.emit(bw, sym);
    if (sym == 16) bw.bits(extra, 2);
    if (sym == 17) bw.bits(extra, 3);
    if (sym == 18) bw.bits(extra, 7);
  }
  // Rebuild full-width tables for emission (trimmed tails are unused codes).
  std::vector<std::uint8_t> ll(h.litlen_lens);
  ll.resize(kNumLitLen, 0);
  std::vector<std::uint8_t> dd(h.dist_lens);
  dd.resize(kNumDist, 0);
  emit_tokens(bw, tokens, EmitTable(ll), EmitTable(dd));
}

void emit_fixed_block(BitWriterLSB& bw, std::span<const Token> tokens,
                      bool final_block) {
  bw.bits(final_block ? 1u : 0u, 1);
  bw.bits(0b01, 2);  // fixed
  const auto ll = fixed_litlen_lengths();
  const auto dd = fixed_dist_lengths();
  emit_tokens(bw, tokens, EmitTable(ll), EmitTable(dd));
}

void emit_stored_blocks(BitWriterLSB& bw,
                        std::span<const std::uint8_t> raw_bytes,
                        bool final_block) {
  std::size_t off = 0;
  do {
    const std::size_t take =
        std::min<std::size_t>(raw_bytes.size() - off, 65535);
    const bool last_piece = (off + take == raw_bytes.size());
    bw.bits((final_block && last_piece) ? 1u : 0u, 1);
    bw.bits(0b00, 2);  // stored
    bw.align_byte();
    const auto len = static_cast<std::uint16_t>(take);
    bw.byte(static_cast<std::uint8_t>(len & 0xff));
    bw.byte(static_cast<std::uint8_t>(len >> 8));
    bw.byte(static_cast<std::uint8_t>(~len & 0xff));
    bw.byte(static_cast<std::uint8_t>((~len >> 8) & 0xff));
    for (std::size_t i = 0; i < take; ++i) bw.byte(raw_bytes[off + i]);
    off += take;
  } while (off < raw_bytes.size());
}

std::size_t token_raw_size(std::span<const Token> tokens) {
  std::size_t n = 0;
  for (const Token& t : tokens) n += (t.length == 0) ? 1 : t.length;
  return n;
}

}  // namespace

namespace detail {

void deflate_blocks(BitWriterLSB& bw, std::span<const std::uint8_t> covered,
                    std::span<const Token> tokens, bool mark_final) {
  if (tokens.empty()) {
    WAVESZ_ASSERT(covered.empty(), "token coverage mismatch");
    if (mark_final) emit_fixed_block(bw, {}, true);
    return;
  }
  std::size_t raw_off = 0;  // offset of the current block's first byte

  for (std::size_t start = 0; start < tokens.size();
       start += kTokensPerBlock) {
    const std::size_t count =
        std::min<std::size_t>(kTokensPerBlock, tokens.size() - start);
    const auto block = tokens.subspan(start, count);
    const bool final_block =
        mark_final && (start + count == tokens.size());
    const std::size_t raw_len = token_raw_size(block);

    const BlockFreqs freqs = count_freqs(block);
    // Ensure at least one distance code exists so the dynamic header is
    // always well-formed (a zero-frequency code still gets a slot).
    auto dist_freq = freqs.dist;
    if (std::all_of(dist_freq.begin(), dist_freq.end(),
                    [](std::uint64_t f) { return f == 0; })) {
      dist_freq[0] = 1;
    }
    const auto dyn_ll = huffman_code_lengths(freqs.litlen, 15);
    const auto dyn_dd = huffman_code_lengths(dist_freq, 15);
    const DynamicHeader header = build_dynamic_header(dyn_ll, dyn_dd);

    const std::uint64_t cost_dyn =
        3 + header.header_bits + token_cost_bits(block, dyn_ll, dyn_dd);
    const auto fix_ll = fixed_litlen_lengths();
    const auto fix_dd = fixed_dist_lengths();
    const std::uint64_t cost_fix = 3 + token_cost_bits(block, fix_ll, fix_dd);
    const std::uint64_t cost_stored =
        (3 + 7 + 32) * ((raw_len + 65534) / 65535) +
        8ull * static_cast<std::uint64_t>(raw_len);

    if (cost_stored < cost_dyn && cost_stored < cost_fix) {
      emit_stored_blocks(bw, covered.subspan(raw_off, raw_len), final_block);
    } else if (cost_fix <= cost_dyn) {
      emit_fixed_block(bw, block, final_block);
    } else {
      emit_dynamic_block(bw, block, header, final_block);
    }
    raw_off += raw_len;
  }
  WAVESZ_ASSERT(raw_off == covered.size(), "token coverage mismatch");
}

void sync_flush(BitWriterLSB& bw) {
  bw.bits(0u, 1);     // BFINAL = 0
  bw.bits(0b00u, 2);  // stored
  bw.align_byte();
  bw.byte(0x00);
  bw.byte(0x00);
  bw.byte(0xff);
  bw.byte(0xff);
}

}  // namespace detail

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input,
                                   Level level) {
  BitWriterLSB bw;
  const auto tokens = tokenize(input, level);
  detail::deflate_blocks(bw, input, tokens, /*mark_final=*/true);
  return bw.take();
}

namespace {

/// Decode one symbol through whichever path the decoder supports: the flat
/// table when it was built (complete, reasonably sized codes), else the
/// bit-at-a-time oracle. Header code-length alphabets are tiny, so this is
/// not hot; it exists so corrupt headers route through the same guards.
std::uint32_t decode_symbol(BitReaderLSB& br, const CanonicalDecoder& dec) {
  if (dec.has_fast_table()) {
    return dec.decode_fast([&](int n) { return br.peek(n); },
                           [&](int n) { br.consume(n); });
  }
  return dec.decode([&] { return br.bit(); });
}

/// Decode one code-length sequence (lit/len + dist) of a dynamic block.
std::vector<std::uint8_t> read_dynamic_lengths(BitReaderLSB& br,
                                               const CanonicalDecoder& clc,
                                               std::size_t total,
                                               bool reference) {
  std::vector<std::uint8_t> lens;
  lens.reserve(total);
  while (lens.size() < total) {
    const auto sym = reference ? clc.decode([&] { return br.bit(); })
                               : decode_symbol(br, clc);
    if (sym <= 15) {
      lens.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      WAVESZ_REQUIRE(!lens.empty(), "repeat with no previous length");
      const std::uint32_t rep = 3 + br.bits(2);
      const std::uint8_t prev = lens.back();
      for (std::uint32_t i = 0; i < rep; ++i) lens.push_back(prev);
    } else if (sym == 17) {
      const std::uint32_t rep = 3 + br.bits(3);
      for (std::uint32_t i = 0; i < rep; ++i) lens.push_back(0);
    } else {
      const std::uint32_t rep = 11 + br.bits(7);
      for (std::uint32_t i = 0; i < rep; ++i) lens.push_back(0);
    }
  }
  WAVESZ_REQUIRE(lens.size() == total, "code-length run overshoots header");
  return lens;
}

/// Append a back-reference. The destination trails the source by `distance`
/// bytes, so once distance >= 8 every 8-byte step reads fully-written data
/// and the copy can run a word at a time; shorter distances (the pattern-
/// replicating overlap case) go byte by byte.
void copy_match(std::vector<std::uint8_t>& out, std::size_t distance,
                std::size_t length) {
  const std::size_t start = out.size() - distance;
  out.resize(out.size() + length);
  std::uint8_t* dst = out.data() + out.size() - length;
  const std::uint8_t* src = out.data() + start;
  std::size_t k = 0;
  if (distance >= 8) {
    for (; k + 8 <= length; k += 8) copy8(dst + k, src + k);
  }
  for (; k < length; ++k) dst[k] = src[k];
}

/// Reference inflate loop: one bit per decoder step. Kept bit-for-bit as
/// the oracle behind WAVESZ_REFERENCE_DECODE and the differential tests.
void inflate_block_reference(BitReaderLSB& br, const CanonicalDecoder& litlen,
                             const CanonicalDecoder& dist,
                             std::vector<std::uint8_t>& out) {
  for (;;) {
    const auto sym = litlen.decode([&] { return br.bit(); });
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == kEndOfBlock) {
      return;
    } else {
      WAVESZ_REQUIRE(sym <= 285, "invalid length symbol");
      const std::size_t lc = sym - 257;
      const std::uint32_t length =
          kLengthBase[lc] + br.bits(kLengthExtra[lc]);
      const auto dsym = dist.decode([&] { return br.bit(); });
      WAVESZ_REQUIRE(dsym < kNumDist, "invalid distance symbol");
      const std::uint32_t distance =
          kDistBase[dsym] + br.bits(kDistExtra[dsym]);
      WAVESZ_REQUIRE(distance <= out.size(),
                     "distance reaches before stream start");
      const std::size_t from = out.size() - distance;
      for (std::uint32_t k = 0; k < length; ++k) {
        out.push_back(out[from + k]);
      }
    }
  }
}

/// Table-driven inflate loop. Worst-case consumption per iteration is a
/// 15-bit lit/len code + 5 extra bits + 15-bit distance code + 13 extra
/// bits = 48 bits, within the >= 56 bits a single refill guarantees, so
/// the reader refills at most once per peek underrun and the loop spends
/// its time in the two table probes and the word-wise copy.
void inflate_block_fast(BitReaderLSB& br, const CanonicalDecoder& litlen,
                        const CanonicalDecoder& dist,
                        std::vector<std::uint8_t>& out) {
  const auto peek = [&](int n) { return br.peek(n); };
  const auto consume = [&](int n) { br.consume(n); };
  for (;;) {
    const auto sym = litlen.decode_fast(peek, consume);
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == kEndOfBlock) {
      return;
    } else {
      WAVESZ_REQUIRE(sym <= 285, "invalid length symbol");
      const std::size_t lc = sym - 257;
      const std::uint32_t length =
          kLengthBase[lc] + br.bits(kLengthExtra[lc]);
      const auto dsym = dist.decode_fast(peek, consume);
      WAVESZ_REQUIRE(dsym < kNumDist, "invalid distance symbol");
      const std::uint32_t distance =
          kDistBase[dsym] + br.bits(kDistExtra[dsym]);
      WAVESZ_REQUIRE(distance <= out.size(),
                     "distance reaches before stream start");
      copy_match(out, distance, length);
    }
  }
}

void inflate_block(BitReaderLSB& br, const CanonicalDecoder& litlen,
                   const CanonicalDecoder& dist,
                   std::vector<std::uint8_t>& out, bool reference) {
  telemetry::Span span(telemetry::spans::kInflateBlock);
  telemetry::counter_add(telemetry::Counter::InflateBlocks, 1);
  // Blocks whose codes defeat the table build (over-subscribed or forged
  // headers) decode through the oracle, which throws on the first bad code.
  if (reference || !litlen.has_fast_table() || !dist.has_fast_table()) {
    inflate_block_reference(br, litlen, dist, out);
  } else {
    inflate_block_fast(br, litlen, dist, out);
  }
}

const CanonicalDecoder& fixed_litlen_decoder() {
  static const CanonicalDecoder d = [] {
    const auto ll = fixed_litlen_lengths();
    return CanonicalDecoder(ll, BitOrder::LsbFirst);
  }();
  return d;
}

const CanonicalDecoder& fixed_dist_decoder() {
  static const CanonicalDecoder d = [] {
    const auto dd = fixed_dist_lengths();
    return CanonicalDecoder(dd, BitOrder::LsbFirst);
  }();
  return d;
}

/// Shared block loop behind decompress() and decompress_prefix(): inflate
/// until the final block, or — when `min_output` is not SIZE_MAX — until at
/// least that many output bytes exist (checked between blocks, so the
/// result may overshoot by up to one block).
PrefixResult inflate_blocks(std::span<const std::uint8_t> input,
                            std::size_t min_output, bool reference) {
  BitReaderLSB br(input);
  PrefixResult run;
  std::vector<std::uint8_t>& out = run.bytes;
  for (;;) {
    const bool final_block = br.bit() != 0;
    const std::uint32_t type = br.bits(2);
    if (type == 0b00) {
      br.align_byte();
      // Named temporaries: the two byte() calls are unsequenced inside a
      // single `|` expression, and their order decides which byte is low.
      const std::uint32_t len_lo = br.byte();
      const std::uint32_t len_hi = br.byte();
      const std::uint32_t len = len_lo | (len_hi << 8);
      const std::uint32_t nlen_lo = br.byte();
      const std::uint32_t nlen_hi = br.byte();
      const std::uint32_t nlen = nlen_lo | (nlen_hi << 8);
      WAVESZ_REQUIRE((len ^ 0xffffu) == nlen, "stored block LEN/NLEN mismatch");
      const std::size_t old = out.size();
      out.resize(old + len);
      br.read_bytes(out.data() + old, len);
    } else if (type == 0b01) {
      inflate_block(br, fixed_litlen_decoder(), fixed_dist_decoder(), out,
                    reference);
    } else if (type == 0b10) {
      const std::uint32_t hlit = br.bits(5) + 257;
      const std::uint32_t hdist = br.bits(5) + 1;
      const std::uint32_t hclen = br.bits(4) + 4;
      WAVESZ_REQUIRE(hlit <= kNumLitLen && hdist <= kNumDist,
                     "dynamic header counts out of range");
      std::array<std::uint8_t, kNumClc> clc_lens{};
      for (std::uint32_t i = 0; i < hclen; ++i) {
        clc_lens[kClcOrder[i]] = static_cast<std::uint8_t>(br.bits(3));
      }
      const CanonicalDecoder clc(clc_lens, BitOrder::LsbFirst);
      const auto all = read_dynamic_lengths(br, clc, hlit + hdist, reference);
      std::vector<std::uint8_t> ll(all.begin(), all.begin() + hlit);
      std::vector<std::uint8_t> dd(all.begin() + hlit, all.end());
      WAVESZ_REQUIRE(ll[kEndOfBlock] > 0, "no end-of-block code");
      inflate_block(br, CanonicalDecoder(ll, BitOrder::LsbFirst),
                    CanonicalDecoder(dd, BitOrder::LsbFirst), out, reference);
    } else {
      throw Error("reserved DEFLATE block type");
    }
    if (final_block) {
      run.complete = true;
      break;
    }
    if (out.size() >= min_output) break;
  }
  run.compressed_consumed = br.consumed();
  return run;
}

std::vector<std::uint8_t> decompress_impl(std::span<const std::uint8_t> input,
                                          bool reference) {
  return inflate_blocks(input, static_cast<std::size_t>(-1), reference).bytes;
}

}  // namespace

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> input) {
  return decompress_impl(input, reference_decode_enabled());
}

std::vector<std::uint8_t> decompress_reference(
    std::span<const std::uint8_t> input) {
  return decompress_impl(input, /*reference=*/true);
}

PrefixResult decompress_prefix(std::span<const std::uint8_t> input,
                               std::size_t min_output_bytes) {
  return inflate_blocks(input, min_output_bytes, reference_decode_enabled());
}

std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> input,
                                        Level level) {
  ByteWriter w;
  w.u8(0x1f);
  w.u8(0x8b);
  w.u8(8);  // CM = deflate
  w.u8(0);  // FLG
  w.u32(0); // MTIME
  w.u8(level == Level::Best ? 2 : 4);  // XFL: 2 = best, 4 = fastest
  w.u8(255);                           // OS unknown
  auto body = compress(input, level);
  w.bytes(body);
  w.u32(Crc32::of(input));
  w.u32(static_cast<std::uint32_t>(input.size()));
  return w.take();
}

std::vector<std::uint8_t> gzip_decompress(
    std::span<const std::uint8_t> input) {
  WAVESZ_REQUIRE(input.size() >= 18, "gzip member too short");
  ByteReader r(input);
  WAVESZ_REQUIRE(r.u8() == 0x1f && r.u8() == 0x8b, "bad gzip magic");
  WAVESZ_REQUIRE(r.u8() == 8, "unsupported gzip compression method");
  const std::uint8_t flg = r.u8();
  WAVESZ_REQUIRE(flg == 0, "gzip optional header fields not supported");
  (void)r.u32();  // MTIME
  (void)r.u8();   // XFL
  (void)r.u8();   // OS
  const auto body = input.subspan(r.position(), input.size() - r.position() - 8);
  auto out = decompress(body);
  ByteReader tail(input.subspan(input.size() - 8));
  const std::uint32_t crc = tail.u32();
  const std::uint32_t isize = tail.u32();
  std::uint32_t actual_crc;
  {
    telemetry::Span span(telemetry::spans::kCrc32);
    telemetry::counter_add(telemetry::Counter::CrcBytes, out.size());
    actual_crc = Crc32::of(out);
  }
  WAVESZ_REQUIRE(crc == actual_crc, "gzip CRC mismatch");
  WAVESZ_REQUIRE(isize == static_cast<std::uint32_t>(out.size()),
                 "gzip ISIZE mismatch");
  return out;
}

PrefixResult gzip_decompress_prefix(std::span<const std::uint8_t> input,
                                    std::size_t min_output_bytes) {
  telemetry::Span span(telemetry::spans::kInflatePrefix);
  WAVESZ_REQUIRE(input.size() >= 18, "gzip member too short");
  ByteReader r(input);
  WAVESZ_REQUIRE(r.u8() == 0x1f && r.u8() == 0x8b, "bad gzip magic");
  WAVESZ_REQUIRE(r.u8() == 8, "unsupported gzip compression method");
  const std::uint8_t flg = r.u8();
  WAVESZ_REQUIRE(flg == 0, "gzip optional header fields not supported");
  (void)r.u32();  // MTIME
  (void)r.u8();   // XFL
  (void)r.u8();   // OS
  const auto body =
      input.subspan(r.position(), input.size() - r.position() - 8);
  PrefixResult run = inflate_blocks(body, min_output_bytes,
                                    reference_decode_enabled());
  run.compressed_consumed += r.position();
  if (run.complete) {
    // The whole stream came out anyway; verify the trailer as a full
    // decode would. An early stop leaves the trailer unverified by design
    // — it covers bytes that were deliberately never produced.
    ByteReader tail(input.subspan(input.size() - 8));
    const std::uint32_t crc = tail.u32();
    const std::uint32_t isize = tail.u32();
    std::uint32_t actual_crc;
    {
      telemetry::Span span_crc(telemetry::spans::kCrc32);
      telemetry::counter_add(telemetry::Counter::CrcBytes, run.bytes.size());
      actual_crc = Crc32::of(run.bytes);
    }
    WAVESZ_REQUIRE(crc == actual_crc, "gzip CRC mismatch");
    WAVESZ_REQUIRE(isize == static_cast<std::uint32_t>(run.bytes.size()),
                   "gzip ISIZE mismatch");
    run.compressed_consumed += 8;
  }
  return run;
}

}  // namespace wavesz::deflate
