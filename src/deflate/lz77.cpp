#include "deflate/lz77.hpp"

#include <algorithm>
#include <bit>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace wavesz::deflate {
namespace {

/// Length of the common prefix of a and b, capped at max_len: eight bytes
/// per step via XOR + count-trailing-zeros (the little-endian load puts the
/// first memory byte in the low bits on every host), byte-wise tail.
int match_extend(const std::uint8_t* a, const std::uint8_t* b, int max_len) {
  int len = 0;
  while (len + 8 <= max_len) {
    const std::uint64_t diff = load_le64(a + len) ^ load_le64(b + len);
    if (diff != 0) {
      return len + (std::countr_zero(diff) >> 3);
    }
    len += 8;
  }
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct MatcherConfig {
  int max_chain;
  bool lazy;
  int nice_length;  ///< stop chain walk once a match this long is found
};

MatcherConfig config_for(Level level) {
  switch (level) {
    case Level::Fast: return {8, false, 32};
    case Level::Best: return {512, true, kMaxMatch};
  }
  return {8, false, 32};
}

/// Hash-chain store with 32-bit indices: half the memory traffic of the
/// obvious 64-bit layout, which matters because the matcher is bound by
/// pointer-chasing through `prev_`. Positions must stay below kIndexLimit;
/// tokenize() guards that with a windowed-segment fallback.
class HashChains {
 public:
  explicit HashChains(std::size_t input_size)
      : head_(kHashSize, kNil), prev_(input_size, kNil) {}

  void insert(const std::uint8_t* base, std::size_t pos) {
    const std::uint32_t h = hash3(base + pos);
    prev_[pos] = head_[h];
    head_[h] = static_cast<std::uint32_t>(pos);
  }

  /// Longest match at `pos` looking back through the chain, within window.
  std::pair<int, std::size_t> find(const std::uint8_t* base, std::size_t pos,
                                   std::size_t input_size,
                                   const MatcherConfig& cfg) const {
    int best_len = 0;
    std::size_t best_dist = 0;
    const std::size_t limit =
        pos >= kWindowSize ? pos - kWindowSize : 0;
    const int max_len = static_cast<int>(
        std::min<std::size_t>(kMaxMatch, input_size - pos));
    if (max_len < kMinMatch) return {0, 0};
    std::uint32_t cand = head_[hash3(base + pos)];
    int chain = cfg.max_chain;
    while (cand != kNil && cand >= limit && chain-- > 0) {
      const auto c = static_cast<std::size_t>(cand);
      // Quick reject: a candidate can only beat best_len if it also matches
      // at offset best_len, so one byte compare skips most of the chain
      // without changing which match wins. Safe while best_len < max_len —
      // the break below guarantees that.
      if (c < pos &&
          base[c + static_cast<std::size_t>(best_len)] ==
              base[pos + static_cast<std::size_t>(best_len)]) {
        const int len = match_extend(base + c, base + pos, max_len);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - c;
          if (len >= cfg.nice_length || len >= max_len) break;
        }
      }
      cand = prev_[c];
    }
    if (best_len < kMinMatch) return {0, 0};
    return {best_len, best_dist};
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> prev_;
};

/// Largest span the 32-bit chain indices can address (kNil is reserved).
constexpr std::size_t kIndexLimit = 0xffffffffull;

}  // namespace

std::vector<Token> tokenize(std::span<const std::uint8_t> input,
                            Level level, std::size_t dict_len) {
  WAVESZ_REQUIRE(dict_len <= input.size(),
                 "dictionary longer than the input span");
  if (input.size() >= kIndexLimit) {
    // Windowed-segment fallback for inputs the 32-bit chains cannot index:
    // tokenize 1 GiB pieces, each primed with the previous kWindowSize
    // bytes so matches still cross the seams. Token semantics (positions
    // relative to the covered bytes) are unchanged.
    constexpr std::size_t kSegment = 1ull << 30;
    std::vector<Token> out;
    out.reserve(input.size() / 4 + 16);
    std::size_t start = dict_len;
    while (start < input.size()) {
      const std::size_t take = std::min(kSegment, input.size() - start);
      const std::size_t primed = std::min(kWindowSize, start);
      const auto part =
          tokenize(input.subspan(start - primed, primed + take), level,
                   primed);
      out.insert(out.end(), part.begin(), part.end());
      start += take;
    }
    return out;
  }
  const MatcherConfig cfg = config_for(level);
  std::vector<Token> out;
  out.reserve((input.size() - dict_len) / 4 + 16);
  const std::size_t n = input.size();
  if (n == 0 || dict_len == n) return out;
  HashChains chains(n);
  const std::uint8_t* base = input.data();
  // Seed the window with every dictionary position (including the last two,
  // whose hash windows straddle the boundary into live data).
  for (std::size_t p = 0; p < dict_len && p + kMinMatch <= n; ++p) {
    chains.insert(base, p);
  }

  std::size_t pos = dict_len;
  while (pos < n) {
    if (pos + kMinMatch > n) {
      out.push_back(Token{0, 0, base[pos]});
      ++pos;
      continue;
    }
    auto [len, dist] = chains.find(base, pos, n, cfg);
    if (cfg.lazy && len >= kMinMatch && len < cfg.nice_length &&
        pos + 1 + kMinMatch <= n) {
      // One-step lazy evaluation: if the next position holds a strictly
      // longer match, emit a literal here instead.
      chains.insert(base, pos);
      auto [len2, dist2] = chains.find(base, pos + 1, n, cfg);
      if (len2 > len) {
        out.push_back(Token{0, 0, base[pos]});
        ++pos;
        // The chain entry for `pos` is already inserted; continue from the
        // deferred position which will re-find len2.
        continue;
      }
      // Keep the current match; fall through to emit it. `pos` was already
      // inserted into the chains above.
      out.push_back(Token{static_cast<std::uint16_t>(len),
                          static_cast<std::uint16_t>(dist), 0});
      for (std::size_t k = 1; k < static_cast<std::size_t>(len) &&
                              pos + k + kMinMatch <= n;
           ++k) {
        chains.insert(base, pos + k);
      }
      pos += static_cast<std::size_t>(len);
      continue;
    }
    if (len >= kMinMatch) {
      out.push_back(Token{static_cast<std::uint16_t>(len),
                          static_cast<std::uint16_t>(dist), 0});
      for (std::size_t k = 0; k < static_cast<std::size_t>(len) &&
                              pos + k + kMinMatch <= n;
           ++k) {
        chains.insert(base, pos + k);
      }
      pos += static_cast<std::size_t>(len);
    } else {
      chains.insert(base, pos);
      out.push_back(Token{0, 0, base[pos]});
      ++pos;
    }
  }
  return out;
}

std::vector<std::uint8_t> expand(std::span<const Token> tokens) {
  std::vector<std::uint8_t> out;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      WAVESZ_REQUIRE(t.distance >= 1 && t.distance <= out.size(),
                     "token distance out of range");
      WAVESZ_REQUIRE(t.length >= kMinMatch && t.length <= kMaxMatch,
                     "token length out of range");
      const std::size_t start = out.size() - t.distance;
      for (std::size_t k = 0; k < t.length; ++k) {
        out.push_back(out[start + k]);  // overlapping copies by design
      }
    }
  }
  return out;
}

}  // namespace wavesz::deflate
