// RFC 1951 constant tables: length/distance code bases and extra-bit counts,
// the code-length alphabet permutation, and the fixed Huffman code lengths.
#pragma once

#include <array>
#include <cstdint>

namespace wavesz::deflate {

inline constexpr int kEndOfBlock = 256;
inline constexpr int kNumLitLen = 288;  // 0..287 (286/287 reserved)
inline constexpr int kNumDist = 30;
inline constexpr int kNumClc = 19;  // code-length alphabet

// Length codes 257..285.
inline constexpr std::array<std::uint16_t, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr std::array<std::uint8_t, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance codes 0..29.
inline constexpr std::array<std::uint16_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
inline constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code-length-code lengths appear in the dynamic header.
inline constexpr std::array<std::uint8_t, 19> kClcOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

/// Length code index (0-based into kLengthBase) for a match length 3..258.
int length_code(int length);

/// Distance code index for a distance 1..32768.
int distance_code(int distance);

/// Fixed lit/len code lengths per RFC 1951 §3.2.6.
std::array<std::uint8_t, kNumLitLen> fixed_litlen_lengths();

/// Fixed distance code lengths (5 bits each; table has 30 usable codes).
std::array<std::uint8_t, kNumDist> fixed_dist_lengths();

}  // namespace wavesz::deflate
