// Fuzz target: Huffman blob decode, table-driven fast path vs reference.
//
// Contract: on any input, sz::huffman_decode (which takes the multi-bit
// table path when the code is well-formed) and huffman_decode_reference
// (bit-at-a-time canonical walk) either both throw wavesz::Error or both
// return identical symbol streams. Forged tables — over-subscribed Kraft
// sums, duplicate entries, claimed counts past the payload — must be
// rejected identically by both.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "fuzz_common.hpp"
#include "sz/huffman_codec.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace wavesz;
  if (size > fuzz::kMaxInput) return 0;
  const std::span<const std::uint8_t> input(data, size);

  bool fast_ok = false;
  bool ref_ok = false;
  std::vector<std::uint16_t> fast;
  std::vector<std::uint16_t> ref;
  try {
    fast = sz::huffman_decode(input);
    fast_ok = true;
  } catch (const Error&) {
  }
  try {
    ref = sz::huffman_decode_reference(input);
    ref_ok = true;
  } catch (const Error&) {
  }
  if (fast_ok != ref_ok || (fast_ok && fast != ref)) std::abort();
  return 0;
}
