// Fuzz target: pipelined-vs-barrier compression equivalence.
//
// Contract: for ANY config/field the staged slab pipeline (pipeline_depth
// >= 1) must produce exactly the bytes of the barrier path (depth 0) — or
// fail with wavesz::Error exactly when the barrier path fails. The input
// bytes are a recipe, not a container: they pick the depth, the codec /
// container variant, the grid shape and the error bound, and the remainder
// becomes the field (non-finite values included, so NaN/Inf rejection has
// to agree between the two paths too). Any divergence aborts.
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/stream.hpp"
#include "core/wavesz.hpp"
#include "fuzz_common.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

namespace {

/// Outcome of one compress attempt: the container bytes, or "it threw".
struct Outcome {
  bool ok = false;
  std::vector<std::uint8_t> bytes;
  friend bool operator==(const Outcome&, const Outcome&) = default;
};

template <typename Fn>
Outcome attempt(Fn&& fn) {
  Outcome o;
  try {
    o.bytes = fn();
    o.ok = true;
  } catch (const wavesz::Error&) {
  }
  return o;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace wavesz;
  if (size < 8 || size > fuzz::kMaxInput) return 0;

  const int depth = 1 + data[0] % 4;
  const unsigned variant = data[1] % 9u;
  const std::size_t rows = 4 + data[2] % 44u;
  const std::size_t cols = 4 + data[3] % 44u;
  const Dims dims = Dims::d2(rows, cols);

  sz::Config cfg;
  cfg.error_bound = (1 + data[4] % 9) * 1e-4;
  cfg.base = (data[4] & 0x10) ? sz::EbBase::Two : sz::EbBase::Ten;
  if (data[5] & 1) cfg.index_chunk_symbols = 256;

  // Field from the raw tail bytes, recycled to fill the grid. Deliberately
  // unsanitized: bit patterns include NaN/Inf/denormals.
  const std::span<const std::uint8_t> tail(data + 6, size - 6);
  std::vector<float> field(dims.count());
  for (std::size_t i = 0; i < field.size(); ++i) {
    std::uint32_t u = 0;
    for (int b = 0; b < 4; ++b) {
      u = (u << 8) | tail[(i * 4 + static_cast<std::size_t>(b)) % tail.size()];
    }
    field[i] = std::bit_cast<float>(u);
  }

  const std::span<const float> fs(field);
  auto sz_run = [&](int d) {
    return attempt([&] {
      sz::Config c = cfg;
      c.pipeline_depth = d;
      return sz::compress(fs, dims, c).bytes;
    });
  };
  auto wave_run = [&](int d) {
    return attempt([&] {
      sz::Config c = cfg;
      c.pipeline_depth = d;
      return wave::compress(fs, dims, c).bytes;
    });
  };
  auto stream_run = [&](int d) {
    return attempt([&] {
      sz::Config c = cfg;
      c.pipeline_depth = d;
      wave::StreamCompressor sc(dims, c, 1 + data[5] % 4u);
      sc.feed(fs);
      return sc.finish();
    });
  };

  Outcome barrier, piped;
  switch (variant) {
    case 0:  // SZ-1.4, Huffman + v2 index (the defaults)
      barrier = sz_run(0);
      piped = sz_run(depth);
      break;
    case 1:  // SZ-1.4, raw codes
      cfg.huffman = false;
      barrier = sz_run(0);
      piped = sz_run(depth);
      break;
    case 2:  // SZ-1.4, v1 container (no chunk index)
      cfg.chunk_index = false;
      barrier = sz_run(0);
      piped = sz_run(depth);
      break;
    case 3: {  // SZ-1.4 float64
      const std::vector<double> wide(field.begin(), field.end());
      auto run64 = [&](int d) {
        return attempt([&] {
          sz::Config c = cfg;
          c.pipeline_depth = d;
          return sz::compress(std::span<const double>(wide), dims, c).bytes;
        });
      };
      barrier = run64(0);
      piped = run64(depth);
      break;
    }
    case 4:  // waveSZ defaults (base-2, gzip only)
      cfg = wave::default_config();
      cfg.pipeline_depth = 0;
      barrier = wave_run(0);
      piped = wave_run(depth);
      break;
    case 5:  // waveSZ with the customized Huffman stage
      cfg.huffman = true;
      barrier = wave_run(0);
      piped = wave_run(depth);
      break;
    case 6:  // waveSZ v1 container
      cfg.chunk_index = false;
      barrier = wave_run(0);
      piped = wave_run(depth);
      break;
    case 7:  // SZx ultra-fast block codec (single fused section)
      cfg.codec = sz::Codec::Szx;
      cfg.huffman = false;
      cfg.chunk_index = false;
      barrier = sz_run(0);
      piped = sz_run(depth);
      break;
    default:  // streaming archive, whole chunks through the 3-stage pipe
      barrier = stream_run(0);
      piped = stream_run(depth);
      break;
  }

  if (!(barrier == piped)) std::abort();
  return 0;
}
