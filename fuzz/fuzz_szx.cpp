// Fuzz target: SZx-fast container parse + decode (float32 and float64).
//
// Contract: sz::decompress / decompress64 are contained on arbitrary
// SzxFast-tagged bytes — wavesz::Error or a fully-owned result whose
// element count matches the dims the parser reported. The interesting
// states are the per-block tag dispatch (const / raw / k-bit), the packed
// delta-width validation, the block-count-vs-header cross-check and the
// trailing-bytes rejection; the seed corpus covers all three block kinds.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "fuzz_common.hpp"
#include "sz/compressor.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace wavesz;
  if (size > fuzz::kMaxInput) return 0;
  const std::span<const std::uint8_t> input(data, size);

  try {
    Dims dims;
    const auto out = sz::decompress(input, &dims);
    if (out.size() != dims.count()) std::abort();
    // Touch every element: proves the buffer is fully owned under ASan.
    for (float v : out) (void)v;
  } catch (const Error&) {
  }
  try {
    Dims dims;
    const auto out = sz::decompress64(input, &dims);
    if (out.size() != dims.count()) std::abort();
    for (double v : out) (void)v;
  } catch (const Error&) {
  }
  return 0;
}
