// Seed-corpus generator for the fuzz harnesses.
//
// Emits small, VALID artifacts of every format under test into
// <outdir>/<harness>/seed_*.bin. Starting libFuzzer (or the standalone
// driver) from well-formed inputs matters: random bytes die at the magic
// check, but a mutated valid container reaches the deep parser states —
// Huffman tables, section framing, wavefront layout math — where the
// real bugs live. Deterministic by construction (fixed recipes), so the
// corpus is reproducible and diffs are meaningful.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman_codec.hpp"

namespace fs = std::filesystem;

namespace {

void write_seed(const fs::path& dir, int n,
                const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  const auto path = dir / ("seed_" + std::to_string(n) + ".bin");
  std::ofstream out(path, std::ios::binary);
  // wavesz-lint: allow(raw-memory) iostream write() contract; tool code.
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    std::exit(2);
  }
}

std::vector<float> field(const wavesz::Dims& dims, std::uint64_t seed) {
  wavesz::data::FieldRecipe r;
  r.seed = seed;
  return wavesz::data::generate(r, dims);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wavesz;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);

  // Raw bytes with LZ77-friendly structure: a synthetic field reused as
  // the plaintext for the DEFLATE/gzip seeds.
  const Dims d2 = Dims::d2(48, 48);
  const auto f32 = field(d2, 11);
  std::vector<std::uint8_t> plain(f32.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(static_cast<int>(f32[i] * 8.0f) & 0xff);
  }

  write_seed(root / "inflate", 0, deflate::compress(plain,
                                                    deflate::Level::Fast));
  write_seed(root / "inflate", 1, deflate::compress(plain,
                                                    deflate::Level::Best));
  write_seed(root / "inflate", 2,
             deflate::compress(std::vector<std::uint8_t>{},
                               deflate::Level::Best));

  write_seed(root / "gzip", 0, deflate::gzip_compress(plain,
                                                      deflate::Level::Fast));
  write_seed(root / "gzip", 1,
             deflate::gzip_compress(std::vector<std::uint8_t>{},
                                    deflate::Level::Best));

  {
    sz::Config cfg;
    write_seed(root / "sz14", 0, sz::compress(f32, d2, cfg).bytes);
    const Dims d1 = Dims::d1(512);
    write_seed(root / "sz14", 1, sz::compress(field(d1, 13), d1, cfg).bytes);
    const Dims d3 = Dims::d3(8, 16, 16);
    write_seed(root / "sz14", 2, sz::compress(field(d3, 17), d3, cfg).bytes);
    const auto narrow = field(d2, 19);
    std::vector<double> wide(narrow.begin(), narrow.end());
    write_seed(root / "sz14", 3, sz::compress(wide, d2, cfg).bytes);
  }

  {
    sz::Config cfg;
    write_seed(root / "wavesz", 0, wave::compress(f32, d2, cfg).bytes);
    const Dims d3 = Dims::d3(8, 16, 16);
    write_seed(root / "wavesz", 1,
               wave::compress(field(d3, 23), d3, cfg).bytes);
  }

  {
    // Chunk-index seeds: v2 containers whose index actually has several
    // entries (tiny chunk granularity), so mutations land on entry fields
    // and not just the header. Both variants, Huffman and raw codes, plus
    // a float64 stream and a v1 opt-out for the fallback path.
    sz::Config cfg;
    cfg.index_chunk_symbols = 256;
    write_seed(root / "chunk_index", 0, sz::compress(f32, d2, cfg).bytes);
    write_seed(root / "chunk_index", 1, wave::compress(f32, d2, cfg).bytes);
    cfg.huffman = false;
    write_seed(root / "chunk_index", 2, sz::compress(f32, d2, cfg).bytes);
    cfg.huffman = true;
    const auto narrow = field(d2, 29);
    std::vector<double> wide(narrow.begin(), narrow.end());
    write_seed(root / "chunk_index", 3, sz::compress(wide, d2, cfg).bytes);
    cfg.chunk_index = false;
    write_seed(root / "chunk_index", 4, sz::compress(f32, d2, cfg).bytes);
  }

  {
    // SZx seeds covering every block kind: a smooth field (packed k-bit
    // blocks), a constant field (const blocks), a field with non-finite
    // spikes (raw fallback blocks), a float64 stream and a tiny-block
    // layout so mutations land on block tags, not just the preamble.
    sz::Config cfg = sz::Config::ultrafast();
    write_seed(root / "szx", 0, sz::compress(f32, d2, cfg).bytes);
    std::vector<float> constant(d2.count(), 3.25f);
    write_seed(root / "szx", 1, sz::compress(constant, d2, cfg).bytes);
    auto spiky = field(d2, 31);
    spiky[7] = std::numeric_limits<float>::quiet_NaN();
    spiky[900] = std::numeric_limits<float>::infinity();
    sz::Config abs_cfg = cfg;
    abs_cfg.mode = sz::EbMode::Absolute;
    abs_cfg.error_bound = 1e-3;
    write_seed(root / "szx", 2, sz::compress(spiky, d2, abs_cfg).bytes);
    const auto narrow = field(d2, 37);
    std::vector<double> wide(narrow.begin(), narrow.end());
    write_seed(root / "szx", 3, sz::compress(wide, d2, cfg).bytes);
    sz::Config tiny = cfg;
    tiny.szx_block_elems = 8;
    write_seed(root / "szx", 4, sz::compress(f32, d2, tiny).bytes);
  }

  {
    // Pipeline-equivalence recipes (fuzz_pipeline): 6 header bytes (depth,
    // variant, rows, cols, bound selector, chunk knob) followed by raw
    // field bytes. One seed per variant family so the mutator starts inside
    // every codec/container arm of the differential.
    const auto f = field(Dims::d2(32, 32), 41);
    std::vector<std::uint8_t> payload;
    for (float v : f) {
      const auto u = std::bit_cast<std::uint32_t>(v);
      for (int b = 24; b >= 0; b -= 8) {
        payload.push_back(static_cast<std::uint8_t>((u >> b) & 0xffu));
      }
    }
    for (std::uint8_t variant = 0; variant < 9; ++variant) {
      std::vector<std::uint8_t> seed = {2, variant, 28, 28, 3, 1};
      seed.insert(seed.end(), payload.begin(), payload.end());
      write_seed(root / "pipeline", variant, seed);
    }
  }

  {
    // Skewed symbol stream shaped like real quantization codes: a heavy
    // center symbol with a geometric tail, plus a degenerate one-symbol
    // stream and an empty one.
    std::vector<std::uint16_t> codes;
    for (std::size_t i = 0; i < 4096; ++i) {
      const auto wobble = static_cast<std::uint16_t>((i * i * 31) % 97);
      codes.push_back(static_cast<std::uint16_t>(
          wobble < 80 ? 1024 : 1024 + (wobble % 13) - 6));
    }
    write_seed(root / "huffman", 0, sz::huffman_encode(codes, 1));
    write_seed(root / "huffman", 1,
               sz::huffman_encode(std::vector<std::uint16_t>(64, 7), 1));
    write_seed(root / "huffman", 2,
               sz::huffman_encode(std::vector<std::uint16_t>{}, 1));
  }

  std::printf("seed corpus written under %s\n", root.string().c_str());
  return 0;
}
