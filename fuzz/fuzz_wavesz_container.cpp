// Fuzz target: waveSZ container parse + wavefront reconstruction.
//
// Contract: wave::decompress / decompress64 are contained on arbitrary
// bytes — the wavefront layout math (diagonal index remapping) must never
// index outside the buffer the header sized, whatever the header claims.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/wavesz.hpp"
#include "fuzz_common.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace wavesz;
  if (size > fuzz::kMaxInput) return 0;
  const std::span<const std::uint8_t> input(data, size);

  try {
    Dims dims;
    const auto out = wave::decompress(input, &dims);
    if (out.size() != dims.count()) std::abort();
    for (float v : out) (void)v;
  } catch (const Error&) {
  }
  try {
    Dims dims;
    const auto out = wave::decompress64(input, &dims);
    if (out.size() != dims.count()) std::abort();
    for (double v : out) (void)v;
  } catch (const Error&) {
  }
  return 0;
}
