// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (libFuzzer's -fsanitize=fuzzer runtime ships with clang only).
//
// Two modes, composable:
//   fuzz_x seed1.bin seed2.bin ...            replay each file once
//   fuzz_x --rounds N seed1.bin ...           additionally run N
//       deterministic mutation rounds per seed (bit flips, truncations,
//       noise splices, extensions — the same move set as the in-tree
//       mutation-sweep tests), so a gcc-only environment still gets a
//       meaningful smoke run over the harness contract.
//
// Exit status 0 means every input (and mutant) was contained; the harness
// itself aborts on a contract violation, which the caller sees as a crash.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    *ok = false;
    return {};
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> buf(size);
  // wavesz-lint: allow(raw-memory) same iostream char* contract as
  // data/io.cpp; the driver is a test binary, not library code.
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(size));
  *ok = in.good() || size == 0;
  return buf;
}

void mutate(std::vector<std::uint8_t>& bytes, std::mt19937_64& rng) {
  if (bytes.empty()) {
    bytes.push_back(static_cast<std::uint8_t>(rng()));
    return;
  }
  switch (rng() % 4) {
    case 0:  // flip a random bit
      bytes[rng() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
      break;
    case 1:  // truncate
      bytes.resize(rng() % bytes.size());
      break;
    case 2: {  // splice a noise window
      const std::size_t at = rng() % bytes.size();
      const std::size_t len =
          std::min<std::size_t>(1 + rng() % 16, bytes.size() - at);
      for (std::size_t i = 0; i < len; ++i) {
        bytes[at + i] = static_cast<std::uint8_t>(rng());
      }
      break;
    }
    case 3: {  // duplicate-extend (trailing garbage)
      // Copy first: inserting a range that aliases the destination vector
      // is undefined once the insert reallocates.
      const std::size_t len = std::min<std::size_t>(rng() % 32, bytes.size());
      const std::vector<std::uint8_t> head(bytes.begin(),
                                           bytes.begin() +
                                               static_cast<std::ptrdiff_t>(len));
      bytes.insert(bytes.end(), head.begin(), head.end());
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  long rounds = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      // Swallow libFuzzer-style flags (-runs=..., --help) so CI can pass a
      // uniform command line to either driver.
      continue;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--rounds N] seed.bin [seed.bin ...]\n",
                 argv[0]);
    return 2;
  }

  std::size_t executed = 0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    bool ok = true;
    const auto seed = read_file(paths[p], &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", paths[p].c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++executed;
    // Deterministic per-seed stream: reruns of a failing round reproduce.
    std::mt19937_64 rng(0x5eed0000u + p);
    for (long r = 0; r < rounds; ++r) {
      auto mutant = seed;
      mutate(mutant, rng);
      LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
      ++executed;
    }
  }
  std::printf("driver: %zu input(s) contained across %zu seed file(s)\n",
              executed, paths.size());
  return 0;
}
