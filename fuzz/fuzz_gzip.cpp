// Fuzz target: gzip member parse (RFC 1952 header + DEFLATE + CRC/ISIZE).
//
// Contract: gzip_decompress is contained — wavesz::Error or success, never
// a crash. On success the recovered bytes must survive a gzip round trip:
// recompressing and decompressing them reproduces the same payload, which
// exercises the CRC-32 and ISIZE trailer checks from the producing side.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "deflate/deflate.hpp"
#include "fuzz_common.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace wavesz;
  if (size > fuzz::kMaxInput) return 0;
  const std::span<const std::uint8_t> input(data, size);

  std::vector<std::uint8_t> plain;
  try {
    plain = deflate::gzip_decompress(input);
  } catch (const Error&) {
    return 0;
  }
  const auto again = deflate::gzip_compress(plain, deflate::Level::Fast);
  const auto back = deflate::gzip_decompress(again);
  if (back != plain) std::abort();
  return 0;
}
