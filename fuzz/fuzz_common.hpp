// Shared setup for the libFuzzer harnesses.
//
// Every harness links this header's GuardInit, which lowers the process
// decode-allocation cap (util/decode_guard.hpp) to 256 MiB. That matters
// under ASan: its allocator hard-aborts on oversized requests instead of
// throwing std::bad_alloc, so a forged point_count near 2^64 would kill the
// fuzzer inside operator new before the parser's own checks could fire.
// With the cap below ASan's limit, forged sizes surface as wavesz::Error —
// the contained outcome the harness expects — and real bugs (OOB reads,
// parser crashes) remain the only way to abort.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/decode_guard.hpp"

namespace wavesz::fuzz {

/// Inputs above this size are ignored: coverage saturates far below 1 MiB
/// and huge inputs only slow the mutator down.
inline constexpr std::size_t kMaxInput = std::size_t{1} << 20;

struct GuardInit {
  GuardInit() { set_max_decode_bytes(std::size_t{1} << 28); }
};
inline const GuardInit guard_init{};

}  // namespace wavesz::fuzz
