// Fuzz target: raw DEFLATE decode, fast path vs bit-at-a-time reference.
//
// Contract: on any input, deflate::decompress and decompress_reference
// either both throw wavesz::Error or both succeed with identical bytes.
// A divergence means the table-driven fast path mis-decodes some stream
// the reference accepts — exactly the class of bug differential fuzzing
// exists to find.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "deflate/deflate.hpp"
#include "fuzz_common.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace wavesz;
  if (size > fuzz::kMaxInput) return 0;
  const std::span<const std::uint8_t> input(data, size);

  bool fast_ok = false;
  bool ref_ok = false;
  std::vector<std::uint8_t> fast;
  std::vector<std::uint8_t> ref;
  try {
    fast = deflate::decompress(input);
    fast_ok = true;
  } catch (const Error&) {
  }
  try {
    ref = deflate::decompress_reference(input);
    ref_ok = true;
  } catch (const Error&) {
  }
  if (fast_ok != ref_ok || (fast_ok && fast != ref)) std::abort();
  return 0;
}
