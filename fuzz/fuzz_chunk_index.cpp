// Fuzz target: the container v2 chunk-index surface.
//
// Seeds are valid v2 (chunk-indexed) SZ-1.4 and waveSZ containers; the
// mutator's job is to forge the index block — overlapping / out-of-range /
// non-monotonic offsets, corrupted per-chunk CRCs, truncated entry tables —
// and every forgery must surface as wavesz::Error before the decoder
// allocates or writes output. On top of containment, the harness checks two
// invariants the index exists to uphold:
//
//   * serial and thread-parallel decode agree exactly: the same inputs are
//     accepted, and accepted inputs decode bit-identically at any budget;
//   * a leading-slab region decode equals the prefix of the full field.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/wavesz.hpp"
#include "fuzz_common.hpp"
#include "sz/compressor.hpp"
#include "sz/container.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

namespace {

using namespace wavesz;

/// Serial vs parallel decode of one variant: both reject, or both accept
/// with identical bytes. `Decode(bytes, opts, dims*)` is sz::decompress or
/// wave::decompress (float32 or float64).
template <typename Decode>
auto check_parallel_agreement(std::span<const std::uint8_t> input,
                              Decode decode, Dims& dims, bool& ok) {
  decltype(decode(input, sz::DecodeOptions{}, &dims)) serial;
  ok = false;
  try {
    serial = decode(input, sz::DecodeOptions{1, 1}, &dims);
    if (serial.size() != dims.count()) std::abort();
    ok = true;
  } catch (const Error&) {
  }
  bool par_ok = false;
  try {
    Dims pdims;
    const auto par = decode(input, sz::DecodeOptions{4, 1}, &pdims);
    par_ok = true;
    if (!ok || par != serial || !(pdims == dims)) std::abort();
  } catch (const Error&) {
  }
  if (ok != par_ok) std::abort();
  return serial;
}

/// A region covering the leading half of the outer axis is a contiguous
/// raster prefix of the field, so its decode must equal the front of the
/// full serial decode byte for byte.
template <typename Full, typename RegionFn>
void check_leading_slab(std::span<const std::uint8_t> input, const Dims& dims,
                        const Full& full, RegionFn region_fn) {
  sz::Region rg;
  rg.hi[0] = std::max<std::size_t>(1, dims[0] / 2);
  for (int a = 1; a < dims.rank; ++a) {
    rg.hi[static_cast<std::size_t>(a)] = dims[a];
  }
  try {
    const auto res = region_fn(input, rg, sz::DecodeOptions{2, 1});
    const std::size_t n = res.data.size();
    if (n != res.region_dims.count() || n > full.size()) std::abort();
    for (std::size_t i = 0; i < n; ++i) {
      if (res.data[i] != full[i]) std::abort();
    }
    if (res.compressed_bytes_read > input.size()) std::abort();
  } catch (const Error&) {
    // A forged index a full decode tolerated may still fail the region
    // path's tighter prefix accounting; rejection is a valid outcome.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > fuzz::kMaxInput) return 0;
  const std::span<const std::uint8_t> input(data, size);

  {
    Dims dims;
    bool ok = false;
    const auto full = check_parallel_agreement(
        input,
        [](auto b, const sz::DecodeOptions& o, Dims* d) {
          return sz::decompress(b, o, d);
        },
        dims, ok);
    if (ok) {
      check_leading_slab(input, dims, full,
                         [](auto b, const sz::Region& r,
                            const sz::DecodeOptions& o) {
                           return sz::decompress_region(b, r, o);
                         });
    }
  }
  {
    Dims dims;
    bool ok = false;
    const auto full = check_parallel_agreement(
        input,
        [](auto b, const sz::DecodeOptions& o, Dims* d) {
          return wave::decompress(b, o, d);
        },
        dims, ok);
    if (ok && dims.rank >= 2) {
      check_leading_slab(input, dims, full,
                         [](auto b, const sz::Region& r,
                            const sz::DecodeOptions& o) {
                           return wave::decompress_region(b, r, o);
                         });
    }
  }
  {
    Dims dims;
    bool ok = false;
    check_parallel_agreement(
        input,
        [](auto b, const sz::DecodeOptions& o, Dims* d) {
          return sz::decompress64(b, o, d);
        },
        dims, ok);
  }
  return 0;
}
