// Tests for the float64 data path (SZ's `-d` mode): quantizer, truncation
// codec, SZ-1.4 and waveSZ round trips, and container dtype enforcement.
// Crucially, doubles admit bounds far below float precision — the tests use
// bounds a float32 path could not honour.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

std::vector<double> field64(const Dims& dims, std::uint64_t seed) {
  data::FieldRecipe r;
  r.seed = seed;
  r.base_frequency = 1.0;
  const auto f32 = data::generate(r, dims);
  std::vector<double> out(f32.size());
  // Re-derive at full double precision (generate() narrows to float).
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<double>(f32[i]) +
             1e-9 * data::hash_noise(seed, i, 0, 0);
  }
  return out;
}

bool within64(std::span<const double> a, std::span<const double> b,
              double bound) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > bound * (1 + 1e-12)) return false;
  }
  return true;
}

TEST(Quantizer64, MatchesFloatPathOnCoarseData) {
  const sz::LinearQuantizer q(0.5, 16);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> vals(-100.0, 100.0);
  for (int i = 0; i < 5000; ++i) {
    const double pred = vals(rng);
    const double orig = vals(rng);
    const auto a = q.quantize(pred, orig);
    const auto b = q.quantize64(pred, orig);
    EXPECT_EQ(a.code, b.code);
    if (a.code != 0) {
      EXPECT_NEAR(static_cast<double>(a.reconstructed), b.reconstructed,
                  1e-5);
      EXPECT_EQ(q.reconstruct64(pred, b.code), b.reconstructed);
    }
  }
}

TEST(Quantizer64, BoundsBelowFloatPrecisionHold) {
  // eb = 1e-12 around values ~1e3: float32 has only ~6e-5 resolution there.
  const double eb = 1e-12;
  const sz::LinearQuantizer q(eb, 16);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> vals(1000.0, 1001.0);
  std::uniform_real_distribution<double> diffs(-1e-9, 1e-9);
  int quantized = 0;
  for (int i = 0; i < 5000; ++i) {
    const double pred = vals(rng);
    const double orig = pred + diffs(rng);
    const auto r = q.quantize64(pred, orig);
    if (r.code != 0) {
      ++quantized;
      EXPECT_LE(std::fabs(r.reconstructed - orig), eb);
    }
  }
  EXPECT_GT(quantized, 4000);
}

class Truncation64Bound : public ::testing::TestWithParam<double> {};

TEST_P(Truncation64Bound, RoundTripWithinBound) {
  const double bound = GetParam();
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> vals(-bound * 1e6, bound * 1e6);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(vals(rng));
  values.push_back(0.0);
  values.push_back(bound / 2);
  values.push_back(-1e-300);  // deep subnormal-adjacent

  const auto blob = sz::truncation_encode64(values, bound);
  const auto decoded = sz::truncation_decode64(blob, values.size(), bound);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::fabs(values[i] - decoded[i]), bound) << values[i];
    EXPECT_EQ(sz::truncation_roundtrip64(values[i], bound), decoded[i]);
  }
  // Fewer bits than raw float64 whenever the bound carries real slack.
  EXPECT_LT(blob.size(), values.size() * sizeof(double));
}

INSTANTIATE_TEST_SUITE_P(Bounds, Truncation64Bound,
                         ::testing::Values(1e-3, 1e-9, 1e-15, 1.0));

TEST(Truncation64, LongMantissaKeepsExactPrefix) {
  // k > 32 exercises the split-word bit packing.
  const double v = 1.0 + std::ldexp(1.0, -45);
  const double bound = std::ldexp(1.0, -50);
  const double rt = sz::truncation_roundtrip64(v, bound);
  EXPECT_LE(std::fabs(v - rt), bound);
  const auto blob = sz::truncation_encode64(std::vector<double>{v}, bound);
  EXPECT_EQ(sz::truncation_decode64(blob, 1, bound)[0], rt);
}

class F64RoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(F64RoundTrip, SzAndWaveHonourTightBounds) {
  const auto [rank, eb] = GetParam();
  const Dims dims = rank == 2 ? Dims::d2(48, 64) : Dims::d3(10, 20, 18);
  const auto field = field64(dims, static_cast<std::uint64_t>(rank));
  sz::Config cfg;
  cfg.error_bound = eb;
  cfg.mode = sz::EbMode::Absolute;

  const auto c_sz = sz::compress(std::span<const double>(field), dims, cfg);
  EXPECT_EQ(c_sz.header.dtype, 1);
  Dims out_dims;
  const auto d_sz = sz::decompress64(c_sz.bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  EXPECT_TRUE(within64(field, d_sz, eb));

  auto wcfg = wave::default_config();
  wcfg.error_bound = eb;
  wcfg.mode = sz::EbMode::Absolute;
  const auto c_wave =
      wave::compress(std::span<const double>(field), dims, wcfg);
  const auto d_wave = wave::decompress64(c_wave.bytes);
  EXPECT_TRUE(within64(field, d_wave, c_wave.header.eb_absolute));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, F64RoundTrip,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(1e-3, 1e-8, 1e-12)));

TEST(F64, True3dModeWorks) {
  const Dims dims = Dims::d3(8, 16, 16);
  const auto field = field64(dims, 5);
  auto cfg = wave::default_config();
  cfg.error_bound = 1e-9;
  cfg.mode = sz::EbMode::Absolute;
  const auto c = wave::compress(std::span<const double>(field), dims, cfg,
                                wave::LayoutMode::True3D);
  const auto d = wave::decompress64(c.bytes);
  EXPECT_TRUE(within64(field, d, c.header.eb_absolute));
}

TEST(F64, DtypeMismatchIsRejectedBothWays) {
  const Dims dims = Dims::d2(16, 16);
  const auto f64 = field64(dims, 7);
  std::vector<float> f32(f64.begin(), f64.end());
  sz::Config cfg;
  const auto c64 = sz::compress(std::span<const double>(f64), dims, cfg);
  const auto c32 = sz::compress(std::span<const float>(f32), dims, cfg);
  EXPECT_THROW(sz::decompress(c64.bytes), Error);
  EXPECT_THROW(sz::decompress64(c32.bytes), Error);
  const auto w64 =
      wave::compress(std::span<const double>(f64), dims,
                     wave::default_config());
  EXPECT_THROW(wave::decompress(w64.bytes), Error);
}

TEST(F64, DoublePrecisionBeatsFloatWhereFloatCannotFollow) {
  // At eb = 1e-10 on O(1e3) values, the float32 pipeline cannot even
  // represent the reconstruction targets; the double path must stay
  // bounded while a float round trip of the same data must not.
  const Dims dims = Dims::d2(32, 32);
  const auto field = field64(dims, 9);
  std::vector<double> shifted(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    shifted[i] = field[i] + 1000.0;
  }
  sz::Config cfg;
  cfg.error_bound = 1e-10;
  cfg.mode = sz::EbMode::Absolute;
  const auto c = sz::compress(std::span<const double>(shifted), dims, cfg);
  const auto d = sz::decompress64(c.bytes);
  EXPECT_TRUE(within64(shifted, d, 1e-10));
  // Narrowing the input to float already destroys the bound.
  bool float_violates = false;
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    if (std::fabs(static_cast<double>(static_cast<float>(shifted[i])) -
                  shifted[i]) > 1e-10) {
      float_violates = true;
      break;
    }
  }
  EXPECT_TRUE(float_violates);
}

}  // namespace
}  // namespace wavesz
