// Tests for the FPGA pipeline simulator: schedule semantics (stall
// structure of wavefront vs raster vs GhostSZ orders), the paper's closed-
// form timing, the throughput model, and the Table 6 resource model.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "fpga/calibration.hpp"
#include "fpga/model.hpp"
#include "fpga/resources.hpp"
#include "fpga/schedule.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

namespace wavesz::fpga {
namespace {

// ------------------------------------------------------------ calibration

TEST(Calibration, DepthsMatchDocumentedValues) {
  EXPECT_EQ(pqd_depth_base2(), 117);
  EXPECT_EQ(pqd_depth_base10(), 152);
  EXPECT_GT(pqd_depth_base10(), pqd_depth_base2());  // the §3.3 win
  EXPECT_LT(ghost_pred_depth(), pqd_depth_base2());  // why GhostSZ pipelines
}

// --------------------------------------------------------------- schedule

ScheduleConfig wave_cfg(int depth = 117) {
  ScheduleConfig c;
  c.pii = 1;
  c.depth = depth;
  c.dep_latency = depth;
  return c;
}

TEST(Schedule, WavefrontBodyIsStallFreeWhenLambdaCoversDelta) {
  // Lambda = d0 - 1 = 199 >= Delta = 117: occupancy ~ 1 (paper §3.2).
  const auto s = simulate_wavefront(200, 2000, wave_cfg());
  EXPECT_EQ(s.points, 200u * 2000u);
  EXPECT_GT(s.occupancy(), 0.96);  // only head/tail warmup is imperfect
  EXPECT_LT(s.stall_cycles, s.points / 20);
}

TEST(Schedule, WavefrontStallsWhenLambdaShorterThanDelta) {
  // Hurricane geometry: Lambda = 99 < Delta = 117 -> per-column stalls,
  // occupancy ~ Lambda/Delta.
  const auto s = simulate_wavefront(100, 20000, wave_cfg());
  EXPECT_LT(s.occupancy(), 0.92);
  EXPECT_GT(s.occupancy(), 0.75);
  EXPECT_GT(s.stall_cycles, 0u);
}

TEST(Schedule, RasterOrderStallsOnEveryInteriorPoint) {
  // The west neighbour finished Delta cycles after it issued, one iteration
  // earlier: every interior point waits ~Delta (the Fig. 3 pathology).
  const ScheduleConfig cfg = wave_cfg();
  const auto s = simulate_raster(64, 64, cfg);
  const auto interior = static_cast<std::uint64_t>(63 * 63);
  EXPECT_GT(s.stall_cycles,
            interior * static_cast<std::uint64_t>(cfg.depth - 5));
  EXPECT_LT(s.occupancy(), 0.02);
}

TEST(Schedule, WavefrontBeatsRasterByOrderDelta) {
  const auto wf = simulate_wavefront(256, 1024, wave_cfg());
  const auto ra = simulate_raster(256, 1024, wave_cfg());
  EXPECT_GT(static_cast<double>(ra.makespan) /
                static_cast<double>(wf.makespan),
            50.0);
}

TEST(Schedule, GhostHidesPredictionLatencyAcrossRows) {
  // Column staging interleaves d0 independent rows; with d0 * pII well above
  // the prediction chain, the pipeline sustains its initiation interval.
  ScheduleConfig cfg;
  cfg.pii = kGhostPii;
  cfg.depth = 152;
  cfg.dep_latency = ghost_pred_depth();
  const auto s = simulate_ghost(100, 5000, cfg);
  EXPECT_NEAR(s.occupancy(), 1.0 / kGhostPii, 0.02);
}

TEST(Schedule, GhostStallsWhenTooFewRows) {
  // With only 4 rows, the west dependency (45 cycles) dominates the 8-cycle
  // round trip of the column stage: throughput collapses.
  ScheduleConfig cfg;
  cfg.pii = kGhostPii;
  cfg.depth = 152;
  cfg.dep_latency = ghost_pred_depth();
  const auto s = simulate_ghost(4, 5000, cfg);
  EXPECT_LT(s.occupancy(), 0.2);
}

TEST(Schedule, SinglePointAndSingleRowEdgeCases) {
  const auto one = simulate_wavefront(1, 1, wave_cfg());
  EXPECT_EQ(one.points, 1u);
  EXPECT_EQ(one.stall_cycles, 0u);
  // A single row is all border in the wavefront design: no stalls.
  const auto row = simulate_wavefront(1, 100, wave_cfg());
  EXPECT_EQ(row.stall_cycles, 0u);
  EXPECT_THROW(simulate_wavefront(0, 5, wave_cfg()), Error);
}

TEST(Schedule, IdealClosedFormMatchesPaper) {
  // Paper §3.2: start(r, c) = c*Lambda + r; end(r, c) = (c+1)*Lambda + r-1;
  // the start of (r, c+1) is one cycle after the end of (r, c).
  const std::uint64_t lambda = 57;
  for (std::uint64_t c = 0; c < 5; ++c) {
    for (std::uint64_t r = 1; r <= lambda; ++r) {
      EXPECT_EQ(ideal_end_cycle(r, c, lambda) + 1,
                ideal_start_cycle(r, c + 1, lambda));
      EXPECT_EQ(ideal_end_cycle(r, c, lambda) - ideal_start_cycle(r, c, lambda),
                lambda - 1);
    }
  }
}

TEST(Schedule, SimulatorReproducesIdealBodySpacing) {
  // When Lambda == Delta the body maps ∆ perfectly onto Λ points: columns
  // start exactly Lambda cycles apart, i.e. the issue span equals
  // columns * Lambda with no body stalls (only the head/tail warmup).
  const std::size_t d0 = 118;  // Lambda = 117 = Delta
  const std::size_t d1 = 10000;
  const auto s = simulate_wavefront(d0, d1, wave_cfg(117));
  // Head/tail warmup is ~Lambda^2 cycles; with a long body it amortizes to
  // the ideal one-issue-per-cycle mapping of Delta onto Lambda points.
  const double per_point = static_cast<double>(s.issue_span) /
                           static_cast<double>(s.points);
  EXPECT_NEAR(per_point, 1.0, 0.05);
}

// ------------------------------------------------------------- throughput

TEST(Throughput, Table5OrderingHolds) {
  const ModelConfig cfg;
  const auto cesm = Dims::d2(1800, 3600);
  const auto wave = wave_throughput(cesm, kWaveSzLanes);
  const auto ghost = ghost_throughput(cesm);
  EXPECT_GT(wave.effective_mbps, 900.0);
  EXPECT_LT(wave.effective_mbps, 1100.0);   // paper: 995 MB/s
  EXPECT_GT(ghost.effective_mbps, 120.0);
  EXPECT_LT(ghost.effective_mbps, 220.0);   // paper: 185 MB/s
  EXPECT_GT(wave.effective_mbps / ghost.effective_mbps, 4.0);
  (void)cfg;
}

TEST(Throughput, HurricaneDipsBelowCesmAndNyx) {
  // Table 5 shape: 995 / 838 / 986 — the short Hurricane pipeline stalls.
  const auto cesm = wave_throughput(Dims::d2(1800, 3600), kWaveSzLanes);
  const auto hurr =
      wave_throughput(Dims::d3(100, 500, 500), kWaveSzLanes);
  const auto nyx = wave_throughput(Dims::d3(512, 512, 512), kWaveSzLanes);
  EXPECT_LT(hurr.effective_mbps, cesm.effective_mbps * 0.95);
  EXPECT_LT(hurr.effective_mbps, nyx.effective_mbps * 0.95);
  EXPECT_NEAR(cesm.effective_mbps / nyx.effective_mbps, 1.0, 0.1);
}

TEST(Throughput, Base10DatapathIsSlowerOnShortPipelines) {
  const auto dims = Dims::d3(100, 500, 500);  // Lambda = 99
  const auto b2 = wave_throughput(dims, kWaveSzLanes, sz::EbBase::Two);
  const auto b10 = wave_throughput(dims, kWaveSzLanes, sz::EbBase::Ten);
  EXPECT_GT(b2.effective_mbps, b10.effective_mbps * 1.1);
}

TEST(Throughput, NaiveRasterIsCatastrophic) {
  const auto naive = naive_raster_throughput(Dims::d2(1800, 3600));
  const auto wave = wave_throughput(Dims::d2(1800, 3600), kWaveSzLanes);
  EXPECT_GT(wave.effective_mbps / naive.effective_mbps, 30.0);
}

TEST(Throughput, LanesScaleUntilPcieCap) {
  const auto dims = Dims::d3(512, 512, 512);
  const auto one = wave_throughput(dims, 3);
  const auto two = wave_throughput(dims, 6);
  const auto many = wave_throughput(dims, 48);
  EXPECT_NEAR(two.effective_mbps / one.effective_mbps, 2.0, 0.2);
  EXPECT_EQ(many.delivered_mbps, ModelConfig{}.pcie.gen2_x4_mbps);
  EXPECT_GT(many.effective_mbps, many.delivered_mbps);  // roofline binds
}

TEST(Throughput, OmpModelMatchesPaperEfficiencyAnchor) {
  // Paper: parallel efficiency drops to 59% at 32 cores.
  const double base = 122.0;  // Hurricane single-core MB/s
  const double t32 = omp_scaled_mbps(base, 32);
  EXPECT_NEAR(t32 / (32.0 * base), 0.59, 0.01);
  EXPECT_EQ(omp_scaled_mbps(base, 1), base);
  // Monotone increasing in cores over the relevant range.
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double t = omp_scaled_mbps(base, n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Throughput, RejectsBadArguments) {
  EXPECT_THROW(wave_throughput(Dims::d2(8, 8), 0), Error);
  EXPECT_THROW(omp_scaled_mbps(100.0, 0), Error);
}

// -------------------------------------------------------------- resources

TEST(Resources, WaveDesignMatchesTable6Exactly) {
  const auto r = wave_design(kWaveSzLanes);
  EXPECT_EQ(r.bram_18k, 9);
  EXPECT_EQ(r.dsp48e, 0);  // base-2: no divider, no multiplier
  EXPECT_EQ(r.ff, 4473);
  EXPECT_EQ(r.lut, 8208);
}

TEST(Resources, GhostDesignMatchesTable6Exactly) {
  const auto r = ghost_design();
  EXPECT_EQ(r.bram_18k, 20);
  EXPECT_EQ(r.dsp48e, 51);
  EXPECT_EQ(r.ff, 12615);
  EXPECT_EQ(r.lut, 19718);
}

TEST(Resources, Base10LaneNeedsDsps) {
  const auto b2 = wave_pqd_lane_base2();
  const auto b10 = wave_pqd_lane_base10();
  EXPECT_EQ(b2.dsp48e, 0);
  EXPECT_GT(b10.dsp48e, 0);
  EXPECT_GT(b10.lut, b2.lut);
}

TEST(Resources, GzipCoreDominatesBram) {
  // Paper: scalability limited by gzip's 303 BRAM_18K.
  EXPECT_EQ(gzip_core().bram_18k, 303);
  EXPECT_GT(gzip_core().bram_18k, wave_design(kWaveSzLanes).bram_18k * 10);
}

TEST(Resources, UtilizationRowFormatting) {
  const DeviceCapacity zc706;
  const auto row = utilization_row(9, zc706.bram_18k);
  EXPECT_NE(row.find("9"), std::string::npos);
  EXPECT_NE(row.find("0.83%"), std::string::npos);
}

TEST(Resources, ArithmeticOperators) {
  ResourceUsage a{1, 2, 3, 4};
  const ResourceUsage b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.bram_18k, 11);
  EXPECT_EQ(a.lut, 44);
  const auto c = b * 3;
  EXPECT_EQ(c.dsp48e, 60);
}

}  // namespace
}  // namespace wavesz::fpga

// ------------------------------------------------- future-work Huffman

#include "fpga/huffman_model.hpp"

namespace wavesz::fpga {
namespace {

TEST(FutureHuffman, TableNeedsHundredsOfBram) {
  // 65,536-entry code table + histogram: the reason the paper deferred the
  // on-chip H* stage.
  EXPECT_GT(huffman_table_bram(), 150);
  EXPECT_LT(huffman_table_bram(), 300);
}

TEST(FutureHuffman, StageSustainsNearLineRate) {
  const auto s = huffman_stage();
  // Double-buffered two-pass encoder: ~1 symbol/cycle per encoder.
  EXPECT_GT(s.efficiency, 0.9);
  EXPECT_LE(s.efficiency, 1.0 + 1e-9);
  EXPECT_NEAR(s.symbols_per_second,
              3.0 * 156.25e6 * s.efficiency, 1e6);
}

TEST(FutureHuffman, TinyChunksExposeHostTreeBuild) {
  HuffmanEncoderConfig cfg;
  cfg.chunk_symbols = 2048;  // pass time << host tree build
  const auto s = huffman_stage(cfg);
  EXPECT_LT(s.efficiency, 0.2);
  EXPECT_THROW(huffman_stage(HuffmanEncoderConfig{512, 900.0, 3}), Error);
}

TEST(FutureHuffman, EndToEndStaysPqdBoundAtDefaults) {
  for (auto dims : {Dims::d2(1800, 3600), Dims::d3(512, 512, 512)}) {
    const auto fut = future_wave_throughput(dims);
    EXPECT_FALSE(fut.huffman_bound);
    const auto now = wave_throughput(dims, kWaveSzLanes);
    EXPECT_NEAR(fut.effective_mbps, now.effective_mbps, 1.0);
    EXPECT_GT(fut.added_resources.bram_18k, 400);
  }
}

TEST(FutureHuffman, FitsOnZc706NextToGzip) {
  const DeviceCapacity dev;
  const auto fut = future_wave_throughput(Dims::d2(1800, 3600));
  const int total = wave_design(kWaveSzLanes).bram_18k +
                    gzip_core().bram_18k + fut.added_resources.bram_18k;
  EXPECT_LT(total, dev.bram_18k);   // feasible...
  EXPECT_GT(total, dev.bram_18k / 2);  // ...but dominates the budget
}

}  // namespace
}  // namespace wavesz::fpga

// --------------------------------------------------- device co-simulation

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "fpga/device.hpp"
#include "metrics/stats.hpp"

namespace wavesz::fpga {
namespace {

std::vector<float> cosim_field(const Dims& dims) {
  data::FieldRecipe r;
  r.seed = 31;
  r.base_frequency = 0.8;
  return data::generate(r, dims);
}

TEST(DeviceCoSim, ArchiveRoundTripsWithinBound) {
  const Dims dims = Dims::d3(12, 40, 30);
  const auto field = cosim_field(dims);
  auto cfg = wavesz::wave::default_config();
  const auto run = compress_on_device(field, dims, cfg, 3);
  EXPECT_EQ(run.lanes.size(), 3u);
  Dims out_dims;
  const auto restored = device_decompress(run.archive, &out_dims);
  EXPECT_EQ(out_dims, dims);
  const double bound =
      sz::resolve_bound(cfg, metrics::value_range(field).span());
  EXPECT_TRUE(metrics::within_bound(field, restored, bound));
  EXPECT_GT(run.ratio, 1.0);
}

TEST(DeviceCoSim, ThroughputMatchesTheAnalyticModel) {
  // The co-sim and wave_throughput() partition identically, so the modeled
  // throughput must agree exactly — the property that keeps the functional
  // kernels and the performance model from drifting apart.
  const Dims dims = Dims::d3(16, 64, 32);
  const auto field = cosim_field(dims);
  const auto run = compress_on_device(field, dims, wavesz::wave::default_config(),
                                      kWaveSzLanes);
  const auto model = wave_throughput(dims, kWaveSzLanes);
  EXPECT_NEAR(run.modeled_effective_mbps, model.effective_mbps,
              model.effective_mbps * 1e-9);
}

TEST(DeviceCoSim, LanesPartitionAllColumns) {
  const Dims dims = Dims::d2(20, 101);  // deliberately not divisible
  const auto field = cosim_field(dims);
  const auto run =
      compress_on_device(field, dims, wavesz::wave::default_config(), 4);
  std::size_t covered = 0;
  for (const auto& lane : run.lanes) {
    EXPECT_EQ(lane.first_column, covered);
    covered += lane.column_count;
  }
  EXPECT_EQ(covered, 101u);
  EXPECT_EQ(device_decompress(run.archive), device_decompress(run.archive));
}

TEST(DeviceCoSim, SingleLaneEqualsPlainWaveSz) {
  const Dims dims = Dims::d2(24, 48);
  const auto field = cosim_field(dims);
  const auto cfg = wavesz::wave::default_config();
  const auto run = compress_on_device(field, dims, cfg, 1);
  const auto direct = wavesz::wave::compress(field, dims, cfg);
  ASSERT_EQ(run.lanes.size(), 1u);
  EXPECT_EQ(run.lanes[0].compressed_bytes, direct.bytes.size());
  EXPECT_EQ(device_decompress(run.archive), wavesz::wave::decompress(direct.bytes));
}

TEST(DeviceCoSim, CorruptArchiveFailsLoudly) {
  const Dims dims = Dims::d2(16, 32);
  const auto field = cosim_field(dims);
  const auto run =
      compress_on_device(field, dims, wavesz::wave::default_config(), 2);
  auto bad = run.archive;
  bad[1] ^= 0xFF;
  EXPECT_THROW(device_decompress(bad), Error);
  std::vector<std::uint8_t> cut(run.archive.begin(),
                                run.archive.begin() + 40);
  EXPECT_THROW(device_decompress(cut), Error);
}

}  // namespace
}  // namespace wavesz::fpga
