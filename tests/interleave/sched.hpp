// Schedule-exhaustive model harness: a controlled scheduler for checking
// the repo's handshake protocols under *every* bounded-depth thread
// interleaving, not just the ones a lucky TSan run happens to produce.
//
// The technique is stateless model checking by replay (CHESS-style): a
// protocol is modeled as a Scenario owning a set of Actors, where each
// Actor::step() executes exactly one *operation* — one mutex critical
// section, one condvar signal, one atomic publication. Those are the yield
// points: anything inside a single step is indivisible in the real code
// too (it holds the lock), so enumerating schedules at step granularity
// covers every distinguishable interleaving of the real protocol.
//
// Scenarios are pure state machines — no real threads, no real time — so a
// schedule is just the sequence of actor indices stepped, and exploring
// all schedules is a DFS over prefixes with deterministic replay:
//
//   explore_all:   depth-first enumeration of every schedule (the fringe
//                  at each step is the set of *enabled* actors; blocked
//                  actors — a pop on an empty ring, an acquire against a
//                  full window — are simply not schedulable, exactly like
//                  a thread parked on a condvar).
//   explore_random: uniformly random schedules from a seed, for models
//                  whose exhaustive space is too large.
//   run_schedule_bytes: replay a schedule derived from opaque bytes (the
//                  fuzz corpus): byte k picks enabled[b[k] % #enabled].
//
// A deadlock (no actor enabled, not all done) fails the exploration with
// the exact schedule prefix that produced it; invariant violations raise
// ADD_FAILURE from inside the model with the same context.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wavesz::interleave {

/// One modeled thread. step() must only be called when enabled() is true;
/// a step performs one indivisible protocol operation.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual bool done() const = 0;
  /// Schedulable now? A blocked operation (would wait on a condvar /
  /// backpressure window) reports false and the scheduler never picks it.
  virtual bool enabled() const = 0;
  virtual void step() = 0;
};

/// A fresh, deterministic instance of the protocol under test. Factories
/// recreate the scenario for every schedule, so exploration replays from
/// scratch rather than trying to undo state.
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual std::vector<Actor*> actors() = 0;
  /// Per-schedule end-state checks (every slab retired, freelist intact,
  /// ...). Step-local invariants assert inside step() itself.
  virtual void check_final() = 0;
};

using ScenarioFactory = std::function<std::unique_ptr<Scenario>()>;

struct ExploreResult {
  std::uint64_t schedules = 0;   ///< complete schedules executed
  std::uint64_t deadlocks = 0;   ///< prefixes with no enabled actor
  std::uint64_t truncated = 0;   ///< schedules cut off by max_steps
  std::string first_deadlock;    ///< schedule prefix of the first deadlock
};

namespace detail {

inline std::vector<std::size_t> enabled_set(
    const std::vector<Actor*>& actors) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actors.size(); ++i) {
    if (!actors[i]->done() && actors[i]->enabled()) out.push_back(i);
  }
  return out;
}

inline bool all_done(const std::vector<Actor*>& actors) {
  for (const Actor* a : actors) {
    if (!a->done()) return false;
  }
  return true;
}

inline std::string format_schedule(const std::vector<std::size_t>& picks) {
  std::string s;
  for (std::size_t p : picks) {
    if (!s.empty()) s += ',';
    s += std::to_string(p);
  }
  return s;
}

/// SplitMix64: tiny, deterministic, seedable — exactly what a replayable
/// randomized scheduler needs (and no <random> state to misuse).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Exhaustively enumerate every schedule of `make()` up to `max_steps`
/// operations per schedule. DFS with replay: the path records, per
/// position, the enabled set seen there and the branch taken; backtracking
/// advances the deepest position with an untried branch and replays.
inline ExploreResult explore_all(const ScenarioFactory& make,
                                 std::size_t max_steps = 10000) {
  struct Choice {
    std::size_t picked;
    std::vector<std::size_t> enabled;
  };
  std::vector<Choice> path;
  ExploreResult result;
  for (;;) {
    std::unique_ptr<Scenario> sc = make();
    std::vector<Actor*> actors = sc->actors();
    std::vector<std::size_t> picks;
    picks.reserve(path.size());
    for (const Choice& c : path) {
      actors[c.picked]->step();
      picks.push_back(c.picked);
    }
    // Extend the prefix to a complete schedule, always branching on the
    // lowest enabled actor (alternatives are visited by backtracking).
    bool complete = true;
    while (!detail::all_done(actors)) {
      if (picks.size() >= max_steps) {
        ++result.truncated;
        complete = false;
        break;
      }
      std::vector<std::size_t> en = detail::enabled_set(actors);
      if (en.empty()) {
        ++result.deadlocks;
        if (result.first_deadlock.empty()) {
          result.first_deadlock = detail::format_schedule(picks);
        }
        complete = false;
        break;
      }
      path.push_back(Choice{en.front(), en});
      picks.push_back(en.front());
      actors[en.front()]->step();
    }
    ++result.schedules;
    if (complete) sc->check_final();
    // Backtrack to the deepest choice point with an untried alternative.
    while (!path.empty()) {
      Choice& c = path.back();
      std::size_t at = 0;
      while (c.enabled[at] != c.picked) ++at;
      if (at + 1 < c.enabled.size()) {
        c.picked = c.enabled[at + 1];
        break;
      }
      path.pop_back();
    }
    if (path.empty()) break;
  }
  return result;
}

/// Run `seeds` uniformly random schedules (seed, seed+1, ...): coverage
/// for models whose exhaustive space exceeds what CI can enumerate.
inline ExploreResult explore_random(const ScenarioFactory& make,
                                    std::uint64_t seed, std::uint64_t seeds,
                                    std::size_t max_steps = 100000) {
  ExploreResult result;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    std::uint64_t rng = seed + s;
    std::unique_ptr<Scenario> sc = make();
    std::vector<Actor*> actors = sc->actors();
    std::vector<std::size_t> picks;
    bool complete = true;
    while (!detail::all_done(actors)) {
      if (picks.size() >= max_steps) {
        ++result.truncated;
        complete = false;
        break;
      }
      std::vector<std::size_t> en = detail::enabled_set(actors);
      if (en.empty()) {
        ++result.deadlocks;
        if (result.first_deadlock.empty()) {
          result.first_deadlock = detail::format_schedule(picks);
        }
        complete = false;
        break;
      }
      const std::size_t pick =
          en[static_cast<std::size_t>(detail::splitmix64(rng) % en.size())];
      picks.push_back(pick);
      actors[pick]->step();
    }
    ++result.schedules;
    if (complete) sc->check_final();
  }
  return result;
}

/// Replay one schedule chosen by opaque bytes — the bridge from the fuzz
/// corpus: byte k selects enabled[bytes[k] % #enabled]; when the bytes run
/// out the schedule continues round-robin, so every input drives a
/// complete run. Returns the executed schedule (for reporting).
inline std::vector<std::size_t> run_schedule_bytes(
    const ScenarioFactory& make, const std::vector<std::uint8_t>& bytes,
    ExploreResult& result, std::size_t max_steps = 100000) {
  std::unique_ptr<Scenario> sc = make();
  std::vector<Actor*> actors = sc->actors();
  std::vector<std::size_t> picks;
  std::size_t cursor = 0;
  bool complete = true;
  while (!detail::all_done(actors)) {
    if (picks.size() >= max_steps) {
      ++result.truncated;
      complete = false;
      break;
    }
    std::vector<std::size_t> en = detail::enabled_set(actors);
    if (en.empty()) {
      ++result.deadlocks;
      if (result.first_deadlock.empty()) {
        result.first_deadlock = detail::format_schedule(picks);
      }
      complete = false;
      break;
    }
    const std::size_t sel = cursor < bytes.size()
                                ? bytes[cursor] % en.size()
                                : cursor % en.size();
    ++cursor;
    const std::size_t pick = en[sel];
    picks.push_back(pick);
    actors[pick]->step();
  }
  ++result.schedules;
  if (complete) sc->check_final();
  return picks;
}

}  // namespace wavesz::interleave
