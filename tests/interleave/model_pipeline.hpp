// Model of the staged Executor's SPSC token-ring protocol
// (src/core/pipeline.cpp) for the interleave scheduler.
//
// The model mirrors the real protocol at the granularity of its lock-held
// critical sections: producer acquire (backpressure window), submit (ring
// push), worker pop, stage body, forward/retire, close cascade. Each is
// one Actor::step(); the scheduler interleaves them every possible way.
//
// Checked invariants (the executor's documented contract):
//   * per-stage FIFO: every stage observes slab seqs in submission order;
//   * backpressure: submitted - retired never exceeds the ring depth;
//   * first-error capture: a configured stage failure latches exactly
//     once, later slabs keep flowing (exception-drain termination shows
//     up as "no deadlock in any schedule");
//   * slot-reuse happens-before: a pooled buffer acquired for a slab is
//     released exactly at retire and never owned by two slabs at once
//     (the arena handoff the real code orders through retire_cv).
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "sched.hpp"

namespace wavesz::interleave {

struct PipelineModelConfig {
  std::size_t stages = 2;
  std::size_t depth = 2;
  std::size_t slabs = 3;
  /// If >= 0, stage `error_stage` throws while processing slab
  /// `error_slab`; the model then mirrors the executor's latch-and-flow
  /// behavior.
  int error_stage = -1;
  std::size_t error_slab = 0;
};

class PipelineModel : public Scenario {
 public:
  explicit PipelineModel(const PipelineModelConfig& cfg) : cfg_(cfg) {
    rings_.resize(cfg_.stages);
    closed_.assign(cfg_.stages, false);
    next_expected_.assign(cfg_.stages, 0);
    buffer_owner_.assign(cfg_.depth, kFree);
    slab_buffer_.assign(cfg_.slabs, kFree);
    actors_.push_back(std::make_unique<Producer>(this));
    for (std::size_t s = 0; s < cfg_.stages; ++s) {
      actors_.push_back(std::make_unique<Worker>(this, s));
    }
  }

  std::vector<Actor*> actors() override {
    std::vector<Actor*> out;
    out.reserve(actors_.size());
    for (auto& a : actors_) out.push_back(a.get());
    return out;
  }

  void check_final() override {
    EXPECT_EQ(retired_, cfg_.slabs) << "not every slab retired";
    for (std::size_t s = 0; s < cfg_.stages; ++s) {
      EXPECT_TRUE(closed_[s]) << "ring " << s << " never closed";
      EXPECT_TRUE(rings_[s].empty()) << "ring " << s << " left tokens";
      EXPECT_EQ(next_expected_[s], cfg_.slabs)
          << "stage " << s << " skipped slabs";
    }
    for (std::size_t b = 0; b < buffer_owner_.size(); ++b) {
      EXPECT_EQ(buffer_owner_[b], kFree)
          << "buffer " << b << " leaked an owner";
    }
    if (cfg_.error_stage >= 0) {
      EXPECT_TRUE(has_error_) << "configured stage error never latched";
      EXPECT_TRUE(drain_observed_error_)
          << "drain completed without observing the latched error";
    } else {
      EXPECT_FALSE(has_error_);
    }
  }

 private:
  static constexpr std::size_t kFree = static_cast<std::size_t>(-1);

  // --- shared protocol state (mutex-guarded in the real executor; every
  // access below happens inside exactly one Actor::step()).
  PipelineModelConfig cfg_;
  std::vector<std::deque<std::size_t>> rings_;
  std::vector<bool> closed_;
  std::vector<std::size_t> next_expected_;
  std::size_t submitted_ = 0;
  std::size_t retired_ = 0;
  bool has_error_ = false;
  std::size_t error_latches_ = 0;
  bool drain_observed_error_ = false;

  // Arena handoff: buffer b is owned by at most one in-flight slab.
  std::vector<std::size_t> buffer_owner_;  ///< slab or kFree, per buffer
  std::vector<std::size_t> slab_buffer_;   ///< buffer index, per slab
  std::vector<std::size_t> freelist_;

  std::size_t in_flight() const { return submitted_ - retired_; }

  class Producer : public Actor {
   public:
    explicit Producer(PipelineModel* m) : m_(m) {}

    bool done() const override { return phase_ == Phase::kDone; }

    bool enabled() const override {
      switch (phase_) {
        case Phase::kAcquire:
          // acquire() blocks while every depth slot is in flight.
          return m_->in_flight() < m_->cfg_.depth;
        case Phase::kSubmit:
          return true;
        case Phase::kDrain:
          // drain() blocks until every submitted slab retired.
          return m_->retired_ == m_->submitted_;
        case Phase::kClose:
          return true;
        case Phase::kDone:
          return false;
      }
      return false;
    }

    void step() override {
      PipelineModel& m = *m_;
      switch (phase_) {
        case Phase::kAcquire: {
          ASSERT_LT(m.in_flight(), m.cfg_.depth)
              << "acquire admitted past the depth window";
          // The slab's staging buffer comes from the pool: reuse must
          // only ever see buffers whose previous slab fully retired.
          std::size_t buf;
          if (!m.freelist_.empty()) {
            buf = m.freelist_.back();
            m.freelist_.pop_back();
          } else {
            buf = next_fresh_++;
            ASSERT_LT(buf, m.buffer_owner_.size())
                << "pool grew past the in-flight bound";
          }
          ASSERT_EQ(m.buffer_owner_[buf], kFree)
              << "buffer " << buf << " handed out while still owned";
          m.buffer_owner_[buf] = m.submitted_;
          m.slab_buffer_[m.submitted_] = buf;
          phase_ = Phase::kSubmit;
          break;
        }
        case Phase::kSubmit:
          m.rings_.front().push_back(m.submitted_);
          ++m.submitted_;
          ASSERT_LE(m.in_flight(), m.cfg_.depth)
              << "backpressure bound violated at submit";
          phase_ = m.submitted_ < m.cfg_.slabs ? Phase::kAcquire
                                               : Phase::kDrain;
          break;
        case Phase::kDrain:
          ASSERT_EQ(m.retired_, m.cfg_.slabs);
          // drain() rethrows a latched error after the barrier.
          if (m.has_error_) m.drain_observed_error_ = true;
          phase_ = Phase::kClose;
          break;
        case Phase::kClose:
          m.closed_.front() = true;
          phase_ = Phase::kDone;
          break;
        case Phase::kDone:
          FAIL() << "stepped a finished producer";
      }
    }

   private:
    enum class Phase { kAcquire, kSubmit, kDrain, kClose, kDone };
    PipelineModel* m_;
    Phase phase_ = Phase::kAcquire;
    std::size_t next_fresh_ = 0;
  };

  class Worker : public Actor {
   public:
    Worker(PipelineModel* m, std::size_t stage) : m_(m), stage_(stage) {}

    bool done() const override { return phase_ == Phase::kDone; }

    bool enabled() const override {
      if (phase_ != Phase::kPop) return phase_ != Phase::kDone;
      // pop() blocks until an item arrives or the ring closes.
      return !m_->rings_[stage_].empty() || m_->closed_[stage_];
    }

    void step() override {
      PipelineModel& m = *m_;
      switch (phase_) {
        case Phase::kPop:
          if (!m.rings_[stage_].empty()) {
            seq_ = m.rings_[stage_].front();
            m.rings_[stage_].pop_front();
            ASSERT_EQ(seq_, m.next_expected_[stage_])
                << "stage " << stage_ << " saw slabs out of order";
            ++m.next_expected_[stage_];
            phase_ = Phase::kProcess;
          } else {
            // Closed and empty: cascade the close downstream.
            phase_ = Phase::kCascade;
          }
          break;
        case Phase::kProcess:
          if (!m.has_error_) {
            if (static_cast<int>(stage_) == m.cfg_.error_stage &&
                seq_ == m.cfg_.error_slab) {
              // capture(): first error wins, slabs keep flowing.
              m.has_error_ = true;
              ++m.error_latches_;
              ASSERT_EQ(m.error_latches_, 1u)
                  << "error latched more than once";
            }
          }
          phase_ = Phase::kForward;
          break;
        case Phase::kForward:
          if (stage_ + 1 < m.cfg_.stages) {
            m.rings_[stage_ + 1].push_back(seq_);
          } else {
            // retire_one(): the slab's buffer returns to the pool here —
            // this is the release the next acquire's reuse rides on.
            const std::size_t buf = m.slab_buffer_[seq_];
            ASSERT_EQ(m.buffer_owner_[buf], seq_)
                << "retiring slab does not own its buffer";
            m.buffer_owner_[buf] = kFree;
            m.freelist_.push_back(buf);
            ++m.retired_;
          }
          phase_ = Phase::kPop;
          break;
        case Phase::kCascade:
          if (stage_ + 1 < m.cfg_.stages) m.closed_[stage_ + 1] = true;
          phase_ = Phase::kDone;
          break;
        case Phase::kDone:
          FAIL() << "stepped a finished worker";
      }
    }

   private:
    enum class Phase { kPop, kProcess, kForward, kCascade, kDone };
    PipelineModel* m_;
    std::size_t stage_;
    std::size_t seq_ = 0;
    Phase phase_ = Phase::kPop;
  };

  std::vector<std::unique_ptr<Actor>> actors_;
};

inline ScenarioFactory pipeline_factory(const PipelineModelConfig& cfg) {
  return [cfg] { return std::make_unique<PipelineModel>(cfg); };
}

}  // namespace wavesz::interleave
