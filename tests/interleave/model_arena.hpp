// Model of the VecPool acquire/recycle protocol (src/util/arena.hpp) for
// the interleave scheduler.
//
// Each modeled thread loops acquire -> use -> release against a shared
// freelist; acquire and release are single lock-held critical sections in
// the real pool and single steps here. The "use" step writes a tag into
// the buffer and the release step verifies it, so any schedule in which
// two threads are handed the same buffer concurrently fails loudly —
// that is the aliasing bug a broken freelist would produce.
//
// Invariants:
//   * a buffer is owned by at most one thread between acquire and release;
//   * the stats identity acquires == reuses + fresh holds on every
//     schedule (it is what tests use to assert steady-state reuse);
//   * every buffer returns to the freelist by the end of the schedule.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "sched.hpp"

namespace wavesz::interleave {

struct ArenaModelConfig {
  std::size_t threads = 2;
  std::size_t rounds = 2;  ///< acquire/use/release cycles per thread
};

class ArenaModel : public Scenario {
 public:
  explicit ArenaModel(const ArenaModelConfig& cfg) : cfg_(cfg) {
    for (std::size_t t = 0; t < cfg_.threads; ++t) {
      actors_.push_back(std::make_unique<Client>(this, t));
    }
  }

  std::vector<Actor*> actors() override {
    std::vector<Actor*> out;
    out.reserve(actors_.size());
    for (auto& a : actors_) out.push_back(a.get());
    return out;
  }

  void check_final() override {
    EXPECT_EQ(acquires_, reuses_ + fresh_)
        << "pool stats identity broken";
    EXPECT_EQ(acquires_, cfg_.threads * cfg_.rounds);
    EXPECT_EQ(freelist_.size(), buffers_.size())
        << "a buffer never came back to the freelist";
    // The pool can never hold more buffers than were concurrently live.
    EXPECT_LE(buffers_.size(), cfg_.threads);
  }

 private:
  static constexpr std::size_t kFree = static_cast<std::size_t>(-1);

  struct Buffer {
    std::size_t owner = kFree;  ///< owning thread, or kFree
    std::size_t tag = 0;        ///< written by use(), checked at release
  };

  ArenaModelConfig cfg_;
  std::vector<Buffer> buffers_;
  std::vector<std::size_t> freelist_;
  std::size_t acquires_ = 0;
  std::size_t reuses_ = 0;
  std::size_t fresh_ = 0;

  class Client : public Actor {
   public:
    Client(ArenaModel* m, std::size_t id) : m_(m), id_(id) {}

    bool done() const override { return round_ == m_->cfg_.rounds; }

    bool enabled() const override { return !done(); }

    void step() override {
      ArenaModel& m = *m_;
      switch (phase_) {
        case Phase::kAcquire: {
          ++m.acquires_;
          if (!m.freelist_.empty()) {
            buf_ = m.freelist_.back();
            m.freelist_.pop_back();
            ++m.reuses_;
          } else {
            buf_ = m.buffers_.size();
            m.buffers_.push_back(Buffer{});
            ++m.fresh_;
          }
          ASSERT_EQ(m.buffers_[buf_].owner, kFree)
              << "freelist handed out an owned buffer";
          m.buffers_[buf_].owner = id_;
          phase_ = Phase::kUse;
          break;
        }
        case Phase::kUse:
          // The aliasing detector: if another thread holds this buffer,
          // its tag write will be observed by our release check.
          ASSERT_EQ(m.buffers_[buf_].owner, id_)
              << "buffer reassigned while in use";
          m.buffers_[buf_].tag = id_ * 1000 + round_;
          phase_ = Phase::kRelease;
          break;
        case Phase::kRelease:
          ASSERT_EQ(m.buffers_[buf_].owner, id_)
              << "releasing a buffer this thread does not own";
          ASSERT_EQ(m.buffers_[buf_].tag, id_ * 1000 + round_)
              << "buffer contents clobbered while owned";
          m.buffers_[buf_].owner = kFree;
          m.freelist_.push_back(buf_);
          ++round_;
          phase_ = Phase::kAcquire;
          break;
      }
    }

   private:
    enum class Phase { kAcquire, kUse, kRelease };
    ArenaModel* m_;
    std::size_t id_;
    std::size_t buf_ = 0;
    std::size_t round_ = 0;
    Phase phase_ = Phase::kAcquire;
  };

  std::vector<std::unique_ptr<Actor>> actors_;
};

inline ScenarioFactory arena_factory(const ArenaModelConfig& cfg) {
  return [cfg] { return std::make_unique<ArenaModel>(cfg); };
}

}  // namespace wavesz::interleave
