// Schedule-exhaustive checks of the repo's concurrency protocols.
//
// The first half drives the single-threaded protocol models through every
// bounded-depth interleaving (sched.hpp), so the assertions are over the
// *complete* schedule space, not a sampled one; the exhaustive schedule
// counts are logged so CI output shows how large that space was. The
// randomized and replay tests extend coverage to configs whose exhaustive
// space is too large, seeded via environment knobs:
//
//   WAVESZ_INTERLEAVE_SEED    base seed for the randomized explorer
//   WAVESZ_INTERLEAVE_SEEDS   number of randomized schedules to run
//   WAVESZ_INTERLEAVE_REPLAY_DIR
//       directory of opaque seed files (the fuzz_pipeline corpus) to feed
//       through run_schedule_bytes() — every corpus input becomes a
//       schedule of the pipeline model.
//
// The second half runs the *real* Executor and VecPool under the same
// scenario shapes with live threads. Those tests cannot enumerate
// schedules, but they give TSan real interleavings of the real atomics —
// the CI thread-sanitizer leg runs this binary for exactly that reason.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "model_arena.hpp"
#include "model_pipeline.hpp"
#include "sched.hpp"
#include "telemetry/span_names.hpp"
#include "util/arena.hpp"

namespace wavesz::interleave {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

void expect_clean(const ExploreResult& r, const char* what) {
  EXPECT_EQ(r.deadlocks, 0u)
      << what << ": deadlocked schedule prefix [" << r.first_deadlock << "]";
  EXPECT_EQ(r.truncated, 0u) << what << ": schedule exceeded max_steps";
  EXPECT_GT(r.schedules, 0u);
}

// ---------------------------------------------------------------------------
// Exhaustive enumeration: every schedule of the bounded configurations.
// ---------------------------------------------------------------------------

TEST(InterleavePipeline, ExhaustiveTwoStageDepthTwo) {
  // The acceptance configuration: 2 stages, depth-2 ring, 3 slabs.
  const ExploreResult r =
      explore_all(pipeline_factory({.stages = 2, .depth = 2, .slabs = 3}));
  expect_clean(r, "pipeline 2-stage depth-2");
  RecordProperty("schedules", static_cast<int>(r.schedules));
  std::printf("[interleave] pipeline stages=2 depth=2 slabs=3: "
              "%llu schedules, 0 violations\n",
              static_cast<unsigned long long>(r.schedules));
}

TEST(InterleavePipeline, ExhaustiveSingleStage) {
  const ExploreResult r =
      explore_all(pipeline_factory({.stages = 1, .depth = 2, .slabs = 3}));
  expect_clean(r, "pipeline 1-stage depth-2");
  std::printf("[interleave] pipeline stages=1 depth=2 slabs=3: "
              "%llu schedules\n",
              static_cast<unsigned long long>(r.schedules));
}

TEST(InterleavePipeline, ExhaustiveDepthOneSerializes) {
  const ExploreResult r =
      explore_all(pipeline_factory({.stages = 2, .depth = 1, .slabs = 3}));
  expect_clean(r, "pipeline 2-stage depth-1");
  std::printf("[interleave] pipeline stages=2 depth=1 slabs=3: "
              "%llu schedules\n",
              static_cast<unsigned long long>(r.schedules));
}

TEST(InterleavePipeline, ExhaustiveErrorDrainTerminates) {
  // A stage failure must latch exactly once and never wedge any schedule:
  // deadlocks == 0 across the whole space IS the exception-drain
  // termination property.
  for (int error_stage = 0; error_stage < 2; ++error_stage) {
    for (std::size_t error_slab = 0; error_slab < 3; ++error_slab) {
      const ExploreResult r = explore_all(
          pipeline_factory({.stages = 2,
                            .depth = 2,
                            .slabs = 3,
                            .error_stage = error_stage,
                            .error_slab = error_slab}));
      expect_clean(r, "pipeline with stage error");
    }
  }
}

TEST(InterleaveArena, ExhaustiveTwoClients) {
  const ExploreResult r =
      explore_all(arena_factory({.threads = 2, .rounds = 2}));
  expect_clean(r, "arena 2 clients x 2 rounds");
  std::printf("[interleave] arena threads=2 rounds=2: %llu schedules\n",
              static_cast<unsigned long long>(r.schedules));
}

TEST(InterleaveArena, ExhaustiveThreeClients) {
  // rounds = 1 keeps three-way exhaustion CI-sized (~1.7k schedules);
  // rounds = 2 is 17M schedules — randomized coverage handles that scale.
  const ExploreResult r =
      explore_all(arena_factory({.threads = 3, .rounds = 1}));
  expect_clean(r, "arena 3 clients x 1 round");
  std::printf("[interleave] arena threads=3 rounds=1: %llu schedules\n",
              static_cast<unsigned long long>(r.schedules));
}

// ---------------------------------------------------------------------------
// Randomized schedules: configs whose exhaustive space is out of reach.
// ---------------------------------------------------------------------------

TEST(InterleaveRandom, PipelineLargeConfig) {
  const std::uint64_t seed = env_u64("WAVESZ_INTERLEAVE_SEED", 1);
  const std::uint64_t seeds = env_u64("WAVESZ_INTERLEAVE_SEEDS", 300);
  const ExploreResult r = explore_random(
      pipeline_factory({.stages = 3, .depth = 3, .slabs = 8}), seed, seeds);
  EXPECT_EQ(r.deadlocks, 0u)
      << "seed base " << seed << ": deadlock at [" << r.first_deadlock << "]";
  EXPECT_EQ(r.schedules, seeds);
}

TEST(InterleaveRandom, PipelineErrorLargeConfig) {
  const std::uint64_t seed = env_u64("WAVESZ_INTERLEAVE_SEED", 1);
  const std::uint64_t seeds = env_u64("WAVESZ_INTERLEAVE_SEEDS", 300);
  const ExploreResult r = explore_random(
      pipeline_factory({.stages = 3,
                        .depth = 2,
                        .slabs = 8,
                        .error_stage = 1,
                        .error_slab = 4}),
      seed, seeds);
  EXPECT_EQ(r.deadlocks, 0u)
      << "seed base " << seed << ": deadlock at [" << r.first_deadlock << "]";
}

TEST(InterleaveRandom, ArenaLargeConfig) {
  const std::uint64_t seed = env_u64("WAVESZ_INTERLEAVE_SEED", 1);
  const std::uint64_t seeds = env_u64("WAVESZ_INTERLEAVE_SEEDS", 300);
  const ExploreResult r = explore_random(
      arena_factory({.threads = 4, .rounds = 4}), seed, seeds);
  EXPECT_EQ(r.deadlocks, 0u);
}

// ---------------------------------------------------------------------------
// Replay entry point: fuzz corpus bytes become schedules.
// ---------------------------------------------------------------------------

/// Map an opaque seed file onto a pipeline model config + schedule bytes:
/// the first two bytes pick the shape (mirroring fuzz_seed_gen's header
/// convention of small knobs up front), the rest drive the scheduler.
void replay_seed_bytes(const std::vector<std::uint8_t>& bytes) {
  PipelineModelConfig cfg;
  cfg.depth = bytes.empty() ? 2 : 1 + bytes[0] % 3;
  cfg.stages = bytes.size() < 2 ? 2 : 1 + bytes[1] % 3;
  cfg.slabs = 4;
  if (bytes.size() >= 3 && bytes[2] % 2 == 1) {
    cfg.error_stage = static_cast<int>(bytes[2] % cfg.stages);
    cfg.error_slab = bytes[2] % cfg.slabs;
  }
  const std::vector<std::uint8_t> schedule(
      bytes.begin() + std::min<std::size_t>(3, bytes.size()), bytes.end());
  ExploreResult r;
  const std::vector<std::size_t> picks =
      run_schedule_bytes(pipeline_factory(cfg), schedule, r);
  EXPECT_EQ(r.deadlocks, 0u)
      << "replayed schedule [" << ::testing::PrintToString(picks) << "]";
  EXPECT_EQ(r.truncated, 0u);
}

TEST(InterleaveReplay, FuzzCorpusSchedules) {
  const char* dir = std::getenv("WAVESZ_INTERLEAVE_REPLAY_DIR");
  if (dir == nullptr || *dir == '\0') {
    GTEST_SKIP() << "WAVESZ_INTERLEAVE_REPLAY_DIR not set";
  }
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    replay_seed_bytes(bytes);
    ++replayed;
  }
  EXPECT_GT(replayed, 0u) << "replay dir " << dir << " had no seed files";
  std::printf("[interleave] replayed %zu corpus seeds as schedules\n",
              replayed);
}

TEST(InterleaveReplay, SyntheticBytesAreDeterministic) {
  // The same bytes must produce the same schedule: replay is the debugging
  // story for any violation the randomized mode finds.
  const std::vector<std::uint8_t> bytes = {3, 1, 0, 7, 7, 7, 1, 2, 250, 9};
  ExploreResult r1, r2;
  const auto p1 = run_schedule_bytes(
      pipeline_factory({.stages = 2, .depth = 2, .slabs = 3}), bytes, r1);
  const auto p2 = run_schedule_bytes(
      pipeline_factory({.stages = 2, .depth = 2, .slabs = 3}), bytes, r2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(r1.deadlocks, 0u);
}

// ---------------------------------------------------------------------------
// Real-object sweeps: the same scenario shapes on live threads, for TSan.
// ---------------------------------------------------------------------------

TEST(InterleaveRealExecutor, ConfigSweep) {
  for (std::size_t stages : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
      std::atomic<std::uint64_t> processed{0};
      std::vector<pipeline::Stage> st;
      for (std::size_t s = 0; s < stages; ++s) {
        st.push_back({telemetry::spans::kPipelineSlabPqd,
                      [&processed](std::size_t) {
                        processed.fetch_add(1, std::memory_order_relaxed);
                      }});
      }
      pipeline::Executor ex(std::move(st), depth);
      constexpr std::size_t kSlabs = 16;
      for (std::size_t k = 0; k < kSlabs; ++k) {
        ASSERT_EQ(ex.acquire(), k);
        ex.submit();
      }
      ex.drain();
      EXPECT_EQ(processed.load(std::memory_order_relaxed), kSlabs * stages);
      EXPECT_EQ(ex.stats().slabs, kSlabs);
    }
  }
}

TEST(InterleaveRealExecutor, ErrorLatchesAcrossThreads) {
  std::vector<pipeline::Stage> st;
  st.push_back({telemetry::spans::kPipelineSlabPqd, [](std::size_t) {}});
  st.push_back({telemetry::spans::kPipelineSlabPqd, [](std::size_t slab) {
                  if (slab == 3) throw std::runtime_error("boom at slab 3");
                }});
  pipeline::Executor ex(std::move(st), 2);
  // The error may surface from a later acquire() (the documented fast
  // path) or, at the latest, from drain().
  bool threw = false;
  try {
    for (std::size_t k = 0; k < 8; ++k) {
      ex.acquire();
      ex.submit();
    }
    ex.drain();
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "boom at slab 3");
  }
  EXPECT_TRUE(threw);
  // The latch is permanent: every later entry point rethrows it.
  EXPECT_THROW(ex.drain(), std::runtime_error);
}

TEST(InterleaveRealArena, CrossThreadRecycle) {
  // Producer-side acquire, consumer-side release through a real Executor:
  // the exact handoff the arena model enumerates, on real threads.
  util::VecPool<float> pool;
  std::vector<std::vector<float>> slots(2);
  std::vector<pipeline::Stage> st;
  st.push_back({telemetry::spans::kPipelineSlabPqd,
                [&pool, &slots](std::size_t slab) {
                  std::vector<float>& v = slots[slab % slots.size()];
                  ASSERT_EQ(v.size(), 256u);
                  pool.release(std::move(v));
                }});
  pipeline::Executor ex(std::move(st), 2);
  for (std::size_t k = 0; k < 64; ++k) {
    const std::size_t slab = ex.acquire();
    slots[slab % slots.size()] = pool.acquire(256);
    ex.submit();
  }
  ex.drain();
  const util::ArenaStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 64u);
  EXPECT_EQ(stats.acquires, stats.reuses + stats.fresh);
  // Depth-2 pipeline: at most 3 buffers ever live (2 in flight + 1 being
  // staged), so steady state is all reuse.
  EXPECT_LE(stats.fresh, 3u);
}

}  // namespace
}  // namespace wavesz::interleave
