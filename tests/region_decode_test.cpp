// decompress_region() tests: every region decode must equal the same
// hyperslab sliced out of a full decompress(), for SZ-1.4 and waveSZ
// (Flatten2D and True3D), float32 and float64, across border-clipped
// slabs, single-chunk and all-chunk coverage, 3D slabs spanning
// non-contiguous chunks, and 1-element regions. Prefix decodes of a proper
// leading slab must also read strictly fewer compressed bytes than a full
// decode.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

std::vector<float> field(const Dims& dims, std::uint64_t seed = 23) {
  data::FieldRecipe r;
  r.seed = seed;
  return data::generate(r, dims);
}

template <typename T>
std::vector<T> slice(const std::vector<T>& full, const Dims& dims,
                     const sz::Region& rg) {
  std::array<std::size_t, 3> lo = rg.lo;
  std::array<std::size_t, 3> hi = rg.hi;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t ext =
        i < static_cast<std::size_t>(dims.rank) ? dims.extent[i] : 1;
    if (lo[i] == 0 && hi[i] == 0) hi[i] = ext;
  }
  const std::size_t s0 = dims.extent[1] * dims.extent[2];
  const std::size_t s1 = dims.extent[2];
  std::vector<T> out;
  for (std::size_t x = lo[0]; x < hi[0]; ++x) {
    for (std::size_t y = lo[1]; y < hi[1]; ++y) {
      for (std::size_t z = lo[2]; z < hi[2]; ++z) {
        out.push_back(full[x * s0 + y * s1 + z]);
      }
    }
  }
  return out;
}

/// The regions every 2D suite sweeps on a (d0, d1) field.
std::vector<sz::Region> regions_2d(std::size_t d0, std::size_t d1) {
  return {
      {{0, 0, 0}, {d0 / 2, d1 / 2, 0}},          // top-left quarter
      {{d0 / 2, d1 / 2, 0}, {d0, d1, 0}},        // bottom-right quarter
      {{0, d1 - 1, 0}, {d0, d1, 0}},             // last column strip
      {{d0 - 1, 0, 0}, {d0, d1, 0}},             // last row strip
      {{0, 0, 0}, {1, 1, 0}},                    // 1-element at origin
      {{d0 - 1, d1 - 1, 0}, {d0, d1, 0}},        // 1-element at far corner
      {{3, 5, 0}, {4, 6, 0}},                    // 1-element interior
      {{0, 0, 0}, {d0, d1, 0}},                  // whole field
      {{1, 1, 0}, {d0 - 1, d1 - 1, 0}},          // border-clipped interior
      {{0, 0, 0}, {2, d1, 0}},                   // leading slab (single rows)
  };
}

TEST(RegionDecode, Sz14MatchesFullDecodeSlices) {
  const Dims dims = Dims::d2(64, 96);
  const auto grid = field(dims);
  for (const bool huffman : {true, false}) {
    sz::Config cfg;
    cfg.huffman = huffman;
    cfg.index_chunk_symbols = 1024;  // 6 chunks
    const auto c = sz::compress(grid, dims, cfg);
    const auto full = sz::decompress(c.bytes);
    for (const auto& rg : regions_2d(64, 96)) {
      const auto res = sz::decompress_region(c.bytes, rg);
      EXPECT_EQ(res.data, slice(full, dims, rg)) << "huffman=" << huffman;
      EXPECT_EQ(res.field_dims, dims);
      EXPECT_LE(res.compressed_bytes_read, c.bytes.size());
    }
  }
}

TEST(RegionDecode, Sz14SingleChunkAndAllChunkCoverage) {
  const Dims dims = Dims::d2(40, 40);
  const auto grid = field(dims);
  // One chunk holding everything, and per-row chunks (40 of them).
  for (const std::uint32_t syms : {1u << 15, 40u}) {
    sz::Config cfg;
    cfg.index_chunk_symbols = syms;
    const auto c = sz::compress(grid, dims, cfg);
    const auto full = sz::decompress(c.bytes);
    for (const auto& rg : regions_2d(40, 40)) {
      EXPECT_EQ(sz::decompress_region(c.bytes, rg).data,
                slice(full, dims, rg))
          << "chunk_symbols=" << syms;
    }
  }
}

TEST(RegionDecode, Sz14ThreeDimensionalSlabs) {
  const Dims dims = Dims::d3(16, 24, 20);
  const auto grid = field(dims);
  sz::Config cfg;
  cfg.index_chunk_symbols = 480;  // one plane per chunk: 16 chunks
  const auto c = sz::compress(grid, dims, cfg);
  const auto full = sz::decompress(c.bytes);
  const std::vector<sz::Region> regions = {
      {{0, 0, 0}, {8, 12, 10}},       // leading octant
      {{7, 3, 2}, {9, 21, 18}},       // slab spanning non-contiguous chunks
      {{0, 0, 0}, {1, 1, 1}},         // 1-element
      {{15, 23, 19}, {16, 24, 20}},   // far-corner element
      {{2, 0, 0}, {5, 24, 20}},       // whole-plane band
      {{0, 5, 0}, {16, 6, 20}},       // all planes, one row each
      {{0, 0, 0}, {16, 24, 20}},      // whole field
  };
  for (const auto& rg : regions) {
    const auto res = sz::decompress_region(c.bytes, rg);
    EXPECT_EQ(res.data, slice(full, dims, rg));
    EXPECT_EQ(res.region_dims.count(), res.data.size());
  }
}

TEST(RegionDecode, Sz14Float64) {
  const Dims dims = Dims::d2(48, 48);
  const auto grid = field(dims);
  std::vector<double> wide(grid.begin(), grid.end());
  sz::Config cfg;
  cfg.index_chunk_symbols = 512;
  const auto c = sz::compress(wide, dims, cfg);
  const auto full = sz::decompress64(c.bytes);
  for (const auto& rg : regions_2d(48, 48)) {
    EXPECT_EQ(sz::decompress_region64(c.bytes, rg).data,
              slice(full, dims, rg));
  }
}

TEST(RegionDecode, WaveFlatten2DMatchesFullDecodeSlices) {
  const Dims dims = Dims::d2(64, 96);
  const auto grid = field(dims);
  for (const bool huffman : {false, true}) {  // G* and H*G*
    auto cfg = wave::default_config();
    cfg.huffman = huffman;
    cfg.index_chunk_symbols = 1024;
    const auto c = wave::compress(grid, dims, cfg);
    const auto full = wave::decompress(c.bytes);
    for (const auto& rg : regions_2d(64, 96)) {
      const auto res = wave::decompress_region(c.bytes, rg);
      EXPECT_EQ(res.data, slice(full, dims, rg)) << "huffman=" << huffman;
    }
  }
}

TEST(RegionDecode, WaveFlatten2DRank3) {
  const Dims dims = Dims::d3(12, 16, 20);
  const auto grid = field(dims);
  auto cfg = wave::default_config();
  cfg.index_chunk_symbols = 512;
  const auto c = wave::compress(grid, dims, cfg);  // Flatten2D: 12 x 320
  const auto full = wave::decompress(c.bytes);
  const std::vector<sz::Region> regions = {
      {{0, 0, 0}, {6, 8, 10}},
      {{3, 2, 1}, {7, 15, 19}},
      {{0, 0, 0}, {1, 1, 1}},
      {{11, 15, 19}, {12, 16, 20}},
      {{0, 0, 0}, {12, 16, 20}},
  };
  for (const auto& rg : regions) {
    EXPECT_EQ(wave::decompress_region(c.bytes, rg).data,
              slice(full, dims, rg));
  }
}

TEST(RegionDecode, WaveTrue3DMatchesFullDecodeSlices) {
  const Dims dims = Dims::d3(14, 20, 20);
  const auto grid = field(dims);
  auto cfg = wave::default_config();
  cfg.index_chunk_symbols = 400;  // one plane per chunk
  const auto c =
      wave::compress(grid, dims, cfg, wave::LayoutMode::True3D);
  const auto full = wave::decompress(c.bytes);
  const std::vector<sz::Region> regions = {
      {{0, 0, 0}, {7, 10, 10}},
      {{5, 2, 3}, {8, 19, 17}},
      {{0, 0, 0}, {1, 1, 1}},
      {{13, 19, 19}, {14, 20, 20}},
      {{0, 0, 0}, {14, 20, 20}},
  };
  for (const auto& rg : regions) {
    EXPECT_EQ(wave::decompress_region(c.bytes, rg).data,
              slice(full, dims, rg));
  }
}

TEST(RegionDecode, WaveFloat64Region) {
  const Dims dims = Dims::d2(40, 60);
  const auto grid = field(dims);
  std::vector<double> wide(grid.begin(), grid.end());
  auto cfg = wave::default_config();
  cfg.index_chunk_symbols = 500;
  const auto c = wave::compress(wide, dims, cfg);
  const auto full = wave::decompress64(c.bytes);
  for (const auto& rg : regions_2d(40, 60)) {
    EXPECT_EQ(wave::decompress_region64(c.bytes, rg).data,
              slice(full, dims, rg));
  }
}

TEST(RegionDecode, PrefixRegionReadsFewerBytes) {
  const Dims dims = Dims::d2(256, 256);
  const auto grid = field(dims);
  // Top-left quarter: its dependency closure is the first-half slab/column
  // prefix, so with per-~4-row chunks the decoder must stop roughly halfway
  // through the code stream.
  const sz::Region quarter{{0, 0, 0}, {128, 128, 0}};
  {
    sz::Config cfg;
    cfg.index_chunk_symbols = 4096;  // 16 chunks
    const auto c = sz::compress(grid, dims, cfg);
    const auto res = sz::decompress_region(c.bytes, quarter);
    EXPECT_EQ(res.data, slice(sz::decompress(c.bytes), dims, quarter));
    EXPECT_LT(res.compressed_bytes_read, c.bytes.size());
  }
  {
    auto cfg = wave::default_config();
    cfg.index_chunk_symbols = 4096;
    const auto c = wave::compress(grid, dims, cfg);
    const auto res = wave::decompress_region(c.bytes, quarter);
    EXPECT_EQ(res.data, slice(wave::decompress(c.bytes), dims, quarter));
    EXPECT_LT(res.compressed_bytes_read, c.bytes.size());
  }
}

TEST(RegionDecode, IndexlessStreamFallsBackToFullDecode) {
  const Dims dims = Dims::d2(48, 48);
  const auto grid = field(dims);
  sz::Config cfg;
  cfg.chunk_index = false;
  const auto c = sz::compress(grid, dims, cfg);
  const auto full = sz::decompress(c.bytes);
  const sz::Region rg{{0, 0, 0}, {10, 10, 0}};
  const auto res = sz::decompress_region(c.bytes, rg);
  EXPECT_EQ(res.data, slice(full, dims, rg));
  EXPECT_EQ(res.compressed_bytes_read, c.bytes.size());
}

TEST(RegionDecode, RegionDecodeHonorsThreadBudget) {
  const Dims dims = Dims::d2(96, 96);
  const auto grid = field(dims);
  sz::Config cfg;
  cfg.index_chunk_symbols = 1024;
  const auto c = sz::compress(grid, dims, cfg);
  const sz::Region rg{{0, 0, 0}, {64, 96, 0}};
  const auto serial = sz::decompress_region(c.bytes, rg);
  for (const int nt : {2, 4}) {
    EXPECT_EQ(sz::decompress_region(c.bytes, rg, sz::DecodeOptions{nt, 1})
                  .data,
              serial.data);
  }
}

TEST(RegionDecode, InvalidRegionsThrow) {
  const Dims dims = Dims::d2(32, 32);
  const auto c = sz::compress(field(dims), dims, sz::Config{});
  // hi beyond the extent
  EXPECT_THROW(
      (void)sz::decompress_region(c.bytes, sz::Region{{0, 0, 0}, {33, 4, 0}}),
      Error);
  // empty interval (lo >= hi)
  EXPECT_THROW(
      (void)sz::decompress_region(c.bytes, sz::Region{{5, 0, 0}, {5, 4, 0}}),
      Error);
  EXPECT_THROW(
      (void)sz::decompress_region(c.bytes, sz::Region{{6, 0, 0}, {5, 4, 0}}),
      Error);
  // rank-2 container with a real third-axis constraint
  EXPECT_THROW(
      (void)sz::decompress_region(c.bytes, sz::Region{{0, 0, 1}, {4, 4, 2}}),
      Error);
}

}  // namespace
}  // namespace wavesz
