// The SZx-style ultra-fast block codec (Config::codec = Codec::Szx): error
// bound holds for every input including NaN/Inf payloads (raw-block
// fallback is bit-exact), constant fields collapse to constant blocks, the
// container dispatches through the generic sz:: and wave:: entry points,
// regions and streams work, and every truncated or forged prefix of a
// stream dies as wavesz::Error — never UB or std:: exceptions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/stream.hpp"
#include "core/wavesz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/container.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

sz::Config szx_config(double eb = 1e-3) {
  sz::Config cfg = sz::Config::ultrafast();
  cfg.error_bound = eb;
  return cfg;
}

template <typename T>
std::vector<T> smooth_field(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<T>(std::sin(0.03 * static_cast<double>(i)) * 40.0 +
                            noise(rng));
  }
  return out;
}

template <typename T>
void expect_bound_holds(const std::vector<T>& orig, const std::vector<T>& dec,
                        double bound) {
  ASSERT_EQ(orig.size(), dec.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    const double o = static_cast<double>(orig[i]);
    const double d = static_cast<double>(dec[i]);
    if (std::isnan(o)) {
      EXPECT_TRUE(std::isnan(d)) << "at " << i;
    } else if (std::isinf(o)) {
      EXPECT_EQ(o, d) << "at " << i;
    } else {
      EXPECT_LE(std::fabs(o - d), bound) << "at " << i;
    }
  }
}

// ------------------------------------------------------------ round trips

TEST(Szx, RoundTripF32AllRanks) {
  for (const Dims& dims :
       {Dims::d1(1000), Dims::d1(257), Dims::d2(129, 131),
        Dims::d3(17, 19, 23)}) {
    const auto data = smooth_field<float>(dims.count(), 7);
    const auto c =
        sz::compress(std::span<const float>(data), dims, szx_config());
    EXPECT_EQ(sz::Variant::SzxFast, c.header.variant);
    Dims got;
    const auto dec = sz::decompress(c.bytes, &got);
    EXPECT_EQ(dims.rank, got.rank);
    expect_bound_holds(data, dec, c.header.eb_absolute);
    EXPECT_TRUE(metrics::within_bound(data, dec, c.header.eb_absolute));
  }
}

TEST(Szx, RoundTripF64) {
  const Dims dims = Dims::d2(100, 103);
  const auto data = smooth_field<double>(dims.count(), 11);
  const auto c =
      sz::compress(std::span<const double>(data), dims, szx_config());
  EXPECT_EQ(sz::Variant::SzxFast, c.header.variant);
  EXPECT_EQ(1, c.header.dtype);
  const auto dec = sz::decompress64(c.bytes);
  expect_bound_holds(data, dec, c.header.eb_absolute);
}

TEST(Szx, AbsoluteBoundMode) {
  const Dims dims = Dims::d1(5000);
  const auto data = smooth_field<float>(dims.count(), 13);
  sz::Config cfg = szx_config(1e-2);
  cfg.mode = sz::EbMode::Absolute;
  const auto c = sz::compress(std::span<const float>(data), dims, cfg);
  EXPECT_DOUBLE_EQ(1e-2, c.header.eb_absolute);
  expect_bound_holds(data, sz::decompress(c.bytes), 1e-2);
}

TEST(Szx, BoundTighteningSweep) {
  // Tighter bounds must decode tighter, and the ratio must degrade
  // monotonically toward (but never below) honest storage.
  const Dims dims = Dims::d2(200, 200);
  const auto data = smooth_field<float>(dims.count(), 17);
  std::size_t prev_size = 0;
  for (double eb : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    const auto c =
        sz::compress(std::span<const float>(data), dims, szx_config(eb));
    expect_bound_holds(data, sz::decompress(c.bytes), c.header.eb_absolute);
    EXPECT_GE(c.bytes.size(), prev_size) << "eb=" << eb;
    prev_size = c.bytes.size();
  }
}

TEST(Szx, ConstantFieldCollapses) {
  const Dims dims = Dims::d2(256, 256);
  const std::vector<float> data(dims.count(), 42.5f);
  const auto c =
      sz::compress(std::span<const float>(data), dims, szx_config());
  // 256 blocks of 256 elems, each a 9-byte constant record + fixed preamble:
  // far under 1% of the raw size.
  EXPECT_LT(c.bytes.size(), dims.count() * sizeof(float) / 100);
  const auto dec = sz::decompress(c.bytes);
  expect_bound_holds(data, dec, c.header.eb_absolute);
  // Every block is constant: all elements decode to the same value.
  for (const float v : dec) EXPECT_EQ(dec[0], v);
}

TEST(Szx, NonFiniteValuesAreRawAndExact) {
  const Dims dims = Dims::d1(2000);
  auto data = smooth_field<float>(dims.count(), 19);
  data[3] = std::numeric_limits<float>::quiet_NaN();
  data[700] = std::numeric_limits<float>::infinity();
  data[1999] = -std::numeric_limits<float>::infinity();
  sz::Config cfg = szx_config(1e-3);
  cfg.mode = sz::EbMode::Absolute;  // NaN poisons the relative range
  const auto c = sz::compress(std::span<const float>(data), dims, cfg);
  EXPECT_GT(c.header.unpredictable_count, 0u);
  const auto dec = sz::decompress(c.bytes);
  expect_bound_holds(data, dec, c.header.eb_absolute);
  // Raw blocks are bit-exact, NaN payload included.
  EXPECT_EQ(0, std::memcmp(&data[3], &dec[3], sizeof(float)));
}

TEST(Szx, NaNPoisonedRelativeRangeIsRejected) {
  std::vector<float> data(100, 1.0f);
  data[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(sz::compress(std::span<const float>(data), Dims::d1(100),
                            szx_config()),
               Error);
}

TEST(Szx, BlockSizeKnobAndOddTails) {
  const Dims dims = Dims::d1(1001);  // prime-ish: forces a short tail block
  const auto data = smooth_field<float>(dims.count(), 23);
  for (std::uint32_t be : {1u, 7u, 64u, 256u, 4096u}) {
    sz::Config cfg = szx_config();
    cfg.szx_block_elems = be;
    const auto c = sz::compress(std::span<const float>(data), dims, cfg);
    SCOPED_TRACE("block_elems=" + std::to_string(be));
    expect_bound_holds(data, sz::decompress(c.bytes), c.header.eb_absolute);
  }
}

// ----------------------------------------------- entry-point integration

TEST(Szx, WaveAndCliEntryPointsDelegate) {
  const Dims dims = Dims::d2(64, 65);
  const auto data = smooth_field<float>(dims.count(), 29);
  const auto c =
      sz::compress(std::span<const float>(data), dims, szx_config());
  // wave::decompress must route SzxFast chunks (stream archives rely on it).
  const auto via_wave = wave::decompress(c.bytes);
  const auto via_sz = sz::decompress(c.bytes);
  ASSERT_EQ(via_sz.size(), via_wave.size());
  EXPECT_EQ(0, std::memcmp(via_sz.data(), via_wave.data(),
                           via_sz.size() * sizeof(float)));
  const auto h = sz::inspect(c.bytes);
  EXPECT_EQ(sz::Variant::SzxFast, h.variant);
  EXPECT_EQ(1, h.version);
}

TEST(Szx, RegionDecodeFallsBackToFullDecode) {
  const Dims dims = Dims::d2(50, 60);
  const auto data = smooth_field<float>(dims.count(), 31);
  const auto c =
      sz::compress(std::span<const float>(data), dims, szx_config());
  sz::Region rg;
  rg.lo = {10, 20, 0};
  rg.hi = {20, 40, 1};
  const auto res = sz::decompress_region(c.bytes, rg);
  ASSERT_EQ(10u * 20u, res.data.size());
  const auto full = sz::decompress(c.bytes);
  for (std::size_t i0 = 0; i0 < 10; ++i0) {
    for (std::size_t i1 = 0; i1 < 20; ++i1) {
      EXPECT_EQ(full[(i0 + 10) * 60 + (i1 + 20)], res.data[i0 * 20 + i1]);
    }
  }
  EXPECT_EQ(c.bytes.size(), res.compressed_bytes_read);
}

TEST(Szx, StreamCompressorEmitsSzxChunks) {
  const Dims dims = Dims::d2(40, 128);
  const auto data = smooth_field<float>(dims.count(), 37);
  wave::StreamCompressor sc(dims, szx_config(), 8);
  sc.feed(std::span<const float>(data));
  const auto archive = sc.finish();
  Dims got;
  const auto dec = wave::stream_decompress(archive, &got);
  EXPECT_EQ(dims.count(), got.count());
  // Resolve the per-chunk absolute bound (VR-relative per chunk): just
  // check against the loosest possible bound, the global range.
  double lo = data[0], hi = data[0];
  for (const float v : data) {
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  expect_bound_holds(data, dec, 1e-3 * (hi - lo) * 1.0001);
  // The parallel archive decoder takes the same per-chunk delegation path.
  const auto par = wave::stream_decompress(archive, sz::DecodeOptions{4, 1});
  EXPECT_EQ(0, std::memcmp(dec.data(), par.data(),
                           dec.size() * sizeof(float)));
}

// -------------------------------------------------- forged / truncated

TEST(Szx, EveryTruncatedPrefixThrows) {
  const Dims dims = Dims::d1(300);
  const auto data = smooth_field<float>(dims.count(), 41);
  const auto c =
      sz::compress(std::span<const float>(data), dims, szx_config());
  for (std::size_t n = 0; n < c.bytes.size(); ++n) {
    std::vector<std::uint8_t> cut(c.bytes.begin(),
                                  c.bytes.begin() +
                                      static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(sz::decompress(cut), Error) << "prefix " << n;
  }
}

TEST(Szx, TrailingSectionBytesThrow) {
  const auto data = smooth_field<float>(100, 43);
  const auto c =
      sz::compress(std::span<const float>(data), Dims::d1(100), szx_config());
  // Grow the (single, final) section by one byte: locate its u64 length
  // field — the only offset whose value equals the remaining byte count —
  // bump it, and append a padding byte. The decoder must reject the
  // now-unconsumed payload tail.
  auto bytes = c.bytes;
  std::size_t size_at = SIZE_MAX;
  for (std::size_t x = 0; x + 8 <= bytes.size(); ++x) {
    std::uint64_t v = 0;
    std::memcpy(&v, &bytes[x], 8);
    if (v == bytes.size() - x - 8) {
      size_at = x;
      break;
    }
  }
  ASSERT_NE(SIZE_MAX, size_at);
  std::uint64_t grown = bytes.size() - size_at - 8 + 1;
  std::memcpy(&bytes[size_at], &grown, 8);
  bytes.push_back(0x00);
  EXPECT_THROW((void)sz::decompress(bytes), Error);
}

TEST(Szx, ForgedFieldsThrowNotCrash) {
  const auto data = smooth_field<float>(512, 47);
  const auto c =
      sz::compress(std::span<const float>(data), Dims::d1(512), szx_config());
  // Single-byte corruptions across the whole stream must either decode
  // within structural limits or throw wavesz::Error; fuzz_szx drives the
  // exhaustive version of this, here we pin the high-value header bytes.
  for (std::size_t at = 0; at < c.bytes.size(); ++at) {
    for (const std::uint8_t flip : {std::uint8_t{0xff}, std::uint8_t{0x01}}) {
      auto mut = c.bytes;
      mut[at] ^= flip;
      try {
        const auto out = sz::decompress(mut);
        EXPECT_LE(out.size(), std::size_t{1} << 20);
      } catch (const Error&) {
        // structured rejection is the expected outcome
      }
    }
  }
}

TEST(Szx, WrongDtypeRejected) {
  const auto data = smooth_field<float>(64, 53);
  const auto c =
      sz::compress(std::span<const float>(data), Dims::d1(64), szx_config());
  EXPECT_THROW((void)sz::decompress64(c.bytes), Error);
}

}  // namespace
}  // namespace wavesz
