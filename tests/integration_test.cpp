// Cross-module integration tests: all three compressors on all three
// dataset personas, the compression-ratio orderings the paper's Tables 1/7
// rest on, PSNR floors, and compressor interop through the shared container.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "fpga/model.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz/container.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

/// Downscale per persona, chosen so the border-point fraction of the
/// flattened-2D view stays close to the paper-native geometry (borders are
/// waveSZ's fixed cost; shredding d0 would distort every ratio comparison).
unsigned scale_for(data::Persona p) {
  switch (p) {
    case data::Persona::CesmAtm: return 16;   // 112 x 225
    case data::Persona::Hurricane: return 2;  // 50 x 250 x 250
    case data::Persona::Nyx: return 8;        // 64^3
  }
  return 16;
}

struct FieldResult {
  double ratio_sz = 0.0;
  double ratio_ghost = 0.0;
  double ratio_wave_g = 0.0;
  double ratio_wave_hg = 0.0;
  double psnr_sz = 0.0;
  double psnr_ghost = 0.0;
  double psnr_wave = 0.0;
};

FieldResult run_field(const data::Field& f) {
  const auto grid = f.materialize();
  const double raw_bytes =
      static_cast<double>(grid.size() * sizeof(float));
  FieldResult out;

  sz::Config cfg_sz;  // VR-rel 1e-3, H* + gzip
  const auto c_sz = sz::compress(grid, f.dims, cfg_sz);
  out.ratio_sz = raw_bytes / static_cast<double>(c_sz.bytes.size());
  const auto d_sz = sz::decompress(c_sz.bytes);
  EXPECT_TRUE(metrics::within_bound(grid, d_sz, c_sz.header.eb_absolute));
  out.psnr_sz = metrics::distortion(grid, d_sz).psnr_db;

  sz::Config cfg_ghost;
  const auto c_ghost = ghost::compress(grid, f.dims, cfg_ghost);
  out.ratio_ghost = raw_bytes / static_cast<double>(c_ghost.bytes.size());
  const auto d_ghost = ghost::decompress(c_ghost.bytes);
  EXPECT_TRUE(
      metrics::within_bound(grid, d_ghost, c_ghost.header.eb_absolute));
  out.psnr_ghost = metrics::distortion(grid, d_ghost).psnr_db;

  auto cfg_wave = wave::default_config();
  const auto c_wg = wave::compress(grid, f.dims, cfg_wave);
  out.ratio_wave_g = raw_bytes / static_cast<double>(c_wg.bytes.size());
  const auto d_wave = wave::decompress(c_wg.bytes);
  EXPECT_TRUE(metrics::within_bound(grid, d_wave, c_wg.header.eb_absolute));
  out.psnr_wave = metrics::distortion(grid, d_wave).psnr_db;

  cfg_wave.huffman = true;
  const auto c_whg = wave::compress(grid, f.dims, cfg_wave);
  out.ratio_wave_hg = raw_bytes / static_cast<double>(c_whg.bytes.size());
  return out;
}

class PersonaSweep : public ::testing::TestWithParam<data::Persona> {
 protected:
  /// One full sweep per persona, shared across the assertions below (the
  /// fields are deterministic, so caching cannot mask order effects).
  static const std::vector<FieldResult>& results(data::Persona p) {
    static std::map<data::Persona, std::vector<FieldResult>> cache;
    auto it = cache.find(p);
    if (it == cache.end()) {
      std::vector<FieldResult> rs;
      for (const auto& f : data::fields(p, scale_for(p))) {
        SCOPED_TRACE(f.name);
        rs.push_back(run_field(f));
      }
      it = cache.emplace(p, std::move(rs)).first;
    }
    return it->second;
  }
};

TEST_P(PersonaSweep, AllCompressorsBoundedOnEveryField) {
  EXPECT_FALSE(results(GetParam()).empty());  // bounds checked in run_field
}

TEST_P(PersonaSweep, RatioOrderingsMatchPaperTables) {
  // Table 1/7 structure: SZ-1.4 and waveSZ(H*G*) lead, waveSZ(G*) in the
  // middle, GhostSZ last. Averaged per persona, as the paper reports.
  double sum_sz = 0, sum_ghost = 0, sum_wg = 0, sum_whg = 0;
  int n = 0;
  for (const auto& r : results(GetParam())) {
    sum_sz += r.ratio_sz;
    sum_ghost += r.ratio_ghost;
    sum_wg += r.ratio_wave_g;
    sum_whg += r.ratio_wave_hg;
    ++n;
  }
  const double avg_sz = sum_sz / n, avg_ghost = sum_ghost / n;
  const double avg_wg = sum_wg / n, avg_whg = sum_whg / n;
  EXPECT_GT(avg_wg, avg_ghost);        // waveSZ beats GhostSZ (Table 7)
  EXPECT_GT(avg_whg, avg_wg);          // H* then G* beats G* alone
  EXPECT_GT(avg_sz, avg_wg);           // SZ-1.4 tops waveSZ G*
  // H*G* recovers a large share of SZ-1.4's ratio (Table 7); the flattened
  // 3D view plus verbatim borders keeps the 3D personas further away than
  // the native-2D CESM persona.
  EXPECT_GT(avg_whg, 0.45 * avg_sz);
  if (GetParam() == data::Persona::CesmAtm) {
    EXPECT_GT(avg_whg, 0.7 * avg_sz);
  }
  EXPECT_GT(avg_sz / avg_ghost, 1.5);  // Table 1: SZ-1.4 well above GhostSZ
}

TEST_P(PersonaSweep, PsnrFloorsAndGhostConcentration) {
  // Table 8: every variant clears ~55 dB at the 1e-3 VR-rel bound.
  for (const auto& r : results(GetParam())) {
    EXPECT_GT(r.psnr_sz, 55.0);
    EXPECT_GT(r.psnr_wave, 55.0);
    EXPECT_GT(r.psnr_ghost, 55.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Personas, PersonaSweep,
    ::testing::Values(data::Persona::CesmAtm, data::Persona::Hurricane,
                      data::Persona::Nyx),
    [](const ::testing::TestParamInfo<data::Persona>& info) -> std::string {
      switch (info.param) {
        case data::Persona::CesmAtm: return "CesmAtm";
        case data::Persona::Hurricane: return "Hurricane";
        case data::Persona::Nyx: return "Nyx";
      }
      return "Unknown";
    });

TEST(Interop, ContainersAreMutuallyExclusiveAcrossVariants) {
  const Dims dims = Dims::d2(32, 32);
  const auto grid =
      data::field(data::Persona::CesmAtm, "TS", 64).materialize();
  std::vector<float> field(grid.begin(), grid.begin() + dims.count());
  const auto c_sz = sz::compress(field, dims, sz::Config{});
  const auto c_ghost = ghost::compress(field, dims, sz::Config{});
  const auto c_wave = wave::compress(field, dims, wave::default_config());
  EXPECT_THROW(sz::decompress(c_ghost.bytes), Error);
  EXPECT_THROW(ghost::decompress(c_wave.bytes), Error);
  EXPECT_THROW(wave::decompress(c_sz.bytes), Error);
  // inspect() reads any of them without decoding.
  EXPECT_EQ(sz::inspect(c_sz.bytes).variant, sz::Variant::Sz14);
  EXPECT_EQ(sz::inspect(c_ghost.bytes).variant, sz::Variant::GhostSz);
  EXPECT_EQ(sz::inspect(c_wave.bytes).variant, sz::Variant::WaveSz);
}

TEST(Interop, WaveAndSzAgreeWithinTwiceTheBound) {
  // Two independent error-bounded paths may differ by at most 2*eb.
  const auto f = data::field(data::Persona::Hurricane, "Uf48", 25);
  const auto grid = f.materialize();
  sz::Config cfg;
  const auto a = sz::decompress(sz::compress(grid, f.dims, cfg).bytes);
  const auto c = wave::compress(grid, f.dims, wave::default_config());
  const auto b = wave::decompress(c.bytes);
  const double tol =
      cfg.error_bound * metrics::value_range(grid).span() +
      c.header.eb_absolute;
  EXPECT_TRUE(metrics::within_bound(a, b, tol));
}

TEST(EndToEnd, ThroughputModelAgreesWithCompressionRatioStory) {
  // The modeled FPGA designs and the real compression paths must tell one
  // coherent story: waveSZ is both faster (model) and denser (measured)
  // than GhostSZ.
  const auto f = data::field(data::Persona::CesmAtm, "TS",
                             scale_for(data::Persona::CesmAtm));
  const auto grid = f.materialize();
  const auto wave_c = wave::compress(grid, f.dims, wave::default_config());
  const auto ghost_c = ghost::compress(grid, f.dims, sz::Config{});
  EXPECT_LT(wave_c.bytes.size(), ghost_c.bytes.size());

  const auto wave_t =
      fpga::wave_throughput(data::persona_dims(data::Persona::CesmAtm),
                            fpga::kWaveSzLanes);
  const auto ghost_t =
      fpga::ghost_throughput(data::persona_dims(data::Persona::CesmAtm));
  EXPECT_GT(wave_t.effective_mbps, ghost_t.effective_mbps * 3.0);
}

}  // namespace
}  // namespace wavesz
