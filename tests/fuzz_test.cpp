// Failure-injection tests: randomly mutated / truncated containers must
// either raise wavesz::Error or decode to a well-formed field — never crash,
// hang, or read out of bounds. The decoders are the attack surface of any
// archive format; these sweeps hammer every variant's parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "ghostsz/ghostsz.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/omp.hpp"
#include "sz2/sz2.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"

namespace wavesz {
namespace {

std::vector<float> small_field(const Dims& dims) {
  data::FieldRecipe r;
  r.seed = 99;
  return data::generate(r, dims);
}

/// Apply `decode` to a mutated copy; success or wavesz::Error both pass.
template <typename Decode>
void expect_contained(const std::vector<std::uint8_t>& bytes,
                      Decode&& decode, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 120; ++trial) {
    auto mutated = bytes;
    switch (rng() % 4) {
      case 0:  // flip a random bit
        mutated[rng() % mutated.size()] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      case 1:  // truncate
        mutated.resize(rng() % mutated.size());
        break;
      case 2: {  // splice a random window with noise
        const std::size_t at = rng() % mutated.size();
        const std::size_t len =
            std::min<std::size_t>(1 + rng() % 16, mutated.size() - at);
        for (std::size_t i = 0; i < len; ++i) {
          mutated[at + i] = static_cast<std::uint8_t>(rng());
        }
        break;
      }
      case 3: {  // duplicate-extend (trailing garbage)
        // Copy first: inserting a range that aliases the destination
        // vector is undefined once the insert reallocates.
        const std::size_t len =
            std::min<std::size_t>(rng() % 32, mutated.size());
        const std::vector<std::uint8_t> head(
            mutated.begin(),
            mutated.begin() + static_cast<std::ptrdiff_t>(len));
        mutated.insert(mutated.end(), head.begin(), head.end());
        break;
      }
    }
    try {
      const auto out = decode(mutated);
      // A surviving decode must at least be shaped like a field.
      EXPECT_FALSE(out.empty());
      for (float v : out) {
        // No signalling garbage: value is a float, any float is fine, but
        // touching each element proves the buffer is fully owned.
        (void)v;
      }
    } catch (const Error&) {
      // expected for most mutations
    }
  }
}

class MutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationSweep, Sz14DecoderIsContained) {
  const Dims dims = Dims::d2(40, 40);
  const auto c = sz::compress(small_field(dims), dims, sz::Config{});
  expect_contained(c.bytes,
                   [](const auto& b) { return sz::decompress(b); },
                   GetParam());
}

TEST_P(MutationSweep, GhostDecoderIsContained) {
  const Dims dims = Dims::d2(40, 40);
  const auto c = ghost::compress(small_field(dims), dims, sz::Config{});
  expect_contained(c.bytes,
                   [](const auto& b) { return ghost::decompress(b); },
                   GetParam() + 1000);
}

TEST_P(MutationSweep, WaveDecoderIsContained) {
  const Dims dims = Dims::d2(40, 40);
  const auto c =
      wave::compress(small_field(dims), dims, wave::default_config());
  expect_contained(c.bytes,
                   [](const auto& b) { return wave::decompress(b); },
                   GetParam() + 2000);
}

TEST_P(MutationSweep, Sz2DecoderIsContained) {
  const Dims dims = Dims::d2(40, 40);
  sz2::Config cfg;
  const auto c = sz2::compress(small_field(dims), dims, cfg);
  expect_contained(c.bytes,
                   [](const auto& b) { return sz2::decompress(b); },
                   GetParam() + 3000);
}

TEST_P(MutationSweep, OmpDecoderIsContained) {
  const Dims dims = Dims::d2(40, 40);
  const auto c =
      sz::compress_omp(small_field(dims), dims, sz::Config{}, 3);
  expect_contained(c.bytes,
                   [](const auto& b) { return sz::decompress_omp(b); },
                   GetParam() + 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// The decode fast path (flat Huffman tables + bulk-refill bit readers) has
// its own failure surface — forged table links, zero-padded peeks past the
// end, word-wise copies — so the raw gzip and Huffman-blob decoders are
// fuzzed on BOTH paths: mutations must raise wavesz::Error or decode to an
// owned buffer, never crash or hang, with the table-driven and the
// bit-at-a-time reference decoder alike.

struct ReferenceDecodeGuard {
  explicit ReferenceDecodeGuard(bool on) { set_reference_decode(on); }
  ~ReferenceDecodeGuard() { set_reference_decode(false); }
};

TEST_P(MutationSweep, GzipDecoderIsContainedOnBothPaths) {
  const Dims dims = Dims::d2(40, 40);
  const auto field = small_field(dims);
  std::vector<std::uint8_t> raw(field.size() * sizeof(float));
  std::memcpy(raw.data(), field.data(), raw.size());
  const auto gz = deflate::gzip_compress(raw, deflate::Level::Best);
  expect_contained(
      gz, [](const auto& b) { return deflate::gzip_decompress(b); },
      GetParam() + 5000);
  ReferenceDecodeGuard pin(true);
  expect_contained(
      gz, [](const auto& b) { return deflate::gzip_decompress(b); },
      GetParam() + 5000);  // same mutations, reference decoder
}

TEST_P(MutationSweep, HuffmanBlobDecoderIsContainedOnBothPaths) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::vector<std::uint16_t> codes(4000);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(32768 + (rng() % 64) - 32);
  }
  const auto blob = sz::huffman_encode(codes);
  expect_contained(
      blob, [](const auto& b) { return sz::huffman_decode(b); },
      GetParam() + 6000);
  expect_contained(
      blob, [](const auto& b) { return sz::huffman_decode_reference(b); },
      GetParam() + 6000);
}

TEST(Fuzz, TruncatedGzipEveryPrefixLength) {
  // Sweep every prefix of a small member on both decode paths: each cut
  // must throw (header, body, or trailer check), never hang or overrun.
  std::vector<std::uint8_t> raw(997);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>(i % 31);
  }
  const auto gz = deflate::gzip_compress(raw, deflate::Level::Best);
  for (std::size_t cut = 0; cut < gz.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(gz.begin(),
                                           gz.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(deflate::gzip_decompress(prefix), Error) << "cut=" << cut;
    ReferenceDecodeGuard pin(true);
    EXPECT_THROW(deflate::gzip_decompress(prefix), Error) << "cut=" << cut;
  }
}

TEST(Fuzz, TruncatedHuffmanBlobEveryPrefixLength) {
  std::vector<std::uint16_t> codes(257);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint16_t>(i % 40);
  }
  const auto blob = sz::huffman_encode(codes);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(blob.begin(),
                                           blob.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(sz::huffman_decode(prefix), Error) << "cut=" << cut;
    EXPECT_THROW(sz::huffman_decode_reference(prefix), Error) << "cut=" << cut;
  }
}

TEST(Fuzz, EmptyAndGarbageInputs) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(sz::decompress(empty), Error);
  EXPECT_THROW(wave::decompress(empty), Error);
  EXPECT_THROW(ghost::decompress(empty), Error);
  EXPECT_THROW(sz2::decompress(empty), Error);
  std::vector<std::uint8_t> garbage(1024);
  std::mt19937 rng(7);
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
  EXPECT_THROW(sz::decompress(garbage), Error);
  EXPECT_THROW(wave::decompress(garbage), Error);
  EXPECT_THROW(ghost::decompress(garbage), Error);
  EXPECT_THROW(sz2::decompress(garbage), Error);
  EXPECT_THROW(sz::inspect(garbage), Error);
}

}  // namespace
}  // namespace wavesz
