// Tests for the SZ-2.0-style compressor: block decomposition, hyperplane
// regression, predictor selection, the logarithmic transform for
// pointwise-relative bounds, and the paper's §2.1 regime claim.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "data/datasets.hpp"
#include "data/synthetic.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz2/sz2.hpp"
#include "util/error.hpp"

namespace wavesz::sz2 {
namespace {

std::vector<float> affine_field(const Dims& dims) {
  std::vector<float> out(dims.count());
  const std::size_t n1 = dims.rank >= 2 ? dims[1] : 1;
  const std::size_t n2 = dims.rank >= 3 ? dims[2] : 1;
  std::size_t i = 0;
  for (std::size_t a = 0; a < dims[0]; ++a) {
    for (std::size_t b = 0; b < n1; ++b) {
      for (std::size_t c = 0; c < n2; ++c, ++i) {
        out[i] = 3.0f + 0.25f * static_cast<float>(a) -
                 0.5f * static_cast<float>(b) +
                 0.125f * static_cast<float>(c);
      }
    }
  }
  return out;
}

TEST(Sz2, LogDomainBoundGuaranteesRelativeError) {
  for (double eb : {1e-1, 1e-2, 1e-3, 1e-5}) {
    const double delta = log_domain_bound(eb);
    // Worst-case relative error of a log-domain perturbation of +-delta.
    EXPECT_LE(std::exp2(delta) - 1.0, eb);
    EXPECT_GT(delta, 0.0);
  }
  EXPECT_THROW(log_domain_bound(0.0), Error);
  EXPECT_THROW(log_domain_bound(1.5), Error);
}

TEST(Sz2, AffineFieldCollapses) {
  // A hyperplane field: both predictors are exact (regression by
  // construction, Lorenzo on affine data), so whatever the per-block choice,
  // the stream collapses and the bound holds trivially.
  const Dims dims = Dims::d3(16, 16, 16);
  const auto field = affine_field(dims);
  Config cfg;
  cfg.error_bound = 1e-4;
  cfg.mode = Config::Mode::Absolute;
  const auto c = compress(field, dims, cfg);
  EXPECT_EQ(c.unpredictable_count, 0u);
  EXPECT_LT(c.bytes.size(), 2000u);
  const auto decoded = decompress(c.bytes);
  EXPECT_TRUE(metrics::within_bound(field, decoded, 1e-4));
}

TEST(Sz2, NoisyAffineFieldPrefersRegression) {
  // iid noise on a plane: the Lorenzo stencil amplifies it (4 taps) while
  // the block-wide plane fit averages it away — every block must pick
  // regression. This is exactly the regime SZ-2.0 was designed for.
  const Dims dims = Dims::d2(64, 64);
  auto field = affine_field(dims);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] += 0.02f * static_cast<float>(
                            data::hash_noise(3, i, i / 64, 0));
  }
  Config cfg;
  cfg.error_bound = 0.05;
  cfg.mode = Config::Mode::Absolute;
  const auto c = compress(field, dims, cfg);
  EXPECT_EQ(c.regression_blocks, c.block_count);
  const auto decoded = decompress(c.bytes);
  EXPECT_TRUE(metrics::within_bound(field, decoded, 0.05));
}

TEST(Sz2, LorenzoWinsOnLocallyCorrelatedData) {
  // A smooth non-planar field: Lorenzo tracks curvature that a per-block
  // plane cannot, so at a tight bound most blocks pick Lorenzo.
  const Dims dims = Dims::d2(64, 64);
  data::FieldRecipe r;
  r.seed = 5;
  r.base_frequency = 2.0;
  const auto field = data::generate(r, dims);
  Config cfg;
  cfg.error_bound = 1e-4;
  const auto c = compress(field, dims, cfg);
  EXPECT_LT(c.regression_blocks, c.block_count / 2);
}

class Sz2RoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Sz2RoundTrip, AbsoluteAndRangeRelativeBoundsHold) {
  const auto [rank, eb] = GetParam();
  const Dims dims = rank == 1   ? Dims::d1(4000)
                    : rank == 2 ? Dims::d2(70, 90)
                                : Dims::d3(20, 18, 22);
  data::FieldRecipe r;
  r.seed = static_cast<std::uint64_t>(rank) * 7 + 1;
  const auto field = data::generate(r, dims);
  Config cfg;
  cfg.error_bound = eb;
  const auto c = compress(field, dims, cfg);
  Dims out_dims;
  const auto decoded = decompress(c.bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  EXPECT_TRUE(metrics::within_bound(field, decoded, c.eb_absolute))
      << metrics::first_violation(field, decoded, c.eb_absolute);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBounds, Sz2RoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1e-2, 1e-3, 1e-4)));

class Sz2Pointwise : public ::testing::TestWithParam<double> {};

TEST_P(Sz2Pointwise, PointwiseRelativeBoundHoldsOnLognormalData) {
  // The log transform is exactly for high-dynamic-range positive data
  // (NYX baryon density spans decades).
  const double eb = GetParam();
  const auto f = data::field(data::Persona::Nyx, "baryon_density", 16);
  const auto field = f.materialize();
  Config cfg;
  cfg.error_bound = eb;
  cfg.mode = Config::Mode::PointwiseRelative;
  const auto c = compress(field, f.dims, cfg);
  const auto decoded = decompress(c.bytes);
  ASSERT_EQ(decoded.size(), field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double d = field[i];
    const double rel =
        d == 0.0 ? std::fabs(static_cast<double>(decoded[i]))
                 : std::fabs(static_cast<double>(decoded[i]) - d) /
                       std::fabs(d);
    ASSERT_LE(rel, eb * (1.0 + 1e-6)) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, Sz2Pointwise,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

TEST(Sz2, PointwiseModeHandlesSignsAndZeros) {
  const Dims dims = Dims::d2(16, 16);
  std::vector<float> field(dims.count());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = (i % 5 == 0) ? 0.0f
                            : ((i % 2 == 0) ? 1.0f : -1.0f) *
                                  static_cast<float>(i) * 0.75f;
  }
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.mode = Config::Mode::PointwiseRelative;
  const auto decoded = decompress(compress(field, dims, cfg).bytes);
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] == 0.0f) {
      EXPECT_EQ(decoded[i], 0.0f);
    } else {
      EXPECT_EQ(std::signbit(decoded[i]), std::signbit(field[i]));
      EXPECT_LE(std::fabs(static_cast<double>(decoded[i] - field[i])),
                1e-3 * std::fabs(static_cast<double>(field[i])) * 1.001);
    }
  }
}

TEST(Sz2, PointwiseModeRejectsNonFinite) {
  const Dims dims = Dims::d1(4);
  const std::vector<float> field{
      1.0f, std::numeric_limits<float>::infinity(), 2.0f, 3.0f};
  Config cfg;
  cfg.mode = Config::Mode::PointwiseRelative;
  EXPECT_THROW(compress(field, dims, cfg), Error);
}

TEST(Sz2, EdgeBlocksAndOddShapes) {
  // Dims that are not multiples of the block side exercise partial blocks.
  for (auto dims : {Dims::d2(17, 19), Dims::d2(16, 33), Dims::d3(9, 10, 11)}) {
    data::FieldRecipe r;
    r.seed = dims.count();
    const auto field = data::generate(r, dims);
    Config cfg;
    const auto c = compress(field, dims, cfg);
    const auto decoded = decompress(c.bytes);
    EXPECT_TRUE(metrics::within_bound(field, decoded, c.eb_absolute))
        << dims.str();
  }
}

TEST(Sz2, CustomBlockSide) {
  const Dims dims = Dims::d2(64, 64);
  data::FieldRecipe r;
  r.seed = 9;
  const auto field = data::generate(r, dims);
  Config cfg;
  cfg.block_side = 4;
  const auto c = compress(field, dims, cfg);
  EXPECT_EQ(c.block_count, 16u * 16u);
  EXPECT_TRUE(
      metrics::within_bound(field, decompress(c.bytes), c.eb_absolute));
  Config bad;
  bad.block_side = 1;
  EXPECT_THROW(compress(field, dims, bad), Error);
}

TEST(Sz2, CorruptContainerFailsLoudly) {
  const Dims dims = Dims::d2(32, 32);
  const auto field = affine_field(dims);
  Config cfg;
  cfg.mode = Config::Mode::Absolute;
  cfg.error_bound = 0.01;
  auto c = compress(field, dims, cfg);
  auto bad = c.bytes;
  bad[0] ^= 0xFF;
  EXPECT_THROW(decompress(bad), Error);
  std::vector<std::uint8_t> cut(c.bytes.begin(),
                                c.bytes.begin() + c.bytes.size() - 8);
  EXPECT_THROW(decompress(cut), Error);
}

TEST(Sz2, RegimeClaimFromPaperSection21) {
  // §2.1: SZ-2.0 is more effective in the low-precision (coarse-bound)
  // regime and similar or slightly worse at tight bounds. Check both ends
  // on a piecewise-planar field with noise, which favours regression when
  // the bound is coarse.
  const Dims dims = Dims::d2(96, 96);
  data::FieldRecipe r;
  r.seed = 77;
  r.wave_components = 2;
  r.base_frequency = 0.4;
  r.noise_amplitude = 5e-3;  // noise Lorenzo amplifies but planes ignore
  const auto field = data::generate(r, dims);
  const double raw = static_cast<double>(field.size() * sizeof(float));

  auto ratio_sz2 = [&](double eb) {
    Config cfg;
    cfg.error_bound = eb;
    return raw / static_cast<double>(compress(field, dims, cfg).bytes.size());
  };
  auto ratio_sz14 = [&](double eb) {
    sz::Config cfg;
    cfg.error_bound = eb;
    return raw /
           static_cast<double>(sz::compress(field, dims, cfg).bytes.size());
  };
  // Coarse bound: regression shines.
  EXPECT_GT(ratio_sz2(5e-2), ratio_sz14(5e-2));
  // Tight bound: within 25% of SZ-1.4 either way ("very similar or
  // slightly worse").
  const double tight2 = ratio_sz2(1e-4), tight14 = ratio_sz14(1e-4);
  EXPECT_GT(tight2, 0.75 * tight14);
}

}  // namespace
}  // namespace wavesz::sz2
