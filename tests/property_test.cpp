// Cross-cutting property tests: monotonicity of ratio/PSNR in the error
// bound, determinism of every compressor, and idempotence of a
// compress-decompress-compress cycle.
#include <gtest/gtest.h>

#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz2/sz2.hpp"

namespace wavesz {
namespace {

std::vector<float> test_field(std::uint64_t seed) {
  data::FieldRecipe r;
  r.seed = seed;
  r.base_frequency = 0.6;
  r.noise_amplitude = 1e-4;
  return data::generate(r, Dims::d2(96, 96));
}

const Dims kDims = Dims::d2(96, 96);
const double kEbs[] = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

template <typename CompressFn, typename DecompressFn>
void check_monotone(CompressFn&& comp, DecompressFn&& dec,
                    const std::vector<float>& field) {
  double prev_size = 0.0;
  double prev_psnr = -1.0;
  for (double eb : kEbs) {
    const auto bytes = comp(field, eb);
    const auto restored = dec(bytes);
    const double psnr = metrics::distortion(field, restored).psnr_db;
    // Tighter bound => never (meaningfully) smaller output, never lower
    // fidelity. 2% slack absorbs entropy-coding noise.
    EXPECT_GE(static_cast<double>(bytes.size()) * 1.02, prev_size)
        << "at eb " << eb;
    EXPECT_GT(psnr, prev_psnr) << "at eb " << eb;
    prev_size = static_cast<double>(bytes.size());
    prev_psnr = psnr;
  }
}

TEST(Monotonicity, Sz14SizeAndPsnrFollowTheBound) {
  const auto field = test_field(1);
  check_monotone(
      [&](const auto& f, double eb) {
        sz::Config cfg;
        cfg.error_bound = eb;
        return sz::compress(f, kDims, cfg).bytes;
      },
      [](const auto& b) { return sz::decompress(b); }, field);
}

TEST(Monotonicity, WaveSzSizeAndPsnrFollowTheBound) {
  const auto field = test_field(2);
  check_monotone(
      [&](const auto& f, double eb) {
        auto cfg = wave::default_config();
        cfg.error_bound = eb;
        return wave::compress(f, kDims, cfg).bytes;
      },
      [](const auto& b) { return wave::decompress(b); }, field);
}

TEST(Monotonicity, GhostSzSizeAndPsnrFollowTheBound) {
  const auto field = test_field(3);
  check_monotone(
      [&](const auto& f, double eb) {
        sz::Config cfg;
        cfg.error_bound = eb;
        return ghost::compress(f, kDims, cfg).bytes;
      },
      [](const auto& b) { return ghost::decompress(b); }, field);
}

TEST(Monotonicity, Sz2SizeAndPsnrFollowTheBound) {
  const auto field = test_field(4);
  check_monotone(
      [&](const auto& f, double eb) {
        sz2::Config cfg;
        cfg.error_bound = eb;
        return sz2::compress(f, kDims, cfg).bytes;
      },
      [](const auto& b) { return sz2::decompress(b); }, field);
}

TEST(Determinism, SameInputSameBytesAcrossAllVariants) {
  const auto field = test_field(5);
  sz::Config cfg;
  EXPECT_EQ(sz::compress(field, kDims, cfg).bytes,
            sz::compress(field, kDims, cfg).bytes);
  EXPECT_EQ(ghost::compress(field, kDims, cfg).bytes,
            ghost::compress(field, kDims, cfg).bytes);
  EXPECT_EQ(wave::compress(field, kDims, wave::default_config()).bytes,
            wave::compress(field, kDims, wave::default_config()).bytes);
  sz2::Config cfg2;
  EXPECT_EQ(sz2::compress(field, kDims, cfg2).bytes,
            sz2::compress(field, kDims, cfg2).bytes);
}

TEST(Idempotence, RecompressingTheDecompressedFieldIsStable) {
  // Decompressed data lies on the quantization lattice, so a second
  // compress-decompress cycle at the same absolute bound must reproduce
  // data within the bound of the first reconstruction, and the second
  // archive must not blow up in size.
  const auto field = test_field(6);
  sz::Config cfg;
  cfg.mode = sz::EbMode::Absolute;
  cfg.error_bound = 1e-3;
  const auto first = sz::compress(field, kDims, cfg);
  const auto restored1 = sz::decompress(first.bytes);
  const auto second = sz::compress(restored1, kDims, cfg);
  const auto restored2 = sz::decompress(second.bytes);
  EXPECT_TRUE(metrics::within_bound(restored1, restored2, 1e-3));
  EXPECT_LT(second.bytes.size(), first.bytes.size() * 2);
}

TEST(Property, WaveF64KernelMatchesF32OnFloatRepresentableData) {
  // On data that is exactly float-representable with a coarse bound, the
  // float64 pipeline must emit the same quantization decisions.
  std::vector<float> f32 = test_field(7);
  std::vector<double> f64(f32.begin(), f32.end());
  auto cfg = wave::default_config();
  cfg.mode = sz::EbMode::Absolute;
  cfg.error_bound = 0.01;
  const auto c32 = wave::compress(std::span<const float>(f32), kDims, cfg);
  const auto c64 = wave::compress(std::span<const double>(f64), kDims, cfg);
  EXPECT_EQ(c32.header.unpredictable_count, c64.header.unpredictable_count);
  const auto d32 = wave::decompress(c32.bytes);
  const auto d64 = wave::decompress64(c64.bytes);
  for (std::size_t i = 0; i < d32.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(d32[i]), d64[i], 1e-5);
  }
}

}  // namespace
}  // namespace wavesz
