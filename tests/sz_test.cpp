// Unit and property tests for the SZ-1.4 reference implementation:
// Algorithm 1 quantization (base-10 and base-2 paths), Lorenzo predictors,
// the customized Huffman codec, truncation coding, and full round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "data/datasets.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/omp.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"
#include "sz/unpredictable.hpp"
#include "util/error.hpp"
#include "util/float_bits.hpp"

namespace wavesz::sz {
namespace {

// ------------------------------------------------------------- quantizer

TEST(Quantizer, AlgorithmOneWorkedExamples) {
  // Hand-checked against Algorithm 1 with p = 1, radius = 32768.
  const LinearQuantizer q(1.0, 16);
  // diff = 0.9 -> code0 = 1 -> q = 0 -> code = radius, d_re = pred.
  auto r = q.quantize(10.0, 10.9);
  EXPECT_EQ(r.code, 32768);
  EXPECT_FLOAT_EQ(r.reconstructed, 10.0f);
  // diff = 2.5 -> code0 = 3 -> q = 1 -> d_re = pred + 2.
  r = q.quantize(10.0, 12.5);
  EXPECT_EQ(r.code, 32769);
  EXPECT_FLOAT_EQ(r.reconstructed, 12.0f);
  // diff = -2.5 -> signed code0 = -3 -> q = -1 -> d_re = pred - 2.
  r = q.quantize(10.0, 7.5);
  EXPECT_EQ(r.code, 32767);
  EXPECT_FLOAT_EQ(r.reconstructed, 8.0f);
}

TEST(Quantizer, CodeZeroReservedForUnpredictable) {
  const LinearQuantizer q(1e-3, 16);
  const auto r = q.quantize(0.0, 1e6);  // way beyond capacity
  EXPECT_EQ(r.code, 0);
}

TEST(Quantizer, ReconstructInvertsQuantize) {
  const LinearQuantizer q(0.01, 16);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> preds(-100.0, 100.0);
  std::uniform_real_distribution<double> diffs(-300.0, 300.0);
  for (int i = 0; i < 10000; ++i) {
    const double pred = preds(rng);
    const double orig = pred + diffs(rng);
    const auto r = q.quantize(pred, orig);
    if (r.code == 0) continue;
    EXPECT_FLOAT_EQ(q.reconstruct(pred, r.code), r.reconstructed);
  }
}

TEST(Quantizer, NanInputIsUnpredictableNotUb) {
  const LinearQuantizer q(1.0, 16);
  const auto r = q.quantize(0.0, std::nan(""));
  EXPECT_EQ(r.code, 0);
}

TEST(Quantizer, RejectsBadConstruction) {
  EXPECT_THROW(LinearQuantizer(0.0, 16), Error);
  EXPECT_THROW(LinearQuantizer(-1.0, 16), Error);
  EXPECT_THROW(LinearQuantizer(1.0, 17), Error);
  EXPECT_THROW(LinearQuantizer(1.0, 1), Error);
}

// Error-bound property over eb decades, quantizer widths, and offsets.
class QuantizerBound
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(QuantizerBound, EveryQuantizedValueRespectsTheBound) {
  const auto [eb, bits] = GetParam();
  const LinearQuantizer q(eb, bits);
  std::mt19937_64 rng(static_cast<std::uint64_t>(bits) * 1000001);
  std::uniform_real_distribution<double> preds(-10.0, 10.0);
  std::uniform_real_distribution<double> mags(-5.0, 5.0);
  int quantized = 0;
  for (int i = 0; i < 20000; ++i) {
    const double pred = preds(rng);
    // Diffs spanning far below eb to far above capacity*eb.
    const double diff = std::copysign(
        eb * std::pow(10.0, mags(rng)), preds(rng));
    const double orig = pred + diff;
    const auto r = q.quantize(pred, orig);
    if (r.code != 0) {
      ++quantized;
      EXPECT_LE(std::fabs(static_cast<double>(r.reconstructed) - orig),
                eb * (1 + 1e-12));
      EXPECT_LT(r.code, q.capacity());
    }
  }
  EXPECT_GT(quantized, 1000);  // the sweep must actually exercise the path
}

INSTANTIATE_TEST_SUITE_P(
    EbDecadesAndWidths, QuantizerBound,
    ::testing::Combine(::testing::Values(1e-1, 1e-3, 1e-5, 0.5, 1.0),
                       ::testing::Values(8, 14, 16)));

TEST(Base2Quantizer, MatchesLinearQuantizerOnPowerOfTwoBounds) {
  // §3.3: with a power-of-two precision, the exponent-only datapath must be
  // bit-identical to the division datapath.
  for (int e : {-12, -10, -4, 0, 3}) {
    const double p = std::ldexp(1.0, e);
    const LinearQuantizer lin(p, 16);
    const Base2Quantizer b2(e, 16);
    std::mt19937_64 rng(static_cast<std::uint64_t>(e + 100));
    std::uniform_real_distribution<double> vals(-1000.0, 1000.0);
    for (int i = 0; i < 5000; ++i) {
      const double pred = vals(rng);
      const double orig = vals(rng);
      const auto a = lin.quantize(pred, orig);
      const auto b = b2.quantize(pred, orig);
      EXPECT_EQ(a.code, b.code);
      if (a.code != 0) {
        EXPECT_EQ(a.reconstructed, b.reconstructed);
        EXPECT_EQ(lin.reconstruct(pred, a.code), b2.reconstruct(pred, b.code));
      }
    }
  }
}

// ------------------------------------------------------------ predictors

TEST(Predictors, LorenzoExactOnAffineFields) {
  // A 2D Lorenzo predictor reproduces any affine field exactly.
  const auto f = [](double x, double y) { return 3.0 + 2.0 * x - 5.0 * y; };
  for (int x = 1; x < 10; ++x) {
    for (int y = 1; y < 10; ++y) {
      const double pred = lorenzo2d(f(x - 1, y - 1), f(x - 1, y), f(x, y - 1));
      EXPECT_DOUBLE_EQ(pred, f(x, y));
    }
  }
}

TEST(Predictors, Lorenzo3dExactOnAffineFields) {
  const auto f = [](double x, double y, double z) {
    return 1.0 - 2.0 * x + 0.5 * y + 4.0 * z;
  };
  const double pred =
      lorenzo3d(f(0, 0, 0), f(0, 0, 1), f(0, 1, 0), f(1, 0, 0), f(0, 1, 1),
                f(1, 0, 1), f(1, 1, 0));
  EXPECT_DOUBLE_EQ(pred, f(1, 1, 1));
}

TEST(Predictors, Lorenzo3dSignsFollowManhattanParity) {
  // Coefficient of each neighbour is (-1)^(L+1), L = Manhattan distance.
  // Feeding 1 at a single L=2 neighbour must contribute -1.
  EXPECT_DOUBLE_EQ(lorenzo3d(0, 1, 0, 0, 0, 0, 0), -1.0);
  EXPECT_DOUBLE_EQ(lorenzo3d(1, 0, 0, 0, 0, 0, 0), 1.0);   // L = 3
  EXPECT_DOUBLE_EQ(lorenzo3d(0, 0, 0, 0, 1, 0, 0), 1.0);   // L = 1
}

TEST(Predictors, CurveFitOrdersExactOnPolynomials) {
  // Order-1 is exact on linear sequences, order-2 on quadratics.
  const auto lin = [](double t) { return 4.0 + 3.0 * t; };
  EXPECT_DOUBLE_EQ(curvefit_order1(lin(2), lin(1)), lin(3));
  const auto quad = [](double t) { return 1.0 + t + 2.0 * t * t; };
  EXPECT_DOUBLE_EQ(curvefit_order2(quad(3), quad(2), quad(1)), quad(4));
}

TEST(Predictors, BestFitPicksSmallestError) {
  // History 10, 8, 7: order0 -> 10, order1 -> 12, order2 -> 13.
  const auto b = curvefit_best(11.9, 10, 8, 7, 3);
  EXPECT_EQ(b.order, 1);
  EXPECT_DOUBLE_EQ(b.prediction, 12.0);
  // With only one value of history, order 0 is forced.
  const auto b0 = curvefit_best(11.9, 10, 0, 0, 1);
  EXPECT_EQ(b0.order, 0);
}

TEST(Predictors, TwoLayerLorenzoExactOnItsResidualClass) {
  // Residual of the 2-layer stencil is Dx^2 Dy^2 f: any term of degree <= 1
  // in x or in y vanishes (x^2, x*y, y^3), while x^2*y^2 does not.
  const auto f = [](double x, double y) {
    return 2.0 + x * x - 3.0 * x * y + y * y * y;
  };
  for (int x = 2; x < 8; ++x) {
    for (int y = 2; y < 8; ++y) {
      const double pred = lorenzo2d_2layer(
          f(x, y - 1), f(x, y - 2), f(x - 1, y), f(x - 1, y - 1),
          f(x - 1, y - 2), f(x - 2, y), f(x - 2, y - 1), f(x - 2, y - 2));
      EXPECT_NEAR(pred, f(x, y), 1e-9);
    }
  }
  const auto g = [](double x, double y) { return x * x * y * y; };
  const double bad = lorenzo2d_2layer(
      g(5, 4), g(5, 3), g(4, 5), g(4, 4), g(4, 3), g(3, 5), g(3, 4),
      g(3, 3));
  EXPECT_NE(bad, g(5, 5));
  EXPECT_DOUBLE_EQ(lorenzo1d_2layer(7.0, 4.0), 10.0);
}

TEST(SzCompressor, TwoLayerPredictorRoundTripsAndIsRecorded) {
  const Dims dims = Dims::d2(60, 80);
  data::FieldRecipe recipe;
  recipe.seed = 44;
  recipe.base_frequency = 0.5;
  const auto field = data::generate(recipe, dims);
  Config cfg;
  cfg.predictor = PredictorKind::Lorenzo2Layer;
  const auto c = compress(field, dims, cfg);
  EXPECT_EQ(c.header.aux, 1);
  const auto decoded = decompress(c.bytes);
  EXPECT_TRUE(metrics::within_bound(field, decoded, c.header.eb_absolute));
  // The two predictor kinds must produce different streams on curved data.
  Config one;
  EXPECT_NE(c.bytes, compress(field, dims, one).bytes);
}

TEST(SzCompressor, TwoLayerRejectedFor3d) {
  const Dims dims = Dims::d3(4, 4, 4);
  const std::vector<float> field(dims.count(), 1.0f);
  Config cfg;
  cfg.predictor = PredictorKind::Lorenzo2Layer;
  EXPECT_THROW(compress(field, dims, cfg), Error);
}

// ------------------------------------------------------- truncation code

class TruncationBound : public ::testing::TestWithParam<double> {};

TEST_P(TruncationBound, RoundTripWithinBound) {
  const double bound = GetParam();
  std::mt19937_64 rng(42);
  // Unpredictable values sit within a few decades of the bound in practice
  // (they failed quantization at ~1e4 bins); match that regime so the
  // "cheaper than raw floats" property is meaningful.
  std::uniform_real_distribution<float> vals(
      static_cast<float>(-bound * 1e4), static_cast<float>(bound * 1e4));
  std::vector<float> values;
  for (int i = 0; i < 2000; ++i) values.push_back(vals(rng));
  values.push_back(0.0f);
  values.push_back(static_cast<float>(bound) / 2);
  values.push_back(-1e-30f);  // subnormal-adjacent tiny value

  const auto blob = truncation_encode(values, bound);
  const auto decoded = truncation_decode(blob, values.size(), bound);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::fabs(static_cast<double>(values[i]) -
                        static_cast<double>(decoded[i])),
              bound)
        << "value " << values[i];
    // The in-loop writeback helper must agree with the codec exactly.
    EXPECT_EQ(truncation_roundtrip(values[i], bound), decoded[i]);
  }
  // Each value must cost fewer bits than raw float32 storage.
  EXPECT_LT(blob.size(), values.size() * sizeof(float));
}

INSTANTIATE_TEST_SUITE_P(Bounds, TruncationBound,
                         ::testing::Values(1e-1, 1e-3, 1e-6, 1.0, 100.0));

TEST(Truncation, BitsMatchEncodedSize) {
  const double bound = 1e-3;
  const std::vector<float> values{0.0f, 1.5f, -123.456f, 1e-8f};
  std::size_t bits = 0;
  for (float v : values) {
    bits += static_cast<std::size_t>(truncation_bits(v, bound));
  }
  const auto blob = truncation_encode(values, bound);
  EXPECT_EQ(blob.size(), (bits + 7) / 8);
}

TEST(Truncation, NonFiniteRejected) {
  const std::vector<float> bad{std::numeric_limits<float>::infinity()};
  EXPECT_THROW(truncation_encode(bad, 1e-3), Error);
}

// --------------------------------------------------------- Huffman codec

TEST(HuffmanCodec, RoundTripSkewedQuantizationCodes) {
  // Typical SZ output: a huge spike at the radius plus a narrow spread.
  std::mt19937 rng(13);
  std::vector<std::uint16_t> codes;
  for (int i = 0; i < 50000; ++i) {
    const int delta = static_cast<int>(rng() % 100) - 50;
    codes.push_back(
        (rng() % 50 == 0) ? 0
                          : static_cast<std::uint16_t>(32768 + delta / 10));
  }
  const auto blob = huffman_encode(codes);
  EXPECT_EQ(huffman_decode(blob), codes);
  // Entropy coding must beat 16-bit raw storage comfortably here.
  EXPECT_LT(blob.size(), codes.size());
  EXPECT_LT(huffman_mean_bits(codes), 6.0);
}

TEST(HuffmanCodec, EmptyAndSingleSymbolStreams) {
  const std::vector<std::uint16_t> empty;
  EXPECT_EQ(huffman_decode(huffman_encode(empty)), empty);
  const std::vector<std::uint16_t> mono(1000, 42);
  const auto blob = huffman_encode(mono);
  EXPECT_EQ(huffman_decode(blob), mono);
  EXPECT_LT(blob.size(), 200u);
}

TEST(HuffmanCodec, AllSymbolsDistinct) {
  std::vector<std::uint16_t> codes(4096);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint16_t>(i * 16 + 1);
  }
  EXPECT_EQ(huffman_decode(huffman_encode(codes)), codes);
}

TEST(HuffmanCodec, CorruptTableRejected) {
  const std::vector<std::uint16_t> codes{1, 2, 3, 2, 1};
  auto blob = huffman_encode(codes);
  blob[4] = 0xFF;  // clobber the distinct-count / table region
  EXPECT_THROW(huffman_decode(blob), Error);
}

TEST(HuffmanCodec, TruncatedPayloadRejected) {
  const std::vector<std::uint16_t> codes(5000, 7);
  auto blob = huffman_encode(codes);
  blob.resize(blob.size() / 2);
  EXPECT_THROW(huffman_decode(blob), Error);
}

// ------------------------------------------------------------ compressor

Config abs_config(double eb) {
  Config cfg;
  cfg.error_bound = eb;
  cfg.mode = EbMode::Absolute;
  return cfg;
}

std::vector<float> smooth_grid(const Dims& dims, std::uint64_t seed) {
  data::FieldRecipe r;
  r.seed = seed;
  return data::generate(r, dims);
}

class SzRoundTrip : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(SzRoundTrip, BoundHoldsAcrossRanksAndBounds) {
  const auto [rank, eb] = GetParam();
  const Dims dims = rank == 1   ? Dims::d1(5000)
                    : rank == 2 ? Dims::d2(60, 80)
                                : Dims::d3(12, 20, 24);
  const auto field = smooth_grid(dims, static_cast<std::uint64_t>(rank));
  Config cfg;
  cfg.error_bound = eb;
  cfg.mode = EbMode::ValueRangeRelative;
  const auto compressed = compress(field, dims, cfg);
  Dims out_dims;
  const auto decoded = decompress(compressed.bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  ASSERT_EQ(decoded.size(), field.size());
  const double abs_bound =
      eb * metrics::value_range(field).span();
  EXPECT_TRUE(metrics::within_bound(field, decoded, abs_bound))
      << "first violation at "
      << metrics::first_violation(field, decoded, abs_bound);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBounds, SzRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1e-2, 1e-3, 1e-4)));

TEST(SzCompressor, SmoothFieldCompressesWell) {
  const Dims dims = Dims::d2(128, 128);
  const auto field = smooth_grid(dims, 77);
  Config cfg;  // default: VR-rel 1e-3, Huffman on
  const auto c = compress(field, dims, cfg);
  const double ratio = metrics::compression_ratio(
      field.size() * sizeof(float), c.bytes.size());
  EXPECT_GT(ratio, 4.0);
  EXPECT_EQ(c.header.point_count, dims.count());
}

TEST(SzCompressor, HuffmanImprovesOverRawCodes) {
  const Dims dims = Dims::d2(96, 96);
  const auto field = smooth_grid(dims, 3);
  Config with = abs_config(1e-3);
  Config without = abs_config(1e-3);
  without.huffman = false;
  const auto a = compress(field, dims, with);
  const auto b = compress(field, dims, without);
  EXPECT_LT(a.bytes.size(), b.bytes.size());
  EXPECT_EQ(decompress(a.bytes), decompress(b.bytes));
}

TEST(SzCompressor, Base2ModeTightensBoundInHeader) {
  const Dims dims = Dims::d2(32, 32);
  const auto field = smooth_grid(dims, 5);
  Config cfg;
  cfg.base = EbBase::Two;
  const auto c = compress(field, dims, cfg);
  EXPECT_TRUE(is_pow2(c.header.eb_absolute));
  EXPECT_LE(c.header.eb_absolute,
            1e-3 * metrics::value_range(field).span());
  const auto decoded = decompress(c.bytes);
  EXPECT_TRUE(metrics::within_bound(field, decoded, c.header.eb_absolute));
}

TEST(SzCompressor, ConstantFieldIsTiny) {
  const Dims dims = Dims::d2(64, 64);
  const std::vector<float> field(dims.count(), 3.25f);
  const auto c = compress(field, dims, Config{});
  EXPECT_LT(c.bytes.size(), 400u);
  const auto decoded = decompress(c.bytes);
  for (float v : decoded) EXPECT_NEAR(v, 3.25f, 1e-3);
}

TEST(SzCompressor, PureNoiseStillBounded) {
  const Dims dims = Dims::d2(50, 50);
  std::vector<float> field(dims.count());
  std::mt19937 rng(21);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  for (auto& v : field) v = d(rng);
  Config cfg;
  cfg.error_bound = 1e-4;  // tight bound on noise: many unpredictables
  const auto c = compress(field, dims, cfg);
  const auto decoded = decompress(c.bytes);
  EXPECT_TRUE(metrics::within_bound(field, decoded, c.header.eb_absolute));
}

TEST(SzCompressor, RejectsMismatchedDims) {
  const std::vector<float> field(100, 1.0f);
  EXPECT_THROW(compress(field, Dims::d2(10, 11), Config{}), Error);
  EXPECT_THROW(lorenzo_pqd(field, Dims::d1(99), LinearQuantizer(1.0, 16)),
               Error);
}

TEST(SzCompressor, CorruptContainersFailLoudly) {
  const Dims dims = Dims::d2(40, 40);
  const auto field = smooth_grid(dims, 9);
  auto c = compress(field, dims, Config{});
  // Truncation.
  std::vector<std::uint8_t> cut(c.bytes.begin(),
                                c.bytes.begin() + c.bytes.size() / 3);
  EXPECT_THROW(decompress(cut), Error);
  // Magic corruption.
  auto bad = c.bytes;
  bad[0] ^= 0xFF;
  EXPECT_THROW(decompress(bad), Error);
  // Payload corruption trips the gzip CRC.
  auto payload = c.bytes;
  payload[payload.size() / 2] ^= 0x10;
  EXPECT_THROW(decompress(payload), Error);
}

TEST(SzCompressor, PqdMatchesStraightforwardReference) {
  // Pin the (branch-optimized) production PQD loop against a deliberately
  // naive re-implementation. This is the regression net for stride bugs in
  // the interior fast path: a wrong-but-bounded predictor passes every
  // error-bound test while silently gutting the compression ratio.
  for (const Dims& dims : {Dims::d2(37, 53), Dims::d3(9, 13, 17)}) {
    data::FieldRecipe recipe;
    recipe.seed = dims.count();
    const auto field = data::generate(recipe, dims);
    const LinearQuantizer q(0.004, 16);
    const auto pqd = lorenzo_pqd(field, dims, q);

    const std::size_t n0 = dims[0];
    const std::size_t n1 = dims.rank >= 2 ? dims[1] : 1;
    const std::size_t n2 = dims.rank >= 3 ? dims[2] : 1;
    std::vector<float> rec(field.size());
    auto at = [&](std::ptrdiff_t a, std::ptrdiff_t b, std::ptrdiff_t c) {
      if (a < 0 || b < 0 || c < 0) return 0.0;
      return static_cast<double>(
          rec[(static_cast<std::size_t>(a) * n1 +
               static_cast<std::size_t>(b)) *
                  n2 +
              static_cast<std::size_t>(c)]);
    };
    std::size_t i = 0;
    for (std::ptrdiff_t a = 0; a < static_cast<std::ptrdiff_t>(n0); ++a) {
      for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(n1); ++b) {
        for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(n2);
             ++c, ++i) {
          double pred;
          if (dims.rank == 2) {
            pred = lorenzo2d(at(a - 1, b - 1, 0), at(a - 1, b, 0),
                             at(a, b - 1, 0));
          } else {
            pred = lorenzo3d(at(a - 1, b - 1, c - 1), at(a - 1, b - 1, c),
                             at(a - 1, b, c - 1), at(a, b - 1, c - 1),
                             at(a - 1, b, c), at(a, b - 1, c),
                             at(a, b, c - 1));
          }
          const auto r = q.quantize(pred, field[i]);
          ASSERT_EQ(pqd.codes[i], r.code)
              << dims.str() << " at flat index " << i;
          rec[i] = r.code != 0
                       ? r.reconstructed
                       : truncation_roundtrip(field[i], q.precision());
        }
      }
    }
  }
}

TEST(SzCompressor, PqdHistoryIsDecoderVisible) {
  // The reconstructed field produced during compression must equal the
  // decompressor's output exactly — the closure property that makes the
  // error bound verifiable.
  const Dims dims = Dims::d2(64, 48);
  const auto field = smooth_grid(dims, 31);
  const LinearQuantizer q(0.01, 16);
  const auto pqd = lorenzo_pqd(field, dims, q);
  std::vector<float> unpred_decoder_visible;
  for (float v : pqd.unpredictable) {
    unpred_decoder_visible.push_back(truncation_roundtrip(v, q.precision()));
  }
  const auto rec =
      lorenzo_reconstruct(pqd.codes, unpred_decoder_visible, dims, q);
  EXPECT_EQ(rec, pqd.reconstructed);
}

// ---------------------------------------------------------------- OpenMP

TEST(SzOmp, MatchesSequentialSemantics) {
  const Dims dims = Dims::d3(16, 24, 20);
  const auto field = smooth_grid(dims, 55);
  Config cfg;
  const auto c = compress_omp(field, dims, cfg, 4);
  EXPECT_GE(c.block_count, 1u);
  Dims out_dims;
  const auto decoded = decompress_omp(c.bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  const double bound = 1e-3 * metrics::value_range(field).span();
  EXPECT_TRUE(metrics::within_bound(field, decoded, bound));
}

TEST(SzOmp, MoreBlocksThanRowsClamps) {
  const Dims dims = Dims::d2(3, 50);
  const auto field = smooth_grid(dims, 2);
  const auto c = compress_omp(field, dims, Config{}, 16);
  EXPECT_LE(c.block_count, 3u);
  EXPECT_EQ(decompress_omp(c.bytes).size(), field.size());
}

TEST(SzOmp, SingleBlockEqualsPlainCompressorOutput) {
  const Dims dims = Dims::d2(32, 32);
  const auto field = smooth_grid(dims, 8);
  const auto omp1 = compress_omp(field, dims, Config{}, 1);
  const auto plain = compress(field, dims, Config{});
  EXPECT_EQ(decompress_omp(omp1.bytes), decompress(plain.bytes));
}

TEST(SzOmp, ThreadsExceedingRowsRoundTripsExactly) {
  // threads > dims[0]: the partition clamps to one slab per row and the
  // reassembly must place every row at its exact offset.
  const Dims dims = Dims::d2(5, 64);
  const auto field = smooth_grid(dims, 12);
  const auto c = compress_omp(field, dims, Config{}, 12);
  EXPECT_LE(c.block_count, 5u);
  const auto decoded = decompress_omp(c.bytes);
  const auto reference = decompress(compress(field, dims, Config{}).bytes);
  // Slab-local prediction differs from whole-field prediction at slab
  // borders, so compare against the bound, and check exact reassembly by
  // decoding twice (deterministic).
  const double bound = 1e-3 * metrics::value_range(field).span();
  EXPECT_TRUE(metrics::within_bound(field, decoded, bound));
  EXPECT_EQ(decoded, decompress_omp(c.bytes));
  EXPECT_EQ(decoded.size(), reference.size());
}

TEST(SzOmp, CodecThreadBudgetDoesNotChangeValues) {
  // Slab parallelism pins the per-slab entropy back-end to serial; the
  // decoded field must match the default configuration exactly.
  const Dims dims = Dims::d3(8, 16, 16);
  const auto field = smooth_grid(dims, 21);
  Config budget;
  budget.codec_threads = 4;
  budget.deflate_chunk_bytes = 2048;
  const auto with = compress_omp(field, dims, budget, 4);
  const auto without = compress_omp(field, dims, Config{}, 4);
  EXPECT_EQ(decompress_omp(with.bytes), decompress_omp(without.bytes));
}

TEST(SzCompressor, ParallelCodecProducesIdenticalValues) {
  // codec_threads != 1 changes the gzip chunking, never the decoded data.
  const Dims dims = Dims::d2(64, 96);
  const auto field = smooth_grid(dims, 33);
  Config parallel_cfg;
  parallel_cfg.codec_threads = 4;
  parallel_cfg.deflate_chunk_bytes = 1024;
  const auto par = compress(field, dims, parallel_cfg);
  const auto ser = compress(field, dims, Config{});
  EXPECT_EQ(decompress(par.bytes), decompress(ser.bytes));
}

}  // namespace
}  // namespace wavesz::sz
