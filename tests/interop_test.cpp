// Interoperability of the from-scratch gzip implementation with the system
// gzip(1): our members must gunzip cleanly, and system-gzip members must
// inflate through our decoder. This pins the DEFLATE substrate to the real
// RFC 1951/1952, not merely to itself. Skipped when gzip(1) is absent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "data/io.hpp"
#include "deflate/deflate.hpp"

namespace wavesz::deflate {
namespace {

namespace fs = std::filesystem;

bool have_gzip() { return std::system("gzip --version > /dev/null 2>&1") == 0; }

fs::path tmp(const std::string& name) {
  return fs::temp_directory_path() / ("wavesz_interop_" + name);
}

std::vector<std::uint8_t> sample_payload(int flavour, std::size_t size) {
  std::vector<std::uint8_t> data(size);
  std::mt19937 rng(static_cast<unsigned>(flavour * 7 + 1));
  switch (flavour) {
    case 0:
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());
      break;
    case 1:
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::uint8_t>("scientific data "[i % 16]);
      }
      break;
    default:
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::uint8_t>((i / 300) % 11 + (rng() % 2));
      }
  }
  return data;
}

class GzipInterop : public ::testing::TestWithParam<std::tuple<int, Level>> {
 protected:
  void SetUp() override {
    if (!have_gzip()) GTEST_SKIP() << "gzip(1) not available";
  }
};

TEST_P(GzipInterop, SystemGunzipReadsOurMembers) {
  const auto [flavour, level] = GetParam();
  const auto payload = sample_payload(flavour, 100'000);
  const auto member = gzip_compress(payload, level);
  const auto gz = tmp("ours.gz");
  const auto out = tmp("ours.out");
  data::write_bytes(gz, member);
  const std::string cmd = "gunzip -c '" + gz.string() + "' > '" +
                          out.string() + "' 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_EQ(data::read_bytes(out), payload);
  fs::remove(gz);
  fs::remove(out);
}

TEST_P(GzipInterop, WeReadSystemGzipMembers) {
  const auto [flavour, level] = GetParam();
  const auto payload = sample_payload(flavour, 100'000);
  const auto raw = tmp("sys.raw");
  const auto gz = tmp("sys.raw.gz");
  data::write_bytes(raw, payload);
  const std::string cmd =
      std::string("gzip -c ") + (level == Level::Best ? "-9" : "-1") +
      " -n < '" + raw.string() + "' > '" + gz.string() + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const auto member = data::read_bytes(gz);
  EXPECT_EQ(gzip_decompress(member), payload);
  fs::remove(raw);
  fs::remove(gz);
}

INSTANTIATE_TEST_SUITE_P(
    PayloadsAndLevels, GzipInterop,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(Level::Fast, Level::Best)));

TEST(GzipInterop, EmptyMemberBothWays) {
  if (!have_gzip()) GTEST_SKIP();
  const auto gz = tmp("empty.gz");
  const auto out = tmp("empty.out");
  data::write_bytes(gz, gzip_compress({}, Level::Fast));
  ASSERT_EQ(std::system(("gunzip -c '" + gz.string() + "' > '" +
                         out.string() + "'")
                            .c_str()),
            0);
  EXPECT_TRUE(data::read_bytes(out).empty());
  ASSERT_EQ(std::system(("printf '' | gzip -c -n > '" + gz.string() + "'")
                            .c_str()),
            0);
  EXPECT_TRUE(gzip_decompress(data::read_bytes(gz)).empty());
  fs::remove(gz);
  fs::remove(out);
}

}  // namespace
}  // namespace wavesz::deflate
